// BAT layer unit tests: columns (incl. void virtual-OID columns), BATs,
// BUN views, and the byte-encoding machinery of §3.1.
#include <gtest/gtest.h>

#include "bat/bat.h"
#include "bat/column.h"
#include "bat/encoding.h"

namespace ccdb {
namespace {

TEST(ColumnTest, VoidColumnIsFree) {
  Column c = Column::Void(1000, 8);
  EXPECT_TRUE(c.is_void());
  EXPECT_EQ(c.type(), PhysType::kVoid);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.MemoryBytes(), 0u);  // the point of virtual OIDs
  EXPECT_EQ(c.GetOid(0), 1000u);
  EXPECT_EQ(c.GetOid(7), 1007u);
  EXPECT_EQ(c.GetIntegral(3), 1003u);
}

TEST(ColumnTest, VoidMaterializesToU32) {
  Column c = Column::Void(5, 4);
  Column m = c.Materialize();
  EXPECT_EQ(m.type(), PhysType::kU32);
  auto span = m.Span<uint32_t>();
  ASSERT_EQ(span.size(), 4u);
  EXPECT_EQ(span[0], 5u);
  EXPECT_EQ(span[3], 8u);
  EXPECT_EQ(m.MemoryBytes(), 16u);
}

TEST(ColumnTest, TypedFactoriesAndSpans) {
  Column u8 = Column::U8({1, 2, 3});
  EXPECT_EQ(u8.type(), PhysType::kU8);
  EXPECT_EQ(u8.Span<uint8_t>()[2], 3);
  EXPECT_EQ(u8.MemoryBytes(), 3u);

  Column u16 = Column::U16({300, 400});
  EXPECT_EQ(u16.type(), PhysType::kU16);
  EXPECT_EQ(u16.GetIntegral(1), 400u);

  Column i64 = Column::I64({-5, 7});
  EXPECT_EQ(i64.type(), PhysType::kI64);
  EXPECT_EQ(i64.Span<int64_t>()[0], -5);

  Column f64 = Column::F64({1.5, 2.5});
  EXPECT_EQ(f64.type(), PhysType::kF64);
  EXPECT_DOUBLE_EQ(f64.Span<double>()[1], 2.5);
}

TEST(ColumnTest, StringColumn) {
  Column s = Column::Str({"MAIL", "AIR", "", "TRUCK"});
  EXPECT_EQ(s.type(), PhysType::kStr);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.GetStr(0), "MAIL");
  EXPECT_EQ(s.GetStr(1), "AIR");
  EXPECT_EQ(s.GetStr(2), "");
  EXPECT_EQ(s.GetStr(3), "TRUCK");
  EXPECT_GT(s.MemoryBytes(), 0u);
}

TEST(ColumnTest, I32BitPatternThroughGetIntegral) {
  Column c = Column::I32({-1, 2});
  EXPECT_EQ(c.GetIntegral(0), 0xffffffffu);
  EXPECT_EQ(c.GetIntegral(1), 2u);
}

TEST(BatTest, MakeChecksLengths) {
  auto ok = Bat::Make(Column::Void(0, 3), Column::U32({1, 2, 3}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 3u);

  auto bad = Bat::Make(Column::Void(0, 2), Column::U32({1, 2, 3}));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatTest, DenseTailConvention) {
  Bat b = Bat::DenseTail(Column::U32({10, 20, 30}));
  EXPECT_TRUE(b.head().is_void());
  EXPECT_EQ(b.head().GetOid(2), 2u);
  EXPECT_EQ(b.tail().Span<uint32_t>()[1], 20u);
  // Void head costs nothing: the BAT is 4 bytes/BUN, not 8 (§3.1).
  EXPECT_EQ(b.MemoryBytes(), 12u);
}

TEST(BatTest, BunRoundTrip) {
  std::vector<Bun> buns = {{5, 100}, {6, 200}, {9, 300}};
  Bat b = Bat::FromBuns(buns);
  EXPECT_EQ(b.size(), 3u);
  auto back = b.ToBuns();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, buns);
}

TEST(BatTest, ToBunsWidensNarrowTails) {
  Bat b = Bat::DenseTail(Column::U8({7, 8}));
  auto buns = b.ToBuns();
  ASSERT_TRUE(buns.ok());
  EXPECT_EQ((*buns)[0], (Bun{0, 7}));
  EXPECT_EQ((*buns)[1], (Bun{1, 8}));
}

TEST(BatTest, ToBunsRejectsWideTails) {
  Bat b = Bat::DenseTail(Column::F64({1.0}));
  EXPECT_EQ(b.ToBuns().status().code(), StatusCode::kInvalidArgument);
  Bat s = Bat::DenseTail(Column::Str({"x"}));
  EXPECT_EQ(s.ToBuns().status().code(), StatusCode::kInvalidArgument);
}

TEST(BatTest, ReverseSwapsColumns) {
  Bat b = Bat::DenseTail(Column::U32({10, 20}));
  Bat r = b.Reverse();
  EXPECT_EQ(r.head().type(), PhysType::kU32);
  EXPECT_TRUE(r.tail().is_void());
}

TEST(DictEncodeTest, LowCardinalityUsesOneByte) {
  Column s = Column::Str({"MAIL", "AIR", "MAIL", "SHIP", "AIR", "MAIL"});
  auto enc = DictEncode(s);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->codes.type(), PhysType::kU8);
  EXPECT_EQ(enc->code_width(), 1u);
  EXPECT_EQ(enc->dict.size(), 3u);
  // First-appearance order: MAIL=0, AIR=1, SHIP=2.
  EXPECT_EQ(enc->dict.Get(0), "MAIL");
  EXPECT_EQ(enc->dict.Get(1), "AIR");
  EXPECT_EQ(enc->dict.Get(2), "SHIP");
  auto codes = enc->codes.Span<uint8_t>();
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[3], 2);
  EXPECT_EQ(codes[5], 0);
}

TEST(DictEncodeTest, RoundTrip) {
  std::vector<std::string> vals = {"a", "b", "c", "a", "c", "c", ""};
  Column s = Column::Str(vals);
  auto enc = DictEncode(s);
  ASSERT_TRUE(enc.ok());
  auto dec = DictDecode(*enc);
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec->size(), vals.size());
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(dec->GetStr(i), vals[i]);
}

TEST(DictEncodeTest, MediumCardinalityUsesTwoBytes) {
  std::vector<std::string> vals;
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "v%d", i % 300);
    vals.emplace_back(buf);
  }
  auto enc = DictEncode(Column::Str(vals));
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->codes.type(), PhysType::kU16);
  EXPECT_EQ(enc->dict.size(), 300u);
}

TEST(DictEncodeTest, RejectsNonStringColumn) {
  EXPECT_EQ(DictEncode(Column::U32({1})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DictEncodeTest, OverflowsAt65537Values) {
  std::vector<std::string> vals;
  vals.reserve(65537);
  for (int i = 0; i < 65537; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%d", i);
    vals.emplace_back(buf);
  }
  auto enc = DictEncode(Column::Str(vals));
  EXPECT_EQ(enc.status().code(), StatusCode::kResourceExhausted);
}

TEST(DictEncodeTest, LookupFindsCodesAndMisses) {
  auto enc = DictEncode(Column::Str({"x", "y"}));
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(*enc->dict.Lookup("y"), 1u);
  EXPECT_EQ(enc->dict.Lookup("z").status().code(), StatusCode::kNotFound);
}

TEST(DictEncodeIntsTest, RoundTripAndWidth) {
  Column c = Column::U32({5, 5, 900000, 5, 900000});
  auto enc = DictEncodeInts(c);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->codes.type(), PhysType::kU8);
  EXPECT_EQ(enc->dict.size(), 2u);
  auto dec = DictDecodeInts(*enc);
  ASSERT_TRUE(dec.ok());
  auto span = dec->Span<uint32_t>();
  EXPECT_EQ(span[2], 900000u);
  EXPECT_EQ(span[4], 900000u);
  EXPECT_EQ(span[0], 5u);
}

TEST(DictEncodeIntsTest, RejectsFloats) {
  EXPECT_EQ(DictEncodeInts(Column::F64({1.0})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PhysTypeTest, WidthsAndNames) {
  EXPECT_EQ(PhysTypeWidth(PhysType::kU8), 1u);
  EXPECT_EQ(PhysTypeWidth(PhysType::kU16), 2u);
  EXPECT_EQ(PhysTypeWidth(PhysType::kU32), 4u);
  EXPECT_EQ(PhysTypeWidth(PhysType::kI64), 8u);
  EXPECT_EQ(PhysTypeWidth(PhysType::kVoid), 0u);
  EXPECT_STREQ(PhysTypeName(PhysType::kVoid), "void");
  EXPECT_STREQ(PhysTypeName(PhysType::kStr), "str");
}

}  // namespace
}  // namespace ccdb
