// Cross-cutting robustness and stress tests: simulator determinism,
// associativity sweeps, high-cardinality encodings, full-pipeline oracles,
// and the aggregation-locality property behind bench/ablation_aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/partitioned_hash_join.h"
#include "algo/radix_aggregate.h"
#include "algo/simple_hash_join.h"
#include "bat/dsm.h"
#include "exec/ops.h"
#include "exec/table.h"
#include "mem/access.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace ccdb {
namespace {

TEST(SimulatorDeterminismTest, SameAddressStreamSameCounts) {
  // Two hierarchies fed the identical (synthetic) address stream must agree
  // exactly — randomized paging is a pure hash, not true randomness.
  MachineProfile profile = MachineProfile::Origin2000();
  MemoryHierarchy a(profile), b(profile);
  Rng rng(123);
  std::vector<uint64_t> addrs(50000);
  for (auto& x : addrs) x = rng.NextBelow(1u << 26);
  for (uint64_t x : addrs) {
    a.AccessLine(x);
    b.AccessLine(x);
  }
  EXPECT_EQ(a.events().l1_misses, b.events().l1_misses);
  EXPECT_EQ(a.events().l2_misses, b.events().l2_misses);
  EXPECT_EQ(a.events().tlb_misses, b.events().tlb_misses);
}

// LRU property across associativities: a working set that fits is free on
// the second pass; one line beyond capacity thrashes cyclic scans.
class AssocSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AssocSweep, FitVersusThrash) {
  size_t assoc = GetParam();
  CacheGeometry g{/*capacity_bytes=*/4096, /*line_bytes=*/64, assoc};
  CacheSim c(g);
  size_t lines = g.lines();  // 64
  // Fit: sequential working set == capacity, aligned: no conflict misses.
  for (int lap = 0; lap < 3; ++lap) {
    for (size_t i = 0; i < lines; ++i) c.Access(i * 64);
  }
  EXPECT_EQ(c.misses(), lines) << "assoc=" << assoc;
  // Thrash (fully associative only — set-assoc caches thrash per set):
  if (assoc == 0) {
    c.Flush();
    c.ResetCounters();
    for (int lap = 0; lap < 3; ++lap) {
      for (size_t i = 0; i <= lines; ++i) c.Access(i * 64);
    }
    EXPECT_EQ(c.misses(), 3 * (lines + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, AssocSweep,
                         ::testing::Values<size_t>(1, 2, 4, 8, 0));

TEST(EncodingFallbackTest, HighCardinalityStringsStayRaw) {
  // > 65536 distinct strings: Table::FromRowStore must fall back to raw
  // string storage, and queries must still work.
  constexpr size_t kRows = 70000;
  auto rs = RowStore::Make({{"name", FieldType::kChar10}}, kRows);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < kRows; ++i) {
    size_t r = *rs->AppendRow();
    char buf[11];
    std::snprintf(buf, sizeof(buf), "n%zu", i);
    rs->SetBytes(r, 0, buf, strlen(buf));
  }
  auto table = Table::FromRowStore(*rs);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->is_encoded(0));
  auto sel = table->SelectEqStr("name", "n69999");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<oid_t>{69999}));
}

TEST(DsmRoundTripTest, AllFieldTypes) {
  auto rs = RowStore::Make(
      {
          {"a", FieldType::kU8},
          {"b", FieldType::kU16},
          {"c", FieldType::kU32},
          {"d", FieldType::kI64},
          {"e", FieldType::kF64},
          {"f", FieldType::kChar1},
          {"g", FieldType::kChar10},
          {"h", FieldType::kChar27},
      },
      64);
  ASSERT_TRUE(rs.ok());
  Rng rng(6);
  for (size_t i = 0; i < 64; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU8(r, 0, static_cast<uint8_t>(rng.NextU32()));
    uint16_t u16 = static_cast<uint16_t>(rng.NextU32());
    rs->SetBytes(r, 1, &u16, sizeof(u16));
    rs->SetU32(r, 2, rng.NextU32());
    int64_t i64 = static_cast<int64_t>(rng.NextU64());
    rs->SetBytes(r, 3, &i64, sizeof(i64));
    rs->SetF64(r, 4, rng.NextDouble() * 1e6 - 5e5);
    rs->SetU8(r, 5, 'A' + static_cast<uint8_t>(rng.NextBelow(26)));
    char buf[28];
    std::snprintf(buf, sizeof(buf), "s%llu",
                  static_cast<unsigned long long>(rng.NextBelow(100000)));
    rs->SetBytes(r, 6, buf, std::min<size_t>(strlen(buf), 10));
    rs->SetBytes(r, 7, buf, strlen(buf));
  }
  auto dsm = DecomposedTable::Decompose(*rs);
  ASSERT_TRUE(dsm.ok());
  auto back = dsm->Reconstruct();
  ASSERT_TRUE(back.ok());
  for (size_t r = 0; r < rs->size(); ++r) {
    EXPECT_EQ(
        std::memcmp(back->RowPtr(r), rs->RowPtr(r), rs->record_width()), 0)
        << "row " << r;
  }
}

TEST(PipelineOracleTest, SelectJoinAggregateEndToEnd) {
  // Orders(order_id, prio) x Items(order, qty): filter, join, group — the
  // exec layer against a hand-rolled row-at-a-time oracle.
  constexpr size_t kOrders = 2000, kItems = 10000;
  Rng rng(9);
  auto orders_rs = RowStore::Make(
      {{"order_id", FieldType::kU32}, {"prio", FieldType::kU32}}, kOrders);
  ASSERT_TRUE(orders_rs.ok());
  std::vector<uint32_t> prio(kOrders);
  for (size_t i = 0; i < kOrders; ++i) {
    size_t r = *orders_rs->AppendRow();
    orders_rs->SetU32(r, 0, static_cast<uint32_t>(i));
    prio[i] = static_cast<uint32_t>(rng.NextBelow(5));
    orders_rs->SetU32(r, 1, prio[i]);
  }
  auto items_rs = RowStore::Make(
      {{"order", FieldType::kU32}, {"qty", FieldType::kU32}}, kItems);
  ASSERT_TRUE(items_rs.ok());
  std::vector<uint32_t> item_order(kItems), item_qty(kItems);
  for (size_t i = 0; i < kItems; ++i) {
    size_t r = *items_rs->AppendRow();
    item_order[i] = static_cast<uint32_t>(rng.NextBelow(kOrders));
    item_qty[i] = static_cast<uint32_t>(1 + rng.NextBelow(9));
    items_rs->SetU32(r, 0, item_order[i]);
    items_rs->SetU32(r, 1, item_qty[i]);
  }
  Table orders = *Table::FromRowStore(*orders_rs);
  Table items = *Table::FromRowStore(*items_rs);

  // Query: total qty of items whose order has prio == 3.
  auto hot = orders.SelectRangeU32("prio", 3, 3);
  ASSERT_TRUE(hot.ok());
  auto idx = JoinTables(items, "order", orders, "order_id",
                        JoinStrategy::kPhashL1);
  ASSERT_TRUE(idx.ok());
  std::vector<bool> is_hot(kOrders, false);
  for (oid_t o : *hot) is_hot[o] = true;
  uint64_t got = 0;
  auto qty_col = *items.GatherU32(
      "qty", std::vector<oid_t>{});  // warm the API; unused
  (void)qty_col;
  for (const Bun& b : *idx) {
    if (is_hot[b.tail]) got += item_qty[b.head];
  }
  uint64_t expect = 0;
  for (size_t i = 0; i < kItems; ++i) {
    if (prio[item_order[i]] == 3) expect += item_qty[i];
  }
  EXPECT_EQ(got, expect);
  EXPECT_GT(expect, 0u);
}

TEST(AggregationLocalityTest, RadixGroupingCutsMissesAtHighGroupCounts) {
  // The property behind bench/ablation_aggregation, asserted on simulated
  // counts. The generic x86 profile (1 MB L2, 4 KB pages) is the right
  // stage: a 64k-group table (~1.5 MB) outgrows both the L2 and the 256 KB
  // TLB span, so plain hash grouping takes a random miss per tuple while
  // the partitioned variant's per-cluster tables stay resident.
  constexpr size_t kN = 1 << 18;
  constexpr uint32_t kGroups = 1 << 16;
  Rng rng(44);
  std::vector<uint32_t> keys(kN), vals(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<uint32_t>(rng.NextBelow(kGroups) * 2654435761u);
    vals[i] = static_cast<uint32_t>(rng.NextBelow(100));
  }
  MachineProfile profile = MachineProfile::GenericX86();

  MemoryHierarchy h_plain(profile);
  SimulatedMemory sim_plain(&h_plain);
  auto plain = HashGroupSum<SimulatedMemory, MurmurHash>(
      std::span<const uint32_t>(keys), std::span<const uint32_t>(vals),
      sim_plain, kGroups);

  MemoryHierarchy h_radix(profile);
  SimulatedMemory sim_radix(&h_radix);
  auto radix = RadixGroupSum<SimulatedMemory, MurmurHash>(
      std::span<const uint32_t>(keys), std::span<const uint32_t>(vals),
      /*bits=*/5, /*passes=*/1, sim_radix);
  ASSERT_TRUE(radix.ok());
  ASSERT_EQ(radix->size(), plain.size());

  EXPECT_LT(h_radix.events().tlb_misses, h_plain.events().tlb_misses);
  EXPECT_LT(h_radix.events().l2_misses + h_radix.events().tlb_misses,
            h_plain.events().l2_misses + h_plain.events().tlb_misses);
}

TEST(LargeClusterStressTest, SixteenBitsThreePasses) {
  DirectMemory mem;
  constexpr size_t kN = 200000;
  Rng rng(77);
  std::vector<Bun> rel(kN);
  for (size_t i = 0; i < kN; ++i) {
    rel[i] = {static_cast<oid_t>(i), rng.NextU32()};
  }
  auto out = RadixCluster(std::span<const Bun>(rel),
                          RadixClusterOptions{16, 3, {}}, mem);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->tuples.size(), kN);
  uint32_t mask = LowMask32(16);
  for (size_t i = 1; i < kN; ++i) {
    ASSERT_LE(out->tuples[i - 1].tail & mask, out->tuples[i].tail & mask);
  }
  // Join the 16-bit clustered relation against itself: perfect self-match.
  auto idx = PartitionedHashJoinClustered(*out, *out, mem, kN);
  EXPECT_GE(idx.size(), kN);  // >= because random values may collide
}

TEST(ZipfJoinStressTest, SkewedProbeAgainstUniqueBuild) {
  // Zipf FK probe against a distinct build side: every probe matches
  // exactly once even with a hot key.
  constexpr size_t kProbe = 30000, kBuild = 1000;
  ZipfGenerator zg(kBuild, 0.99, 3);
  std::vector<Bun> probe(kProbe), build(kBuild);
  for (size_t i = 0; i < kProbe; ++i) {
    probe[i] = {static_cast<oid_t>(i),
                static_cast<uint32_t>(zg.Next() * 2654435761u)};
  }
  for (size_t r = 0; r < kBuild; ++r) {
    build[r] = {static_cast<oid_t>(1u << 20 | r),
                static_cast<uint32_t>(r * 2654435761u)};
  }
  DirectMemory mem;
  auto out = PartitionedHashJoin(std::span<const Bun>(probe),
                                 std::span<const Bun>(build), 6, 1, mem);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), kProbe);
}

}  // namespace
}  // namespace ccdb
