// Exec-layer integration: the Fig. 4 Item table decomposed + byte-encoded,
// selections with predicate remap, group-by, gathers, and table-level joins
// against a row-store oracle.
#include <gtest/gtest.h>

#include <map>

#include "exec/ops.h"
#include "exec/table.h"
#include "util/rng.h"

namespace ccdb {
namespace {

RowStore MakeItems(size_t n) {
  auto rs = RowStore::Make(
      {
          {"order", FieldType::kU32},
          {"qty", FieldType::kU32},
          {"price", FieldType::kF64},
          {"shipmode", FieldType::kChar10},
      },
      n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 3));
    rs->SetU32(r, 1, static_cast<uint32_t>(1 + i % 5));
    rs->SetF64(r, 2, 10.0 + static_cast<double>(i));
    const char* m = modes[i % 4];
    rs->SetBytes(r, 3, m, strlen(m));
  }
  return *std::move(rs);
}

TEST(TableTest, AutoEncodesLowCardinalityStrings) {
  Table t = *Table::FromRowStore(MakeItems(100));
  auto idx = t.schema().FieldIndex("shipmode");
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(t.is_encoded(*idx));
  // 4 distinct values: one byte per tuple (§3.1, Fig. 4's "1 byte per
  // column").
  EXPECT_EQ(t.column_value_bytes(*idx), 1u);
  EXPECT_EQ(t.dict(*idx).size(), 4u);
}

TEST(TableTest, EncodingCanBeDisabled) {
  Table t = *Table::FromRowStore(MakeItems(10), /*auto_encode=*/false);
  auto idx = t.schema().FieldIndex("shipmode");
  EXPECT_FALSE(t.is_encoded(*idx));
  // Unencoded path still answers the same query.
  auto sel = t.SelectEqStr("shipmode", "AIR");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<oid_t>{1, 5, 9}));
}

TEST(TableTest, SelectEqStrRemapsPredicate) {
  Table t = *Table::FromRowStore(MakeItems(40));
  auto sel = t.SelectEqStr("shipmode", "MAIL");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 10u);
  for (oid_t o : *sel) EXPECT_EQ(o % 4, 0u);
  // Unknown value: empty, not an error.
  auto none = t.SelectEqStr("shipmode", "PIGEON");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // Wrong column name -> NotFound.
  EXPECT_EQ(t.SelectEqStr("nope", "MAIL").status().code(),
            StatusCode::kNotFound);
  // Non-string column -> InvalidArgument.
  EXPECT_EQ(t.SelectEqStr("qty", "MAIL").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, RangeSelects) {
  Table t = *Table::FromRowStore(MakeItems(20));
  auto qty = t.SelectRangeU32("qty", 4, 5);
  ASSERT_TRUE(qty.ok());
  for (oid_t o : *qty) EXPECT_GE(1 + o % 5, 4u);
  auto price = t.SelectRangeF64("price", 12.0, 14.0);
  ASSERT_TRUE(price.ok());
  EXPECT_EQ(*price, (std::vector<oid_t>{2, 3, 4}));
  EXPECT_EQ(t.SelectRangeU32("price", 0, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, GroupSumOverEncodedColumn) {
  Table t = *Table::FromRowStore(MakeItems(40));
  auto agg = t.GroupSumU32("shipmode", "qty");
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->size(), 4u);
  // Oracle.
  std::map<std::string, uint64_t> expect;
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < 40; ++i) expect[modes[i % 4]] += 1 + i % 5;
  for (size_t g = 0; g < agg->size(); ++g) {
    auto name = t.DecodeGroupKey("shipmode", agg->keys[g]);
    ASSERT_TRUE(name.ok());
    EXPECT_EQ(agg->sums[g], expect[*name]) << *name;
    EXPECT_EQ(agg->counts[g], 10u);
  }
}

TEST(TableTest, Gathers) {
  Table t = *Table::FromRowStore(MakeItems(10));
  std::vector<oid_t> oids = {1, 3, 9};
  auto modes = t.GatherStr("shipmode", oids);
  ASSERT_TRUE(modes.ok());
  EXPECT_EQ(*modes, (std::vector<std::string>{"AIR", "SHIP", "AIR"}));
  auto prices = t.GatherF64("price", oids);
  ASSERT_TRUE(prices.ok());
  EXPECT_DOUBLE_EQ((*prices)[1], 13.0);
  auto qty = t.GatherU32("qty", oids);
  ASSERT_TRUE(qty.ok());
  EXPECT_EQ((*qty)[0], 2u);
  // Out-of-range OID caught.
  std::vector<oid_t> bad = {99};
  EXPECT_EQ(t.GatherStr("shipmode", bad).status().code(),
            StatusCode::kOutOfRange);
}

TEST(TableTest, MemoryFootprintBeatsNsm) {
  RowStore rows = MakeItems(1000);
  Table t = *Table::FromRowStore(rows);
  size_t nsm_bytes = rows.record_width() * rows.size();
  // DSM + encodings: 4 (order) + 4 (qty) + 8 (price) + 1 (shipmode code)
  // = 17 bytes/tuple vs 26 NSM bytes.
  EXPECT_LT(t.MemoryBytes(), nsm_bytes);
}

TEST(ColumnBunsTest, ExtractsOidValuePairs) {
  Table t = *Table::FromRowStore(MakeItems(6));
  auto buns = ColumnBuns(t, "order");
  ASSERT_TRUE(buns.ok());
  ASSERT_EQ(buns->size(), 6u);
  EXPECT_EQ((*buns)[0], (Bun{0, 0}));
  EXPECT_EQ((*buns)[5], (Bun{5, 1}));
  EXPECT_EQ(ColumnBuns(t, "price").status().code(),
            StatusCode::kInvalidArgument);  // f64 tail not BUN-able
}

TEST(ExecuteJoinTest, AllStrategiesProduceSameResult) {
  Rng rng(3);
  constexpr size_t kN = 2000;
  std::vector<Bun> l(kN), r(kN);
  for (size_t i = 0; i < kN; ++i) {
    l[i] = {static_cast<oid_t>(i), static_cast<uint32_t>(rng.NextBelow(500))};
    r[i] = {static_cast<oid_t>(i + 10000),
            static_cast<uint32_t>(rng.NextBelow(500))};
  }
  MachineProfile m = MachineProfile::Origin2000();
  auto canon = [](std::vector<Bun> v) {
    std::sort(v.begin(), v.end(), [](const Bun& a, const Bun& b) {
      return a.head != b.head ? a.head < b.head : a.tail < b.tail;
    });
    return v;
  };
  JoinPlan ref_plan = PlanJoin(JoinStrategy::kSimpleHash, kN, m);
  auto ref = ExecuteJoin(l, r, ref_plan);
  ASSERT_TRUE(ref.ok());
  auto expect = canon(*ref);
  for (JoinStrategy s : {JoinStrategy::kSortMerge, JoinStrategy::kPhashL2,
                         JoinStrategy::kPhashTLB, JoinStrategy::kPhashL1,
                         JoinStrategy::kPhash256, JoinStrategy::kPhashMin,
                         JoinStrategy::kRadix8, JoinStrategy::kRadixMin,
                         JoinStrategy::kBest}) {
    JoinPlan plan = PlanJoin(s, kN, m);
    JoinStats stats;
    auto got = ExecuteJoin(l, r, plan, &stats);
    ASSERT_TRUE(got.ok()) << JoinStrategyName(s);
    EXPECT_EQ(canon(*got), expect) << JoinStrategyName(s);
    EXPECT_EQ(stats.result_count, got->size());
  }
}

TEST(MaterializeJoinTest, ProjectsBothSides) {
  auto orders_rows = RowStore::Make(
      {{"order_id", FieldType::kU32}, {"clerk", FieldType::kChar10}}, 4);
  ASSERT_TRUE(orders_rows.ok());
  const char* clerks[] = {"ann", "bob", "cho", "dee"};
  for (uint32_t i = 0; i < 4; ++i) {
    size_t r = *orders_rows->AppendRow();
    orders_rows->SetU32(r, 0, 100 + i);
    orders_rows->SetBytes(r, 1, clerks[i], strlen(clerks[i]));
  }
  Table orders = *Table::FromRowStore(*orders_rows);
  Table items = *Table::FromRowStore(MakeItems(8));

  // Join index: item oid i <-> order oid i % 4 (hand-built).
  std::vector<Bun> idx;
  for (uint32_t i = 0; i < 8; ++i) idx.push_back({i, i % 4});

  auto cols = MaterializeJoin(items, {"qty", "shipmode"}, orders, {"clerk"},
                              idx);
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ(cols->size(), 3u);
  EXPECT_EQ((*cols)[0].name, "qty");
  EXPECT_EQ((*cols)[0].type, PhysType::kU32);
  ASSERT_EQ((*cols)[0].u32_values.size(), 8u);
  EXPECT_EQ((*cols)[0].u32_values[3], 1 + 3 % 5);
  EXPECT_EQ((*cols)[1].type, PhysType::kStr);
  EXPECT_EQ((*cols)[1].str_values[1], "AIR");
  EXPECT_EQ((*cols)[2].name, "clerk");
  EXPECT_EQ((*cols)[2].str_values[5], "bob");
  // Unknown column propagates NotFound.
  EXPECT_EQ(MaterializeJoin(items, {"nope"}, orders, {}, idx).status().code(),
            StatusCode::kNotFound);
}

TEST(JoinTablesTest, JoinsOnU32Columns) {
  // orders(order_id) join items(order): classic FK join via the planner.
  auto orders_rows = RowStore::Make(
      {{"order_id", FieldType::kU32}, {"prio", FieldType::kU32}}, 10);
  ASSERT_TRUE(orders_rows.ok());
  for (uint32_t i = 0; i < 10; ++i) {
    size_t r = *orders_rows->AppendRow();
    orders_rows->SetU32(r, 0, i);
    orders_rows->SetU32(r, 1, i % 3);
  }
  Table orders = *Table::FromRowStore(*orders_rows);
  Table items = *Table::FromRowStore(MakeItems(30));  // order = i/3: 0..9

  auto idx = JoinTables(items, "order", orders, "order_id");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->size(), 30u);  // every item matches exactly one order
  for (const Bun& b : *idx) {
    EXPECT_EQ(b.head / 3, b.tail);  // item oid/3 == order oid
  }
}

}  // namespace
}  // namespace ccdb
