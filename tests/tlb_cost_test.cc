// The translation (page-walk) term of the cost model, validated against the
// software TLB simulator — deterministic in CI, no hardware counters needed:
//  * the §3.4.2 cluster TLB-miss term tracks the walk counts the simulator
//    actually records for RadixCluster, in and beyond the TLB-reach regime;
//  * WithPageBytes(2 MB) shrinks predicted translations by exactly the
//    page-size ratio, and the simulator agrees;
//  * TranslationNs prices walks at the profile's lTLB;
//  * OptimalPasses uses log2(|TLB|) — a measured 1536-entry TLB buys fewer
//    passes than GenericX86's hardcoded 64 entries.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "algo/radix_cluster.h"
#include "mem/access.h"
#include "mem/hierarchy.h"
#include "mem/tlb_sim.h"
#include "model/calibrator.h"
#include "model/cost_model.h"
#include "util/rng.h"

namespace ccdb {
namespace {

std::vector<Bun> UniqueRelation(size_t n, uint64_t seed) {
  auto values = UniqueU32(n, seed);
  std::vector<Bun> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = {static_cast<oid_t>(i), values[i]};
  return out;
}

TEST(TlbCostTest, TranslationNsPricesWalksAtProfileLatency) {
  MachineProfile m = MachineProfile::Origin2000();
  CostModel model(m);
  EXPECT_DOUBLE_EQ(model.TranslationNs(0), 0.0);
  EXPECT_DOUBLE_EQ(model.TranslationNs(1), m.lat.tlb_ns);
  EXPECT_DOUBLE_EQ(model.TranslationNs(1e6), 1e6 * m.lat.tlb_ns);
}

TEST(TlbCostTest, ClusterTlbTermTracksSimulatedWalkCounts) {
  // One clustering pass on the Origin2000 profile (64-entry TLB, 16 KB
  // pages), compared against the simulator's counted walks. The model's
  // term is an idealization (it counts 2 sweeps where the two-phase
  // histogram+scatter implementation reads the source twice), so the
  // comparison is a ratio band, not equality — but it must hold both below
  // TLB reach (page-sweep regime) and far beyond it (thrash regime, where
  // misses explode by ~100x).
  MachineProfile profile = MachineProfile::Origin2000();
  constexpr size_t kC = 1 << 18;  // 2 MB of BUNs = 128 Origin pages
  auto rel = UniqueRelation(kC, 7);
  CostModel model(profile);

  for (int bits : {4, 10}) {
    MemoryHierarchy h(profile);
    SimulatedMemory mem(&h);
    auto out = RadixCluster(std::span<const Bun>(rel),
                            RadixClusterOptions{bits, 1, {}}, mem);
    ASSERT_TRUE(out.ok());
    double simulated = static_cast<double>(h.events().tlb_misses);
    double predicted = model.ClusterTlbMisses(bits, kC);
    ASSERT_GT(simulated, 0.0);
    double ratio = predicted / simulated;
    EXPECT_GT(ratio, 0.3) << "bits " << bits << " sim " << simulated
                          << " pred " << predicted;
    EXPECT_LT(ratio, 3.0) << "bits " << bits << " sim " << simulated
                          << " pred " << predicted;
  }

  // And the regime change itself: both sides agree the 10-bit pass walks
  // orders of magnitude more than the 4-bit pass.
  EXPECT_GT(model.ClusterTlbMisses(10, kC), 50 * model.ClusterTlbMisses(4, kC));
}

TEST(TlbCostTest, WithPageBytesShrinksTranslationByThePageRatio) {
  // The huge-page pricing view: 2 MB pages mean 512x fewer pages per
  // relation, so every page-granular term shrinks by exactly that ratio.
  MachineProfile m = MachineProfile::GenericX86();
  ASSERT_EQ(m.tlb.page_bytes, 4096u);
  CostModel base(m);
  CostModel huge = base.WithPageBytes(2 << 20);
  EXPECT_EQ(huge.profile().tlb.page_bytes, size_t{2} << 20);
  EXPECT_EQ(huge.profile().tlb.entries, m.tlb.entries);  // kept (documented)

  // Below TLB reach the cluster term is pure page sweeps: ratio is exact.
  constexpr uint64_t kC = 1 << 20;
  double base_sweep = base.ClusterTlbMisses(2, kC);
  double huge_sweep = huge.ClusterTlbMisses(2, kC);
  EXPECT_NEAR(base_sweep / huge_sweep, 512.0, 1.0);

  // Beyond reach the thrash term C*(1 - |TLB|/Hp) dominates and does not
  // depend on the page size — huge pages cannot fix a too-wide fan-out,
  // they only widen the reach at which it starts. But the *total* cluster
  // cost at planner-chosen pass counts must never get worse.
  ModelPrediction pb = base.Cluster(1, 12, kC);
  ModelPrediction ph = huge.Cluster(1, 12, kC);
  EXPECT_LE(ph.tlb_misses, pb.tlb_misses);
}

TEST(TlbCostTest, SimulatorAgreesWithThePageRatio) {
  // Sequential touch of an 8 MB range, one access per 4 KB: with 4 KB pages
  // every touch is a new page (2048 walks); with 2 MB pages 512 touches
  // share each page (4 walks). The simulator must reproduce the exact
  // RelPages ratio the model relies on.
  auto walks = [](size_t page_bytes) {
    TlbSim tlb(TlbGeometry{64, page_bytes, 0});
    for (uint64_t addr = 0; addr < (8u << 20); addr += 4096) {
      tlb.Access(addr);
    }
    return tlb.misses();
  };
  uint64_t base_walks = walks(4096);
  uint64_t huge_walks = walks(2 << 20);
  EXPECT_EQ(base_walks, (8u << 20) / 4096);
  EXPECT_EQ(huge_walks, (8u << 20) / (2 << 20));
  EXPECT_EQ(base_walks / huge_walks, 512u);
}

TEST(TlbCostTest, OptimalPassesFollowTlbEntryCount) {
  // §3.4.4: at most log2(|TLB|) bits per pass. GenericX86's 64 entries
  // give 6 bits/pass; a measured 1536-entry TLB (a typical modern dTLB,
  // and what the calibrator reports on our CI hosts) gives 10 — so deep
  // clusterings need fewer passes on real hardware than the static profile
  // claims. This is exactly why PlannerOptions defaults to the measured
  // profile.
  MachineProfile generic = MachineProfile::GenericX86();
  ASSERT_EQ(generic.tlb.entries, 64u);
  MachineProfile measured = generic;
  measured.tlb.entries = 1536;

  CostModel small(generic);
  CostModel big(measured);
  EXPECT_EQ(small.OptimalPasses(18), 3);  // ceil(18/6)
  EXPECT_EQ(big.OptimalPasses(18), 2);    // ceil(18/10)
  EXPECT_EQ(small.OptimalPasses(6), 1);
  EXPECT_EQ(big.OptimalPasses(20), 2);
  EXPECT_GE(small.OptimalPasses(20), big.OptimalPasses(20));
}

TEST(TlbCostTest, MeasuredHostProfileIsUsableByTheModel) {
  // Whatever the probe concluded on this host (measured or fallback), the
  // planner's default profile must be a valid model input with a priced
  // translation term.
  const MachineProfile& m = MeasuredHostProfile();
  EXPECT_TRUE(m.Validate().ok()) << m.name;
  EXPECT_GT(m.tlb.entries, 0u);
  EXPECT_GT(m.tlb.page_bytes, 0u);
  EXPECT_GT(m.lat.tlb_ns, 0.0);
  CostModel model(m);
  ModelPrediction p = model.Cluster(model.OptimalPasses(10), 10, 1 << 20);
  EXPECT_GT(p.tlb_misses, 0.0);
  EXPECT_GT(model.TranslationNs(p.tlb_misses), 0.0);
  EXPECT_GT(model.Millis(p), 0.0);

  const TlbInfo& tlb = MeasuredTlbGeometry();
  if (tlb.measured) {
    // When the probe succeeded, the profile must actually use it.
    EXPECT_EQ(m.tlb.entries, tlb.entries);
    EXPECT_EQ(m.tlb.page_bytes, tlb.page_bytes);
    EXPECT_GE(tlb.entries, 8u);
    EXPECT_GT(tlb.walk_ns, 0.0);
    EXPECT_GE(tlb.levels, 1);
  }
}

}  // namespace
}  // namespace ccdb
