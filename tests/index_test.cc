// §3.2 selection structures: cache-conscious B+-tree, T-tree, binary
// search, and positional (void) joins. Correctness against reference
// implementations across parameter sweeps, plus the miss-count comparison
// that motivates the [Ron98] cache-line-node claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/cc_btree.h"
#include "algo/positional_join.h"
#include "algo/sorted_search.h"
#include "algo/ttree.h"
#include "mem/access.h"
#include "util/rng.h"

namespace ccdb {
namespace {

std::vector<Bun> RandomData(size_t n, uint64_t seed, uint32_t range) {
  Rng rng(seed);
  std::vector<Bun> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {static_cast<oid_t>(i),
              static_cast<uint32_t>(rng.NextBelow(range))};
  }
  return out;
}

std::vector<oid_t> ReferenceEq(const std::vector<Bun>& data, uint32_t key) {
  std::vector<oid_t> out;
  for (const Bun& b : data) {
    if (b.tail == key) out.push_back(b.head);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<oid_t> ReferenceRange(const std::vector<Bun>& data, uint32_t lo,
                                  uint32_t hi) {
  std::vector<oid_t> out;
  for (const Bun& b : data) {
    if (lo <= b.tail && b.tail <= hi) out.push_back(b.head);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<oid_t> Sorted(std::vector<oid_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(BTreeOptionsTest, Validation) {
  EXPECT_TRUE(BTreeOptions{64}.Validate().ok());
  EXPECT_FALSE(BTreeOptions{4}.Validate().ok());
  EXPECT_FALSE(BTreeOptions{65540 * 2}.Validate().ok());
  EXPECT_FALSE(BTreeOptions{30}.Validate().ok());  // not multiple of 4
}

TEST(CcBTreeTest, EmptyAndSingle) {
  DirectMemory mem;
  std::vector<Bun> empty;
  auto t0 = CacheConsciousBTree::Build(empty);
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(t0->size(), 0u);
  std::vector<oid_t> hits;
  t0->FindEq(5, mem, &hits);
  EXPECT_TRUE(hits.empty());

  std::vector<Bun> one = {{9, 42}};
  auto t1 = CacheConsciousBTree::Build(one);
  ASSERT_TRUE(t1.ok());
  t1->FindEq(42, mem, &hits);
  EXPECT_EQ(hits, (std::vector<oid_t>{9}));
  hits.clear();
  t1->FindEq(41, mem, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(CcBTreeTest, LowerBoundSemantics) {
  DirectMemory mem;
  std::vector<Bun> data = {{0, 10}, {1, 20}, {2, 20}, {3, 30}};
  auto t = CacheConsciousBTree::Build(data, BTreeOptions{8});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->LowerBound(5, mem), 0u);
  EXPECT_EQ(t->LowerBound(10, mem), 0u);
  EXPECT_EQ(t->LowerBound(11, mem), 1u);
  EXPECT_EQ(t->LowerBound(20, mem), 1u);  // first duplicate
  EXPECT_EQ(t->LowerBound(25, mem), 3u);
  EXPECT_EQ(t->LowerBound(30, mem), 3u);
  EXPECT_EQ(t->LowerBound(31, mem), 4u);  // past the end
}

TEST(CcBTreeTest, HeightShrinksWithNodeSize) {
  auto data = RandomData(100000, 1, UINT32_MAX);
  auto t32 = CacheConsciousBTree::Build(data, BTreeOptions{32});
  auto t512 = CacheConsciousBTree::Build(data, BTreeOptions{512});
  ASSERT_TRUE(t32.ok() && t512.ok());
  EXPECT_GT(t32->height(), t512->height());
  EXPECT_EQ(t32->fanout(), 8u);
  EXPECT_EQ(t512->fanout(), 128u);
}

TEST(CcBTreeTest, DuplicatesAcrossNodeBoundaries) {
  DirectMemory mem;
  // 50 copies of each of 4 keys with tiny nodes: duplicates span chunks.
  std::vector<Bun> data;
  for (uint32_t k = 0; k < 4; ++k) {
    for (uint32_t i = 0; i < 50; ++i) {
      data.push_back({k * 100 + i, k * 7});
    }
  }
  auto t = CacheConsciousBTree::Build(data, BTreeOptions{16});
  ASSERT_TRUE(t.ok());
  for (uint32_t k = 0; k < 4; ++k) {
    std::vector<oid_t> hits;
    t->FindEq(k * 7, mem, &hits);
    EXPECT_EQ(Sorted(hits), ReferenceEq(data, k * 7));
    EXPECT_EQ(hits.size(), 50u);
  }
}

TEST(TTreeOptionsTest, Validation) {
  EXPECT_TRUE(TTreeOptions{8}.Validate().ok());
  EXPECT_FALSE(TTreeOptions{0}.Validate().ok());
  EXPECT_FALSE(TTreeOptions{5000}.Validate().ok());
}

TEST(TTreeTest, EmptyAndSingle) {
  DirectMemory mem;
  std::vector<Bun> empty;
  auto t0 = TTree::Build(empty);
  ASSERT_TRUE(t0.ok());
  std::vector<oid_t> hits;
  t0->FindEq(1, mem, &hits);
  t0->FindRange(0, 100, mem, &hits);
  EXPECT_TRUE(hits.empty());

  std::vector<Bun> one = {{3, 7}};
  auto t1 = TTree::Build(one);
  ASSERT_TRUE(t1.ok());
  t1->FindEq(7, mem, &hits);
  EXPECT_EQ(hits, (std::vector<oid_t>{3}));
}

TEST(TTreeTest, BalancedOverRuns) {
  auto data = RandomData(10000, 2, UINT32_MAX);
  auto t = TTree::Build(data, TTreeOptions{8});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->node_count(), (10000 + 7) / 8);
  // Balanced binary tree over 1250 runs: height ~ ceil(log2(1250)) = 11.
  EXPECT_LE(t->height(), 12u);
  EXPECT_GE(t->height(), 10u);
}

TEST(TTreeTest, DuplicateSpillAcrossRuns) {
  DirectMemory mem;
  std::vector<Bun> data;
  for (uint32_t i = 0; i < 20; ++i) data.push_back({i, 5});
  for (uint32_t i = 0; i < 20; ++i) data.push_back({100 + i, 9});
  auto t = TTree::Build(data, TTreeOptions{4});
  ASSERT_TRUE(t.ok());
  std::vector<oid_t> hits;
  t->FindEq(5, mem, &hits);
  EXPECT_EQ(hits.size(), 20u);
  hits.clear();
  t->FindEq(9, mem, &hits);
  EXPECT_EQ(hits.size(), 20u);
  hits.clear();
  t->FindEq(7, mem, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(BinarySearchTest, LowerBound) {
  DirectMemory mem;
  std::vector<uint32_t> v = {2, 4, 4, 8, 16};
  std::span<const uint32_t> s(v);
  EXPECT_EQ(BinarySearchLowerBound(s, 0u, mem), 0u);
  EXPECT_EQ(BinarySearchLowerBound(s, 2u, mem), 0u);
  EXPECT_EQ(BinarySearchLowerBound(s, 3u, mem), 1u);
  EXPECT_EQ(BinarySearchLowerBound(s, 4u, mem), 1u);
  EXPECT_EQ(BinarySearchLowerBound(s, 17u, mem), 5u);
  std::vector<uint32_t> empty;
  EXPECT_EQ(BinarySearchLowerBound(std::span<const uint32_t>(empty), 1u, mem),
            0u);
}

// All structures agree with the scan reference over a randomized sweep of
// (cardinality, key range, node size).
class IndexEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<size_t, uint32_t, size_t>> {};

TEST_P(IndexEquivalenceSweep, EqAndRangeMatchReference) {
  auto [n, range, node_bytes] = GetParam();
  auto data = RandomData(n, 31 + n + range, range);
  DirectMemory mem;
  auto bt = CacheConsciousBTree::Build(data, BTreeOptions{node_bytes});
  auto tt = TTree::Build(data, TTreeOptions{node_bytes / 4});
  ASSERT_TRUE(bt.ok() && tt.ok());
  Rng rng(99);
  for (int q = 0; q < 25; ++q) {
    uint32_t key = static_cast<uint32_t>(rng.NextBelow(range + range / 4 + 2));
    std::vector<oid_t> bt_hits, tt_hits;
    bt->FindEq(key, mem, &bt_hits);
    tt->FindEq(key, mem, &tt_hits);
    auto expect = ReferenceEq(data, key);
    EXPECT_EQ(Sorted(bt_hits), expect) << "btree eq key=" << key;
    EXPECT_EQ(Sorted(tt_hits), expect) << "ttree eq key=" << key;

    uint32_t lo = static_cast<uint32_t>(rng.NextBelow(range + 1));
    uint32_t hi = lo + static_cast<uint32_t>(rng.NextBelow(range / 4 + 1));
    std::vector<oid_t> bt_range, tt_range;
    bt->FindRange(lo, hi, mem, &bt_range);
    tt->FindRange(lo, hi, mem, &tt_range);
    auto expect_range = ReferenceRange(data, lo, hi);
    EXPECT_EQ(Sorted(bt_range), expect_range) << "btree range " << lo << ".." << hi;
    EXPECT_EQ(Sorted(tt_range), expect_range) << "ttree range " << lo << ".." << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexEquivalenceSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 100, 5000),
                       ::testing::Values<uint32_t>(4, 1000, 1000000),
                       ::testing::Values<size_t>(16, 64, 256)));

TEST(IndexMissCountTest, CacheLineNodesBeatBinarySearch) {
  // The [Ron98]/§3.2 claim, in miss counts on the Origin2000: point lookups
  // through a B-tree with (multi-)cache-line nodes touch fewer L2 lines
  // than binary search over the same sorted array.
  constexpr size_t kN = 1 << 20;
  auto data = RandomData(kN, 77, UINT32_MAX);
  auto bt = CacheConsciousBTree::Build(data, BTreeOptions{128});
  ASSERT_TRUE(bt.ok());
  std::vector<uint32_t> sorted_keys(bt->keys().begin(), bt->keys().end());

  MachineProfile profile = MachineProfile::Origin2000();
  Rng rng(5);
  std::vector<uint32_t> probes(2000);
  for (auto& p : probes) p = static_cast<uint32_t>(rng.NextU32());

  MemoryHierarchy h_bt(profile);
  SimulatedMemory mem_bt(&h_bt);
  for (uint32_t p : probes) bt->LowerBound(p, mem_bt);

  MemoryHierarchy h_bs(profile);
  SimulatedMemory mem_bs(&h_bs);
  for (uint32_t p : probes) {
    BinarySearchLowerBound(std::span<const uint32_t>(sorted_keys), p, mem_bs);
  }

  EXPECT_LT(h_bt.events().l2_misses, h_bs.events().l2_misses);
  EXPECT_LT(h_bt.events().l1_misses, h_bs.events().l1_misses);
}

TEST(PositionalJoinTest, DenseForeignKeyJoin) {
  DirectMemory mem;
  // References into a base table of 100 tuples with OIDs 1000..1099.
  std::vector<Bun> refs = {{0, 1000}, {1, 1050}, {2, 1099}, {3, 999},
                           {4, 1100}, {5, 1007}};
  auto out = PositionalJoin(std::span<const Bun>(refs), 1000, 100, mem);
  ASSERT_EQ(out.size(), 4u);  // 999 and 1100 fall outside
  EXPECT_EQ(out[0], (Bun{0, 0}));
  EXPECT_EQ(out[1], (Bun{1, 50}));
  EXPECT_EQ(out[2], (Bun{2, 99}));
  EXPECT_EQ(out[3], (Bun{5, 7}));
}

TEST(PositionalJoinTest, EmptyAndNoMatches) {
  DirectMemory mem;
  std::vector<Bun> none;
  EXPECT_TRUE(PositionalJoin(std::span<const Bun>(none), 0, 10, mem).empty());
  std::vector<Bun> refs = {{0, 5}};
  EXPECT_TRUE(PositionalJoin(std::span<const Bun>(refs), 100, 10, mem).empty());
}

TEST(PositionalGatherTest, FetchesValuesByPosition) {
  DirectMemory mem;
  std::vector<Bun> refs = {{0, 12}, {1, 10}, {2, 11}};
  std::vector<uint32_t> values = {100, 200, 300};
  auto out = PositionalGather(std::span<const Bun>(refs),
                              std::span<const uint32_t>(values), 10, mem);
  EXPECT_EQ(out, (std::vector<uint32_t>{300, 100, 200}));
}

TEST(PositionalJoinTest, MatchesHashJoinOnVoidColumn) {
  // §3.1: positional join must produce the same join index as a hash join
  // against the materialized void column.
  constexpr size_t kBase = 5000, kN = 3000;
  Rng rng(8);
  std::vector<Bun> refs(kN);
  for (size_t i = 0; i < kN; ++i) {
    refs[i] = {static_cast<oid_t>(i),
               static_cast<uint32_t>(kBase + rng.NextBelow(2000))};
  }
  DirectMemory mem;
  auto positional = PositionalJoin(std::span<const Bun>(refs), kBase, 2000, mem);
  // Reference: the void column materialized as [position, oid] tuples.
  std::vector<Bun> void_rel(2000);
  for (uint32_t i = 0; i < 2000; ++i)
    void_rel[i] = {i, static_cast<uint32_t>(kBase + i)};
  std::vector<Bun> expect;
  for (const Bun& r : refs) {
    for (const Bun& v : void_rel) {
      if (r.tail == v.tail) expect.push_back({r.head, v.head});
    }
  }
  EXPECT_EQ(positional, expect);
}

}  // namespace
}  // namespace ccdb
