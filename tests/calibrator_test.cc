// Calibrator smoke tests: measurements are positive and ordered sensibly,
// and the derived host profile validates. (Absolute values are
// machine-dependent by design; these tests assert structure, not numbers.)
#include <gtest/gtest.h>

#include "model/calibrator.h"

namespace ccdb {
namespace {

TEST(CalibratorTest, ChaseLatencyIsPositive) {
  double ns = MeasureChaseNs(64 * 1024, 64, 1 << 16);
  EXPECT_GT(ns, 0.0);
  EXPECT_LT(ns, 10000.0);  // sanity: < 10us per load
}

TEST(CalibratorTest, LargerWorkingSetsAreNotFaster) {
  // L1-resident vs far-beyond-cache working sets. Allow generous slack for
  // noisy environments, but the big set must not be *faster*.
  double small = MeasureChaseNs(16 * 1024, 64, 1 << 16);
  double large = MeasureChaseNs(64 * 1024 * 1024, 64, 1 << 16);
  EXPECT_GE(large, small * 0.8);
}

TEST(CalibratorTest, ReportIsStructurallySound) {
  CalibrationReport rep = Calibrate();
  ASSERT_FALSE(rep.latency_curve.empty());
  for (const auto& pt : rep.latency_curve) {
    EXPECT_GT(pt.working_set_bytes, 0u);
    EXPECT_GT(pt.ns_per_access, 0.0);
  }
  EXPECT_GT(rep.l1_ns, 0.0);
  EXPECT_GT(rep.l2_ns, 0.0);
  EXPECT_GT(rep.mem_ns, 0.0);
  EXPECT_GE(rep.tlb_ns, 0.0);
}

TEST(CalibratorTest, HostProfileValidates) {
  MachineProfile m = CalibratedHostProfile();
  EXPECT_TRUE(m.Validate().ok()) << m.Validate().ToString();
  EXPECT_EQ(m.name, "calibrated-host");
  EXPECT_GT(m.lat.mem_ns, 0.0);
}

}  // namespace
}  // namespace ccdb
