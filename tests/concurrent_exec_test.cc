// Concurrency regression tests, written to run under the TSan CI job:
// (1) concurrent lazy stats fills racing Table::AppendRows — the
// StatsCache mutex must serialize fill-vs-rebuild and never serve a
// half-replaced table; (2) two plans executing concurrently on the shared
// ThreadPool (interleaved Open/Next/Close from separate client threads,
// nested ParallelFor inlining on pool workers), byte-identical to serial
// execution; (3) the ParallelFor scheduling hooks: before_morsel aborts
// like a body error, yield_after_morsel requeues worker drives without
// losing or duplicating morsels.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/plan.h"
#include "exec/table.h"
#include "model/planner.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ccdb {
namespace {

Table MakeTwoColTable(size_t rows, uint32_t key_domain, uint64_t seed) {
  auto rs = RowStore::Make(
      {{"k", FieldType::kU32}, {"v", FieldType::kU32}}, rows + 1);
  CCDB_CHECK(rs.ok());
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, rng.NextU32() % key_domain);
    rs->SetU32(r, 1, rng.NextU32() % 1000);
  }
  return *Table::FromRowStore(*rs);
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.columns[c].u32_values, b.columns[c].u32_values) << what;
    EXPECT_EQ(a.columns[c].i64_values, b.columns[c].i64_values) << what;
    EXPECT_EQ(a.columns[c].f64_values, b.columns[c].f64_values) << what;
    EXPECT_EQ(a.columns[c].str_values, b.columns[c].str_values) << what;
  }
}

// --- stats fill vs AppendRows ------------------------------------------------

TEST(ConcurrentStatsTest, LazyFillRacingAppendRowsIsSerialized) {
  Table t = MakeTwoColTable(20000, 500, 11);

  constexpr int kReaders = 2;
  constexpr int kAppends = 12;
  constexpr size_t kAppendRows = 64;
  std::atomic<bool> stop{false};
  std::atomic<int> fill_errors{0};

  // Two sessions hammer the lazy fill (every append invalidates the cache,
  // so fills keep re-running) while a writer grows the table.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const char* col : {"k", "v"}) {
          auto s = t.stats(col);
          if (!s.ok()) {
            fill_errors.fetch_add(1);
          } else if (s->row_count < 20000) {
            // Stale sketch: stats computed against a table state that
            // never existed (rows only ever grow).
            fill_errors.fetch_add(1);
          }
        }
      }
    });
  }

  for (int a = 0; a < kAppends; ++a) {
    auto extra = RowStore::Make(
        {{"k", FieldType::kU32}, {"v", FieldType::kU32}}, kAppendRows + 1);
    ASSERT_TRUE(extra.ok());
    Rng rng(100 + a);
    for (size_t i = 0; i < kAppendRows; ++i) {
      size_t r = *extra->AppendRow();
      extra->SetU32(r, 0, rng.NextU32() % 500);
      extra->SetU32(r, 1, rng.NextU32() % 1000);
    }
    ASSERT_TRUE(t.AppendRows(*extra).ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(fill_errors.load(), 0);
  EXPECT_EQ(t.num_rows(), 20000 + kAppends * kAppendRows);
  EXPECT_EQ(t.data_version(), static_cast<uint64_t>(kAppends));
  auto final_stats = t.stats("k");
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats->row_count, t.num_rows());
}

// --- concurrent plan execution on the shared pool ----------------------------

TEST(ConcurrentExecTest, TwoPlansOnSharedPoolMatchSerialExecution) {
  Table fact = MakeTwoColTable(120000, 400, 21);
  Table dim = [&] {
    auto rs = RowStore::Make(
        {{"id", FieldType::kU32}, {"w", FieldType::kU32}}, 401);
    CCDB_CHECK(rs.ok());
    for (uint32_t i = 0; i < 400; ++i) {
      size_t r = *rs->AppendRow();
      rs->SetU32(r, 0, i);
      rs->SetU32(r, 1, i % 40);
    }
    return *Table::FromRowStore(*rs);
  }();

  // Two structurally different plans; OrderBy canonicalizes row order so
  // results compare byte-for-byte across any parallelism.
  LogicalPlan plan_a = *QueryBuilder(fact)
                            .Join(dim, "k", "id")
                            .GroupByAgg({"w"}, {Agg::Sum("v"), Agg::Count()})
                            .OrderBy("w")
                            .Build();
  LogicalPlan plan_b = *QueryBuilder(fact)
                            .Filter(Col("v") >= 100u && Col("v") < 900u)
                            .OrderBy("v", /*descending=*/true)
                            .Limit(500)
                            .Build();

  PlannerOptions serial;
  serial.exec.parallelism = 1;
  serial.exec.scan_chunk_rows = 4096;
  QueryResult expected_a = *Execute(plan_a, serial);
  QueryResult expected_b = *Execute(plan_b, serial);

  PlannerOptions parallel = serial;
  parallel.exec.parallelism = 8;

  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    // Interleave with a scheduling context on one side so the yield path
    // (worker drives requeuing mid-plan) is exercised while another plan's
    // morsels share the pool.
    ScheduleContext sched;
    sched.morsel_quantum = 2;
    std::atomic<size_t> two_active{2};
    sched.active_queries = &two_active;

    std::atomic<int> failures{0};
    std::thread ta([&] {
      PlannerOptions po = parallel;
      po.exec.sched = &sched;
      auto r = Execute(plan_a, po);
      if (!r.ok()) {
        failures.fetch_add(1);
        return;
      }
      QueryResult got = *std::move(r);
      if (got.num_rows() != expected_a.num_rows()) failures.fetch_add(1);
      for (size_t c = 0; c < got.num_columns() && c < 3; ++c) {
        if (got.columns[c].u32_values != expected_a.columns[c].u32_values ||
            got.columns[c].i64_values != expected_a.columns[c].i64_values) {
          failures.fetch_add(1);
        }
      }
    });
    std::thread tb([&] {
      auto r = Execute(plan_b, parallel);
      if (!r.ok()) {
        failures.fetch_add(1);
        return;
      }
      QueryResult got = *std::move(r);
      if (got.num_rows() != expected_b.num_rows()) failures.fetch_add(1);
      for (size_t c = 0; c < got.num_columns(); ++c) {
        if (got.columns[c].u32_values != expected_b.columns[c].u32_values) {
          failures.fetch_add(1);
        }
      }
    });
    ta.join();
    tb.join();
    ASSERT_EQ(failures.load(), 0) << "round " << round;
  }

  // Full byte-identical comparison once more, single-threaded client but
  // parallel morsels, after the pool has been churned.
  QueryResult after_a = *Execute(plan_a, parallel);
  QueryResult after_b = *Execute(plan_b, parallel);
  ExpectSameResult(expected_a, after_a, "plan_a after churn");
  ExpectSameResult(expected_b, after_b, "plan_b after churn");
}

// --- ParallelFor hooks -------------------------------------------------------

TEST(ParallelForHooksTest, BeforeMorselAbortsLikeABodyError) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  ParallelForHooks hooks;
  std::atomic<int> checks{0};
  hooks.before_morsel = [&]() -> Status {
    if (checks.fetch_add(1) >= 8) return Status::Cancelled("stop");
    return Status::Ok();
  };
  Status st = ParallelFor(
      &pool, 4, 64,
      [&](size_t) -> Status {
        ran.fetch_add(1);
        return Status::Ok();
      },
      &hooks);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_LT(ran.load(), 64);
}

TEST(ParallelForHooksTest, YieldingDrivesRunEveryMorselExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  ParallelForHooks hooks;
  hooks.yield_after_morsel = [] { return true; };  // yield at every morsel
  Status st = ParallelFor(
      &pool, 4, kN,
      [&](size_t i) -> Status {
        counts[i].fetch_add(1);
        return Status::Ok();
      },
      &hooks);
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "morsel " << i;
  }
}

TEST(ParallelForHooksTest, InlinePathHonorsBeforeMorsel) {
  // pool == nullptr forces the inline path; the check must still stop it.
  int ran = 0;
  ParallelForHooks hooks;
  int checks = 0;
  hooks.before_morsel = [&]() -> Status {
    if (++checks > 3) return Status::DeadlineExceeded("late");
    return Status::Ok();
  };
  Status st = ParallelFor(
      nullptr, 1, 10,
      [&](size_t) -> Status {
        ++ran;
        return Status::Ok();
      },
      &hooks);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ran, 3);
}

}  // namespace
}  // namespace ccdb
