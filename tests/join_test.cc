// Join-family correctness: every algorithm (simple hash, sort-merge with
// both sorts, partitioned hash, radix) must produce the same multiset of
// [OID,OID] pairs as the nested-loop reference, across crafted edge cases
// and a randomized parameter sweep. Also covers the paper's experimental
// setup: unique values, hit rate one, join-index output (§3.4.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/hash_table.h"
#include "algo/nested_loop_join.h"
#include "algo/partitioned_hash_join.h"
#include "algo/radix_join.h"
#include "algo/simple_hash_join.h"
#include "algo/sort_merge_join.h"
#include "util/rng.h"

namespace ccdb {
namespace {

std::vector<Bun> MakeRelation(size_t n, uint64_t seed, uint32_t value_range,
                              oid_t head_base = 0) {
  Rng rng(seed);
  std::vector<Bun> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {static_cast<oid_t>(head_base + i),
              static_cast<uint32_t>(rng.NextBelow(value_range))};
  }
  return out;
}

std::vector<Bun> Canon(std::vector<Bun> v) {
  std::sort(v.begin(), v.end(), [](const Bun& a, const Bun& b) {
    return a.head != b.head ? a.head < b.head : a.tail < b.tail;
  });
  return v;
}

// Runs all five algorithms and checks them against nested loop.
void ExpectAllAlgorithmsAgree(std::span<const Bun> l, std::span<const Bun> r,
                              int bits, int passes) {
  DirectMemory mem;
  std::vector<Bun> expect = Canon(NestedLoopJoin(l, r, mem));

  auto shj = SimpleHashJoin(l, r, mem);
  EXPECT_EQ(Canon(shj), expect) << "simple hash";

  auto smq = SortMergeJoin(l, r, mem, nullptr, SortAlgo::kQuickSort);
  EXPECT_EQ(Canon(smq), expect) << "sort-merge/quick";

  auto smr = SortMergeJoin(l, r, mem, nullptr, SortAlgo::kRadixSort);
  EXPECT_EQ(Canon(smr), expect) << "sort-merge/radix";

  auto ph = PartitionedHashJoin(l, r, bits, passes, mem);
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(Canon(*ph), expect) << "phash bits=" << bits;

  auto rj = RadixJoin(l, r, bits, passes, mem);
  ASSERT_TRUE(rj.ok());
  EXPECT_EQ(Canon(*rj), expect) << "radix bits=" << bits;
}

TEST(BucketChainedHashTableTest, FindsAllAndOnlyMatches) {
  DirectMemory mem;
  std::vector<Bun> build = {{0, 5}, {1, 9}, {2, 5}, {3, 7}};
  BucketChainedHashTable<DirectMemory> t(build, 0, 4, mem);
  std::vector<oid_t> hits;
  t.Probe({99, 5}, mem, [&](Bun b) { hits.push_back(b.head); });
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<oid_t>{0, 2}));
  hits.clear();
  t.Probe({99, 8}, mem, [&](Bun b) { hits.push_back(b.head); });
  EXPECT_TRUE(hits.empty());
}

TEST(BucketChainedHashTableTest, BucketCountFollowsChainTarget) {
  DirectMemory mem;
  std::vector<Bun> build(1000);
  for (uint32_t i = 0; i < 1000; ++i) build[i] = {i, i};
  BucketChainedHashTable<DirectMemory> t(build, 0, 4, mem);
  EXPECT_EQ(t.bucket_count(), 256u);  // next pow2 of 1000/4
  BucketChainedHashTable<DirectMemory> t1(build, 0, 1, mem);
  EXPECT_EQ(t1.bucket_count(), 1024u);
}

TEST(BucketChainedHashTableTest, EmptyBuild) {
  DirectMemory mem;
  std::vector<Bun> none;
  BucketChainedHashTable<DirectMemory> t(none, 0, 4, mem);
  int calls = 0;
  t.Probe({0, 0}, mem, [&](Bun) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BucketChainedHashTableTest, ShiftSkipsRadixBits) {
  // All values share the low 4 bits; with shift=4 the table must still
  // spread them over buckets (no degenerate chain).
  DirectMemory mem;
  std::vector<Bun> build(256);
  for (uint32_t i = 0; i < 256; ++i) build[i] = {i, (i << 4) | 0x3};
  BucketChainedHashTable<DirectMemory> t(build, 4, 4, mem);
  size_t max_chain = 0;
  for (uint32_t b = 0; b < t.bucket_count(); ++b) {
    max_chain = std::max(max_chain, t.ChainLength(b));
  }
  EXPECT_LE(max_chain, 8u);  // identity hash above the radix bits: even
  std::vector<oid_t> hits;
  t.Probe({9, (37u << 4) | 0x3}, mem, [&](Bun b) { hits.push_back(b.head); });
  EXPECT_EQ(hits, (std::vector<oid_t>{37}));
}

TEST(NestedLoopJoinTest, CrossProductOnAllEqual) {
  DirectMemory mem;
  std::vector<Bun> l = {{0, 7}, {1, 7}};
  std::vector<Bun> r = {{10, 7}, {11, 7}, {12, 7}};
  auto out = NestedLoopJoin(std::span<const Bun>(l), std::span<const Bun>(r),
                            mem);
  EXPECT_EQ(out.size(), 6u);
}

TEST(JoinEdgeCases, EmptyInputs) {
  std::vector<Bun> l = {{0, 1}}, empty;
  ExpectAllAlgorithmsAgree(empty, l, 2, 1);
  ExpectAllAlgorithmsAgree(l, empty, 2, 1);
  ExpectAllAlgorithmsAgree(empty, empty, 2, 1);
}

TEST(JoinEdgeCases, NoMatches) {
  std::vector<Bun> l = {{0, 1}, {1, 3}, {2, 5}};
  std::vector<Bun> r = {{0, 2}, {1, 4}, {2, 6}};
  ExpectAllAlgorithmsAgree(l, r, 2, 1);
}

TEST(JoinEdgeCases, AllSameValue) {
  std::vector<Bun> l(8, Bun{0, 42}), r(8, Bun{0, 42});
  for (uint32_t i = 0; i < 8; ++i) {
    l[i].head = i;
    r[i].head = 100 + i;
  }
  ExpectAllAlgorithmsAgree(l, r, 3, 1);  // 64 result pairs
}

TEST(JoinEdgeCases, SkewedZipfLike) {
  // 90% of tuples share one hot value; the rest are unique.
  std::vector<Bun> l, r;
  for (uint32_t i = 0; i < 200; ++i) {
    l.push_back({i, i < 180 ? 7u : 1000 + i});
    r.push_back({500 + i, i < 180 ? 7u : 1000 + i});
  }
  ExpectAllAlgorithmsAgree(l, r, 4, 2);
}

TEST(JoinEdgeCases, DifferentCardinalities) {
  auto l = MakeRelation(97, 11, 64);
  auto r = MakeRelation(311, 12, 64, /*head_base=*/10000);
  ExpectAllAlgorithmsAgree(l, r, 3, 1);
}

TEST(JoinHitRateOne, PaperSetupProducesJoinIndex) {
  // §3.4.1: unique uniformly distributed values, hit rate 1; the result is
  // a perfect 1:1 join index of cardinality C.
  constexpr size_t kC = 4096;
  auto values = UniqueU32(kC, 99);
  std::vector<Bun> l(kC), r(kC);
  for (size_t i = 0; i < kC; ++i) l[i] = {static_cast<oid_t>(i), values[i]};
  // r is a shuffled copy with different OIDs.
  auto shuffled = values;
  Rng rng(7);
  Shuffle(shuffled, rng);
  for (size_t i = 0; i < kC; ++i)
    r[i] = {static_cast<oid_t>(100000 + i), shuffled[i]};

  DirectMemory mem;
  JoinStats stats;
  auto out = PartitionedHashJoin(std::span<const Bun>(l),
                                 std::span<const Bun>(r), 6, 1, mem, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), kC);
  EXPECT_EQ(stats.result_count, kC);
  // Every left OID appears exactly once and maps to the right tuple with
  // the same value.
  std::map<oid_t, oid_t> pairs;
  for (const Bun& b : *out) {
    EXPECT_TRUE(pairs.emplace(b.head, b.tail).second);
  }
  EXPECT_EQ(pairs.size(), kC);
  for (size_t i = 0; i < kC; ++i) {
    oid_t rhs = pairs[static_cast<oid_t>(i)];
    EXPECT_EQ(shuffled[rhs - 100000], values[i]);
  }
}

TEST(JoinStatsTest, PhasesAreFilled) {
  DirectMemory mem;
  auto l = MakeRelation(5000, 21, 5000);
  auto r = MakeRelation(5000, 22, 5000);
  JoinStats stats;
  auto out = RadixJoin(std::span<const Bun>(l), std::span<const Bun>(r), 8, 2,
                       mem, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.bits, 8);
  EXPECT_EQ(stats.passes, 2);
  EXPECT_EQ(stats.result_count, out->size());
  EXPECT_GE(stats.cluster_left_ms, 0.0);
  EXPECT_GE(stats.total_ms(), stats.join_ms);
}

TEST(JoinInvalidOptions, PropagateStatus) {
  DirectMemory mem;
  auto l = MakeRelation(10, 1, 10);
  EXPECT_FALSE(PartitionedHashJoin(std::span<const Bun>(l),
                                   std::span<const Bun>(l), 4, 9, mem)
                   .ok());
  EXPECT_FALSE(
      RadixJoin(std::span<const Bun>(l), std::span<const Bun>(l), -2, 1, mem)
          .ok());
}

TEST(JoinWithMurmurHash, MatchesReference) {
  DirectMemory mem;
  auto l = MakeRelation(300, 31, 40);
  auto r = MakeRelation(300, 32, 40);
  std::vector<Bun> expect = Canon(NestedLoopJoin(
      std::span<const Bun>(l), std::span<const Bun>(r), mem));
  auto ph = PartitionedHashJoin<DirectMemory, MurmurHash>(
      std::span<const Bun>(l), std::span<const Bun>(r), 4, 2, mem);
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(Canon(*ph), expect);
  auto rj = RadixJoin<DirectMemory, MurmurHash>(
      std::span<const Bun>(l), std::span<const Bun>(r), 4, 2, mem);
  ASSERT_TRUE(rj.ok());
  EXPECT_EQ(Canon(*rj), expect);
}

// Randomized sweep over (cardinality, value range, bits, passes): all
// algorithms agree with the reference.
class JoinEquivalenceSweep
    : public ::testing::TestWithParam<
          std::tuple<size_t, uint32_t, int, int>> {};

TEST_P(JoinEquivalenceSweep, AllAlgorithmsAgree) {
  auto [n, range, bits, passes] = GetParam();
  if (passes > std::max(bits, 1)) GTEST_SKIP();
  auto l = MakeRelation(n, 1000 + n + range, range);
  auto r = MakeRelation(n + n / 3, 2000 + n + bits, range, 50000);
  ExpectAllAlgorithmsAgree(l, r, bits, passes);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, JoinEquivalenceSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 100, 1500),
                       ::testing::Values<uint32_t>(2, 97, 100000),
                       ::testing::Values(0, 1, 5, 9),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ccdb
