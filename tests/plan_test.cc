// The composable query API: builder validation, logical->physical lowering,
// candidate-list pipelining (pipelined == materialized), per-node cost-model
// planning, and the candidate-list BAT-algebra kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>

#include "algo/bat_algebra.h"
#include "exec/ops.h"
#include "exec/plan.h"
#include "model/planner.h"
#include "util/rng.h"

namespace ccdb {
namespace {

RowStore MakeItems(size_t n) {
  auto rs = RowStore::Make(
      {
          {"order", FieldType::kU32},
          {"qty", FieldType::kU32},
          {"price", FieldType::kF64},
          {"shipmode", FieldType::kChar10},
      },
      n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 3));
    rs->SetU32(r, 1, static_cast<uint32_t>(1 + i % 5));
    rs->SetF64(r, 2, 10.0 + static_cast<double>(i));
    const char* m = modes[i % 4];
    rs->SetBytes(r, 3, m, strlen(m));
  }
  return *std::move(rs);
}

Table MakeOrders(size_t n) {
  auto rs = RowStore::Make(
      {{"order_id", FieldType::kU32}, {"prio", FieldType::kU32}}, n);
  CCDB_CHECK(rs.ok());
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetU32(r, 1, static_cast<uint32_t>(i % 7));
  }
  return *Table::FromRowStore(*rs);
}

// --- builder validation ------------------------------------------------------

TEST(QueryBuilderTest, UnknownColumnIsNotFound) {
  Table t = *Table::FromRowStore(MakeItems(10));
  auto plan = QueryBuilder(t).Select(Predicate::RangeU32("nope", 0, 1)).Build();
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(QueryBuilderTest, PredicateTypeMismatch) {
  Table t = *Table::FromRowStore(MakeItems(10));
  // RangeU32 on an f64 column.
  auto p1 = QueryBuilder(t).Select(Predicate::RangeU32("price", 0, 1)).Build();
  EXPECT_EQ(p1.status().code(), StatusCode::kInvalidArgument);
  // RangeF64 on a u32 column.
  auto p2 = QueryBuilder(t).Select(Predicate::RangeF64("qty", 0, 1)).Build();
  EXPECT_EQ(p2.status().code(), StatusCode::kInvalidArgument);
  // EqStr on a u32 column.
  auto p3 = QueryBuilder(t).Select(Predicate::EqStr("qty", "x")).Build();
  EXPECT_EQ(p3.status().code(), StatusCode::kInvalidArgument);
  // EqStr on an encoded string column is fine.
  auto p4 = QueryBuilder(t).Select(Predicate::EqStr("shipmode", "AIR")).Build();
  EXPECT_TRUE(p4.ok());
}

TEST(QueryBuilderTest, JoinKeyMustBeU32) {
  Table items = *Table::FromRowStore(MakeItems(10));
  Table orders = MakeOrders(5);
  auto plan =
      QueryBuilder(items).Join(orders, "price", "order_id").Build();
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  auto plan2 =
      QueryBuilder(items).Join(orders, "order", "order_id").Build();
  EXPECT_TRUE(plan2.ok());
}

TEST(QueryBuilderTest, AmbiguousColumnAfterSelfJoin) {
  Table items = *Table::FromRowStore(MakeItems(10));
  // items x items: every column name collides; referencing one is an error.
  auto plan = QueryBuilder(items)
                  .Join(items, "order", "order")
                  .Select(Predicate::RangeU32("qty", 0, 5))
                  .Build();
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST(QueryBuilderTest, EmptyProjectAndBadAggregates) {
  Table t = *Table::FromRowStore(MakeItems(10));
  auto p1 = QueryBuilder(t).Project({}).Build();
  EXPECT_EQ(p1.status().code(), StatusCode::kInvalidArgument);
  // Grouping on an f64 column.
  auto p2 = QueryBuilder(t).GroupBySum("price", "qty").Build();
  EXPECT_EQ(p2.status().code(), StatusCode::kInvalidArgument);
  // Summing an f64 column.
  auto p3 = QueryBuilder(t).GroupBySum("qty", "price").Build();
  EXPECT_EQ(p3.status().code(), StatusCode::kInvalidArgument);
  // Grouping on an encoded string column is fine.
  auto p4 = QueryBuilder(t).GroupBySum("shipmode", "qty").Build();
  EXPECT_TRUE(p4.ok());
}

TEST(QueryBuilderTest, OutputSchemaAndToString) {
  Table items = *Table::FromRowStore(MakeItems(12));
  auto plan = QueryBuilder(items)
                  .Select(Predicate::EqStr("shipmode", "MAIL"))
                  .GroupBySum("shipmode", "qty")
                  .OrderBy("sum", true)
                  .Limit(3)
                  .Build();
  ASSERT_TRUE(plan.ok());
  const auto& schema = plan->output_schema();
  ASSERT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema[0].name, "shipmode");
  EXPECT_EQ(schema[0].type, PhysType::kStr);
  EXPECT_EQ(schema[1].name, "sum");
  EXPECT_EQ(schema[1].type, PhysType::kI64);
  EXPECT_EQ(schema[2].name, "count");
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Limit"), std::string::npos);
  EXPECT_NE(s.find("GroupByAgg"), std::string::npos);
  EXPECT_NE(s.find("Scan"), std::string::npos);
}

// --- execution vs hand-composed baselines ------------------------------------

TEST(PlanExecTest, SelectProjectMatchesBatAlgebra) {
  Rng rng(11);
  constexpr size_t kN = 5000;
  auto rs = RowStore::Make({{"a", FieldType::kU32}, {"b", FieldType::kU32}},
                           kN);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < kN; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(rng.NextBelow(1000)));
    rs->SetU32(r, 1, static_cast<uint32_t>(i));
  }
  Table t = *Table::FromRowStore(*rs);

  auto plan = QueryBuilder(t)
                  .Select(Predicate::RangeU32("a", 100, 300))
                  .Project({"b"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto result = Execute(*plan);
  ASSERT_TRUE(result.ok());

  // Baseline: BatSelect on the a-BAT, positional BatJoin to reconstruct b.
  auto sel = BatSelect(t.column_bat(0), 100, 300);
  ASSERT_TRUE(sel.ok());
  auto cand = Bat::Make(sel->head(), sel->head());
  ASSERT_TRUE(cand.ok());
  auto b = BatJoin(*cand, t.column_bat(1));
  ASSERT_TRUE(b.ok());

  const auto& got = result->columns[0].u32_values;
  ASSERT_EQ(got.size(), b->size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], b->tail().Span<uint32_t>()[i]);
  }
}

TEST(PlanExecTest, SelectJoinAggregateMatchesOracle) {
  constexpr size_t kItems = 3000;
  RowStore rows = MakeItems(kItems);
  Table items = *Table::FromRowStore(rows);
  Table orders = MakeOrders(kItems / 3 + 1);

  // SELECT prio, SUM(qty) FROM items JOIN orders ON order = order_id
  // WHERE shipmode = 'MAIL' GROUP BY prio;
  auto plan = QueryBuilder(items)
                  .Select(Predicate::EqStr("shipmode", "MAIL"))
                  .Join(orders, "order", "order_id")
                  .GroupBySum("prio", "qty")
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto result = Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Row-at-a-time oracle.
  std::map<uint32_t, uint64_t> expect_sum;
  std::map<uint32_t, uint64_t> expect_count;
  for (size_t i = 0; i < kItems; ++i) {
    if (i % 4 != 0) continue;  // shipmode == "MAIL"
    uint32_t order = static_cast<uint32_t>(i / 3);
    uint32_t prio = order % 7;
    expect_sum[prio] += 1 + i % 5;
    expect_count[prio] += 1;
  }

  const auto& prio = result->columns[*result->ColumnIndex("prio")].u32_values;
  const auto& sum = result->columns[*result->ColumnIndex("sum")].i64_values;
  const auto& count =
      result->columns[*result->ColumnIndex("count")].i64_values;
  ASSERT_EQ(prio.size(), expect_sum.size());
  for (size_t g = 0; g < prio.size(); ++g) {
    EXPECT_EQ(static_cast<uint64_t>(sum[g]), expect_sum[prio[g]]) << prio[g];
    EXPECT_EQ(static_cast<uint64_t>(count[g]), expect_count[prio[g]]);
  }
}

TEST(PlanExecTest, OrderByLimitOffset) {
  Table items = *Table::FromRowStore(MakeItems(40));
  auto build = [&](bool desc, size_t limit, size_t offset) {
    auto plan = QueryBuilder(items)
                    .GroupBySum("shipmode", "qty")
                    .OrderBy("sum", desc)
                    .Limit(limit, offset)
                    .Build();
    CCDB_CHECK(plan.ok());
    auto r = Execute(*plan);
    CCDB_CHECK(r.ok());
    return *std::move(r);
  };
  QueryResult top = build(true, 2, 0);
  ASSERT_EQ(top.num_rows(), 2u);
  EXPECT_GE(top.columns[1].i64_values[0], top.columns[1].i64_values[1]);
  QueryResult rest = build(true, 2, 2);
  ASSERT_EQ(rest.num_rows(), 2u);
  // Offset continues where the first page ended.
  EXPECT_GE(top.columns[1].i64_values[1], rest.columns[1].i64_values[0]);
  QueryResult asc = build(false, 4, 0);
  ASSERT_EQ(asc.num_rows(), 4u);
  EXPECT_LE(asc.columns[1].i64_values[0], asc.columns[1].i64_values[3]);
}

TEST(PlanExecTest, EmptySelectionStillTyped) {
  Table items = *Table::FromRowStore(MakeItems(20));
  auto plan = QueryBuilder(items)
                  .Select(Predicate::EqStr("shipmode", "PIGEON"))
                  .Project({"qty", "shipmode"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto result = Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
  ASSERT_EQ(result->num_columns(), 2u);
  EXPECT_EQ(result->columns[0].name, "qty");
  EXPECT_EQ(result->columns[1].type, PhysType::kStr);
}

// --- candidate-list equivalence ----------------------------------------------

TEST(PlanExecTest, PipelinedEqualsMaterialized) {
  constexpr size_t kItems = 10000;
  Table items = *Table::FromRowStore(MakeItems(kItems));
  Table orders = MakeOrders(kItems / 3 + 1);
  auto build = [&]() {
    auto plan = QueryBuilder(items)
                    .Select(Predicate::RangeU32("qty", 2, 4))
                    .Join(orders, "order", "order_id")
                    .GroupBySum("prio", "qty")
                    .OrderBy("prio")
                    .Build();
    CCDB_CHECK(plan.ok());
    return *std::move(plan);
  };
  // Whole-BAT-at-a-time (full materialization, the paper's model) ...
  PlannerOptions mat;
  mat.exec.scan_chunk_rows = SIZE_MAX;
  auto materialized = Execute(build(), mat);
  ASSERT_TRUE(materialized.ok());
  // ... vs small chunks pipelined through select and join.
  for (size_t chunk : {64u, 257u, 4096u}) {
    PlannerOptions piped;
    piped.exec.scan_chunk_rows = chunk;
    auto pipelined = Execute(build(), piped);
    ASSERT_TRUE(pipelined.ok()) << pipelined.status().ToString();
    ASSERT_EQ(pipelined->num_columns(), materialized->num_columns());
    ASSERT_EQ(pipelined->num_rows(), materialized->num_rows()) << chunk;
    for (size_t c = 0; c < materialized->num_columns(); ++c) {
      EXPECT_EQ(pipelined->columns[c].u32_values,
                materialized->columns[c].u32_values);
      EXPECT_EQ(pipelined->columns[c].i64_values,
                materialized->columns[c].i64_values);
    }
  }
}

// --- per-node cost-model planning --------------------------------------------

TEST(PlannerTest, StrategySwitchesWithInnerCardinality) {
  // fact JOIN small (inner C=2000) JOIN big (inner C=1<<20): the model must
  // pick different physical plans for the two join nodes.
  constexpr size_t kFact = 20000, kSmall = 2000, kBig = 1 << 20;
  Rng rng(5);
  auto fact_rs = RowStore::Make(
      {{"sk", FieldType::kU32}, {"bk", FieldType::kU32}}, kFact);
  ASSERT_TRUE(fact_rs.ok());
  for (size_t i = 0; i < kFact; ++i) {
    size_t r = *fact_rs->AppendRow();
    fact_rs->SetU32(r, 0, static_cast<uint32_t>(rng.NextBelow(kSmall)));
    fact_rs->SetU32(r, 1, static_cast<uint32_t>(rng.NextBelow(kBig)));
  }
  Table fact = *Table::FromRowStore(*fact_rs);
  auto dim = [](size_t n, const char* key) {
    auto rs = RowStore::Make({{key, FieldType::kU32}}, n);
    CCDB_CHECK(rs.ok());
    for (size_t i = 0; i < n; ++i) {
      size_t r = *rs->AppendRow();
      rs->SetU32(r, 0, static_cast<uint32_t>(i));
    }
    return *Table::FromRowStore(*rs);
  };
  Table small = dim(kSmall, "sid");
  Table big = dim(kBig, "bid");

  auto plan = QueryBuilder(fact)
                  .Join(small, "sk", "sid")
                  .Join(big, "bk", "bid")
                  .Build();
  ASSERT_TRUE(plan.ok());
  // Pinned to the static GenericX86 profile: the assertion below is about
  // the *model's* bits-vs-cardinality monotonicity at these (cache-sized)
  // relations, which the measured host profile's much larger TLB/L2
  // legitimately flattens.
  PlannerOptions opts;
  opts.profile = MachineProfile::GenericX86();
  Planner planner(opts);
  auto physical = planner.Lower(*plan);
  ASSERT_TRUE(physical.ok());
  auto result = physical->Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), kFact);  // both joins hit exactly once

  ASSERT_EQ(physical->joins().size(), 2u);
  const JoinNodeInfo& j_small = physical->joins()[0];
  const JoinNodeInfo& j_big = physical->joins()[1];
  EXPECT_EQ(j_small.inner_cardinality, kSmall);
  EXPECT_EQ(j_big.inner_cardinality, kBig);
  // The cost model prescribes more radix bits as the inner relation grows
  // past the cache sizes; at 2000 vs 1M tuples the plans must differ.
  EXPECT_LT(j_small.plan.bits, j_big.plan.bits);
  EXPECT_EQ(j_small.stats.result_count + j_big.stats.result_count,
            2 * kFact);
}

TEST(PlannerTest, InnerSelectionChangesJoinPlan) {
  // The same join planned at full vs filtered inner cardinality: the
  // per-node planner must consult the model with the *actual* (post-
  // selection) cardinality, not the base table's.
  constexpr size_t kN = 1 << 20;
  Table fact = MakeOrders(5000);  // order_id 0..4999
  auto rs = RowStore::Make({{"id", FieldType::kU32}}, kN);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < kN; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
  }
  Table big = *Table::FromRowStore(*rs);

  auto unfiltered = QueryBuilder(fact).Join(big, "order_id", "id").Build();
  ASSERT_TRUE(unfiltered.ok());
  QueryBuilder inner(big);
  inner.Select(Predicate::RangeU32("id", 0, 999));
  auto filtered =
      QueryBuilder(fact).Join(std::move(inner), "order_id", "id").Build();
  ASSERT_TRUE(filtered.ok());

  // Static profile for the same reason as StrategySwitchesWithInnerCardinality.
  PlannerOptions opts;
  opts.profile = MachineProfile::GenericX86();
  Planner planner(opts);
  auto p1 = planner.Lower(*unfiltered);
  auto p2 = planner.Lower(*filtered);
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_TRUE(p1->Execute().ok());
  ASSERT_TRUE(p2->Execute().ok());
  EXPECT_EQ(p1->joins()[0].inner_cardinality, kN);
  EXPECT_EQ(p2->joins()[0].inner_cardinality, 1000u);
  EXPECT_LT(p2->joins()[0].plan.bits, p1->joins()[0].plan.bits);
  EXPECT_FALSE(p1->ExplainJoins().empty());
}

// --- candidate-list kernels --------------------------------------------------

TEST(CandidateKernelTest, SelectPositions) {
  Bat b = Bat::DenseTail(Column::U32({5, 10, 15, 20, 25, 30}));
  std::vector<oid_t> cands = {1, 3, 5};
  auto pos = BatSelectPositions(b, 10, 25, cands);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, (std::vector<uint32_t>{0, 1}));  // oids 1 (10) and 3 (20)
  // Dense variant over [2, 5): values 15, 20, 25.
  auto dense = BatSelectPositionsDense(b, 20, 99, /*base=*/2, /*count=*/3);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(*dense, (std::vector<uint32_t>{1, 2}));
  // Out-of-range candidates are errors, not skips.
  std::vector<oid_t> bad = {99};
  EXPECT_EQ(BatSelectPositions(b, 0, 99, bad).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(BatSelectPositionsDense(b, 0, 99, 4, 3).status().code(),
            StatusCode::kOutOfRange);
}

TEST(CandidateKernelTest, Project) {
  Bat b = Bat::DenseTail(Column::U16({7, 8, 9, 10}));
  std::vector<oid_t> cands = {3, 0, 3};
  auto proj = BatProject(b, cands);
  ASSERT_TRUE(proj.ok());
  ASSERT_EQ(proj->size(), 3u);
  EXPECT_TRUE(proj->head().is_void());  // fresh dense head: free OIDs
  auto tails = proj->tail().Span<uint32_t>();
  EXPECT_EQ(tails[0], 10u);
  EXPECT_EQ(tails[1], 7u);
  EXPECT_EQ(tails[2], 10u);
  // Non-integral tail rejected.
  Bat f = Bat::DenseTail(Column::F64({1.0}));
  std::vector<oid_t> zero = {0};
  EXPECT_EQ(BatProject(f, zero).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanExecTest, LazyI64ColumnsMaterialize) {
  auto rs = RowStore::Make({{"k", FieldType::kU32}, {"big", FieldType::kI64}},
                           6);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < 6; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetI64(r, 1, static_cast<int64_t>(i) * 1'000'000'000'000 - 3);
  }
  Table t = *Table::FromRowStore(*rs);
  auto plan = QueryBuilder(t)
                  .Select(Predicate::RangeU32("k", 2, 4))
                  .OrderBy("big", /*descending=*/true)
                  .Project({"big"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  auto result = Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->columns[0].type, PhysType::kI64);
  EXPECT_EQ(result->columns[0].i64_values,
            (std::vector<int64_t>{3'999'999'999'997, 2'999'999'999'997,
                                  1'999'999'999'997}));
}

TEST(PlanExecTest, GroupByManyDistinctKeys) {
  // Exercises the group table's rehash growth (far beyond the initial
  // 1024 buckets) and checks totals against a closed form.
  constexpr size_t kN = 100000;
  auto rs = RowStore::Make({{"g", FieldType::kU32}, {"v", FieldType::kU32}},
                           kN);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < kN; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 2));  // 50000 groups
    rs->SetU32(r, 1, 1);
  }
  Table t = *Table::FromRowStore(*rs);
  auto plan = QueryBuilder(t).GroupBySum("g", "v").Build();
  ASSERT_TRUE(plan.ok());
  auto result = Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), kN / 2);
  const auto& sums = result->columns[1].i64_values;
  for (int64_t s : sums) ASSERT_EQ(s, 2);
}

// --- parallel execution ------------------------------------------------------

// Canonical form for group-by output (parallel shard merging may reorder
// groups): rows sorted by group key.
std::vector<std::tuple<uint32_t, int64_t, int64_t>> CanonGroups(
    const QueryResult& r) {
  std::vector<std::tuple<uint32_t, int64_t, int64_t>> rows;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    rows.emplace_back(r.columns[0].u32_values[i], r.columns[1].i64_values[i],
                      r.columns[2].i64_values[i]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ParallelExecTest, SelectAndJoinAreByteIdenticalAtAnyParallelism) {
  constexpr size_t kItems = 50000;
  Table items = *Table::FromRowStore(MakeItems(kItems));
  Table orders = MakeOrders(kItems / 3 + 1);
  auto build = [&]() {
    auto plan = QueryBuilder(items)
                    .Select(Predicate::RangeU32("qty", 2, 4))
                    .Join(orders, "order", "order_id")
                    .Project({"qty", "prio"})
                    .Build();
    CCDB_CHECK(plan.ok());
    return *std::move(plan);
  };
  PlannerOptions serial;
  serial.exec.scan_chunk_rows = 8192;  // several chunks
  serial.exec.parallelism = 1;
  auto expect = Execute(build(), serial);
  ASSERT_TRUE(expect.ok());
  ASSERT_GT(expect->num_rows(), 0u);
  for (size_t par : {2u, 8u}) {
    PlannerOptions opts = serial;
    opts.exec.parallelism = par;
    auto got = Execute(build(), opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Morsel and partition results concatenate in deterministic order:
    // select and join output must match the serial run row for row.
    ASSERT_EQ(got->num_rows(), expect->num_rows()) << par;
    for (size_t c = 0; c < expect->num_columns(); ++c) {
      EXPECT_EQ(got->columns[c].u32_values, expect->columns[c].u32_values)
          << "parallelism " << par;
    }
  }
}

TEST(ParallelExecTest, GroupByAndOrderByMatchSerialModuloRowOrder) {
  constexpr size_t kItems = 60000;
  Table items = *Table::FromRowStore(MakeItems(kItems));
  Table orders = MakeOrders(kItems / 3 + 1);
  auto run = [&](size_t par, size_t chunk) {
    auto plan = QueryBuilder(items)
                    .Select(Predicate::EqStr("shipmode", "MAIL"))
                    .Join(orders, "order", "order_id")
                    .GroupBySum("prio", "qty")
                    .Build();
    CCDB_CHECK(plan.ok());
    PlannerOptions opts;
    opts.exec.scan_chunk_rows = chunk;
    opts.exec.parallelism = par;
    auto r = Execute(*plan, opts);
    CCDB_CHECK(r.ok());
    return *std::move(r);
  };
  auto expect = CanonGroups(run(1, 8192));
  ASSERT_FALSE(expect.empty());
  for (size_t par : {2u, 8u}) {
    EXPECT_EQ(CanonGroups(run(par, 8192)), expect) << par;
    EXPECT_EQ(CanonGroups(run(par, SIZE_MAX)), expect) << par;
  }
  // OrderBy pins the row order completely: results must be byte-identical
  // even at parallelism 8 (parallel merge sort reproduces stable_sort).
  auto ordered = [&](size_t par) {
    auto plan = QueryBuilder(items)
                    .GroupBySum("order", "qty")
                    .OrderBy("sum", /*descending=*/true)
                    .OrderBy("order")
                    .Build();
    CCDB_CHECK(plan.ok());
    PlannerOptions opts;
    opts.exec.scan_chunk_rows = 8192;
    opts.exec.parallelism = par;
    auto r = Execute(*plan, opts);
    CCDB_CHECK(r.ok());
    return *std::move(r);
  };
  QueryResult base = ordered(1);
  QueryResult par8 = ordered(8);
  ASSERT_EQ(par8.num_rows(), base.num_rows());
  EXPECT_EQ(par8.columns[0].u32_values, base.columns[0].u32_values);
  EXPECT_EQ(par8.columns[1].i64_values, base.columns[1].i64_values);
}

TEST(ParallelExecTest, EmptyAndSingleRowInputs) {
  for (size_t rows : {0u, 1u}) {
    Table items = *Table::FromRowStore(MakeItems(rows));
    Table orders = MakeOrders(5);
    for (size_t par : {1u, 2u, 8u}) {
      auto plan = QueryBuilder(items)
                      .Select(Predicate::RangeU32("qty", 0, 100))
                      .Join(orders, "order", "order_id")
                      .GroupBySum("prio", "qty")
                      .Build();
      ASSERT_TRUE(plan.ok());
      PlannerOptions opts;
      opts.exec.parallelism = par;
      auto r = Execute(*plan, opts);
      ASSERT_TRUE(r.ok()) << rows << " rows, parallelism " << par << ": "
                          << r.status().ToString();
      EXPECT_EQ(r->num_rows(), rows);  // 0 stays 0; the 1-row item matches
    }
  }
}

TEST(ParallelExecTest, InnerIsClusteredOncePerJoin) {
  // Many probe chunks over a radix-planned join: the inner build must
  // happen exactly once at Open(), not per probe chunk (the old defect),
  // and every chunk dispatches partition tasks.
  constexpr size_t kN = 1 << 17;
  Rng rng(9);
  auto rs = RowStore::Make({{"k", FieldType::kU32}}, kN);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < kN; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(rng.NextBelow(kN)));
  }
  Table fact = *Table::FromRowStore(*rs);
  auto dim_rs = RowStore::Make({{"id", FieldType::kU32}}, kN);
  ASSERT_TRUE(dim_rs.ok());
  for (size_t i = 0; i < kN; ++i) {
    size_t r = *dim_rs->AppendRow();
    dim_rs->SetU32(r, 0, static_cast<uint32_t>(i));
  }
  Table dim = *Table::FromRowStore(*dim_rs);

  auto plan = QueryBuilder(fact).Join(dim, "k", "id").Build();
  ASSERT_TRUE(plan.ok());
  PlannerOptions opts;
  opts.exec.scan_chunk_rows = 4096;  // 32 probe chunks
  opts.exec.parallelism = 4;
  Planner planner(opts);
  auto physical = planner.Lower(*plan);
  ASSERT_TRUE(physical.ok());
  auto result = physical->Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), kN);

  ASSERT_EQ(physical->joins().size(), 1u);
  const JoinNodeInfo& j = physical->joins()[0];
  EXPECT_EQ(j.inner_cluster_runs, 1);  // the fix: one inner build, period
  EXPECT_GT(j.plan.bits, 0);
  EXPECT_GT(j.partition_tasks, 0u);
  EXPECT_EQ(j.parallelism, 4u);
  std::string explain = physical->ExplainJoins();
  EXPECT_NE(explain.find("partition tasks"), std::string::npos);
  EXPECT_NE(explain.find("inner clustered 1x"), std::string::npos);
}

// --- legacy wrappers ---------------------------------------------------------

TEST(WrapperTest, JoinTablesMatchesPlanJoin) {
  Table items = *Table::FromRowStore(MakeItems(300));
  Table orders = MakeOrders(101);
  JoinStats stats;
  auto idx = JoinTables(items, "order", orders, "order_id",
                        JoinStrategy::kBest, MachineProfile::GenericX86(),
                        &stats);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->size(), 300u);
  EXPECT_EQ(stats.result_count, 300u);
  for (const Bun& b : *idx) EXPECT_EQ(b.head / 3, b.tail);
}

}  // namespace
}  // namespace ccdb
