// The typed expression API: Expr trees (And/Or/Not, Between, In-lists)
// built with the fluent Col() helpers, Filter/Having nodes with Build()-time
// type checking, NNF normalization, selectivity-ordered conjuncts, and the
// candidate-list lowering — disjunctions as sorted-position-list unions,
// never an intermediate BAT. Includes the regression for
// Predicate::RangeU32 with lo > hi, which used to silently select nothing
// and is now rejected at Build().
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/plan.h"
#include "model/planner.h"

namespace ccdb {
namespace {

// items(order u32, qty u32, price f64, shipmode char10): shipmode cycles
// MAIL/AIR/TRUCK/SHIP, so i % 4 == 0 <=> "MAIL"; qty = 1 + i % 5;
// price = 10 + i % 97.
RowStore MakeItems(size_t n) {
  auto rs = RowStore::Make(
      {
          {"order", FieldType::kU32},
          {"qty", FieldType::kU32},
          {"price", FieldType::kF64},
          {"shipmode", FieldType::kChar10},
      },
      n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 3));
    rs->SetU32(r, 1, static_cast<uint32_t>(1 + i % 5));
    rs->SetF64(r, 2, 10.0 + static_cast<double>(i % 97));
    const char* m = modes[i % 4];
    rs->SetBytes(r, 3, m, strlen(m));
  }
  return *std::move(rs);
}

struct ItemRow {
  uint32_t order, qty;
  double price;
  const char* shipmode;
};

ItemRow ItemAt(size_t i) {
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  return {static_cast<uint32_t>(i / 3), static_cast<uint32_t>(1 + i % 5),
          10.0 + static_cast<double>(i % 97), modes[i % 4]};
}

QueryResult RunPlan(const LogicalPlan& plan, size_t parallelism,
                    size_t chunk_rows = 4096) {
  PlannerOptions opts;
  opts.exec.parallelism = parallelism;
  opts.exec.scan_chunk_rows = chunk_rows;
  auto r = Execute(plan, opts);
  CCDB_CHECK(r.ok());
  return *std::move(r);
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.columns[c].u32_values, b.columns[c].u32_values) << what;
    EXPECT_EQ(a.columns[c].i64_values, b.columns[c].i64_values) << what;
    EXPECT_EQ(a.columns[c].f64_values, b.columns[c].f64_values) << what;
    EXPECT_EQ(a.columns[c].str_values, b.columns[c].str_values) << what;
  }
}

// --- construction and rendering ----------------------------------------------

TEST(ExprTest, FluentConstructionRenders) {
  Expr e = Col("qty") >= 2u &&
           (Col("shipmode") == "MAIL" || !Between(Col("price"), 10.0, 20.0));
  std::string s = e.ToString();
  EXPECT_NE(s.find("qty >= 2"), std::string::npos) << s;
  EXPECT_NE(s.find("shipmode = \"MAIL\""), std::string::npos) << s;
  EXPECT_NE(s.find("OR NOT ("), std::string::npos) << s;

  // && / || flatten at construction: three conjuncts, one And.
  Expr flat = (Col("a") == 1u && Col("b") == 2u) && Col("c") == 3u;
  EXPECT_EQ(flat.kind, Expr::Kind::kAnd);
  EXPECT_EQ(flat.children.size(), 3u);
  EXPECT_EQ(flat.ToString(), "a = 1 AND b = 2 AND c = 3");

  // In-lists render both domains; int literals are accepted.
  EXPECT_EQ(InU32(Col("qty"), {1, 5}).ToString(), "qty in {1, 5}");
  EXPECT_EQ((!InStr(Col("m"), {"A", "B"})).ToString(), "NOT (m in {\"A\", \"B\"})");
  EXPECT_EQ((Col("qty") < 7).ToString(), "qty < 7");
}

TEST(ExprTest, NormalizeIsNnfAndDeMorgan) {
  // NOT over OR: complement distributes into the leaves.
  Expr e = !(Col("a") == 1u || Between(Col("b"), 2u, 4u));
  Expr n = NormalizeExpr(e);
  EXPECT_EQ(n.kind, Expr::Kind::kAnd);
  EXPECT_EQ(n.ToString(), "a != 1 AND b not in [2, 4]");

  // NOT over AND with a nested NOT: !(x = 1 && !(y = "s" && z < 5))
  // = x != 1 || (y = "s" && z < 5).
  Expr m = NormalizeExpr(
      !(Col("x") == 1u && !(Col("y") == "s" && Col("z") < 5u)));
  EXPECT_EQ(m.ToString(), "x != 1 OR (y = \"s\" AND z < 5)");

  // Double negation collapses at construction already.
  Expr d = !!(Col("a") == 1u);
  EXPECT_EQ(d.ToString(), "a = 1");

  // Ordering comparisons complement exactly: !(a < 3) -> a >= 3.
  EXPECT_EQ(NormalizeExpr(!(Col("a") < 3u)).ToString(), "a >= 3");
  EXPECT_EQ(NormalizeExpr(!(Col("a") <= 3u)).ToString(), "a > 3");

  // Normalization is idempotent, and In-lists are sorted + deduplicated.
  Expr in = NormalizeExpr(!InU32(Col("a"), {5, 1, 3, 3}));
  EXPECT_EQ(in.ToString(), "a not in {1, 3, 5}");
  EXPECT_EQ(NormalizeExpr(in).ToString(), in.ToString());
}

TEST(ExprTest, ConjunctRanksAndOrdering) {
  EXPECT_EQ(ConjunctRank(Col("a") == 1u), 0);
  EXPECT_EQ(ConjunctRank(Col("a") >= 1u), 1);
  EXPECT_EQ(ConjunctRank(Between(Col("a"), 1u, 2u)), 1);
  EXPECT_EQ(ConjunctRank(InU32(Col("a"), {1})), 1);
  EXPECT_EQ(ConjunctRank(Col("a") == "s"), 2);
  EXPECT_EQ(ConjunctRank(InStr(Col("a"), {"s"})), 2);
  EXPECT_EQ(ConjunctRank(Col("a") == 1u || Col("b") == 2u), 3);

  Expr ordered = OrderConjunctsBySelectivity(
      Col("s") == "MAIL" && (Col("x") == 1u || Col("y") == 2u) &&
      Between(Col("r"), 0u, 9u) && Col("e") == 7u);
  EXPECT_EQ(ordered.ToString(),
            "e = 7 AND r in [0, 9] AND s = \"MAIL\" AND (x = 1 OR y = 2)");
}

// --- Build()-time validation -------------------------------------------------

TEST(ExprBuildTest, TypeChecksAgainstSchema) {
  Table items = *Table::FromRowStore(MakeItems(12));
  // Unknown column.
  EXPECT_EQ(QueryBuilder(items).Filter(Col("nope") == 1u).Build()
                .status().code(),
            StatusCode::kNotFound);
  // Integer comparison on f64 / string columns.
  EXPECT_EQ(QueryBuilder(items).Filter(Col("price") == 1u).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryBuilder(items).Filter(Col("shipmode") <= 3u).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  // Float comparison on u32 column.
  EXPECT_EQ(QueryBuilder(items).Filter(Col("qty") < 2.5).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  // String ordering comparisons are not supported.
  EXPECT_EQ(QueryBuilder(items).Filter(Col("shipmode") < "MAIL").Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  // Empty In-list.
  EXPECT_EQ(QueryBuilder(items).Filter(InU32(Col("qty"), {})).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  // Validation reaches leaves nested under NOT / OR.
  EXPECT_EQ(QueryBuilder(items)
                .Filter(Col("qty") == 1u || !(Col("price") == 2u))
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // A valid mixed tree builds and renders through the plan.
  auto plan = QueryBuilder(items)
                  .Filter(Col("qty") >= 2u &&
                          (Col("shipmode") == "MAIL" ||
                           !Between(Col("price"), 20.0, 50.0)))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->ToString().find("Select("), std::string::npos);
  EXPECT_NE(plan->ToString().find("OR"), std::string::npos);
}

// Satellite regression: RangeU32 with lo > hi used to Build() fine and
// silently select nothing; it must be an InvalidArgument now.
TEST(ExprBuildTest, InvertedRangesAreRejected) {
  Table items = *Table::FromRowStore(MakeItems(12));
  EXPECT_EQ(QueryBuilder(items)
                .Select(Predicate::RangeU32("qty", 5, 2))
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryBuilder(items).Filter(Between(Col("qty"), 5u, 2u)).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryBuilder(items)
                .Filter(Between(Col("price"), 5.0, 2.0))
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // NaN bounds are not lo > hi: they keep their never-match semantics.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto nan_plan =
      QueryBuilder(items).Filter(Between(Col("price"), nan, nan)).Build();
  ASSERT_TRUE(nan_plan.ok()) << nan_plan.status().ToString();
  EXPECT_EQ(RunPlan(*nan_plan, 1).num_rows(), 0u);
}

TEST(ExprBuildTest, HavingRequiresAggregateInput) {
  Table items = *Table::FromRowStore(MakeItems(12));
  // Having over a plain scan / select is rejected.
  EXPECT_EQ(QueryBuilder(items).Having(Col("qty") >= 2u).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryBuilder(items)
                .Select(Predicate::RangeU32("qty", 0, 9))
                .Having(Col("qty") >= 2u)
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // Directly after GroupByAgg it type-checks against the aggregate schema:
  // u32 literals compare against the i64 sum/count outputs.
  auto ok = QueryBuilder(items)
                .GroupByAgg({"order"}, {Agg::Sum("qty"), Agg::Count()})
                .Having(Col("sum") >= 10u && Col("count") > 1u)
                .Having(Col("sum") <= 100u)  // Having chains on Having
                .Build();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_NE(ok->ToString().find("Having("), std::string::npos);
  // ... but an f64 literal against the i64 sum is a type error.
  EXPECT_EQ(QueryBuilder(items)
                .GroupByAgg({"order"}, {Agg::Sum("qty")})
                .Having(Col("sum") >= 1.5)
                .Build().status().code(),
            StatusCode::kInvalidArgument);
}

// --- legacy wrapper equivalence ----------------------------------------------

TEST(ExprWrapperTest, SelectPredicatesEqualEquivalentFilter) {
  constexpr size_t kN = 30000;
  Table items = *Table::FromRowStore(MakeItems(kN));
  auto legacy = QueryBuilder(items)
                    .Select({Predicate::RangeU32("qty", 2, 4),
                             Predicate::EqStr("shipmode", "MAIL"),
                             Predicate::RangeF64("price", 20.0, 80.0)})
                    .Project({"order", "qty", "price"})
                    .Build();
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  auto exprs = QueryBuilder(items)
                   .Filter(Between(Col("qty"), 2u, 4u) &&
                           Col("shipmode") == "MAIL" &&
                           Between(Col("price"), 20.0, 80.0))
                   .Project({"order", "qty", "price"})
                   .Build();
  ASSERT_TRUE(exprs.ok()) << exprs.status().ToString();
  QueryResult expect = RunPlan(*legacy, 1);
  ASSERT_GT(expect.num_rows(), 0u);
  for (size_t par : {1u, 2u, 8u}) {
    ExpectSameResult(RunPlan(*legacy, par), expect,
                     "legacy wrapper par " + std::to_string(par));
    ExpectSameResult(RunPlan(*exprs, par), expect,
                     "expression filter par " + std::to_string(par));
  }
}

// --- disjunction execution ---------------------------------------------------

TEST(ExprExecTest, OrMatchesOracleAtAnyParallelism) {
  constexpr size_t kN = 30000;
  Table items = *Table::FromRowStore(MakeItems(kN));
  // The acceptance shape: a || (b && !c).
  auto build = [&]() {
    auto plan = QueryBuilder(items)
                    .Filter(Col("qty") == 5u ||
                            (Col("shipmode") == "MAIL" &&
                             !Between(Col("price"), 20.0, 80.0)))
                    .Project({"order", "qty", "price"})
                    .Build();
    CCDB_CHECK(plan.ok());
    return *std::move(plan);
  };
  size_t oracle = 0;
  for (size_t i = 0; i < kN; ++i) {
    ItemRow r = ItemAt(i);
    bool b = r.qty == 5 || (std::strcmp(r.shipmode, "MAIL") == 0 &&
                            !(20.0 <= r.price && r.price <= 80.0));
    if (b) ++oracle;
  }
  auto plan = build();
  QueryResult expect = RunPlan(plan, 1, /*chunk_rows=*/1024);
  ASSERT_EQ(expect.num_rows(), oracle);
  ASSERT_GT(oracle, 0u);
  for (size_t par : {2u, 8u}) {
    ExpectSameResult(RunPlan(plan, par, /*chunk_rows=*/1024), expect,
                     "or-filter par " + std::to_string(par));
  }
  // Chunked and whole-BAT execution agree too (contents and order).
  ExpectSameResult(RunPlan(plan, 1, /*chunk_rows=*/SIZE_MAX), expect,
                   "or-filter whole-BAT");
}

TEST(ExprExecTest, DuplicatePositionsAcrossOrBranchesSurviveOnce) {
  constexpr size_t kN = 10000;
  Table items = *Table::FromRowStore(MakeItems(kN));
  // qty in [1,2] and qty in [2,3] overlap at qty == 2: every matching row
  // must appear exactly once, in scan order.
  auto plan = QueryBuilder(items)
                  .Filter(Between(Col("qty"), 1u, 2u) ||
                          Between(Col("qty"), 2u, 3u))
                  .Project({"order", "qty"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  size_t oracle = 0;
  for (size_t i = 0; i < kN; ++i) {
    if (ItemAt(i).qty <= 3) ++oracle;
  }
  for (size_t par : {1u, 2u, 8u}) {
    QueryResult r = RunPlan(*plan, par, /*chunk_rows=*/512);
    ASSERT_EQ(r.num_rows(), oracle) << par;
    const auto& qty = r.columns[1].u32_values;
    EXPECT_EQ(static_cast<size_t>(
                  std::count_if(qty.begin(), qty.end(),
                                [](uint32_t q) { return q == 2; })),
              kN / 5)
        << par;  // each qty==2 row exactly once
  }
}

TEST(ExprExecTest, OrOverEmptyCandidateLists) {
  Table empty = *Table::FromRowStore(MakeItems(0));
  Table items = *Table::FromRowStore(MakeItems(200));
  for (size_t par : {1u, 2u, 8u}) {
    // Every branch empty on a non-empty table.
    auto none = QueryBuilder(items)
                    .Filter(Col("qty") > 100u || Col("shipmode") == "PIGEON")
                    .Build();
    ASSERT_TRUE(none.ok());
    EXPECT_EQ(RunPlan(*none, par).num_rows(), 0u) << par;
    // One empty branch, one non-empty: union is just the live branch.
    auto half = QueryBuilder(items)
                    .Filter(Col("qty") > 100u || Col("qty") == 2u)
                    .Build();
    ASSERT_TRUE(half.ok());
    EXPECT_EQ(RunPlan(*half, par).num_rows(), 40u) << par;
    // An Or narrowing an already-empty survivor list.
    auto nested = QueryBuilder(items)
                      .Filter(Col("qty") > 100u &&
                              (Col("qty") == 1u || Col("qty") == 2u))
                      .Build();
    ASSERT_TRUE(nested.ok());
    EXPECT_EQ(RunPlan(*nested, par).num_rows(), 0u) << par;
    // The whole pipeline over an empty table.
    auto on_empty = QueryBuilder(empty)
                        .Filter(Col("qty") == 1u ||
                                !(Col("shipmode") == "MAIL"))
                        .Build();
    ASSERT_TRUE(on_empty.ok());
    EXPECT_EQ(RunPlan(*on_empty, par).num_rows(), 0u) << par;
  }
}

TEST(ExprExecTest, InListsOnEncodedAndRawColumns) {
  constexpr size_t kN = 8000;
  RowStore rows = MakeItems(kN);
  Table encoded = *Table::FromRowStore(rows);
  Table raw = *Table::FromRowStore(rows, /*auto_encode=*/false);
  size_t in_u32 = 0, not_in_str = 0;
  for (size_t i = 0; i < kN; ++i) {
    ItemRow r = ItemAt(i);
    if (r.qty == 1 || r.qty == 3 || r.qty == 5) ++in_u32;
    if (std::strcmp(r.shipmode, "MAIL") != 0 &&
        std::strcmp(r.shipmode, "SHIP") != 0) {
      ++not_in_str;
    }
  }
  for (const Table* t : {&encoded, &raw}) {
    for (size_t par : {1u, 8u}) {
      auto u32_plan =
          QueryBuilder(*t).Filter(InU32(Col("qty"), {5, 1, 3, 3})).Build();
      ASSERT_TRUE(u32_plan.ok());
      EXPECT_EQ(RunPlan(*u32_plan, par).num_rows(), in_u32) << par;
      // "XXX" is not in the data: it drops out of the In set, and the
      // negated form matches everything the known strings don't.
      auto str_plan = QueryBuilder(*t)
                          .Filter(!InStr(Col("shipmode"),
                                         {"MAIL", "SHIP", "XXX"}))
                          .Build();
      ASSERT_TRUE(str_plan.ok());
      EXPECT_EQ(RunPlan(*str_plan, par).num_rows(), not_in_str) << par;
      // An unknown string negated on its own matches every row.
      auto all = QueryBuilder(*t).Filter(Col("shipmode") != "PIGEON").Build();
      ASSERT_TRUE(all.ok());
      EXPECT_EQ(RunPlan(*all, par).num_rows(), kN) << par;
    }
  }
}

TEST(ExprExecTest, F64NegationFollowsIeee) {
  auto rs = RowStore::Make({{"k", FieldType::kU32}, {"x", FieldType::kF64}},
                           64);
  ASSERT_TRUE(rs.ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < 64; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetF64(r, 1, i % 4 == 0 ? nan : static_cast<double>(i));
  }
  Table t = *Table::FromRowStore(*rs);
  for (size_t par : {1u, 8u}) {
    // NaN fails the range and its negation ("outside [10, 20]" is
    // x < 10 || x > 20, false for NaN): 48 non-NaN values, 8 of them in
    // [10, 20] (12, 16 and 20 are NaN rows), so 40 outside.
    auto inside = QueryBuilder(t).Filter(Between(Col("x"), 10.0, 20.0)).Build();
    ASSERT_TRUE(inside.ok());
    EXPECT_EQ(RunPlan(*inside, par).num_rows(), 8u) << par;
    auto outside =
        QueryBuilder(t).Filter(!Between(Col("x"), 10.0, 20.0)).Build();
    ASSERT_TRUE(outside.ok());
    EXPECT_EQ(RunPlan(*outside, par).num_rows(), 40u) << par;
    // != is IEEE-true for NaN: every row but x == 17 matches.
    auto ne = QueryBuilder(t).Filter(Col("x") != 17.0).Build();
    ASSERT_TRUE(ne.ok());
    EXPECT_EQ(RunPlan(*ne, par).num_rows(), 63u) << par;
  }
}

// --- candidate-list-only execution (no intermediate BAT) ---------------------

TEST(ExprExecTest, FilterKeepsColumnsLazy) {
  Table items = *Table::FromRowStore(MakeItems(5000));
  // a || (b && !c): the acceptance-criteria shape, run directly through the
  // operator to inspect the chunk it emits.
  Expr e = Between(Col("qty"), 2u, 4u) ||
           (Col("shipmode") == "MAIL" && !Between(Col("price"), 20.0, 50.0));
  SelectOp op(std::make_unique<ScanOp>(&items, /*chunk_rows=*/1024),
              std::move(e));
  ASSERT_TRUE(op.Open().ok());
  Chunk out;
  size_t rows = 0, chunks = 0;
  for (;;) {
    auto more = op.Next(&out);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++chunks;
    rows += out.rows;
    // Every column is still a lazy base-table reference resolved through
    // the (shared) candidate list — the filter materialized nothing.
    for (const ChunkColumn& c : out.cols) {
      EXPECT_TRUE(c.lazy()) << c.name;
    }
    ASSERT_EQ(out.cands.size(), 1u);
    for (size_t i = 1; i < out.cands[0].count; ++i) {
      EXPECT_LT(out.cands[0].Get(i - 1), out.cands[0].Get(i));
    }
  }
  op.Close();
  EXPECT_GT(chunks, 1u);
  EXPECT_GT(rows, 0u);
}

TEST(ExprExecTest, DirectSelectOpTypeMismatchIsLoud) {
  // SelectOp composed directly bypasses Build() validation; a literal whose
  // domain doesn't match the column must surface InvalidArgument, never
  // silently compare against the wrong Literal member.
  Table items = *Table::FromRowStore(MakeItems(100));
  SelectOp op(std::make_unique<ScanOp>(&items, /*chunk_rows=*/64),
              Predicate::RangeU32("price", 10, 20).ToExpr());  // price is f64
  ASSERT_TRUE(op.Open().ok());
  Chunk out;
  auto more = op.Next(&out);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
  op.Close();
}

TEST(ExprExecTest, EmptyConjunctionPassesThroughInBothCtors) {
  // A childless And (e.g. a default-constructed Expr) is logically true —
  // exactly like the empty legacy Predicate conjunction.
  Table items = *Table::FromRowStore(MakeItems(100));
  for (int legacy = 0; legacy < 2; ++legacy) {
    SelectOp op = legacy
                      ? SelectOp(std::make_unique<ScanOp>(&items, 64),
                                 std::vector<Predicate>{})
                      : SelectOp(std::make_unique<ScanOp>(&items, 64), Expr{});
    EXPECT_FALSE(op.expr().has_value());
    ASSERT_TRUE(op.Open().ok());
    Chunk out;
    size_t rows = 0;
    for (;;) {
      auto more = op.Next(&out);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      rows += out.rows;
    }
    op.Close();
    EXPECT_EQ(rows, 100u) << (legacy ? "legacy" : "expr");
  }
}

// --- Having ------------------------------------------------------------------

TEST(HavingTest, EveryAggKindFilters) {
  constexpr size_t kN = 21000;
  Table items = *Table::FromRowStore(MakeItems(kN));
  struct Oracle {
    int64_t sum = 0, count = 0;
    uint32_t min = UINT32_MAX, max = 0;
    double avg = 0;
  };
  std::map<uint32_t, Oracle> groups;
  for (size_t i = 0; i < kN; ++i) {
    ItemRow r = ItemAt(i);
    Oracle& o = groups[r.order];
    o.sum += r.qty;
    o.count += 1;
    o.min = std::min(o.min, r.qty);
    o.max = std::max(o.max, r.qty);
  }
  for (auto& [k, o] : groups) {
    o.avg = static_cast<double>(o.sum) / static_cast<double>(o.count);
  }
  auto base = [&]() {
    QueryBuilder qb(items);
    qb.GroupByAgg({"order"}, {Agg::Sum("qty"), Agg::Min("qty"),
                              Agg::Max("qty"), Agg::Avg("qty"), Agg::Count()});
    return qb;
  };
  struct Case {
    const char* name;
    Expr expr;
    std::function<bool(const Oracle&)> pred;
  };
  Case cases[] = {
      {"sum", Col("sum") >= 9u, [](const Oracle& o) { return o.sum >= 9; }},
      {"min", Col("min") >= 2u, [](const Oracle& o) { return o.min >= 2; }},
      {"max", Col("max") <= 4u, [](const Oracle& o) { return o.max <= 4; }},
      {"avg", Col("avg") > 3.0, [](const Oracle& o) { return o.avg > 3.0; }},
      {"count", Col("count") == 3u,
       [](const Oracle& o) { return o.count == 3; }},
      {"sum-and-avg", Col("sum") >= 9u && Col("avg") < 3.5,
       [](const Oracle& o) { return o.sum >= 9 && o.avg < 3.5; }},
  };
  for (const Case& c : cases) {
    auto qb = base();
    qb.Having(c.expr).OrderBy("order");
    auto plan = qb.Build();
    ASSERT_TRUE(plan.ok()) << c.name << ": " << plan.status().ToString();
    size_t expect = 0;
    for (const auto& [k, o] : groups) {
      if (c.pred(o)) ++expect;
    }
    QueryResult serial = RunPlan(*plan, 1);
    ASSERT_EQ(serial.num_rows(), expect) << c.name;
    for (size_t g = 0; g < serial.num_rows(); ++g) {
      const Oracle& o = groups[serial.columns[0].u32_values[g]];
      EXPECT_TRUE(c.pred(o)) << c.name;
    }
    for (size_t par : {2u, 8u}) {
      ExpectSameResult(RunPlan(*plan, par), serial,
                       std::string(c.name) + " par " + std::to_string(par));
    }
  }
}

TEST(HavingTest, I64LiteralsCompareAboveU32Range) {
  // Regression: filter literals used to be u32/f64/string only, so a
  // Having on an i64 sum could not compare against constants above 2^32 —
  // this query was inexpressible before Literal::I64 (long long overloads).
  auto rs = RowStore::Make({{"g", FieldType::kU32}, {"v", FieldType::kU32}},
                           8);
  ASSERT_TRUE(rs.ok());
  // Group 0 sums to 8e9 (past 2^32 = 4294967296); groups 1 and 2 stay tiny.
  const uint32_t kBig = 4000000000u;
  struct {
    uint32_t g, v;
  } rows[] = {{0, kBig}, {0, kBig}, {1, 5}, {1, 6}, {2, 10}, {2, 20}};
  for (auto [g, v] : rows) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, g);
    rs->SetU32(r, 1, v);
  }
  Table t = *Table::FromRowStore(*rs);

  auto run = [&](Expr having) {
    auto plan = QueryBuilder(t)
                    .GroupByAgg({"g"}, {Agg::Sum("v")})
                    .Having(std::move(having))
                    .OrderBy("g")
                    .Build();
    CCDB_CHECK(plan.ok());
    return RunPlan(*plan, 1);
  };

  // Only group 0's sum exceeds 5e9.
  QueryResult above = run(Col("sum") > 5'000'000'000LL);
  ASSERT_EQ(above.num_rows(), 1u);
  EXPECT_EQ(above.columns[0].u32_values[0], 0u);
  EXPECT_EQ(above.columns[1].i64_values[0], 2 * (int64_t)kBig);

  QueryResult below = run(Col("sum") <= 5'000'000'000LL);
  ASSERT_EQ(below.num_rows(), 2u);
  EXPECT_EQ(below.columns[0].u32_values[0], 1u);
  EXPECT_EQ(below.columns[0].u32_values[1], 2u);

  QueryResult between = run(Between(Col("sum"), 5'000'000'000LL,
                                    9'000'000'000LL));
  ASSERT_EQ(between.num_rows(), 1u);
  EXPECT_EQ(between.columns[0].u32_values[0], 0u);

  // An i64 literal on a plain u32 column evaluates widened: v < 5e9 holds
  // for every u32 value (a u32 narrowing would have wrapped to 705032704).
  auto all = QueryBuilder(t).Filter(Col("v") < 5'000'000'000LL).Build();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(RunPlan(*all, 1).num_rows(), 6u);

  // Runtime-computed thresholds: int64_t/uint64_t/size_t *variables* (and
  // mixed-type Between bounds) must resolve without an explicit cast —
  // these were ambiguous among the uint32_t/int/long long/double
  // overloads when only literal suffixes were supported.
  int64_t threshold = 5'000'000'000;
  QueryResult via_var = run(Col("sum") > threshold);
  ASSERT_EQ(via_var.num_rows(), 1u);
  EXPECT_EQ(via_var.columns[0].u32_values[0], 0u);
  uint64_t uthreshold = 5'000'000'000ull;
  EXPECT_EQ(run(Col("sum") > uthreshold).num_rows(), 1u);
  size_t small = 40;
  EXPECT_EQ(run(Col("sum") < small).num_rows(), 2u);  // groups 1 and 2
  EXPECT_EQ(run(Between(Col("sum"), 0, 9'000'000'000LL)).num_rows(), 3u);
  EXPECT_EQ(run(Between(Col("sum"), threshold, int64_t{9'000'000'000}))
                .num_rows(),
            1u);

  // Type checking still applies: i64 literals are integral-only.
  auto rs2 = RowStore::Make({{"f", FieldType::kF64}}, 1);
  ASSERT_TRUE(rs2.ok());
  Table ft = *Table::FromRowStore(*rs2);
  EXPECT_EQ(QueryBuilder(ft).Filter(Col("f") > 5'000'000'000LL).Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Inverted i64 ranges are rejected like u32/f64 ones.
  EXPECT_EQ(QueryBuilder(t)
                .GroupByAgg({"g"}, {Agg::Sum("v")})
                .Having(Between(Col("sum"), 9'000'000'000LL,
                                5'000'000'000LL))
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// --- explain and end-to-end determinism --------------------------------------

TEST(ExplainFiltersTest, ReportsNormalizedTreeAndOrder) {
  Table items = *Table::FromRowStore(MakeItems(600));
  auto plan = QueryBuilder(items)
                  .Filter(Col("shipmode") == "MAIL" &&
                          !(Col("qty") > 4u || Col("price") < 15.0) &&
                          Col("order") == 7u)
                  .GroupByAgg({"order"}, {Agg::Sum("qty")})
                  .Having(Col("sum") >= 4u)
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Planner planner;
  auto physical = planner.Lower(*plan);
  ASSERT_TRUE(physical.ok());
  ASSERT_EQ(physical->filters().size(), 2u);
  const FilterNodeInfo& select = physical->filters()[0];
  EXPECT_STREQ(select.node, "select");
  // NNF: the NOT pushed into the leaves (qty <= 4 AND price >= 15), then
  // flattened into the outer conjunction and ordered eq < range < str-eq.
  EXPECT_EQ(select.normalized,
            "order = 7 AND qty <= 4 AND price >= 15.000000 AND "
            "shipmode = \"MAIL\"");
  ASSERT_EQ(select.conjuncts.size(), 4u);
  EXPECT_EQ(select.ranks, (std::vector<int>{0, 1, 1, 2}));
  const FilterNodeInfo& having = physical->filters()[1];
  EXPECT_STREQ(having.node, "having");
  EXPECT_EQ(having.normalized, "sum >= 4");
  std::string s = physical->ExplainFilters();
  EXPECT_NE(s.find("filter [select]"), std::string::npos) << s;
  EXPECT_NE(s.find("filter [having]"), std::string::npos) << s;
  EXPECT_NE(s.find("[str-eq]"), std::string::npos) << s;
  EXPECT_NE(s.find("eval order:"), std::string::npos) << s;

  auto result = physical->Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(ExprEndToEndTest, OrHeavyPlanThroughJoinAndAggregate) {
  constexpr size_t kItems = 24000;
  Table items = *Table::FromRowStore(MakeItems(kItems));
  auto orders_rs = RowStore::Make(
      {{"order_id", FieldType::kU32}, {"prio", FieldType::kU32}}, kItems / 3);
  ASSERT_TRUE(orders_rs.ok());
  for (size_t i = 0; i < kItems / 3; ++i) {
    size_t r = *orders_rs->AppendRow();
    orders_rs->SetU32(r, 0, static_cast<uint32_t>(i));
    orders_rs->SetU32(r, 1, static_cast<uint32_t>(i % 7));
  }
  Table orders = *Table::FromRowStore(*orders_rs);
  auto build = [&]() {
    auto plan =
        QueryBuilder(items)
            .Filter((Col("qty") == 5u || Col("shipmode") == "MAIL" ||
                     Between(Col("price"), 90.0, 100.0)) &&
                    !InU32(Col("qty"), {2}))
            .Join(orders, "order", "order_id")
            .GroupByAgg({"prio"}, {Agg::Sum("qty"), Agg::Count()})
            .Having(Col("count") >= 1u)
            .OrderBy("prio")
            .Build();
    CCDB_CHECK(plan.ok());
    return *std::move(plan);
  };
  auto plan = build();
  QueryResult expect = RunPlan(plan, 1, /*chunk_rows=*/2048);
  ASSERT_GT(expect.num_rows(), 0u);
  for (size_t par : {2u, 8u}) {
    ExpectSameResult(RunPlan(plan, par, /*chunk_rows=*/2048), expect,
                     "or-heavy end-to-end par " + std::to_string(par));
  }
}

}  // namespace
}  // namespace ccdb
