// BAT algebra (Monet operator style) and radix-partitioned aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/bat_algebra.h"
#include "algo/radix_aggregate.h"
#include "util/rng.h"

namespace ccdb {
namespace {

Bat SampleBat() {
  // [void 0..5, {30, 10, 20, 10, 40, 25}]
  return Bat::DenseTail(Column::U32({30, 10, 20, 10, 40, 25}));
}

TEST(BatAlgebraTest, SelectFiltersByTailRange) {
  auto out = BatSelect(SampleBat(), 10, 25);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  auto heads = out->head().Span<uint32_t>();
  auto tails = out->tail().Span<uint32_t>();
  EXPECT_EQ(std::vector<uint32_t>(heads.begin(), heads.end()),
            (std::vector<uint32_t>{1, 2, 3, 5}));
  EXPECT_EQ(std::vector<uint32_t>(tails.begin(), tails.end()),
            (std::vector<uint32_t>{10, 20, 10, 25}));
}

TEST(BatAlgebraTest, SelectEmptyResultAndBadType) {
  auto none = BatSelect(SampleBat(), 1000, 2000);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->size(), 0u);
  Bat f = Bat::DenseTail(Column::F64({1.0}));
  EXPECT_EQ(BatSelect(f, 0, 1).status().code(), StatusCode::kInvalidArgument);
}

TEST(BatAlgebraTest, MirrorAndMark) {
  auto m = BatMirror(SampleBat());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->head().GetOid(3), 3u);
  EXPECT_EQ(m->tail().GetIntegral(3), 3u);

  auto marked = BatMark(SampleBat(), 1000);
  ASSERT_TRUE(marked.ok());
  EXPECT_TRUE(marked->tail().is_void());
  EXPECT_EQ(marked->tail().GetIntegral(2), 1002u);
}

TEST(BatAlgebraTest, ReverseSwaps) {
  Bat r = BatReverse(SampleBat());
  EXPECT_TRUE(r.tail().is_void());
  EXPECT_EQ(r.head().GetIntegral(0), 30u);
}

TEST(BatAlgebraTest, JoinPositionalPath) {
  // l.tail references positions 100..105 of a void-headed r.
  auto l = *Bat::Make(Column::U32({7, 8, 9}), Column::U32({100, 104, 99}));
  Bat r = *Bat::Make(Column::Void(100, 6),
                     Column::U32({11, 22, 33, 44, 55, 66}));
  auto out = BatJoin(l, r);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // 99 misses the void range
  EXPECT_EQ(out->head().GetIntegral(0), 7u);
  EXPECT_EQ(out->tail().GetIntegral(0), 11u);
  EXPECT_EQ(out->head().GetIntegral(1), 8u);
  EXPECT_EQ(out->tail().GetIntegral(1), 55u);
}

TEST(BatAlgebraTest, JoinHashPath) {
  auto l = *Bat::Make(Column::U32({1, 2}), Column::U32({500, 600}));
  auto r = *Bat::Make(Column::U32({600, 500, 700}),
                      Column::U32({66, 55, 77}));
  auto out = BatJoin(l, r);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  std::map<uint32_t, uint32_t> pairs;
  for (size_t i = 0; i < out->size(); ++i) {
    pairs[static_cast<uint32_t>(out->head().GetIntegral(i))] =
        static_cast<uint32_t>(out->tail().GetIntegral(i));
  }
  EXPECT_EQ(pairs[1], 55u);
  EXPECT_EQ(pairs[2], 66u);
}

TEST(BatAlgebraTest, JoinPathsAgree) {
  // The same logical join through the positional and the hash path.
  Rng rng(3);
  std::vector<uint32_t> refs(500), vals(200);
  for (auto& x : refs) x = static_cast<uint32_t>(rng.NextBelow(250));
  for (size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<uint32_t>(rng.NextU32());
  auto l = *Bat::Make(Column::Void(0, refs.size()), Column::U32(refs));
  Bat r_void = *Bat::Make(Column::Void(0, vals.size()), Column::U32(vals));
  // Materialized-head version of r.
  Bat r_hash = *Bat::Make(r_void.head().Materialize(), r_void.tail());

  auto a = BatJoin(l, r_void);
  auto b = BatJoin(l, r_hash);
  ASSERT_TRUE(a.ok() && b.ok());
  auto canon = [](const Bat& bat) {
    std::vector<std::pair<uint32_t, uint32_t>> v;
    for (size_t i = 0; i < bat.size(); ++i) {
      v.emplace_back(bat.head().GetIntegral(i), bat.tail().GetIntegral(i));
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*a), canon(*b));
  EXPECT_GT(a->size(), 0u);
}

TEST(BatAlgebraTest, Semijoin) {
  auto l = *Bat::Make(Column::U32({1, 2, 3, 4}), Column::U32({10, 20, 30, 40}));
  auto r = *Bat::Make(Column::U32({2, 4, 9}), Column::U32({0, 0, 0}));
  auto out = BatSemijoin(l, r);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->head().GetIntegral(0), 2u);
  EXPECT_EQ(out->tail().GetIntegral(1), 40u);
}

TEST(BatAlgebraTest, UniqueKeepsFirstOccurrence) {
  auto b = Bat::DenseTail(Column::U32({5, 7, 5, 9, 7, 5}));
  auto out = BatUnique(b);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ(out->head().GetIntegral(0), 0u);  // first 5 at position 0
  EXPECT_EQ(out->head().GetIntegral(1), 1u);  // first 7
  EXPECT_EQ(out->head().GetIntegral(2), 3u);  // first 9
}

TEST(BatAlgebraTest, CountAndSum) {
  Bat b = SampleBat();
  EXPECT_EQ(BatCount(b), 6u);
  auto sum = BatSum(b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 135u);
  EXPECT_FALSE(BatSum(Bat::DenseTail(Column::F64({1.0}))).ok());
}

TEST(BatAlgebraTest, ComposedPipeline) {
  // Monet-style: select, renumber with mark, positional-join back.
  Bat base = Bat::DenseTail(Column::U32({30, 10, 20, 10, 40, 25}));
  auto selected = BatSelect(base, 10, 25);          // candidates
  ASSERT_TRUE(selected.ok());
  auto joined = BatJoin(*Bat::Make(selected->head().Materialize(),
                                   selected->head()),
                        base);                      // fetch values by OID
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), selected->size());
  for (size_t i = 0; i < joined->size(); ++i) {
    EXPECT_EQ(joined->tail().GetIntegral(i), selected->tail().GetIntegral(i));
  }
}

TEST(BatAlgebraTest, SliceClamps) {
  Bat b = SampleBat();
  auto mid = BatSlice(b, 2, 3);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 3u);
  EXPECT_EQ(mid->head().GetIntegral(0), 2u);
  EXPECT_EQ(mid->tail().GetIntegral(2), 40u);
  auto past = BatSlice(b, 5, 100);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past->size(), 1u);
  auto none = BatSlice(b, 99, 5);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->size(), 0u);
}

TEST(BatAlgebraTest, SortByTailIsStable) {
  auto b = *Bat::Make(Column::U32({0, 1, 2, 3}), Column::U32({7, 3, 7, 3}));
  auto sorted = BatSortByTail(b);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->tail().GetIntegral(0), 3u);
  EXPECT_EQ(sorted->head().GetIntegral(0), 1u);  // first 3 keeps order
  EXPECT_EQ(sorted->head().GetIntegral(1), 3u);
  EXPECT_EQ(sorted->head().GetIntegral(2), 0u);  // first 7
  EXPECT_EQ(sorted->head().GetIntegral(3), 2u);
}

TEST(BatAlgebraTest, HistogramCountsValues) {
  Bat b = Bat::DenseTail(Column::U32({5, 7, 5, 9, 7, 5}));
  auto h = BatHistogram(b);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->size(), 3u);
  EXPECT_EQ(h->head().GetIntegral(0), 5u);
  EXPECT_EQ(h->tail().GetIntegral(0), 3u);
  EXPECT_EQ(h->head().GetIntegral(1), 7u);
  EXPECT_EQ(h->tail().GetIntegral(1), 2u);
  EXPECT_EQ(h->head().GetIntegral(2), 9u);
  EXPECT_EQ(h->tail().GetIntegral(2), 1u);
}

TEST(BatAlgebraTest, AppendConcatenates) {
  Bat a = Bat::DenseTail(Column::U32({1, 2}));
  auto b = *Bat::Make(Column::U32({7, 8}), Column::U32({3, 4}));
  auto out = BatAppend(a, b);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  EXPECT_EQ(out->head().GetIntegral(0), 0u);
  EXPECT_EQ(out->head().GetIntegral(2), 7u);
  EXPECT_EQ(out->tail().GetIntegral(3), 4u);
}

// RadixGroupSum == HashGroupSum across a parameter sweep.
class RadixGroupSweep
    : public ::testing::TestWithParam<std::tuple<size_t, uint32_t, int, int>> {
};

TEST_P(RadixGroupSweep, MatchesPlainHashGrouping) {
  auto [n, groups, bits, passes] = GetParam();
  if (passes > std::max(bits, 1)) GTEST_SKIP();
  Rng rng(500 + n + groups + bits);
  std::vector<uint32_t> keys(n), vals(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<uint32_t>(rng.NextBelow(groups) * 2654435761u);
    vals[i] = static_cast<uint32_t>(rng.NextBelow(100));
  }
  DirectMemory mem;
  auto plain = HashGroupSum<DirectMemory, MurmurHash>(
      std::span<const uint32_t>(keys), std::span<const uint32_t>(vals), mem,
      groups);
  auto radix = RadixGroupSum<DirectMemory, MurmurHash>(
      std::span<const uint32_t>(keys), std::span<const uint32_t>(vals), bits,
      passes, mem);
  ASSERT_TRUE(radix.ok());
  ASSERT_EQ(radix->size(), plain.size());
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> expect;
  for (size_t g = 0; g < plain.size(); ++g) {
    expect[plain.keys[g]] = {plain.sums[g], plain.counts[g]};
  }
  for (size_t g = 0; g < radix->size(); ++g) {
    auto it = expect.find(radix->keys[g]);
    ASSERT_NE(it, expect.end()) << radix->keys[g];
    EXPECT_EQ(radix->sums[g], it->second.first);
    EXPECT_EQ(radix->counts[g], it->second.second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RadixGroupSweep,
    ::testing::Combine(::testing::Values<size_t>(0, 1000, 20000),
                       ::testing::Values<uint32_t>(1, 37, 5000),
                       ::testing::Values(0, 3, 8),
                       ::testing::Values(1, 2)));

TEST(RadixGroupSumTest, AllSameKey) {
  DirectMemory mem;
  std::vector<uint32_t> keys(100, 7u), vals(100, 2u);
  auto out = RadixGroupSum(std::span<const uint32_t>(keys),
                           std::span<const uint32_t>(vals), 4, 2, mem);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->sums[0], 200u);
  EXPECT_EQ(out->counts[0], 100u);
}

TEST(RadixGroupSumTest, InvalidOptionsPropagate) {
  DirectMemory mem;
  std::vector<uint32_t> keys = {1}, vals = {1};
  EXPECT_FALSE(RadixGroupSum(std::span<const uint32_t>(keys),
                             std::span<const uint32_t>(vals), 40, 1, mem)
                   .ok());
  // 25 bits passes cluster validation but exceeds the grouping guard.
  EXPECT_EQ(RadixGroupSum(std::span<const uint32_t>(keys),
                          std::span<const uint32_t>(vals), 25, 5, mem)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ccdb
