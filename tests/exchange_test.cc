// Exchange operators (dist/exchange.h) and the repartition-vs-broadcast
// planner: partitioned plans must be byte-identical to their non-exchange
// equivalents (plans below end in a total OrderBy over unique keys, so
// "identical" means exact row order, not just row content), the wire format
// must round-trip chunks losslessly, and cancellation must unwind every
// pump/worker thread without hangs (ASan/TSan runs verify cleanliness).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "dist/wire.h"
#include "exec/ops.h"
#include "exec/plan.h"
#include "exec/table.h"
#include "model/planner.h"

namespace ccdb {
namespace {

/// Fact rows: fk in [0, key_mod) (or unique when key_mod == 0), a u32
/// value, an f64 price, and a low-cardinality string (encoded; exercises
/// string routing and the wire's string payload).
RowStore MakeFactRows(size_t n, uint32_t key_mod) {
  auto rs = RowStore::Make(
      {
          {"fk", FieldType::kU32},
          {"val", FieldType::kU32},
          {"price", FieldType::kF64},
          {"mode", FieldType::kChar10},
      },
      n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, key_mod == 0 ? static_cast<uint32_t>(i)
                                  : static_cast<uint32_t>(i * 7 % key_mod));
    rs->SetU32(r, 1, static_cast<uint32_t>(i % 97));
    rs->SetF64(r, 2, 0.25 * static_cast<double>(i % 1000));
    const char* m = modes[i % 4];
    rs->SetBytes(r, 3, m, strlen(m));
  }
  return *std::move(rs);
}

Table MakeFact(size_t n, uint32_t key_mod) {
  return *Table::FromRowStore(MakeFactRows(n, key_mod));
}

/// Dimension: unique id 0..n-1 plus three u32 payload columns (wide enough
/// that repartition beats broadcast once the dimension is large).
Table MakeDim(size_t n) {
  auto rs = RowStore::Make(
      {
          {"id", FieldType::kU32},
          {"bonus", FieldType::kU32},
          {"w1", FieldType::kU32},
          {"w2", FieldType::kU32},
      },
      n);
  CCDB_CHECK(rs.ok());
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetU32(r, 1, static_cast<uint32_t>(i * 13 % 51));
    rs->SetU32(r, 2, static_cast<uint32_t>(i % 7));
    rs->SetU32(r, 3, static_cast<uint32_t>(i % 11));
  }
  return *Table::FromRowStore(*std::move(rs));
}

void ExpectSameResult(const QueryResult& got, const QueryResult& want) {
  ASSERT_EQ(got.num_columns(), want.num_columns());
  ASSERT_EQ(got.num_rows(), want.num_rows());
  for (size_t c = 0; c < want.num_columns(); ++c) {
    SCOPED_TRACE("column " + want.columns[c].name);
    EXPECT_EQ(got.columns[c].name, want.columns[c].name);
    EXPECT_EQ(got.columns[c].type, want.columns[c].type);
    EXPECT_EQ(got.columns[c].u32_values, want.columns[c].u32_values);
    EXPECT_EQ(got.columns[c].i64_values, want.columns[c].i64_values);
    EXPECT_EQ(got.columns[c].f64_values, want.columns[c].f64_values);
    EXPECT_EQ(got.columns[c].str_values, want.columns[c].str_values);
  }
}

/// Join + group-by + order-by over the fact/dim pair: every layer an
/// exchange can split. Group keys are unique after aggregation, so OrderBy
/// yields a total order and results compare exactly.
StatusOr<LogicalPlan> JoinAggPlan(const Table& fact, const Table& dim) {
  return QueryBuilder(fact)
      .Join(dim, "fk", "id")
      .GroupByAgg({"mode"}, {AggSpec::Sum("val"), AggSpec::Count(),
                             AggSpec::Max("bonus")})
      .OrderBy("mode")
      .Build();
}

/// Join-only plan ordered by a unique probe key (key_mod == 0 facts).
StatusOr<LogicalPlan> JoinOnlyPlan(const Table& fact, const Table& dim,
                                   JoinType type = JoinType::kInner) {
  return QueryBuilder(fact)
      .Join(dim, "fk", "id", type)
      .OrderBy("fk")
      .Build();
}

PlannerOptions ExchangeOptionsFor(size_t partitions, size_t parallelism,
                                  ExchangePolicy policy,
                                  ExchangeStrategy strategy) {
  PlannerOptions po;
  po.exec.parallelism = parallelism;
  po.exec.partitions = partitions;
  po.exec.exchange = policy;
  po.exec.exchange_strategy = strategy;
  return po;
}

QueryResult Reference(const LogicalPlan& plan) {
  PlannerOptions po;
  po.exec.parallelism = 1;
  po.exec.exchange = ExchangePolicy::kOff;
  auto r = Execute(plan, po);
  CCDB_CHECK(r.ok());
  return *std::move(r);
}

TEST(ExchangeTest, JoinAggByteIdentityAcrossPartitionsAndParallelism) {
  Table fact = MakeFact(2400, 60);
  Table dim = MakeDim(60);
  auto plan = JoinAggPlan(fact, dim);
  ASSERT_TRUE(plan.ok());
  QueryResult want = Reference(*plan);
  ASSERT_GT(want.num_rows(), 0u);
  for (size_t partitions : {1, 2, 4}) {
    for (size_t parallelism : {1, 2, 8}) {
      SCOPED_TRACE("partitions " + std::to_string(partitions) +
                   " parallelism " + std::to_string(parallelism));
      auto got = Execute(*plan,
                         ExchangeOptionsFor(partitions, parallelism,
                                            ExchangePolicy::kForce,
                                            ExchangeStrategy::kNone));
      ASSERT_TRUE(got.ok()) << got.status().message();
      ExpectSameResult(*got, want);
    }
  }
}

TEST(ExchangeTest, JoinByteIdentityUnderBothStrategies) {
  Table fact = MakeFact(1800, /*key_mod=*/0);  // unique fk: total order
  Table dim = MakeDim(1800);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter}) {
    auto plan = JoinOnlyPlan(fact, dim, type);
    ASSERT_TRUE(plan.ok());
    QueryResult want = Reference(*plan);
    for (ExchangeStrategy strategy :
         {ExchangeStrategy::kRepartition, ExchangeStrategy::kBroadcast}) {
      for (size_t partitions : {2, 4}) {
        SCOPED_TRACE(std::string("type ") + JoinTypeName(type) +
                     " strategy " +
                     (strategy == ExchangeStrategy::kBroadcast
                          ? "broadcast"
                          : "repartition") +
                     " partitions " + std::to_string(partitions));
        auto got = Execute(*plan, ExchangeOptionsFor(partitions, 2,
                                                     ExchangePolicy::kForce,
                                                     strategy));
        ASSERT_TRUE(got.ok()) << got.status().message();
        ExpectSameResult(*got, want);
      }
    }
  }
}

TEST(ExchangeTest, PartitionsOneAndDisabledStayExchangeFree) {
  Table fact = MakeFact(600, 20);
  Table dim = MakeDim(20);
  auto plan = JoinAggPlan(fact, dim);
  ASSERT_TRUE(plan.ok());
  QueryResult want = Reference(*plan);

  // partitions == 1: no exchange nodes at all, identical output.
  Planner p1(ExchangeOptionsFor(1, 2, ExchangePolicy::kAuto,
                                ExchangeStrategy::kNone));
  auto phys1 = p1.Lower(*plan);
  ASSERT_TRUE(phys1.ok());
  EXPECT_TRUE(phys1->exchanges().empty());
  auto r1 = phys1->Execute();
  ASSERT_TRUE(r1.ok());
  ExpectSameResult(*r1, want);

  // partitions > 1 but policy off: same story.
  Planner poff(ExchangeOptionsFor(4, 2, ExchangePolicy::kOff,
                                  ExchangeStrategy::kNone));
  auto physoff = poff.Lower(*plan);
  ASSERT_TRUE(physoff.ok());
  EXPECT_TRUE(physoff->exchanges().empty());
  auto roff = physoff->Execute();
  ASSERT_TRUE(roff.ok());
  ExpectSameResult(*roff, want);
}

TEST(ExchangeTest, EmptyAndSingleRowInputs) {
  Table dim = MakeDim(8);
  for (size_t rows : {size_t{0}, size_t{1}}) {
    SCOPED_TRACE("fact rows " + std::to_string(rows));
    Table fact = MakeFact(rows, 0);
    auto plan = JoinOnlyPlan(fact, dim);
    ASSERT_TRUE(plan.ok());
    QueryResult want = Reference(*plan);
    auto got = Execute(*plan,
                       ExchangeOptionsFor(4, 2, ExchangePolicy::kForce,
                                          ExchangeStrategy::kNone));
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectSameResult(*got, want);

    auto agg = JoinAggPlan(fact, dim);
    ASSERT_TRUE(agg.ok());
    QueryResult want_agg = Reference(*agg);
    auto got_agg = Execute(*agg,
                           ExchangeOptionsFor(4, 2, ExchangePolicy::kForce,
                                              ExchangeStrategy::kNone));
    ASSERT_TRUE(got_agg.ok()) << got_agg.status().message();
    ExpectSameResult(*got_agg, want_agg);
  }
}

TEST(ExchangeTest, SkewedKeysAllLandInOnePartition) {
  // Every fact row carries the same key: one partition does all the join
  // work, the others see only the zero-row layout seed.
  Table fact = MakeFact(900, 1);
  Table dim = MakeDim(4);
  auto plan = JoinAggPlan(fact, dim);
  ASSERT_TRUE(plan.ok());
  QueryResult want = Reference(*plan);
  for (ExchangeStrategy strategy :
       {ExchangeStrategy::kRepartition, ExchangeStrategy::kBroadcast}) {
    auto got = Execute(*plan, ExchangeOptionsFor(4, 2, ExchangePolicy::kForce,
                                                 strategy));
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectSameResult(*got, want);
  }
}

TEST(ExchangeTest, PlannerPicksBroadcastOnlyWhenStrictlyCheaper) {
  Table fact = MakeFact(2400, 8);
  Table small_dim = MakeDim(8);
  Table big_dim = MakeDim(2400);

  // Tiny inner: N * |R| bytes is far below |L| + |R| -> broadcast.
  auto cheap = JoinOnlyPlan(fact, small_dim);
  ASSERT_TRUE(cheap.ok());
  Planner pb(ExchangeOptionsFor(2, 2, ExchangePolicy::kForce,
                                ExchangeStrategy::kNone));
  auto phys_b = pb.Lower(*cheap);
  ASSERT_TRUE(phys_b.ok());
  ASSERT_EQ(phys_b->exchanges().size(), 1u);
  EXPECT_EQ(phys_b->exchanges()[0].strategy, ExchangeStrategy::kBroadcast);
  EXPECT_LT(phys_b->exchanges()[0].broadcast_bytes,
            phys_b->exchanges()[0].repartition_bytes);

  // Inner as large as the probe, at 4 partitions: replicating it 4x moves
  // strictly more bytes than hashing both sides once -> repartition.
  Table fact_eq = MakeFact(2400, 0);
  auto costly = JoinOnlyPlan(fact_eq, big_dim);
  ASSERT_TRUE(costly.ok());
  Planner pr(ExchangeOptionsFor(4, 2, ExchangePolicy::kForce,
                                ExchangeStrategy::kNone));
  auto phys_r = pr.Lower(*costly);
  ASSERT_TRUE(phys_r.ok());
  ASSERT_EQ(phys_r->exchanges().size(), 1u);
  EXPECT_EQ(phys_r->exchanges()[0].strategy, ExchangeStrategy::kRepartition);
  EXPECT_GE(phys_r->exchanges()[0].broadcast_bytes,
            phys_r->exchanges()[0].repartition_bytes);

  // Predicted and measured transfer bytes surface per exchange node.
  auto res = phys_r->Execute();
  ASSERT_TRUE(res.ok());
  EXPECT_GT(phys_r->exchanges()[0].predicted_transfer_bytes, 0.0);
  EXPECT_GT(phys_r->exchanges()[0].measured_transfer_bytes, 0u);
  std::string report = phys_r->ExplainCosts();
  EXPECT_NE(report.find("Exchange(repartition"), std::string::npos) << report;
  EXPECT_NE(report.find("xfer pred"), std::string::npos) << report;
}

TEST(ExchangeTest, WireFormatRoundTripsChunks) {
  Table fact = MakeFact(257, 16);  // odd size: exercises partial chunks
  ScanOp scan(&fact, /*chunk_rows=*/100);
  ASSERT_TRUE(scan.Open().ok());
  Chunk chunk;
  size_t chunks = 0;
  while (true) {
    auto more = scan.Next(&chunk);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++chunks;
    auto frame = SerializeChunk(chunk);
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    auto back = DeserializeChunk(*frame);
    ASSERT_TRUE(back.ok()) << back.status().message();
    ASSERT_EQ(back->rows, chunk.rows);
    ASSERT_EQ(back->cols.size(), chunk.cols.size());
    for (size_t c = 0; c < chunk.cols.size(); ++c) {
      SCOPED_TRACE("column " + std::to_string(c));
      EXPECT_EQ(back->cols[c].name, chunk.cols[c].name);
      switch (chunk.TypeOf(c)) {
        case PhysType::kF64:
          EXPECT_EQ(*back->GatherF64(c), *chunk.GatherF64(c));
          break;
        case PhysType::kStr:
          EXPECT_EQ(*back->GatherStr(c), *chunk.GatherStr(c));
          break;
        case PhysType::kI64:
          EXPECT_EQ(*back->GatherI64(c), *chunk.GatherI64(c));
          break;
        default:
          EXPECT_EQ(*back->GatherU32(c), *chunk.GatherU32(c));
          break;
      }
    }
  }
  scan.Close();
  EXPECT_EQ(chunks, 3u);

  // Corrupt frames are rejected, not crashed on.
  auto frame = SerializeChunk(Chunk{});
  ASSERT_TRUE(frame.ok());
  std::vector<uint8_t> truncated(*frame);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DeserializeChunk(truncated).ok());
}

TEST(ExchangeTest, SerializedTransportMatchesInProcess) {
  Table fact = MakeFact(1200, 30);
  Table dim = MakeDim(30);
  // Group on a u32 key: the wire decodes encoded string columns to plain
  // strings (dist/wire.h), and GroupByAggOp groups encoded strings by
  // their dictionary codes — a documented limit of the serialized stub.
  auto plan = QueryBuilder(fact)
                  .Join(dim, "fk", "id")
                  .GroupByAgg({"val"}, {AggSpec::Sum("bonus"),
                                        AggSpec::Count()})
                  .OrderBy("val")
                  .Build();
  ASSERT_TRUE(plan.ok());
  QueryResult want = Reference(*plan);
  PlannerOptions po = ExchangeOptionsFor(2, 2, ExchangePolicy::kForce,
                                         ExchangeStrategy::kNone);
  po.exec.serialize_exchange = true;
  auto got = Execute(*plan, po);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ExpectSameResult(*got, want);
}

TEST(ExchangeTest, CancelBeforeAndDuringExchange) {
  Table fact = MakeFact(4000, 50);
  Table dim = MakeDim(50);
  auto plan = JoinAggPlan(fact, dim);
  ASSERT_TRUE(plan.ok());
  PlannerOptions po = ExchangeOptionsFor(4, 2, ExchangePolicy::kForce,
                                         ExchangeStrategy::kNone);

  // Pre-cancelled: fails fast with kCancelled, all threads joined by the
  // time Execute returns (Close is unconditional on the error path).
  {
    ScheduleContext sched;
    sched.cancelled.store(true);
    po.exec.sched = &sched;
    auto r = Execute(*plan, po);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }

  // Raced mid-flight: either the query finished first or it reports
  // kCancelled; never a hang or a leak (ASan/TSan runs check the rest).
  for (int lag_us : {0, 50, 500}) {
    ScheduleContext sched;
    po.exec.sched = &sched;
    std::thread canceller([&sched, lag_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(lag_us));
      sched.cancelled.store(true);
    });
    auto r = Execute(*plan, po);
    canceller.join();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    }
  }

  // Expired deadline behaves like cancel, with its own code.
  {
    ScheduleContext sched;
    sched.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
    po.exec.sched = &sched;
    auto r = Execute(*plan, po);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(ExchangeTest, ConcurrentExchangeHammer) {
  // Two sessions hammer partitioned plans concurrently while a third
  // randomly cancels one of them — the TSan regression surface for the
  // channel, collector, and thread-lifecycle synchronization.
  Table fact = MakeFact(1500, 40);
  Table dim = MakeDim(40);
  auto plan = JoinAggPlan(fact, dim);
  ASSERT_TRUE(plan.ok());
  QueryResult want = Reference(*plan);

  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    ScheduleContext sched;  // thread A runs cancellable
    std::atomic<int> failures{0};
    std::thread ta([&] {
      PlannerOptions po = ExchangeOptionsFor(4, 4, ExchangePolicy::kForce,
                                             ExchangeStrategy::kNone);
      po.exec.sched = &sched;
      auto r = Execute(*plan, po);
      if (!r.ok() && r.status().code() != StatusCode::kCancelled) {
        failures.fetch_add(1);
      }
    });
    std::thread tb([&] {
      PlannerOptions po = ExchangeOptionsFor(2, 4, ExchangePolicy::kForce,
                                             ExchangeStrategy::kBroadcast);
      auto r = Execute(*plan, po);
      if (!r.ok()) {
        failures.fetch_add(1);
        return;
      }
      // The uncancelled session must still be byte-identical.
      if (r->num_rows() != want.num_rows()) failures.fetch_add(1);
    });
    if (round % 2 == 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      sched.cancelled.store(true);
    }
    ta.join();
    tb.join();
    EXPECT_EQ(failures.load(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace ccdb
