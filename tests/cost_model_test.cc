// Analytical cost model tests: formula values at hand-computable points
// (using the paper's Origin2000 constants), the knees/crossovers the paper
// describes in §3.4, and the strategy planner.
#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/strategy.h"

namespace ccdb {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  MachineProfile m_ = MachineProfile::Origin2000();
  CostModel model_{MachineProfile::Origin2000()};
};

TEST_F(CostModelTest, ScanModelAtKeyStrides) {
  // §2 model: T(s) = TCPU + min(s/LS1,1)*lL2 + min(s/LS2,1)*lMem.
  ScanPrediction s1 = model_.ScanIteration(1);
  EXPECT_DOUBLE_EQ(s1.cpu_ns, 16);
  EXPECT_DOUBLE_EQ(s1.l2_ns, 24.0 / 32);
  EXPECT_DOUBLE_EQ(s1.mem_ns, 412.0 / 128);

  // At the L1 line size (32) the L1 miss rate saturates at 1/iteration.
  ScanPrediction s32 = model_.ScanIteration(32);
  EXPECT_DOUBLE_EQ(s32.l2_ns, 24);
  EXPECT_DOUBLE_EQ(s32.mem_ns, 412.0 / 4);

  // At the L2 line size (128) everything saturates: worst case plateau.
  ScanPrediction s128 = model_.ScanIteration(128);
  EXPECT_DOUBLE_EQ(s128.total_ns(), 16 + 24 + 412);
  // Larger strides cannot get worse (the Fig. 3 plateau).
  EXPECT_DOUBLE_EQ(model_.ScanIteration(256).total_ns(), s128.total_ns());
}

TEST_F(CostModelTest, ScanPlateauToFloorRatioIsLarge) {
  // The paper's headline: ~95% of cycles waiting for memory. At stride 128
  // the 16 ns of CPU work is a small fraction of 452 ns total.
  ScanPrediction worst = model_.ScanIteration(128);
  EXPECT_GT(worst.total_ns() / worst.cpu_ns, 20.0);
}

TEST_F(CostModelTest, ClusterBaseTermsAtSmallBits) {
  // One pass, 1 bit, C=1M: Hp=2 << 1024 L1 lines, so the extra terms are
  // tiny and misses ~ 2 sequential sweeps of the relation.
  constexpr uint64_t kC = 1 << 20;
  ModelPrediction p = model_.Cluster(1, 1, kC);
  double rel_l1_lines = kC * 8.0 / 32;
  double rel_l2_lines = kC * 8.0 / 128;
  EXPECT_NEAR(p.l1_misses, 2 * rel_l1_lines + kC * 2.0 / 1024, 1.0);
  EXPECT_NEAR(p.l2_misses, 2 * rel_l2_lines + kC * 2.0 / 32768, 1.0);
  EXPECT_DOUBLE_EQ(p.cpu_ns, kC * 50.0);
}

TEST_F(CostModelTest, ClusterTlbExplosionBeyondTlbEntries) {
  // §3.4.2: "as the number of clusters exceeds the number of TLB entries
  // (64), the number of TLB misses increases tremendously".
  constexpr uint64_t kC = 8 << 20;
  double at6 = model_.ClusterTlbMisses(6, kC);   // Hp = 64 = |TLB|
  double at10 = model_.ClusterTlbMisses(10, kC); // Hp = 1024
  EXPECT_GT(at10, 50 * at6);
  // And one 10-bit pass costs far more TLB misses than two 5-bit passes.
  ModelPrediction one = model_.Cluster(1, 10, kC);
  ModelPrediction two = model_.Cluster(2, 10, kC);
  EXPECT_GT(one.tlb_misses, 10 * two.tlb_misses);
}

TEST_F(CostModelTest, ClusterPassCrossover) {
  // Fig. 9: up to 6 bits one pass is fastest; beyond, two passes win.
  constexpr uint64_t kC = 8 << 20;
  for (int b = 1; b <= 6; ++b) {
    EXPECT_LT(model_.Millis(model_.Cluster(1, b, kC)),
              model_.Millis(model_.Cluster(2, b, kC)))
        << "bits=" << b;
  }
  for (int b = 8; b <= 12; ++b) {
    EXPECT_GT(model_.Millis(model_.Cluster(1, b, kC)),
              model_.Millis(model_.Cluster(2, b, kC)))
        << "bits=" << b;
  }
}

TEST_F(CostModelTest, OptimalPassesMatchPaperBreakpoints) {
  // 64 TLB entries -> 6 bits per pass: 1 pass to 6 bits, 2 to 12, 3 to 18.
  EXPECT_EQ(model_.OptimalPasses(0), 1);
  EXPECT_EQ(model_.OptimalPasses(6), 1);
  EXPECT_EQ(model_.OptimalPasses(7), 2);
  EXPECT_EQ(model_.OptimalPasses(12), 2);
  EXPECT_EQ(model_.OptimalPasses(13), 3);
  EXPECT_EQ(model_.OptimalPasses(18), 3);
  EXPECT_EQ(model_.OptimalPasses(19), 4);
  EXPECT_EQ(model_.OptimalPasses(20), 4);
}

TEST_F(CostModelTest, BestCaseClusterTimeGrowsWithBits) {
  // Fig. 9, bottom: "the best-case execution time increases with the number
  // of bits used" (more passes, more sweeps).
  constexpr uint64_t kC = 8 << 20;
  auto best_ms = [&](int bits) {
    double best = 1e300;
    for (int p = 1; p <= 4 && p <= std::max(bits, 1); ++p) {
      best = std::min(best, model_.Millis(model_.Cluster(p, bits, kC)));
    }
    return best;
  };
  EXPECT_LT(best_ms(4), best_ms(10));
  EXPECT_LT(best_ms(10), best_ms(16));
  EXPECT_LT(best_ms(16), best_ms(22));
}

TEST_F(CostModelTest, RadixJoinPhaseImprovesWithBits) {
  // Fig. 10: performance improves monotonically with the number of radix
  // bits (down to ~1 tuple per cluster).
  constexpr uint64_t kC = 1 << 20;
  double prev = model_.Millis(model_.RadixJoinPhase(2, kC));
  for (int b = 4; b <= 18; b += 2) {
    double cur = model_.Millis(model_.RadixJoinPhase(b, kC));
    EXPECT_LT(cur, prev) << "bits=" << b;
    prev = cur;
  }
}

TEST_F(CostModelTest, RadixJoinNestedLoopTermDominatesAtFewBits) {
  // With H=1 the model reduces to C^2 * wr + linear terms: astronomically
  // worse than a fine clustering.
  constexpr uint64_t kC = 1 << 20;
  EXPECT_GT(model_.Millis(model_.RadixJoinPhase(0, kC)),
            1000 * model_.Millis(model_.RadixJoinPhase(17, kC)));
}

TEST_F(CostModelTest, PhashJoinPhaseKneeAtCacheFit) {
  constexpr uint64_t kC = 8 << 20;  // 8M tuples, 96 MB at 12 B/tuple
  // Clusters larger than L2 trash (the B range below L2 fit); once the
  // cluster fits L2 the penalty drops sharply.
  int bits_fit_l2 = StrategyBits(JoinStrategy::kPhashL2, kC,
                                 MachineProfile::Origin2000());
  double before = model_.Millis(model_.PhashJoinPhase(bits_fit_l2 - 3, kC));
  double after = model_.Millis(model_.PhashJoinPhase(bits_fit_l2 + 1, kC));
  EXPECT_GT(before, 2 * after);
}

TEST_F(CostModelTest, SimpleHashEqualsPhashAtZeroBits) {
  constexpr uint64_t kC = 1 << 20;
  EXPECT_DOUBLE_EQ(model_.Millis(model_.SimpleHashJoin(kC)),
                   model_.Millis(model_.PhashJoinPhase(0, kC)));
}

TEST_F(CostModelTest, CacheConsciousBeatsBaselinesAtScale) {
  // Fig. 13's message, in model form: at 8M tuples the planned phash join
  // costs several times less than the non-partitioned hash join.
  constexpr uint64_t kC = 8 << 20;
  int best_b = model_.BestPhashBits(kC);
  double phash = model_.Millis(model_.TotalPhashJoin(best_b, kC));
  double simple = model_.Millis(model_.SimpleHashJoin(kC));
  EXPECT_GT(simple, 3 * phash);
}

TEST_F(CostModelTest, BestBitsLandInSaneRange) {
  constexpr uint64_t kC = 8 << 20;
  int rb = model_.BestRadixBits(kC);
  int pb = model_.BestPhashBits(kC);
  // radix wants very fine clusters (~C/8 => ~20 bits at 8M)
  EXPECT_GE(rb, 16);
  EXPECT_LE(rb, 24);
  // phash wants cluster ~ a few hundred tuples => ~13-18 bits at 8M
  EXPECT_GE(pb, 10);
  EXPECT_LE(pb, 20);
}

TEST_F(CostModelTest, TotalsComposeClusterAndJoin) {
  constexpr uint64_t kC = 1 << 20;
  int b = 10;
  ModelPrediction total = model_.TotalPhashJoin(b, kC);
  ModelPrediction parts = model_.Cluster(model_.OptimalPasses(b), b, kC);
  ModelPrediction cluster_r = model_.Cluster(model_.OptimalPasses(b), b, kC);
  parts += cluster_r;
  parts += model_.PhashJoinPhase(b, kC);
  EXPECT_DOUBLE_EQ(total.total_ns(m_.lat), parts.total_ns(m_.lat));
}

TEST(StrategyBitsTest, PaperGeometryValues) {
  MachineProfile m = MachineProfile::Origin2000();
  constexpr uint64_t kC = 8 << 20;  // 8M
  // phash L2: ceil(log2(8M*12 / 4MB)) = ceil(log2(24)) = 5.
  EXPECT_EQ(StrategyBits(JoinStrategy::kPhashL2, kC, m), 5);
  // phash TLB: ||TLB|| = 1 MB -> ceil(log2(96)) = 7.
  EXPECT_EQ(StrategyBits(JoinStrategy::kPhashTLB, kC, m), 7);
  // phash L1: 32 KB -> ceil(log2(3072)) = 12.
  EXPECT_EQ(StrategyBits(JoinStrategy::kPhashL1, kC, m), 12);
  // radix 8: log2(8M/8) = 20.
  EXPECT_EQ(StrategyBits(JoinStrategy::kRadix8, kC, m), 20);
  // radix min: log2(8M/4) = 21.
  EXPECT_EQ(StrategyBits(JoinStrategy::kRadixMin, kC, m), 21);
  // Baselines use no clustering.
  EXPECT_EQ(StrategyBits(JoinStrategy::kSimpleHash, kC, m), 0);
  EXPECT_EQ(StrategyBits(JoinStrategy::kSortMerge, kC, m), 0);
}

TEST(StrategyBitsTest, TinyRelationsNeedNoClustering) {
  MachineProfile m = MachineProfile::Origin2000();
  // 1000 tuples * 12 B fit L1 outright.
  EXPECT_EQ(StrategyBits(JoinStrategy::kPhashL1, 1000, m), 0);
  EXPECT_EQ(StrategyBits(JoinStrategy::kPhashL2, 1000, m), 0);
}

TEST(PlanJoinTest, PlansAreConsistent) {
  MachineProfile m = MachineProfile::Origin2000();
  constexpr uint64_t kC = 1 << 20;
  for (JoinStrategy s :
       {JoinStrategy::kSortMerge, JoinStrategy::kSimpleHash,
        JoinStrategy::kPhashL2, JoinStrategy::kPhashTLB, JoinStrategy::kPhashL1,
        JoinStrategy::kPhash256, JoinStrategy::kPhashMin, JoinStrategy::kRadix8,
        JoinStrategy::kRadixMin, JoinStrategy::kBest}) {
    JoinPlan plan = PlanJoin(s, kC, m);
    EXPECT_EQ(plan.strategy, s);
    EXPECT_GE(plan.bits, 0);
    EXPECT_GE(plan.passes, 1);
    CostModel model(m);
    EXPECT_EQ(plan.passes, model.OptimalPasses(plan.bits)) << JoinStrategyName(s);
    if (s == JoinStrategy::kRadix8 || s == JoinStrategy::kRadixMin) {
      EXPECT_TRUE(plan.use_radix_join);
    }
  }
}

TEST(PlanJoinTest, BestIsNoWorseThanNamedStrategies) {
  MachineProfile m = MachineProfile::Origin2000();
  for (uint64_t c : {uint64_t{62500}, uint64_t{1} << 20, uint64_t{8} << 20}) {
    JoinPlan best = PlanJoin(JoinStrategy::kBest, c, m);
    for (JoinStrategy s : {JoinStrategy::kSimpleHash, JoinStrategy::kPhashL2,
                           JoinStrategy::kPhashTLB, JoinStrategy::kPhashL1,
                           JoinStrategy::kRadix8}) {
      JoinPlan p = PlanJoin(s, c, m);
      EXPECT_LE(best.predicted_ms, p.predicted_ms * 1.0001)
          << "C=" << c << " vs " << JoinStrategyName(s);
    }
  }
}

TEST(PlanJoinTest, StrategyNamesAreStable) {
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kPhashL2), "phash L2");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kRadix8), "radix 8");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kSortMerge), "sort-merge");
}

}  // namespace
}  // namespace ccdb
