// TLB model, two-level hierarchy composition, machine profiles, and the
// hardware-counter fallback path.
#include <gtest/gtest.h>

#include "mem/access.h"
#include "mem/hierarchy.h"
#include "mem/hw_counters.h"
#include "mem/machine.h"
#include "mem/tlb_sim.h"
#include "util/aligned.h"

namespace ccdb {
namespace {

TEST(TlbSimTest, PageGranularity) {
  TlbSim t({/*entries=*/4, /*page_bytes=*/4096, /*associativity=*/0});
  EXPECT_FALSE(t.Access(0));
  EXPECT_TRUE(t.Access(4095));   // same page
  EXPECT_FALSE(t.Access(4096));  // next page
  EXPECT_EQ(t.misses(), 2u);
}

TEST(TlbSimTest, LruOverEntries) {
  TlbSim t({4, 4096, 0});
  for (uint64_t p = 0; p < 4; ++p) EXPECT_FALSE(t.Access(p * 4096));
  EXPECT_TRUE(t.Access(0));            // page 0 now MRU
  EXPECT_FALSE(t.Access(4 * 4096));    // evicts page 1 (LRU)
  EXPECT_TRUE(t.Access(0));
  EXPECT_FALSE(t.Access(1 * 4096));
}

TEST(TlbSimTest, CyclicOverflowAlwaysMisses) {
  TlbSim t({4, 4096, 0});
  for (int lap = 0; lap < 3; ++lap) {
    for (uint64_t p = 0; p < 5; ++p) t.Access(p * 4096);
  }
  EXPECT_EQ(t.misses(), 15u);
}

TEST(TlbSimTest, SetAssociativeVariant) {
  // 4 entries, 2-way: 2 sets. Pages alternate sets by low page-number bit.
  TlbSim t({4, 4096, 2});
  EXPECT_FALSE(t.Access(0));          // page 0, set 0
  EXPECT_FALSE(t.Access(2 * 4096));   // page 2, set 0
  EXPECT_TRUE(t.Access(0));
  EXPECT_FALSE(t.Access(4 * 4096));   // page 4, set 0: evicts LRU (page 2)
  EXPECT_FALSE(t.Access(2 * 4096));
  // Set 1 is untouched throughout.
  EXPECT_FALSE(t.Access(1 * 4096));
  EXPECT_TRUE(t.Access(1 * 4096 + 100));
}

TEST(TlbSimTest, FlushAndReset) {
  TlbSim t({4, 4096, 0});
  t.Access(0);
  EXPECT_TRUE(t.Contains(0));
  t.Flush();
  EXPECT_FALSE(t.Contains(0));
  t.ResetCounters();
  EXPECT_EQ(t.accesses(), 0u);
}

TEST(MachineProfileTest, BuiltinsValidate) {
  EXPECT_TRUE(MachineProfile::Origin2000().Validate().ok());
  EXPECT_TRUE(MachineProfile::GenericX86().Validate().ok());
  EXPECT_TRUE(MachineProfile::SunLX().Validate().ok());
  EXPECT_TRUE(MachineProfile::UltraSparc1().Validate().ok());
  EXPECT_TRUE(MachineProfile::Sun450().Validate().ok());
}

TEST(MachineProfileTest, Origin2000MatchesPaperNumbers) {
  MachineProfile m = MachineProfile::Origin2000();
  EXPECT_EQ(m.l1.lines(), 1024u);
  EXPECT_EQ(m.l1.line_bytes, 32u);
  EXPECT_EQ(m.l2.lines(), 32768u);
  EXPECT_EQ(m.l2.line_bytes, 128u);
  EXPECT_EQ(m.tlb.entries, 64u);
  EXPECT_EQ(m.tlb.page_bytes, 16u * 1024);
  EXPECT_EQ(m.tlb.span_bytes(), 1024u * 1024);  // 64 * 16 KB = 1 MB
  EXPECT_DOUBLE_EQ(m.lat.l2_ns, 24);
  EXPECT_DOUBLE_EQ(m.lat.mem_ns, 412);
  EXPECT_DOUBLE_EQ(m.lat.tlb_ns, 228);
  EXPECT_DOUBLE_EQ(m.cost.wc_ns, 50);
  EXPECT_DOUBLE_EQ(m.cycle_ns(), 4.0);
}

TEST(MachineProfileTest, ValidationCatchesBadGeometry) {
  MachineProfile m = MachineProfile::Origin2000();
  m.l1.line_bytes = 0;
  EXPECT_FALSE(m.Validate().ok());

  m = MachineProfile::Origin2000();
  m.l1.line_bytes = 48;  // not a power of two
  EXPECT_FALSE(m.Validate().ok());

  m = MachineProfile::Origin2000();
  m.tlb.entries = 0;
  EXPECT_FALSE(m.Validate().ok());

  m = MachineProfile::Origin2000();
  m.clock_mhz = 0;
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MemEventsTest, ArithmeticAndStallModel) {
  MemEvents a{100, 10, 5, 2};
  MemEvents b{50, 5, 1, 1};
  MemEvents sum = a;
  sum += b;
  EXPECT_EQ(sum.accesses, 150u);
  EXPECT_EQ(sum.l1_misses, 15u);
  MemEvents diff = sum - b;
  EXPECT_EQ(diff.l1_misses, a.l1_misses);
  Latencies lat{24, 412, 228};
  EXPECT_DOUBLE_EQ(a.StallNanos(lat), 10 * 24 + 5 * 412 + 2 * 228);
}

TEST(HierarchyTest, L2SeesOnlyL1Misses) {
  MemoryHierarchy h(MachineProfile::Origin2000());
  // Scan 128 KB sequentially at byte granularity via AccessLine per 32 B.
  constexpr uint64_t kBytes = 128 * 1024;
  for (uint64_t a = 0; a < kBytes; a += 32) h.AccessLine(a);
  MemEvents ev = h.events();
  EXPECT_EQ(ev.l1_misses, kBytes / 32);   // every access is a new L1 line
  EXPECT_EQ(ev.l2_misses, kBytes / 128);  // one L2 miss per 128 B line
  EXPECT_EQ(ev.tlb_misses, kBytes / (16 * 1024));
}

TEST(HierarchyTest, MultiByteAccessStraddlesLines) {
  MemoryHierarchy h(MachineProfile::Origin2000());
  AlignedBuffer buf(256, 64);
  // An 8-byte access fully inside one 32-byte line: one L1 access.
  h.Access(buf.data(), 8, false);
  EXPECT_EQ(h.events().accesses, 1u);
  // An 8-byte access straddling the 32-byte boundary: two lines touched.
  h.ResetCounters();
  h.FlushAll();
  h.Access(buf.data() + 28, 8, false);
  EXPECT_EQ(h.events().accesses, 2u);
  EXPECT_EQ(h.events().l1_misses, 2u);
}

TEST(HierarchyTest, RepeatScanWithinL2HitsL2) {
  // Identity page mapping: exact set placement needed for exact counts.
  MemoryHierarchy h(MachineProfile::Origin2000(), /*randomize_pages=*/false);
  constexpr uint64_t kBytes = 256 * 1024;  // > L1 (32 KB), < L2 (4 MB)
  for (int lap = 0; lap < 2; ++lap) {
    for (uint64_t a = 0; a < kBytes; a += 32) h.AccessLine(a);
  }
  MemEvents ev = h.events();
  // Second lap: L1 misses again (working set 8x L1) but L2 hits.
  EXPECT_EQ(ev.l2_misses, kBytes / 128);
  EXPECT_GT(ev.l1_misses, kBytes / 32);
}

TEST(HierarchyTest, RandomizedPagingPreservesLineCountsOnLinearScan) {
  // Translation is page-granular, so a one-pass scan has identical miss
  // counts with and without frame randomization.
  for (bool randomize : {false, true}) {
    MemoryHierarchy h(MachineProfile::Origin2000(), randomize);
    for (uint64_t a = 0; a < 64 * 1024; a += 32) h.AccessLine(a);
    EXPECT_EQ(h.events().l1_misses, 64u * 1024 / 32) << randomize;
    EXPECT_EQ(h.events().l2_misses, 64u * 1024 / 128) << randomize;
    EXPECT_EQ(h.events().tlb_misses, 4u) << randomize;
  }
}

TEST(HierarchyTest, RandomizedPagingBreaksPowerOfTwoAliasingInL2) {
  // 64 streams spaced exactly one L2 way (2 MB) apart: with identity
  // mapping their lines collide in the same L2 set (2-way: constant
  // misses). Randomized frames scramble the physical bits above the page
  // offset, spreading the streams over many sets. (The L1 cannot be helped
  // this way: its 16 KB way equals the page size, so its set index is
  // fixed by the page offset — a real property of such geometries.)
  constexpr uint64_t kWay = 2 * 1024 * 1024;
  auto l2_misses = [&](bool randomize) {
    MemoryHierarchy h(MachineProfile::Origin2000(), randomize);
    for (int round = 0; round < 1024; ++round) {
      for (uint64_t s = 0; s < 64; ++s) {
        h.AccessLine(s * kWay + static_cast<uint64_t>(round));
      }
    }
    return h.events().l2_misses;
  };
  uint64_t aliased = l2_misses(false);
  uint64_t spread = l2_misses(true);
  EXPECT_GT(aliased, 60000u);     // ~ every access misses
  // A few random birthday collisions remain (64 streams over 128
  // set-positions, 2-way), but the systematic pathology is gone.
  EXPECT_LT(spread, aliased / 4);
}

TEST(HierarchyTest, FlushAllDropsEverything) {
  MemoryHierarchy h(MachineProfile::Origin2000());
  h.AccessLine(0);
  h.FlushAll();
  h.ResetCounters();
  h.AccessLine(0);
  MemEvents ev = h.events();
  EXPECT_EQ(ev.l1_misses, 1u);
  EXPECT_EQ(ev.l2_misses, 1u);
  EXPECT_EQ(ev.tlb_misses, 1u);
}

TEST(AccessPolicyTest, DirectMemoryIsTransparent) {
  DirectMemory mem;
  uint32_t x = 41;
  EXPECT_EQ(mem.Load(&x), 41u);
  mem.Store(&x, 42u);
  EXPECT_EQ(x, 42u);
  mem.Update(&x, 1u);
  EXPECT_EQ(x, 43u);
}

TEST(AccessPolicyTest, SimulatedMemoryCountsAndPerformsAccesses) {
  MemoryHierarchy h(MachineProfile::Origin2000());
  SimulatedMemory mem(&h);
  AlignedBuffer buf(4096, 4096);
  uint32_t* p = reinterpret_cast<uint32_t*>(buf.data());
  mem.Store(p, 7u);
  EXPECT_EQ(mem.Load(p), 7u);
  mem.Update(p, 3u);
  EXPECT_EQ(*p, 10u);
  EXPECT_EQ(h.events().accesses, 3u);
  EXPECT_EQ(h.events().l1_misses, 1u);  // same line throughout
}

TEST(HwCountersTest, OpenEitherWorksOrReportsUnavailable) {
  HwCounters hw;
  Status s = hw.Open();
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
    EXPECT_FALSE(hw.is_open());
    return;
  }
  ASSERT_TRUE(hw.Start().ok());
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  uint64_t cycles = 0;
  auto ev = hw.Stop(&cycles);
  ASSERT_TRUE(ev.ok());
  EXPECT_GT(cycles, 0u);
}

TEST(HwCountersTest, StopWithoutOpenFails) {
  HwCounters hw;
  EXPECT_EQ(hw.Stop().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(hw.Start().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ccdb
