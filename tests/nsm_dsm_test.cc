// Row store (NSM) and vertical decomposition (DSM) tests, including the
// Fig. 4 "Item" table round trip and the §3.1 footprint comparison.
#include <gtest/gtest.h>

#include "bat/dsm.h"
#include "bat/nsm.h"

namespace ccdb {
namespace {

// The paper's Item table (Fig. 4): ~80-byte relational tuples.
std::vector<FieldDef> ItemFields() {
  return {
      {"order", FieldType::kU32},    {"supp", FieldType::kU32},
      {"part", FieldType::kU32},     {"qty", FieldType::kU32},
      {"discnt", FieldType::kF64},   {"tax", FieldType::kF64},
      {"price", FieldType::kF64},    {"status", FieldType::kChar1},
      {"flag", FieldType::kChar1},   {"date1", FieldType::kU32},
      {"date2", FieldType::kU32},    {"date3", FieldType::kU32},
      {"shipmode", FieldType::kChar10},
      {"comment", FieldType::kChar27},
  };
}

RowStore MakeItems(size_t n) {
  auto rs = RowStore::Make(ItemFields(), n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP", "RAIL", "REG AIR"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(1000 + i));
    rs->SetU32(r, 1, static_cast<uint32_t>(i % 17));
    rs->SetU32(r, 2, static_cast<uint32_t>(i * 7 % 113));
    rs->SetU32(r, 3, static_cast<uint32_t>(1 + i % 6));
    rs->SetF64(r, 4, (i % 2) ? 0.10 : 0.00);
    rs->SetF64(r, 5, 0.05 * (i % 3));
    rs->SetF64(r, 6, 10.0 + i);
    rs->SetU8(r, 7, 'N');
    rs->SetU8(r, 8, 'O');
    rs->SetU32(r, 9, static_cast<uint32_t>(19990101 + i));
    rs->SetU32(r, 10, static_cast<uint32_t>(19990201 + i));
    rs->SetU32(r, 11, static_cast<uint32_t>(19990301 + i));
    const char* m = modes[i % 6];
    rs->SetBytes(r, 12, m, strlen(m));
    rs->SetBytes(r, 13, "no comment", 10);
  }
  return *std::move(rs);
}

TEST(RowStoreTest, LayoutIsPacked) {
  auto rs = RowStore::Make(ItemFields(), 4);
  ASSERT_TRUE(rs.ok());
  // 4*4 + 3*8 + 2*1 + 3*4 + 10 + 27 = 16+24+2+12+37 = 91 bytes.
  EXPECT_EQ(rs->record_width(), 91u);
  EXPECT_EQ(rs->field_offset(0), 0u);
  EXPECT_EQ(rs->field_offset(1), 4u);
  EXPECT_EQ(rs->field_offset(4), 16u);
  EXPECT_EQ(rs->field_offset(7), 40u);
}

TEST(RowStoreTest, AppendAndAccess) {
  auto rs = RowStore::Make({{"a", FieldType::kU32}, {"b", FieldType::kF64}}, 2);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->AppendRow().ok());
  rs->SetU32(0, 0, 77);
  rs->SetF64(0, 1, 2.5);
  EXPECT_EQ(rs->GetU32(0, 0), 77u);
  EXPECT_DOUBLE_EQ(rs->GetF64(0, 1), 2.5);
}

TEST(RowStoreTest, CapacityEnforced) {
  auto rs = RowStore::Make({{"a", FieldType::kU8}}, 1);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->AppendRow().ok());
  EXPECT_EQ(rs->AppendRow().status().code(), StatusCode::kResourceExhausted);
}

TEST(RowStoreTest, EmptySchemaRejected) {
  EXPECT_EQ(RowStore::Make({}, 4).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RowStoreTest, FieldIndexByName) {
  auto rs = RowStore::Make(ItemFields(), 1);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(*rs->FieldIndex("shipmode"), 12u);
  EXPECT_EQ(rs->FieldIndex("nope").status().code(), StatusCode::kNotFound);
}

TEST(RowStoreTest, SetBytesZeroPads) {
  auto rs = RowStore::Make({{"s", FieldType::kChar10}}, 1);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->AppendRow().ok());
  rs->SetBytes(0, 0, "AIR", 3);
  const uint8_t* b = rs->GetBytes(0, 0);
  EXPECT_EQ(b[0], 'A');
  EXPECT_EQ(b[3], 0);
  EXPECT_EQ(b[9], 0);
}

TEST(DsmTest, DecomposeProducesVoidHeadBats) {
  RowStore rows = MakeItems(10);
  auto dsm = DecomposedTable::Decompose(rows);
  ASSERT_TRUE(dsm.ok());
  EXPECT_EQ(dsm->num_columns(), 14u);
  EXPECT_EQ(dsm->num_rows(), 10u);
  for (size_t c = 0; c < dsm->num_columns(); ++c) {
    EXPECT_TRUE(dsm->column(c).head().is_void());
    EXPECT_EQ(dsm->column(c).size(), 10u);
  }
  EXPECT_EQ(*dsm->ColumnIndex("qty"), 3u);
}

TEST(DsmTest, ColumnValuesMatchRows) {
  RowStore rows = MakeItems(25);
  auto dsm = DecomposedTable::Decompose(rows);
  ASSERT_TRUE(dsm.ok());
  auto qty = dsm->column(3).tail().Span<uint32_t>();
  auto price = dsm->column(6).tail().Span<double>();
  for (size_t r = 0; r < 25; ++r) {
    EXPECT_EQ(qty[r], rows.GetU32(r, 3));
    EXPECT_DOUBLE_EQ(price[r], rows.GetF64(r, 6));
  }
  EXPECT_EQ(dsm->column(12).tail().GetStr(1), "AIR");
}

TEST(DsmTest, ReconstructRoundTripsAllFields) {
  RowStore rows = MakeItems(31);
  auto dsm = DecomposedTable::Decompose(rows);
  ASSERT_TRUE(dsm.ok());
  auto back = dsm->Reconstruct();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), rows.size());
  ASSERT_EQ(back->record_width(), rows.record_width());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(std::memcmp(back->RowPtr(r), rows.RowPtr(r),
                          rows.record_width()),
              0)
        << "row " << r;
  }
}

TEST(DsmTest, ReconstructRowValidatesArguments) {
  RowStore rows = MakeItems(4);
  auto dsm = DecomposedTable::Decompose(rows);
  ASSERT_TRUE(dsm.ok());
  auto out = RowStore::Make(ItemFields(), 4);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->AppendRow().ok());
  EXPECT_EQ(dsm->ReconstructRow(99, &*out, 0).code(),
            StatusCode::kOutOfRange);
  auto wrong = RowStore::Make({{"a", FieldType::kU8}}, 1);
  ASSERT_TRUE(wrong.ok());
  ASSERT_TRUE(wrong->AppendRow().ok());
  EXPECT_EQ(dsm->ReconstructRow(0, &*wrong, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(DsmTest, ScanStrideShrinksVersusNsm) {
  // §3.1: scanning one attribute in NSM strides at record width (91 bytes
  // here); in DSM the stride is the value width (4 bytes for qty).
  RowStore rows = MakeItems(100);
  auto dsm = DecomposedTable::Decompose(rows);
  ASSERT_TRUE(dsm.ok());
  EXPECT_EQ(rows.record_width(), 91u);
  EXPECT_EQ(PhysTypeWidth(dsm->column(3).tail().type()), 4u);
}

TEST(FieldTypeTest, Widths) {
  EXPECT_EQ(FieldTypeWidth(FieldType::kU8), 1u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kU16), 2u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kU32), 4u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kI64), 8u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kF64), 8u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kChar1), 1u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kChar10), 10u);
  EXPECT_EQ(FieldTypeWidth(FieldType::kChar27), 27u);
}

}  // namespace
}  // namespace ccdb
