// Cost-model properties swept across all four machine profiles: the shapes
// the paper attributes to hardware geometry (knees at |TLB|, line sizes,
// cache capacities) must emerge from each profile's own numbers, not from
// Origin2000 constants baked into the formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"
#include "model/strategy.h"

namespace ccdb {
namespace {

std::vector<MachineProfile> AllProfiles() {
  return {MachineProfile::Origin2000(), MachineProfile::GenericX86(),
          MachineProfile::Sun450(), MachineProfile::UltraSparc1()};
}

class ProfileSweep : public ::testing::TestWithParam<size_t> {
 protected:
  MachineProfile profile_ = AllProfiles()[GetParam()];
  CostModel model_{AllProfiles()[GetParam()]};
};

TEST_P(ProfileSweep, ScanSaturatesAtLineSizes) {
  // ML1 saturates at the L1 line size, ML2 at the L2 line size.
  ScanPrediction at_l1 = model_.ScanIteration(profile_.l1.line_bytes);
  ScanPrediction beyond = model_.ScanIteration(profile_.l1.line_bytes * 2);
  EXPECT_DOUBLE_EQ(at_l1.l2_ns, profile_.lat.l2_ns);
  EXPECT_DOUBLE_EQ(beyond.l2_ns, profile_.lat.l2_ns);

  ScanPrediction at_l2 = model_.ScanIteration(profile_.l2.line_bytes);
  ScanPrediction beyond2 = model_.ScanIteration(profile_.l2.line_bytes * 4);
  EXPECT_DOUBLE_EQ(at_l2.mem_ns, profile_.lat.mem_ns);
  EXPECT_DOUBLE_EQ(beyond2.total_ns(), at_l2.total_ns());
}

TEST_P(ProfileSweep, ScanMonotoneNondecreasingInStride) {
  double prev = 0;
  for (size_t s = 1; s <= 512; s *= 2) {
    double t = model_.ScanIteration(s).total_ns();
    EXPECT_GE(t, prev) << "stride " << s;
    prev = t;
  }
}

TEST_P(ProfileSweep, ClusterTlbKneeAtProfileTlbEntries) {
  // The per-pass TLB explosion must sit exactly at log2(|TLB|) bits —
  // derived from the profile, not hardcoded.
  constexpr uint64_t kC = 4 << 20;
  int knee_bits = Log2Floor(profile_.tlb.entries);
  double at_knee = model_.ClusterTlbMisses(knee_bits, kC);
  double past_knee = model_.ClusterTlbMisses(knee_bits + 2, kC);
  EXPECT_GT(past_knee, 5 * at_knee);
}

TEST_P(ProfileSweep, OptimalPassesDerivedFromTlb) {
  int per_pass = Log2Floor(profile_.tlb.entries);
  EXPECT_EQ(model_.OptimalPasses(per_pass), 1);
  EXPECT_EQ(model_.OptimalPasses(per_pass + 1), 2);
  EXPECT_EQ(model_.OptimalPasses(2 * per_pass), 2);
  EXPECT_EQ(model_.OptimalPasses(2 * per_pass + 1), 3);
}

TEST_P(ProfileSweep, PhashStrategyBitsOrdering) {
  // Smaller target level => more bits, always: L1 >= TLB-span >= L2 when
  // the geometry orders them that way (true of all shipped profiles).
  constexpr uint64_t kC = 8 << 20;
  int b_l2 = StrategyBits(JoinStrategy::kPhashL2, kC, profile_);
  int b_tlb = StrategyBits(JoinStrategy::kPhashTLB, kC, profile_);
  int b_l1 = StrategyBits(JoinStrategy::kPhashL1, kC, profile_);
  EXPECT_LE(b_l2, b_tlb);
  EXPECT_LE(b_tlb, b_l1);
  // And each strategy's cluster actually fits its target level.
  auto cluster_bytes = [&](int bits) {
    return static_cast<double>(kC) * 12 / std::exp2(bits);
  };
  EXPECT_LE(cluster_bytes(b_l2),
            static_cast<double>(profile_.l2.capacity_bytes) * 1.0001);
  EXPECT_LE(cluster_bytes(b_tlb),
            static_cast<double>(profile_.tlb.span_bytes()) * 1.0001);
  EXPECT_LE(cluster_bytes(b_l1),
            static_cast<double>(profile_.l1.capacity_bytes) * 1.0001);
}

TEST_P(ProfileSweep, BestPlanBeatsNaiveAtScale) {
  constexpr uint64_t kC = 8 << 20;
  JoinPlan best = PlanJoin(JoinStrategy::kBest, kC, profile_);
  JoinPlan naive = PlanJoin(JoinStrategy::kSimpleHash, kC, profile_);
  EXPECT_LT(best.predicted_ms, naive.predicted_ms);
}

TEST_P(ProfileSweep, ModelCostsArePositiveAndFinite) {
  for (uint64_t c : {uint64_t{1000}, uint64_t{1} << 20}) {
    for (int b : {0, 4, 10, 16}) {
      for (const ModelPrediction& p :
           {model_.Cluster(model_.OptimalPasses(b), b, c),
            model_.RadixJoinPhase(b, c), model_.PhashJoinPhase(b, c)}) {
        EXPECT_GT(p.total_ns(profile_.lat), 0.0);
        EXPECT_TRUE(std::isfinite(p.total_ns(profile_.lat)));
        EXPECT_GE(p.l1_misses, 0.0);
        EXPECT_GE(p.l2_misses, 0.0);
        EXPECT_GE(p.tlb_misses, 0.0);
      }
    }
  }
}

TEST_P(ProfileSweep, RadixJoinCpuTermScalesWithClusterSize) {
  // Tr's nested-loop term: halving the cluster size (one more bit) must
  // halve the C*(C/H)*wr part; check via large-B ratios where misses are
  // negligible.
  constexpr uint64_t kC = 1 << 22;
  double t10 = model_.RadixJoinPhase(10, kC).cpu_ns;
  double t11 = model_.RadixJoinPhase(11, kC).cpu_ns;
  double fixed = static_cast<double>(kC) * profile_.cost.wrp_ns;
  EXPECT_NEAR((t10 - fixed) / (t11 - fixed), 2.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, ProfileSweep,
                         ::testing::Range<size_t>(0, 4));

TEST(ScanModelCrossMachine, PenaltyRatioGrowsWithCpuSpeed) {
  // Figure 3's historical message: the plateau/floor ratio grows from the
  // 1992 SunLX to the 1998 Origin2000.
  auto ratio = [](const MachineProfile& m) {
    CostModel model(m);
    double floor = model.ScanIteration(1).total_ns();
    double plateau = model.ScanIteration(m.l2.line_bytes).total_ns();
    return plateau / floor;
  };
  double lx = ratio(MachineProfile::SunLX());
  double ultra = ratio(MachineProfile::UltraSparc1());
  double s450 = ratio(MachineProfile::Sun450());
  double o2k = ratio(MachineProfile::Origin2000());
  EXPECT_LT(lx, ultra);
  EXPECT_LT(ultra, s450);
  EXPECT_LT(s450, o2k);
  EXPECT_GT(o2k, 10.0);  // "all advances in CPU power are neutralized"
  EXPECT_LT(lx, 5.0);
}

}  // namespace
}  // namespace ccdb
