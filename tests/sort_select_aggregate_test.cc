// Sorting kernels, scan-selects and grouping/aggregation (§3.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/aggregate.h"
#include "algo/radix_sort.h"
#include "algo/select.h"
#include "algo/stride_scan.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace ccdb {
namespace {

std::vector<Bun> RandomBuns(size_t n, uint64_t seed, uint32_t range = 0) {
  Rng rng(seed);
  std::vector<Bun> v(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t val =
        range == 0 ? rng.NextU32() : static_cast<uint32_t>(rng.NextBelow(range));
    v[i] = {static_cast<oid_t>(i), val};
  }
  return v;
}

bool SortedByTail(const std::vector<Bun>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].tail > v[i].tail) return false;
  }
  return true;
}

TEST(RadixSortTest, SortsRandomData) {
  DirectMemory mem;
  auto v = RandomBuns(10000, 1);
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Bun& a, const Bun& b) { return a.tail < b.tail; });
  RadixSortByTail(std::span<Bun>(v), mem);
  EXPECT_EQ(v, expect);  // stability: exact equality including heads
}

TEST(RadixSortTest, EdgeCases) {
  DirectMemory mem;
  std::vector<Bun> empty;
  RadixSortByTail(std::span<Bun>(empty), mem);
  std::vector<Bun> one = {{3, 9}};
  RadixSortByTail(std::span<Bun>(one), mem);
  EXPECT_EQ(one[0], (Bun{3, 9}));
  std::vector<Bun> extremes = {{0, UINT32_MAX}, {1, 0}, {2, UINT32_MAX}, {3, 1}};
  RadixSortByTail(std::span<Bun>(extremes), mem);
  EXPECT_TRUE(SortedByTail(extremes));
  EXPECT_EQ(extremes[0].tail, 0u);
  EXPECT_EQ(extremes[3].tail, UINT32_MAX);
}

TEST(QuickSortTest, SortsAdversarialPatterns) {
  DirectMemory mem;
  // random, sorted, reverse, all-equal, sawtooth
  std::vector<std::vector<Bun>> cases;
  cases.push_back(RandomBuns(5000, 2));
  {
    std::vector<Bun> v(1000);
    for (uint32_t i = 0; i < 1000; ++i) v[i] = {i, i};
    cases.push_back(v);
    std::reverse(v.begin(), v.end());
    cases.push_back(v);
  }
  cases.push_back(std::vector<Bun>(777, Bun{1, 42}));
  {
    std::vector<Bun> v(1024);
    for (uint32_t i = 0; i < 1024; ++i) v[i] = {i, i % 7};
    cases.push_back(v);
  }
  for (auto& v : cases) {
    auto expect = v;
    std::sort(expect.begin(), expect.end(),
              [](const Bun& a, const Bun& b) { return a.tail < b.tail; });
    QuickSortByTail(std::span<Bun>(v), mem);
    ASSERT_EQ(v.size(), expect.size());
    EXPECT_TRUE(SortedByTail(v));
    // Same multiset of tails.
    std::vector<uint32_t> got, want;
    for (auto& b : v) got.push_back(b.tail);
    for (auto& b : expect) want.push_back(b.tail);
    EXPECT_EQ(got, want);
  }
}

TEST(QuickSortTest, TinyInputs) {
  DirectMemory mem;
  std::vector<Bun> empty;
  QuickSortByTail(std::span<Bun>(empty), mem);
  std::vector<Bun> two = {{0, 9}, {1, 3}};
  QuickSortByTail(std::span<Bun>(two), mem);
  EXPECT_EQ(two[0].tail, 3u);
}

TEST(RangeSelectTest, FindsPositions) {
  DirectMemory mem;
  std::vector<uint32_t> v = {5, 10, 15, 20, 25};
  auto got = RangeSelect(std::span<const uint32_t>(v), 10u, 20u, mem);
  EXPECT_EQ(got, (std::vector<oid_t>{1, 2, 3}));
  got = RangeSelect(std::span<const uint32_t>(v), 0u, 4u, mem);
  EXPECT_TRUE(got.empty());
  got = RangeSelect(std::span<const uint32_t>(v), 0u, UINT32_MAX, mem);
  EXPECT_EQ(got.size(), 5u);
}

TEST(RangeSelectTest, ByteEncodedPredicateRemap) {
  // §3.1: selection on "MAIL" (code 3) over a 1-byte column.
  DirectMemory mem;
  std::vector<uint8_t> codes = {1, 3, 0, 3, 3, 2};
  auto got = EqSelect(std::span<const uint8_t>(codes), uint8_t{3}, mem);
  EXPECT_EQ(got, (std::vector<oid_t>{1, 3, 4}));
}

TEST(CountAndSumTest, AggregateScans) {
  DirectMemory mem;
  std::vector<uint32_t> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(CountRange(std::span<const uint32_t>(v), 2u, 4u, mem), 3u);
  EXPECT_EQ(SumColumn(std::span<const uint32_t>(v), mem), 15u);
  std::vector<uint32_t> empty;
  EXPECT_EQ(SumColumn(std::span<const uint32_t>(empty), mem), 0u);
}

std::map<uint32_t, std::pair<uint64_t, uint64_t>> ReferenceGroups(
    const std::vector<uint32_t>& keys, const std::vector<uint32_t>& vals) {
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> m;
  for (size_t i = 0; i < keys.size(); ++i) {
    m[keys[i]].first += vals[i];
    m[keys[i]].second += 1;
  }
  return m;
}

TEST(HashGroupSumTest, MatchesReference) {
  DirectMemory mem;
  Rng rng(5);
  std::vector<uint32_t> keys(5000), vals(5000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint32_t>(rng.NextBelow(37));
    vals[i] = static_cast<uint32_t>(rng.NextBelow(1000));
  }
  auto got = HashGroupSum<DirectMemory, MurmurHash>(
      std::span<const uint32_t>(keys), std::span<const uint32_t>(vals), mem);
  auto expect = ReferenceGroups(keys, vals);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t g = 0; g < got.size(); ++g) {
    auto it = expect.find(got.keys[g]);
    ASSERT_NE(it, expect.end());
    EXPECT_EQ(got.sums[g], it->second.first);
    EXPECT_EQ(got.counts[g], it->second.second);
  }
}

TEST(HashGroupSumTest, FirstAppearanceOrder) {
  DirectMemory mem;
  std::vector<uint32_t> keys = {9, 3, 9, 7, 3};
  std::vector<uint32_t> vals = {1, 1, 1, 1, 1};
  auto got = HashGroupSum(std::span<const uint32_t>(keys),
                          std::span<const uint32_t>(vals), mem);
  EXPECT_EQ(got.keys, (std::vector<uint32_t>{9, 3, 7}));
  EXPECT_EQ(got.counts, (std::vector<uint64_t>{2, 2, 1}));
}

TEST(SortGroupSumTest, MatchesHashGrouping) {
  DirectMemory mem;
  Rng rng(6);
  std::vector<uint32_t> keys(3000), vals(3000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint32_t>(rng.NextBelow(100));
    vals[i] = static_cast<uint32_t>(rng.NextBelow(50));
  }
  auto sorted = SortGroupSum(std::span<const uint32_t>(keys),
                             std::span<const uint32_t>(vals), mem);
  auto expect = ReferenceGroups(keys, vals);
  ASSERT_EQ(sorted.size(), expect.size());
  // Sort-grouping emits keys in ascending order.
  EXPECT_TRUE(std::is_sorted(sorted.keys.begin(), sorted.keys.end()));
  for (size_t g = 0; g < sorted.size(); ++g) {
    EXPECT_EQ(sorted.sums[g], expect[sorted.keys[g]].first);
    EXPECT_EQ(sorted.counts[g], expect[sorted.keys[g]].second);
  }
}

TEST(GroupSumTest, EmptyInput) {
  DirectMemory mem;
  std::vector<uint32_t> none;
  auto h = HashGroupSum(std::span<const uint32_t>(none),
                        std::span<const uint32_t>(none), mem);
  EXPECT_EQ(h.size(), 0u);
  auto s = SortGroupSum(std::span<const uint32_t>(none),
                        std::span<const uint32_t>(none), mem);
  EXPECT_EQ(s.size(), 0u);
}

TEST(StrideScanTest, SumsCorrectBytes) {
  DirectMemory mem;
  AlignedBuffer buf(1024);
  for (size_t i = 0; i < 1024; ++i) buf.data()[i] = static_cast<uint8_t>(i);
  // stride 4, 10 iterations: bytes 0,4,8,...,36.
  uint64_t expect = 0;
  for (int i = 0; i < 10; ++i) expect += static_cast<uint8_t>(i * 4);
  EXPECT_EQ(StrideScanSum(buf.data(), buf.size(), 4, 10, mem), expect);
}

TEST(StrideScanTest, StrideOneReadsPrefix) {
  DirectMemory mem;
  AlignedBuffer buf(64);
  for (size_t i = 0; i < 64; ++i) buf.data()[i] = 1;
  EXPECT_EQ(StrideScanSum(buf.data(), buf.size(), 1, 64, mem), 64u);
}

}  // namespace
}  // namespace ccdb
