// The richer BAT algebra: multi-key GroupByAgg (sum/min/max/avg/count),
// conjunctive selects fused into one candidate pass, outer/anti/semi joins
// from the prepared-once inner — plus regression tests for the operator
// edge cases fixed alongside (Limit(0) draining its child, QueryBuilder
// reuse after Build(), unchecked u64 -> i64 aggregate narrowing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <tuple>

#include "algo/aggregate.h"
#include "exec/operator.h"
#include "exec/plan.h"
#include "model/planner.h"

namespace ccdb {
namespace {

// items(order u32, qty u32, price f64, shipmode char10): shipmode cycles
// MAIL/AIR/TRUCK/SHIP, so i % 4 == 0 <=> "MAIL".
RowStore MakeItems(size_t n) {
  auto rs = RowStore::Make(
      {
          {"order", FieldType::kU32},
          {"qty", FieldType::kU32},
          {"price", FieldType::kF64},
          {"shipmode", FieldType::kChar10},
      },
      n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 3));
    rs->SetU32(r, 1, static_cast<uint32_t>(1 + i % 5));
    rs->SetF64(r, 2, 10.0 + static_cast<double>(i % 97));
    const char* m = modes[i % 4];
    rs->SetBytes(r, 3, m, strlen(m));
  }
  return *std::move(rs);
}

Table MakeOrders(size_t n) {
  auto rs = RowStore::Make(
      {{"order_id", FieldType::kU32}, {"prio", FieldType::kU32}}, n);
  CCDB_CHECK(rs.ok());
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetU32(r, 1, static_cast<uint32_t>(i % 7));
  }
  return *Table::FromRowStore(*rs);
}

Table TableFromU32(const char* name, const std::vector<uint32_t>& values) {
  auto rs = RowStore::Make({{name, FieldType::kU32}}, values.size());
  CCDB_CHECK(rs.ok());
  for (uint32_t v : values) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, v);
  }
  return *Table::FromRowStore(*rs);
}

QueryResult RunPlan(const LogicalPlan& plan, size_t parallelism,
                size_t chunk_rows = 4096) {
  PlannerOptions opts;
  opts.exec.parallelism = parallelism;
  opts.exec.scan_chunk_rows = chunk_rows;
  auto r = Execute(plan, opts);
  CCDB_CHECK(r.ok());
  return *std::move(r);
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.columns[c].u32_values, b.columns[c].u32_values) << what;
    EXPECT_EQ(a.columns[c].i64_values, b.columns[c].i64_values) << what;
    EXPECT_EQ(a.columns[c].f64_values, b.columns[c].f64_values) << what;
    EXPECT_EQ(a.columns[c].str_values, b.columns[c].str_values) << what;
  }
}

// --- builder validation ------------------------------------------------------

TEST(RichAlgebraBuilderTest, GroupByAggSchemaAndTypes) {
  Table items = *Table::FromRowStore(MakeItems(24));
  auto plan = QueryBuilder(items)
                  .GroupByAgg({"order", "shipmode"},
                              {Agg::Sum("qty"), Agg::Min("qty"),
                               Agg::Max("qty"), Agg::Avg("qty"),
                               Agg::Count(), Agg::Sum("qty").As("qty2")})
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto& schema = plan->output_schema();
  ASSERT_EQ(schema.size(), 8u);
  EXPECT_EQ(schema[0].name, "order");
  EXPECT_EQ(schema[0].type, PhysType::kU32);
  EXPECT_EQ(schema[1].name, "shipmode");
  EXPECT_EQ(schema[1].type, PhysType::kStr);
  EXPECT_FALSE(schema[1].encoded);  // decoded on emission
  EXPECT_EQ(schema[2].name, "sum");
  EXPECT_EQ(schema[2].type, PhysType::kI64);
  EXPECT_EQ(schema[3].name, "min");
  EXPECT_EQ(schema[3].type, PhysType::kU32);
  EXPECT_EQ(schema[4].name, "max");
  EXPECT_EQ(schema[4].type, PhysType::kU32);
  EXPECT_EQ(schema[5].name, "avg");
  EXPECT_EQ(schema[5].type, PhysType::kF64);
  EXPECT_EQ(schema[6].name, "count");
  EXPECT_EQ(schema[6].type, PhysType::kI64);
  EXPECT_EQ(schema[7].name, "qty2");
  std::string s = plan->ToString();
  EXPECT_NE(s.find("min(qty)"), std::string::npos);
  EXPECT_NE(s.find("avg(qty)"), std::string::npos);
  EXPECT_NE(s.find("sum(qty) as qty2"), std::string::npos);
}

TEST(RichAlgebraBuilderTest, GroupByAggRejectsBadSpecs) {
  Table items = *Table::FromRowStore(MakeItems(10));
  // Empty group / aggregate lists.
  EXPECT_EQ(QueryBuilder(items).GroupByAgg({}, {Agg::Count()}).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryBuilder(items).GroupByAgg({"order"}, {}).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  // Duplicate group column.
  EXPECT_EQ(QueryBuilder(items)
                .GroupByAgg({"order", "order"}, {Agg::Count()})
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // Duplicate output names need As().
  EXPECT_EQ(QueryBuilder(items)
                .GroupByAgg({"order"}, {Agg::Sum("qty"), Agg::Sum("qty")})
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // f64 value column and f64 group column are rejected.
  EXPECT_EQ(QueryBuilder(items).GroupByAgg({"order"}, {Agg::Min("price")})
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryBuilder(items).GroupByAgg({"price"}, {Agg::Count()})
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // Unknown value column.
  EXPECT_EQ(QueryBuilder(items).GroupByAgg({"order"}, {Agg::Max("nope")})
                .Build().status().code(),
            StatusCode::kNotFound);
}

TEST(RichAlgebraBuilderTest, ConjunctionValidatesAsOneNode) {
  Table items = *Table::FromRowStore(MakeItems(10));
  // Empty conjunction is rejected.
  EXPECT_EQ(QueryBuilder(items).Select(std::vector<Predicate>{}).Build()
                .status().code(),
            StatusCode::kInvalidArgument);
  // Every conjunct is validated, not just the first.
  EXPECT_EQ(QueryBuilder(items)
                .Select({Predicate::RangeU32("qty", 0, 3),
                         Predicate::RangeU32("price", 0, 3)})
                .Build().status().code(),
            StatusCode::kInvalidArgument);
  // A valid three-way mixed conjunction renders as one Select node.
  auto plan = QueryBuilder(items)
                  .Select({Predicate::RangeU32("qty", 2, 4),
                           Predicate::EqStr("shipmode", "MAIL"),
                           Predicate::RangeF64("price", 0.0, 60.0)})
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string s = plan->ToString();
  EXPECT_NE(s.find("qty in [2, 4] AND shipmode = \"MAIL\" AND"),
            std::string::npos);
  // One Select line, not three.
  size_t first = s.find("Select");
  EXPECT_EQ(s.find("Select", first + 1), std::string::npos);
}

TEST(RichAlgebraBuilderTest, JoinTypeSchemas) {
  Table items = *Table::FromRowStore(MakeItems(12));
  Table orders = MakeOrders(5);
  // Semi/anti keep only left columns.
  for (JoinType t : {JoinType::kSemi, JoinType::kAnti}) {
    auto plan =
        QueryBuilder(items).Join(orders, "order", "order_id", t).Build();
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->output_schema().size(), items.num_columns());
    for (const PlanColumn& c : plan->output_schema()) {
      EXPECT_FALSE(c.nullable);
    }
    EXPECT_NE(plan->ToString().find(JoinTypeName(t)), std::string::npos);
  }
  // Left outer: right columns appended, nullable, decoded.
  auto outer = QueryBuilder(items)
                   .Join(orders, "order", "order_id", JoinType::kLeftOuter)
                   .Build();
  ASSERT_TRUE(outer.ok());
  const auto& schema = outer->output_schema();
  ASSERT_EQ(schema.size(), items.num_columns() + orders.num_columns());
  for (size_t i = 0; i < items.num_columns(); ++i) {
    EXPECT_FALSE(schema[i].nullable);
  }
  for (size_t i = items.num_columns(); i < schema.size(); ++i) {
    EXPECT_TRUE(schema[i].nullable);
    EXPECT_FALSE(schema[i].encoded);
  }
  EXPECT_NE(outer->ToString().find("left_outer"), std::string::npos);
}

// --- satellite regression: QueryBuilder reuse after Build() ------------------

TEST(QueryBuilderReuseTest, SecondBuildIsInvalidArgumentNotUB) {
  Table items = *Table::FromRowStore(MakeItems(10));
  QueryBuilder qb(items);
  qb.Select(Predicate::RangeU32("qty", 0, 3));
  auto first = qb.Build();
  ASSERT_TRUE(first.ok());
  auto second = qb.Build();
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuilderReuseTest, FluentCallAfterBuildIsSafe) {
  Table items = *Table::FromRowStore(MakeItems(10));
  Table orders = MakeOrders(5);
  QueryBuilder qb(items);
  auto first = qb.Build();
  ASSERT_TRUE(first.ok());
  // Every fluent method on a consumed builder must be a safe no-op ...
  qb.Select(Predicate::RangeU32("qty", 0, 3))
      .Join(orders, "order", "order_id")
      .Project({"qty"})
      .GroupByAgg({"qty"}, {Agg::Count()})
      .OrderBy("count")
      .Limit(1);
  // ... and the next Build() reports the reuse.
  EXPECT_EQ(qb.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuilderReuseTest, JoiningAConsumedBuilderFailsCleanly) {
  Table items = *Table::FromRowStore(MakeItems(10));
  Table orders = MakeOrders(5);
  QueryBuilder inner(orders);
  ASSERT_TRUE(inner.Build().ok());  // consumes inner
  auto plan = QueryBuilder(items)
                  .Join(std::move(inner), "order", "order_id")
                  .Build();
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

// --- satellite regression: Limit(0) must not drain its child -----------------

/// Wraps a ScanOp and counts Next() calls, so tests can see how many chunks
/// a parent operator actually pulled.
class CountingSource : public Operator {
 public:
  CountingSource(const Table* table, size_t chunk_rows)
      : scan_(table, chunk_rows) {}
  Status Open() override { return scan_.Open(); }
  StatusOr<bool> Next(Chunk* out) override {
    ++next_calls;
    return scan_.Next(out);
  }
  void Close() override { scan_.Close(); }

  int next_calls = 0;

 private:
  ScanOp scan_;
};

TEST(LimitZeroTest, TerminatesAfterFirstLayoutChunk) {
  Table items = *Table::FromRowStore(MakeItems(100));
  auto source = std::make_unique<CountingSource>(&items, /*chunk_rows=*/10);
  CountingSource* counter = source.get();
  LimitOp limit(std::move(source), /*limit=*/0, /*offset=*/0);
  ASSERT_TRUE(limit.Open().ok());
  Chunk out;
  auto first = limit.Next(&out);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);  // one layout-bearing chunk ...
  EXPECT_EQ(out.rows, 0u);
  EXPECT_EQ(out.cols.size(), items.num_columns());
  auto second = limit.Next(&out);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);  // ... then done,
  limit.Close();
  // without draining the remaining 9 chunks of the child.
  EXPECT_EQ(counter->next_calls, 1);
}

TEST(LimitZeroTest, LimitStopsPullingOnceReached) {
  Table items = *Table::FromRowStore(MakeItems(100));
  auto source = std::make_unique<CountingSource>(&items, /*chunk_rows=*/10);
  CountingSource* counter = source.get();
  LimitOp limit(std::move(source), /*limit=*/15, /*offset=*/0);
  ASSERT_TRUE(limit.Open().ok());
  Chunk out;
  size_t rows = 0;
  for (;;) {
    auto more = limit.Next(&out);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    rows += out.rows;
  }
  limit.Close();
  EXPECT_EQ(rows, 15u);
  EXPECT_EQ(counter->next_calls, 2);  // 10 + 5, then stop
}

TEST(LimitZeroTest, EndToEndLimitZeroKeepsSchema) {
  Table items = *Table::FromRowStore(MakeItems(50));
  for (size_t par : {1u, 2u, 8u}) {
    auto plan = QueryBuilder(items)
                    .GroupByAgg({"shipmode"}, {Agg::Min("qty"),
                                               Agg::Avg("qty")})
                    .Limit(0)
                    .Build();
    ASSERT_TRUE(plan.ok());
    QueryResult r = RunPlan(*plan, par);
    EXPECT_EQ(r.num_rows(), 0u);
    ASSERT_EQ(r.num_columns(), 3u);
    EXPECT_EQ(r.columns[0].type, PhysType::kStr);
    EXPECT_EQ(r.columns[1].type, PhysType::kU32);
    EXPECT_EQ(r.columns[2].type, PhysType::kF64);
  }
}

// --- satellite regression: aggregate overflow --------------------------------

TEST(GroupAggTableTest, CapacityHintMakesGrowthRehashFree) {
  // With a hint covering the final group count, growth must never rebuild
  // the bucket array; the hint-less table (1024 buckets, 4x-load rehash)
  // must rehash on the same input — and both must agree on the result.
  constexpr size_t kGroups = 20000;
  GroupAggTable hinted(/*key_width=*/1, /*num_values=*/1, kGroups);
  GroupAggTable unhinted(/*key_width=*/1, /*num_values=*/1);
  for (uint32_t rep = 0; rep < 2; ++rep) {
    for (uint32_t g = 0; g < kGroups; ++g) {
      uint32_t key = g;
      uint32_t value = g % 97;
      hinted.Add(&key, &value);
      unhinted.Add(&key, &value);
    }
  }
  EXPECT_EQ(hinted.num_groups(), kGroups);
  EXPECT_EQ(unhinted.num_groups(), kGroups);
  EXPECT_EQ(hinted.rehash_count(), 0u);
  EXPECT_GT(unhinted.rehash_count(), 0u);
  for (size_t g = 0; g < kGroups; ++g) {
    ASSERT_EQ(hinted.key(g, 0), unhinted.key(g, 0));
    ASSERT_EQ(hinted.group_rows(g), unhinted.group_rows(g));
    ASSERT_EQ(hinted.state(g, 0).sum, unhinted.state(g, 0).sum);
  }
  // An 8x-low hint still overflows into a rehash — the hint is a sizing
  // contract, not a cap.
  GroupAggTable low_hint(1, 1, kGroups / 64);
  for (uint32_t g = 0; g < kGroups; ++g) {
    uint32_t key = g, value = 1;
    low_hint.Add(&key, &value);
  }
  EXPECT_EQ(low_hint.num_groups(), kGroups);
  EXPECT_GT(low_hint.rehash_count(), 0u);
}

TEST(AggregateOverflowTest, CheckedNarrowingSurfacesOutOfRange) {
  constexpr uint64_t kMax = static_cast<uint64_t>(
      std::numeric_limits<int64_t>::max());
  auto ok = CheckedI64(kMax);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(CheckedI64(kMax + 1).status().code(), StatusCode::kOutOfRange);
}

TEST(AggregateOverflowTest, MergedPartialsPastInt64MaxAreDetected) {
  // Two shard partials whose merged sum exceeds INT64_MAX — exactly the
  // state GroupByAggOp narrows to the i64 "sum" column. The pre-fix code
  // wrapped this into a negative sum.
  constexpr uint64_t kMax = static_cast<uint64_t>(
      std::numeric_limits<int64_t>::max());
  GroupAggTable a(/*key_width=*/2, /*num_values=*/1);
  GroupAggTable b(/*key_width=*/2, /*num_values=*/1);
  const uint32_t key[2] = {7, 9};
  GroupAggState sa{/*sum=*/kMax - 10, /*min=*/3, /*max=*/80};
  GroupAggState sb{/*sum=*/100, /*min=*/1, /*max=*/40};
  a.AccumulateGroup(key, /*rows=*/1000, &sa);
  b.AccumulateGroup(key, /*rows=*/5, &sb);
  a.MergeFrom(b);
  ASSERT_EQ(a.num_groups(), 1u);
  EXPECT_EQ(a.group_rows(0), 1005u);
  EXPECT_EQ(a.state(0, 0).min, 1u);
  EXPECT_EQ(a.state(0, 0).max, 80u);
  EXPECT_EQ(CheckedI64(a.state(0, 0).sum).status().code(),
            StatusCode::kOutOfRange);
}

// --- multi-key group-by vs oracle --------------------------------------------

struct OracleAgg {
  uint64_t sum = 0, count = 0;
  uint32_t min = UINT32_MAX, max = 0;
};

TEST(GroupByAggExecTest, MultiKeyMinMaxAvgMatchesOracle) {
  constexpr size_t kN = 20000;
  Table items = *Table::FromRowStore(MakeItems(kN));
  auto plan = QueryBuilder(items)
                  .GroupByAgg({"order", "shipmode"},
                              {Agg::Sum("qty"), Agg::Min("qty"),
                               Agg::Max("qty"), Agg::Avg("qty"),
                               Agg::Count()})
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::map<std::pair<uint32_t, std::string>, OracleAgg> oracle;
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < kN; ++i) {
    OracleAgg& o = oracle[{static_cast<uint32_t>(i / 3), modes[i % 4]}];
    uint32_t v = static_cast<uint32_t>(1 + i % 5);
    o.sum += v;
    o.count += 1;
    o.min = std::min(o.min, v);
    o.max = std::max(o.max, v);
  }

  for (size_t par : {1u, 2u, 8u}) {
    QueryResult r = RunPlan(*plan, par);
    ASSERT_EQ(r.num_rows(), oracle.size()) << par;
    for (size_t g = 0; g < r.num_rows(); ++g) {
      std::pair<uint32_t, std::string> key = {
          r.columns[0].u32_values[g], r.columns[1].str_values[g]};
      ASSERT_TRUE(oracle.count(key)) << key.first << "/" << key.second;
      const OracleAgg& o = oracle[key];
      EXPECT_EQ(static_cast<uint64_t>(r.columns[2].i64_values[g]), o.sum);
      EXPECT_EQ(r.columns[3].u32_values[g], o.min);
      EXPECT_EQ(r.columns[4].u32_values[g], o.max);
      EXPECT_DOUBLE_EQ(r.columns[5].f64_values[g],
                       static_cast<double>(o.sum) /
                           static_cast<double>(o.count));
      EXPECT_EQ(static_cast<uint64_t>(r.columns[6].i64_values[g]), o.count);
    }
  }
}

TEST(GroupByAggExecTest, GroupBySumWrapperUnchanged) {
  // The GroupBySum convenience is now a GroupByAgg wrapper; its output
  // schema and values must be exactly the historical [group, sum, count].
  Table items = *Table::FromRowStore(MakeItems(300));
  auto plan = QueryBuilder(items).GroupBySum("shipmode", "qty").Build();
  ASSERT_TRUE(plan.ok());
  QueryResult r = RunPlan(*plan, 1);
  ASSERT_EQ(r.num_columns(), 3u);
  EXPECT_EQ(r.columns[0].name, "shipmode");
  EXPECT_EQ(r.columns[1].name, "sum");
  EXPECT_EQ(r.columns[2].name, "count");
  ASSERT_EQ(r.num_rows(), 4u);
  int64_t total = 0;
  for (size_t g = 0; g < 4; ++g) total += r.columns[2].i64_values[g];
  EXPECT_EQ(total, 300);
}

// --- conjunctive selects -----------------------------------------------------

TEST(ConjunctiveSelectTest, FusedPassEqualsChainedSelects) {
  constexpr size_t kN = 30000;
  Table items = *Table::FromRowStore(MakeItems(kN));
  auto fused = QueryBuilder(items)
                   .Select({Predicate::RangeU32("qty", 2, 4),
                            Predicate::EqStr("shipmode", "MAIL"),
                            Predicate::RangeF64("price", 20.0, 80.0)})
                   .Project({"order", "qty", "price"})
                   .Build();
  ASSERT_TRUE(fused.ok());
  auto chained = QueryBuilder(items)
                     .Select(Predicate::RangeU32("qty", 2, 4))
                     .Select(Predicate::EqStr("shipmode", "MAIL"))
                     .Select(Predicate::RangeF64("price", 20.0, 80.0))
                     .Project({"order", "qty", "price"})
                     .Build();
  ASSERT_TRUE(chained.ok());
  QueryResult expect = RunPlan(*chained, 1);
  ASSERT_GT(expect.num_rows(), 0u);
  // Row-at-a-time oracle.
  size_t oracle_rows = 0;
  for (size_t i = 0; i < kN; ++i) {
    uint32_t qty = static_cast<uint32_t>(1 + i % 5);
    double price = 10.0 + static_cast<double>(i % 97);
    if (qty >= 2 && qty <= 4 && i % 4 == 0 && price >= 20.0 && price <= 80.0) {
      ++oracle_rows;
    }
  }
  EXPECT_EQ(expect.num_rows(), oracle_rows);
  for (size_t par : {1u, 2u, 8u}) {
    ExpectSameResult(RunPlan(*fused, par), expect,
                     "fused conjunction, parallelism " +
                         std::to_string(par));
  }
}

TEST(ConjunctiveSelectTest, NonEncodedStringConjunctUsesFallback) {
  // With auto_encode off the shipmode column stays a raw string BAT: the
  // EqStr conjunct cannot use the code-range kernel and must fall back to
  // the candidate-bounded gather path.
  RowStore rows = MakeItems(5000);
  Table raw = *Table::FromRowStore(rows, /*auto_encode=*/false);
  Table encoded = *Table::FromRowStore(rows);
  auto build = [](const Table& t) {
    auto plan = QueryBuilder(t)
                    .Select({Predicate::RangeU32("qty", 1, 3),
                             Predicate::EqStr("shipmode", "TRUCK")})
                    .Project({"order", "qty"})
                    .Build();
    CCDB_CHECK(plan.ok());
    return *std::move(plan);
  };
  auto raw_plan = build(raw);
  auto enc_plan = build(encoded);
  QueryResult expect = RunPlan(enc_plan, 1);
  ASSERT_GT(expect.num_rows(), 0u);
  for (size_t par : {1u, 2u, 8u}) {
    ExpectSameResult(RunPlan(raw_plan, par), expect,
                     "non-encoded fallback, parallelism " +
                         std::to_string(par));
  }
}

TEST(ConjunctiveSelectTest, EqStrOnNonEncodedColumnStandalone) {
  // Single-predicate select through the gather fallback (first pass, not
  // just the narrowing pass).
  RowStore rows = MakeItems(4000);
  Table raw = *Table::FromRowStore(rows, /*auto_encode=*/false);
  auto plan = QueryBuilder(raw)
                  .Select(Predicate::EqStr("shipmode", "AIR"))
                  .Project({"order"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  for (size_t par : {1u, 2u, 8u}) {
    QueryResult r = RunPlan(*plan, par);
    EXPECT_EQ(r.num_rows(), 1000u) << par;  // i % 4 == 1
  }
}

TEST(ConjunctiveSelectTest, NaNValuesAndBoundsNeverMatch) {
  auto rs = RowStore::Make({{"k", FieldType::kU32}, {"x", FieldType::kF64}},
                           64);
  ASSERT_TRUE(rs.ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < 64; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetF64(r, 1, i % 4 == 0 ? nan : static_cast<double>(i));
  }
  Table t = *Table::FromRowStore(*rs);
  for (size_t par : {1u, 2u, 8u}) {
    // NaN values fail every range predicate.
    auto values = QueryBuilder(t)
                      .Select(Predicate::RangeF64("x", 0.0, 1000.0))
                      .Build();
    ASSERT_TRUE(values.ok());
    EXPECT_EQ(RunPlan(*values, par).num_rows(), 48u) << par;
    // NaN bounds select nothing.
    auto bounds = QueryBuilder(t)
                      .Select(Predicate::RangeF64("x", nan, nan))
                      .Build();
    ASSERT_TRUE(bounds.ok());
    EXPECT_EQ(RunPlan(*bounds, par).num_rows(), 0u) << par;
    // Same through the fused narrowing pass.
    auto conj = QueryBuilder(t)
                    .Select({Predicate::RangeU32("k", 0, 63),
                             Predicate::RangeF64("x", 0.0, 1000.0)})
                    .Build();
    ASSERT_TRUE(conj.ok());
    EXPECT_EQ(RunPlan(*conj, par).num_rows(), 48u) << par;
  }
}

// --- join types vs oracle ----------------------------------------------------

// left(k, tag) x right(id, payload, label): id values {2, 3, 3, 5} so k=3
// matches twice, k=0 and k=7 not at all.
struct JoinFixture {
  Table left, right;

  JoinFixture()
      : left(MakeLeft()), right(MakeRight()) {}

  static Table MakeLeft() {
    auto rs = RowStore::Make(
        {{"k", FieldType::kU32}, {"tag", FieldType::kU32}}, 8);
    CCDB_CHECK(rs.ok());
    const uint32_t ks[] = {0, 2, 3, 7, 3};
    for (size_t i = 0; i < 5; ++i) {
      size_t r = *rs->AppendRow();
      rs->SetU32(r, 0, ks[i]);
      rs->SetU32(r, 1, static_cast<uint32_t>(100 + i));
    }
    return *Table::FromRowStore(*rs);
  }
  static Table MakeRight() {
    auto rs = RowStore::Make({{"id", FieldType::kU32},
                              {"payload", FieldType::kU32},
                              {"label", FieldType::kChar10}},
                             8);
    CCDB_CHECK(rs.ok());
    const uint32_t ids[] = {2, 3, 3, 5};
    const uint32_t pays[] = {20, 30, 31, 50};
    const char* labels[] = {"two", "three", "three2", "five"};
    for (size_t i = 0; i < 4; ++i) {
      size_t r = *rs->AppendRow();
      rs->SetU32(r, 0, ids[i]);
      rs->SetU32(r, 1, pays[i]);
      rs->SetBytes(r, 2, labels[i], strlen(labels[i]));
    }
    return *Table::FromRowStore(*rs);
  }
};

TEST(JoinTypeTest, SemiAndAntiKeepProbeOrder) {
  JoinFixture f;
  for (size_t par : {1u, 2u, 8u}) {
    auto semi = QueryBuilder(f.left)
                    .Join(f.right, "k", "id", JoinType::kSemi)
                    .Build();
    ASSERT_TRUE(semi.ok());
    QueryResult rs = RunPlan(*semi, par);
    ASSERT_EQ(rs.num_columns(), 2u);  // left columns only
    EXPECT_EQ(rs.columns[0].u32_values, (std::vector<uint32_t>{2, 3, 3}));
    EXPECT_EQ(rs.columns[1].u32_values,
              (std::vector<uint32_t>{101, 102, 104}));

    auto anti = QueryBuilder(f.left)
                    .Join(f.right, "k", "id", JoinType::kAnti)
                    .Build();
    ASSERT_TRUE(anti.ok());
    QueryResult ra = RunPlan(*anti, par);
    EXPECT_EQ(ra.columns[0].u32_values, (std::vector<uint32_t>{0, 7}));
    EXPECT_EQ(ra.columns[1].u32_values, (std::vector<uint32_t>{100, 103}));
  }
}

TEST(JoinTypeTest, LeftOuterInterleavesNullsInProbeOrder) {
  JoinFixture f;
  for (size_t par : {1u, 2u, 8u}) {
    auto plan = QueryBuilder(f.left)
                    .Join(f.right, "k", "id", JoinType::kLeftOuter)
                    .Build();
    ASSERT_TRUE(plan.ok());
    QueryResult r = RunPlan(*plan, par);
    ASSERT_EQ(r.num_columns(), 5u);
    // Probe order with matches expanded in place: k=0 (null), k=2, k=3 (x2),
    // k=7 (null), k=3 (x2).
    EXPECT_EQ(r.columns[0].u32_values,
              (std::vector<uint32_t>{0, 2, 3, 3, 7, 3, 3}));
    EXPECT_EQ(r.columns[2].u32_values,  // id: null surrogate 0
              (std::vector<uint32_t>{0, 2, 3, 3, 0, 3, 3}));
    EXPECT_EQ(r.columns[3].u32_values,  // payload
              (std::vector<uint32_t>{0, 20, 30, 31, 0, 30, 31}));
    EXPECT_EQ(r.columns[4].str_values,  // label: null surrogate ""
              (std::vector<std::string>{"", "two", "three", "three2", "",
                                        "three", "three2"}));
  }
}

TEST(JoinTypeTest, LeftOuterAgainstEmptyInnerNullExtendsEverything) {
  JoinFixture f;
  for (size_t par : {1u, 2u, 8u}) {
    QueryBuilder inner(f.right);
    inner.Select(Predicate::RangeU32("id", 1000, 2000));  // empty
    auto plan = QueryBuilder(f.left)
                    .Join(std::move(inner), "k", "id", JoinType::kLeftOuter)
                    .Build();
    ASSERT_TRUE(plan.ok());
    QueryResult r = RunPlan(*plan, par);
    ASSERT_EQ(r.num_rows(), 5u);
    EXPECT_EQ(r.columns[3].u32_values,
              (std::vector<uint32_t>{0, 0, 0, 0, 0}));
    EXPECT_EQ(r.columns[4].str_values,
              (std::vector<std::string>{"", "", "", "", ""}));
  }
}

TEST(JoinTypeTest, InnerJoinUnchangedByTypeParameter) {
  JoinFixture f;
  auto implicit = QueryBuilder(f.left).Join(f.right, "k", "id").Build();
  auto explicit_inner = QueryBuilder(f.left)
                            .Join(f.right, "k", "id", JoinType::kInner)
                            .Build();
  ASSERT_TRUE(implicit.ok() && explicit_inner.ok());
  ExpectSameResult(RunPlan(*implicit, 1), RunPlan(*explicit_inner, 1), "inner");
  EXPECT_EQ(RunPlan(*implicit, 1).num_rows(), 5u);  // 1 + 2 + 2 matches
}

TEST(JoinTypeTest, TypedJoinsAtScaleMatchSerial) {
  // Larger-than-chunk probes exercise per-chunk match bookkeeping and the
  // prepared-once inner across all join types.
  constexpr size_t kItems = 30000;
  Table items = *Table::FromRowStore(MakeItems(kItems));
  Table orders = MakeOrders(kItems / 6);  // order ids only half-covered
  for (JoinType t : {JoinType::kInner, JoinType::kLeftOuter, JoinType::kSemi,
                     JoinType::kAnti}) {
    auto build = [&]() {
      auto plan = QueryBuilder(items)
                      .Select(Predicate::RangeU32("qty", 2, 5))
                      .Join(orders, "order", "order_id", t)
                      .Build();
      CCDB_CHECK(plan.ok());
      return *std::move(plan);
    };
    auto plan = build();
    QueryResult expect = RunPlan(plan, 1, /*chunk_rows=*/1024);
    ASSERT_GT(expect.num_rows(), 0u);
    for (size_t par : {2u, 8u}) {
      ExpectSameResult(RunPlan(plan, par, /*chunk_rows=*/1024), expect,
                       std::string("join type ") + JoinTypeName(t) +
                           " parallelism " + std::to_string(par));
    }
  }
}

// --- end-to-end: the new algebra is plannable and deterministic --------------

TEST(RichAlgebraEndToEndTest, ConjunctionOuterJoinMultiKeyAggPipeline) {
  constexpr size_t kItems = 24000;
  Table items = *Table::FromRowStore(MakeItems(kItems));
  Table orders = MakeOrders(kItems / 3 / 2);  // half the order ids match
  Table banned = TableFromU32("bad_order", {1, 5, 9, 13});

  auto build = [&]() {
    auto plan =
        QueryBuilder(items)
            .Select({Predicate::RangeU32("qty", 1, 4),
                     Predicate::RangeF64("price", 12.0, 95.0)})
            .Join(banned, "order", "bad_order", JoinType::kAnti)
            .Join(orders, "order", "order_id", JoinType::kLeftOuter)
            .GroupByAgg({"shipmode", "prio"},
                        {Agg::Sum("qty"), Agg::Min("qty"), Agg::Max("qty"),
                         Agg::Avg("qty"), Agg::Count()})
            .OrderBy("prio")
            .OrderBy("shipmode")
            .Build();
    CCDB_CHECK(plan.ok());
    return *std::move(plan);
  };

  auto plan = build();
  // The plan renders every new node kind.
  std::string s = plan.ToString();
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("anti"), std::string::npos);
  EXPECT_NE(s.find("left_outer"), std::string::npos);
  EXPECT_NE(s.find("min(qty)"), std::string::npos);
  EXPECT_NE(s.find("shipmode, prio;"), std::string::npos);

  Planner planner;
  {
    PlannerOptions opts;
    opts.exec.scan_chunk_rows = 2048;
    Planner p(opts);
    auto physical = p.Lower(plan);
    ASSERT_TRUE(physical.ok());
    auto result = physical->Execute();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(physical->joins().size(), 2u);
    std::string explain = physical->ExplainJoins();
    EXPECT_NE(explain.find("[anti]"), std::string::npos);
    EXPECT_NE(explain.find("[left_outer]"), std::string::npos);
    EXPECT_NE(explain.find("inner clustered 1x"), std::string::npos);
  }

  // (shipmode, prio) is unique per output row and both are ordered, so the
  // whole result is order-pinned: parallel runs must be byte-identical.
  QueryResult expect = RunPlan(build(), 1, /*chunk_rows=*/2048);
  ASSERT_GT(expect.num_rows(), 0u);
  for (size_t par : {2u, 8u}) {
    ExpectSameResult(RunPlan(build(), par, /*chunk_rows=*/2048), expect,
                     "end-to-end parallelism " + std::to_string(par));
  }
}

TEST(RichAlgebraEndToEndTest, HavingStyleSelectOnAggregateOutput) {
  // Selects compose over owned aggregate columns (the gather fallback).
  Table items = *Table::FromRowStore(MakeItems(6000));
  auto plan = QueryBuilder(items)
                  .GroupByAgg({"order"}, {Agg::Min("qty"), Agg::Max("qty")})
                  .Select(Predicate::RangeU32("min", 2, 5))
                  .OrderBy("order")
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  QueryResult expect = RunPlan(*plan, 1);
  for (size_t g = 0; g < expect.num_rows(); ++g) {
    EXPECT_GE(expect.columns[1].u32_values[g], 2u);
  }
  for (size_t par : {2u, 8u}) {
    ExpectSameResult(RunPlan(*plan, par), expect,
                     "having parallelism " + std::to_string(par));
  }
}

// --- empty inputs through every new operator ---------------------------------

TEST(RichAlgebraEmptyInputTest, EmptyTableThroughAllNewOperators) {
  Table empty = *Table::FromRowStore(MakeItems(0));
  Table orders = MakeOrders(5);
  for (size_t par : {1u, 2u, 8u}) {
    auto plan =
        QueryBuilder(empty)
            .Select({Predicate::RangeU32("qty", 0, 100),
                     Predicate::EqStr("shipmode", "MAIL"),
                     Predicate::RangeF64("price", 0.0, 1e9)})
            .Join(orders, "order", "order_id", JoinType::kLeftOuter)
            .GroupByAgg({"shipmode", "prio"},
                        {Agg::Sum("qty"), Agg::Min("qty"), Agg::Avg("qty"),
                         Agg::Count()})
            .OrderBy("prio")
            .Limit(10)
            .Build();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    QueryResult r = RunPlan(*plan, par);
    EXPECT_EQ(r.num_rows(), 0u) << par;
    EXPECT_EQ(r.num_columns(), 6u) << par;

    for (JoinType t : {JoinType::kSemi, JoinType::kAnti}) {
      auto jplan = QueryBuilder(empty)
                       .Join(orders, "order", "order_id", t)
                       .Build();
      ASSERT_TRUE(jplan.ok());
      EXPECT_EQ(RunPlan(*jplan, par).num_rows(), 0u)
          << JoinTypeName(t) << " parallelism " << par;
    }

    // Empty inner for semi/anti: semi keeps nothing, anti keeps everything.
    Table items = *Table::FromRowStore(MakeItems(20));
    QueryBuilder empty_inner_semi(orders);
    empty_inner_semi.Select(Predicate::RangeU32("order_id", 900, 999));
    auto semi = QueryBuilder(items)
                    .Join(std::move(empty_inner_semi), "order", "order_id",
                          JoinType::kSemi)
                    .Build();
    ASSERT_TRUE(semi.ok());
    EXPECT_EQ(RunPlan(*semi, par).num_rows(), 0u) << par;
    QueryBuilder empty_inner_anti(orders);
    empty_inner_anti.Select(Predicate::RangeU32("order_id", 900, 999));
    auto anti = QueryBuilder(items)
                    .Join(std::move(empty_inner_anti), "order", "order_id",
                          JoinType::kAnti)
                    .Build();
    ASSERT_TRUE(anti.ok());
    EXPECT_EQ(RunPlan(*anti, par).num_rows(), 20u) << par;
  }
}

}  // namespace
}  // namespace ccdb
