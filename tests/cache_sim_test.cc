// CacheSim unit tests: geometry, LRU replacement, and exact miss counts on
// the canonical access patterns (sequential, strided, cyclic) that the
// paper's cost models reason about.
#include <gtest/gtest.h>

#include "mem/cache_sim.h"

namespace ccdb {
namespace {

CacheGeometry SmallDirect() {
  // 1 KB direct-mapped, 64 B lines: 16 sets.
  return {1024, 64, 1};
}

CacheGeometry SmallTwoWay() {
  // 1 KB 2-way, 64 B lines: 8 sets of 2.
  return {1024, 64, 2};
}

CacheGeometry SmallFull() {
  // 1 KB fully associative, 64 B lines: 16 ways.
  return {1024, 64, 0};
}

TEST(CacheGeometryTest, DerivedQuantities) {
  CacheGeometry g{32 * 1024, 32, 2};
  EXPECT_EQ(g.lines(), 1024u);
  EXPECT_EQ(g.sets(), 512u);
  CacheGeometry full{4096, 64, 0};
  EXPECT_EQ(full.lines(), 64u);
  EXPECT_EQ(full.sets(), 1u);
}

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim c(SmallDirect());
  EXPECT_FALSE(c.Access(0));
  EXPECT_TRUE(c.Access(0));
  EXPECT_TRUE(c.Access(63));   // same line
  EXPECT_FALSE(c.Access(64));  // next line
  EXPECT_EQ(c.accesses(), 4u);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheSimTest, SequentialScanMissesOncePerLine) {
  CacheSim c(SmallDirect());
  constexpr uint64_t kBytes = 8192;
  for (uint64_t a = 0; a < kBytes; ++a) c.Access(a);
  EXPECT_EQ(c.misses(), kBytes / 64);
  EXPECT_EQ(c.accesses(), kBytes);
}

TEST(CacheSimTest, StrideAtLineSizeMissesEveryAccess) {
  CacheSim c(SmallDirect());
  for (uint64_t i = 0; i < 512; ++i) c.Access(i * 64);
  EXPECT_EQ(c.misses(), 512u);
}

TEST(CacheSimTest, StrideBelowLineSizeMissesFractionally) {
  CacheSim c(SmallDirect());
  // Stride 16 over 64-byte lines: one miss per 4 accesses.
  for (uint64_t i = 0; i < 1024; ++i) c.Access(i * 16);
  EXPECT_EQ(c.misses(), 1024u / 4);
}

TEST(CacheSimTest, DirectMappedConflict) {
  CacheSim c(SmallDirect());
  // Two lines exactly capacity apart share a set: always evict each other.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(c.Access(0));
    EXPECT_FALSE(c.Access(1024));
  }
}

TEST(CacheSimTest, TwoWayHoldsTwoConflictingLines) {
  CacheSim c(SmallTwoWay());
  EXPECT_FALSE(c.Access(0));
  EXPECT_FALSE(c.Access(1024));  // same set, second way
  EXPECT_TRUE(c.Access(0));
  EXPECT_TRUE(c.Access(1024));
  // A third conflicting line evicts the LRU (address 0).
  EXPECT_FALSE(c.Access(2048));
  EXPECT_FALSE(c.Access(0));
  // 1024 was more recently used than 2048's victim... verify LRU precisely:
  // after the miss on 0, the set held {2048, 0}; 1024 must miss.
  EXPECT_FALSE(c.Access(1024));
}

TEST(CacheSimTest, LruEvictionOrderFullyAssociative) {
  CacheSim c(SmallFull());
  // Fill all 16 ways.
  for (uint64_t i = 0; i < 16; ++i) EXPECT_FALSE(c.Access(i * 64));
  // Touch line 0 to make it MRU.
  EXPECT_TRUE(c.Access(0));
  // Insert a 17th line: LRU is line 1 (address 64).
  EXPECT_FALSE(c.Access(16 * 64));
  EXPECT_TRUE(c.Access(0));        // still resident
  EXPECT_FALSE(c.Access(64));      // evicted
}

TEST(CacheSimTest, WorkingSetWithinCapacityHitsOnSecondPass) {
  for (const auto& g : {SmallDirect(), SmallTwoWay(), SmallFull()}) {
    CacheSim c(g);
    for (uint64_t a = 0; a < 1024; a += 64) c.Access(a);
    c.ResetCounters();
    for (uint64_t a = 0; a < 1024; a += 64) c.Access(a);
    EXPECT_EQ(c.misses(), 0u) << "assoc=" << g.associativity;
  }
}

TEST(CacheSimTest, CyclicScanBeyondCapacityAlwaysMissesUnderLru) {
  // Classic LRU pathology: cycling over capacity + 1 line.
  CacheSim c(SmallFull());
  constexpr int kLines = 17;  // capacity is 16 lines
  for (int lap = 0; lap < 5; ++lap) {
    for (uint64_t i = 0; i < kLines; ++i) c.Access(i * 64);
  }
  EXPECT_EQ(c.misses(), 5u * kLines);
}

TEST(CacheSimTest, ContainsHasNoSideEffects) {
  CacheSim c(SmallDirect());
  EXPECT_FALSE(c.Contains(0));
  c.Access(0);
  uint64_t misses = c.misses();
  uint64_t accesses = c.accesses();
  EXPECT_TRUE(c.Contains(0));
  EXPECT_FALSE(c.Contains(4096));
  EXPECT_EQ(c.misses(), misses);
  EXPECT_EQ(c.accesses(), accesses);
}

TEST(CacheSimTest, FlushDropsLinesKeepsCounters) {
  CacheSim c(SmallDirect());
  c.Access(0);
  c.Flush();
  EXPECT_EQ(c.accesses(), 1u);
  EXPECT_FALSE(c.Contains(0));
  EXPECT_FALSE(c.Access(0));  // miss again after flush
}

TEST(CacheSimTest, ResetCountersKeepsLines) {
  CacheSim c(SmallDirect());
  c.Access(0);
  c.ResetCounters();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.Access(0));  // line survived
}

TEST(CacheSimTest, Origin2000L1Geometry) {
  // The paper's L1: 1024 lines of 32 bytes (§3.4.1).
  CacheSim c(MachineProfile::Origin2000().l1);
  EXPECT_EQ(c.geometry().lines(), 1024u);
  for (uint64_t a = 0; a < 32 * 1024; a += 32) c.Access(a);
  EXPECT_EQ(c.misses(), 1024u);
  c.ResetCounters();
  for (uint64_t a = 0; a < 32 * 1024; a += 32) c.Access(a);
  EXPECT_EQ(c.misses(), 0u);  // 32 KB working set fits
}

}  // namespace
}  // namespace ccdb
