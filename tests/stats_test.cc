// Statistics subsystem + cardinality estimator + statistics-driven
// planning: column stats (min/max, distinct sketches, lazy caching with
// invalidation on append), estimator edge cases (empty tables,
// single-value columns, all-distinct keys, correlated multi-key groups,
// join-key overlap), estimate-vs-actual bounds on real plans, join-chain
// reordering (visible in ExplainJoins, byte-identical at parallelism
// {1,2,8}), and the whole-plan ExplainCosts report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "exec/plan.h"
#include "exec/table.h"
#include "model/estimator.h"
#include "model/planner.h"
#include "model/stats.h"
#include "util/rng.h"

namespace ccdb {
namespace {

Table MakeU32Table(const char* col, const std::vector<uint32_t>& values) {
  auto rs = RowStore::Make({{col, FieldType::kU32}}, values.size() + 1);
  CCDB_CHECK(rs.ok());
  for (uint32_t v : values) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, v);
  }
  return *Table::FromRowStore(*rs);
}

QueryResult RunPlan(const LogicalPlan& plan, size_t parallelism,
                    bool reorder = true) {
  PlannerOptions opts;
  opts.exec.parallelism = parallelism;
  opts.exec.scan_chunk_rows = 4096;
  opts.reorder_joins = reorder;
  auto r = Execute(plan, opts);
  CCDB_CHECK(r.ok());
  return *std::move(r);
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.columns[c].u32_values, b.columns[c].u32_values) << what;
    EXPECT_EQ(a.columns[c].i64_values, b.columns[c].i64_values) << what;
    EXPECT_EQ(a.columns[c].f64_values, b.columns[c].f64_values) << what;
    EXPECT_EQ(a.columns[c].str_values, b.columns[c].str_values) << what;
  }
}

// --- DistinctCounter ---------------------------------------------------------

TEST(DistinctCounterTest, ExactBelowThreshold) {
  DistinctCounter dc;
  for (uint64_t i = 0; i < 1000; ++i) {
    dc.Add(DistinctCounter::Mix64(i % 100));
  }
  EXPECT_TRUE(dc.exact());
  EXPECT_EQ(dc.Estimate(), 100u);
}

TEST(DistinctCounterTest, SketchTracksLargeCardinalities) {
  DistinctCounter dc;
  const uint64_t kDistinct = 200000;
  for (uint64_t i = 0; i < kDistinct; ++i) {
    dc.Add(DistinctCounter::Mix64(i));
    dc.Add(DistinctCounter::Mix64(i));  // duplicates must not count
  }
  EXPECT_FALSE(dc.exact());
  double est = static_cast<double>(dc.Estimate());
  // 256 registers: ~6.5% standard error; 25% is a very safe CI bound.
  EXPECT_GT(est, kDistinct * 0.75);
  EXPECT_LT(est, kDistinct * 1.25);
}

// --- ColumnStats -------------------------------------------------------------

TEST(ColumnStatsTest, EmptyTable) {
  Table t = MakeU32Table("v", {});
  auto s = t.stats("v");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->row_count, 0u);
  EXPECT_EQ(s->distinct, 0u);
  EXPECT_FALSE(s->has_range);
}

TEST(ColumnStatsTest, SingleValueColumn) {
  Table t = MakeU32Table("v", std::vector<uint32_t>(500, 42));
  auto s = t.stats("v");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->row_count, 500u);
  EXPECT_EQ(s->distinct, 1u);
  EXPECT_TRUE(s->distinct_exact);
  EXPECT_TRUE(s->has_range);
  EXPECT_EQ(s->min, 42.0);
  EXPECT_EQ(s->max, 42.0);
}

TEST(ColumnStatsTest, RangeAndDistinct) {
  std::vector<uint32_t> v;
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(7 + i % 250);
  Table t = MakeU32Table("v", v);
  auto s = t.stats("v");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->distinct, 250u);
  EXPECT_EQ(s->min, 7.0);
  EXPECT_EQ(s->max, 256.0);
}

TEST(ColumnStatsTest, EncodedStringColumnUsesDictionary) {
  auto rs = RowStore::Make({{"mode", FieldType::kChar10}}, 100);
  ASSERT_TRUE(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK"};
  for (size_t i = 0; i < 99; ++i) {
    size_t r = *rs->AppendRow();
    const char* m = modes[i % 3];
    rs->SetBytes(r, 0, m, strlen(m));
  }
  Table t = *Table::FromRowStore(*rs);
  ASSERT_TRUE(t.is_encoded(0));
  auto s = t.stats("mode");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->encoded);
  EXPECT_TRUE(s->distinct_exact);
  EXPECT_EQ(s->distinct, 3u);  // dictionary size
  EXPECT_TRUE(s->has_range);   // over the 1-byte codes
  EXPECT_EQ(s->min, 0.0);
  EXPECT_EQ(s->max, 2.0);
}

TEST(ColumnStatsTest, CacheInvalidatedOnAppend) {
  Table t = MakeU32Table("v", {1, 2, 3});
  auto before = t.stats("v");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->row_count, 3u);
  EXPECT_EQ(before->max, 3.0);

  auto extra = RowStore::Make({{"v", FieldType::kU32}}, 2);
  ASSERT_TRUE(extra.ok());
  for (uint32_t v : {90u, 91u}) {
    size_t r = *extra->AppendRow();
    extra->SetU32(r, 0, v);
  }
  ASSERT_TRUE(t.AppendRows(*extra).ok());
  EXPECT_EQ(t.num_rows(), 5u);
  auto after = t.stats("v");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->row_count, 5u);
  EXPECT_EQ(after->distinct, 5u);
  EXPECT_EQ(after->max, 91.0);
}

TEST(ColumnStatsTest, AppendRejectsSchemaMismatch) {
  Table t = MakeU32Table("v", {1});
  auto wrong = RowStore::Make({{"other", FieldType::kU32}}, 1);
  ASSERT_TRUE(wrong.ok());
  EXPECT_EQ(t.AppendRows(*wrong).code(), StatusCode::kInvalidArgument);
}

// --- estimator: selectivities ------------------------------------------------

TEST(EstimatorTest, EmptyTableEstimatesZeroEverywhere) {
  Table t = MakeU32Table("v", {});
  auto plan = QueryBuilder(t).Filter(Col("v") == 1u).Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(EstimateNodeRows(plan->root()), 0u);
}

TEST(EstimatorTest, SingleValueColumnSelectivity) {
  Table t = MakeU32Table("v", std::vector<uint32_t>(400, 42));
  ColumnSourceMap src = {{"v", {&t, 0}}};
  // Equality on the only value: everything qualifies.
  EXPECT_DOUBLE_EQ(EstimateExprSelectivity(Col("v") == 42u, src), 1.0);
  // Equality outside the [42, 42] range: nothing.
  EXPECT_DOUBLE_EQ(EstimateExprSelectivity(Col("v") == 7u, src), 0.0);
  EXPECT_DOUBLE_EQ(EstimateExprSelectivity(Between(Col("v"), 0u, 10u), src),
                   0.0);
}

TEST(EstimatorTest, UniformRangeSelectivity) {
  std::vector<uint32_t> v(10000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<uint32_t>(i % 1000);
  Table t = MakeU32Table("v", v);
  ColumnSourceMap src = {{"v", {&t, 0}}};
  double sel = EstimateExprSelectivity(Between(Col("v"), 0u, 99u), src);
  EXPECT_GT(sel, 0.05);
  EXPECT_LT(sel, 0.15);
  // Negation complements, conjunction multiplies, disjunction unions.
  double neg = EstimateExprSelectivity(!Between(Col("v"), 0u, 99u), src);
  EXPECT_NEAR(sel + neg, 1.0, 1e-9);
  double conj = EstimateExprSelectivity(
      Between(Col("v"), 0u, 99u) && Between(Col("v"), 0u, 499u), src);
  EXPECT_LT(conj, sel + 1e-12);
}

// --- estimator: joins --------------------------------------------------------

TEST(EstimatorTest, ForeignKeyJoinEstimatesProbeCardinality) {
  Rng rng(11);
  std::vector<uint32_t> fk(50000);
  for (auto& v : fk) v = static_cast<uint32_t>(rng.NextBelow(1000));
  Table fact = MakeU32Table("fk", fk);
  std::vector<uint32_t> ids(1000);
  for (uint32_t i = 0; i < 1000; ++i) ids[i] = i;
  Table dim = MakeU32Table("id", ids);

  uint64_t est = EstimateJoinRows(fact.num_rows(), *fact.stats("fk"),
                                  dim.num_rows(), *dim.stats("id"),
                                  JoinType::kInner);
  EXPECT_GT(est, 25000u);
  EXPECT_LT(est, 100000u);
}

TEST(EstimatorTest, DisjointKeyRangesEstimateZero) {
  std::vector<uint32_t> lo(100), hi(100);
  for (uint32_t i = 0; i < 100; ++i) {
    lo[i] = i;           // [0, 99]
    hi[i] = 5000 + i;    // [5000, 5099]
  }
  Table l = MakeU32Table("a", lo);
  Table r = MakeU32Table("b", hi);
  EXPECT_EQ(EstimateJoinRows(l.num_rows(), *l.stats("a"), r.num_rows(),
                             *r.stats("b"), JoinType::kInner),
            0u);
  // Anti join of disjoint keys keeps every probe row.
  EXPECT_EQ(EstimateJoinRows(l.num_rows(), *l.stats("a"), r.num_rows(),
                             *r.stats("b"), JoinType::kAnti),
            100u);
}

// --- estimator: grouped cardinalities ---------------------------------------

TEST(EstimatorTest, AllDistinctKeysEstimateRowCount) {
  // Below the exact-counting threshold the estimate is exact (== rows).
  std::vector<uint32_t> v(3000);
  for (uint32_t i = 0; i < 3000; ++i) v[i] = i;
  Table t = MakeU32Table("id", v);
  std::vector<std::optional<ColumnStats>> keys = {*t.stats("id")};
  EXPECT_EQ(EstimateGroupCount(t.num_rows(), keys), 3000u);

  // Past the threshold the sketch takes over: still capped at the row
  // count, and within the sketch's error band of it.
  std::vector<uint32_t> big(50000);
  for (uint32_t i = 0; i < 50000; ++i) big[i] = i;
  Table bt = MakeU32Table("id", big);
  std::vector<std::optional<ColumnStats>> bkeys = {*bt.stats("id")};
  uint64_t est = EstimateGroupCount(bt.num_rows(), bkeys);
  EXPECT_LE(est, 50000u);
  EXPECT_GE(est, 37500u);  // sketch within 25%
}

TEST(EstimatorTest, CorrelatedMultiKeyGroupsAreDamped) {
  // Two perfectly correlated keys (b == a): the true group count is
  // |a| = 1000; a naive product says 1000^2 = 1M. The correlation cap
  // (exponential backoff) must keep the estimate far below the product
  // and within the row bound.
  const size_t kRows = 100000;
  auto rs = RowStore::Make({{"a", FieldType::kU32}, {"b", FieldType::kU32}},
                           kRows);
  ASSERT_TRUE(rs.ok());
  Rng rng(5);
  for (size_t i = 0; i < kRows; ++i) {
    size_t r = *rs->AppendRow();
    uint32_t v = static_cast<uint32_t>(rng.NextBelow(1000));
    rs->SetU32(r, 0, v);
    rs->SetU32(r, 1, v);
  }
  Table t = *Table::FromRowStore(*rs);
  std::vector<std::optional<ColumnStats>> keys = {*t.stats("a"),
                                                  *t.stats("b")};
  uint64_t est = EstimateGroupCount(kRows, keys);
  EXPECT_LE(est, kRows);
  EXPECT_LT(est, 100000u);  // far below the 1M naive product
  EXPECT_GE(est, 1000u);    // and no lower than the strongest single key
}

// --- estimate-vs-actual bounds on executed plans -----------------------------

TEST(EstimatorTest, PlanEstimatesWithinBoundsOfActuals) {
  Rng rng(17);
  const size_t kRows = 60000;
  auto rs = RowStore::Make(
      {{"g", FieldType::kU32}, {"v", FieldType::kU32}}, kRows);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < kRows; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(rng.NextBelow(64)));
    rs->SetU32(r, 1, static_cast<uint32_t>(rng.NextBelow(1000)));
  }
  Table t = *Table::FromRowStore(*rs);
  auto build = [&]() {
    auto p = QueryBuilder(t)
                 .Filter(Between(Col("v"), 0u, 249u))
                 .GroupByAgg({"g"}, {Agg::Sum("v"), Agg::Count()})
                 .Build();
    CCDB_CHECK(p.ok());
    return *std::move(p);
  };
  Planner planner;
  auto physical = planner.Lower(build());
  ASSERT_TRUE(physical.ok());
  auto result = physical->Execute();
  ASSERT_TRUE(result.ok());

  // Find the Select and GroupByAgg records and bound estimate vs actual.
  bool saw_select = false, saw_group = false;
  for (const OpCostInfo& op : physical->costs()) {
    EXPECT_GT(op.label.size(), 0u);
    if (op.label.rfind("Select", 0) == 0) {
      saw_select = true;
      // Uniform data: the range estimate must land within 2x of actual.
      EXPECT_GT(op.estimated_rows, op.actual_rows / 2);
      EXPECT_LT(op.estimated_rows, op.actual_rows * 2);
      EXPECT_GT(op.predicted_ns, 0.0);
      EXPECT_GT(op.measured_inclusive_ns, 0.0);
      EXPECT_EQ(op.actual_rows, result->num_rows() == 0
                                    ? op.actual_rows
                                    : op.actual_rows);  // recorded
    }
    if (op.label.rfind("GroupByAgg", 0) == 0) {
      saw_group = true;
      EXPECT_EQ(op.actual_rows, result->num_rows());
      // 64 groups, millions of rows: estimate must be within 4x.
      EXPECT_GE(op.estimated_rows, op.actual_rows / 4);
      EXPECT_LE(op.estimated_rows, op.actual_rows * 4);
    }
  }
  EXPECT_TRUE(saw_select);
  EXPECT_TRUE(saw_group);
}

// --- join-chain reordering ---------------------------------------------------

struct ReorderFixture {
  Table fact, big, small;

  static ReorderFixture Make(size_t n_fact, size_t n_big, size_t n_small) {
    ReorderFixture f;
    Rng rng(23);
    auto frs = RowStore::Make(
        {{"bk", FieldType::kU32}, {"sk", FieldType::kU32},
         {"v", FieldType::kU32}},
        n_fact);
    CCDB_CHECK(frs.ok());
    for (size_t i = 0; i < n_fact; ++i) {
      size_t r = *frs->AppendRow();
      frs->SetU32(r, 0, static_cast<uint32_t>(rng.NextBelow(n_big)));
      // sk mostly misses the small dimension: the small join is selective.
      frs->SetU32(r, 1, static_cast<uint32_t>(rng.NextBelow(n_small * 20)));
      frs->SetU32(r, 2, static_cast<uint32_t>(rng.NextBelow(100)));
    }
    f.fact = *Table::FromRowStore(*frs);
    auto dim = [](size_t n, const char* key) {
      auto rs = RowStore::Make({{key, FieldType::kU32}}, n);
      CCDB_CHECK(rs.ok());
      for (size_t i = 0; i < n; ++i) {
        size_t r = *rs->AppendRow();
        rs->SetU32(r, 0, static_cast<uint32_t>(i));
      }
      return *Table::FromRowStore(*rs);
    };
    f.big = dim(n_big, "bid");
    f.small = dim(n_small, "sid");
    return f;
  }

  /// The suboptimal written order: the big, non-selective inner first.
  LogicalPlan BuildSuboptimal() const {
    auto p = QueryBuilder(fact)
                 .Join(big, "bk", "bid")
                 .Join(small, "sk", "sid")
                 .GroupBySum("v", "v")
                 .OrderBy("v")
                 .Build();
    CCDB_CHECK(p.ok());
    return *std::move(p);
  }
};

TEST(JoinReorderTest, SelectiveJoinMovesFirst) {
  ReorderFixture f = ReorderFixture::Make(60000, 30000, 500);
  Planner planner;
  auto physical = planner.Lower(f.BuildSuboptimal());
  ASSERT_TRUE(physical.ok());
  ASSERT_TRUE(physical->Execute().ok());

  ASSERT_EQ(physical->joins().size(), 2u);
  // joins() is in execution order: the selective small join must run first.
  EXPECT_EQ(physical->joins()[0].right_key, "sid");
  EXPECT_TRUE(physical->joins()[0].reordered);
  EXPECT_EQ(physical->joins()[1].right_key, "bid");
  EXPECT_TRUE(physical->joins()[1].reordered);
  // The big join's probe side shrank to the small join's output.
  EXPECT_LT(physical->joins()[1].estimated_probe_cardinality,
            f.fact.num_rows() / 2);
  std::string explain = physical->ExplainJoins();
  EXPECT_NE(explain.find("(reordered)"), std::string::npos);
  EXPECT_NE(explain.find("est C="), std::string::npos);
}

TEST(JoinReorderTest, ReorderingPreservesResults) {
  ReorderFixture f = ReorderFixture::Make(30000, 10000, 400);
  // OrderBy("v") + 100-value group domain pins the output order, so the
  // reordered plan must reproduce the unreordered results exactly, and
  // stay byte-identical across parallelism.
  QueryResult unreordered = RunPlan(f.BuildSuboptimal(), 1, false);
  QueryResult reordered = RunPlan(f.BuildSuboptimal(), 1, true);
  ASSERT_GT(unreordered.num_rows(), 0u);
  ExpectSameResult(reordered, unreordered, "reorder vs written order");
  for (size_t par : {2u, 8u}) {
    ExpectSameResult(RunPlan(f.BuildSuboptimal(), par, true), reordered,
                     "parallelism " + std::to_string(par));
  }
}

TEST(JoinReorderTest, DisabledByOption) {
  ReorderFixture f = ReorderFixture::Make(20000, 10000, 300);
  PlannerOptions opts;
  opts.reorder_joins = false;
  Planner planner(opts);
  auto physical = planner.Lower(f.BuildSuboptimal());
  ASSERT_TRUE(physical.ok());
  ASSERT_TRUE(physical->Execute().ok());
  ASSERT_EQ(physical->joins().size(), 2u);
  EXPECT_EQ(physical->joins()[0].right_key, "bid");  // written order
  EXPECT_FALSE(physical->joins()[0].reordered);
}

TEST(JoinReorderTest, NonBaseKeyPreventsReorder) {
  // The second join's probe key lives on the first join's inner relation,
  // so the chain does not commute — the planner must keep the written
  // order.
  const size_t kN = 2000;
  std::vector<uint32_t> ids(kN);
  for (uint32_t i = 0; i < kN; ++i) ids[i] = i;
  Table fact = MakeU32Table("fk", ids);
  auto mid_rs = RowStore::Make(
      {{"mid_id", FieldType::kU32}, {"other", FieldType::kU32}}, kN);
  ASSERT_TRUE(mid_rs.ok());
  for (uint32_t i = 0; i < kN; ++i) {
    size_t r = *mid_rs->AppendRow();
    mid_rs->SetU32(r, 0, i);
    mid_rs->SetU32(r, 1, i % 10);
  }
  Table mid = *Table::FromRowStore(*mid_rs);
  Table tiny = MakeU32Table("tid", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});

  auto plan = QueryBuilder(fact)
                  .Join(mid, "fk", "mid_id")
                  .Join(tiny, "other", "tid")  // "other" comes from mid!
                  .Build();
  ASSERT_TRUE(plan.ok());
  Planner planner;
  auto physical = planner.Lower(*plan);
  ASSERT_TRUE(physical.ok());
  auto result = physical->Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), kN);
  ASSERT_EQ(physical->joins().size(), 2u);
  EXPECT_EQ(physical->joins()[0].right_key, "mid_id");
  EXPECT_FALSE(physical->joins()[0].reordered);
  EXPECT_FALSE(physical->joins()[1].reordered);
}

// --- ExplainCosts ------------------------------------------------------------

TEST(ExplainCostsTest, ReportsEveryOperatorWithPredictionsAndActuals) {
  ReorderFixture f = ReorderFixture::Make(20000, 5000, 200);
  Planner planner;
  auto physical = planner.Lower(f.BuildSuboptimal());
  ASSERT_TRUE(physical.ok());
  ASSERT_TRUE(physical->Execute().ok());

  // One cost record per logical node: scan x3, join x2, group, order.
  EXPECT_EQ(physical->costs().size(), 7u);
  for (const OpCostInfo& op : physical->costs()) {
    EXPECT_FALSE(op.label.empty());
    EXPECT_GT(op.measured_inclusive_ns, 0.0) << op.label;
  }
  std::string s = physical->ExplainCosts();
  for (const char* expect :
       {"Scan(", "Join(bk = bid", "Join(sk = sid", "GroupByAgg", "OrderBy",
        "pred", "meas", "Mcycles"}) {
    EXPECT_NE(s.find(expect), std::string::npos) << expect << "\n" << s;
  }
}

}  // namespace
}  // namespace ccdb
