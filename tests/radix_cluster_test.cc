// Radix-cluster invariants (§3.3.1): the output is a permutation of the
// input ordered on its radix bits; multi-pass and single-pass clusterings
// produce the identical array; cluster boundaries recovered from radix bits
// partition the relation correctly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/radix_cluster.h"
#include "util/rng.h"

namespace ccdb {
namespace {

std::vector<Bun> RandomRelation(size_t n, uint64_t seed,
                                uint32_t value_range = 0) {
  Rng rng(seed);
  std::vector<Bun> out(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = value_range == 0 ? rng.NextU32()
                                  : static_cast<uint32_t>(rng.NextBelow(value_range));
    out[i] = {static_cast<oid_t>(i), v};
  }
  return out;
}

// Accepts both plain and arena-backed (BunVec) vectors.
template <class Vec>
std::vector<Bun> SortedCopy(const Vec& in) {
  std::vector<Bun> v(in.begin(), in.end());
  std::sort(v.begin(), v.end(), [](const Bun& a, const Bun& b) {
    return a.tail != b.tail ? a.tail < b.tail : a.head < b.head;
  });
  return v;
}

TEST(RadixClusterOptionsTest, Validation) {
  EXPECT_TRUE((RadixClusterOptions{4, 2, {}}).Validate().ok());
  EXPECT_TRUE((RadixClusterOptions{4, 2, {3, 1}}).Validate().ok());
  EXPECT_FALSE((RadixClusterOptions{-1, 1, {}}).Validate().ok());
  EXPECT_FALSE((RadixClusterOptions{31, 1, {}}).Validate().ok());
  EXPECT_FALSE((RadixClusterOptions{4, 0, {}}).Validate().ok());
  EXPECT_FALSE((RadixClusterOptions{4, 5, {}}).Validate().ok());   // P > B
  EXPECT_FALSE((RadixClusterOptions{0, 2, {}}).Validate().ok());
  EXPECT_FALSE((RadixClusterOptions{4, 2, {2, 1}}).Validate().ok());  // sum
  EXPECT_FALSE((RadixClusterOptions{4, 2, {4, 0}}).Validate().ok());  // zero
  EXPECT_FALSE((RadixClusterOptions{4, 3, {2, 2}}).Validate().ok());  // size
}

TEST(RadixClusterOptionsTest, EffectiveBitsEvenSplit) {
  EXPECT_EQ((RadixClusterOptions{7, 2, {}}).EffectiveBits(),
            (std::vector<int>{4, 3}));
  EXPECT_EQ((RadixClusterOptions{12, 3, {}}).EffectiveBits(),
            (std::vector<int>{4, 4, 4}));
  EXPECT_EQ((RadixClusterOptions{5, 1, {}}).EffectiveBits(),
            (std::vector<int>{5}));
  EXPECT_EQ((RadixClusterOptions{6, 2, {5, 1}}).EffectiveBits(),
            (std::vector<int>{5, 1}));
}

TEST(RadixClusterTest, ZeroBitsCopies) {
  DirectMemory mem;
  auto input = RandomRelation(100, 1);
  auto out = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{0, 1, {}}, mem);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::vector<Bun>(out->tuples.begin(), out->tuples.end()), input);
  EXPECT_EQ(out->bits, 0);
}

TEST(RadixClusterTest, OutputIsPermutationOrderedOnRadix) {
  DirectMemory mem;
  auto input = RandomRelation(5000, 2);
  auto out = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{6, 1, {}}, mem);
  ASSERT_TRUE(out.ok());
  // Permutation: same multiset.
  EXPECT_EQ(SortedCopy(out->tuples), SortedCopy(input));
  // Ordered on the 6 radix bits.
  for (size_t i = 1; i < out->tuples.size(); ++i) {
    EXPECT_LE(out->tuples[i - 1].tail & 63u, out->tuples[i].tail & 63u);
  }
}

TEST(RadixClusterTest, MultiPassEqualsSinglePassExactly) {
  DirectMemory mem;
  auto input = RandomRelation(3000, 3);
  auto one = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{8, 1, {}}, mem);
  ASSERT_TRUE(one.ok());
  for (int passes : {2, 4, 8}) {
    auto multi = RadixCluster(std::span<const Bun>(input),
                              RadixClusterOptions{8, passes, {}}, mem);
    ASSERT_TRUE(multi.ok());
    // MSB-first multi-pass clustering is stable, so the arrays are
    // *identical*, not just equivalent.
    EXPECT_EQ(multi->tuples, one->tuples) << "passes=" << passes;
  }
}

TEST(RadixClusterTest, ExplicitBitSplitsMatchEvenSplit) {
  DirectMemory mem;
  auto input = RandomRelation(2000, 4);
  auto even = RadixCluster(std::span<const Bun>(input),
                           RadixClusterOptions{9, 3, {}}, mem);
  ASSERT_TRUE(even.ok());
  for (auto split : {std::vector<int>{3, 3, 3}, std::vector<int>{5, 2, 2},
                     std::vector<int>{1, 4, 4}, std::vector<int>{7, 1, 1}}) {
    auto got = RadixCluster(std::span<const Bun>(input),
                            RadixClusterOptions{9, 3, split}, mem);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->tuples, even->tuples);
  }
}

TEST(RadixClusterTest, StableWithinCluster) {
  // Tuples with equal radix value keep their input order (counting-scatter
  // clustering is stable).
  DirectMemory mem;
  std::vector<Bun> input;
  for (uint32_t i = 0; i < 64; ++i) input.push_back({i, i % 4});
  auto out = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{2, 1, {}}, mem);
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->tuples.size(); ++i) {
    if (out->tuples[i - 1].tail == out->tuples[i].tail) {
      EXPECT_LT(out->tuples[i - 1].head, out->tuples[i].head);
    }
  }
}

TEST(RadixClusterTest, EmptyInput) {
  DirectMemory mem;
  std::vector<Bun> empty;
  auto out = RadixCluster(std::span<const Bun>(empty),
                          RadixClusterOptions{4, 2, {}}, mem);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->tuples.empty());
}

TEST(RadixClusterTest, SingleTuple) {
  DirectMemory mem;
  std::vector<Bun> one = {{7, 12345}};
  auto out = RadixCluster(std::span<const Bun>(one),
                          RadixClusterOptions{10, 2, {}}, mem);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::vector<Bun>(out->tuples.begin(), out->tuples.end()), one);
}

TEST(RadixClusterTest, InvalidOptionsAreRejected) {
  DirectMemory mem;
  auto input = RandomRelation(10, 5);
  auto bad = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{4, 9, {}}, mem);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RadixClusterTest, MurmurHashClustersByHashBits) {
  DirectMemory mem;
  auto input = RandomRelation(1000, 6, /*value_range=*/50);  // heavy dups
  auto out = RadixCluster<DirectMemory, MurmurHash>(
      std::span<const Bun>(input), RadixClusterOptions{5, 1, {}}, mem);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(SortedCopy(out->tuples), SortedCopy(input));
  for (size_t i = 1; i < out->tuples.size(); ++i) {
    EXPECT_LE(MurmurHash::Hash(out->tuples[i - 1].tail) & 31u,
              MurmurHash::Hash(out->tuples[i].tail) & 31u);
  }
}

TEST(ClusterBoundsTest, PartitionIsExact) {
  DirectMemory mem;
  auto input = RandomRelation(4096, 7);
  auto out = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{4, 2, {}}, mem);
  ASSERT_TRUE(out.ok());
  auto bounds = ClusterBounds(*out);
  ASSERT_EQ(bounds.size(), 17u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), input.size());
  for (size_t c = 0; c < 16; ++c) {
    for (uint64_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      EXPECT_EQ(out->tuples[i].tail & 15u, c);
    }
  }
}

TEST(ClusterBoundsTest, CountsMatchHistogram) {
  DirectMemory mem;
  auto input = RandomRelation(2000, 8, /*value_range=*/256);
  auto out = RadixCluster(std::span<const Bun>(input),
                          RadixClusterOptions{3, 1, {}}, mem);
  ASSERT_TRUE(out.ok());
  auto bounds = ClusterBounds(*out);
  std::map<uint32_t, uint64_t> expect;
  for (const Bun& t : input) ++expect[t.tail & 7u];
  for (uint32_t c = 0; c < 8; ++c) {
    EXPECT_EQ(bounds[c + 1] - bounds[c], expect[c]) << "cluster " << c;
  }
}

TEST(MergeClusterPairsTest, VisitsExactlyMatchingClusters) {
  DirectMemory mem;
  // L has radix values {0,1,2}; R has {1,2,3} (bits=2).
  std::vector<Bun> l = {{0, 0}, {1, 4}, {2, 1}, {3, 2}};
  std::vector<Bun> r = {{0, 1}, {1, 5}, {2, 2}, {3, 3}};
  auto cl = RadixCluster(std::span<const Bun>(l),
                         RadixClusterOptions{2, 1, {}}, mem);
  auto cr = RadixCluster(std::span<const Bun>(r),
                         RadixClusterOptions{2, 1, {}}, mem);
  ASSERT_TRUE(cl.ok() && cr.ok());
  std::vector<uint32_t> visited;
  MergeClusterPairs<DirectMemory, IdentityHash>(
      *cl, *cr, mem, [&](size_t llo, size_t lhi, size_t rlo, size_t rhi) {
        EXPECT_LT(llo, lhi);
        EXPECT_LT(rlo, rhi);
        visited.push_back(cl->tuples[llo].tail & 3u);
      });
  EXPECT_EQ(visited, (std::vector<uint32_t>{1, 2}));
}

TEST(MergeClusterPairsTest, ZeroBitsVisitsEverythingOnce) {
  DirectMemory mem;
  auto l = RandomRelation(50, 9);
  auto r = RandomRelation(60, 10);
  auto cl = RadixCluster(std::span<const Bun>(l),
                         RadixClusterOptions{0, 1, {}}, mem);
  auto cr = RadixCluster(std::span<const Bun>(r),
                         RadixClusterOptions{0, 1, {}}, mem);
  ASSERT_TRUE(cl.ok() && cr.ok());
  int calls = 0;
  MergeClusterPairs<DirectMemory, IdentityHash>(
      *cl, *cr, mem, [&](size_t llo, size_t lhi, size_t rlo, size_t rhi) {
        ++calls;
        EXPECT_EQ(lhi - llo, 50u);
        EXPECT_EQ(rhi - rlo, 60u);
      });
  EXPECT_EQ(calls, 1);
}

// Property sweep: permutation + ordering + bounds hold across a grid of
// (cardinality, bits, passes).
class RadixClusterSweep
    : public ::testing::TestWithParam<std::tuple<size_t, int, int>> {};

TEST_P(RadixClusterSweep, Invariants) {
  auto [n, bits, passes] = GetParam();
  if (passes > std::max(bits, 1)) GTEST_SKIP();
  DirectMemory mem;
  auto input = RandomRelation(n, 1000 + n + bits * 31 + passes);
  RadixClusterOptions opt{bits, passes, {}};
  auto out = RadixCluster(std::span<const Bun>(input), opt, mem);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->tuples.size(), input.size());
  EXPECT_EQ(SortedCopy(out->tuples), SortedCopy(input));
  uint32_t mask = LowMask32(bits);
  for (size_t i = 1; i < out->tuples.size(); ++i) {
    ASSERT_LE(out->tuples[i - 1].tail & mask, out->tuples[i].tail & mask);
  }
  auto bounds = ClusterBounds(*out);
  EXPECT_EQ(bounds.back(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RadixClusterSweep,
    ::testing::Combine(::testing::Values<size_t>(0, 1, 63, 1024, 20000),
                       ::testing::Values(0, 1, 3, 6, 11),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ccdb
