// Integration of algorithms with the memory-hierarchy simulator: runs the
// paper's kernels through SimulatedMemory on the Origin2000 profile and
// checks the counted misses against the closed-form expectations of §2 and
// §3.4 — the software stand-in for the paper's R10000 hardware counters.
#include <gtest/gtest.h>

#include "algo/partitioned_hash_join.h"
#include "algo/radix_cluster.h"
#include "algo/radix_join.h"
#include "algo/simple_hash_join.h"
#include "algo/stride_scan.h"
#include "mem/access.h"
#include "model/strategy.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace ccdb {
namespace {

std::vector<Bun> UniqueRelation(size_t n, uint64_t seed, oid_t base = 0) {
  auto values = UniqueU32(n, seed);
  std::vector<Bun> out(n);
  for (size_t i = 0; i < n; ++i)
    out[i] = {static_cast<oid_t>(base + i), values[i]};
  return out;
}

class SimTest : public ::testing::Test {
 protected:
  MachineProfile profile_ = MachineProfile::Origin2000();
};

TEST_F(SimTest, StrideScanMissRatesMatchSection2Model) {
  // The §2 model: ML1(s) = min(s/32, 1), ML2(s) = min(s/128, 1) per
  // iteration. Verify at strides below, at, and above the line sizes.
  constexpr size_t kIters = 4096;
  struct Case {
    size_t stride;
    double ml1, ml2;
  } cases[] = {
      {8, 8.0 / 32, 8.0 / 128},  {32, 1.0, 32.0 / 128},
      {64, 1.0, 0.5},            {128, 1.0, 1.0},
      {256, 1.0, 1.0},
  };
  for (const Case& c : cases) {
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    AlignedBuffer buf(kIters * c.stride, 4096);
    StrideScanSum(buf.data(), buf.size(), c.stride, kIters, mem);
    MemEvents ev = h.events();
    EXPECT_NEAR(static_cast<double>(ev.l1_misses) / kIters, c.ml1, 0.01)
        << "stride " << c.stride;
    EXPECT_NEAR(static_cast<double>(ev.l2_misses) / kIters, c.ml2, 0.01)
        << "stride " << c.stride;
  }
}

TEST_F(SimTest, StrideScanPredictedTimePlateaus) {
  // Predicted stall time (events x latencies) reproduces the Fig. 3 shape:
  // flat-ish below L1 line, plateau above L2 line.
  constexpr size_t kIters = 2048;
  auto stall_at = [&](size_t stride) {
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    AlignedBuffer buf(kIters * stride, 4096);
    StrideScanSum(buf.data(), buf.size(), stride, kIters, mem);
    return h.events().StallNanos(profile_.lat);
  };
  double s1 = stall_at(1), s8 = stall_at(8), s128 = stall_at(128),
         s200 = stall_at(200), s256 = stall_at(256);
  EXPECT_LT(s1, s8);
  EXPECT_LT(s8, s128);
  // Plateau: past the L2 line size time stays flat (±TLB noise).
  EXPECT_NEAR(s200 / s128, 1.0, 0.15);
  EXPECT_NEAR(s256 / s128, 1.0, 0.15);
}

TEST_F(SimTest, ClusterTlbMissesExplodeBeyondTlbEntries) {
  // §3.4.2 via simulation: with Hp clusters > 64 TLB entries, almost every
  // scatter write TLB-misses; the paper's model predicts C*(1 - |TLB|/Hp)
  // extra misses. Use C large enough that each cluster spans pages.
  constexpr size_t kC = 1 << 20;  // 8 MB of BUNs
  auto rel = UniqueRelation(kC, 42);

  auto tlb_misses = [&](int bits, int passes) {
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    auto out = RadixCluster(std::span<const Bun>(rel),
                            RadixClusterOptions{bits, passes, {}}, mem);
    CCDB_CHECK(out.ok());
    return h.events().tlb_misses;
  };

  uint64_t at4 = tlb_misses(4, 1);    // 16 clusters: fits TLB easily
  uint64_t at9 = tlb_misses(9, 1);    // 512 clusters: 8x over TLB
  // Model: extra ~= C * (1 - 64/512) = 0.875 * C.
  EXPECT_GT(at9, kC / 2);
  EXPECT_LT(at9, kC * 3 / 2);
  EXPECT_GT(at9, 10 * at4);

  // Two passes of 4-5 bits avoid the explosion entirely.
  uint64_t two_pass = tlb_misses(9, 2);
  EXPECT_LT(two_pass, at9 / 4);
}

TEST_F(SimTest, OnePassTrashingAtTwelveBits) {
  // 12 bits in one pass: 4096 clusters, far beyond both the 1024 L1 lines
  // and the 64 TLB entries. Every scatter write then misses L1 (~1 extra
  // miss/tuple on top of the sequential sweeps) and almost every write
  // misses the TLB; two passes of 6 bits avoid both, at the price of one
  // extra pair of sequential sweeps. The *stall time* verdict is what
  // Fig. 9 plots: one pass loses badly.
  constexpr size_t kC = 1 << 19;
  auto rel = UniqueRelation(kC, 43);
  auto events = [&](int bits, int passes) {
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    auto out = RadixCluster(std::span<const Bun>(rel),
                            RadixClusterOptions{bits, passes, {}}, mem);
    CCDB_CHECK(out.ok());
    return h.events();
  };
  MemEvents one = events(12, 1);
  MemEvents two = events(12, 2);
  // L1: one pass ~ (2 sweeps)*C/4 + C write misses = 1.5C;
  //     two passes ~ 2 * ((2 sweeps)*C/4 + C/4) = 1.5C plus eviction noise.
  EXPECT_GT(one.l1_misses, kC);
  EXPECT_LT(one.l1_misses, kC * 9 / 4);
  // TLB: the 1-pass explosion (paper: C * (1 - |TLB|/Hp) ~ 0.98C extra).
  EXPECT_GT(one.tlb_misses, kC / 2);
  EXPECT_LT(two.tlb_misses, kC / 8);
  // Total memory stall: one pass substantially worse (Fig. 9's verdict).
  EXPECT_GT(one.StallNanos(profile_.lat), 1.5 * two.StallNanos(profile_.lat));
}

TEST_F(SimTest, MultiPassTradesSequentialSweepsForLocality) {
  // Each pass re-reads and re-writes the relation: the *minimum* miss count
  // grows linearly with P (the model's 2*|Re|_Li term per pass). For small
  // B where one pass is cache-friendly, more passes only add sweeps.
  constexpr size_t kC = 1 << 18;
  auto rel = UniqueRelation(kC, 44);
  auto l2_misses = [&](int passes) {
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    auto out = RadixCluster(std::span<const Bun>(rel),
                            RadixClusterOptions{4, passes, {}}, mem);
    CCDB_CHECK(out.ok());
    return h.events().l2_misses;
  };
  uint64_t one = l2_misses(1);
  uint64_t two = l2_misses(2);
  uint64_t four = l2_misses(4);
  EXPECT_GT(two, one);
  EXPECT_GT(four, two);
  // Roughly linear growth in sweeps (generous tolerance: L2 reuse between
  // passes and randomized frame placement add noise).
  EXPECT_NEAR(static_cast<double>(four) / one, 4.0, 2.0);
}

TEST_F(SimTest, SimpleHashJoinTrashesCachesAtScale) {
  // Inner + hash table >> L2: most probes cause L2 misses (§3.2's
  // "performance problem ... due to the random access pattern").
  constexpr size_t kC = 1 << 19;  // 4 MB BUNs + table: beyond 4 MB L2
  auto l = UniqueRelation(kC, 45);
  auto values = UniqueU32(kC, 45);  // same values -> hit rate 1
  Rng rng(9);
  Shuffle(values, rng);
  std::vector<Bun> r(kC);
  for (size_t i = 0; i < kC; ++i)
    r[i] = {static_cast<oid_t>(1 << 24 | i), values[i]};

  MemoryHierarchy h(profile_);
  SimulatedMemory mem(&h);
  auto out = SimpleHashJoin(std::span<const Bun>(l), std::span<const Bun>(r),
                            mem);
  EXPECT_EQ(out.size(), kC);
  MemEvents ev = h.events();
  // At least one L1 miss per probe on average (chain walks + tuple loads).
  EXPECT_GT(ev.l1_misses, kC);
  EXPECT_GT(ev.tlb_misses, kC / 4);
}

TEST_F(SimTest, PartitionedHashJoinRemovesTheTrashing) {
  // The flagship claim (§3.3/Fig. 11-13): clustering first makes the join
  // phase cache-friendly. Compare join-phase misses of simple hash vs
  // phash with clusters sized for L1.
  constexpr size_t kC = 1 << 18;
  auto values = UniqueU32(kC, 46);
  std::vector<Bun> l(kC), r(kC);
  for (size_t i = 0; i < kC; ++i) l[i] = {static_cast<oid_t>(i), values[i]};
  Rng rng(10);
  Shuffle(values, rng);
  for (size_t i = 0; i < kC; ++i)
    r[i] = {static_cast<oid_t>(500000 + i), values[i]};

  // Simple hash join misses.
  MemoryHierarchy h_simple(profile_);
  SimulatedMemory mem_simple(&h_simple);
  auto out1 = SimpleHashJoin(std::span<const Bun>(l), std::span<const Bun>(r),
                             mem_simple);
  EXPECT_EQ(out1.size(), kC);

  // Cluster both (uncounted: DirectMemory), then measure the join phase.
  int bits = StrategyBits(JoinStrategy::kPhashL1, kC, profile_);
  DirectMemory direct;
  auto cl = RadixCluster(std::span<const Bun>(l),
                         RadixClusterOptions{bits, 2, {}}, direct);
  auto cr = RadixCluster(std::span<const Bun>(r),
                         RadixClusterOptions{bits, 2, {}}, direct);
  ASSERT_TRUE(cl.ok() && cr.ok());
  MemoryHierarchy h_phash(profile_);
  SimulatedMemory mem_phash(&h_phash);
  auto out2 = PartitionedHashJoinClustered(*cl, *cr, mem_phash);
  EXPECT_EQ(out2.size(), kC);

  MemEvents simple = h_simple.events();
  MemEvents phash = h_phash.events();
  EXPECT_LT(phash.l2_misses, simple.l2_misses / 2);
  EXPECT_LT(phash.tlb_misses, simple.tlb_misses / 2);
}

TEST_F(SimTest, RadixJoinPhaseMissesDropWithMoreBits) {
  // Fig. 10: join-phase L1 misses explode when clusters exceed L1; fine
  // clusterings keep them near the sequential minimum.
  constexpr size_t kC = 1 << 17;
  auto values = UniqueU32(kC, 47);
  std::vector<Bun> l(kC), r(kC);
  for (size_t i = 0; i < kC; ++i) l[i] = {static_cast<oid_t>(i), values[i]};
  Rng rng(11);
  Shuffle(values, rng);
  for (size_t i = 0; i < kC; ++i)
    r[i] = {static_cast<oid_t>(900000 + i), values[i]};

  DirectMemory direct;
  auto misses_at = [&](int bits) {
    auto cl = RadixCluster(std::span<const Bun>(l),
                           RadixClusterOptions{bits, 2, {}}, direct);
    auto cr = RadixCluster(std::span<const Bun>(r),
                           RadixClusterOptions{bits, 2, {}}, direct);
    CCDB_CHECK(cl.ok() && cr.ok());
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    auto out = RadixJoinClustered(*cl, *cr, mem);
    CCDB_CHECK(out.size() == kC);
    return h.events();
  };
  MemEvents coarse = misses_at(8);   // 512 tuples/cluster: 4 KB clusters
  MemEvents fine = misses_at(14);    // 8 tuples/cluster
  EXPECT_LT(fine.l1_misses, coarse.l1_misses);
}

TEST_F(SimTest, EventsScaleLinearlyWithCardinality) {
  // Sanity: doubling C roughly doubles the sequential miss terms of a
  // fixed-B cluster pass.
  auto l2_at = [&](size_t c) {
    auto rel = UniqueRelation(c, 48);
    MemoryHierarchy h(profile_);
    SimulatedMemory mem(&h);
    auto out = RadixCluster(std::span<const Bun>(rel),
                            RadixClusterOptions{4, 1, {}}, mem);
    CCDB_CHECK(out.ok());
    return static_cast<double>(h.events().l2_misses);
  };
  double small = l2_at(1 << 16);
  double big = l2_at(1 << 18);
  // Generous tolerance: the simulator sees real heap addresses, so page
  // alignment of the buffers (ASLR) moves the counts a little run to run.
  EXPECT_GT(big / small, 2.5);
  EXPECT_LT(big / small, 6.0);
}

}  // namespace
}  // namespace ccdb
