// Page-aware arena (mem/arena.h): huge-page grant/fallback behaviour,
// alignment guarantees, stats accounting, threshold routing, and — the
// property the whole adoption rests on — byte-identical query results when
// columns and join scratch move from plain vectors to arena-backed ColVecs,
// at parallelism 1, 2 and 8.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "exec/plan.h"
#include "exec/table.h"
#include "mem/arena.h"
#include "model/planner.h"

namespace ccdb {
namespace {

bool Aligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

/// RAII threshold override so a failing assertion cannot leak a tiny
/// threshold into later tests of the same binary.
class ScopedThreshold {
 public:
  explicit ScopedThreshold(size_t bytes)
      : prev_(arena::SetLargeThresholdBytes(bytes)) {}
  ~ScopedThreshold() { arena::SetLargeThresholdBytes(prev_); }

 private:
  size_t prev_;
};

TEST(ArenaBlockTest, LargeBlocksAreAlignedZeroFilledAndRegistered) {
  const size_t kBytes = 3 << 20;  // 3 MB: forces a 2-huge-page mapping
  void* p = arena::AllocateBlock(kBytes, arena::HugePolicy::kRequest);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(Aligned(p, arena::kCacheLineBytes));
  EXPECT_TRUE(arena::IsLargeBlock(p));
  // Anonymous mappings are zero-filled; the heap fallback memsets.
  const unsigned char* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < kBytes; i += 4096) EXPECT_EQ(b[i], 0u) << i;
  EXPECT_EQ(b[kBytes - 1], 0u);
  arena::FreeBlock(p);
  EXPECT_FALSE(arena::IsLargeBlock(p));
}

TEST(ArenaBlockTest, ConsecutiveBlockStartsAreColored) {
  // Cache-index coloring: consecutive large blocks must not all start at
  // the same offset modulo the page, or power-of-two-strided buffers alias
  // into the same cache sets (seen as a real pathology in the simulator
  // before coloring went in). At least two distinct line offsets among a
  // handful of consecutive allocations.
  std::vector<void*> blocks;
  std::vector<uintptr_t> offsets;
  for (int i = 0; i < 8; ++i) {
    void* p = arena::AllocateBlock(4 << 20, arena::HugePolicy::kDisable);
    blocks.push_back(p);
    offsets.push_back(reinterpret_cast<uintptr_t>(p) %
                      arena::HugePageBytes());
    EXPECT_TRUE(Aligned(p, arena::kCacheLineBytes));
  }
  bool distinct = false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] != offsets[0]) distinct = true;
  }
  EXPECT_TRUE(distinct);
  for (void* p : blocks) arena::FreeBlock(p);
}

TEST(ArenaBlockTest, HugePolicyRequestVsDisable) {
  const size_t kBytes = 8 << 20;
  // kDisable blocks are advised MADV_NOHUGEPAGE: even on THP=always hosts
  // they must report zero huge-backed bytes (this is what keeps the
  // calibrator's TLB probe honest).
  void* base = arena::AllocateBlock(kBytes, arena::HugePolicy::kDisable);
  std::memset(base, 1, kBytes);
  EXPECT_EQ(arena::HugeBackedBytes(base), 0u);
  arena::FreeBlock(base);

  // kRequest: the kernel may or may not grant huge pages, but whatever
  // HugeBackedBytes reports must be sane — a multiple of the huge-page
  // size, no larger than the mapping.
  void* huge = arena::AllocateBlock(kBytes, arena::HugePolicy::kRequest);
  std::memset(huge, 1, kBytes);  // THP backing is decided at fault time
  size_t backed = arena::HugeBackedBytes(huge);
  EXPECT_EQ(backed % arena::HugePageBytes(), 0u);
  EXPECT_LE(backed, kBytes + arena::HugePageBytes());
  if (arena::ThpAvailable()) {
    // Can't assert a grant (memory pressure, defrag settings), only report.
    RecordProperty("huge_backed_bytes", static_cast<int>(backed >> 20));
  } else {
    EXPECT_EQ(backed, 0u);
  }
  arena::FreeBlock(huge);
}

TEST(ArenaAllocTest, SmallAllocationsAreCacheLineAligned) {
  // Every arena start is >= 64 B aligned — the property that lets
  // concurrent partition writers of adjacent buffers never share a line.
  std::vector<void*> ps;
  for (size_t bytes : {1u, 7u, 64u, 100u, 4096u, 100000u}) {
    void* p = arena::Allocate(bytes);
    EXPECT_TRUE(Aligned(p, arena::kCacheLineBytes)) << bytes;
    std::memset(p, 0xab, bytes);  // must be writable end to end
    ps.push_back(p);
  }
  size_t i = 0;
  for (size_t bytes : {1u, 7u, 64u, 100u, 4096u, 100000u}) {
    arena::Deallocate(ps[i++], bytes);
  }
}

TEST(ArenaAllocTest, StatsTrackRoutingAndMappedBytes) {
  arena::ResetStats();
  const size_t kLarge = arena::LargeThresholdBytes() + (1 << 20);
  void* big = arena::Allocate(kLarge);
  void* small = arena::Allocate(1024);
  arena::ArenaStats s = arena::Stats();
  EXPECT_EQ(s.large_allocs, 1u);
  EXPECT_EQ(s.large_bytes, kLarge);
  // Mapped bytes are huge-page rounded (plus any coloring offset).
  EXPECT_GE(s.large_mapped_bytes, kLarge);
  EXPECT_EQ(s.large_mapped_bytes % arena::HugePageBytes(), 0u);
  EXPECT_EQ(s.small_allocs, 1u);
  EXPECT_EQ(s.small_bytes, 1024u);
  if (arena::ThpAvailable() && s.fallback_allocs == 0) {
    EXPECT_EQ(s.huge_advised_bytes, s.large_mapped_bytes);
  }
  arena::Deallocate(big, kLarge);
  arena::Deallocate(small, 1024);
}

#if defined(__linux__)
size_t VmSizeBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) return 0;
  unsigned long pages = 0;
  int got = std::fscanf(f, "%lu", &pages);
  std::fclose(f);
  return got == 1 ? pages * arena::BasePageBytes() : 0;
}

TEST(ArenaAllocTest, ColoredLargeBlocksAreFullyUnmappedOnFree) {
  // Regression: Deallocate used to munmap at the *user* pointer instead of
  // the mapping base. Coloring makes the user pointer non-page-aligned for
  // most blocks, so munmap failed (silently, pre-CCDB_CHECK) and every
  // large ColVec free leaked its whole mapping. 64 leaked 4 MB mappings
  // would grow VmSize by >= 256 MB; a correct free path keeps it flat.
  constexpr size_t kLarge = size_t{4} << 20;
  for (int i = 0; i < 4; ++i) {  // warm-up: allocator/registry internals
    arena::Deallocate(arena::Allocate(kLarge), kLarge);
  }
  size_t before = VmSizeBytes();
  ASSERT_GT(before, 0u);
  for (int i = 0; i < 64; ++i) {  // cycles through every coloring slot twice
    void* p = arena::Allocate(kLarge);
    std::memset(p, 1, kLarge);
    arena::Deallocate(p, kLarge);
  }
  size_t after = VmSizeBytes();
  EXPECT_LT(after, before + (size_t{64} << 20));
}
#endif  // __linux__

TEST(ArenaAllocTest, ThresholdChangeBetweenAllocAndFreeIsSafe) {
  // Deallocate routes by registry membership, not by re-applying the
  // current threshold — so blocks survive a threshold change between
  // allocate and free in either direction.
  const size_t kDefault = arena::LargeThresholdBytes();

  // Allocated small (heap path), freed while the threshold says "large".
  void* heap_block = arena::Allocate(256 << 10);
  EXPECT_FALSE(arena::IsLargeBlock(heap_block));
  {
    ScopedThreshold tiny(64 << 10);
    // Allocated large under the tiny threshold...
    void* mapped_block = arena::Allocate(256 << 10);
    EXPECT_TRUE(arena::IsLargeBlock(mapped_block));
    arena::Deallocate(heap_block, 256 << 10);  // small path, by registry
    // ...freed after the threshold went back up.
    arena::SetLargeThresholdBytes(kDefault);
    arena::Deallocate(mapped_block, 256 << 10);  // mmap path, by registry
  }
  EXPECT_EQ(arena::LargeThresholdBytes(), kDefault);
}

TEST(ArenaAllocTest, ColVecGrowsAcrossTheThresholdBoundary) {
  // A ColVec that grows from below to above the threshold exercises
  // allocate-small / reallocate-large / free-both sequencing.
  ScopedThreshold tiny(64 << 10);
  ColVec<uint32_t> v;
  for (uint32_t i = 0; i < (1u << 16); ++i) v.push_back(i);  // 256 KB data
  ASSERT_TRUE(arena::IsLargeBlock(v.data()));
  for (uint32_t i = 0; i < (1u << 16); ++i) ASSERT_EQ(v[i], i);
  ColVec<uint32_t> moved = std::move(v);  // is_always_equal: pointer moves
  EXPECT_EQ(moved.size(), 1u << 16);
  EXPECT_EQ(moved[12345], 12345u);
}

// --- byte-identity of arena-backed execution ---------------------------------

RowStore MakeFact(size_t n) {
  auto rs = RowStore::Make({{"k", FieldType::kU32},
                            {"g", FieldType::kU32},
                            {"v", FieldType::kU32}},
                           n);
  CCDB_CHECK(rs.ok());
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i % (n / 2)));
    rs->SetU32(r, 1, static_cast<uint32_t>(i % 16));
    rs->SetU32(r, 2, static_cast<uint32_t>((i * 2654435761u) % 1000));
  }
  return *std::move(rs);
}

Table MakeDim(size_t n) {
  auto rs = RowStore::Make(
      {{"id", FieldType::kU32}, {"w", FieldType::kU32}}, n);
  CCDB_CHECK(rs.ok());
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i));
    rs->SetU32(r, 1, static_cast<uint32_t>(i % 5));
  }
  return *Table::FromRowStore(*rs);
}

TEST(ArenaExecTest, ArenaBackedQueryIsByteIdenticalAcrossParallelism) {
  constexpr size_t kRows = 60000;
  // Mmap-backed run: a 64 KB threshold drives every column and every
  // radix/join scratch buffer of this query through the mmap path.
  RowStore fact_rows = MakeFact(kRows);
  Table dim = MakeDim(kRows / 2);
  auto run = [&](Table& fact, size_t par) {
    auto plan = QueryBuilder(fact)
                    .Select(Predicate::RangeU32("v", 100, 499))
                    .Join(dim, "k", "id")
                    .Project({"k", "g", "w"})
                    .Build();
    CCDB_CHECK(plan.ok());
    PlannerOptions opts;
    opts.exec.scan_chunk_rows = 8192;
    opts.exec.parallelism = par;
    auto r = Execute(*plan, opts);
    CCDB_CHECK(r.ok());
    return *std::move(r);
  };

  QueryResult baseline;  // heap-path columns, serial
  {
    ScopedThreshold huge(size_t{1} << 40);  // nothing takes the mmap path
    Table fact = *Table::FromRowStore(fact_rows);
    baseline = run(fact, 1);
  }
  ASSERT_GT(baseline.num_rows(), 0u);

  {
    ScopedThreshold tiny(64 << 10);  // everything takes the mmap path
    Table fact = *Table::FromRowStore(fact_rows);
    for (size_t par : {1u, 2u, 8u}) {
      QueryResult got = run(fact, par);
      ASSERT_EQ(got.num_rows(), baseline.num_rows()) << "par " << par;
      ASSERT_EQ(got.num_columns(), baseline.num_columns());
      for (size_t c = 0; c < baseline.num_columns(); ++c) {
        EXPECT_EQ(got.columns[c].u32_values, baseline.columns[c].u32_values)
            << "par " << par << " col " << baseline.columns[c].name;
      }
    }
  }
}

}  // namespace
}  // namespace ccdb
