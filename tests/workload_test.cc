// Workload generators (Zipf) and the prefetching hash-join variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algo/nested_loop_join.h"
#include "algo/simple_hash_join.h"
#include "util/zipf.h"

namespace ccdb {
namespace {

TEST(ZipfTest, RanksStayInRange) {
  ZipfGenerator z(1000, 0.99, 42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Next(), 1000u);
  }
}

TEST(ZipfTest, Deterministic) {
  ZipfGenerator a(500, 0.8, 7), b(500, 0.8, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator z(10, 0.0, 3);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.Next()];
  for (const auto& [rank, n] : counts) {
    EXPECT_NEAR(static_cast<double>(n) / kDraws, 0.1, 0.03) << rank;
  }
}

TEST(ZipfTest, HighThetaConcentratesOnLowRanks) {
  ZipfGenerator z(100000, 0.99, 11);
  constexpr int kDraws = 200000;
  int rank0 = 0, top10 = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t r = z.Next();
    rank0 += r == 0;
    top10 += r < 10;
  }
  double p0 = static_cast<double>(rank0) / kDraws;
  // Theory: P(rank 0) = 1/zeta(100000, 0.99) ~ 1/12.9 ~ 7.8%.
  EXPECT_GT(p0, 0.04);
  EXPECT_LT(p0, 0.15);
  // Top-10 ranks carry ~23% of all draws (sum_{i<=10} i^-.99 / zeta).
  EXPECT_GT(static_cast<double>(top10) / kDraws, 0.15);
  // Versus the uniform share of 1/100000: four orders of magnitude.
  EXPECT_GT(p0, 1000.0 / 100000);
}

TEST(ZipfTest, SkewGrowsWithTheta) {
  auto top_share = [](double theta) {
    ZipfGenerator z(1000, theta, 19);
    int hits = 0;
    for (int i = 0; i < 50000; ++i) hits += z.Next() == 0;
    return static_cast<double>(hits) / 50000;
  };
  EXPECT_LT(top_share(0.0), top_share(0.5));
  EXPECT_LT(top_share(0.5), top_share(0.99));
}

TEST(PrefetchJoinTest, MatchesPlainSimpleHashJoin) {
  Rng rng(21);
  std::vector<Bun> l(2000), r(2500);
  for (size_t i = 0; i < l.size(); ++i) {
    l[i] = {static_cast<oid_t>(i), static_cast<uint32_t>(rng.NextBelow(700))};
  }
  for (size_t i = 0; i < r.size(); ++i) {
    r[i] = {static_cast<oid_t>(5000 + i),
            static_cast<uint32_t>(rng.NextBelow(700))};
  }
  DirectMemory mem;
  auto canon = [](std::vector<Bun> v) {
    std::sort(v.begin(), v.end(), [](const Bun& a, const Bun& b) {
      return a.head != b.head ? a.head < b.head : a.tail < b.tail;
    });
    return v;
  };
  auto expect = canon(SimpleHashJoin(std::span<const Bun>(l),
                                     std::span<const Bun>(r), mem));
  for (size_t distance : {0u, 1u, 4u, 16u, 5000u}) {
    auto got = SimpleHashJoinPrefetch(std::span<const Bun>(l),
                                      std::span<const Bun>(r), distance);
    EXPECT_EQ(canon(got), expect) << "distance=" << distance;
  }
}

TEST(PrefetchJoinTest, EmptyInputs) {
  std::vector<Bun> none, one = {{0, 1}};
  EXPECT_TRUE(SimpleHashJoinPrefetch(none, one, 4).empty());
  EXPECT_TRUE(SimpleHashJoinPrefetch(one, none, 4).empty());
}

TEST(PrefetchJoinTest, StatsFilled) {
  std::vector<Bun> l = {{0, 1}, {1, 2}}, r = {{9, 2}};
  JoinStats stats;
  auto out = SimpleHashJoinPrefetch(l, r, 1, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.result_count, 1u);
}

}  // namespace
}  // namespace ccdb
