// ThreadPool + ParallelFor: FIFO task ordering, shutdown draining,
// exception and Status propagation, nested-call inlining, and the shared
// pool singleton.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace ccdb {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  std::vector<int> order;
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&, i] {
        order.push_back(i);  // single worker: no race
        done.fetch_add(1);
      });
    }
  }  // destructor drains the queue
  ASSERT_EQ(done.load(), 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().size(), 1u);
  EXPECT_EQ(ThreadPool::HardwareThreads(), ThreadPool::Shared().size());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  Status st = ParallelFor(&pool, 8, kN, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroAndOneIterations) {
  ThreadPool pool(2);
  int calls = 0;
  EXPECT_TRUE(ParallelFor(&pool, 4, 0, [&](size_t) {
                ++calls;
                return Status::Ok();
              }).ok());
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(ParallelFor(&pool, 4, 1, [&](size_t) {
                ++calls;  // n == 1 runs inline on the caller
                return Status::Ok();
              }).ok());
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  Status st = ParallelFor(nullptr, 8, 5, [&](size_t i) {
    order.push_back(static_cast<int>(i));
    return Status::Ok();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, PropagatesFirstStatusAndStops) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  Status st = ParallelFor(&pool, 2, 100000, [&](size_t i) {
    ran.fetch_add(1);
    if (i == 3) return Status::InvalidArgument("morsel 3 failed");
    return Status::Ok();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Failure short-circuits: nowhere near all 100k morsels ran.
  EXPECT_LT(ran.load(), 100000);
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status st = ParallelFor(&pool, 2, 64, [&](size_t i) -> Status {
    if (i == 7) throw std::runtime_error("boom");
    return Status::Ok();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
  // The pool survives a throwing body and still runs work.
  std::atomic<int> ran{0};
  EXPECT_TRUE(ParallelFor(&pool, 2, 8, [&](size_t) {
                ran.fetch_add(1);
                return Status::Ok();
              }).ok());
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  Status st = ParallelFor(&pool, 2, 4, [&](size_t) {
    // Nested ParallelFor from (possibly) a worker thread must not re-enter
    // the pool wait — it runs inline and completes.
    return ParallelFor(&pool, 2, 8, [&](size_t) {
      inner_total.fetch_add(1);
      return Status::Ok();
    });
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner_total.load(), 32);
}

}  // namespace
}  // namespace ccdb
