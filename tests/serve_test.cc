// Serving layer: Server admission / deadline / cancellation semantics,
// deterministic weighted-round-robin fairness (asserted on completion
// *order*, which is timing-independent), plan-cache hit / band-invalidation
// semantics, cached-plan execution byte-identical to fresh lowering at
// parallelism {1, 2, 8}, and clean operator shutdown on the cancel path
// (every Open() gets its Close(), checked with a tracker operator and —
// under the ASan CI job — by leak detection).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/table.h"
#include "model/planner.h"
#include "serve/plan_cache.h"
#include "serve/server.h"
#include "util/rng.h"

namespace ccdb {
namespace {

using std::chrono::milliseconds;

Table MakeFactTable(size_t rows, uint32_t key_domain) {
  auto rs = RowStore::Make(
      {{"k", FieldType::kU32}, {"v", FieldType::kU32}}, rows + 1);
  CCDB_CHECK(rs.ok());
  Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, rng.NextU32() % key_domain);
    rs->SetU32(r, 1, rng.NextU32() % 1000);
  }
  return *Table::FromRowStore(*rs);
}

Table MakeDimTable(uint32_t keys) {
  auto rs = RowStore::Make(
      {{"id", FieldType::kU32}, {"w", FieldType::kU32}}, keys + 1);
  CCDB_CHECK(rs.ok());
  for (uint32_t i = 0; i < keys; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, i);
    rs->SetU32(r, 1, i * 3 % 100);
  }
  return *Table::FromRowStore(*rs);
}

/// A cheap point query: selective filter + limit.
LogicalPlan PointPlan(const Table& fact, uint32_t key) {
  auto plan =
      QueryBuilder(fact).Filter(Col("k") == key).Limit(16).Build();
  CCDB_CHECK(plan.ok());
  return *std::move(plan);
}

/// A heavy analytic query: join + group-by + order-by over the whole fact
/// table. OrderBy gives it a canonical output order, so results compare
/// byte-identically across parallelism.
LogicalPlan AnalyticPlan(const Table& fact, const Table& dim) {
  auto plan = QueryBuilder(fact)
                  .Join(dim, "k", "id")
                  .GroupByAgg({"w"}, {Agg::Sum("v"), Agg::Count()})
                  .OrderBy("w")
                  .Build();
  CCDB_CHECK(plan.ok());
  return *std::move(plan);
}

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.columns[c].u32_values, b.columns[c].u32_values) << what;
    EXPECT_EQ(a.columns[c].i64_values, b.columns[c].i64_values) << what;
    EXPECT_EQ(a.columns[c].f64_values, b.columns[c].f64_values) << what;
    EXPECT_EQ(a.columns[c].str_values, b.columns[c].str_values) << what;
  }
}

PlannerOptions TestPlannerOptions(size_t parallelism) {
  PlannerOptions opts;
  opts.exec.parallelism = parallelism;
  opts.exec.scan_chunk_rows = 4096;
  return opts;
}

// --- Server basics -----------------------------------------------------------

TEST(ServerTest, ServesQueriesFromMultipleSessions) {
  Table fact = MakeFactTable(50000, 100);
  Table dim = MakeDimTable(100);
  LogicalPlan analytic = AnalyticPlan(fact, dim);
  QueryResult expected = *Execute(analytic, TestPlannerOptions(1));

  ServerOptions opts;
  opts.max_inflight = 4;
  opts.max_queue = 64;
  opts.planner = TestPlannerOptions(1);
  Server server(opts);

  constexpr int kClients = 4, kPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      QuerySession session(&server);
      for (int q = 0; q < kPerClient; ++q) {
        auto result = session.Run(analytic);
        if (!result.ok() || result->num_rows() != expected.num_rows()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  // Same fingerprint everywhere: after the first few lowerings, pooled
  // plans serve the rest.
  EXPECT_GT(stats.cache.hits, 0u);
}

TEST(ServerTest, AdmissionControlRejectsPastQueueBound) {
  Table fact = MakeFactTable(400000, 1000);
  Table dim = MakeDimTable(1000);
  LogicalPlan analytic = AnalyticPlan(fact, dim);

  ServerOptions opts;
  opts.max_inflight = 1;
  opts.max_queue = 2;
  opts.planner = TestPlannerOptions(1);
  Server server(opts);

  // Occupy the single executor, then fill the queue. The occupying query
  // runs for many milliseconds; the submissions below take microseconds.
  auto running = server.Submit(analytic);
  ASSERT_TRUE(running.ok());
  std::vector<QueryTicket> queued;
  size_t rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto t = server.Submit(analytic);
    if (t.ok()) {
      queued.push_back(*std::move(t));
    } else {
      EXPECT_EQ(t.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // The queue holds 2; at most one more may have slipped in if the first
  // query finished mid-loop. At least 3 of the 6 must have been rejected.
  EXPECT_GE(rejected, 3u);
  EXPECT_GE(server.stats().rejected, 3u);
  for (auto& t : queued) t.Wait();
  running->Wait();
}

TEST(ServerTest, DeadlineExceededReturnsCleanStatus) {
  Table fact = MakeFactTable(800000, 2000);
  Table dim = MakeDimTable(2000);
  LogicalPlan analytic = AnalyticPlan(fact, dim);

  ServerOptions opts;
  opts.max_inflight = 1;
  opts.planner = TestPlannerOptions(1);
  Server server(opts);

  Server::SubmitOptions submit;
  submit.timeout = milliseconds(1);
  auto ticket = server.Submit(analytic, submit);
  ASSERT_TRUE(ticket.ok());
  const QueryOutcome& outcome = ticket->Wait();
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ServerTest, CancelWhileQueuedCompletesWithCancelled) {
  Table fact = MakeFactTable(400000, 1000);
  Table dim = MakeDimTable(1000);
  LogicalPlan analytic = AnalyticPlan(fact, dim);
  LogicalPlan point = PointPlan(fact, 3);

  ServerOptions opts;
  opts.max_inflight = 1;
  opts.max_queue = 8;
  opts.planner = TestPlannerOptions(1);
  Server server(opts);

  auto running = server.Submit(analytic);
  ASSERT_TRUE(running.ok());
  auto victim = server.Submit(point);
  ASSERT_TRUE(victim.ok());
  victim->Cancel();  // still queued behind the analytic
  const QueryOutcome& outcome = victim->Wait();
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  running->Wait();
}

TEST(ServerTest, ShutdownCompletesQueuedWithUnavailable) {
  Table fact = MakeFactTable(400000, 1000);
  Table dim = MakeDimTable(1000);
  LogicalPlan analytic = AnalyticPlan(fact, dim);
  LogicalPlan point = PointPlan(fact, 3);

  std::vector<QueryTicket> tickets;
  {
    ServerOptions opts;
    opts.max_inflight = 1;
    opts.max_queue = 8;
    opts.planner = TestPlannerOptions(1);
    Server server(opts);
    auto running = server.Submit(analytic);
    ASSERT_TRUE(running.ok());
    tickets.push_back(*std::move(running));
    for (int i = 0; i < 3; ++i) {
      auto t = server.Submit(point);
      ASSERT_TRUE(t.ok());
      tickets.push_back(*std::move(t));
    }
  }  // ~Server: queued tickets complete with Unavailable
  for (QueryTicket& t : tickets) {
    const QueryOutcome& o = t.Wait();
    EXPECT_TRUE(o.status.ok() ||
                o.status.code() == StatusCode::kUnavailable)
        << o.status.ToString();
  }
}

// --- fairness: deterministic completion order --------------------------------

// With one executor and a pre-loaded backlog, dispatch order IS completion
// order — no timing involved. Weighted round-robin must interleave the
// point class into an analytic backlog; FIFO must drain in submit order.
TEST(ServerTest, FairDispatchInterleavesClassesFifoDoesNot) {
  Table fact = MakeFactTable(200000, 500);
  Table dim = MakeDimTable(500);
  LogicalPlan analytic = AnalyticPlan(fact, dim);
  LogicalPlan point = PointPlan(fact, 42);

  for (bool fair : {true, false}) {
    ServerOptions opts;
    opts.max_inflight = 1;
    opts.max_queue = 64;
    opts.fair = fair;
    opts.planner = TestPlannerOptions(1);
    Server server(opts);

    Server::SubmitOptions a_opts, p_opts;
    a_opts.query_class = "analytic";
    p_opts.query_class = "point";

    // Occupy the executor so everything below queues up first.
    auto blocker = server.Submit(analytic, a_opts);
    ASSERT_TRUE(blocker.ok());
    std::vector<QueryTicket> analytics, points;
    for (int i = 0; i < 6; ++i) {
      auto t = server.Submit(analytic, a_opts);
      ASSERT_TRUE(t.ok());
      analytics.push_back(*std::move(t));
    }
    for (int i = 0; i < 2; ++i) {
      auto t = server.Submit(point, p_opts);
      ASSERT_TRUE(t.ok());
      points.push_back(*std::move(t));
    }

    blocker->Wait();
    uint64_t max_point_seq = 0, max_analytic_seq = 0;
    for (QueryTicket& t : points) {
      const QueryOutcome& o = t.Wait();
      ASSERT_TRUE(o.status.ok()) << o.status.ToString();
      max_point_seq = std::max(max_point_seq, o.finish_seq);
    }
    for (QueryTicket& t : analytics) {
      const QueryOutcome& o = t.Wait();
      ASSERT_TRUE(o.status.ok()) << o.status.ToString();
      max_analytic_seq = std::max(max_analytic_seq, o.finish_seq);
    }
    if (fair) {
      // Round-robin alternates the classes: both points are dispatched
      // within the first few slots after the blocker, never behind the
      // whole analytic backlog.
      EXPECT_LE(max_point_seq, 6u) << "fair dispatch starved the points";
      EXPECT_LT(max_point_seq, max_analytic_seq);
    } else {
      // FIFO: the points were submitted last, so they finish last
      // (sequences 8 and 9 of 9).
      EXPECT_EQ(max_point_seq, 9u);
    }
  }
}

// --- plan cache --------------------------------------------------------------

TEST(PlanCacheTest, FingerprintCoversShapeLiteralsAndTables) {
  Table fact = MakeFactTable(10000, 100);
  Table fact2 = MakeFactTable(10000, 100);
  LogicalPlan a1 = PointPlan(fact, 1);
  LogicalPlan a2 = PointPlan(fact, 1);
  LogicalPlan other_literal = PointPlan(fact, 2);
  LogicalPlan other_table = PointPlan(fact2, 1);

  EXPECT_EQ(PlanFingerprint(a1), PlanFingerprint(a2));
  EXPECT_NE(PlanFingerprint(a1), PlanFingerprint(other_literal));
  EXPECT_NE(PlanFingerprint(a1), PlanFingerprint(other_table));
}

TEST(PlanCacheTest, HitWithinBandMissAcrossBandBoundary) {
  // 1000 rows: band covers [512, 1023] — small appends stay inside.
  Table fact = MakeFactTable(1000, 50);
  LogicalPlan plan = PointPlan(fact, 7);
  uint64_t key = PlanFingerprint(plan);

  PlanCache cache;
  Planner planner(TestPlannerOptions(1));
  cache.Release(key, plan, *planner.Lower(plan));

  // In-band append (1000 -> 1010): the cached plan stays valid.
  auto extra = RowStore::Make(
      {{"k", FieldType::kU32}, {"v", FieldType::kU32}}, 8000);
  ASSERT_TRUE(extra.ok());
  for (int i = 0; i < 10; ++i) {
    size_t r = *extra->AppendRow();
    extra->SetU32(r, 0, 7);
    extra->SetU32(r, 1, 1);
  }
  ASSERT_TRUE(fact.AppendRows(*extra).ok());
  auto hit = cache.Acquire(key, plan);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.Release(key, plan, *std::move(hit));

  // Cross-band append (1010 -> 8010): planning decisions are stale.
  auto big = RowStore::Make(
      {{"k", FieldType::kU32}, {"v", FieldType::kU32}}, 8000);
  ASSERT_TRUE(big.ok());
  for (int i = 0; i < 7000; ++i) {
    size_t r = *big->AppendRow();
    big->SetU32(r, 0, static_cast<uint32_t>(i % 50));
    big->SetU32(r, 1, 2);
  }
  ASSERT_TRUE(fact.AppendRows(*big).ok());
  auto miss = cache.Acquire(key, plan);
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // The AppendRows hook (data_version) moved twice along the way.
  EXPECT_EQ(fact.data_version(), 2u);
}

TEST(PlanCacheTest, CachedExecutionByteIdenticalAcrossParallelism) {
  Table fact = MakeFactTable(60000, 200);
  Table dim = MakeDimTable(200);
  LogicalPlan plan = AnalyticPlan(fact, dim);
  uint64_t key = PlanFingerprint(plan);

  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
    Planner planner(TestPlannerOptions(parallelism));
    PlanCache cache;  // one cache per planner configuration (see header)

    auto fresh = planner.Lower(plan);
    ASSERT_TRUE(fresh.ok());
    auto fresh_result = fresh->Execute();
    ASSERT_TRUE(fresh_result.ok());
    cache.Release(key, plan, *std::move(fresh));

    auto cached = cache.Acquire(key, plan);
    ASSERT_TRUE(cached.has_value());
    auto cached_result = cached->Execute();
    ASSERT_TRUE(cached_result.ok());
    ExpectSameResult(*fresh_result, *cached_result,
                     "parallelism " + std::to_string(parallelism));

    // And a third run after another checkin/checkout cycle: reuse must be
    // idempotent, not one-shot.
    cache.Release(key, plan, *std::move(cached));
    auto again = cache.Acquire(key, plan);
    ASSERT_TRUE(again.has_value());
    auto again_result = again->Execute();
    ASSERT_TRUE(again_result.ok());
    ExpectSameResult(*fresh_result, *again_result, "second reuse");
  }
}

TEST(PlanCacheTest, PoolBoundsConcurrentCheckouts) {
  Table fact = MakeFactTable(2000, 50);
  LogicalPlan plan = PointPlan(fact, 3);
  uint64_t key = PlanFingerprint(plan);
  Planner planner(TestPlannerOptions(1));

  PlanCache cache(/*max_entries=*/4, /*max_plans_per_entry=*/1);
  cache.Release(key, plan, *planner.Lower(plan));
  auto first = cache.Acquire(key, plan);
  ASSERT_TRUE(first.has_value());
  // Second session, same query, while the only pooled plan is out: miss.
  auto second = cache.Acquire(key, plan);
  EXPECT_FALSE(second.has_value());
  cache.Release(key, plan, *std::move(first));
  EXPECT_TRUE(cache.Acquire(key, plan).has_value());
}

// --- cancellation closes every operator --------------------------------------

/// Forwards to the wrapped operator while counting lifecycle calls.
class TrackerOp : public Operator {
 public:
  TrackerOp(std::unique_ptr<Operator> child, int* opens, int* closes)
      : child_(std::move(child)), opens_(opens), closes_(closes) {}
  Status Open() override {
    ++*opens_;
    return child_->Open();
  }
  StatusOr<bool> Next(Chunk* out) override { return child_->Next(out); }
  void Close() override {
    ++*closes_;
    child_->Close();
  }

 private:
  std::unique_ptr<Operator> child_;
  int* opens_;
  int* closes_;
};

TEST(CancellationTest, CancelledExecutionClosesEveryOperator) {
  Table fact = MakeFactTable(100000, 100);

  int opens = 0, closes = 0;
  ScheduleContext sched;
  ExecContext ctx;
  ctx.sched = &sched;

  // Scan -> tracker -> Select -> tracker -> OrderBy: the blocking OrderBy
  // drains its child inside one Next() call, where the sched poll aborts.
  auto scan = std::make_unique<ScanOp>(&fact, /*chunk_rows=*/4096);
  auto t1 = std::make_unique<TrackerOp>(std::move(scan), &opens, &closes);
  auto select = std::make_unique<SelectOp>(std::move(t1),
                                           Col("v") >= 10u, &ctx);
  auto t2 = std::make_unique<TrackerOp>(std::move(select), &opens, &closes);
  OrderByOp root(std::move(t2), "v", /*descending=*/false, &ctx);

  ASSERT_TRUE(root.Open().ok());
  sched.cancelled.store(true);
  Chunk out;
  auto next = root.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
  root.Close();  // the PhysicalPlan::Execute error path does exactly this
  EXPECT_EQ(opens, 2);
  EXPECT_EQ(closes, 2);
}

TEST(CancellationTest, PlanIsReusableAfterDeadlineAbort) {
  Table fact = MakeFactTable(120000, 300);
  Table dim = MakeDimTable(300);
  LogicalPlan plan = AnalyticPlan(fact, dim);

  Planner planner(TestPlannerOptions(2));
  auto physical = planner.Lower(plan);
  ASSERT_TRUE(physical.ok());
  QueryResult expected = *physical->Execute();

  // Expired deadline: Execute must fail cleanly with DeadlineExceeded...
  ScheduleContext sched;
  sched.deadline = std::chrono::steady_clock::now() - milliseconds(1);
  physical->BindSchedule(&sched);
  auto aborted = physical->Execute();
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded);

  // ...and the plan must be fully reusable afterwards (operators closed
  // and re-openable — the plan-cache reuse contract).
  physical->BindSchedule(nullptr);
  auto again = physical->Execute();
  ASSERT_TRUE(again.ok());
  ExpectSameResult(expected, *again, "re-execute after abort");
}

TEST(CancellationTest, CancelMidExecutionAbortsAtMorselBoundary) {
  Table fact = MakeFactTable(800000, 2000);
  Table dim = MakeDimTable(2000);
  LogicalPlan plan = AnalyticPlan(fact, dim);

  ServerOptions opts;
  opts.max_inflight = 1;
  opts.planner = TestPlannerOptions(2);
  Server server(opts);
  auto ticket = server.Submit(plan);
  ASSERT_TRUE(ticket.ok());
  // Cancel as soon as (likely) running; whether it lands while queued or
  // mid-execution, the outcome must be a clean Cancelled status.
  std::this_thread::sleep_for(milliseconds(2));
  ticket->Cancel();
  const QueryOutcome& outcome = ticket->Wait();
  EXPECT_TRUE(outcome.status.code() == StatusCode::kCancelled ||
              outcome.status.ok())
      << outcome.status.ToString();
}

}  // namespace
}  // namespace ccdb
