// Unit tests for src/util: Status/StatusOr, bit helpers, RNG workload
// generators, aligned buffers, the table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>

#include "util/aligned.h"
#include "util/bits.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace ccdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bits");
  EXPECT_EQ(s.ToString(), "invalid argument: bad bits");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnimplemented,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(c), "unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  CCDB_ASSIGN_OR_RETURN(int h, Half(x));
  CCDB_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(BitsTest, PowersOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 40));
}

TEST(BitsTest, Log2) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(1024), 10);
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(1024), 10);
  EXPECT_EQ(Log2Ceil(1025), 11);
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(BitsTest, ExtractAndMask) {
  EXPECT_EQ(ExtractBits(0b110101, 0, 3), 0b101u);
  EXPECT_EQ(ExtractBits(0b110101, 3, 3), 0b110u);
  EXPECT_EQ(ExtractBits(0xffffffff, 0, 32), 0xffffffffu);
  EXPECT_EQ(LowMask32(0), 0u);
  EXPECT_EQ(LowMask32(5), 31u);
  EXPECT_EQ(LowMask32(32), 0xffffffffu);
}

TEST(BitsTest, SplitBitsEvenlyLargerSharesFirst) {
  int out[4];
  SplitBitsEvenly(7, 2, out);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 3);
  SplitBitsEvenly(12, 3, out);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(out[2], 4);
  SplitBitsEvenly(13, 4, out);
  EXPECT_EQ(out[0] + out[1] + out[2] + out[3], 13);
  EXPECT_GE(out[0], out[3]);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, UniqueU32ProducesDistinctValues) {
  auto v = UniqueU32(10000, 42);
  EXPECT_EQ(v.size(), 10000u);
  std::set<uint32_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), v.size());
}

TEST(RngTest, UniqueU32SeedsDiffer) {
  EXPECT_NE(UniqueU32(100, 1), UniqueU32(100, 2));
  EXPECT_EQ(UniqueU32(100, 3), UniqueU32(100, 3));
}

TEST(RngTest, ShuffleIsPermutation) {
  std::vector<uint32_t> v(100);
  std::iota(v.begin(), v.end(), 0u);
  auto orig = v;
  Rng rng(9);
  Shuffle(v, rng);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(AlignedBufferTest, AlignmentAndZeroing) {
  AlignedBuffer buf(1000, 4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf.data()[i], 0);
}

TEST(AlignedBufferTest, CacheLineAlignment) {
  AlignedBuffer buf(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
}

TEST(TablePrinterTest, FormatsAlignedColumns) {
  TablePrinter t({"bits", "millisecs"});
  t.AddRow({"4", "12.50"});
  t.AddRow({"20", "3.25"});
  // Print to a memstream-like buffer via tmpfile.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.Print(f);
  std::rewind(f);
  char buf[256];
  std::string all;
  while (std::fgets(buf, sizeof(buf), f)) all += buf;
  std::fclose(f);
  EXPECT_NE(all.find("bits"), std::string::npos);
  EXPECT_NE(all.find("12.50"), std::string::npos);
  EXPECT_NE(all.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FmtHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{12345}), "12345");
  EXPECT_EQ(TablePrinter::Fmt(-7), "-7");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace ccdb
