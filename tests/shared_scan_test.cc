// Shared scans: ExprSubsumes soundness against oracle evaluation (the
// subsumption matrix: Eq⊂Range, In⊂In, Between⊂Range, negated leaves,
// And/Or refinements, f64 open/closed endpoints and NaN, strings, and
// non-subsuming pairs), the cooperative cursor protocol (deterministic
// single-threaded fan-out: chunks driven once, subsumed filters narrowed,
// equivalent filters copied, mid-pass attach catch-up, detach and
// cancel mid-scan, overflow-to-private backpressure, geometry-mismatch
// private attach), and end-to-end byte-identity: K concurrent plans over
// one table produce exactly the independent-execution results at
// parallelism {1, 2, 8}, with and without the serving layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/expr.h"
#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/shared_scan.h"
#include "exec/table.h"
#include "model/planner.h"
#include "serve/server.h"
#include "serve/shared_scan.h"

namespace ccdb {
namespace {

// items(order u32, qty u32, price f64, shipmode char10): qty = 1 + i % 5,
// price = 10 + i % 97 with every 250th price NaN (exercises the IEEE
// semantics subsumption must respect), shipmode cycles MAIL/AIR/TRUCK/SHIP.
Table MakeItems(size_t n) {
  auto rs = RowStore::Make(
      {
          {"order", FieldType::kU32},
          {"qty", FieldType::kU32},
          {"price", FieldType::kF64},
          {"shipmode", FieldType::kChar10},
      },
      n + 1);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP"};
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 3));
    rs->SetU32(r, 1, static_cast<uint32_t>(1 + i % 5));
    rs->SetF64(r, 2,
               i % 250 == 249 ? std::numeric_limits<double>::quiet_NaN()
                              : 10.0 + static_cast<double>(i % 97));
    const char* m = modes[i % 4];
    rs->SetBytes(r, 3, m, strlen(m));
  }
  return *Table::FromRowStore(*rs);
}

Expr N(Expr e) { return NormalizeExpr(std::move(e)); }

/// Ground truth: the filter evaluated over the whole table with the same
/// kernels SelectOp uses.
std::vector<uint32_t> Oracle(const Table& t, const Expr& normalized) {
  Chunk chunk = MakeTableScanChunk(t, 0, t.num_rows());
  auto r = EvalFilterPositions(chunk, normalized, nullptr);
  CCDB_CHECK(r.ok());
  return *std::move(r);
}

bool IsSubset(const std::vector<uint32_t>& small,
              const std::vector<uint32_t>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

// --- ExprSubsumes: the subsumption matrix ------------------------------------

TEST(ExprSubsumesTest, MatrixMatchesOracle) {
  Table t = MakeItems(3000);
  double nan = std::numeric_limits<double>::quiet_NaN();
  struct Case {
    const char* what;
    Expr a, b;
    bool expect;  // does ExprSubsumes(a, b) prove a => b?
  };
  std::vector<Case> cases;
  auto add = [&](const char* what, Expr a, Expr b, bool expect) {
    cases.push_back({what, std::move(a), std::move(b), expect});
  };
  // Eq within a range.
  add("eq in between", Col("qty") == 3u, Between(Col("qty"), 1, 4), true);
  add("eq in ordering", Col("qty") == 3u, Col("qty") >= 2u, true);
  // In-list within a superset In-list.
  add("in in in", InU32(Col("qty"), {2, 4}), InU32(Col("qty"), {1, 2, 4}),
      true);
  // Between within a wider range.
  add("between in between", Between(Col("qty"), 2, 3),
      Between(Col("qty"), 1, 4), true);
  add("between in ordering", Between(Col("qty"), 2, 3), Col("qty") >= 2u,
      true);
  // Integer closed-interval tightening: qty > 3 is exactly qty >= 4, so a
  // range starting at 4 is contained in it.
  add("int tightening", Between(Col("qty"), 4, 9), Col("qty") > 3u, true);
  // Negated leaves: smaller complement set implies larger complement hole.
  add("negated in", !InU32(Col("qty"), {1, 2, 3}), !InU32(Col("qty"), {1, 2}),
      true);
  add("negated between", !Between(Col("qty"), 1, 4),
      !Between(Col("qty"), 2, 3), true);
  add("ne from eq-other", Col("qty") == 2u, Col("qty") != 3u, true);
  // And refinement: the conjunction's intersection proves what no single
  // conjunct does.
  add("and intersection", Col("qty") > 1u && Col("qty") < 4u,
      Between(Col("qty"), 2, 3), true);
  add("and one-conjunct", Between(Col("qty"), 2, 3) && Col("order") < 100u,
      Between(Col("qty"), 1, 4), true);
  // Or on either side.
  add("or of eqs into between", Col("qty") == 2u || Col("qty") == 3u,
      Between(Col("qty"), 2, 3), true);
  add("between into or union", Between(Col("qty"), 2, 4),
      Col("qty") == 2u || Col("qty") == 3u || Col("qty") == 4u, true);
  // f64: endpoint openness matters.
  add("f64 lt in le", Col("price") < 20.0, Col("price") <= 20.0, true);
  add("f64 le NOT in lt", Col("price") <= 20.0, Col("price") < 20.0, false);
  add("f64 between in ge", Between(Col("price"), 12.0, 18.0),
      Col("price") >= 10.0, true);
  // != matches NaN as well as every other value, so any NaN-free range
  // implies it.
  add("f64 between in ne", Between(Col("price"), 12.0, 18.0),
      Col("price") != 11.0, true);
  // Strings.
  add("str eq in in", Col("shipmode") == "MAIL",
      InStr(Col("shipmode"), {"MAIL", "AIR"}), true);
  add("str eq in ne-other", Col("shipmode") == "MAIL",
      Col("shipmode") != "AIR", true);
  add("str ne in ne", !InStr(Col("shipmode"), {"AIR", "SHIP"}),
      Col("shipmode") != "AIR", true);
  // Non-subsuming pairs: the checker must say "no proof".
  add("wider not in narrower", Between(Col("qty"), 1, 4), Col("qty") == 3u,
      false);
  add("different columns", Col("qty") == 3u, Col("order") == 3u, false);
  add("different domains", Col("qty") == 3u, Col("price") >= 0.0, false);
  add("overlapping ins", InU32(Col("qty"), {1, 2}), InU32(Col("qty"), {2, 3}),
      false);
  add("str eq other", Col("shipmode") == "MAIL", Col("shipmode") == "AIR",
      false);
  // NaN literals are unconvertible: no proof either way, even reflexively.
  add("nan literal", Col("price") != nan, Col("price") != nan, false);

  for (const Case& c : cases) {
    Expr a = N(c.a), b = N(c.b);
    EXPECT_EQ(ExprSubsumes(a, b), c.expect)
        << c.what << ": " << a.ToString() << "  =>  " << b.ToString();
    if (c.expect) {
      // A claimed implication must hold on real data (NaN rows included).
      EXPECT_TRUE(IsSubset(Oracle(t, a), Oracle(t, b))) << c.what;
    }
  }
}

// Every true answer across a pool of assorted filters must be sound
// against oracle evaluation — in both orders, including self-pairs.
TEST(ExprSubsumesTest, PairwiseSoundnessSweep) {
  Table t = MakeItems(4000);
  std::vector<Expr> pool;
  for (Expr& e : std::vector<Expr>{
           Col("qty") == 3u, Col("qty") != 3u, Col("qty") >= 2u,
           Col("qty") < 4u, Between(Col("qty"), 2, 3),
           !Between(Col("qty"), 2, 3), InU32(Col("qty"), {1, 3, 5}),
           !InU32(Col("qty"), {2, 4}), Col("qty") > 1u && Col("qty") <= 3u,
           Col("qty") == 1u || Col("qty") == 5u, Col("price") < 40.0,
           Col("price") <= 40.0, Col("price") != 40.0,
           Between(Col("price"), 15.0, 30.0), !Between(Col("price"), 15.0, 30.0),
           Col("shipmode") == "MAIL", Col("shipmode") != "MAIL",
           InStr(Col("shipmode"), {"MAIL", "AIR"}),
           !InStr(Col("shipmode"), {"TRUCK"}),
           Col("qty") >= 2u && Col("price") < 50.0}) {
    pool.push_back(N(std::move(e)));
  }
  std::vector<std::vector<uint32_t>> rows;
  rows.reserve(pool.size());
  for (const Expr& e : pool) rows.push_back(Oracle(t, e));
  size_t proofs = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = 0; j < pool.size(); ++j) {
      if (!ExprSubsumes(pool[i], pool[j])) continue;
      ++proofs;
      EXPECT_TRUE(IsSubset(rows[i], rows[j]))
          << pool[i].ToString() << "  =>  " << pool[j].ToString();
    }
  }
  // The pool is built to contain implications; a checker that never proves
  // anything would pass the soundness sweep vacuously.
  EXPECT_GT(proofs, pool.size());  // at least self-pairs plus real pairs
}

// The identity candidate-list sharing rests on: narrowing the weaker
// filter's survivors by the stronger filter gives exactly the stronger
// filter's survivors.
TEST(ExprSubsumesTest, NarrowingEqualsDirectEvaluation) {
  Table t = MakeItems(5000);
  Chunk chunk = MakeTableScanChunk(t, 0, t.num_rows());
  struct Pair {
    Expr strong, weak;
  };
  std::vector<Pair> pairs;
  pairs.push_back({N(Col("qty") == 3u), N(Between(Col("qty"), 1, 4))});
  pairs.push_back({N(Between(Col("price"), 15.0, 30.0)),
                   N(Col("price") >= 12.0)});
  pairs.push_back({N(Col("shipmode") == "MAIL"),
                   N(InStr(Col("shipmode"), {"MAIL", "AIR"}))});
  for (const Pair& p : pairs) {
    ASSERT_TRUE(ExprSubsumes(p.strong, p.weak)) << p.strong.ToString();
    auto weak_rows = EvalFilterPositions(chunk, p.weak, nullptr);
    ASSERT_TRUE(weak_rows.ok());
    auto narrowed =
        NarrowFilterPositions(chunk, p.strong, *weak_rows, nullptr);
    ASSERT_TRUE(narrowed.ok());
    auto direct = EvalFilterPositions(chunk, p.strong, nullptr);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*narrowed, *direct) << p.strong.ToString();
  }
}

// --- the cooperative cursor, driven deterministically ------------------------

constexpr size_t kChunk = 1024;

size_t PullAll(SharedScanParticipant* p) {
  size_t rows = 0;
  Chunk out;
  for (;;) {
    auto more = p->NextChunk(&out);
    CCDB_CHECK(more.ok());
    if (!*more) return rows;
    rows += out.rows;
  }
}

TEST(SharedScanRegistryTest, FanOutDrivesEachChunkOnceAndNarrowsSubsumed) {
  Table t = MakeItems(10 * kChunk);
  SharedScanRegistry reg;
  Expr weak = N(Between(Col("qty"), 1, 4));
  Expr strong = N(Col("qty") == 3u);
  auto a = reg.Attach(&t, &weak, kChunk, nullptr);
  auto b = reg.Attach(&t, &strong, kChunk, nullptr);
  auto c = reg.Attach(&t, nullptr, kChunk, nullptr);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  // One thread, pulls interleaved: whoever needs the next chunk first
  // drives it; the others consume from their queues.
  size_t ra = 0, rb = 0, rc = 0;
  Chunk out;
  for (;;) {
    auto ma = (*a)->NextChunk(&out);
    ASSERT_TRUE(ma.ok());
    if (!*ma) break;
    ra += out.rows;
    auto mb = (*b)->NextChunk(&out);
    ASSERT_TRUE(mb.ok() && *mb);
    rb += out.rows;
    auto mc = (*c)->NextChunk(&out);
    ASSERT_TRUE(mc.ok() && *mc);
    rc += out.rows;
  }
  EXPECT_EQ(ra, Oracle(t, weak).size());
  EXPECT_EQ(rb, Oracle(t, strong).size());
  EXPECT_EQ(rc, t.num_rows());

  SharedScanRegistry::Stats s = reg.stats();
  EXPECT_EQ(s.attaches, 3u);
  EXPECT_EQ(s.attaches_private, 0u);
  EXPECT_EQ(s.chunks_driven, 10u);       // each chunk built exactly once
  EXPECT_EQ(s.chunks_fanned_out, 30u);   // ... and delivered to all three
  EXPECT_EQ(s.chunks_private, 0u);
  EXPECT_EQ(s.filter_full_evals, 10u);   // the weak filter, once per chunk
  EXPECT_EQ(s.filter_narrowed, 10u);     // strong = narrow(weak survivors)
  EXPECT_EQ(s.filter_copied, 0u);
  EXPECT_EQ(s.overflows, 0u);
}

TEST(SharedScanRegistryTest, EquivalentFiltersCopyTheCandidateList) {
  Table t = MakeItems(6 * kChunk);
  SharedScanRegistry reg;
  // Same predicate, different syntax: a conjunction of bounds vs Between.
  Expr f1 = N(Col("qty") >= 2u && Col("qty") <= 3u);
  Expr f2 = N(Between(Col("qty"), 2, 3));
  ASSERT_TRUE(ExprSubsumes(f1, f2) && ExprSubsumes(f2, f1));
  auto a = reg.Attach(&t, &f1, kChunk, nullptr);
  auto b = reg.Attach(&t, &f2, kChunk, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  size_t ra = 0, rb = 0;
  Chunk out;
  for (;;) {
    auto ma = (*a)->NextChunk(&out);
    ASSERT_TRUE(ma.ok());
    if (!*ma) break;
    ra += out.rows;
    auto mb = (*b)->NextChunk(&out);
    ASSERT_TRUE(mb.ok() && *mb);
    rb += out.rows;
  }
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra, Oracle(t, f1).size());
  SharedScanRegistry::Stats s = reg.stats();
  EXPECT_EQ(s.filter_full_evals, 6u);  // one of the pair, once per chunk
  EXPECT_EQ(s.filter_copied, 6u);      // the other copies its list
  EXPECT_EQ(s.filter_narrowed, 0u);
}

TEST(SharedScanRegistryTest, MidPassAttachCatchesUpPrivately) {
  Table t = MakeItems(8 * kChunk);
  SharedScanRegistry reg;
  auto a = reg.Attach(&t, nullptr, kChunk, nullptr);
  ASSERT_TRUE(a.ok());
  Chunk out;
  for (int i = 0; i < 3; ++i) {  // cursor moves to chunk 3
    auto m = (*a)->NextChunk(&out);
    ASSERT_TRUE(m.ok() && *m);
  }
  Expr f = N(Col("qty") <= 3u);
  auto b = reg.Attach(&t, &f, kChunk, nullptr);
  ASSERT_TRUE(b.ok());
  size_t rb = PullAll(b->get());
  size_t ra = 3 * kChunk + PullAll(a->get());
  EXPECT_EQ(ra, t.num_rows());
  EXPECT_EQ(rb, Oracle(t, f).size());  // chunks 0-2 privately, 3-7 shared
  SharedScanRegistry::Stats s = reg.stats();
  EXPECT_EQ(s.chunks_private, 3u);
  EXPECT_EQ(s.attaches_private, 0u);  // a real member, just catching up
}

TEST(SharedScanRegistryTest, DetachMidPassLeavesRemainingCorrect) {
  Table t = MakeItems(8 * kChunk);
  SharedScanRegistry reg;
  Expr f = N(Col("qty") != 2u);
  auto a = reg.Attach(&t, nullptr, kChunk, nullptr);
  auto b = reg.Attach(&t, &f, kChunk, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  Chunk out;
  size_t ra = 0;
  for (int i = 0; i < 2; ++i) {
    auto ma = (*a)->NextChunk(&out);
    ASSERT_TRUE(ma.ok() && *ma);
    ra += out.rows;
    auto mb = (*b)->NextChunk(&out);
    ASSERT_TRUE(mb.ok() && *mb);
  }
  b->reset();  // detach mid-pass (what cancel / Close / Limit does)
  ra += PullAll(a->get());
  EXPECT_EQ(ra, t.num_rows());
}

TEST(SharedScanRegistryTest, CancelledParticipantFailsCleanOthersFinish) {
  Table t = MakeItems(6 * kChunk);
  SharedScanRegistry reg;
  ScheduleContext sched;
  ExecContext cancelled_ctx;
  cancelled_ctx.sched = &sched;
  auto a = reg.Attach(&t, nullptr, kChunk, nullptr);
  auto b = reg.Attach(&t, nullptr, kChunk, &cancelled_ctx);
  ASSERT_TRUE(a.ok() && b.ok());
  Chunk out;
  auto ma = (*a)->NextChunk(&out);
  ASSERT_TRUE(ma.ok() && *ma);
  auto mb = (*b)->NextChunk(&out);
  ASSERT_TRUE(mb.ok() && *mb);
  sched.cancelled.store(true);
  auto aborted = (*b)->NextChunk(&out);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  b->reset();  // the operator's Close on the error path
  EXPECT_EQ(kChunk + PullAll(a->get()), t.num_rows());
}

TEST(SharedScanRegistryTest, SlowConsumerOverflowsToPrivateScanning) {
  Table t = MakeItems(10 * kChunk);
  SharedScanRegistry::Options opts;
  opts.max_buffered_chunks = 2;
  SharedScanRegistry reg(opts);
  auto fast = reg.Attach(&t, nullptr, kChunk, nullptr);
  auto slow = reg.Attach(&t, nullptr, kChunk, nullptr);
  ASSERT_TRUE(fast.ok() && slow.ok());
  // The fast participant runs the whole pass without the slow one
  // consuming anything: the slow queue caps at 2, then overflows.
  EXPECT_EQ(PullAll(fast->get()), t.num_rows());
  SharedScanRegistry::Stats mid = reg.stats();
  EXPECT_EQ(mid.overflows, 1u);
  // The slow participant still produces the complete, correct scan.
  EXPECT_EQ(PullAll(slow->get()), t.num_rows());
  SharedScanRegistry::Stats s = reg.stats();
  EXPECT_EQ(s.chunks_driven, 10u);
  EXPECT_EQ(s.chunks_fanned_out, 12u);  // fast: 10, slow: 2 before overflow
  EXPECT_EQ(s.chunks_private, 8u);      // slow finishes privately
}

TEST(SharedScanRegistryTest, GeometryMismatchFallsBackToPrivate) {
  Table t = MakeItems(4 * kChunk);
  SharedScanRegistry reg;
  Expr f = N(Col("qty") >= 3u);
  auto a = reg.Attach(&t, &f, kChunk, nullptr);
  ASSERT_TRUE(a.ok());
  auto b = reg.Attach(&t, &f, kChunk / 2, nullptr);  // different chunking
  ASSERT_TRUE(b.ok());
  size_t expect = Oracle(t, f).size();
  EXPECT_EQ(PullAll(a->get()), expect);
  EXPECT_EQ(PullAll(b->get()), expect);
  EXPECT_EQ(reg.stats().attaches_private, 1u);
}

TEST(SharedScanRegistryTest, EmptyTableEmitsOneEmptyChunkPerParticipant) {
  auto rs = RowStore::Make({{"k", FieldType::kU32}}, 4);
  ASSERT_TRUE(rs.ok());
  Table t = *Table::FromRowStore(*rs);
  SharedScanRegistry reg;
  auto a = reg.Attach(&t, nullptr, kChunk, nullptr);
  auto b = reg.Attach(&t, nullptr, kChunk, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  Chunk out;
  auto ma = (*a)->NextChunk(&out);
  ASSERT_TRUE(ma.ok() && *ma);
  EXPECT_EQ(out.rows, 0u);
  auto again = (*a)->NextChunk(&out);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(PullAll(b->get()), 0u);
}

// The cross-pass filter cache: a repeat query over unchanged data copies
// last pass's candidate lists instead of re-reading the column, and a
// later stronger filter narrows them.
TEST(SharedScanRegistryTest, FilterCachePersistsAcrossPasses) {
  Table t = MakeItems(5 * kChunk);
  SharedScanRegistry reg;
  Expr weak = N(Between(Col("qty"), 1, 4));
  Expr strong = N(Col("qty") == 3u);
  size_t expect_weak = Oracle(t, weak).size();
  size_t expect_strong = Oracle(t, strong).size();

  // Pass 1: the filter is evaluated for real, once per chunk, and cached.
  auto a = reg.Attach(&t, &weak, kChunk, nullptr);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(PullAll(a->get()), expect_weak);
  a->reset();  // detach: the group is empty, but the cache survives
  EXPECT_EQ(reg.stats().filter_full_evals, 5u);
  EXPECT_EQ(reg.stats().filter_copied, 0u);

  // Pass 2, same filter: every chunk's list is copied from the cache.
  auto b = reg.Attach(&t, &weak, kChunk, nullptr);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(PullAll(b->get()), expect_weak);
  b->reset();
  EXPECT_EQ(reg.stats().filter_full_evals, 5u);  // no new column reads
  EXPECT_EQ(reg.stats().filter_copied, 5u);

  // Pass 3, strictly stronger filter: narrowed from the cached survivors.
  auto c = reg.Attach(&t, &strong, kChunk, nullptr);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(PullAll(c->get()), expect_strong);
  EXPECT_EQ(reg.stats().filter_full_evals, 5u);
  EXPECT_EQ(reg.stats().filter_narrowed, 5u);
}

TEST(SharedScanRegistryTest, FilterCacheInvalidatedByDataVersion) {
  auto rs = RowStore::Make({{"qty", FieldType::kU32}}, 3 * kChunk + 8);
  ASSERT_TRUE(rs.ok());
  for (size_t i = 0; i < 3 * kChunk; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(1 + i % 5));
  }
  Table t = *Table::FromRowStore(*rs);
  SharedScanRegistry reg;
  Expr f = N(Col("qty") <= 2u);
  auto a = reg.Attach(&t, &f, kChunk, nullptr);
  ASSERT_TRUE(a.ok());
  size_t before = PullAll(a->get());
  a->reset();
  EXPECT_EQ(reg.stats().filter_full_evals, 3u);

  // Ingest moves the data version (and the row count): the next pass must
  // re-evaluate rather than serve stale lists.
  auto extra = RowStore::Make({{"qty", FieldType::kU32}}, 8);
  ASSERT_TRUE(extra.ok());
  for (size_t i = 0; i < 8; ++i) {
    size_t r = *extra->AppendRow();
    extra->SetU32(r, 0, 2);
  }
  ASSERT_TRUE(t.AppendRows(*extra).ok());

  auto b = reg.Attach(&t, &f, kChunk, nullptr);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(PullAll(b->get()), before + 8);
  EXPECT_EQ(reg.stats().filter_copied, 0u);
  EXPECT_EQ(reg.stats().filter_full_evals, 7u);  // 3 + 4 chunks, all fresh
}

// --- end-to-end byte-identity ------------------------------------------------

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.columns[c].u32_values, b.columns[c].u32_values) << what;
    EXPECT_EQ(a.columns[c].i64_values, b.columns[c].i64_values) << what;
    EXPECT_EQ(a.columns[c].f64_values, b.columns[c].f64_values) << what;
    EXPECT_EQ(a.columns[c].str_values, b.columns[c].str_values) << what;
  }
}

/// K analytic plans over one table: overlapping filters (two in a
/// subsumption relation), one unfiltered, all with a canonical output
/// order so results compare byte-identically across parallelism.
std::vector<LogicalPlan> MakeWorkload(const Table& t) {
  std::vector<LogicalPlan> plans;
  auto build = [&](std::optional<Expr> filter) {
    QueryBuilder qb(t);
    if (filter.has_value()) qb.Filter(*std::move(filter));
    auto p = qb.GroupByAgg({"qty"}, {Agg::Sum("order"), Agg::Count()})
                 .OrderBy("qty")
                 .Build();
    CCDB_CHECK(p.ok());
    plans.push_back(*std::move(p));
  };
  build(Between(Col("qty"), 1, 4));
  build(Col("qty") == 3u);  // subsumed by the filter above
  build(Col("shipmode") == "MAIL");
  build(std::nullopt);  // unfiltered
  return plans;
}

PlannerOptions TestPlannerOptions(size_t parallelism) {
  PlannerOptions opts;
  opts.exec.parallelism = parallelism;
  opts.exec.scan_chunk_rows = 4096;
  return opts;
}

TEST(SharedScanExecTest, ConcurrentPlansByteIdenticalToIndependent) {
  Table t = MakeItems(120000);
  std::vector<LogicalPlan> plans = MakeWorkload(t);
  for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
    PlannerOptions independent = TestPlannerOptions(parallelism);
    std::vector<QueryResult> expected;
    for (const LogicalPlan& p : plans) {
      expected.push_back(*Execute(p, independent));
    }

    SharedScanRegistry reg;
    PlannerOptions shared = independent;
    shared.exec.shared_scans = &reg;
    constexpr int kRounds = 3;  // re-attach across fresh passes
    std::vector<std::thread> threads;
    std::vector<Status> errors(plans.size(), Status::Ok());
    for (size_t i = 0; i < plans.size(); ++i) {
      threads.emplace_back([&, i] {
        for (int round = 0; round < kRounds; ++round) {
          auto got = Execute(plans[i], shared);
          if (!got.ok()) {
            errors[i] = got.status();
            return;
          }
          ExpectSameResult(expected[i], *got,
                           "plan " + std::to_string(i) + " round " +
                               std::to_string(round) + " parallelism " +
                               std::to_string(parallelism));
        }
      });
    }
    for (auto& th : threads) th.join();
    for (const Status& s : errors) ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(reg.stats().attaches,
              static_cast<uint64_t>(plans.size()) * kRounds);
  }
}

TEST(SharedScanExecTest, ServerResultsIdenticalWithSharingOnAndOff) {
  Table t = MakeItems(150000);
  std::vector<LogicalPlan> plans = MakeWorkload(t);
  std::vector<QueryResult> expected;
  for (const LogicalPlan& p : plans) {
    expected.push_back(*Execute(p, TestPlannerOptions(1)));
  }
  for (bool sharing : {false, true}) {
    ServerOptions opts;
    opts.max_inflight = 4;
    opts.max_queue = 64;
    opts.planner = TestPlannerOptions(1);
    opts.shared_scan = sharing;
    Server server(opts);
    constexpr int kPerPlan = 4;
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (size_t i = 0; i < plans.size(); ++i) {
      clients.emplace_back([&, i] {
        QuerySession session(&server);
        for (int q = 0; q < kPerPlan; ++q) {
          auto result = session.Run(plans[i]);
          if (!result.ok() ||
              result->num_rows() != expected[i].num_rows()) {
            failures.fetch_add(1);
            continue;
          }
          for (size_t c = 0; c < expected[i].num_columns(); ++c) {
            if (result->columns[c].u32_values !=
                    expected[i].columns[c].u32_values ||
                result->columns[c].i64_values !=
                    expected[i].columns[c].i64_values) {
              failures.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : clients) th.join();
    EXPECT_EQ(failures.load(), 0) << "sharing=" << sharing;
    Server::Stats stats = server.stats();
    if (sharing) {
      EXPECT_GT(stats.shared_scans.attaches, 0u);
    } else {
      EXPECT_EQ(stats.shared_scans.attaches, 0u);
    }
  }
}

TEST(SharedScanExecTest, PlannerLowersFusedSharedScanWithFilterInfo) {
  Table t = MakeItems(20000);
  auto plan = QueryBuilder(t)
                  .Filter(Col("qty") >= 2u && Col("price") < 50.0)
                  .Build();
  ASSERT_TRUE(plan.ok());
  SharedScanRegistry reg;
  PlannerOptions opts = TestPlannerOptions(1);
  opts.exec.shared_scans = &reg;
  Planner planner(opts);
  auto physical = planner.Lower(*plan);
  ASSERT_TRUE(physical.ok());
  std::string explain = physical->ExplainCosts();
  EXPECT_NE(explain.find("SharedScan"), std::string::npos) << explain;
  auto result = physical->Execute();
  ASSERT_TRUE(result.ok());
  auto expected = Execute(*plan, TestPlannerOptions(1));
  ASSERT_TRUE(expected.ok());
  ExpectSameResult(*expected, *result, "fused shared scan");
}

}  // namespace
}  // namespace ccdb
