// Quickstart: the 60-second tour of ccdb.
//
//   1. Build two relations of [OID, value] BUNs (the paper's join workload).
//   2. Let the planner pick a cache-conscious join strategy.
//   3. Run it, and compare against the naive non-partitioned hash join.
//   4. Count the exact cache/TLB misses of both, using the built-in
//      memory-hierarchy simulator (the software stand-in for the paper's
//      R10000 hardware counters).
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "algo/partitioned_hash_join.h"
#include "algo/simple_hash_join.h"
#include "exec/ops.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ccdb;

int main() {
  // ---- 1. workload: 1M-tuple relations, unique values, hit rate 1 --------
  constexpr size_t kC = 1 << 20;
  auto values = UniqueU32(kC, /*seed=*/2024);
  std::vector<Bun> orders(kC), lineitems(kC);
  for (size_t i = 0; i < kC; ++i)
    orders[i] = {static_cast<oid_t>(i), values[i]};
  Rng rng(7);
  Shuffle(values, rng);
  for (size_t i = 0; i < kC; ++i)
    lineitems[i] = {static_cast<oid_t>(i), values[i]};

  // ---- 2. plan ------------------------------------------------------------
  MachineProfile machine = MachineProfile::GenericX86();
  JoinPlan plan = PlanJoin(JoinStrategy::kBest, kC, machine);
  std::printf("planner: %s join, B=%d radix bits (%d passes), model %.1f ms\n",
              plan.use_radix_join ? "radix" : "partitioned hash", plan.bits,
              plan.passes, plan.predicted_ms);

  // ---- 3. execute and compare against the naive baseline ------------------
  JoinStats stats;
  auto result = ExecuteJoin(orders, lineitems, plan, &stats);
  CCDB_CHECK(result.ok());
  std::printf("cache-conscious: %8.1f ms  (%.1f cluster + %.1f join), %zu pairs\n",
              stats.total_ms(), stats.cluster_left_ms + stats.cluster_right_ms,
              stats.join_ms, result->size());

  DirectMemory direct;
  JoinStats naive_stats;
  WallTimer t;
  auto naive = SimpleHashJoin(std::span<const Bun>(orders),
                              std::span<const Bun>(lineitems), direct,
                              &naive_stats, kC);
  std::printf("simple hash:     %8.1f ms, %zu pairs  => %.1fx speedup\n",
              naive_stats.total_ms(), naive.size(),
              naive_stats.total_ms() / stats.total_ms());
  CCDB_CHECK(naive.size() == result->size());

  // ---- 4. exact miss counts via the simulator -----------------------------
  constexpr size_t kSimC = 1 << 17;  // smaller: simulation is exact but slow
  std::span<const Bun> l(orders.data(), kSimC);
  std::span<const Bun> r(lineitems.data(), kSimC);

  MemoryHierarchy h1(MachineProfile::Origin2000());
  SimulatedMemory sim1(&h1);
  (void)SimpleHashJoin(l, r, sim1);
  MemEvents naive_ev = h1.events();

  MemoryHierarchy h2(MachineProfile::Origin2000());
  SimulatedMemory sim2(&h2);
  auto phash = PartitionedHashJoin(l, r, /*bits=*/9, /*passes=*/2, sim2);
  CCDB_CHECK(phash.ok());
  MemEvents smart_ev = h2.events();

  std::printf("\nsimulated on the paper's Origin2000 (C=%zu):\n", kSimC);
  std::printf("  %-18s %12s %12s %12s\n", "", "L1 misses", "L2 misses",
              "TLB misses");
  std::printf("  %-18s %12llu %12llu %12llu\n", "simple hash",
              (unsigned long long)naive_ev.l1_misses,
              (unsigned long long)naive_ev.l2_misses,
              (unsigned long long)naive_ev.tlb_misses);
  std::printf("  %-18s %12llu %12llu %12llu\n", "radix-clustered",
              (unsigned long long)smart_ev.l1_misses,
              (unsigned long long)smart_ev.l2_misses,
              (unsigned long long)smart_ev.tlb_misses);
  std::printf("\nmemory stall time implied by the paper's latencies: "
              "%.1f ms -> %.1f ms\n",
              naive_ev.StallNanos(MachineProfile::Origin2000().lat) * 1e-6,
              smart_ev.StallNanos(MachineProfile::Origin2000().lat) * 1e-6);
  return 0;
}
