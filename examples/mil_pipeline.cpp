// Monet-style operator pipeline over raw BATs (the §3.1 architecture).
//
// Runs the decomposed-query dance the paper's footnote 2 describes: the
// bottom operator produces candidate OIDs; every further column access is a
// "tuple-reconstruction join" on OID columns — which positional (void)
// lookup makes essentially free.
//
//   SQL equivalent over item(qty, price, supp):
//     SELECT supp, SUM(qty) FROM item WHERE price BETWEEN 2000 AND 3000
//     GROUP BY supp;
#include <cstdio>

#include "algo/bat_algebra.h"
#include "algo/radix_aggregate.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ccdb;

int main() {
  constexpr size_t kRows = 1 << 20;
  Rng rng(77);

  // The decomposed table: three BATs with a shared void OID head.
  std::vector<uint32_t> qty(kRows), price(kRows), supp(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    qty[i] = static_cast<uint32_t>(1 + rng.NextBelow(50));
    price[i] = static_cast<uint32_t>(rng.NextBelow(10000));
    supp[i] = static_cast<uint32_t>(rng.NextBelow(200));
  }
  Bat item_qty = Bat::DenseTail(Column::U32(qty));
  Bat item_price = Bat::DenseTail(Column::U32(price));
  Bat item_supp = Bat::DenseTail(Column::U32(supp));

  std::printf("item table: %zu tuples, 3 decomposition BATs "
              "(void heads cost 0 bytes; %zu bytes/BAT of values)\n\n",
              kRows, item_qty.MemoryBytes());

  WallTimer t;
  // -- 1. selection on the price BAT -> candidate [OID, price] pairs.
  auto candidates = BatSelect(item_price, 2000, 3000);
  CCDB_CHECK(candidates.ok());
  std::printf("select(price, 2000, 3000)          -> %8zu candidates\n",
              candidates->size());

  // -- 2. tuple reconstruction: fetch qty and supp for the candidate OIDs
  //       via positional joins on the void-headed BATs ("eliminating all
  //       join cost", §3.1).
  auto cand_oids = *Bat::Make(candidates->head(), candidates->head());
  auto cand_qty = BatJoin(cand_oids, item_qty);
  auto cand_supp = BatJoin(cand_oids, item_supp);
  CCDB_CHECK(cand_qty.ok() && cand_supp.ok());
  std::printf("join(candidates, qty)  [positional] -> %8zu BUNs\n",
              cand_qty->size());
  std::printf("join(candidates, supp) [positional] -> %8zu BUNs\n",
              cand_supp->size());

  // -- 3. grouped aggregation on the reconstructed columns.
  DirectMemory mem;
  auto keys = cand_supp->tail().Span<uint32_t>();
  auto vals = cand_qty->tail().Span<uint32_t>();
  auto agg = RadixGroupSum<DirectMemory, MurmurHash>(keys, vals,
                                                     /*bits=*/0, /*passes=*/1,
                                                     mem);
  CCDB_CHECK(agg.ok());
  double ms = t.ElapsedMillis();
  std::printf("group-sum over supp                 -> %8zu groups\n",
              agg->size());
  std::printf("\npipeline total: %.2f ms\n", ms);

  uint64_t grand = 0;
  for (uint64_t s : agg->sums) grand += s;
  std::printf("checksum: SUM(qty) over all groups = %llu\n",
              static_cast<unsigned long long>(grand));

  // Cross-check against a straight scan.
  uint64_t expect = 0;
  for (size_t i = 0; i < kRows; ++i) {
    if (2000 <= price[i] && price[i] <= 3000) expect += qty[i];
  }
  CCDB_CHECK(expect == grand);
  std::printf("oracle agrees. The whole query ran as %s\n",
              "BAT-algebra operators, no row ever materialized.");
  return 0;
}
