// Monet-style operator pipeline (§3.1), expressed twice:
//
//   1. hand-composed BAT algebra — the bottom operator produces candidate
//      OIDs; every further column access is a "tuple-reconstruction join"
//      on OID columns, which positional (void) lookup makes free;
//   2. the fluent QueryBuilder API — the same query as a logical plan that
//      the Planner lowers to candidate-list-pipelining physical operators.
//
// Both paths must produce byte-identical group aggregates.
//
//   SQL equivalent over item(qty, price, supp):
//     SELECT supp, SUM(qty) FROM item WHERE price BETWEEN 2000 AND 3000
//     GROUP BY supp;
#include <algorithm>
#include <cstdio>

#include "algo/bat_algebra.h"
#include "algo/radix_aggregate.h"
#include "exec/plan.h"
#include "model/planner.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ccdb;

int main() {
  constexpr size_t kRows = 1 << 20;
  Rng rng(77);

  // The decomposed table: three BATs with a shared void OID head.
  std::vector<uint32_t> qty(kRows), price(kRows), supp(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    qty[i] = static_cast<uint32_t>(1 + rng.NextBelow(50));
    price[i] = static_cast<uint32_t>(rng.NextBelow(10000));
    supp[i] = static_cast<uint32_t>(rng.NextBelow(200));
  }
  Bat item_qty = Bat::DenseTail(Column::U32(qty));
  Bat item_price = Bat::DenseTail(Column::U32(price));
  Bat item_supp = Bat::DenseTail(Column::U32(supp));

  std::printf("item table: %zu tuples, 3 decomposition BATs "
              "(void heads cost 0 bytes; %zu bytes/BAT of values)\n\n",
              kRows, item_qty.MemoryBytes());

  // ---- path 1: hand-composed BAT algebra (the old free-function way) ------
  WallTimer t;
  // -- 1. selection on the price BAT -> candidate [OID, price] pairs.
  auto candidates = BatSelect(item_price, 2000, 3000);
  CCDB_CHECK(candidates.ok());
  std::printf("select(price, 2000, 3000)          -> %8zu candidates\n",
              candidates->size());

  // -- 2. tuple reconstruction: fetch qty and supp for the candidate OIDs
  //       via positional joins on the void-headed BATs ("eliminating all
  //       join cost", §3.1).
  auto cand_oids = *Bat::Make(candidates->head(), candidates->head());
  auto cand_qty = BatJoin(cand_oids, item_qty);
  auto cand_supp = BatJoin(cand_oids, item_supp);
  CCDB_CHECK(cand_qty.ok() && cand_supp.ok());
  std::printf("join(candidates, qty)  [positional] -> %8zu BUNs\n",
              cand_qty->size());
  std::printf("join(candidates, supp) [positional] -> %8zu BUNs\n",
              cand_supp->size());

  // -- 3. grouped aggregation on the reconstructed columns.
  DirectMemory mem;
  auto keys = cand_supp->tail().Span<uint32_t>();
  auto vals = cand_qty->tail().Span<uint32_t>();
  auto agg = RadixGroupSum<DirectMemory, MurmurHash>(keys, vals,
                                                     /*bits=*/0, /*passes=*/1,
                                                     mem);
  CCDB_CHECK(agg.ok());
  double manual_ms = t.ElapsedMillis();
  std::printf("group-sum over supp                 -> %8zu groups\n",
              agg->size());
  std::printf("hand-composed pipeline: %.2f ms\n\n", manual_ms);

  // ---- path 2: the same query through the fluent QueryBuilder -------------
  auto rs = RowStore::Make({{"qty", FieldType::kU32},
                            {"price", FieldType::kU32},
                            {"supp", FieldType::kU32}},
                           kRows);
  CCDB_CHECK(rs.ok());
  for (size_t i = 0; i < kRows; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, qty[i]);
    rs->SetU32(r, 1, price[i]);
    rs->SetU32(r, 2, supp[i]);
  }
  Table item = *Table::FromRowStore(*rs);

  auto plan = QueryBuilder(item)
                  .Select(Predicate::RangeU32("price", 2000, 3000))
                  .GroupBySum("supp", "qty")
                  .Build();
  CCDB_CHECK(plan.ok());
  std::printf("logical plan:\n%s", plan->ToString().c_str());

  WallTimer t2;
  auto result = Execute(*plan);
  CCDB_CHECK(result.ok());
  double plan_ms = t2.ElapsedMillis();
  std::printf("QueryBuilder pipeline:  %.2f ms (%zu groups; selection "
              "pipelined as a candidate list, no intermediate BAT)\n\n",
              plan_ms, result->num_rows());

  // ---- byte-identical check -----------------------------------------------
  // Canonicalize both outputs as (supp -> sum) sorted by supp.
  std::vector<std::pair<uint32_t, uint64_t>> manual_rows, plan_rows;
  for (size_t g = 0; g < agg->size(); ++g) {
    manual_rows.emplace_back(agg->keys[g], agg->sums[g]);
  }
  const auto& supp_col = result->columns[*result->ColumnIndex("supp")];
  const auto& sum_col = result->columns[*result->ColumnIndex("sum")];
  for (size_t g = 0; g < result->num_rows(); ++g) {
    plan_rows.emplace_back(supp_col.u32_values[g],
                           static_cast<uint64_t>(sum_col.i64_values[g]));
  }
  std::sort(manual_rows.begin(), manual_rows.end());
  std::sort(plan_rows.begin(), plan_rows.end());
  CCDB_CHECK(manual_rows == plan_rows);

  uint64_t grand = 0;
  for (const auto& [k, s] : plan_rows) grand += s;
  std::printf("checksum: SUM(qty) over all groups = %llu\n",
              static_cast<unsigned long long>(grand));

  // Cross-check against a straight scan.
  uint64_t expect = 0;
  for (size_t i = 0; i < kRows; ++i) {
    if (2000 <= price[i] && price[i] <= 3000) expect += qty[i];
  }
  CCDB_CHECK(expect == grand);
  std::printf("oracle agrees; QueryBuilder and hand-composed BAT algebra "
              "produced byte-identical aggregates.\n");
  return 0;
}
