// OLAP on the paper's "Item" table (Fig. 4).
//
// Demonstrates the storage side of the paper (§3.1):
//   * an ~90-byte NSM relational tuple vs vertical decomposition into BATs,
//   * virtual-OID (void) heads costing zero bytes,
//   * byte-encoding of the low-cardinality "shipmode" column (8 bytes -> 1),
//   * a drill-down query — selection on shipmode + grouped aggregation —
//     executed with predicate remap on the 1-byte code column,
//   * the NSM-vs-DSM scan-time gap that Figure 3 predicts.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "algo/select.h"
#include "exec/plan.h"
#include "exec/table.h"
#include "model/planner.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ccdb;

namespace {

RowStore BuildItemTable(size_t n) {
  auto rs = RowStore::Make(
      {
          {"order", FieldType::kU32},   {"supp", FieldType::kU32},
          {"part", FieldType::kU32},    {"qty", FieldType::kU32},
          {"discnt", FieldType::kF64},  {"tax", FieldType::kF64},
          {"price", FieldType::kF64},   {"status", FieldType::kChar1},
          {"flag", FieldType::kChar1},  {"date1", FieldType::kU32},
          {"date2", FieldType::kU32},   {"date3", FieldType::kU32},
          {"shipmode", FieldType::kChar10},
          {"comment", FieldType::kChar27},
      },
      n);
  CCDB_CHECK(rs.ok());
  const char* modes[] = {"MAIL", "AIR", "TRUCK", "SHIP", "RAIL", "REG AIR",
                         "FOB"};
  Rng rng(1999);
  for (size_t i = 0; i < n; ++i) {
    size_t r = *rs->AppendRow();
    rs->SetU32(r, 0, static_cast<uint32_t>(i / 4));
    rs->SetU32(r, 1, static_cast<uint32_t>(rng.NextBelow(100)));
    rs->SetU32(r, 2, static_cast<uint32_t>(rng.NextBelow(20000)));
    rs->SetU32(r, 3, static_cast<uint32_t>(1 + rng.NextBelow(50)));
    rs->SetF64(r, 4, 0.01 * static_cast<double>(rng.NextBelow(11)));
    rs->SetF64(r, 5, 0.01 * static_cast<double>(rng.NextBelow(9)));
    rs->SetF64(r, 6, static_cast<double>(rng.NextBelow(100000)) / 100);
    rs->SetU8(r, 7, "NOF"[rng.NextBelow(3)]);
    rs->SetU8(r, 8, 'Y');
    rs->SetU32(r, 9, static_cast<uint32_t>(19980101 + rng.NextBelow(700)));
    rs->SetU32(r, 10, static_cast<uint32_t>(19980101 + rng.NextBelow(700)));
    rs->SetU32(r, 11, static_cast<uint32_t>(19980101 + rng.NextBelow(700)));
    const char* m = modes[rng.NextBelow(7)];
    rs->SetBytes(r, 12, m, std::strlen(m));
    rs->SetBytes(r, 13, "auto-generated line item", 24);
  }
  return *std::move(rs);
}

}  // namespace

int main() {
  constexpr size_t kRows = 1 << 20;
  std::printf("building Item table (%zu rows)...\n", kRows);
  RowStore rows = BuildItemTable(kRows);

  // ---- storage comparison (§3.1 / Fig. 4) ---------------------------------
  Table table = *Table::FromRowStore(rows);
  size_t nsm_bytes = rows.record_width() * rows.size();
  std::printf("\nNSM record width: %zu bytes  -> table %.1f MB\n",
              rows.record_width(), nsm_bytes / 1048576.0);
  std::printf("DSM (BATs + byte-encodings):   table %.1f MB\n",
              table.MemoryBytes() / 1048576.0);
  size_t ship = *table.schema().FieldIndex("shipmode");
  std::printf("shipmode column: %zu-byte codes + %zu-entry dictionary "
              "(was 10-byte char field)\n",
              table.column_value_bytes(ship), table.dict(ship).size());

  // ---- query 1: zero-selectivity aggregate (the §2 experiment as SQL) ----
  //   SELECT SUM(qty) FROM item
  // NSM strides at the record width (91 B); DSM at the value width (4 B).
  std::printf("\nQ1: SELECT SUM(qty) FROM item\n");
  size_t f_qty0 = *rows.FieldIndex("qty");
  double nsm_scan_ms = MinTimeMillis(3, [&] {
    uint64_t sum = 0;
    for (size_t r = 0; r < rows.size(); ++r) sum += rows.GetU32(r, f_qty0);
    volatile uint64_t sink = sum;
    (void)sink;
  });
  auto qty_span =
      table.column_bat(*table.schema().FieldIndex("qty")).tail().Span<uint32_t>();
  DirectMemory scan_mem;
  double dsm_scan_ms = MinTimeMillis(3, [&] {
    volatile uint64_t sink = SumColumn(qty_span, scan_mem);
    (void)sink;
  });
  std::printf("  NSM scan (91-byte stride): %7.2f ms\n", nsm_scan_ms);
  std::printf("  DSM scan ( 4-byte stride): %7.2f ms   (%.1fx)\n",
              dsm_scan_ms, nsm_scan_ms / dsm_scan_ms);

  // ---- query 2: the drill-down query --------------------------------------
  //   SELECT sum(qty) FROM item WHERE shipmode = 'MAIL' GROUP BY supp
  std::printf("\nQ2: SELECT supp, SUM(qty) FROM item WHERE shipmode='MAIL'"
              " GROUP BY supp\n");

  WallTimer t_nsm;
  // NSM execution: full-record scan.
  size_t f_ship = *rows.FieldIndex("shipmode");
  size_t f_qty = *rows.FieldIndex("qty");
  size_t f_supp = *rows.FieldIndex("supp");
  std::vector<uint64_t> nsm_sums(100, 0);
  for (size_t r = 0; r < rows.size(); ++r) {
    if (std::memcmp(rows.GetBytes(r, f_ship), "MAIL\0", 5) == 0) {
      nsm_sums[rows.GetU32(r, f_supp)] += rows.GetU32(r, f_qty);
    }
  }
  double nsm_ms = t_nsm.ElapsedMillis();

  WallTimer t_dsm;
  // DSM execution through the fluent query API: the EqStr predicate is
  // remapped onto the 1-byte shipmode code column and pipelined as a
  // candidate list into the grouped aggregation — no intermediate BAT.
  auto plan = QueryBuilder(table)
                  .Select(Predicate::EqStr("shipmode", "MAIL"))
                  .GroupBySum("supp", "qty")
                  .Build();
  CCDB_CHECK(plan.ok());
  auto agg = Execute(*plan);
  CCDB_CHECK(agg.ok());
  double dsm_ms = t_dsm.ElapsedMillis();
  const auto& sums = agg->columns[*agg->ColumnIndex("sum")].i64_values;
  const auto& counts = agg->columns[*agg->ColumnIndex("count")].i64_values;
  uint64_t matching = 0;
  for (int64_t c : counts) matching += static_cast<uint64_t>(c);

  // Verify both engines agree.
  uint64_t nsm_total = 0, dsm_total = 0;
  for (uint64_t s : nsm_sums) nsm_total += s;
  for (int64_t s : sums) dsm_total += static_cast<uint64_t>(s);
  CCDB_CHECK(nsm_total == dsm_total);

  std::printf("  NSM row engine:    %7.2f ms\n", nsm_ms);
  std::printf("  DSM column engine: %7.2f ms   (%.1fx; %llu matching tuples,"
              " %zu groups)\n",
              dsm_ms, nsm_ms / dsm_ms, (unsigned long long)matching,
              agg->num_rows());

  // ---- top groups: OrderBy + Limit in the same fluent plan -----------------
  std::printf("\ntop suppliers by SUM(qty):\n");
  auto top_plan = QueryBuilder(table)
                      .Select(Predicate::EqStr("shipmode", "MAIL"))
                      .GroupBySum("supp", "qty")
                      .OrderBy("sum", /*descending=*/true)
                      .Limit(5)
                      .Build();
  CCDB_CHECK(top_plan.ok());
  auto top = Execute(*top_plan);
  CCDB_CHECK(top.ok());
  const auto& top_supp = top->columns[*top->ColumnIndex("supp")].u32_values;
  const auto& top_sum = top->columns[*top->ColumnIndex("sum")].i64_values;
  const auto& top_count = top->columns[*top->ColumnIndex("count")].i64_values;
  for (size_t i = 0; i < top->num_rows(); ++i) {
    std::printf("  supp %3u  sum(qty) = %lld  (%lld items)\n", top_supp[i],
                (long long)top_sum[i], (long long)top_count[i]);
  }

  // ---- query 3: the richer algebra ----------------------------------------
  //   SELECT shipmode, status, MIN(qty), MAX(qty), AVG(qty), COUNT(*)
  //   FROM item WHERE qty BETWEEN 10 AND 40 AND tax <= 0.05
  //   GROUP BY shipmode, status
  // A conjunctive select fused into one candidate pass (the second
  // predicate narrows the survivors of the first without re-scanning) into
  // a multi-key grouped aggregation whose one accumulator pass answers
  // min/max/avg/count together — the analytics-suite shape memory-bound
  // engines are stressed with.
  std::printf("\nQ3: min/max/avg(qty) BY (shipmode, status) WHERE qty in "
              "[10,40] AND tax <= 0.05\n");
  WallTimer t_q3;
  auto rich = QueryBuilder(table)
                  .Select({Predicate::RangeU32("qty", 10, 40),
                           Predicate::RangeF64("tax", 0.0, 0.05)})
                  .GroupByAgg({"shipmode", "status"},
                              {Agg::Min("qty"), Agg::Max("qty"),
                               Agg::Avg("qty"), Agg::Count()})
                  .OrderBy("count", /*descending=*/true)
                  .Limit(5)
                  .Build();
  CCDB_CHECK(rich.ok());
  auto rich_res = Execute(*rich);
  CCDB_CHECK(rich_res.ok());
  double q3_ms = t_q3.ElapsedMillis();
  const auto& g_mode =
      rich_res->columns[*rich_res->ColumnIndex("shipmode")].str_values;
  const auto& g_min = rich_res->columns[*rich_res->ColumnIndex("min")].u32_values;
  const auto& g_max = rich_res->columns[*rich_res->ColumnIndex("max")].u32_values;
  const auto& g_avg = rich_res->columns[*rich_res->ColumnIndex("avg")].f64_values;
  const auto& g_cnt =
      rich_res->columns[*rich_res->ColumnIndex("count")].i64_values;
  std::printf("  %.2f ms; top (shipmode, status) groups by count:\n", q3_ms);
  for (size_t i = 0; i < rich_res->num_rows(); ++i) {
    std::printf("  %-8s min %2u  max %2u  avg %5.2f  (%lld items)\n",
                g_mode[i].c_str(), g_min[i], g_max[i], g_avg[i],
                (long long)g_cnt[i]);
  }

  // ---- query 4: the typed expression API ----------------------------------
  //   SELECT supp, SUM(qty), COUNT(*) FROM item
  //   WHERE shipmode IN ('MAIL', 'RAIL') OR (qty >= 45 AND NOT status = 'F')
  //   GROUP BY supp HAVING SUM(qty) >= 1000
  //   ORDER BY sum DESC LIMIT 5
  // Disjunctions, negation and HAVING — inexpressible with the flat
  // Predicate conjunction — lower to the same candidate-list discipline:
  // each OR branch narrows its own sorted position list and the branches
  // merge-union, never materializing an intermediate BAT; Having filters
  // the aggregate output in place on its owned columns.
  std::printf("\nQ4: SUM(qty) BY supp WHERE shipmode IN {MAIL, RAIL} OR "
              "(qty >= 45 AND status != 'F') HAVING sum >= 1000\n");
  WallTimer t_q4;
  auto q4 = QueryBuilder(table)
                .Filter(InStr(Col("shipmode"), {"MAIL", "RAIL"}) ||
                        (Col("qty") >= 45u && !(Col("status") == "F")))
                .GroupBySum("supp", "qty")
                .Having(Col("sum") >= 1000u)
                .OrderBy("sum", /*descending=*/true)
                .Limit(5)
                .Build();
  CCDB_CHECK(q4.ok());
  Planner q4_planner;
  auto q4_physical = q4_planner.Lower(*q4);
  CCDB_CHECK(q4_physical.ok());
  auto q4_res = q4_physical->Execute();
  CCDB_CHECK(q4_res.ok());
  double q4_ms = t_q4.ElapsedMillis();
  std::printf("%s", q4_physical->ExplainFilters().c_str());
  const auto& q4_supp = q4_res->columns[*q4_res->ColumnIndex("supp")].u32_values;
  const auto& q4_sum = q4_res->columns[*q4_res->ColumnIndex("sum")].i64_values;
  std::printf("  %.2f ms; top suppliers:\n", q4_ms);
  for (size_t i = 0; i < q4_res->num_rows(); ++i) {
    std::printf("  supp %3u  sum(qty) = %lld\n", q4_supp[i],
                (long long)q4_sum[i]);
  }
  return 0;
}
