// Cache explorer: measure THIS machine the way the paper measured the
// Origin2000.
//
//   1. Calibrate the host: latency curve over growing working sets,
//      derived lL2/lMem/lTLB (paper footnote 4).
//   2. Re-run the paper's §2 stride-scan experiment on the host and on the
//      simulated Origin2000, side by side.
//   3. Show the same experiment through perf_event hardware counters when
//      the environment allows it.
#include <cstdio>

#include "algo/stride_scan.h"
#include "mem/hw_counters.h"
#include "model/calibrator.h"
#include "util/aligned.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace ccdb;

int main() {
  // ---- 1. calibration ------------------------------------------------------
  std::printf("calibrating host (pointer-chase latency curve)...\n\n");
  CalibrationReport rep = Calibrate();
  TablePrinter curve({"working set (KB)", "ns/load"});
  for (const auto& pt : rep.latency_curve) {
    curve.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(
                      pt.working_set_bytes / 1024)),
                  TablePrinter::Fmt(pt.ns_per_access, 2)});
  }
  curve.Print(stdout);
  std::printf("\nderived: L1 hit %.1f ns, lL2 %.1f ns, lMem %.1f ns, "
              "lTLB ~%.1f ns\n",
              rep.l1_ns, rep.l2_ns, rep.mem_ns, rep.tlb_ns);
  std::printf("paper's Origin2000: lL2 24 ns, lMem 412 ns, lTLB 228 ns\n");

  // ---- 2. the §2 experiment: host vs simulated Origin2000 ------------------
  constexpr size_t kIters = 200000;
  AlignedBuffer buf(kIters * 256 + 4096, 4096);
  for (size_t i = 0; i < buf.size(); i += 4096) buf.data()[i] = 1;
  DirectMemory direct;
  MachineProfile origin = MachineProfile::Origin2000();

  std::printf("\nFigure-3 scan, host measured vs simulated Origin2000 stalls:\n");
  TablePrinter scan({"stride", "host_ms", "origin2k_sim_stall_ms"});
  for (size_t stride : {1u, 8u, 32u, 64u, 128u, 256u}) {
    double host_ms = MinTimeMillis(3, [&] {
      volatile uint64_t sink =
          StrideScanSum(buf.data(), buf.size(), stride, kIters, direct);
      (void)sink;
    });
    MemoryHierarchy h(origin);
    SimulatedMemory sim(&h);
    StrideScanSum(buf.data(), buf.size(), stride, kIters / 10, sim);
    double stall_ms = h.events().StallNanos(origin.lat) * 10 * 1e-6;
    scan.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(stride)),
                 TablePrinter::Fmt(host_ms, 3),
                 TablePrinter::Fmt(stall_ms, 1)});
  }
  scan.Print(stdout);

  // ---- 3. hardware counters, if the kernel allows --------------------------
  HwCounters hw;
  Status st = hw.Open();
  if (!st.ok()) {
    std::printf("\nhardware counters: %s\n", st.ToString().c_str());
    return 0;
  }
  std::printf("\nhardware counters available — stride scan, measured events:\n");
  TablePrinter hwt({"stride", "cycles/iter", "L1miss/iter", "LLCmiss/iter",
                    "dTLBmiss/iter"});
  for (size_t stride : {1u, 32u, 128u, 256u}) {
    CCDB_CHECK(hw.Start().ok());
    volatile uint64_t sink =
        StrideScanSum(buf.data(), buf.size(), stride, kIters, direct);
    (void)sink;
    uint64_t cycles = 0;
    auto ev = hw.Stop(&cycles);
    CCDB_CHECK(ev.ok());
    auto per = [&](uint64_t v) {
      return TablePrinter::Fmt(static_cast<double>(v) / kIters, 3);
    };
    hwt.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(stride)),
                per(cycles), per(ev->l1_misses), per(ev->l2_misses),
                per(ev->tlb_misses)});
  }
  hwt.Print(stdout);
  return 0;
}
