// Join tuning walkthrough: how the radix-bits knob trades clustering cost
// against join-phase locality (§3.4.4), and how well the analytical model
// predicts the sweet spot on a machine profile.
//
// Sweeps B for both radix-join and partitioned hash-join on one relation
// size, prints measured vs model cost, then shows what each named paper
// strategy (phash L2 / TLB / L1, radix 8, ...) would pick here.
#include <cmath>
#include <cstdio>

#include "algo/partitioned_hash_join.h"
#include "algo/radix_join.h"
#include "model/strategy.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace ccdb;

int main() {
  constexpr size_t kC = 1 << 20;
  MachineProfile machine = MachineProfile::Origin2000();
  CostModel model(machine);
  std::printf("tuning an equi-join of two %zu-tuple relations "
              "(model profile: %s)\n\n", kC, machine.name.c_str());

  auto values = UniqueU32(kC, 77);
  std::vector<Bun> l(kC), r(kC);
  for (size_t i = 0; i < kC; ++i) l[i] = {static_cast<oid_t>(i), values[i]};
  Rng rng(78);
  Shuffle(values, rng);
  for (size_t i = 0; i < kC; ++i)
    r[i] = {static_cast<oid_t>(1 << 24 | i), values[i]};
  DirectMemory mem;

  TablePrinter table({"bits", "passes", "tuples/cluster", "phash_ms",
                      "phash_model_ms", "radix_ms", "radix_model_ms"});
  for (int bits = 0; bits <= 20; bits += 2) {
    int passes = model.OptimalPasses(bits);
    JoinStats ps;
    auto ph = PartitionedHashJoin(std::span<const Bun>(l),
                                  std::span<const Bun>(r), bits, passes, mem,
                                  &ps);
    CCDB_CHECK(ph.ok() && ph->size() == kC);

    // Radix-join only where the nested loop is affordable (cluster <= 1024).
    std::string radix_ms = "-";
    if (kC / std::exp2(bits) <= 1024) {
      JoinStats rs;
      auto rj = RadixJoin(std::span<const Bun>(l), std::span<const Bun>(r),
                          bits, passes, mem, &rs);
      CCDB_CHECK(rj.ok() && rj->size() == kC);
      radix_ms = TablePrinter::Fmt(rs.total_ms(), 1);
    }
    table.AddRow({TablePrinter::Fmt(bits), TablePrinter::Fmt(passes),
                  TablePrinter::Fmt(kC / std::exp2(bits), 1),
                  TablePrinter::Fmt(ps.total_ms(), 1),
                  TablePrinter::Fmt(model.Millis(model.TotalPhashJoin(bits, kC)), 1),
                  radix_ms,
                  TablePrinter::Fmt(model.Millis(model.TotalRadixJoin(bits, kC)), 1)});
  }
  table.Print(stdout);

  std::printf("\nwhat the paper's named strategies pick for C=%zu:\n", kC);
  for (JoinStrategy s : {JoinStrategy::kPhashL2, JoinStrategy::kPhashTLB,
                         JoinStrategy::kPhashL1, JoinStrategy::kPhashMin,
                         JoinStrategy::kRadix8, JoinStrategy::kBest}) {
    JoinPlan p = PlanJoin(s, kC, machine);
    std::printf("  %-10s -> %s join, B=%2d, %d pass(es), model %.1f ms\n",
                JoinStrategyName(s),
                p.use_radix_join ? "radix" : "phash", p.bits, p.passes,
                p.predicted_ms);
  }
  std::printf(
      "\nReading the table: at B=0 the join trashes every cache level; too\n"
      "many bits waste clustering passes and hash-table setups. The model\n"
      "column should bottom out at the same B region as the measured one.\n");
  return 0;
}
