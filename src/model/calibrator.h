// Runtime calibration of the host's memory hierarchy, in the spirit of the
// paper's footnote-4 calibration ("we calibrated lTLB=228ns, lL2=24ns,
// lMem=412ns, wc=50ns") and of the Calibrator tool the authors later
// released. Uses a dependent-load pointer chase so the measured latency is
// the true (unoverlapped) access latency.
#ifndef CCDB_MODEL_CALIBRATOR_H_
#define CCDB_MODEL_CALIBRATOR_H_

#include <cstdint>
#include <vector>

#include "mem/machine.h"
#include "util/status.h"

namespace ccdb {

struct CalibrationPoint {
  size_t working_set_bytes = 0;
  double ns_per_access = 0;
};

struct CalibrationReport {
  /// Latency curve: random pointer chase over growing working sets.
  std::vector<CalibrationPoint> latency_curve;
  /// Estimated latencies (plateau detection over the curve).
  double l1_ns = 0;    ///< hit latency of L1 (smallest working sets)
  double l2_ns = 0;    ///< lL2: L1-miss penalty
  double mem_ns = 0;   ///< lMem: L2-miss penalty
  double tlb_ns = 0;   ///< lTLB estimate (page-stride chase)
  /// Cache geometry as reported by the OS (sysconf), 0 when unknown.
  size_t l1_bytes = 0, l1_line = 0, l2_bytes = 0, l2_line = 0;
};

/// Measures one random pointer chase: `ws_bytes` working set, one pointer
/// per `stride_bytes`. Returns ns per dependent load.
double MeasureChaseNs(size_t ws_bytes, size_t stride_bytes,
                      size_t iterations = 1 << 20);

/// The host's L2 capacity as the calibration layer measures it (OS-reported
/// geometry, the same source CalibrationReport::l2_bytes uses). Cached
/// after the first call — cheap enough to consult per plan — and 0 when the
/// platform doesn't report cache sizes, in which case callers fall back to
/// their static MachineProfile. Consumed by DefaultScanChunkRows
/// (model/planner.h) to size cache-resident scan chunks for the actual
/// host instead of the generic profile.
size_t MeasuredL2CacheBytes();

/// The host's large-copy bandwidth as ns per byte — the price of moving
/// one payload byte through an in-process exchange edge (dist/), measured
/// with a memory-to-memory copy over an L2-spilling buffer. Cached after
/// the first call (one ~milliseconds measurement per process); returns 0
/// when the clock cannot resolve the copy, in which case callers fall back
/// to a latency-derived estimate from their MachineProfile. Consumed by
/// the planner's exchange transfer term (CostModel::Transfer).
double MeasuredCopyNsPerByte();

/// The host's TLB as measured by a differential page-stride pointer chase
/// (the Calibrator tool's method): for a growing number of pages P, chase
/// P slots spread one per page (stride = page + line, so cache sets do not
/// alias) and P slots packed line-dense (same cache footprint, ~no TLB
/// pressure); the latency difference isolates translation. The reach
/// plateau gives `entries`, each jump in the difference curve is a `level`,
/// and the tail plateau is the full page-walk cost `walk_ns`.
struct TlbInfo {
  size_t entries = 0;     ///< total reach in pages (largest TLB level)
  int levels = 0;         ///< distinct latency steps seen in the curve
  size_t page_bytes = 0;  ///< base page size the probe ran on
  double walk_ns = 0;     ///< full page-walk cost past all TLB levels
  bool measured = false;  ///< false: probe inconclusive (noisy host/VM) —
                          ///< callers fall back to their static profile
};

/// Measures (once per process, cached like MeasuredL2CacheBytes) the host
/// TLB geometry. The probe buffer is forced onto base pages
/// (HugePolicy::kDisable) so THP=always hosts cannot silently void it.
const TlbInfo& MeasuredTlbGeometry();

/// The planner's default host profile: GenericX86 geometry refined with
/// sysconf cache sizes, a quick 3-point latency probe (L1/L2/memory) and
/// MeasuredTlbGeometry(). Cached after the first call. Falls back to plain
/// GenericX86 when measurement is unavailable or inconsistent (and always
/// under CCDB_NO_CALIBRATION=1, the deterministic-CI escape hatch).
const MachineProfile& MeasuredHostProfile();

/// Runs the full calibration (sub-second with default settings).
CalibrationReport Calibrate();

/// A MachineProfile for the host: geometry from sysconf (falling back to
/// GenericX86 values), latencies from Calibrate().
MachineProfile CalibratedHostProfile();

}  // namespace ccdb

#endif  // CCDB_MODEL_CALIBRATOR_H_
