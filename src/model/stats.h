// Column statistics — the "estimate" half of the planner's
// estimate-decide-verify loop. The paper's cost models (§2, §3.4) price an
// operator *given* its input cardinality; before this subsystem the planner
// only learned cardinalities by draining inputs. ColumnStats summarizes a
// stored column (row/null counts, min-max range, distinct count) cheaply
// enough to compute lazily per Table and cache, so the planner can predict
// selectivities, join output sizes and group counts before running anything
// (model/estimator.h consumes these).
//
// Distinct counting is exact up to a small bound (a hash set), then
// degrades to a HyperLogLog-style sketch (256 registers, ~6.5% standard
// error) — the same "cheap summary, never a second scan" discipline the
// paper applies to memory traffic.
#ifndef CCDB_MODEL_STATS_H_
#define CCDB_MODEL_STATS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace ccdb {

class Table;

/// Summary of one stored column. Numeric domains (u32/i64/f64, and the
/// dictionary codes of an encoded string column) carry a min-max range as
/// doubles — exact for u32 codes/values, approximate beyond 2^53, which is
/// fine for selectivity arithmetic. Raw string columns have no range.
struct ColumnStats {
  uint64_t row_count = 0;
  uint64_t null_count = 0;  ///< storage has no null bitmap yet; always 0

  /// Estimated distinct values; `distinct_exact` when it was counted
  /// exactly (small domains, or an encoded column's dictionary size).
  uint64_t distinct = 0;
  bool distinct_exact = false;

  bool has_range = false;  ///< min/max below are valid
  double min = 0;
  double max = 0;

  /// True when the range and distinct count describe the 1-2 byte
  /// dictionary *codes* of an encoded string column (§3.1 predicate remap:
  /// selections run on codes, so estimates should too).
  bool encoded = false;

  /// Fraction of the domain [min, max] a closed value range [lo, hi]
  /// covers, clamped to [0, 1]. Integral domains count lattice points
  /// ((hi-lo+1) / (max-min+1)); continuous ones use length ratio. With no
  /// range (raw strings, empty column) returns `fallback`.
  double RangeFraction(double lo, double hi, bool integral,
                       double fallback) const;
};

/// Streaming distinct-count estimator: exact (hash set) until
/// `kExactLimit` distinct hashes were seen, then a fixed 256-register
/// HyperLogLog over the same 64-bit hashes. Feed pre-hashed values
/// (Mix64 below) so every physical type reduces to the same stream.
class DistinctCounter {
 public:
  static constexpr size_t kExactLimit = 4096;

  void Add(uint64_t hash);
  bool exact() const { return !sketching_; }
  uint64_t Estimate() const;

  /// SplitMix64 — the avalanche-quality hash the counter expects.
  static uint64_t Mix64(uint64_t x);

 private:
  void Degrade();  // exact set -> sketch

  bool sketching_ = false;
  std::unordered_set<uint64_t> exact_;
  std::vector<uint8_t> registers_;  // 256 HLL registers once sketching
};

/// Computes the stats of column `col` with one scan (no allocation beyond
/// the counter). Encoded string columns are summarized over their codes
/// (distinct = dictionary size, exact).
StatusOr<ColumnStats> ComputeColumnStats(const Table& table, size_t col);

}  // namespace ccdb

#endif  // CCDB_MODEL_STATS_H_
