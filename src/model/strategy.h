// Join strategy selection (§3.4.4): the four named strategies (the
// "diagonals" of Figs. 10-12) plus the empirical optima and the model-driven
// "best" choice the paper's final comparison (Fig. 13) sweeps over.
#ifndef CCDB_MODEL_STRATEGY_H_
#define CCDB_MODEL_STRATEGY_H_

#include <string>

#include "model/cost_model.h"

namespace ccdb {

enum class JoinStrategy {
  kSortMerge,   ///< sort both, merge (baseline)
  kSimpleHash,  ///< non-partitioned bucket-chained hash join (baseline)
  kPhashL2,     ///< B = log2(C*12 / ||L2||): inner cluster + table fits L2
                ///< (the [SKN94] setting)
  kPhashTLB,    ///< B = log2(C*12 / ||TLB||): cluster spans <= |TLB| pages
  kPhashL1,     ///< B = log2(C*12 / ||L1||): cluster fits L1 (needs
                ///< multi-pass radix-cluster)
  kPhash256,    ///< clusters of ~256 tuples
  kPhashMin,    ///< clusters of ~200 tuples: the paper's empirical optimum
  kRadix8,      ///< radix-join with ~8 tuples per cluster
  kRadixMin,    ///< radix-join with ~4 tuples per cluster (slightly better)
  kBest,        ///< model-driven argmin over algorithm and B
};

const char* JoinStrategyName(JoinStrategy s);

/// Resolved physical plan for one equi-join.
struct JoinPlan {
  JoinStrategy strategy = JoinStrategy::kBest;
  bool use_radix_join = false;  ///< radix-join vs partitioned hash-join
  int bits = 0;
  int passes = 1;
  double predicted_ms = 0;  ///< model cost (0 for sort-merge: no model)
};

/// Computes the radix bits B the named strategy prescribes for cardinality
/// `c` on `profile`'s geometry. Returns 0 bits for the baselines.
int StrategyBits(JoinStrategy s, uint64_t c, const MachineProfile& profile);

/// Resolves a full plan: bits via StrategyBits (or model argmin for kBest),
/// passes via CostModel::OptimalPasses, predicted cost via the model.
JoinPlan PlanJoin(JoinStrategy s, uint64_t c, const MachineProfile& profile);

}  // namespace ccdb

#endif  // CCDB_MODEL_STRATEGY_H_
