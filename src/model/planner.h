// Planner: lowers a validated LogicalPlan to a tree of physical operators
// (exec/operator.h), consulting the memory-access cost model per join node
// — each JoinOp gets its JoinPlan from PlanJoin() at the *actual* inner
// cardinality observed at Open() time, so a selection below a join changes
// the strategy the model picks for that node (§3.4.4 applied per operator
// instead of per call site).
#ifndef CCDB_MODEL_PLANNER_H_
#define CCDB_MODEL_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/result.h"
#include "mem/machine.h"

namespace ccdb {

struct PlannerOptions {
  MachineProfile profile = MachineProfile::GenericX86();
  /// Execution knobs (exec/exec_context.h): scan chunking and the
  /// parallelism the lowered operators run with.
  ExecOptions exec;
};

/// The cache-sized scan chunk used when ExecOptions::scan_chunk_rows is 0:
/// sized so a morsel's working set (candidate list + a few gathered
/// columns, ~16 bytes/row) fills about half of the L2, keeping chunk state
/// cache-resident while it pipelines through select and join — which is
/// what lets chunked mode beat full materialization. The L2 capacity comes
/// from the Calibrator's measured host geometry when the platform reports
/// one (MeasuredL2CacheBytes, model/calibrator.h), falling back to the
/// static machine profile. This is the *per-worker* morsel size; the
/// planner multiplies it by the resolved parallelism so each chunk carries
/// one such morsel per worker.
size_t DefaultScanChunkRows(const MachineProfile& profile);

/// Per-filter diagnostics the planner records while lowering a Select or
/// Having node: the normalized (NNF) expression and the
/// selectivity-ordered conjunct evaluation order (exec/expr.h,
/// ConjunctRank). Ordered left-to-right, bottom-up over the logical tree,
/// like PhysicalPlan::joins().
struct FilterNodeInfo {
  const char* node = "select";  // "select" | "having"
  std::string normalized;       // NNF rendering, conjuncts in eval order
  std::vector<std::string> conjuncts;  // one entry per fused pass, in order
  std::vector<int> ranks;              // ConjunctRank per conjunct
};

/// An executable physical plan. Move-only; run with Execute(). The logical
/// plan's tables must outlive it.
class PhysicalPlan {
 public:
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  /// Open/Next/Close loop over the operator tree, materializing the output.
  StatusOr<QueryResult> Execute();

  /// Per-join diagnostics: inner cardinality, the JoinPlan the cost model
  /// chose, and accumulated kernel timings. Populated during Execute()
  /// (join plans are resolved at Open() time); ordered left-to-right,
  /// bottom-up over the logical tree.
  const std::vector<JoinNodeInfo>& joins() const { return *joins_; }

  /// Human-readable summary of the join decisions (after Execute()).
  std::string ExplainJoins() const;

  /// Per-filter diagnostics: how each Select/Having expression was
  /// normalized and which conjunct order the lowering chose. Resolved at
  /// Lower() time (filters need no runtime cardinality).
  const std::vector<FilterNodeInfo>& filters() const { return filters_; }

  /// Human-readable summary of the filter lowering: one block per
  /// Select/Having node with the normalized tree and the
  /// selectivity-ordered evaluation order.
  std::string ExplainFilters() const;

  /// The resolved execution context the operators run with.
  const ExecContext& context() const { return *ctx_; }

 private:
  friend class Planner;
  PhysicalPlan(std::unique_ptr<Operator> root,
               std::vector<PlanColumn> output_schema,
               std::unique_ptr<std::vector<JoinNodeInfo>> joins,
               std::vector<FilterNodeInfo> filters,
               std::unique_ptr<ExecContext> ctx)
      : root_(std::move(root)),
        output_schema_(std::move(output_schema)),
        joins_(std::move(joins)),
        filters_(std::move(filters)),
        ctx_(std::move(ctx)) {}

  std::unique_ptr<Operator> root_;
  std::vector<PlanColumn> output_schema_;
  std::unique_ptr<std::vector<JoinNodeInfo>> joins_;  // stable addresses
  std::vector<FilterNodeInfo> filters_;
  std::unique_ptr<ExecContext> ctx_;                  // borrowed by operators
};

class Planner {
 public:
  explicit Planner(PlannerOptions options = {}) : options_(options) {}

  /// Lowers logical nodes 1:1 to physical operators. The returned plan
  /// borrows the logical plan's tables (not the LogicalPlan itself).
  StatusOr<PhysicalPlan> Lower(const LogicalPlan& plan) const;

 private:
  PlannerOptions options_;
};

/// One-shot convenience: lower + execute.
StatusOr<QueryResult> Execute(const LogicalPlan& plan,
                              const PlannerOptions& options = {});

}  // namespace ccdb

#endif  // CCDB_MODEL_PLANNER_H_
