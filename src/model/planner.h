// Planner: lowers a validated LogicalPlan to a tree of physical operators
// (exec/operator.h) under an estimate-decide-verify discipline:
//
//  * estimate — column statistics (model/stats.h) feed the cardinality
//    estimator (model/estimator.h) for every node: selectivities, join
//    output sizes, grouped cardinalities;
//  * decide — commutative inner-join chains are reordered greedily by
//    estimated intermediate size, every operator gets a §2/§3.4 cost
//    prediction at its *estimated* cardinality, and pipeline breakers are
//    pre-sized from the estimates (group tables, join match buffers);
//  * verify — each JoinOp still asks the cost model for its JoinPlan at
//    the *actual* drained inner cardinality at Open() time (§3.4.4 per
//    operator), and Execute() records measured wall time and row counts
//    next to every prediction (ExplainCosts()).
#ifndef CCDB_MODEL_PLANNER_H_
#define CCDB_MODEL_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "dist/exchange.h"
#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/result.h"
#include "mem/hierarchy.h"
#include "mem/machine.h"
#include "model/calibrator.h"

namespace ccdb {

struct PlannerOptions {
  /// Cost-model machine. Defaults to the Calibrator's measured host profile
  /// (sysconf geometry + probed latencies + measured TLB entry count and
  /// page-walk cost, cached per process; model/calibrator.h), so radix-bits
  /// choices use the real log2(|TLB|) instead of GenericX86's 64 entries.
  /// Falls back to GenericX86 when the host cannot be measured, and tests
  /// that assert exact model numbers pass an explicit static profile.
  MachineProfile profile = MeasuredHostProfile();
  /// Execution knobs (exec/exec_context.h): scan chunking and the
  /// parallelism the lowered operators run with.
  ExecOptions exec;
  /// Reorder commutative inner-join chains by estimated intermediate
  /// cardinality before lowering (visible in ExplainJoins()). Row order of
  /// the result may differ from the written order; row content never does.
  bool reorder_joins = true;
};

/// The cache-sized scan chunk used when ExecOptions::scan_chunk_rows is 0:
/// sized so a morsel's working set (candidate list + a few gathered
/// columns, ~16 bytes/row) fills about half of the L2, keeping chunk state
/// cache-resident while it pipelines through select and join — which is
/// what lets chunked mode beat full materialization. The L2 capacity comes
/// from the Calibrator's measured host geometry when the platform reports
/// one (MeasuredL2CacheBytes, model/calibrator.h), falling back to the
/// static machine profile. This is the *per-worker* morsel size; the
/// planner multiplies it by the resolved parallelism so each chunk carries
/// one such morsel per worker.
size_t DefaultScanChunkRows(const MachineProfile& profile);

/// Per-filter diagnostics the planner records while lowering a Select or
/// Having node: the normalized (NNF) expression and the
/// selectivity-ordered conjunct evaluation order (exec/expr.h,
/// ConjunctRank). Ordered left-to-right, bottom-up over the logical tree,
/// like PhysicalPlan::joins().
struct FilterNodeInfo {
  const char* node = "select";  // "select" | "having"
  std::string normalized;       // NNF rendering, conjuncts in eval order
  std::vector<std::string> conjuncts;  // one entry per fused pass, in order
  std::vector<int> ranks;              // ConjunctRank per conjunct
  double estimated_selectivity = 1.0;  // estimator's take on the whole expr
};

/// Predicted-vs-measured record for one physical operator. Predictions are
/// made at Lower() time from the *estimated* input cardinality using the
/// paper's models (§2 scan iterations for scans/selects/aggregates, §3.4
/// cluster+join for joins); actuals are recorded while Execute() runs.
/// `measured_inclusive_ns` includes the operator's whole subtree — the
/// exclusive time reported by ExplainCosts() subtracts the children.
struct OpCostInfo {
  std::string label;  // e.g. "Join(fk = id)" or "Select(v in [0, 99])"
  int depth = 0;      // root operator = 0
  int parent = -1;    // index into PhysicalPlan::costs(); -1 for the root

  // estimate + prediction (before execution):
  uint64_t estimated_rows = 0;  // output rows
  double predicted_cpu_ns = 0;
  double predicted_l1_misses = 0;
  double predicted_l2_misses = 0;
  double predicted_tlb_misses = 0;
  double predicted_ns = 0;  // cpu + miss events under the profile latencies

  // measured (after execution):
  uint64_t actual_rows = 0;
  double measured_inclusive_ns = 0;
};

/// An executable physical plan. Move-only; run with Execute(). The logical
/// plan's tables must outlive it.
class PhysicalPlan {
 public:
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  /// Open/Next/Close loop over the operator tree, materializing the output.
  StatusOr<QueryResult> Execute();

  /// Per-join diagnostics: estimated vs actual inner cardinality, the
  /// JoinPlan the cost model chose, and accumulated kernel timings.
  /// Estimates are filled at Lower() time, actuals during Execute() (join
  /// plans are resolved at Open()); ordered left-to-right, bottom-up over
  /// the *lowered* tree — after reordering, the order joins actually run.
  const std::vector<JoinNodeInfo>& joins() const { return *joins_; }

  /// Human-readable summary of the join decisions (after Execute()).
  std::string ExplainJoins() const;

  /// Per-filter diagnostics: how each Select/Having expression was
  /// normalized and which conjunct order the lowering chose. Resolved at
  /// Lower() time (filters need no runtime cardinality).
  const std::vector<FilterNodeInfo>& filters() const { return filters_; }

  /// Per-exchange diagnostics (dist/exchange.h): the repartition-vs-
  /// broadcast decision, predicted transfer bytes/ns, and the bytes that
  /// actually crossed the transports (folded at Close()). Empty unless
  /// ExecOptions::partitions > 1 put exchanges in the plan.
  const std::vector<ExchangeNodeInfo>& exchanges() const {
    return *exchanges_;
  }

  /// Human-readable summary of the filter lowering: one block per
  /// Select/Having node with the normalized tree and the
  /// selectivity-ordered evaluation order.
  std::string ExplainFilters() const;

  /// Per-operator predicted-vs-measured cost records. Indexes are stable
  /// but NOT ordered parents-first (join-chain lowering allocates the
  /// spine after its base subtree); traverse the tree strictly via
  /// OpCostInfo::parent, as ExplainCosts() does.
  const std::vector<OpCostInfo>& costs() const { return *costs_; }

  /// Measured *exclusive* wall nanoseconds per cost record (inclusive time
  /// minus the children's inclusive time, clamped at 0) — the number
  /// ExplainCosts() prints next to each prediction, for callers (benches)
  /// that want it machine-readable. Indexed like costs().
  std::vector<double> MeasuredExclusiveNs() const;

  /// Whole-plan cost report: one line per operator with estimated vs
  /// actual rows and predicted (cycles + miss events -> ms) vs measured
  /// (exclusive wall) time, each op's translation (page-walk) share, and a
  /// plan-level predicted-vs-measured translation footer (hardware dTLB
  /// misses when perf is available). Predictions come from the estimates
  /// alone; run Execute() first to populate the measured side.
  std::string ExplainCosts() const;

  /// Hardware events (cycles, L1/LLC/dTLB misses) captured on the driver
  /// thread across the last successful Execute(), via perf_event_open.
  /// nullptr when perf is unavailable (locked-down kernels, containers) —
  /// ExplainCosts() then says so instead of printing fiction.
  const MemEvents* hw_events() const { return hw_valid_ ? &hw_events_ : nullptr; }

  /// The resolved execution context the operators run with.
  const ExecContext& context() const { return *ctx_; }

  /// Attaches (or detaches, with null) per-query scheduling state —
  /// deadline, cancellation, fair-share quantum — consulted at every morsel
  /// boundary of the next Execute(). `sched` must outlive that execution.
  /// This is how the serving layer reuses one cached PhysicalPlan across
  /// requests with different deadlines: rebind, execute, repeat.
  void BindSchedule(ScheduleContext* sched) { ctx_->sched = sched; }

 private:
  friend class Planner;
  PhysicalPlan(std::unique_ptr<Operator> root,
               std::vector<PlanColumn> output_schema,
               std::vector<size_t> output_map,
               std::unique_ptr<std::vector<JoinNodeInfo>> joins,
               std::vector<FilterNodeInfo> filters,
               std::unique_ptr<std::vector<OpCostInfo>> costs,
               std::unique_ptr<std::vector<ExchangeNodeInfo>> exchanges,
               std::unique_ptr<ExecContext> ctx, MachineProfile profile)
      : root_(std::move(root)),
        output_schema_(std::move(output_schema)),
        output_map_(std::move(output_map)),
        joins_(std::move(joins)),
        filters_(std::move(filters)),
        costs_(std::move(costs)),
        exchanges_(std::move(exchanges)),
        ctx_(std::move(ctx)),
        profile_(std::move(profile)) {}

  std::unique_ptr<Operator> root_;
  std::vector<PlanColumn> output_schema_;
  /// Chunk column index feeding output column i. Join reordering permutes
  /// the physical column order; this maps it back to the Build() schema.
  std::vector<size_t> output_map_;
  std::unique_ptr<std::vector<JoinNodeInfo>> joins_;  // stable addresses
  std::vector<FilterNodeInfo> filters_;
  std::unique_ptr<std::vector<OpCostInfo>> costs_;    // stable addresses
  std::unique_ptr<std::vector<ExchangeNodeInfo>> exchanges_;  // stable
  std::unique_ptr<ExecContext> ctx_;                  // borrowed by operators
  MachineProfile profile_;
  MemEvents hw_events_;     // driver-thread perf counters, last Execute()
  uint64_t hw_cycles_ = 0;
  bool hw_valid_ = false;
};

class Planner {
 public:
  explicit Planner(PlannerOptions options = {}) : options_(options) {}

  /// Lowers logical nodes to physical operators (1:1 except join-chain
  /// reordering). The returned plan borrows the logical plan's tables (not
  /// the LogicalPlan itself).
  StatusOr<PhysicalPlan> Lower(const LogicalPlan& plan) const;

 private:
  PlannerOptions options_;
};

/// One-shot convenience: lower + execute.
StatusOr<QueryResult> Execute(const LogicalPlan& plan,
                              const PlannerOptions& options = {});

}  // namespace ccdb

#endif  // CCDB_MODEL_PLANNER_H_
