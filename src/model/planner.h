// Planner: lowers a validated LogicalPlan to a tree of physical operators
// (exec/operator.h), consulting the memory-access cost model per join node
// — each JoinOp gets its JoinPlan from PlanJoin() at the *actual* inner
// cardinality observed at Open() time, so a selection below a join changes
// the strategy the model picks for that node (§3.4.4 applied per operator
// instead of per call site).
#ifndef CCDB_MODEL_PLANNER_H_
#define CCDB_MODEL_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/plan.h"
#include "exec/result.h"
#include "mem/machine.h"

namespace ccdb {

struct PlannerOptions {
  MachineProfile profile = MachineProfile::GenericX86();
  /// Rows per scan chunk. SIZE_MAX (default) executes whole-BAT-at-a-time,
  /// the paper's full-materialization model; smaller values pipeline chunks
  /// through non-breaking operators.
  size_t scan_chunk_rows = SIZE_MAX;
};

/// An executable physical plan. Move-only; run with Execute(). The logical
/// plan's tables must outlive it.
class PhysicalPlan {
 public:
  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  /// Open/Next/Close loop over the operator tree, materializing the output.
  StatusOr<QueryResult> Execute();

  /// Per-join diagnostics: inner cardinality, the JoinPlan the cost model
  /// chose, and accumulated kernel timings. Populated during Execute()
  /// (join plans are resolved at Open() time); ordered left-to-right,
  /// bottom-up over the logical tree.
  const std::vector<JoinNodeInfo>& joins() const { return *joins_; }

  /// Human-readable summary of the join decisions (after Execute()).
  std::string ExplainJoins() const;

 private:
  friend class Planner;
  PhysicalPlan(std::unique_ptr<Operator> root,
               std::vector<PlanColumn> output_schema,
               std::unique_ptr<std::vector<JoinNodeInfo>> joins)
      : root_(std::move(root)),
        output_schema_(std::move(output_schema)),
        joins_(std::move(joins)) {}

  std::unique_ptr<Operator> root_;
  std::vector<PlanColumn> output_schema_;
  std::unique_ptr<std::vector<JoinNodeInfo>> joins_;  // stable addresses
};

class Planner {
 public:
  explicit Planner(PlannerOptions options = {}) : options_(options) {}

  /// Lowers logical nodes 1:1 to physical operators. The returned plan
  /// borrows the logical plan's tables (not the LogicalPlan itself).
  StatusOr<PhysicalPlan> Lower(const LogicalPlan& plan) const;

 private:
  PlannerOptions options_;
};

/// One-shot convenience: lower + execute.
StatusOr<QueryResult> Execute(const LogicalPlan& plan,
                              const PlannerOptions& options = {});

}  // namespace ccdb

#endif  // CCDB_MODEL_PLANNER_H_
