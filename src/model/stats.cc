#include "model/stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "exec/table.h"

namespace ccdb {

double ColumnStats::RangeFraction(double lo, double hi, bool integral,
                                  double fallback) const {
  if (!has_range) return fallback;
  if (hi < lo) return 0.0;
  double clo = std::max(lo, min);
  double chi = std::min(hi, max);
  if (chi < clo) return 0.0;
  double span = integral ? (max - min + 1.0) : (max - min);
  double overlap = integral ? (chi - clo + 1.0) : (chi - clo);
  if (span <= 0) return 1.0;  // single-value domain fully covered
  double f = overlap / span;
  return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
}

uint64_t DistinctCounter::Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

constexpr size_t kRegisters = 256;  // 2^8: HLL standard error ~ 1.04/sqrt(m)

/// Register index = top 8 hash bits; rank = leading-zero run of the rest.
uint8_t HllRank(uint64_t hash) {
  uint64_t rest = hash << 8 | 0x80;  // sentinel bit bounds the run at 56
  uint8_t rank = 1;
  while ((rest & (1ull << 63)) == 0) {
    ++rank;
    rest <<= 1;
  }
  return rank;
}

}  // namespace

void DistinctCounter::Degrade() {
  registers_.assign(kRegisters, 0);
  for (uint64_t h : exact_) {
    size_t reg = h >> 56;
    uint8_t rank = HllRank(h);
    if (rank > registers_[reg]) registers_[reg] = rank;
  }
  exact_.clear();
  sketching_ = true;
}

void DistinctCounter::Add(uint64_t hash) {
  if (!sketching_) {
    exact_.insert(hash);
    if (exact_.size() > kExactLimit) Degrade();
    return;
  }
  size_t reg = hash >> 56;
  uint8_t rank = HllRank(hash);
  if (rank > registers_[reg]) registers_[reg] = rank;
}

uint64_t DistinctCounter::Estimate() const {
  if (!sketching_) return exact_.size();
  // Standard HLL estimate with the small-range (linear counting) and
  // alpha bias corrections for m = 256.
  const double m = static_cast<double>(kRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double sum = 0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double est = alpha * m * m / sum;
  if (est <= 2.5 * m && zeros > 0) {
    est = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<uint64_t>(est + 0.5);
}

StatusOr<ColumnStats> ComputeColumnStats(const Table& table, size_t col) {
  if (col >= table.num_columns()) {
    return Status::InvalidArgument("ComputeColumnStats: column out of range");
  }
  ColumnStats s;
  s.row_count = table.num_rows();
  const Bat& bat = table.column_bat(col);
  const Column& tail = bat.tail();

  if (table.is_encoded(col)) {
    // Dictionary codes: the distinct count is the dictionary size, exactly,
    // and every code in [0, size) occurs (DictEncode builds the dictionary
    // from this very column).
    s.encoded = true;
    s.distinct = table.dict(col).size();
    s.distinct_exact = true;
    if (s.distinct > 0) {
      s.has_range = true;
      s.min = 0;
      s.max = static_cast<double>(s.distinct - 1);
    }
    return s;
  }

  DistinctCounter dc;
  switch (tail.type()) {
    case PhysType::kVoid: {
      // Virtual OIDs: dense ascending — everything is known analytically.
      s.distinct = s.row_count;
      s.distinct_exact = true;
      if (s.row_count > 0) {
        s.has_range = true;
        s.min = static_cast<double>(tail.GetIntegral(0));
        s.max = static_cast<double>(tail.GetIntegral(s.row_count - 1));
      }
      return s;
    }
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
    case PhysType::kI32: {
      uint64_t mn = UINT64_MAX, mx = 0;
      for (size_t i = 0; i < tail.size(); ++i) {
        uint64_t v = tail.GetIntegral(i);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        dc.Add(DistinctCounter::Mix64(v));
      }
      if (tail.size() > 0) {
        s.has_range = true;
        s.min = static_cast<double>(mn);
        s.max = static_cast<double>(mx);
      }
      break;
    }
    case PhysType::kI64: {
      auto v = tail.Span<int64_t>();
      int64_t mn = INT64_MAX, mx = INT64_MIN;
      for (int64_t x : v) {
        mn = std::min(mn, x);
        mx = std::max(mx, x);
        dc.Add(DistinctCounter::Mix64(static_cast<uint64_t>(x)));
      }
      if (!v.empty()) {
        s.has_range = true;
        s.min = static_cast<double>(mn);
        s.max = static_cast<double>(mx);
      }
      break;
    }
    case PhysType::kF64: {
      auto v = tail.Span<double>();
      double mn = 0, mx = 0;
      bool any = false;
      for (double x : v) {
        if (std::isnan(x)) continue;  // NaN joins no range
        if (!any || x < mn) mn = x;
        if (!any || x > mx) mx = x;
        any = true;
        uint64_t bits;
        std::memcpy(&bits, &x, sizeof(bits));
        dc.Add(DistinctCounter::Mix64(bits));
      }
      if (any) {
        s.has_range = true;
        s.min = mn;
        s.max = mx;
      }
      break;
    }
    case PhysType::kStr: {
      for (size_t i = 0; i < tail.size(); ++i) {
        std::string_view sv = tail.GetStr(i);
        uint64_t h = 1469598103934665603ull;  // FNV-1a over the bytes
        for (char c : sv) {
          h ^= static_cast<uint8_t>(c);
          h *= 1099511628211ull;
        }
        dc.Add(DistinctCounter::Mix64(h));
      }
      break;  // no numeric range for raw strings
    }
  }
  s.distinct = dc.Estimate();
  s.distinct_exact = dc.exact();
  return s;
}

}  // namespace ccdb
