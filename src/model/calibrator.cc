#include "model/calibrator.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "mem/arena.h"
#include "util/aligned.h"
#include "util/bits.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ccdb {

double MeasureChaseNs(size_t ws_bytes, size_t stride_bytes,
                      size_t iterations) {
  size_t slots = std::max<size_t>(ws_bytes / stride_bytes, 2);
  AlignedBuffer buf(slots * stride_bytes, 4096);

  // Build one random cycle over all slots (Sattolo's algorithm) so each
  // load depends on the previous one and covers the whole working set.
  std::vector<uint32_t> perm(slots);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(0xC0FFEE);
  for (size_t i = slots - 1; i > 0; --i) {
    size_t j = rng.NextBelow(i);  // j < i: guarantees a single cycle
    std::swap(perm[i], perm[j]);
  }
  auto slot_ptr = [&](size_t s) {
    return reinterpret_cast<uint64_t*>(buf.data() + s * stride_bytes);
  };
  for (size_t i = 0; i < slots; ++i) {
    size_t next = perm[i];
    *slot_ptr(i) = reinterpret_cast<uint64_t>(slot_ptr(next));
  }

  // Warm-up lap, then timed chase.
  volatile uint64_t* p = slot_ptr(0);
  for (size_t i = 0; i < slots; ++i) p = reinterpret_cast<uint64_t*>(*p);
  WallTimer t;
  for (size_t i = 0; i < iterations; ++i) {
    p = reinterpret_cast<uint64_t*>(*p);
  }
  double ns = static_cast<double>(t.ElapsedNanos()) /
              static_cast<double>(iterations);
  // Defeat dead-code elimination.
  if (reinterpret_cast<uint64_t>(p) == 1) std::abort();
  return ns;
}

namespace {

size_t SysconfOr(int name, size_t fallback) {
#ifdef _SC_LEVEL1_DCACHE_SIZE
  long v = sysconf(name);
  if (v > 0) return static_cast<size_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

size_t MeasuredL2CacheBytes() {
#ifdef _SC_LEVEL2_CACHE_SIZE
  static const size_t bytes = SysconfOr(_SC_LEVEL2_CACHE_SIZE, 0);
  return bytes;
#else
  return 0;
#endif
}

namespace {

double MeasureCopyNsPerByte() {
  // 8 MB source/destination: past L2 on any profiled machine, so the copy
  // streams through memory like an exchange payload does. Best of a few
  // reps filters scheduler noise.
  constexpr size_t kBytes = 8 * 1024 * 1024;
  constexpr int kReps = 5;
  AlignedBuffer src(kBytes, 4096), dst(kBytes, 4096);
  std::memset(src.data(), 0xA5, kBytes);
  double best_ns = 0;
  for (int r = 0; r < kReps; ++r) {
    WallTimer t;
    std::memcpy(dst.data(), src.data(), kBytes);
    double ns = static_cast<double>(t.ElapsedNanos());
    if (r == 0 || ns < best_ns) best_ns = ns;
    // Defeat dead-store elimination across reps.
    if (dst.data()[r] != 0xA5) std::abort();
  }
  return best_ns / static_cast<double>(kBytes);
}

}  // namespace

double MeasuredCopyNsPerByte() {
  static const double ns_per_byte = MeasureCopyNsPerByte();
  return ns_per_byte;
}

namespace {

/// Random chase over `slots` pointers placed `stride_bytes` apart in a
/// buffer that is pinned to base pages (arena block, HugePolicy::kDisable):
/// under THP=always, a malloc'd probe buffer would get huge-backed and the
/// TLB probe would see no misses at all.
double ChaseBasePagesNs(size_t slots, size_t stride_bytes, size_t iters) {
  slots = std::max<size_t>(slots, 2);
  size_t bytes = slots * stride_bytes;
  void* block = arena::AllocateBlock(bytes, arena::HugePolicy::kDisable);
  uint8_t* base = static_cast<uint8_t*>(block);

  std::vector<uint32_t> perm(slots);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(0xC0FFEE);
  for (size_t i = slots - 1; i > 0; --i) {
    size_t j = rng.NextBelow(i);  // Sattolo: j < i gives a single cycle
    std::swap(perm[i], perm[j]);
  }
  auto slot_ptr = [&](size_t s) {
    return reinterpret_cast<uint64_t*>(base + s * stride_bytes);
  };
  for (size_t i = 0; i < slots; ++i) {
    *slot_ptr(i) = reinterpret_cast<uint64_t>(slot_ptr(perm[i]));
  }

  volatile uint64_t* p = slot_ptr(0);
  for (size_t i = 0; i < slots; ++i) p = reinterpret_cast<uint64_t*>(*p);
  WallTimer t;
  for (size_t i = 0; i < iters; ++i) {
    p = reinterpret_cast<uint64_t*>(*p);
  }
  double ns =
      static_cast<double>(t.ElapsedNanos()) / static_cast<double>(iters);
  if (reinterpret_cast<uint64_t>(p) == 1) std::abort();
  arena::FreeBlock(block);
  return ns;
}

TlbInfo MeasureTlbGeometry() {
  TlbInfo info;
  info.page_bytes = arena::BasePageBytes();
  if (std::getenv("CCDB_NO_CALIBRATION") != nullptr) return info;

  size_t line = SysconfOr(
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
      _SC_LEVEL1_DCACHE_LINESIZE,
#else
      0,
#endif
      64);
  if (line == 0 || !IsPowerOfTwo(line)) line = 64;

  // Page counts to probe: dense enough around typical L1/L2 TLB sizes
  // (64, 1024, 1536, 2048) to bracket the reach within ~1.5x.
  static constexpr size_t kPages[] = {8,   12,  16,   24,   32,   48,  64,
                                      96,  128, 192,  256,  384,  512, 768,
                                      1024, 1536, 2048, 3072, 4096, 6144};
  constexpr size_t kIters = size_t{1} << 15;

  std::vector<double> diff;
  diff.reserve(std::size(kPages));
  for (size_t pages : kPages) {
    // TLB arm: one slot per page; page+line stride keeps the chased lines
    // from aliasing in the caches.
    double tlb_arm = ChaseBasePagesNs(pages, info.page_bytes + line, kIters);
    // Baseline arm: same number of cache lines, packed densely so the page
    // footprint stays tiny. The difference isolates translation cost.
    double base_arm = ChaseBasePagesNs(pages, line, kIters);
    diff.push_back(std::max(tlb_arm - base_arm, 0.0));
  }

  double range = *std::max_element(diff.begin(), diff.end());
  // Below ~3 ns of total translation signal the curve is noise (bare-metal
  // walk costs are >= tens of ns; tiny ranges happen under emulation or
  // clock trouble). Report "not measured" and let callers keep statics.
  if (range < 3.0) return info;

  // A level boundary is a jump of >= 25% of the full signal. The last jump
  // marks the end of total TLB reach; the tail median is the walk cost.
  size_t last_jump = 0;
  int levels = 0;
  for (size_t i = 0; i + 1 < diff.size(); ++i) {
    if (diff[i + 1] - diff[i] >= 0.25 * range) {
      last_jump = i;
      ++levels;
    }
  }
  if (levels == 0) return info;
  info.entries = kPages[last_jump];
  info.levels = levels;
  std::vector<double> tail(diff.begin() + static_cast<long>(last_jump) + 1,
                           diff.end());
  std::nth_element(tail.begin(), tail.begin() + tail.size() / 2, tail.end());
  info.walk_ns = tail[tail.size() / 2];
  info.measured = info.entries >= 8 && info.walk_ns > 0;
  return info;
}

}  // namespace

const TlbInfo& MeasuredTlbGeometry() {
  static const TlbInfo info = MeasureTlbGeometry();
  return info;
}

const MachineProfile& MeasuredHostProfile() {
  static const MachineProfile profile = [] {
    MachineProfile m = MachineProfile::GenericX86();
    if (std::getenv("CCDB_NO_CALIBRATION") != nullptr) return m;
    m.name = "measured-host";
#ifdef _SC_LEVEL1_DCACHE_SIZE
    size_t l1_bytes = SysconfOr(_SC_LEVEL1_DCACHE_SIZE, 0);
    size_t l1_line = SysconfOr(_SC_LEVEL1_DCACHE_LINESIZE, 0);
    size_t l2_bytes = SysconfOr(_SC_LEVEL2_CACHE_SIZE, 0);
    size_t l2_line = SysconfOr(_SC_LEVEL2_CACHE_LINESIZE, 0);
    if (l1_bytes != 0 && l1_line != 0 && IsPowerOfTwo(l1_line)) {
      m.l1.capacity_bytes = NextPowerOfTwo(l1_bytes);
      m.l1.line_bytes = l1_line;
    }
    if (l2_bytes != 0 && l2_line != 0 && IsPowerOfTwo(l2_line)) {
      m.l2.capacity_bytes = NextPowerOfTwo(l2_bytes);
      m.l2.line_bytes = l2_line;
    }
#endif
    // Quick 3-point latency probe (a few ms; the full Calibrate() curve is
    // for reports, this is the per-process planning default).
    constexpr size_t kQuickIters = size_t{1} << 16;
    size_t line = m.l1.line_bytes != 0 ? m.l1.line_bytes : 64;
    double l1_hit = MeasureChaseNs(16 * 1024, line, kQuickIters);
    double l2_hit = MeasureChaseNs(256 * 1024, line, kQuickIters);
    double mem_hit =
        MeasureChaseNs(32 * 1024 * 1024, line, kQuickIters);
    if (l1_hit > 0 && l2_hit > l1_hit && mem_hit > l2_hit) {
      m.lat.l2_ns = std::max(l2_hit - l1_hit, 0.5);
      m.lat.mem_ns = std::max(mem_hit - l2_hit, 1.0);
    } else {
      // Inconsistent probe (VM clock, contended host): keep the static
      // GenericX86 latencies, but still try the TLB geometry below.
      m.name = "measured-host(static-lat)";
    }
    const TlbInfo& tlb = MeasuredTlbGeometry();
    if (tlb.measured) {
      m.tlb.entries = tlb.entries;
      m.tlb.page_bytes = tlb.page_bytes;
      m.tlb.associativity = 0;
      m.lat.tlb_ns = std::max(tlb.walk_ns, 1.0);
    }
    // Sequential-miss cost from copy bandwidth: one line of streamed
    // payload, which the prefetcher overlaps — on out-of-order hosts this
    // is several times cheaper than the dependent-load lMem, and pricing
    // the models' sequential-sweep terms at lMem is exactly what made
    // their wall-clock predictions 5-15x pessimistic.
    double copy_ns_per_byte = MeasuredCopyNsPerByte();
    if (copy_ns_per_byte > 0) {
      double seq = copy_ns_per_byte * static_cast<double>(m.l2.line_bytes);
      if (seq < m.lat.mem_ns) m.lat.mem_seq_ns = std::max(seq, 0.5);
    }
    return m;
  }();
  return profile;
}

CalibrationReport Calibrate() {
  CalibrationReport rep;
#ifdef _SC_LEVEL1_DCACHE_SIZE
  rep.l1_bytes = SysconfOr(_SC_LEVEL1_DCACHE_SIZE, 0);
  rep.l1_line = SysconfOr(_SC_LEVEL1_DCACHE_LINESIZE, 0);
  rep.l2_bytes = SysconfOr(_SC_LEVEL2_CACHE_SIZE, 0);
  rep.l2_line = SysconfOr(_SC_LEVEL2_CACHE_LINESIZE, 0);
#endif
  size_t line = rep.l1_line != 0 ? rep.l1_line : 64;

  // Latency curve: 8 KB .. 64 MB working sets, one pointer per line so
  // every access misses spatially.
  constexpr size_t kIters = 1 << 19;
  for (size_t ws = 8 * 1024; ws <= 64 * 1024 * 1024; ws *= 2) {
    rep.latency_curve.push_back({ws, MeasureChaseNs(ws, line, kIters)});
  }

  // Plateau picks: smallest set = L1 hit; a set twice L1 (but well inside
  // L2) = L2 hit; the largest set = memory.
  auto at_ws = [&](size_t target) {
    double best = rep.latency_curve.front().ns_per_access;
    for (const auto& pt : rep.latency_curve) {
      if (pt.working_set_bytes <= target) best = pt.ns_per_access;
    }
    return best;
  };
  size_t l1 = rep.l1_bytes != 0 ? rep.l1_bytes : 32 * 1024;
  size_t l2 = rep.l2_bytes != 0 ? rep.l2_bytes : 1024 * 1024;
  rep.l1_ns = rep.latency_curve.front().ns_per_access;
  double l2_hit_ns = at_ws(std::max(l1 * 2, size_t{64} * 1024));
  double mem_hit_ns = rep.latency_curve.back().ns_per_access;
  // Penalties are measured latency minus the level above.
  rep.l2_ns = std::max(l2_hit_ns - rep.l1_ns, 0.5);
  rep.mem_ns = std::max(mem_hit_ns - l2_hit_ns, 1.0);
  (void)l2;

  // TLB estimate: chase with page stride over many pages (every access is a
  // TLB miss but the lines conflict little); subtract the memory latency.
  double page_chase = MeasureChaseNs(64 * 1024 * 1024, 4096, kIters / 4);
  rep.tlb_ns = std::max(page_chase - mem_hit_ns - rep.l2_ns - rep.l1_ns, 0.0);
  return rep;
}

MachineProfile CalibratedHostProfile() {
  CalibrationReport rep = Calibrate();
  MachineProfile m = MachineProfile::GenericX86();
  m.name = "calibrated-host";
  if (rep.l1_bytes != 0 && rep.l1_line != 0 &&
      IsPowerOfTwo(rep.l1_line)) {
    m.l1.capacity_bytes = NextPowerOfTwo(rep.l1_bytes);
    m.l1.line_bytes = rep.l1_line;
  }
  if (rep.l2_bytes != 0 && rep.l2_line != 0 &&
      IsPowerOfTwo(rep.l2_line)) {
    m.l2.capacity_bytes = NextPowerOfTwo(rep.l2_bytes);
    m.l2.line_bytes = rep.l2_line;
  }
  m.lat.l2_ns = rep.l2_ns;
  m.lat.mem_ns = rep.mem_ns;
  m.lat.tlb_ns = std::max(rep.tlb_ns, 1.0);
  return m;
}

}  // namespace ccdb
