#include "model/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "exec/shared_scan.h"
#include "mem/hw_counters.h"
#include "model/calibrator.h"
#include "model/cost_model.h"
#include "model/estimator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ccdb {

size_t DefaultScanChunkRows(const MachineProfile& profile) {
  // Prefer the host L2 the Calibrator measures (ROADMAP: tune the default
  // against measured geometry, not the static profile); fall back to the
  // profile when the platform doesn't report cache sizes.
  size_t l2_bytes = MeasuredL2CacheBytes();
  if (l2_bytes == 0) l2_bytes = profile.l2.capacity_bytes;
  size_t rows = l2_bytes / 2 / 16;
  if (rows < 4096) return 4096;
  if (rows > (size_t{1} << 20)) return size_t{1} << 20;
  return rows;
}

namespace {

size_t CountJoins(const LogicalNode& n) {
  size_t c = n.op == LogicalOp::kJoin ? 1 : 0;
  for (const auto& child : n.children) c += CountJoins(*child);
  return c;
}

size_t CountNodes(const LogicalNode& n) {
  size_t c = 1;
  for (const auto& child : n.children) c += CountNodes(*child);
  return c;
}

/// Nodes the planner may lower as an exchange (dist/exchange.h): joins and
/// group-bys. Bounds the extra OpCostInfo records (one transfer-term
/// annotation per exchange) and the ExchangeNodeInfo pool — both
/// preallocated because operators hold raw pointers into them.
size_t CountExchangeSites(const LogicalNode& n) {
  size_t c =
      n.op == LogicalOp::kJoin || n.op == LogicalOp::kGroupByAgg ? 1 : 0;
  for (const auto& child : n.children) c += CountExchangeSites(*child);
  return c;
}

// --- measured actuals --------------------------------------------------------

/// Decorator recording an operator's inclusive wall time (Open + every
/// Next + Close) and emitted rows into its OpCostInfo — the "verify" side
/// of every prediction. Children are wrapped too, so exclusive time is
/// recovered by subtracting child records (ExplainCosts).
class TimedOperator : public Operator {
 public:
  TimedOperator(std::unique_ptr<Operator> inner, OpCostInfo* info)
      : inner_(std::move(inner)), info_(info) {}

  Status Open() override {
    WallTimer t;
    Status st = inner_->Open();
    info_->measured_inclusive_ns += static_cast<double>(t.ElapsedNanos());
    return st;
  }
  StatusOr<bool> Next(Chunk* out) override {
    WallTimer t;
    StatusOr<bool> more = inner_->Next(out);
    info_->measured_inclusive_ns += static_cast<double>(t.ElapsedNanos());
    if (more.ok() && *more) info_->actual_rows += out->rows;
    return more;
  }
  void Close() override {
    WallTimer t;
    inner_->Close();
    info_->measured_inclusive_ns += static_cast<double>(t.ElapsedNanos());
  }

 private:
  std::unique_ptr<Operator> inner_;
  OpCostInfo* info_;
};

// --- predictions (§2 scan model generalized per operator) -------------------

/// §2 applied to `rows` touches of a column stored at `stride` bytes per
/// tuple: per iteration ML1 = min(s/LS_L1, 1), ML2 = min(s/LS_L2, 1), plus
/// the TLB analogue, and wscan of pure CPU work.
ModelPrediction ScanRowsPrediction(const MachineProfile& m, double rows,
                                   size_t stride) {
  ModelPrediction p;
  double s = static_cast<double>(stride);
  p.cpu_ns = rows * m.cost.wscan_ns;
  p.l1_misses =
      rows * std::min(s / static_cast<double>(m.l1.line_bytes), 1.0);
  p.l2_misses =
      rows * std::min(s / static_cast<double>(m.l2.line_bytes), 1.0);
  p.l2_seq_misses = p.l2_misses;  // a scan is one prefetchable sweep
  p.tlb_misses =
      rows * std::min(s / static_cast<double>(m.tlb.page_bytes), 1.0);
  return p;
}

/// Scan stride of a visible column, from its base-table storage (encoded
/// string columns scan their 1-2 byte codes). Derived columns (aggregate
/// output) default to 8 bytes — their owned i64/f64 spans.
size_t ColumnStride(const ColumnSourceMap& src, const std::string& name) {
  auto it = src.find(name);
  if (it == src.end() || it->second.table == nullptr) return 8;
  return std::max<size_t>(it->second.table->column_value_bytes(it->second.col),
                          1);
}

/// Predicted cost of one filter pass: the first leaf of a conjunction scans
/// all `rows` candidates of its column, every later conjunct touches only
/// the estimated survivors; disjunction branches each scan the full input.
/// Mirrors exactly how SelectOp executes (fused narrowing / branch union).
ModelPrediction PredictExprCost(const Expr& e, double rows,
                                const ColumnSourceMap& src,
                                const MachineProfile& m) {
  ModelPrediction p;
  switch (e.kind) {
    case Expr::Kind::kAnd: {
      double surviving = rows;
      for (const Expr& c : e.children) {
        p += PredictExprCost(c, surviving, src, m);
        surviving *= EstimateExprSelectivity(c, src);
      }
      return p;
    }
    case Expr::Kind::kOr: {
      for (const Expr& c : e.children) {
        p += PredictExprCost(c, rows, src, m);
      }
      return p;
    }
    case Expr::Kind::kNot: {
      for (const Expr& c : e.children) {
        p += PredictExprCost(c, rows, src, m);
      }
      return p;
    }
    default:
      return ScanRowsPrediction(m, rows, ColumnStride(src, e.column));
  }
}

/// §3.4 prediction of a whole join for a resolved plan, composed for the
/// asymmetric cardinalities the estimator supplies (the paper's Total*
/// formulas assume |L| = |R| = C): each relation is clustered at its own
/// cardinality and the join phase runs at the probe cardinality (the
/// per-probe-tuple term dominates it). Sort-merge, which the paper does
/// not model, gets an n-log-n CPU estimate.
ModelPrediction JoinModelPrediction(const CostModel& cm, const JoinPlan& plan,
                                    uint64_t c_inner, uint64_t c_probe) {
  switch (plan.strategy) {
    case JoinStrategy::kSortMerge: {
      ModelPrediction p;
      for (double n : {static_cast<double>(c_inner),
                       static_cast<double>(c_probe)}) {
        if (n > 0) {
          p.cpu_ns +=
              n * std::log2(std::max(n, 2.0)) * cm.profile().cost.wscan_ns;
          p.l2_misses += n;  // the sort's random access over the relation
        }
      }
      return p;
    }
    case JoinStrategy::kSimpleHash:
      // One table over the whole inner (B = 0 — one cluster), no
      // clustering cost.
      return cm.PhashJoinPhaseAsym(0, c_inner, c_probe);
    default: {
      ModelPrediction p = cm.Cluster(plan.passes, plan.bits, c_inner);
      p += cm.Cluster(plan.passes, plan.bits, c_probe);
      p += plan.use_radix_join
               ? cm.RadixJoinPhaseAsym(plan.bits, c_inner, c_probe)
               : cm.PhashJoinPhaseAsym(plan.bits, c_inner, c_probe);
      return p;
    }
  }
}

/// Group-table probe cost per input row, by where the table lives in the
/// hierarchy (§3.2: hash-grouping wins because the group table usually
/// stays cache-resident): an L1-resident table costs CPU only, an
/// L2-resident one an L1 miss per row, a memory-resident one an L2 miss
/// (plus a TLB miss once it outgrows the TLB span).
ModelPrediction GroupProbePrediction(const MachineProfile& m, double rows,
                                     double table_bytes) {
  ModelPrediction p;
  p.cpu_ns = rows * 4.0 * m.cost.wscan_ns;  // hash + chain walk + fold
  if (table_bytes <= static_cast<double>(m.l1.capacity_bytes)) {
    return p;
  }
  if (table_bytes <= static_cast<double>(m.l2.capacity_bytes)) {
    p.l1_misses = rows;
    return p;
  }
  p.l1_misses = rows;
  p.l2_misses = rows;
  if (table_bytes > static_cast<double>(m.tlb.span_bytes())) {
    p.tlb_misses = rows;
  }
  return p;
}

void FillPrediction(OpCostInfo* info, const ModelPrediction& p,
                    const Latencies& lat) {
  info->predicted_cpu_ns = p.cpu_ns;
  info->predicted_l1_misses = p.l1_misses;
  info->predicted_l2_misses = p.l2_misses;
  info->predicted_tlb_misses = p.tlb_misses;
  info->predicted_ns = p.total_ns(lat);
}

// --- lowering ----------------------------------------------------------------

struct Lowered {
  std::unique_ptr<Operator> op;
  /// Chunk column names in physical order — what the root operator emits.
  /// Join reordering permutes this relative to the Build() schema; the
  /// planner derives the output map from it.
  std::vector<std::string> layout;
  uint64_t est_rows = 0;
  /// Index of this subtree's root cost record in LowerCtx::costs — what a
  /// parent links its children through (join chains re-parent spine
  /// records after deciding the order).
  int root_cost = -1;
};

struct LowerCtx {
  const PlannerOptions* options = nullptr;
  const CostModel* model = nullptr;
  size_t chunk_rows = 0;
  const ExecContext* ctx = nullptr;
  std::vector<JoinNodeInfo>* joins = nullptr;
  size_t next_join = 0;
  std::vector<FilterNodeInfo>* filters = nullptr;
  std::vector<OpCostInfo>* costs = nullptr;
  size_t next_cost = 0;
  std::vector<ExchangeNodeInfo>* exchanges = nullptr;
  size_t next_exchange = 0;
  /// Calibrated in-process copy bandwidth pricing the exchange transfer
  /// term (model/calibrator.h); 0 when exchanges are disabled for this plan.
  double xfer_ns_per_byte = 0;

  /// Resolved partition count; exchanges are considered only above 1.
  size_t Partitions() const { return ctx->partitions; }

  OpCostInfo* NewCost(std::string label, int depth, int parent) {
    OpCostInfo* info = &(*costs)[next_cost++];
    info->label = std::move(label);
    info->depth = depth;
    info->parent = parent;
    return info;
  }
  int CostIndex(const OpCostInfo* info) const {
    return static_cast<int>(info - costs->data());
  }
};

std::string Truncate(std::string s, size_t n) {
  if (s.size() > n) {
    s.resize(n - 3);
    s += "...";
  }
  return s;
}

StatusOr<Lowered> LowerNode(const LogicalNode& n, int depth, int parent,
                            LowerCtx& c);

/// One entry of a commutative inner-join chain: the inner (build) subtree
/// with the keys and hint that travel with it wherever it moves.
struct ChainEntry {
  const LogicalNode* inner = nullptr;
  std::string left_key, right_key;
  JoinStrategy strategy = JoinStrategy::kBest;
};

/// True when any permutation of `entries` over `base` validates: every
/// probe key must resolve in the base relation (so it exists no matter
/// which joins ran before), and no inner relation may surface a column
/// named like a probe key or like a column of another inner (which would
/// change how names — and the final output map — resolve).
bool ChainReorderSafe(const LogicalNode& base,
                      const std::vector<ChainEntry>& entries) {
  auto base_schema = ComputeNodeSchema(base);
  if (!base_schema.ok()) return false;
  for (const ChainEntry& e : entries) {
    bool found = false;
    for (const PlanColumn& col : *base_schema) {
      if (col.name == e.left_key) {
        if (col.ambiguous) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  std::vector<std::string> inner_names;
  for (const ChainEntry& e : entries) {
    auto schema = ComputeNodeSchema(*e.inner);
    if (!schema.ok()) return false;
    for (const PlanColumn& col : *schema) {
      for (const ChainEntry& o : entries) {
        if (col.name == o.left_key) return false;
      }
      for (const std::string& seen : inner_names) {
        if (seen == col.name) return false;  // two inners share a name
      }
      inner_names.push_back(col.name);
    }
  }
  return true;
}

// --- exchange lowering (dist/) ----------------------------------------------

/// Estimated payload bytes per row of a stream, from the base-table strides
/// of its visible columns (derived columns price at their 8-byte owned
/// spans) — the same per-row view ChunkPayloadBytes counts at runtime.
double StreamRowBytes(const std::vector<std::string>& layout,
                      const ColumnSourceMap& src) {
  size_t bytes = 0;
  for (const std::string& name : layout) bytes += ColumnStride(src, name);
  return static_cast<double>(std::max<size_t>(bytes, 1));
}

const char* ExchangeStrategyLabel(ExchangeStrategy s) {
  return s == ExchangeStrategy::kBroadcast ? "broadcast" : "repartition";
}

/// Allocates the exchange's plan-visible record plus its transfer-term
/// annotation (a leaf OpCostInfo child of the exchanged operator, so
/// ExplainCosts reports predicted-vs-measured bytes per exchange node).
ExchangeNodeInfo* NewExchangeInfo(ExchangeStrategy strategy, size_t nparts,
                                  double xfer_bytes,
                                  const ModelPrediction& xfer,
                                  double repart_bytes, double bcast_bytes,
                                  uint64_t est_rows_moved, int depth,
                                  int parent, LowerCtx& c) {
  OpCostInfo* xcost = c.NewCost(
      std::string("Exchange(") + ExchangeStrategyLabel(strategy) + ", " +
          std::to_string(nparts) + "p)",
      depth, parent);
  xcost->estimated_rows = est_rows_moved;
  FillPrediction(xcost, xfer, c.options->profile.lat);
  ExchangeNodeInfo* xinfo = &(*c.exchanges)[c.next_exchange++];
  xinfo->strategy = strategy;
  xinfo->partitions = nparts;
  xinfo->predicted_transfer_bytes = xfer_bytes;
  xinfo->predicted_transfer_ns = xfer.total_ns(c.options->profile.lat);
  xinfo->repartition_bytes = repart_bytes;
  xinfo->broadcast_bytes = bcast_bytes;
  xinfo->cost_index = c.CostIndex(xcost);
  return xinfo;
}

/// Lowers one join of a chain (or a lone join): lowers the inner subtree,
/// allocates the JoinNodeInfo, records estimates, and wraps everything in
/// a timed JoinOp.
StatusOr<Lowered> LowerOneJoin(Lowered left, uint64_t est_probe,
                               const ColumnSourceMap& probe_src,
                               const LogicalNode& join_node,
                               const ChainEntry& e, bool reordered, int depth,
                               int parent, LowerCtx& c) {
  const MachineProfile& profile = c.options->profile;
  OpCostInfo* cost = c.NewCost(
      std::string("Join(") + e.left_key + " = " + e.right_key + ", " +
          JoinTypeName(join_node.join_type) + ")",
      depth, parent);
  int self = c.CostIndex(cost);

  CCDB_ASSIGN_OR_RETURN(Lowered right,
                        LowerNode(*e.inner, depth + 1, self, c));

  uint64_t est_inner = right.est_rows;
  ColumnSourceMap inner_src = CollectColumnSources(*e.inner);
  uint64_t est_out = EstimateJoinRows(
      est_probe, ResolveStats(probe_src, e.left_key), est_inner,
      ResolveStats(inner_src, e.right_key), join_node.join_type);

  JoinNodeInfo* info = &(*c.joins)[c.next_join++];
  info->left_key = e.left_key;
  info->right_key = e.right_key;
  info->join_type = join_node.join_type;
  info->estimated_inner_cardinality = est_inner;
  info->estimated_probe_cardinality = est_probe;
  info->estimated_result_rows = est_out;
  info->reordered = reordered;

  // Predict the join at its *estimated* inner cardinality with the same
  // model that will re-plan it at the actual cardinality at Open() time —
  // ExplainCosts() then shows how far the estimate-driven prediction was
  // from reality.
  JoinPlan est_plan = est_inner == 0
                          ? PlanJoin(JoinStrategy::kSimpleHash, 0, profile)
                          : PlanJoin(e.strategy, est_inner, profile);
  ModelPrediction pred =
      JoinModelPrediction(*c.model, est_plan, est_inner, est_probe);
  pred += ScanRowsPrediction(profile, static_cast<double>(est_probe),
                             ColumnStride(probe_src, e.left_key));
  cost->estimated_rows = est_out;
  FillPrediction(cost, pred, profile.lat);

  // --- scale-out decision (§3.4 terms vs the transfer term) -----------------
  // Repartition hashes both inputs across the partitions (moves |L|+|R|
  // once); broadcast replicates the inner to every partition (moves N*|R|)
  // and forwards probe chunks zero-copy. Broadcast wins exactly when its
  // transfer bytes are strictly cheaper; the exchanged plan as a whole must
  // then beat the local §3.4 prediction (partitions run concurrently, so
  // per-partition compute approximates wall time) unless kForce overrides.
  std::unique_ptr<Operator> op;
  const size_t nparts = c.Partitions();
  if (nparts > 1 && c.options->exec.exchange != ExchangePolicy::kOff) {
    double bytes_probe =
        static_cast<double>(est_probe) * StreamRowBytes(left.layout, probe_src);
    double bytes_inner = static_cast<double>(est_inner) *
                         StreamRowBytes(right.layout, inner_src);
    double repart_bytes = bytes_probe + bytes_inner;
    double bcast_bytes = static_cast<double>(nparts) * bytes_inner;
    ExchangeStrategy strat =
        c.options->exec.exchange_strategy != ExchangeStrategy::kNone
            ? c.options->exec.exchange_strategy
            : (bcast_bytes < repart_bytes ? ExchangeStrategy::kBroadcast
                                          : ExchangeStrategy::kRepartition);
    bool broadcast = strat == ExchangeStrategy::kBroadcast;
    double xfer_bytes = broadcast ? bcast_bytes : repart_bytes;
    ModelPrediction xfer = c.model->Transfer(xfer_bytes, c.xfer_ns_per_byte);

    uint64_t part_probe = std::max<uint64_t>(est_probe / nparts, 1);
    uint64_t part_inner = broadcast ? est_inner : est_inner / nparts;
    JoinPlan part_plan =
        part_inner == 0 ? PlanJoin(JoinStrategy::kSimpleHash, 0, profile)
                        : PlanJoin(e.strategy, part_inner, profile);
    ModelPrediction exch_pred =
        JoinModelPrediction(*c.model, part_plan, part_inner, part_probe);
    exch_pred += ScanRowsPrediction(profile, static_cast<double>(part_probe),
                                    ColumnStride(probe_src, e.left_key));
    exch_pred += xfer;

    if (c.options->exec.exchange == ExchangePolicy::kForce ||
        exch_pred.total_ns(profile.lat) < pred.total_ns(profile.lat)) {
      ExchangeNodeInfo* xinfo = NewExchangeInfo(
          strat, nparts, xfer_bytes, xfer, repart_bytes, bcast_bytes,
          est_probe + est_inner, depth + 1, self, c);

      // Each partition joins with its own JoinNodeInfo; Close() folds the
      // actuals back into the plan-visible record allocated above.
      auto winfos = std::make_shared<std::vector<JoinNodeInfo>>(nparts);
      for (JoinNodeInfo& w : *winfos) {
        w.left_key = e.left_key;
        w.right_key = e.right_key;
        w.join_type = join_node.join_type;
        w.estimated_inner_cardinality = part_inner;
        w.estimated_probe_cardinality = part_probe;
      }
      std::string lk = e.left_key, rk = e.right_key;
      JoinType jt = join_node.join_type;
      JoinStrategy js = e.strategy;
      uint64_t est_out_part = std::max<uint64_t>(est_out / nparts, 1);
      FragmentFactory factory =
          [winfos, lk, rk, jt, js, profile, est_out_part, part_probe](
              size_t p, std::vector<std::unique_ptr<Operator>> ins,
              const ExecContext* wctx) -> StatusOr<std::unique_ptr<Operator>> {
        std::unique_ptr<Operator> join = std::make_unique<JoinOp>(
            std::move(ins[0]), std::move(ins[1]), lk, rk, jt, js, profile,
            &(*winfos)[p], wctx, est_out_part, part_probe);
        return join;
      };
      JoinNodeInfo* plan_info = info;
      std::function<void()> fold = [winfos, plan_info, broadcast] {
        plan_info->inner_cardinality = 0;
        plan_info->partition_tasks = 0;
        plan_info->inner_cluster_runs = 0;
        plan_info->stats = JoinStats{};
        bool first = true;
        for (const JoinNodeInfo& w : *winfos) {
          // A broadcast inner is the same relation N times over; count it
          // once. Repartitioned inners tile it, so they sum.
          plan_info->inner_cardinality =
              broadcast
                  ? std::max(plan_info->inner_cardinality, w.inner_cardinality)
                  : plan_info->inner_cardinality + w.inner_cardinality;
          plan_info->partition_tasks += w.partition_tasks;
          plan_info->inner_cluster_runs += w.inner_cluster_runs;
          plan_info->stats.result_count += w.stats.result_count;
          plan_info->stats.cluster_left_ms += w.stats.cluster_left_ms;
          plan_info->stats.cluster_right_ms += w.stats.cluster_right_ms;
          plan_info->stats.join_ms += w.stats.join_ms;
          if (first) {
            plan_info->plan = w.plan;
            plan_info->parallelism = w.parallelism;
            plan_info->stats.bits = w.stats.bits;
            plan_info->stats.passes = w.stats.passes;
            first = false;
          }
        }
      };

      std::vector<ExchangeInputSpec> specs(2);
      specs[0].producer = std::move(left.op);
      specs[0].routing =
          broadcast ? ExchangeRouting::kForward : ExchangeRouting::kHash;
      specs[0].key_column = e.left_key;
      specs[0].count_bytes = !broadcast;  // forwarded edges price at 0
      specs[1].producer = std::move(right.op);
      specs[1].routing =
          broadcast ? ExchangeRouting::kBroadcast : ExchangeRouting::kHash;
      specs[1].key_column = e.right_key;
      ExchangeOptions xopts;
      xopts.partitions = nparts;
      xopts.serialize = c.options->exec.serialize_exchange;
      xopts.on_close = std::move(fold);
      op = std::make_unique<ExchangeMergeOp>(std::move(specs),
                                             std::move(factory),
                                             std::move(xopts), c.ctx, xinfo);
      // The join record now predicts the exchanged plan: per-partition
      // join + the transfer term.
      FillPrediction(cost, exch_pred, profile.lat);
    }
  }
  if (op == nullptr) {
    op = std::make_unique<JoinOp>(
        std::move(left.op), std::move(right.op), e.left_key, e.right_key,
        join_node.join_type, e.strategy, profile, info, c.ctx, est_out,
        est_probe);
  }

  Lowered out;
  out.op = std::make_unique<TimedOperator>(std::move(op), cost);
  out.root_cost = self;
  out.layout = std::move(left.layout);
  if (join_node.join_type != JoinType::kSemi &&
      join_node.join_type != JoinType::kAnti) {
    for (std::string& name : right.layout) {
      out.layout.push_back(std::move(name));
    }
  }
  out.est_rows = est_out;
  return out;
}

/// Lowers a maximal chain of consecutive inner joins rooted at `n`,
/// reordering the inner relations greedily by estimated intermediate
/// cardinality when that is provably safe. Non-inner joins and chains of
/// one lower in written order.
StatusOr<Lowered> LowerJoinChain(const LogicalNode& n, int depth, int parent,
                                 LowerCtx& c) {
  // Collect the spine: n = Jk(...J2(J1(base, i1), i2)..., ik). Only inner
  // joins commute; a non-inner root contributes a single-join "chain" of
  // itself (its left child may hold a reorderable inner run, handled when
  // the recursion reaches it).
  std::vector<const LogicalNode*> spine;
  const LogicalNode* cur = &n;
  if (n.join_type != JoinType::kInner) {
    spine.push_back(cur);
    cur = cur->children[0].get();
  } else {
    while (cur->op == LogicalOp::kJoin &&
           cur->join_type == JoinType::kInner) {
      spine.push_back(cur);
      cur = cur->children[0].get();
    }
  }
  const LogicalNode* base = cur;
  std::vector<ChainEntry> entries(spine.size());
  for (size_t i = 0; i < spine.size(); ++i) {
    const LogicalNode* j = spine[spine.size() - 1 - i];  // bottom-up
    entries[i] = {j->children[1].get(), j->left_key, j->right_key,
                  j->join_strategy};
  }

  // Decide the order: greedy smallest estimated intermediate first. Strict
  // improvement only — ties keep the written order, so equal-cost plans
  // lower exactly as authored.
  size_t k = entries.size();
  std::vector<size_t> order(k);
  for (size_t i = 0; i < k; ++i) order[i] = i;
  uint64_t base_est = EstimateNodeRows(*base);
  ColumnSourceMap base_src = CollectColumnSources(*base);
  if (k >= 2 && c.options->reorder_joins && ChainReorderSafe(*base, entries)) {
    std::vector<uint64_t> inner_est(k);
    std::vector<ColumnSourceMap> inner_src(k);
    for (size_t i = 0; i < k; ++i) {
      inner_est[i] = EstimateNodeRows(*entries[i].inner);
      inner_src[i] = CollectColumnSources(*entries[i].inner);
    }
    std::vector<bool> used(k, false);
    std::vector<size_t> greedy;
    uint64_t running = base_est;
    for (size_t step = 0; step < k; ++step) {
      size_t best = SIZE_MAX;
      uint64_t best_est = 0;
      for (size_t i = 0; i < k; ++i) {
        if (used[i]) continue;
        uint64_t est = EstimateJoinRows(
            running, ResolveStats(base_src, entries[i].left_key),
            inner_est[i], ResolveStats(inner_src[i], entries[i].right_key),
            JoinType::kInner);
        if (best == SIZE_MAX || est < best_est) {
          best = i;
          best_est = est;
        }
      }
      used[best] = true;
      greedy.push_back(best);
      running = best_est;
    }
    order = std::move(greedy);
  }

  // Lower: base, then the joins bottom-up in the chosen order. Cost-info
  // depths mirror the lowered tree (topmost chain join nearest `depth`);
  // spine parent links are patched as each join wraps the chain so far.
  int base_depth = depth + static_cast<int>(k);
  CCDB_ASSIGN_OR_RETURN(Lowered chain,
                        LowerNode(*base, base_depth, parent, c));
  uint64_t running = base_est;
  for (size_t step = 0; step < k; ++step) {
    const ChainEntry& e = entries[order[step]];
    const LogicalNode* join_node = spine[spine.size() - 1 - order[step]];
    int jdepth = base_depth - 1 - static_cast<int>(step);
    int below = chain.root_cost;
    CCDB_ASSIGN_OR_RETURN(
        chain, LowerOneJoin(std::move(chain), running, base_src, *join_node,
                            e, order[step] != step, jdepth, parent, c));
    if (below >= 0) {
      (*c.costs)[static_cast<size_t>(below)].parent = chain.root_cost;
    }
    running = chain.est_rows;
  }
  return chain;
}

StatusOr<Lowered> LowerNode(const LogicalNode& n, int depth, int parent,
                            LowerCtx& c) {
  const MachineProfile& profile = c.options->profile;
  switch (n.op) {
    case LogicalOp::kScan: {
      // Build() rejects null-table scans; keep lowering loud rather than
      // half-guarded if one ever arrives through another path.
      if (n.table == nullptr) {
        return Status::Internal("planner: scan without a table");
      }
      Lowered out;
      out.est_rows = n.table->num_rows();
      bool shared = c.ctx->shared_scans != nullptr;
      OpCostInfo* cost = c.NewCost((shared ? "SharedScan(" : "Scan(") +
                                       std::to_string(out.est_rows) + " rows)",
                                   depth, parent);
      cost->estimated_rows = out.est_rows;
      // Scans emit lazy column descriptors — near-free; the §2 iteration
      // cost lands on whichever operator touches the values. Charge only
      // per-chunk bookkeeping.
      ModelPrediction p;
      size_t chunks =
          c.chunk_rows == 0 || c.chunk_rows == SIZE_MAX
              ? 1
              : out.est_rows / std::max<size_t>(c.chunk_rows, 1) + 1;
      p.cpu_ns = static_cast<double>(chunks) * 200.0;
      FillPrediction(cost, p, profile.lat);
      std::unique_ptr<Operator> scan;
      if (shared) {
        scan = std::make_unique<SharedScanOp>(n.table, std::nullopt,
                                              c.chunk_rows,
                                              c.ctx->shared_scans, c.ctx);
      } else {
        scan = std::make_unique<ScanOp>(n.table, c.chunk_rows);
      }
      out.op = std::make_unique<TimedOperator>(std::move(scan), cost);
      out.root_cost = c.CostIndex(cost);
      for (size_t i = 0; i < n.table->num_columns(); ++i) {
        out.layout.push_back(n.table->schema().field(i).name);
      }
      return out;
    }
    case LogicalOp::kSelect:
    case LogicalOp::kHaving: {
      const char* name = n.op == LogicalOp::kHaving ? "Having" : "Select";
      OpCostInfo* cost = c.NewCost(
          std::string(name) + "(" + Truncate(n.filter.ToString(), 48) + ")",
          depth, parent);
      int self = c.CostIndex(cost);
      // A Select directly over a Scan fuses into one SharedScanOp when a
      // provider is bound: the filter must travel to the registry so
      // co-attached plans can share candidate lists between subsuming
      // filters. The scan's cost record is still allocated (records are
      // preallocated one per logical node); its actuals fold into the
      // fused operator's, timed under this Select record.
      bool fuse_shared = n.op == LogicalOp::kSelect &&
                         c.ctx->shared_scans != nullptr &&
                         n.children[0]->op == LogicalOp::kScan &&
                         n.children[0]->table != nullptr;
      ColumnSourceMap src = CollectColumnSources(*n.children[0]);
      double sel = EstimateExprSelectivity(n.filter, src);
      Lowered child;
      std::optional<Expr> lowered_expr;
      std::unique_ptr<Operator> op;
      if (fuse_shared) {
        const Table* table = n.children[0]->table;
        child.est_rows = table->num_rows();
        OpCostInfo* scan_cost = c.NewCost(
            "SharedScan(" + std::to_string(child.est_rows) + " rows, fused)",
            depth + 1, self);
        scan_cost->estimated_rows = child.est_rows;
        FillPrediction(scan_cost, ModelPrediction{}, profile.lat);
        child.root_cost = c.CostIndex(scan_cost);
        for (size_t i = 0; i < table->num_columns(); ++i) {
          child.layout.push_back(table->schema().field(i).name);
        }
        auto fused = std::make_unique<SharedScanOp>(
            table, n.filter, c.chunk_rows, c.ctx->shared_scans, c.ctx);
        lowered_expr = fused->expr();
        op = std::move(fused);
      } else {
        CCDB_ASSIGN_OR_RETURN(child,
                              LowerNode(*n.children[0], depth + 1, self, c));
        // SelectOp's constructor normalizes to NNF (Not pushed into the
        // leaves) and orders conjuncts by the selectivity heuristic; read
        // the result back so ExplainFilters() reports exactly what
        // executes.
        auto select = std::make_unique<SelectOp>(std::move(child.op),
                                                 n.filter, c.ctx);
        lowered_expr = select->expr();
        op = std::move(select);
      }
      cost->estimated_rows = static_cast<uint64_t>(
          static_cast<double>(child.est_rows) * sel + 0.5);
      FilterNodeInfo info;
      info.node = n.op == LogicalOp::kHaving ? "having" : "select";
      info.estimated_selectivity = sel;
      if (lowered_expr.has_value()) {
        const Expr& lowered = *lowered_expr;
        info.normalized = lowered.ToString();
        if (lowered.kind == Expr::Kind::kAnd) {
          for (const Expr& conj : lowered.children) {
            info.conjuncts.push_back(conj.ToString());
            info.ranks.push_back(ConjunctRank(conj));
          }
        } else {
          info.conjuncts.push_back(info.normalized);
          info.ranks.push_back(ConjunctRank(lowered));
        }
        FillPrediction(cost,
                       PredictExprCost(
                           lowered, static_cast<double>(child.est_rows), src,
                           profile),
                       profile.lat);
      } else {
        info.normalized = "true (pass-through)";
      }
      c.filters->push_back(std::move(info));
      Lowered out;
      out.op = std::make_unique<TimedOperator>(std::move(op), cost);
      out.root_cost = self;
      out.layout = std::move(child.layout);
      out.est_rows = cost->estimated_rows;
      return out;
    }
    case LogicalOp::kJoin:
      return LowerJoinChain(n, depth, parent, c);
    case LogicalOp::kProject: {
      OpCostInfo* cost = c.NewCost("Project", depth, parent);
      int self = c.CostIndex(cost);
      CCDB_ASSIGN_OR_RETURN(Lowered child,
                            LowerNode(*n.children[0], depth + 1, self, c));
      cost->estimated_rows = child.est_rows;
      FillPrediction(cost, ModelPrediction{}, profile.lat);
      Lowered out;
      out.op = std::make_unique<TimedOperator>(
          std::make_unique<ProjectOp>(std::move(child.op), n.columns), cost);
      out.root_cost = self;
      out.layout = n.columns;
      out.est_rows = child.est_rows;
      return out;
    }
    case LogicalOp::kGroupByAgg: {
      std::string label = "GroupByAgg(";
      for (size_t i = 0; i < n.group_cols.size(); ++i) {
        if (i) label += ", ";
        label += n.group_cols[i];
      }
      label += ")";
      OpCostInfo* cost = c.NewCost(std::move(label), depth, parent);
      int self = c.CostIndex(cost);
      CCDB_ASSIGN_OR_RETURN(Lowered child,
                            LowerNode(*n.children[0], depth + 1, self, c));
      ColumnSourceMap src = CollectColumnSources(*n.children[0]);
      std::vector<std::optional<ColumnStats>> key_stats;
      for (const std::string& g : n.group_cols) {
        key_stats.push_back(ResolveStats(src, g));
      }
      uint64_t est_groups = EstimateGroupCount(child.est_rows, key_stats);
      cost->estimated_rows = est_groups;

      // Distinct aggregated value columns (several aggregates over one
      // column share an accumulator — mirror the operator).
      std::vector<std::string> value_cols;
      for (const AggSpec& a : n.aggs) {
        if (a.func == AggFunc::kCount) continue;
        if (std::find(value_cols.begin(), value_cols.end(), a.value_col) ==
            value_cols.end()) {
          value_cols.push_back(a.value_col);
        }
      }
      double rows = static_cast<double>(child.est_rows);
      ModelPrediction p;
      for (const std::string& g : n.group_cols) {
        p += ScanRowsPrediction(profile, rows, ColumnStride(src, g));
      }
      for (const std::string& v : value_cols) {
        p += ScanRowsPrediction(profile, rows, ColumnStride(src, v));
      }
      // GroupAggTable footprint: flat keys + (sum, min, max) states + row
      // counts + chains.
      double group_bytes =
          static_cast<double>(est_groups) *
          (static_cast<double>(n.group_cols.size()) * 4.0 +
           static_cast<double>(value_cols.size()) * sizeof(GroupAggState) +
           16.0);
      p += GroupProbePrediction(profile, rows, group_bytes);
      FillPrediction(cost, p, profile.lat);

      // Scale-out: repartition the input by hash of the first group column
      // — rows with equal full grouping keys share it, so every group
      // materializes in exactly one partition and the merge is pure
      // concatenation (no re-aggregation). Broadcast never applies to an
      // aggregation (replicated rows would be double-counted), so a forced
      // broadcast strategy hint is ignored here.
      std::unique_ptr<Operator> agg_op;
      const size_t nparts = c.Partitions();
      if (nparts > 1 && c.options->exec.exchange != ExchangePolicy::kOff &&
          !n.group_cols.empty()) {
        double bytes_in = rows * StreamRowBytes(child.layout, src);
        ModelPrediction xfer = c.model->Transfer(bytes_in, c.xfer_ns_per_byte);
        double part_rows = rows / static_cast<double>(nparts);
        ModelPrediction exch_pred;
        for (const std::string& g : n.group_cols) {
          exch_pred +=
              ScanRowsPrediction(profile, part_rows, ColumnStride(src, g));
        }
        for (const std::string& v : value_cols) {
          exch_pred +=
              ScanRowsPrediction(profile, part_rows, ColumnStride(src, v));
        }
        exch_pred += GroupProbePrediction(
            profile, part_rows,
            group_bytes / static_cast<double>(nparts));
        exch_pred += xfer;
        if (c.options->exec.exchange == ExchangePolicy::kForce ||
            exch_pred.total_ns(profile.lat) < p.total_ns(profile.lat)) {
          ExchangeNodeInfo* xinfo = NewExchangeInfo(
              ExchangeStrategy::kRepartition, nparts, bytes_in, xfer,
              bytes_in, /*bcast_bytes=*/0.0, child.est_rows, depth + 1, self,
              c);
          std::vector<std::string> gcols = n.group_cols;
          std::vector<AggSpec> aggs = n.aggs;
          size_t est_groups_part = std::max<size_t>(
              static_cast<size_t>(est_groups) / nparts, 16);
          FragmentFactory factory =
              [gcols, aggs, est_groups_part](
                  size_t, std::vector<std::unique_ptr<Operator>> ins,
                  const ExecContext* wctx)
              -> StatusOr<std::unique_ptr<Operator>> {
            std::unique_ptr<Operator> agg = std::make_unique<GroupByAggOp>(
                std::move(ins[0]), gcols, aggs, wctx, est_groups_part);
            return agg;
          };
          std::vector<ExchangeInputSpec> specs(1);
          specs[0].producer = std::move(child.op);
          specs[0].routing = ExchangeRouting::kHash;
          specs[0].key_column = n.group_cols[0];
          ExchangeOptions xopts;
          xopts.partitions = nparts;
          xopts.serialize = c.options->exec.serialize_exchange;
          agg_op = std::make_unique<ExchangeMergeOp>(
              std::move(specs), std::move(factory), std::move(xopts), c.ctx,
              xinfo);
          FillPrediction(cost, exch_pred, profile.lat);
        }
      }
      if (agg_op == nullptr) {
        agg_op = std::make_unique<GroupByAggOp>(
            std::move(child.op), n.group_cols, n.aggs, c.ctx,
            static_cast<size_t>(est_groups));
      }

      Lowered out;
      out.op = std::make_unique<TimedOperator>(std::move(agg_op), cost);
      out.root_cost = self;
      out.layout = n.group_cols;
      for (const AggSpec& a : n.aggs) out.layout.push_back(a.output_name);
      out.est_rows = est_groups;
      return out;
    }
    case LogicalOp::kOrderBy: {
      OpCostInfo* cost =
          c.NewCost("OrderBy(" + n.order_col + ")", depth, parent);
      int self = c.CostIndex(cost);
      CCDB_ASSIGN_OR_RETURN(Lowered child,
                            LowerNode(*n.children[0], depth + 1, self, c));
      ColumnSourceMap src = CollectColumnSources(*n.children[0]);
      cost->estimated_rows = child.est_rows;
      double rows = static_cast<double>(child.est_rows);
      ModelPrediction p =
          ScanRowsPrediction(profile, rows, ColumnStride(src, n.order_col));
      p.cpu_ns +=
          rows * std::log2(std::max(rows, 2.0)) * profile.cost.wscan_ns;
      FillPrediction(cost, p, profile.lat);
      Lowered out;
      out.op = std::make_unique<TimedOperator>(
          std::make_unique<OrderByOp>(std::move(child.op), n.order_col,
                                      n.descending, c.ctx),
          cost);
      out.root_cost = self;
      out.layout = std::move(child.layout);
      out.est_rows = child.est_rows;
      return out;
    }
    case LogicalOp::kLimit: {
      OpCostInfo* cost =
          c.NewCost("Limit(" + std::to_string(n.limit) + ")", depth, parent);
      int self = c.CostIndex(cost);
      CCDB_ASSIGN_OR_RETURN(Lowered child,
                            LowerNode(*n.children[0], depth + 1, self, c));
      uint64_t avail =
          child.est_rows > n.offset ? child.est_rows - n.offset : 0;
      cost->estimated_rows = std::min<uint64_t>(avail, n.limit);
      FillPrediction(cost, ModelPrediction{}, profile.lat);
      Lowered out;
      out.op = std::make_unique<TimedOperator>(
          std::make_unique<LimitOp>(std::move(child.op), n.limit, n.offset),
          cost);
      out.root_cost = self;
      out.layout = std::move(child.layout);
      out.est_rows = cost->estimated_rows;
      return out;
    }
  }
  return Status::Internal("unreachable logical op");
}

}  // namespace

StatusOr<PhysicalPlan> Planner::Lower(const LogicalPlan& plan) const {
  auto joins =
      std::make_unique<std::vector<JoinNodeInfo>>(CountJoins(plan.root()));
  // Cost records: one per logical node, plus headroom for the transfer-term
  // annotation each exchange may add. Operators keep raw pointers into the
  // vector, so it is preallocated here and only ever shrunk after lowering.
  size_t exchange_sites = CountExchangeSites(plan.root());
  auto costs = std::make_unique<std::vector<OpCostInfo>>(
      CountNodes(plan.root()) + exchange_sites);
  auto exchanges =
      std::make_unique<std::vector<ExchangeNodeInfo>>(exchange_sites);
  // Resolve ExecOptions into the context the operators borrow: parallelism
  // 0 means every hardware thread; a null pool means the process-shared
  // one (only reached for, and lazily created at, parallelism > 1).
  auto ctx = std::make_unique<ExecContext>();
  ctx->parallelism = options_.exec.parallelism == 0
                         ? ThreadPool::HardwareThreads()
                         : options_.exec.parallelism;
  ctx->pool = options_.exec.pool;
  if (ctx->pool == nullptr && ctx->parallelism > 1) {
    ctx->pool = &ThreadPool::Shared();
  }
  ctx->sched = options_.exec.sched;
  ctx->shared_scans = options_.exec.shared_scans;
  ctx->partitions =
      options_.exec.partitions == 0 ? 1 : options_.exec.partitions;
  size_t chunk_rows = options_.exec.scan_chunk_rows;
  if (chunk_rows == 0) {
    // Auto chunk: one cache-sized morsel per worker per chunk, so the
    // morsel floor never caps sharding below the parallelism knob (a
    // single-morsel chunk would leave workers idle past ~8 threads).
    chunk_rows = DefaultScanChunkRows(options_.profile);
    if (ctx->parallelism > 1) {
      chunk_rows = std::min(chunk_rows * ctx->parallelism, size_t{1} << 22);
    }
  }
  CostModel model(options_.profile);
  LowerCtx lower_ctx;
  lower_ctx.options = &options_;
  lower_ctx.model = &model;
  lower_ctx.chunk_rows = chunk_rows;
  lower_ctx.ctx = ctx.get();
  lower_ctx.joins = joins.get();
  std::vector<FilterNodeInfo> filters;
  lower_ctx.filters = &filters;
  lower_ctx.costs = costs.get();
  lower_ctx.exchanges = exchanges.get();
  if (ctx->partitions > 1 &&
      options_.exec.exchange != ExchangePolicy::kOff) {
    // One ~ms calibration per process, and only for plans that can
    // actually exchange; partitions == 1 plans never pay it.
    lower_ctx.xfer_ns_per_byte = MeasuredCopyNsPerByte();
    if (lower_ctx.xfer_ns_per_byte <= 0) {
      lower_ctx.xfer_ns_per_byte = model.FallbackCopyNsPerByte();
    }
  }

  CCDB_ASSIGN_OR_RETURN(Lowered root,
                        LowerNode(plan.root(), /*depth=*/0, /*parent=*/-1,
                                  lower_ctx));
  if (root.op == nullptr) {
    return Status::Internal("planner produced no operator tree");
  }
  // Trim unused headroom (shrinking never reallocates — the raw pointers
  // operators hold stay valid).
  costs->resize(lower_ctx.next_cost);
  exchanges->resize(lower_ctx.next_exchange);

  // Map the (possibly join-reordered) physical column order back onto the
  // Build() output schema: each schema column takes the first unused
  // physical column with its name.
  const std::vector<PlanColumn>& schema = plan.output_schema();
  if (root.layout.size() != schema.size()) {
    return Status::Internal("planner layout does not match plan schema");
  }
  std::vector<size_t> output_map(schema.size());
  std::vector<bool> taken(schema.size(), false);
  for (size_t i = 0; i < schema.size(); ++i) {
    bool found = false;
    for (size_t j = 0; j < root.layout.size(); ++j) {
      if (!taken[j] && root.layout[j] == schema[i].name) {
        output_map[i] = j;
        taken[j] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("planner layout misses output column '" +
                              schema[i].name + "'");
    }
  }

  return PhysicalPlan(std::move(root.op), schema, std::move(output_map),
                      std::move(joins), std::move(filters), std::move(costs),
                      std::move(exchanges), std::move(ctx), options_.profile);
}

StatusOr<QueryResult> PhysicalPlan::Execute() {
  QueryResult result;
  result.columns.resize(output_schema_.size());
  for (size_t i = 0; i < output_schema_.size(); ++i) {
    result.columns[i].name = output_schema_[i].name;
    result.columns[i].type = output_schema_[i].type;
  }
  // Driver-thread hardware counters across the whole plan: the measured
  // side of the translation term in ExplainCosts(). Best-effort — perf is
  // often forbidden in containers, and then the report says "unavailable".
  hw_valid_ = false;
  HwCounters hw;
  bool hw_on = hw.Open().ok() && hw.Start().ok();
  CCDB_RETURN_IF_ERROR(root_->Open());
  for (;;) {
    // Per-chunk deadline/cancellation poll. Operators also poll at morsel
    // boundaries (ExecParallelFor hooks, blocking consume loops); either
    // way a non-ok Status funnels through the error path below, which
    // closes the root — and Close() recurses, so every operator releases
    // its prepared state even when a cancel lands mid-pipeline.
    if (ctx_->sched != nullptr) {
      Status st = ctx_->sched->Check();
      if (!st.ok()) {
        root_->Close();
        return st;
      }
    }
    Chunk chunk;
    auto more = root_->Next(&chunk);
    if (!more.ok()) {
      root_->Close();
      return more.status();
    }
    if (!*more) break;
    if (chunk.cols.size() != output_schema_.size()) {
      root_->Close();
      return Status::Internal("operator output does not match plan schema");
    }
    for (size_t i = 0; i < chunk.cols.size(); ++i) {
      Status st = chunk.AppendTo(output_map_[i], &result.columns[i]);
      if (!st.ok()) {
        root_->Close();
        return st;
      }
    }
  }
  root_->Close();
  if (hw_on) {
    uint64_t cycles = 0;
    StatusOr<MemEvents> events = hw.Stop(&cycles);
    if (events.ok()) {
      hw_events_ = *events;
      hw_cycles_ = cycles;
      hw_valid_ = true;
    }
  }
  return result;
}

std::string PhysicalPlan::ExplainJoins() const {
  std::string out;
  char line[384];
  for (const JoinNodeInfo& j : *joins_) {
    std::snprintf(
        line, sizeof(line),
        "join [%s] %s = %s: est C=%llu, inner C=%llu -> %s%s, B=%d "
        "(%d passes), model %.2f ms, est result %llu, result %llu, "
        "%llu partition tasks on %zu workers, inner clustered %dx%s\n",
        JoinTypeName(j.join_type), j.left_key.c_str(), j.right_key.c_str(),
        (unsigned long long)j.estimated_inner_cardinality,
        (unsigned long long)j.inner_cardinality,
        JoinStrategyName(j.plan.strategy),
        j.plan.strategy == JoinStrategy::kBest
            ? (j.plan.use_radix_join ? " (radix)" : " (phash)")
            : "",
        j.plan.bits, j.plan.passes, j.plan.predicted_ms,
        (unsigned long long)j.estimated_result_rows,
        (unsigned long long)j.stats.result_count,
        (unsigned long long)j.partition_tasks, j.parallelism,
        j.inner_cluster_runs, j.reordered ? " (reordered)" : "");
    out += line;
  }
  return out;
}

std::string PhysicalPlan::ExplainFilters() const {
  std::string out;
  char buf[64];
  for (const FilterNodeInfo& f : filters_) {
    out.append("filter [").append(f.node).append("] ").append(f.normalized);
    std::snprintf(buf, sizeof(buf), " (est selectivity %.4f)",
                  f.estimated_selectivity);
    out.append(buf);
    out.push_back('\n');
    if (f.conjuncts.empty()) continue;
    out.append("  eval order: ");
    for (size_t i = 0; i < f.conjuncts.size(); ++i) {
      if (i) out.append("; ");
      out.append(f.conjuncts[i]);
      out.append(" [").append(ConjunctRankName(f.ranks[i])).append("]");
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<double> PhysicalPlan::MeasuredExclusiveNs() const {
  const std::vector<OpCostInfo>& costs = *costs_;
  std::vector<double> exclusive_ns(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    exclusive_ns[i] = costs[i].measured_inclusive_ns;
  }
  for (size_t i = 0; i < costs.size(); ++i) {
    if (costs[i].parent >= 0) {
      exclusive_ns[static_cast<size_t>(costs[i].parent)] -=
          costs[i].measured_inclusive_ns;
    }
  }
  for (double& ns : exclusive_ns) ns = std::max(ns, 0.0);
  return exclusive_ns;
}

std::string PhysicalPlan::ExplainCosts() const {
  const std::vector<OpCostInfo>& costs = *costs_;
  std::vector<double> exclusive_ns = MeasuredExclusiveNs();
  std::string out =
      "operator costs (predicted from estimates | measured):\n"
      "  rows est/actual, time pred/meas ms, predicted Mcycles + miss "
      "events (L1/L2/TLB)\n";
  char line[512];
  double cycle_ns = profile_.cycle_ns();
  // Print as a tree: pre-order over the parent links (join-chain lowering
  // allocates spine records out of tree order, so derive the order).
  std::vector<std::vector<size_t>> children(costs.size());
  std::vector<size_t> stack;
  for (size_t i = costs.size(); i-- > 0;) {
    if (costs[i].parent >= 0) {
      children[static_cast<size_t>(costs[i].parent)].push_back(i);
    } else {
      stack.push_back(i);
    }
  }
  while (!stack.empty()) {
    size_t i = stack.back();
    stack.pop_back();
    // children[i] was filled in reverse allocation order, which is exactly
    // the push order a LIFO needs to pop them in allocation order.
    for (size_t ch : children[i]) stack.push_back(ch);
    const OpCostInfo& op = costs[i];
    double meas_ms = exclusive_ns[i] * 1e-6;
    std::snprintf(line, sizeof(line),
                  "%*s%-40s rows %llu/%llu  pred %.3f ms  meas %.3f ms  "
                  "%.2f Mcycles  L1 %.0f  L2 %.0f  TLB %.0f (xlat %.3f ms)\n",
                  op.depth * 2, "", Truncate(op.label, 40).c_str(),
                  (unsigned long long)op.estimated_rows,
                  (unsigned long long)op.actual_rows, op.predicted_ns * 1e-6,
                  meas_ms, op.predicted_cpu_ns / cycle_ns * 1e-6,
                  op.predicted_l1_misses, op.predicted_l2_misses,
                  op.predicted_tlb_misses,
                  op.predicted_tlb_misses * profile_.lat.tlb_ns * 1e-6);
    out += line;
    // Exchange annotation records carry the transfer term: predicted vs
    // measured bytes, and (for joins) the margin the strategy decision
    // compared. Aggregation exchanges have no broadcast alternative.
    for (const ExchangeNodeInfo& x : *exchanges_) {
      if (x.cost_index != static_cast<int>(i)) continue;
      if (x.broadcast_bytes > 0) {
        std::snprintf(
            line, sizeof(line),
            "%*s  xfer pred %.1f KB  meas %.1f KB  "
            "(repartition %.1f KB vs broadcast %.1f KB)\n",
            op.depth * 2, "", x.predicted_transfer_bytes / 1024.0,
            static_cast<double>(x.measured_transfer_bytes) / 1024.0,
            x.repartition_bytes / 1024.0, x.broadcast_bytes / 1024.0);
      } else {
        std::snprintf(line, sizeof(line),
                      "%*s  xfer pred %.1f KB  meas %.1f KB\n", op.depth * 2,
                      "", x.predicted_transfer_bytes / 1024.0,
                      static_cast<double>(x.measured_transfer_bytes) / 1024.0);
      }
      out += line;
    }
  }
  // Plan-level translation term: the model's page-walk prediction priced at
  // the profile's lTLB against the hardware dTLB-miss count (driver thread,
  // perf_event_open) priced the same way.
  double pred_tlb = 0;
  for (const OpCostInfo& op : costs) pred_tlb += op.predicted_tlb_misses;
  std::snprintf(line, sizeof(line),
                "translation: pred %.0f walks = %.3f ms "
                "(lTLB %.1f ns, |TLB| %zu x %zu KB pages)",
                pred_tlb, pred_tlb * profile_.lat.tlb_ns * 1e-6,
                profile_.lat.tlb_ns, profile_.tlb.entries,
                profile_.tlb.page_bytes / 1024);
  out += line;
  if (hw_valid_) {
    std::snprintf(line, sizeof(line),
                  " | meas %llu dTLB misses = %.3f ms (driver thread)\n",
                  (unsigned long long)hw_events_.tlb_misses,
                  static_cast<double>(hw_events_.tlb_misses) *
                      profile_.lat.tlb_ns * 1e-6);
  } else {
    std::snprintf(line, sizeof(line),
                  " | meas: hw counters unavailable (perf forbidden)\n");
  }
  out += line;
  return out;
}

StatusOr<QueryResult> Execute(const LogicalPlan& plan,
                              const PlannerOptions& options) {
  Planner planner(options);
  CCDB_ASSIGN_OR_RETURN(PhysicalPlan physical, planner.Lower(plan));
  return physical.Execute();
}

}  // namespace ccdb
