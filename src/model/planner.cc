#include "model/planner.h"

#include <algorithm>
#include <cstdio>

#include "model/calibrator.h"
#include "util/thread_pool.h"

namespace ccdb {

size_t DefaultScanChunkRows(const MachineProfile& profile) {
  // Prefer the host L2 the Calibrator measures (ROADMAP: tune the default
  // against measured geometry, not the static profile); fall back to the
  // profile when the platform doesn't report cache sizes.
  size_t l2_bytes = MeasuredL2CacheBytes();
  if (l2_bytes == 0) l2_bytes = profile.l2.capacity_bytes;
  size_t rows = l2_bytes / 2 / 16;
  if (rows < 4096) return 4096;
  if (rows > (size_t{1} << 20)) return size_t{1} << 20;
  return rows;
}

namespace {

size_t CountJoins(const LogicalNode& n) {
  size_t c = n.op == LogicalOp::kJoin ? 1 : 0;
  for (const auto& child : n.children) c += CountJoins(*child);
  return c;
}

std::unique_ptr<Operator> LowerNode(const LogicalNode& n,
                                    const PlannerOptions& options,
                                    size_t chunk_rows, const ExecContext* ctx,
                                    std::vector<JoinNodeInfo>* joins,
                                    size_t* next_join,
                                    std::vector<FilterNodeInfo>* filters) {
  switch (n.op) {
    case LogicalOp::kScan:
      return std::make_unique<ScanOp>(n.table, chunk_rows);
    case LogicalOp::kSelect:
    case LogicalOp::kHaving: {
      auto child = LowerNode(*n.children[0], options, chunk_rows, ctx, joins,
                             next_join, filters);
      // SelectOp's constructor normalizes to NNF (Not pushed into the
      // leaves) and orders conjuncts by the selectivity heuristic; read the
      // result back so ExplainFilters() reports exactly what executes.
      auto op = std::make_unique<SelectOp>(std::move(child), n.filter, ctx);
      FilterNodeInfo info;
      info.node = n.op == LogicalOp::kHaving ? "having" : "select";
      if (op->expr().has_value()) {
        const Expr& lowered = *op->expr();
        info.normalized = lowered.ToString();
        if (lowered.kind == Expr::Kind::kAnd) {
          for (const Expr& c : lowered.children) {
            info.conjuncts.push_back(c.ToString());
            info.ranks.push_back(ConjunctRank(c));
          }
        } else {
          info.conjuncts.push_back(info.normalized);
          info.ranks.push_back(ConjunctRank(lowered));
        }
      } else {
        info.normalized = "true (pass-through)";
      }
      filters->push_back(std::move(info));
      return op;
    }
    case LogicalOp::kJoin: {
      auto left = LowerNode(*n.children[0], options, chunk_rows, ctx, joins,
                            next_join, filters);
      auto right = LowerNode(*n.children[1], options, chunk_rows, ctx, joins,
                             next_join, filters);
      JoinNodeInfo* info = &(*joins)[(*next_join)++];
      // Every join type shares the same cost-model consultation: outer,
      // anti, and semi joins probe the same prepared-once inner structures
      // the model sized for the inner cardinality.
      return std::make_unique<JoinOp>(std::move(left), std::move(right),
                                      n.left_key, n.right_key, n.join_type,
                                      n.join_strategy, options.profile, info,
                                      ctx);
    }
    case LogicalOp::kProject:
      return std::make_unique<ProjectOp>(
          LowerNode(*n.children[0], options, chunk_rows, ctx, joins,
                    next_join, filters),
          n.columns);
    case LogicalOp::kGroupByAgg:
      return std::make_unique<GroupByAggOp>(
          LowerNode(*n.children[0], options, chunk_rows, ctx, joins,
                    next_join, filters),
          n.group_cols, n.aggs, ctx);
    case LogicalOp::kOrderBy:
      return std::make_unique<OrderByOp>(
          LowerNode(*n.children[0], options, chunk_rows, ctx, joins,
                    next_join, filters),
          n.order_col, n.descending, ctx);
    case LogicalOp::kLimit:
      return std::make_unique<LimitOp>(
          LowerNode(*n.children[0], options, chunk_rows, ctx, joins,
                    next_join, filters),
          n.limit, n.offset);
  }
  return nullptr;
}

}  // namespace

StatusOr<PhysicalPlan> Planner::Lower(const LogicalPlan& plan) const {
  auto joins = std::make_unique<std::vector<JoinNodeInfo>>(
      CountJoins(plan.root()));
  // Resolve ExecOptions into the context the operators borrow: parallelism
  // 0 means every hardware thread; a null pool means the process-shared
  // one (only reached for, and lazily created at, parallelism > 1).
  auto ctx = std::make_unique<ExecContext>();
  ctx->parallelism = options_.exec.parallelism == 0
                         ? ThreadPool::HardwareThreads()
                         : options_.exec.parallelism;
  ctx->pool = options_.exec.pool;
  if (ctx->pool == nullptr && ctx->parallelism > 1) {
    ctx->pool = &ThreadPool::Shared();
  }
  size_t chunk_rows = options_.exec.scan_chunk_rows;
  if (chunk_rows == 0) {
    // Auto chunk: one cache-sized morsel per worker per chunk, so the
    // morsel floor never caps sharding below the parallelism knob (a
    // single-morsel chunk would leave workers idle past ~8 threads).
    chunk_rows = DefaultScanChunkRows(options_.profile);
    if (ctx->parallelism > 1) {
      chunk_rows = std::min(chunk_rows * ctx->parallelism, size_t{1} << 22);
    }
  }
  size_t next_join = 0;
  std::vector<FilterNodeInfo> filters;
  std::unique_ptr<Operator> root = LowerNode(plan.root(), options_, chunk_rows,
                                             ctx.get(), joins.get(),
                                             &next_join, &filters);
  if (root == nullptr) {
    return Status::Internal("planner produced no operator tree");
  }
  return PhysicalPlan(std::move(root), plan.output_schema(), std::move(joins),
                      std::move(filters), std::move(ctx));
}

StatusOr<QueryResult> PhysicalPlan::Execute() {
  QueryResult result;
  result.columns.resize(output_schema_.size());
  for (size_t i = 0; i < output_schema_.size(); ++i) {
    result.columns[i].name = output_schema_[i].name;
    result.columns[i].type = output_schema_[i].type;
  }
  CCDB_RETURN_IF_ERROR(root_->Open());
  for (;;) {
    Chunk chunk;
    auto more = root_->Next(&chunk);
    if (!more.ok()) {
      root_->Close();
      return more.status();
    }
    if (!*more) break;
    if (chunk.cols.size() != output_schema_.size()) {
      root_->Close();
      return Status::Internal("operator output does not match plan schema");
    }
    for (size_t i = 0; i < chunk.cols.size(); ++i) {
      Status st = chunk.AppendTo(i, &result.columns[i]);
      if (!st.ok()) {
        root_->Close();
        return st;
      }
    }
  }
  root_->Close();
  return result;
}

std::string PhysicalPlan::ExplainJoins() const {
  std::string out;
  char line[256];
  for (const JoinNodeInfo& j : *joins_) {
    std::snprintf(line, sizeof(line),
                  "join [%s] %s = %s: inner C=%llu -> %s%s, B=%d (%d passes), "
                  "model %.2f ms, result %llu, %llu partition tasks on "
                  "%zu workers, inner clustered %dx\n",
                  JoinTypeName(j.join_type),
                  j.left_key.c_str(), j.right_key.c_str(),
                  (unsigned long long)j.inner_cardinality,
                  JoinStrategyName(j.plan.strategy),
                  j.plan.strategy == JoinStrategy::kBest
                      ? (j.plan.use_radix_join ? " (radix)" : " (phash)")
                      : "",
                  j.plan.bits, j.plan.passes, j.plan.predicted_ms,
                  (unsigned long long)j.stats.result_count,
                  (unsigned long long)j.partition_tasks, j.parallelism,
                  j.inner_cluster_runs);
    out += line;
  }
  return out;
}

std::string PhysicalPlan::ExplainFilters() const {
  std::string out;
  for (const FilterNodeInfo& f : filters_) {
    out.append("filter [").append(f.node).append("] ").append(f.normalized);
    out.push_back('\n');
    if (f.conjuncts.empty()) continue;
    out.append("  eval order: ");
    for (size_t i = 0; i < f.conjuncts.size(); ++i) {
      if (i) out.append("; ");
      out.append(f.conjuncts[i]);
      out.append(" [").append(ConjunctRankName(f.ranks[i])).append("]");
    }
    out.push_back('\n');
  }
  return out;
}

StatusOr<QueryResult> Execute(const LogicalPlan& plan,
                              const PlannerOptions& options) {
  Planner planner(options);
  CCDB_ASSIGN_OR_RETURN(PhysicalPlan physical, planner.Lower(plan));
  return physical.Execute();
}

}  // namespace ccdb
