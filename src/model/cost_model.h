// The paper's analytical main-memory cost models (§2 and §3.4), implemented
// exactly as printed: query cost = pure CPU work + cache/TLB miss events
// weighted by the machine's latencies. Rather than "magical cost factors
// obtained by profiling", the models mimic each algorithm's memory access
// pattern and count its miss events (§4).
//
// Notation (all from the paper):
//   C        relation cardinality (8-byte BUNs)
//   B, P, Bp radix bits / passes / bits per pass;  H = 2^B, Hp = 2^Bp
//   |Re|_Li  cache lines per relation      |Re|_Pg  pages per relation
//   |Cl|_Li  cache lines per cluster       ||Cl||   cluster size in bytes
//   |Li|_Li  lines in cache i              ||Li||   cache i size in bytes
//   |TLB|    TLB entries                   ||TLB||  bytes covered by the TLB
#ifndef CCDB_MODEL_COST_MODEL_H_
#define CCDB_MODEL_COST_MODEL_H_

#include <algorithm>

#include "mem/hierarchy.h"
#include "mem/machine.h"
#include "util/status.h"

namespace ccdb {

/// Predicted event counts and time for one operation. Events are real-valued
/// (the model divides), unlike the integer MemEvents of measurements.
struct ModelPrediction {
  double l1_misses = 0;
  double l2_misses = 0;
  double tlb_misses = 0;
  double cpu_ns = 0;
  /// The subset of l2_misses incurred by *sequential* sweeps (the 2|Re|_Li
  /// read+write terms etc.), priced at Latencies::effective_mem_seq_ns()
  /// instead of the full lMem. Always <= l2_misses; with mem_seq_ns unset
  /// the split is cost-neutral, so the paper-profile curves are unchanged.
  double l2_seq_misses = 0;

  double stall_ns(const Latencies& lat) const {
    double seq = std::min(l2_seq_misses, l2_misses);
    return l1_misses * lat.l2_ns + (l2_misses - seq) * lat.mem_ns +
           seq * lat.effective_mem_seq_ns() + tlb_misses * lat.tlb_ns;
  }
  double total_ns(const Latencies& lat) const { return cpu_ns + stall_ns(lat); }

  ModelPrediction& operator+=(const ModelPrediction& o) {
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    tlb_misses += o.tlb_misses;
    cpu_ns += o.cpu_ns;
    l2_seq_misses += o.l2_seq_misses;
    return *this;
  }
};

/// Per-iteration scan cost decomposition of §2: T(s) = TCPU + TL2(s) + TMem(s).
struct ScanPrediction {
  double cpu_ns = 0;
  double l2_ns = 0;   ///< TL2(s)  = ML1(s) * lL2
  double mem_ns = 0;  ///< TMem(s) = ML2(s) * lMem
  double total_ns() const { return cpu_ns + l2_ns + mem_ns; }
};

/// Evaluates the paper's formulas for one MachineProfile. All predictions
/// are per single operation (one relation clustered, one join phase, ...).
class CostModel {
 public:
  explicit CostModel(const MachineProfile& profile) : m_(profile) {}

  const MachineProfile& profile() const { return m_; }

  // -- §2: sequential scan with stride --------------------------------------

  /// Per-iteration cost of the Figure 3 experiment at record width `stride`:
  /// ML1(s) = min(s/LS_L1, 1), ML2(s) = min(s/LS_L2, 1).
  ScanPrediction ScanIteration(size_t stride_bytes) const;

  // -- §3.4.2: radix-cluster Tc(P, B, C) ------------------------------------

  /// Miss terms of one clustering pass on Bp bits (real-valued Bp = B/P as
  /// the paper evaluates it).
  double ClusterCacheMisses(double bp_bits, uint64_t c, int level) const;
  double ClusterTlbMisses(double bp_bits, uint64_t c) const;

  /// Full Tc(P,B,C).
  ModelPrediction Cluster(int passes, int bits, uint64_t c) const;

  // -- §3.4.3: isolated join phases -----------------------------------------

  /// Radix-join phase Tr(B,C) (nested loop per cluster pair).
  ModelPrediction RadixJoinPhase(int bits, uint64_t c) const;

  /// Partitioned hash-join phase Th(B,C).
  ModelPrediction PhashJoinPhase(int bits, uint64_t c) const;

  // -- asymmetric-cardinality extension ---------------------------------------
  // The paper evaluates its join phases at |L| = |R| = C; the planner's
  // cardinality estimator routinely predicts joins with very different
  // probe and inner sizes (a filtered dimension against a fact table).
  // These variants keep the paper's structure but separate the roles: the
  // cluster/hash-table *geometry* comes from the inner relation (its
  // clusters are what must fit a cache level), per-pair work and random
  // re-access counts scale with max(|L|, |R|), and the sequential terms
  // read each relation at its own size. Both degrade exactly to
  // RadixJoinPhase / PhashJoinPhase when c_inner == c_probe.

  ModelPrediction RadixJoinPhaseAsym(int bits, uint64_t c_inner,
                                     uint64_t c_probe) const;
  ModelPrediction PhashJoinPhaseAsym(int bits, uint64_t c_inner,
                                     uint64_t c_probe) const;

  // -- §3.4.4: combined cluster + join --------------------------------------

  /// Number of clustering passes the paper's analysis prescribes for B bits:
  /// at most log2(|TLB|) bits per pass (6 on the Origin2000), so
  /// P = max(1, ceil(B / log2(|TLB|))).
  int OptimalPasses(int bits) const;

  /// Cluster both relations (optimal passes) + join phase.
  ModelPrediction TotalRadixJoin(int bits, uint64_t c) const;
  ModelPrediction TotalPhashJoin(int bits, uint64_t c) const;

  /// Non-partitioned hash join = phash join phase with B = 0 (one cluster =
  /// the whole relation), no clustering cost.
  ModelPrediction SimpleHashJoin(uint64_t c) const;

  /// argmin over B in [0, max_bits] of the total model cost; returns B.
  int BestRadixBits(uint64_t c, int max_bits = 27) const;
  int BestPhashBits(uint64_t c, int max_bits = 27) const;

  // -- exchange transfer term (dist/) ---------------------------------------

  /// Cost of moving `bytes` across one exchange edge at `ns_per_byte`
  /// (calibrated copy bandwidth, MeasuredCopyNsPerByte; latency-derived
  /// fallback when the host cannot be measured). The network — today, the
  /// in-process channel — is priced like one more level of the memory
  /// hierarchy. The whole price lands in cpu_ns: end-to-end bandwidth
  /// already folds the miss events in, so adding miss terms on top would
  /// double-count them.
  ModelPrediction Transfer(double bytes, double ns_per_byte) const {
    ModelPrediction p;
    p.cpu_ns = bytes * ns_per_byte;
    return p;
  }

  /// Latency-derived ns-per-byte fallback: one memory access per cache
  /// line of payload.
  double FallbackCopyNsPerByte() const {
    return m_.lat.mem_ns / static_cast<double>(m_.l2.line_bytes);
  }

  // -- translation (page-walk) term -----------------------------------------

  /// Nanoseconds of page-walk stall for `tlb_misses` translations, priced
  /// at the profile's lTLB. With a measured profile this is real geometry
  /// (MeasuredTlbGeometry): entry count bounds the miss count upstream and
  /// walk_ns prices each miss; with a static profile it is the old constant.
  double TranslationNs(double tlb_misses) const {
    return tlb_misses * m_.lat.tlb_ns;
  }

  /// A copy of this model whose TLB pages are `page_bytes` wide — the
  /// huge-page pricing view: ||TLB|| grows by page_bytes/4KB, so RelPages
  /// and every TLB miss term shrink accordingly. Entry count is kept; on
  /// real parts the 2 MB-page TLB is somewhat smaller, so this bounds the
  /// benefit from above (documented simplification, validated by
  /// bench/tlb_pages).
  CostModel WithPageBytes(size_t page_bytes) const {
    MachineProfile m = m_;
    m.tlb.page_bytes = page_bytes;
    return CostModel(m);
  }

  // Convenience: milliseconds of a prediction under this profile.
  double Millis(const ModelPrediction& p) const {
    return p.total_ns(m_.lat) * 1e-6;
  }

 private:
  // Shared helpers (all real-valued, in the paper's units).
  double RelLines(uint64_t c, int level) const;
  double RelPages(uint64_t c) const;

  MachineProfile m_;
};

}  // namespace ccdb

#endif  // CCDB_MODEL_COST_MODEL_H_
