#include "model/cost_model.h"

#include <cmath>

#include "bat/types.h"

namespace ccdb {

namespace {

constexpr double kTupleBytes = sizeof(Bun);  // 8: the paper's BUN width
// The phash strategies size clusters at 12 bytes/tuple: the 8-byte BUN plus
// 4 bytes of bucket-chained hash table overhead (§3.4.4).
constexpr double kPhashTupleBytes = 12;

}  // namespace

double CostModel::RelLines(uint64_t c, int level) const {
  const CacheGeometry& g = level == 1 ? m_.l1 : m_.l2;
  return static_cast<double>(c) * kTupleBytes / static_cast<double>(g.line_bytes);
}

double CostModel::RelPages(uint64_t c) const {
  return static_cast<double>(c) * kTupleBytes /
         static_cast<double>(m_.tlb.page_bytes);
}

ScanPrediction CostModel::ScanIteration(size_t stride_bytes) const {
  ScanPrediction p;
  p.cpu_ns = m_.cost.wscan_ns;
  double ml1 = std::min(
      static_cast<double>(stride_bytes) / static_cast<double>(m_.l1.line_bytes),
      1.0);
  double ml2 = std::min(
      static_cast<double>(stride_bytes) / static_cast<double>(m_.l2.line_bytes),
      1.0);
  p.l2_ns = ml1 * m_.lat.l2_ns;
  p.mem_ns = ml2 * m_.lat.mem_ns;
  return p;
}

double CostModel::ClusterCacheMisses(double bp_bits, uint64_t c,
                                     int level) const {
  const CacheGeometry& g = level == 1 ? m_.l1 : m_.l2;
  double hp = std::exp2(bp_bits);
  double lines = static_cast<double>(g.lines());
  double base = 2.0 * RelLines(c, level);
  double extra;
  if (hp <= lines) {
    extra = static_cast<double>(c) * hp / lines;
  } else {
    extra = static_cast<double>(c) * (1.0 + std::log2(hp / lines));
  }
  return base + extra;
}

double CostModel::ClusterTlbMisses(double bp_bits, uint64_t c) const {
  double hp = std::exp2(bp_bits);
  double tlb = static_cast<double>(m_.tlb.entries);
  double pages = RelPages(c);
  double base = 2.0 * pages;
  double extra;
  if (hp <= tlb) {
    extra = pages * hp / tlb;
  } else {
    extra = static_cast<double>(c) * (1.0 - tlb / hp);
  }
  return base + extra;
}

ModelPrediction CostModel::Cluster(int passes, int bits, uint64_t c) const {
  ModelPrediction p;
  double bp = static_cast<double>(bits) / passes;
  for (int pass = 0; pass < passes; ++pass) {
    p.cpu_ns += static_cast<double>(c) * m_.cost.wc_ns;
    p.l1_misses += ClusterCacheMisses(bp, c, 1);
    p.l2_misses += ClusterCacheMisses(bp, c, 2);
    p.tlb_misses += ClusterTlbMisses(bp, c);
    // The 2|Re|_Li base term is the pass's sequential read+write sweep.
    p.l2_seq_misses += 2.0 * RelLines(c, 2);
  }
  return p;
}

ModelPrediction CostModel::RadixJoinPhase(int bits, uint64_t c) const {
  ModelPrediction p;
  double h = std::exp2(bits);
  double tuples_per_cluster = static_cast<double>(c) / h;
  double cluster_bytes = tuples_per_cluster * kTupleBytes;

  // Tr = C * (C/H) * wr + C * w'r + misses.
  p.cpu_ns = static_cast<double>(c) * tuples_per_cluster * m_.cost.wr_ns +
             static_cast<double>(c) * m_.cost.wrp_ns;

  for (int level = 1; level <= 2; ++level) {
    const CacheGeometry& g = level == 1 ? m_.l1 : m_.l2;
    double cl_lines = cluster_bytes / static_cast<double>(g.line_bytes);
    double li_lines = static_cast<double>(g.lines());
    double extra = cl_lines <= li_lines
                       ? static_cast<double>(c) * (cl_lines / li_lines)
                       : static_cast<double>(c) * cl_lines;
    double misses = 3.0 * RelLines(c, level) + extra;
    if (level == 1) {
      p.l1_misses = misses;
    } else {
      p.l2_misses = misses;
    }
  }
  p.tlb_misses = 3.0 * RelPages(c) +
                 static_cast<double>(c) * cluster_bytes /
                     static_cast<double>(m_.tlb.span_bytes());
  p.l2_seq_misses = 3.0 * RelLines(c, 2);  // read L, read R, write result
  return p;
}

ModelPrediction CostModel::PhashJoinPhase(int bits, uint64_t c) const {
  ModelPrediction p;
  double h = std::exp2(bits);
  double cluster_bytes = static_cast<double>(c) / h * kPhashTupleBytes;

  // Th = C * wh + H * w'h + misses.
  p.cpu_ns = static_cast<double>(c) * m_.cost.wh_ns + h * m_.cost.whp_ns;

  for (int level = 1; level <= 2; ++level) {
    const CacheGeometry& g = level == 1 ? m_.l1 : m_.l2;
    double cache_bytes = static_cast<double>(g.capacity_bytes);
    double extra =
        cluster_bytes <= cache_bytes
            ? static_cast<double>(c) * cluster_bytes / cache_bytes
            // Cache trashing: with a bucket-chain length of 4, up to 8
            // memory accesses per tuple during build + lookup, plus two for
            // the tuple itself — the paper's factor 10.
            : static_cast<double>(c) * 10.0 * (1.0 - cache_bytes / cluster_bytes);
    double misses = 3.0 * RelLines(c, level) + extra;
    if (level == 1) {
      p.l1_misses = misses;
    } else {
      p.l2_misses = misses;
    }
  }
  double tlb_bytes = static_cast<double>(m_.tlb.span_bytes());
  double tlb_extra =
      cluster_bytes <= tlb_bytes
          ? static_cast<double>(c) * cluster_bytes / tlb_bytes
          : static_cast<double>(c) * 10.0 * (1.0 - tlb_bytes / cluster_bytes);
  p.tlb_misses = 3.0 * RelPages(c) + tlb_extra;
  p.l2_seq_misses = 3.0 * RelLines(c, 2);  // read L, read R, write result
  return p;
}

ModelPrediction CostModel::RadixJoinPhaseAsym(int bits, uint64_t c_inner,
                                              uint64_t c_probe) const {
  ModelPrediction p;
  double h = std::exp2(bits);
  double ci = static_cast<double>(c_inner);
  double cp = static_cast<double>(c_probe);
  // Inner clusters set the working-set geometry; every probe tuple walks
  // one of them.
  double tuples_per_cluster = ci / h;
  double cluster_bytes = tuples_per_cluster * kTupleBytes;

  p.cpu_ns = cp * tuples_per_cluster * m_.cost.wr_ns + cp * m_.cost.wrp_ns;

  for (int level = 1; level <= 2; ++level) {
    const CacheGeometry& g = level == 1 ? m_.l1 : m_.l2;
    double cl_lines = cluster_bytes / static_cast<double>(g.line_bytes);
    double li_lines = static_cast<double>(g.lines());
    double extra = cl_lines <= li_lines ? cp * (cl_lines / li_lines)
                                        : cp * cl_lines;
    // Sequential: read each relation once at its own size, write a result
    // proportional to the probe side.
    double misses = RelLines(c_inner, level) + 2.0 * RelLines(c_probe, level) +
                    extra;
    if (level == 1) {
      p.l1_misses = misses;
    } else {
      p.l2_misses = misses;
    }
  }
  p.tlb_misses = RelPages(c_inner) + 2.0 * RelPages(c_probe) +
                 cp * cluster_bytes / static_cast<double>(m_.tlb.span_bytes());
  p.l2_seq_misses = RelLines(c_inner, 2) + 2.0 * RelLines(c_probe, 2);
  return p;
}

ModelPrediction CostModel::PhashJoinPhaseAsym(int bits, uint64_t c_inner,
                                              uint64_t c_probe) const {
  ModelPrediction p;
  double h = std::exp2(bits);
  double ci = static_cast<double>(c_inner);
  double cp = static_cast<double>(c_probe);
  // Hash tables are built over inner clusters; build + lookup touches
  // happen once per tuple pair — max(|L|, |R|) of them (= C when
  // symmetric, probe-dominated for FK joins).
  double pairs = std::max(ci, cp);
  double cluster_bytes = ci / h * kPhashTupleBytes;

  p.cpu_ns = pairs * m_.cost.wh_ns + h * m_.cost.whp_ns;

  for (int level = 1; level <= 2; ++level) {
    const CacheGeometry& g = level == 1 ? m_.l1 : m_.l2;
    double cache_bytes = static_cast<double>(g.capacity_bytes);
    double extra =
        cluster_bytes <= cache_bytes
            ? pairs * cluster_bytes / cache_bytes
            : pairs * 10.0 * (1.0 - cache_bytes / cluster_bytes);
    double misses = RelLines(c_inner, level) + 2.0 * RelLines(c_probe, level) +
                    extra;
    if (level == 1) {
      p.l1_misses = misses;
    } else {
      p.l2_misses = misses;
    }
  }
  double tlb_bytes = static_cast<double>(m_.tlb.span_bytes());
  double tlb_extra = cluster_bytes <= tlb_bytes
                         ? pairs * cluster_bytes / tlb_bytes
                         : pairs * 10.0 * (1.0 - tlb_bytes / cluster_bytes);
  p.tlb_misses = RelPages(c_inner) + 2.0 * RelPages(c_probe) + tlb_extra;
  p.l2_seq_misses = RelLines(c_inner, 2) + 2.0 * RelLines(c_probe, 2);
  return p;
}

int CostModel::OptimalPasses(int bits) const {
  if (bits <= 0) return 1;
  int per_pass = Log2Floor(m_.tlb.entries);
  if (per_pass < 1) per_pass = 1;
  return (bits + per_pass - 1) / per_pass;
}

ModelPrediction CostModel::TotalRadixJoin(int bits, uint64_t c) const {
  ModelPrediction p = Cluster(OptimalPasses(bits), bits, c);
  ModelPrediction cluster_r = Cluster(OptimalPasses(bits), bits, c);
  p += cluster_r;
  p += RadixJoinPhase(bits, c);
  return p;
}

ModelPrediction CostModel::TotalPhashJoin(int bits, uint64_t c) const {
  ModelPrediction p = Cluster(OptimalPasses(bits), bits, c);
  ModelPrediction cluster_r = Cluster(OptimalPasses(bits), bits, c);
  p += cluster_r;
  p += PhashJoinPhase(bits, c);
  return p;
}

ModelPrediction CostModel::SimpleHashJoin(uint64_t c) const {
  return PhashJoinPhase(/*bits=*/0, c);
}

int CostModel::BestRadixBits(uint64_t c, int max_bits) const {
  int best = 0;
  double best_ns = TotalRadixJoin(0, c).total_ns(m_.lat);
  for (int b = 1; b <= max_bits; ++b) {
    double ns = TotalRadixJoin(b, c).total_ns(m_.lat);
    if (ns < best_ns) {
      best_ns = ns;
      best = b;
    }
  }
  return best;
}

int CostModel::BestPhashBits(uint64_t c, int max_bits) const {
  int best = 0;
  double best_ns = TotalPhashJoin(0, c).total_ns(m_.lat);
  for (int b = 1; b <= max_bits; ++b) {
    double ns = TotalPhashJoin(b, c).total_ns(m_.lat);
    if (ns < best_ns) {
      best_ns = ns;
      best = b;
    }
  }
  return best;
}

}  // namespace ccdb
