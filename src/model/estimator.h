// Cardinality estimation — turns the column statistics of model/stats.h
// into the numbers the planner decides with *before* executing anything:
// selectivities for every Expr shape (min-max range fractions and distinct
// counts), join output sizes from distinct-key overlap, and grouped
// cardinalities for multi-key aggregates (per-column distinct counts under
// a correlation cap). Everything degrades gracefully: a column without
// stats (aggregate outputs, raw strings) falls back to the textbook default
// selectivities, and every estimate is clamped to its feasible range.
#ifndef CCDB_MODEL_ESTIMATOR_H_
#define CCDB_MODEL_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "exec/plan.h"
#include "model/stats.h"

namespace ccdb {

/// Where a visible plan column's values physically live. A name that is
/// ambiguous (both sides of a join) or derived (aggregate output) resolves
/// to a null table — "no stats available", never a guess at the wrong side.
struct ColumnSource {
  const Table* table = nullptr;
  size_t col = 0;
};

using ColumnSourceMap = std::map<std::string, ColumnSource>;

/// Maps every column name visible at `n` to its base-table storage.
/// Aggregate outputs and ambiguous join columns map to a null source.
ColumnSourceMap CollectColumnSources(const LogicalNode& n);

/// Stats of the column `name` at node scope `src`, or nullopt when the
/// column is derived/ambiguous/unknown.
std::optional<ColumnStats> ResolveStats(const ColumnSourceMap& src,
                                        const std::string& name);

// Fallback selectivities when no statistics apply (the System-R defaults).
inline constexpr double kDefaultEqSelectivity = 0.1;
inline constexpr double kDefaultRangeSelectivity = 0.3;
inline constexpr double kDefaultNeSelectivity = 0.9;

/// Selectivity in [0, 1] of a filter expression (any shape — normalization
/// not required; Not is handled as complement). Conjunctions multiply,
/// disjunctions combine by inclusion-exclusion under independence.
double EstimateExprSelectivity(const Expr& e, const ColumnSourceMap& src);

/// Output rows of an equi-join: |L|*|R| / max(d_L, d_R) restricted to the
/// overlap of the two keys' min-max ranges (disjoint ranges estimate zero
/// matches), with the distinct counts capped at each side's row estimate.
/// Semi/anti/left-outer derive from the per-probe-row match probability.
uint64_t EstimateJoinRows(uint64_t left_rows,
                          const std::optional<ColumnStats>& left_key,
                          uint64_t right_rows,
                          const std::optional<ColumnStats>& right_key,
                          JoinType type);

/// Distinct combinations of the key columns over `rows` input rows: the
/// per-column distinct counts multiplied under exponential backoff
/// (d1 * d2^1/2 * d3^1/4 * ...) — the correlation cap that keeps
/// GroupByAgg({a, b}) from estimating |a| x |b| for correlated keys — and
/// clamped to [1, rows].
uint64_t EstimateGroupCount(uint64_t rows,
                            std::span<const std::optional<ColumnStats>> keys);

/// Estimated output rows of a whole logical subtree (recursive; join nodes
/// use EstimateJoinRows at each side's estimated cardinality, aggregates
/// use EstimateGroupCount). This is what the planner ranks join orders by.
uint64_t EstimateNodeRows(const LogicalNode& n);

}  // namespace ccdb

#endif  // CCDB_MODEL_ESTIMATOR_H_
