#include "model/estimator.h"

#include <algorithm>
#include <cmath>

#include "exec/table.h"

namespace ccdb {

namespace {

double Clamp01(double x) {
  if (!(x > 0.0)) return 0.0;  // also catches NaN
  return x > 1.0 ? 1.0 : x;
}

void MergeSources(ColumnSourceMap* into, const ColumnSourceMap& from) {
  for (const auto& [name, src] : from) {
    auto [it, inserted] = into->emplace(name, src);
    if (!inserted) it->second = ColumnSource{};  // ambiguous: no stats
  }
}

}  // namespace

ColumnSourceMap CollectColumnSources(const LogicalNode& n) {
  switch (n.op) {
    case LogicalOp::kScan: {
      ColumnSourceMap out;
      if (n.table == nullptr) return out;
      for (size_t i = 0; i < n.table->num_columns(); ++i) {
        out.emplace(n.table->schema().field(i).name,
                    ColumnSource{n.table, i});
      }
      return out;
    }
    case LogicalOp::kJoin: {
      if (n.children.size() < 2 || n.children[0] == nullptr ||
          n.children[1] == nullptr) {
        return {};
      }
      ColumnSourceMap out = CollectColumnSources(*n.children[0]);
      if (n.join_type == JoinType::kSemi || n.join_type == JoinType::kAnti) {
        return out;  // right side does not surface
      }
      MergeSources(&out, CollectColumnSources(*n.children[1]));
      return out;
    }
    case LogicalOp::kProject: {
      if (n.children.empty() || n.children[0] == nullptr) return {};
      ColumnSourceMap in = CollectColumnSources(*n.children[0]);
      ColumnSourceMap out;
      for (const std::string& name : n.columns) {
        auto it = in.find(name);
        if (it != in.end()) out.emplace(name, it->second);
      }
      return out;
    }
    case LogicalOp::kGroupByAgg: {
      if (n.children.empty() || n.children[0] == nullptr) return {};
      ColumnSourceMap in = CollectColumnSources(*n.children[0]);
      ColumnSourceMap out;
      for (const std::string& name : n.group_cols) {
        auto it = in.find(name);
        if (it != in.end()) out.emplace(name, it->second);
      }
      // Aggregate outputs are derived: deliberately absent (no stats).
      return out;
    }
    default: {
      if (n.children.empty() || n.children[0] == nullptr) return {};
      return CollectColumnSources(*n.children[0]);
    }
  }
}

std::optional<ColumnStats> ResolveStats(const ColumnSourceMap& src,
                                        const std::string& name) {
  auto it = src.find(name);
  if (it == src.end() || it->second.table == nullptr) return std::nullopt;
  auto s = it->second.table->stats(it->second.col);
  if (!s.ok()) return std::nullopt;
  return *s;
}

namespace {

/// The literal a leaf compares against, as a double on the column's value
/// (or dictionary-code) domain. String literals resolve through the encoded
/// column's dictionary when possible; an unknown string yields nullopt (the
/// caller falls back to 1/distinct-style arithmetic).
std::optional<double> LeafValue(const Literal& lit, const ColumnSourceMap& src,
                                const std::string& column) {
  switch (lit.type) {
    case Literal::Type::kU32:
      return static_cast<double>(lit.u32);
    case Literal::Type::kI64:
      return static_cast<double>(lit.i64);
    case Literal::Type::kF64:
      return lit.f64;
    case Literal::Type::kStr: {
      auto it = src.find(column);
      if (it == src.end() || it->second.table == nullptr) return std::nullopt;
      const Table* t = it->second.table;
      if (!t->is_encoded(it->second.col)) return std::nullopt;
      auto code = t->dict(it->second.col).Lookup(lit.str);
      if (!code.ok()) return std::nullopt;
      return static_cast<double>(*code);
    }
  }
  return std::nullopt;
}

double EqSelectivity(const std::optional<ColumnStats>& s,
                     std::optional<double> v, bool integral) {
  if (!s.has_value() || s->distinct == 0) return kDefaultEqSelectivity;
  if (v.has_value() && s->has_range && (*v < s->min || *v > s->max)) {
    return 0.0;
  }
  (void)integral;
  return Clamp01(1.0 / static_cast<double>(s->distinct));
}

double LeafSelectivity(const Expr& e, const ColumnSourceMap& src) {
  std::optional<ColumnStats> s = ResolveStats(src, e.column);
  switch (e.kind) {
    case Expr::Kind::kCmp: {
      bool integral = e.value.type != Literal::Type::kF64;
      std::optional<double> v = LeafValue(e.value, src, e.column);
      switch (e.cmp) {
        case CmpOp::kEq:
          return EqSelectivity(s, v, integral);
        case CmpOp::kNe:
          if (!s.has_value()) return kDefaultNeSelectivity;
          return Clamp01(1.0 - EqSelectivity(s, v, integral));
        case CmpOp::kLt:
        case CmpOp::kLe: {
          if (!s.has_value() || !v.has_value()) {
            return kDefaultRangeSelectivity;
          }
          double hi = e.cmp == CmpOp::kLt && integral ? *v - 1 : *v;
          return s->RangeFraction(s->has_range ? s->min : 0, hi, integral,
                                  kDefaultRangeSelectivity);
        }
        case CmpOp::kGt:
        case CmpOp::kGe: {
          if (!s.has_value() || !v.has_value()) {
            return kDefaultRangeSelectivity;
          }
          double lo = e.cmp == CmpOp::kGt && integral ? *v + 1 : *v;
          return s->RangeFraction(lo, s->has_range ? s->max : 0, integral,
                                  kDefaultRangeSelectivity);
        }
      }
      return kDefaultRangeSelectivity;
    }
    case Expr::Kind::kBetween: {
      bool integral = e.lo.type != Literal::Type::kF64;
      std::optional<double> lo = LeafValue(e.lo, src, e.column);
      std::optional<double> hi = LeafValue(e.hi, src, e.column);
      double sel = kDefaultRangeSelectivity;
      if (s.has_value() && lo.has_value() && hi.has_value()) {
        sel = s->RangeFraction(*lo, *hi, integral, kDefaultRangeSelectivity);
      }
      return Clamp01(e.negated ? 1.0 - sel : sel);
    }
    case Expr::Kind::kIn: {
      size_t k = e.in_u32.empty() ? e.in_str.size() : e.in_u32.size();
      double per_value =
          s.has_value() && s->distinct > 0
              ? 1.0 / static_cast<double>(s->distinct)
              : kDefaultEqSelectivity;
      double sel = Clamp01(static_cast<double>(k) * per_value);
      return Clamp01(e.negated ? 1.0 - sel : sel);
    }
    default:
      return 1.0;
  }
}

}  // namespace

double EstimateExprSelectivity(const Expr& e, const ColumnSourceMap& src) {
  switch (e.kind) {
    case Expr::Kind::kAnd: {
      double sel = 1.0;
      for (const Expr& c : e.children) {
        sel *= EstimateExprSelectivity(c, src);
      }
      return Clamp01(sel);
    }
    case Expr::Kind::kOr: {
      double none = 1.0;
      for (const Expr& c : e.children) {
        none *= 1.0 - EstimateExprSelectivity(c, src);
      }
      return Clamp01(1.0 - none);
    }
    case Expr::Kind::kNot: {
      if (e.children.size() != 1) return 1.0;
      return Clamp01(1.0 - EstimateExprSelectivity(e.children[0], src));
    }
    default:
      return Clamp01(LeafSelectivity(e, src));
  }
}

uint64_t EstimateJoinRows(uint64_t left_rows,
                          const std::optional<ColumnStats>& left_key,
                          uint64_t right_rows,
                          const std::optional<ColumnStats>& right_key,
                          JoinType type) {
  double l = static_cast<double>(left_rows);
  double r = static_cast<double>(right_rows);
  double matches = 0;
  double match_prob = 0;  // per probe row: P(>= 1 inner match)
  if (left_rows > 0 && right_rows > 0) {
    double dl = left_key.has_value() && left_key->distinct > 0
                    ? std::min<double>(static_cast<double>(left_key->distinct),
                                       l)
                    : l;
    double dr = right_key.has_value() && right_key->distinct > 0
                    ? std::min<double>(
                          static_cast<double>(right_key->distinct), r)
                    : r;
    // Distinct-key overlap: restrict each side to the intersection of the
    // two min-max ranges; disjoint key ranges join to nothing.
    double fl = 1.0, fr = 1.0;
    if (left_key.has_value() && right_key.has_value() &&
        left_key->has_range && right_key->has_range) {
      double ilo = std::max(left_key->min, right_key->min);
      double ihi = std::min(left_key->max, right_key->max);
      fl = left_key->RangeFraction(ilo, ihi, /*integral=*/true, 1.0);
      fr = right_key->RangeFraction(ilo, ihi, /*integral=*/true, 1.0);
    }
    double dli = std::max(dl * fl, 1e-9);
    double dri = std::max(dr * fr, 1e-9);
    matches = (l * fl) * (r * fr) / std::max(dli, dri);
    matches = std::min(matches, l * r);
    // A probe row in the overlap matches iff its key occurs on the build
    // side: with containment, min(1, d_R / d_L) of the overlapping keys.
    match_prob = Clamp01(fl * std::min(1.0, dri / dli));
  }
  double out = 0;
  switch (type) {
    case JoinType::kInner:
      out = matches;
      break;
    case JoinType::kSemi:
      out = l * match_prob;
      break;
    case JoinType::kAnti:
      out = l * (1.0 - match_prob);
      break;
    case JoinType::kLeftOuter:
      out = matches + l * (1.0 - match_prob);
      break;
  }
  if (out < 0) out = 0;
  return static_cast<uint64_t>(out + 0.5);
}

uint64_t EstimateGroupCount(
    uint64_t rows, std::span<const std::optional<ColumnStats>> keys) {
  if (rows == 0) return 0;
  std::vector<double> d;
  d.reserve(keys.size());
  for (const auto& k : keys) {
    double di = k.has_value() && k->distinct > 0
                    ? static_cast<double>(k->distinct)
                    : static_cast<double>(rows);
    d.push_back(std::min(di, static_cast<double>(rows)));
  }
  // Exponential backoff (correlation cap): the most selective key counts
  // fully, every further key contributes a damped factor — perfectly
  // correlated keys then cost nothing extra, independent ones still grow
  // the estimate, and the row count bounds it either way.
  std::sort(d.begin(), d.end(), std::greater<double>());
  double est = 1.0;
  double exponent = 1.0;
  for (double di : d) {
    est *= std::pow(di, exponent);
    exponent *= 0.5;
    if (est >= static_cast<double>(rows)) break;
  }
  est = std::min(est, static_cast<double>(rows));
  if (est < 1.0) est = 1.0;
  return static_cast<uint64_t>(est + 0.5);
}

uint64_t EstimateNodeRows(const LogicalNode& n) {
  switch (n.op) {
    case LogicalOp::kScan:
      return n.table == nullptr ? 0 : n.table->num_rows();
    case LogicalOp::kSelect:
    case LogicalOp::kHaving: {
      if (n.children.empty() || n.children[0] == nullptr) return 0;
      uint64_t in = EstimateNodeRows(*n.children[0]);
      ColumnSourceMap src = CollectColumnSources(*n.children[0]);
      double sel = EstimateExprSelectivity(n.filter, src);
      return static_cast<uint64_t>(static_cast<double>(in) * sel + 0.5);
    }
    case LogicalOp::kJoin: {
      if (n.children.size() < 2 || n.children[0] == nullptr ||
          n.children[1] == nullptr) {
        return 0;
      }
      uint64_t l = EstimateNodeRows(*n.children[0]);
      uint64_t r = EstimateNodeRows(*n.children[1]);
      ColumnSourceMap lsrc = CollectColumnSources(*n.children[0]);
      ColumnSourceMap rsrc = CollectColumnSources(*n.children[1]);
      return EstimateJoinRows(l, ResolveStats(lsrc, n.left_key), r,
                              ResolveStats(rsrc, n.right_key), n.join_type);
    }
    case LogicalOp::kGroupByAgg: {
      if (n.children.empty() || n.children[0] == nullptr) return 0;
      uint64_t in = EstimateNodeRows(*n.children[0]);
      ColumnSourceMap src = CollectColumnSources(*n.children[0]);
      std::vector<std::optional<ColumnStats>> keys;
      keys.reserve(n.group_cols.size());
      for (const std::string& g : n.group_cols) {
        keys.push_back(ResolveStats(src, g));
      }
      return EstimateGroupCount(in, keys);
    }
    case LogicalOp::kProject:
    case LogicalOp::kOrderBy:
      if (n.children.empty() || n.children[0] == nullptr) return 0;
      return EstimateNodeRows(*n.children[0]);
    case LogicalOp::kLimit: {
      if (n.children.empty() || n.children[0] == nullptr) return 0;
      uint64_t in = EstimateNodeRows(*n.children[0]);
      uint64_t avail = in > n.offset ? in - n.offset : 0;
      return std::min(avail, n.limit);
    }
  }
  return 0;
}

}  // namespace ccdb
