#include "model/strategy.h"

#include <cmath>

#include "util/bits.h"

namespace ccdb {

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kSortMerge: return "sort-merge";
    case JoinStrategy::kSimpleHash: return "simple hash";
    case JoinStrategy::kPhashL2: return "phash L2";
    case JoinStrategy::kPhashTLB: return "phash TLB";
    case JoinStrategy::kPhashL1: return "phash L1";
    case JoinStrategy::kPhash256: return "phash 256";
    case JoinStrategy::kPhashMin: return "phash min";
    case JoinStrategy::kRadix8: return "radix 8";
    case JoinStrategy::kRadixMin: return "radix min";
    case JoinStrategy::kBest: return "best";
  }
  return "?";
}

namespace {

// B = ceil(log2(c * bytes_per_tuple / target_bytes)), clamped to [0, 27].
// Rounding up makes the cluster *fit* the target level.
int BitsFor(uint64_t c, double bytes_per_tuple, double target_bytes) {
  double clusters = static_cast<double>(c) * bytes_per_tuple / target_bytes;
  if (clusters <= 1.0) return 0;
  int b = static_cast<int>(std::ceil(std::log2(clusters)));
  return std::min(b, 27);
}

}  // namespace

int StrategyBits(JoinStrategy s, uint64_t c, const MachineProfile& profile) {
  switch (s) {
    case JoinStrategy::kSortMerge:
    case JoinStrategy::kSimpleHash:
      return 0;
    case JoinStrategy::kPhashL2:
      return BitsFor(c, 12, static_cast<double>(profile.l2.capacity_bytes));
    case JoinStrategy::kPhashTLB:
      return BitsFor(c, 12, static_cast<double>(profile.tlb.span_bytes()));
    case JoinStrategy::kPhashL1:
      return BitsFor(c, 12, static_cast<double>(profile.l1.capacity_bytes));
    case JoinStrategy::kPhash256:
      return BitsFor(c, 1, 256);
    case JoinStrategy::kPhashMin:
      return BitsFor(c, 1, 200);
    case JoinStrategy::kRadix8:
      return BitsFor(c, 1, 8);
    case JoinStrategy::kRadixMin:
      return BitsFor(c, 1, 4);
    case JoinStrategy::kBest:
      break;  // resolved by PlanJoin via the model
  }
  return 0;
}

JoinPlan PlanJoin(JoinStrategy s, uint64_t c, const MachineProfile& profile) {
  CostModel model(profile);
  JoinPlan plan;
  plan.strategy = s;
  switch (s) {
    case JoinStrategy::kSortMerge:
      plan.use_radix_join = false;
      plan.bits = 0;
      plan.passes = 1;
      plan.predicted_ms = 0;
      return plan;
    case JoinStrategy::kSimpleHash:
      plan.use_radix_join = false;
      plan.bits = 0;
      plan.passes = 1;
      plan.predicted_ms = model.Millis(model.SimpleHashJoin(c));
      return plan;
    case JoinStrategy::kRadix8:
    case JoinStrategy::kRadixMin:
      plan.use_radix_join = true;
      plan.bits = StrategyBits(s, c, profile);
      plan.passes = model.OptimalPasses(plan.bits);
      plan.predicted_ms = model.Millis(model.TotalRadixJoin(plan.bits, c));
      return plan;
    case JoinStrategy::kBest: {
      int rb = model.BestRadixBits(c);
      int pb = model.BestPhashBits(c);
      double radix_ns = model.TotalRadixJoin(rb, c).total_ns(profile.lat);
      double phash_ns = model.TotalPhashJoin(pb, c).total_ns(profile.lat);
      plan.use_radix_join = radix_ns < phash_ns;
      plan.bits = plan.use_radix_join ? rb : pb;
      plan.passes = model.OptimalPasses(plan.bits);
      plan.predicted_ms = std::min(radix_ns, phash_ns) * 1e-6;
      return plan;
    }
    default:
      plan.use_radix_join = false;
      plan.bits = StrategyBits(s, c, profile);
      plan.passes = model.OptimalPasses(plan.bits);
      plan.predicted_ms = model.Millis(model.TotalPhashJoin(plan.bits, c));
      return plan;
  }
}

}  // namespace ccdb
