// Sort-merge join: the second Fig. 13 baseline. Sorts copies of both
// relations on the join value, then merges. As §3.2 argues, the sort phase
// has random access behaviour over the entire relation — which is why it
// loses to cache-conscious algorithms as relations outgrow the caches.
#ifndef CCDB_ALGO_SORT_MERGE_JOIN_H_
#define CCDB_ALGO_SORT_MERGE_JOIN_H_

#include "algo/join_common.h"
#include "algo/radix_sort.h"
#include "util/timer.h"

namespace ccdb {

enum class SortAlgo {
  kQuickSort,  ///< comparison sort: the paper's "random access" baseline
  kRadixSort,  ///< LSB radix sort: sequential passes (what radix-join
               ///< degenerates to at cluster size 1)
};

/// Merge phase over two tail-sorted runs, appending [l.head, r.head] pairs
/// to `out` (equal-value runs emit the cross product, l-major). Shared by
/// SortMergeJoin and JoinOp's chunked sort-merge path so their emit order
/// can never drift apart.
template <class Mem>
void MergeSortedByTail(std::span<const Bun> ls, std::span<const Bun> rs,
                       Mem& mem, std::vector<Bun>& out) {
  size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    uint32_t vl = mem.Load(&ls[i]).tail;
    uint32_t vr = mem.Load(&rs[j]).tail;
    if (vl < vr) {
      ++i;
    } else if (vr < vl) {
      ++j;
    } else {
      // Equal-value runs: emit the cross product.
      size_t i2 = i;
      while (i2 < ls.size() && mem.Load(&ls[i2]).tail == vl) ++i2;
      size_t j2 = j;
      while (j2 < rs.size() && mem.Load(&rs[j2]).tail == vl) ++j2;
      for (size_t a = i; a < i2; ++a) {
        Bun lt = mem.Load(&ls[a]);
        for (size_t b = j; b < j2; ++b) {
          Bun rt = mem.Load(&rs[b]);
          EmitResult(out, Bun{lt.head, rt.head}, mem);
        }
      }
      i = i2;
      j = j2;
    }
  }
}

template <class Mem>
std::vector<Bun> SortMergeJoin(std::span<const Bun> l, std::span<const Bun> r,
                               Mem& mem, JoinStats* stats = nullptr,
                               SortAlgo sort = SortAlgo::kQuickSort,
                               size_t result_hint = 0) {
  WallTimer t_sort;
  std::vector<Bun> ls(l.size()), rs(r.size());
  for (size_t i = 0; i < l.size(); ++i) mem.Store(&ls[i], mem.Load(&l[i]));
  for (size_t i = 0; i < r.size(); ++i) mem.Store(&rs[i], mem.Load(&r[i]));
  if (sort == SortAlgo::kQuickSort) {
    QuickSortByTail(std::span<Bun>(ls), mem);
    QuickSortByTail(std::span<Bun>(rs), mem);
  } else {
    RadixSortByTail(std::span<Bun>(ls), mem);
    RadixSortByTail(std::span<Bun>(rs), mem);
  }
  double sort_ms = t_sort.ElapsedMillis();

  WallTimer t_merge;
  std::vector<Bun> out;
  out.reserve(result_hint != 0 ? result_hint : std::min(l.size(), r.size()));
  MergeSortedByTail<Mem>(ls, rs, mem, out);
  if (stats != nullptr) {
    *stats = JoinStats{};
    // Report the sort as the "cluster" phase: it plays the same role
    // (reorganize for locality) in the total-cost comparison of Fig. 13.
    stats->cluster_left_ms = sort_ms / 2;
    stats->cluster_right_ms = sort_ms / 2;
    stats->join_ms = t_merge.ElapsedMillis();
    stats->result_count = out.size();
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_SORT_MERGE_JOIN_H_
