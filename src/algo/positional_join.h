// Positional join on virtual-OID columns (§3.1): "When one of the join
// columns is VOID, Monet uses positional lookup instead of e.g.
// hash-lookup; effectively eliminating all join cost."
//
// The canonical use is tuple reconstruction: after an operator produced a
// BAT whose tail holds OIDs into a base table, joining it with any
// decomposition BAT [void OID, value] is pure arithmetic — the matching
// tuple of OID o *is* position o - base.
#ifndef CCDB_ALGO_POSITIONAL_JOIN_H_
#define CCDB_ALGO_POSITIONAL_JOIN_H_

#include <span>
#include <vector>

#include "algo/join_common.h"

namespace ccdb {

/// Joins `l` (tail = OID references) against a void-headed relation
/// [void(base..base+count), tail-position]: emits {l.head, position} for
/// every l whose tail lands in [base, base+count). With a dense foreign key
/// this is a hit-rate-1 join at one subtraction per tuple.
template <class Mem>
std::vector<Bun> PositionalJoin(std::span<const Bun> l, oid_t base,
                                size_t count, Mem& mem) {
  std::vector<Bun> out;
  out.reserve(l.size());
  for (size_t i = 0; i < l.size(); ++i) {
    Bun t = mem.Load(&l[i]);
    uint32_t offset = t.tail - base;  // wraps below base: filtered next line
    if (offset < count) {
      EmitResult(out, Bun{t.head, offset}, mem);
    }
  }
  return out;
}

/// Tuple-reconstruction gather: fetches values[oids[i] - base] for each
/// reference — the projection path a positional join enables. Returns the
/// gathered values; out-of-range references are CCDB_DCHECKed (callers have
/// validated OIDs at plan time).
template <class Mem, typename T>
std::vector<T> PositionalGather(std::span<const Bun> refs,
                                std::span<const T> values, oid_t base,
                                Mem& mem) {
  std::vector<T> out(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    Bun t = mem.Load(&refs[i]);
    uint32_t offset = t.tail - base;
    CCDB_DCHECK(offset < values.size());
    out[i] = mem.Load(&values[offset]);
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_POSITIONAL_JOIN_H_
