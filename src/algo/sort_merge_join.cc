#include "algo/sort_merge_join.h"

namespace ccdb {

template std::vector<Bun> SortMergeJoin<DirectMemory>(std::span<const Bun>,
                                                      std::span<const Bun>,
                                                      DirectMemory&,
                                                      JoinStats*, SortAlgo,
                                                      size_t);
template std::vector<Bun> SortMergeJoin<SimulatedMemory>(std::span<const Bun>,
                                                         std::span<const Bun>,
                                                         SimulatedMemory&,
                                                         JoinStats*, SortAlgo,
                                                         size_t);

}  // namespace ccdb
