// Scan-selections (§3.2): for low selectivity "most data needs to be
// visited and this is best done with a scan-select (it has optimal data
// locality)". These kernels are the per-column scans that make vertical
// fragmentation pay off: the stride is the value width, not the record
// width.
#ifndef CCDB_ALGO_SELECT_H_
#define CCDB_ALGO_SELECT_H_

#include <span>
#include <vector>

#include "bat/types.h"
#include "mem/access.h"

namespace ccdb {

/// Positions i with lo <= values[i] <= hi. Positions are OIDs under the
/// void-head convention. T in {uint8_t, uint16_t, uint32_t, int32_t, ...}.
template <class Mem, typename T>
std::vector<oid_t> RangeSelect(std::span<const T> values, T lo, T hi,
                               Mem& mem) {
  std::vector<oid_t> out;
  for (size_t i = 0; i < values.size(); ++i) {
    T v = mem.Load(&values[i]);
    if (lo <= v && v <= hi) out.push_back(static_cast<oid_t>(i));
  }
  return out;
}

/// Positions i with values[i] == v — e.g. a selection on a byte-encoded
/// column after the predicate has been remapped to its code (§3.1).
template <class Mem, typename T>
std::vector<oid_t> EqSelect(std::span<const T> values, T v, Mem& mem) {
  return RangeSelect<Mem, T>(values, v, v, mem);
}

/// Count-only variant: the zero-selectivity aggregate scan of the paper's
/// §2 experiment ("a selection on a column with zero selectivity or a
/// simple aggregation").
template <class Mem, typename T>
uint64_t CountRange(std::span<const T> values, T lo, T hi, Mem& mem) {
  uint64_t n = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    T v = mem.Load(&values[i]);
    n += (lo <= v && v <= hi) ? 1 : 0;
  }
  return n;
}

/// Sum aggregate over a u32 column (e.g. Max/Sum of §2).
template <class Mem, typename T>
uint64_t SumColumn(std::span<const T> values, Mem& mem) {
  uint64_t s = 0;
  for (size_t i = 0; i < values.size(); ++i) s += mem.Load(&values[i]);
  return s;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_SELECT_H_
