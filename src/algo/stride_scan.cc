#include "algo/stride_scan.h"

namespace ccdb {

template uint64_t StrideScanSum<DirectMemory>(const uint8_t*, size_t, size_t,
                                              size_t, DirectMemory&);
template uint64_t StrideScanSum<SimulatedMemory>(const uint8_t*, size_t,
                                                 size_t, size_t,
                                                 SimulatedMemory&);

}  // namespace ccdb
