// Non-partitioned ("simple") hash-join: the classic main-memory equi-join
// the paper uses as baseline in Fig. 13. Builds one bucket-chained hash
// table over the entire inner relation and probes it with the outer. When
// inner + table exceed the caches, every probe is a random-access cache
// miss — the paper's motivating pathology (§3.2).
#ifndef CCDB_ALGO_SIMPLE_HASH_JOIN_H_
#define CCDB_ALGO_SIMPLE_HASH_JOIN_H_

#include "algo/hash_table.h"
#include "util/timer.h"

namespace ccdb {

template <class Mem, class HashFn = IdentityHash>
std::vector<Bun> SimpleHashJoin(std::span<const Bun> l, std::span<const Bun> r,
                                Mem& mem, JoinStats* stats = nullptr,
                                size_t result_hint = 0,
                                size_t avg_chain = kDefaultChainLength) {
  WallTimer t;
  std::vector<Bun> out;
  out.reserve(result_hint != 0 ? result_hint : std::min(l.size(), r.size()));
  BucketChainedHashTable<Mem, HashFn> table(r, /*shift=*/0, avg_chain, mem);
  for (size_t i = 0; i < l.size(); ++i) {
    Bun lt = mem.Load(&l[i]);
    table.Probe(lt, mem,
                [&](Bun rt) { EmitResult(out, Bun{lt.head, rt.head}, mem); });
  }
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->join_ms = t.ElapsedMillis();
    stats->result_count = out.size();
  }
  return out;
}

/// Simple hash join with software prefetching on the probe stream — the
/// [Mow94] latency-hiding idea §2 discusses. While probing tuple i, the
/// bucket head that tuple i+distance will need is prefetched, overlapping
/// its memory latency with the current chain walk. The paper expected
/// limited benefit ("the amount of CPU work per memory access tends to be
/// small"); bench/ablation_prefetch quantifies it on modern hardware.
/// DirectMemory only: prefetch hints have no meaning in the simulator.
inline std::vector<Bun> SimpleHashJoinPrefetch(std::span<const Bun> l,
                                               std::span<const Bun> r,
                                               size_t prefetch_distance,
                                               JoinStats* stats = nullptr,
                                               size_t result_hint = 0) {
  DirectMemory mem;
  WallTimer t;
  std::vector<Bun> out;
  out.reserve(result_hint != 0 ? result_hint : std::min(l.size(), r.size()));
  BucketChainedHashTable<DirectMemory> table(r, /*shift=*/0,
                                             kDefaultChainLength, mem);
  for (size_t i = 0; i < l.size(); ++i) {
    if (prefetch_distance > 0 && i + prefetch_distance < l.size()) {
      table.PrefetchBucket(l[i + prefetch_distance].tail);
    }
    Bun lt = l[i];
    table.Probe(lt, mem,
                [&](Bun rt) { EmitResult(out, Bun{lt.head, rt.head}, mem); });
  }
  if (stats != nullptr) {
    *stats = JoinStats{};
    stats->join_ms = t.ElapsedMillis();
    stats->result_count = out.size();
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_SIMPLE_HASH_JOIN_H_
