// Binary search over a sorted array: the no-structure baseline for the
// §3.2 index comparison. Each probe touches O(log N) cache lines spread
// across the whole array — more than a cache-line-node B-tree of the same
// size, which packs ~8-16 separators per line.
#ifndef CCDB_ALGO_SORTED_SEARCH_H_
#define CCDB_ALGO_SORTED_SEARCH_H_

#include <span>

#include "mem/access.h"

namespace ccdb {

/// Index of the first element >= key (== size() when none). `data` sorted.
template <class Mem, typename T>
size_t BinarySearchLowerBound(std::span<const T> data, T key, Mem& mem) {
  size_t lo = 0, hi = data.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (mem.Load(&data[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_SORTED_SEARCH_H_
