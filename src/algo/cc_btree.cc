#include "algo/cc_btree.h"

#include "util/bits.h"

namespace ccdb {

Status BTreeOptions::Validate() const {
  if (node_bytes < 8 || node_bytes > 65536)
    return Status::InvalidArgument("node_bytes must be in [8, 65536]");
  if (node_bytes % sizeof(uint32_t) != 0)
    return Status::InvalidArgument("node_bytes must be a multiple of 4");
  return Status::Ok();
}

StatusOr<CacheConsciousBTree> CacheConsciousBTree::Build(
    std::span<const Bun> data, const BTreeOptions& options) {
  CCDB_RETURN_IF_ERROR(options.Validate());
  CacheConsciousBTree t;
  t.fanout_ = options.node_bytes / sizeof(uint32_t);

  std::vector<Bun> sorted(data.begin(), data.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Bun& a, const Bun& b) { return a.tail < b.tail; });
  t.keys_.resize(sorted.size());
  t.oids_.resize(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    t.keys_[i] = sorted[i].tail;
    t.oids_[i] = sorted[i].head;
  }
  if (t.keys_.empty()) return t;

  // Build separator levels bottom-up: level entry = max key of each chunk
  // of `fanout_` entries below; stop once a level fits one node.
  std::vector<uint32_t> below_max;
  {
    size_t chunks = (t.keys_.size() + t.fanout_ - 1) / t.fanout_;
    below_max.resize(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      size_t end = std::min((c + 1) * t.fanout_, t.keys_.size());
      below_max[c] = t.keys_[end - 1];
    }
  }
  while (below_max.size() > 1) {
    t.levels_.push_back(below_max);
    size_t chunks = (below_max.size() + t.fanout_ - 1) / t.fanout_;
    std::vector<uint32_t> next(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      size_t end = std::min((c + 1) * t.fanout_, below_max.size());
      next[c] = below_max[end - 1];
    }
    below_max.swap(next);
  }
  std::reverse(t.levels_.begin(), t.levels_.end());
  return t;
}

size_t CacheConsciousBTree::MemoryBytes() const {
  size_t total = (keys_.size() + oids_.size()) * sizeof(uint32_t);
  for (const auto& level : levels_) total += level.size() * sizeof(uint32_t);
  return total;
}

}  // namespace ccdb
