// BAT algebra: Monet's operator style, where every operator consumes and
// produces BATs (§3.1). These are thin, well-typed wrappers over the
// kernels in src/algo that keep results in BAT form, so operator trees can
// be composed the way Monet's MIL programs compose them — including the
// tuple-reconstruction joins that void columns make free.
#ifndef CCDB_ALGO_BAT_ALGEBRA_H_
#define CCDB_ALGO_BAT_ALGEBRA_H_

#include "bat/bat.h"
#include "util/status.h"

namespace ccdb {

/// select(b, lo, hi): BUNs of `b` whose integral tail is in [lo, hi].
/// Result: [head-OID, tail-value] pairs of the qualifying BUNs, with the
/// head materialized (candidates are no longer dense).
StatusOr<Bat> BatSelect(const Bat& b, uint32_t lo, uint32_t hi);

/// reverse(b): swap head and tail (O(1) — column swap).
Bat BatReverse(const Bat& b);

/// mirror(b): [head, head] — both columns the head (Monet's `mirror`).
StatusOr<Bat> BatMirror(const Bat& b);

/// mark(b, base): [head, void(base..)] — number the BUNs densely (Monet's
/// `mark`, used to introduce fresh OIDs after a selection).
StatusOr<Bat> BatMark(const Bat& b, oid_t base);

/// join(l, r): match l.tail == r.head, emit [l.head, r.tail].
/// Dispatches on r's head representation:
///   * void head -> positional lookup, "effectively eliminating all join
///     cost" (§3.1);
///   * u32 head  -> bucket-chained hash join.
/// Requires integral tails <= 32 bits on l and r.
StatusOr<Bat> BatJoin(const Bat& l, const Bat& r);

/// semijoin(l, r): BUNs of `l` whose head appears as a head in `r`.
StatusOr<Bat> BatSemijoin(const Bat& l, const Bat& r);

/// unique(b): first BUN of each distinct tail value (integral tails).
StatusOr<Bat> BatUnique(const Bat& b);

/// count(b): number of BUNs (trivial, for algebra completeness).
inline uint64_t BatCount(const Bat& b) { return b.size(); }

/// sum(b): sum of the integral tail values.
StatusOr<uint64_t> BatSum(const Bat& b);

/// slice(b, first, count): BUNs at positions [first, first+count), clamped
/// to the BAT's size (Monet's `slice`, the LIMIT/OFFSET primitive).
StatusOr<Bat> BatSlice(const Bat& b, size_t first, size_t count);

/// sort(b): BUNs reordered ascending by integral tail (stable; radix sort).
StatusOr<Bat> BatSortByTail(const Bat& b);

/// histogram(b): [value, frequency] per distinct integral tail value,
/// ascending by value.
StatusOr<Bat> BatHistogram(const Bat& b);

/// append(a, b): concatenation; heads are materialized.
StatusOr<Bat> BatAppend(const Bat& a, const Bat& b);

// --- candidate-list kernels (§3.1 pipelining) --------------------------------
// A candidate list is a selection vector of OIDs produced by an upstream
// selection. These kernels let further selections and projections run
// *through* the list — only qualifying BUNs are touched and no intermediate
// BAT is materialized between operators.

/// select(b, lo, hi | cands): positions i into `cands` whose value
/// b.tail[cands[i]] is in [lo, hi]. Requires integral tail; OIDs beyond the
/// BAT are kOutOfRange.
StatusOr<std::vector<uint32_t>> BatSelectPositions(const Bat& b, uint32_t lo,
                                                   uint32_t hi,
                                                   std::span<const oid_t> cands);

/// Dense-candidate variant: the candidate list is the virtual sequence
/// [base, base+count) and is never materialized (a void candidate column).
StatusOr<std::vector<uint32_t>> BatSelectPositionsDense(const Bat& b,
                                                        uint32_t lo,
                                                        uint32_t hi, oid_t base,
                                                        size_t count);

/// project(b, cands): [void, b.tail[cands[i]]] — tuple reconstruction
/// through a candidate list; the positional fetch the paper calls free on
/// void-headed BATs.
StatusOr<Bat> BatProject(const Bat& b, std::span<const oid_t> cands);

// --- disjunction kernels (expression lowering) -------------------------------
// An Expr leaf (exec/expr.h) lowers to a *set* of disjoint value ranges on
// the (possibly code-mapped) u32 domain: `x != 7` is [0,6] u [8,max], a
// NOT IN {2,5} is three ranges, a negated Between is two. These kernels
// evaluate such a range set through a candidate list in one pass, and merge
// the sorted position lists that OR branches produce — still never
// materializing an intermediate BAT.

/// One inclusive value range on the u32 domain.
struct U32Range {
  uint32_t lo = 0;
  uint32_t hi = 0;
};

/// select(b, ranges | cands): positions i into `cands` whose value
/// b.tail[cands[i]] falls in any of `ranges` (disjoint, ascending by lo).
/// Requires integral tail; OIDs beyond the BAT are kOutOfRange. An empty
/// range set selects nothing.
StatusOr<std::vector<uint32_t>> BatSelectPositionsUnion(
    const Bat& b, std::span<const U32Range> ranges,
    std::span<const oid_t> cands);

/// Dense-candidate variant over the virtual sequence [base, base+count).
StatusOr<std::vector<uint32_t>> BatSelectPositionsUnionDense(
    const Bat& b, std::span<const U32Range> ranges, oid_t base, size_t count);

/// The complement of a disjoint, ascending range set over the full u32
/// domain — how NormalizeExpr's negated leaves become range sets.
std::vector<U32Range> ComplementRanges(std::span<const U32Range> ranges);

/// Merge-union of ascending, duplicate-free position lists: the OR
/// combiner. Positions appearing in several branches are emitted exactly
/// once, and the result is ascending again.
std::vector<uint32_t> UnionSortedPositions(
    std::vector<std::vector<uint32_t>> lists);

}  // namespace ccdb

#endif  // CCDB_ALGO_BAT_ALGEBRA_H_
