// Shared definitions for the join family: hash functors, result emission,
// per-phase statistics. All join algorithms consume spans of 8-byte BUNs
// [OID, value] and produce [OID, OID] join-indexes, matching the paper's
// experimental setup (§3.4.1): join hit-rate one, result = [OID,OID] BAT.
#ifndef CCDB_ALGO_JOIN_COMMON_H_
#define CCDB_ALGO_JOIN_COMMON_H_

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "bat/types.h"
#include "mem/access.h"
#include "util/logging.h"

namespace ccdb {

/// Identity "hash": the paper clusters on "the lower B bits of the integer
/// hash-value of a column"; for the uniformly distributed unique integers of
/// the experiments the identity is a perfect hash, and it keeps radix bits
/// interpretable. Default everywhere.
struct IdentityHash {
  static constexpr uint32_t Hash(uint32_t v) { return v; }
};

/// Finalizer-style mixing hash (murmur3 fmix32) for skewed or structured
/// domains; every algorithm is templated so the choice is compile-time.
struct MurmurHash {
  static constexpr uint32_t Hash(uint32_t v) {
    v ^= v >> 16;
    v *= 0x85ebca6bu;
    v ^= v >> 13;
    v *= 0xc2b2ae35u;
    v ^= v >> 16;
    return v;
  }
};

/// Timings of a two-phase (cluster + join) algorithm, milliseconds.
struct JoinStats {
  double cluster_left_ms = 0;
  double cluster_right_ms = 0;
  double join_ms = 0;
  uint64_t result_count = 0;
  int bits = 0;
  int passes = 0;

  double total_ms() const { return cluster_left_ms + cluster_right_ms + join_ms; }
};

/// Appends `b` to `out`, routing the write through the access policy so the
/// simulator sees the (sequential) result-store traffic. DirectMemory pays
/// nothing beyond the push_back.
template <class Mem>
CCDB_ALWAYS_INLINE void EmitResult(std::vector<Bun>& out, Bun b, Mem& mem) {
  out.push_back(b);
  if constexpr (!std::is_same_v<std::decay_t<Mem>, DirectMemory>) {
    mem.Store(&out.back(), b);
  }
}

}  // namespace ccdb

#endif  // CCDB_ALGO_JOIN_COMMON_H_
