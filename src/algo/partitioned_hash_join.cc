#include "algo/partitioned_hash_join.h"

namespace ccdb {

template std::vector<Bun>
PartitionedHashJoinClustered<DirectMemory, IdentityHash>(
    const ClusteredRelation&, const ClusteredRelation&, DirectMemory&, size_t,
    size_t);
template std::vector<Bun>
PartitionedHashJoinClustered<SimulatedMemory, IdentityHash>(
    const ClusteredRelation&, const ClusteredRelation&, SimulatedMemory&,
    size_t, size_t);

}  // namespace ccdb
