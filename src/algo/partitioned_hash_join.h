// Partitioned hash-join (§3.3, Fig. 8): radix-cluster both relations on B
// bits so each cluster (plus its hash table) fits a chosen memory level,
// then bucket-chained hash-join each pair of matching clusters. The
// [SKN94] main-memory Grace join corresponds to P = 1 and B sized for L2;
// the radix-cluster makes L1- and TLB-sized partitioning feasible too
// (the paper's phash L1 / phash TLB strategies).
#ifndef CCDB_ALGO_PARTITIONED_HASH_JOIN_H_
#define CCDB_ALGO_PARTITIONED_HASH_JOIN_H_

#include "algo/hash_table.h"
#include "algo/radix_cluster.h"

namespace ccdb {

/// Join phase only (paper Fig. 11): hash-join every matching cluster pair.
/// `r` is the build (inner) side. Bucket bits are taken *above* the radix
/// bits, since within a cluster all radix bits are equal.
template <class Mem, class HashFn = IdentityHash>
std::vector<Bun> PartitionedHashJoinClustered(const ClusteredRelation& l,
                                              const ClusteredRelation& r,
                                              Mem& mem,
                                              size_t result_hint = 0,
                                              size_t avg_chain = kDefaultChainLength) {
  std::vector<Bun> out;
  out.reserve(result_hint != 0 ? result_hint
                               : std::min(l.tuples.size(), r.tuples.size()));
  MergeClusterPairs<Mem, HashFn>(
      l, r, mem,
      [&](size_t l_lo, size_t l_hi, size_t r_lo, size_t r_hi) {
        std::span<const Bun> build(&r.tuples[r_lo], r_hi - r_lo);
        BucketChainedHashTable<Mem, HashFn> table(build, r.bits, avg_chain,
                                                  mem);
        for (size_t i = l_lo; i < l_hi; ++i) {
          Bun lt = mem.Load(&l.tuples[i]);
          table.Probe(lt, mem, [&](Bun rt) {
            EmitResult(out, Bun{lt.head, rt.head}, mem);
          });
        }
      });
  return out;
}

/// Full partitioned hash-join: cluster both inputs, then join.
template <class Mem, class HashFn = IdentityHash>
StatusOr<std::vector<Bun>> PartitionedHashJoin(std::span<const Bun> l,
                                               std::span<const Bun> r,
                                               int bits, int passes, Mem& mem,
                                               JoinStats* stats = nullptr) {
  RadixClusterOptions opt{.bits = bits, .passes = passes, .bits_per_pass = {}};
  RadixClusterStats cs;
  CCDB_ASSIGN_OR_RETURN(ClusteredRelation cl,
                        (RadixCluster<Mem, HashFn>(l, opt, mem, &cs)));
  double l_ms = cs.total_ms;
  CCDB_ASSIGN_OR_RETURN(ClusteredRelation cr,
                        (RadixCluster<Mem, HashFn>(r, opt, mem, &cs)));
  double r_ms = cs.total_ms;
  WallTimer t;
  std::vector<Bun> out = PartitionedHashJoinClustered<Mem, HashFn>(cl, cr, mem);
  if (stats != nullptr) {
    stats->cluster_left_ms = l_ms;
    stats->cluster_right_ms = r_ms;
    stats->join_ms = t.ElapsedMillis();
    stats->result_count = out.size();
    stats->bits = bits;
    stats->passes = passes;
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_PARTITIONED_HASH_JOIN_H_
