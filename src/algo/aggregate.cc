#include "algo/aggregate.h"

namespace ccdb {

template GroupAggregates HashGroupSum<DirectMemory, IdentityHash>(
    std::span<const uint32_t>, std::span<const uint32_t>, DirectMemory&,
    size_t);
template GroupAggregates HashGroupSum<SimulatedMemory, IdentityHash>(
    std::span<const uint32_t>, std::span<const uint32_t>, SimulatedMemory&,
    size_t);
template GroupAggregates SortGroupSum<DirectMemory>(std::span<const uint32_t>,
                                                    std::span<const uint32_t>,
                                                    DirectMemory&);
template GroupAggregates SortGroupSum<SimulatedMemory>(
    std::span<const uint32_t>, std::span<const uint32_t>, SimulatedMemory&);

}  // namespace ccdb
