#include "algo/aggregate.h"

#include <algorithm>

namespace ccdb {

namespace {

/// Murmur-folds the key words so multi-column keys spread over the buckets
/// even when individual columns are small dense domains.
uint32_t HashKey(const uint32_t* key, size_t width) {
  uint32_t h = 0;
  for (size_t k = 0; k < width; ++k) {
    h = MurmurHash::Hash(h ^ key[k]);
  }
  return h;
}

}  // namespace

GroupAggTable::GroupAggTable(size_t key_width, size_t num_values,
                             size_t expected_groups)
    : key_width_(key_width), num_values_(num_values) {
  CCDB_CHECK(key_width_ > 0);
  // Buckets at half the expected group count keep average chains around 2
  // while leaving 8x headroom before the 4x-load rehash threshold — an
  // estimate that is right (or merely not 8x low) never pays a rehash.
  size_t buckets = 1024;
  if (expected_groups > 0) {
    buckets = NextPowerOfTwo(std::max<size_t>(expected_groups / 2, 16));
    keys_.reserve(expected_groups * key_width_);
    rows_.reserve(expected_groups);
    states_.reserve(expected_groups * num_values_);
    next_.reserve(expected_groups);
  }
  heads_.assign(buckets, kEmpty);
  mask_ = static_cast<uint32_t>(buckets - 1);
}

uint32_t GroupAggTable::FindOrInsert(const uint32_t* key) {
  uint32_t b = HashKey(key, key_width_) & mask_;
  uint32_t g = heads_[b];
  while (g != kEmpty &&
         !std::equal(key, key + key_width_, &keys_[g * key_width_])) {
    g = next_[g];
  }
  if (g != kEmpty) return g;
  g = static_cast<uint32_t>(rows_.size());
  keys_.insert(keys_.end(), key, key + key_width_);
  rows_.push_back(0);
  states_.resize(states_.size() + num_values_);
  next_.push_back(heads_[b]);
  heads_[b] = g;
  // Keep average chain length bounded: rehash at 4x load.
  if (rows_.size() > heads_.size() * 4) {
    ++rehashes_;
    heads_.assign(heads_.size() * 4, kEmpty);
    mask_ = static_cast<uint32_t>(heads_.size() - 1);
    for (uint32_t j = 0; j < rows_.size(); ++j) {
      uint32_t nb = HashKey(&keys_[j * key_width_], key_width_) & mask_;
      next_[j] = heads_[nb];
      heads_[nb] = j;
    }
  }
  return g;
}

void GroupAggTable::Add(const uint32_t* key, const uint32_t* values) {
  uint32_t g = FindOrInsert(key);
  rows_[g] += 1;
  GroupAggState* s = states_.data() + size_t{g} * num_values_;
  for (size_t v = 0; v < num_values_; ++v) {
    s[v].sum += values[v];
    s[v].min = std::min(s[v].min, values[v]);
    s[v].max = std::max(s[v].max, values[v]);
  }
}

void GroupAggTable::AccumulateGroup(const uint32_t* key, uint64_t rows,
                                    const GroupAggState* states) {
  uint32_t g = FindOrInsert(key);
  rows_[g] += rows;
  GroupAggState* s = states_.data() + size_t{g} * num_values_;
  for (size_t v = 0; v < num_values_; ++v) {
    s[v].sum += states[v].sum;
    s[v].min = std::min(s[v].min, states[v].min);
    s[v].max = std::max(s[v].max, states[v].max);
  }
}

void GroupAggTable::MergeFrom(const GroupAggTable& other) {
  CCDB_CHECK(other.key_width_ == key_width_ &&
             other.num_values_ == num_values_);
  for (size_t g = 0; g < other.num_groups(); ++g) {
    AccumulateGroup(&other.keys_[g * key_width_], other.rows_[g],
                    other.states_.data() + g * num_values_);
  }
}

template GroupAggregates HashGroupSum<DirectMemory, IdentityHash>(
    std::span<const uint32_t>, std::span<const uint32_t>, DirectMemory&,
    size_t);
template GroupAggregates HashGroupSum<SimulatedMemory, IdentityHash>(
    std::span<const uint32_t>, std::span<const uint32_t>, SimulatedMemory&,
    size_t);
template GroupAggregates SortGroupSum<DirectMemory>(std::span<const uint32_t>,
                                                    std::span<const uint32_t>,
                                                    DirectMemory&);
template GroupAggregates SortGroupSum<SimulatedMemory>(
    std::span<const uint32_t>, std::span<const uint32_t>, SimulatedMemory&);

}  // namespace ccdb
