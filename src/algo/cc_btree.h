// Cache-conscious static B+-tree for accelerating selections (§3.2).
//
// The paper: "[LC86] concluded that the T-tree and bucket-chained hash-table
// were the best data structures for accelerating selections in main-memory
// databases. The work in [Ron98] reports, however, that a B-tree with a
// block-size equal to the cache line size is optimal. Our findings about
// the increased impact of cache misses indeed support this claim."
//
// This is that B-tree: bulk-loaded, read-only, with a configurable node
// size in bytes so the [Ron98] claim can be measured (see
// bench/ablation_index_selects). Nodes are flat arrays — one node = one
// contiguous block of `node_bytes` — and children are located
// arithmetically, so a lookup touches exactly `height` blocks.
#ifndef CCDB_ALGO_CC_BTREE_H_
#define CCDB_ALGO_CC_BTREE_H_

#include <algorithm>
#include <span>
#include <vector>

#include "algo/join_common.h"
#include "util/status.h"

namespace ccdb {

struct BTreeOptions {
  /// Bytes per node; fanout = node_bytes / 4 keys. 32..4096, multiple of 4.
  size_t node_bytes = 64;

  Status Validate() const;
};

/// Read-only B+-tree over [key, OID] pairs. Duplicate keys are allowed;
/// lookups return every matching OID.
class CacheConsciousBTree {
 public:
  /// Bulk-loads from `data` (any order; a sorted copy is made).
  static StatusOr<CacheConsciousBTree> Build(std::span<const Bun> data,
                                             const BTreeOptions& options = {});

  /// Appends the OIDs of all tuples with key == `key` to `out`.
  template <class Mem>
  void FindEq(uint32_t key, Mem& mem, std::vector<oid_t>* out) const {
    size_t pos = LowerBound(key, mem);
    while (pos < keys_.size()) {
      uint32_t k = mem.Load(&keys_[pos]);
      if (k != key) break;
      out->push_back(mem.Load(&oids_[pos]));
      ++pos;
    }
  }

  /// Appends the OIDs of all tuples with lo <= key <= hi (a range select).
  template <class Mem>
  void FindRange(uint32_t lo, uint32_t hi, Mem& mem,
                 std::vector<oid_t>* out) const {
    if (lo > hi) return;
    size_t pos = LowerBound(lo, mem);
    while (pos < keys_.size()) {
      uint32_t k = mem.Load(&keys_[pos]);
      if (k > hi) break;
      out->push_back(mem.Load(&oids_[pos]));
      ++pos;
    }
  }

  /// Index of the first leaf slot with key >= `key` (== size() when none).
  /// Descends `height()` nodes, linearly scanning each — the access pattern
  /// whose cost the node-size ablation measures.
  template <class Mem>
  size_t LowerBound(uint32_t key, Mem& mem) const {
    if (keys_.empty()) return 0;
    size_t node = 0;
    for (const auto& level : levels_) {
      size_t base = node * fanout_;
      size_t slot = 0;
      // Separator s holds the max key of child s: descend into the first
      // child whose max covers `key`; the last child catches everything.
      size_t nkeys = std::min(fanout_, level.size() - base);
      while (slot + 1 < nkeys && mem.Load(&level[base + slot]) < key) {
        ++slot;
      }
      node = base + slot;
    }
    // `node` is now a leaf-chunk index; scan within the chunk.
    size_t begin = node * fanout_;
    size_t end = std::min(begin + fanout_, keys_.size());
    for (size_t i = begin; i < end; ++i) {
      if (mem.Load(&keys_[i]) >= key) return i;
    }
    return end;
  }

  size_t size() const { return keys_.size(); }
  size_t height() const { return levels_.size() + 1; }  // +1 for the leaves
  size_t fanout() const { return fanout_; }
  size_t node_bytes() const { return fanout_ * sizeof(uint32_t); }

  /// Heap bytes: sorted key/OID arrays + internal separator levels.
  size_t MemoryBytes() const;

  /// Sorted leaf arrays (test/diagnostic access).
  std::span<const uint32_t> keys() const { return keys_; }
  std::span<const uint32_t> oids() const { return oids_; }

 private:
  size_t fanout_ = 0;
  std::vector<uint32_t> keys_;   // sorted
  std::vector<uint32_t> oids_;   // parallel to keys_
  // levels_[0] = root level ... levels_.back() = just above the leaves.
  // Each level stores, per node, up to `fanout_` separators (max key of the
  // corresponding child at the next level).
  std::vector<std::vector<uint32_t>> levels_;
};

}  // namespace ccdb

#endif  // CCDB_ALGO_CC_BTREE_H_
