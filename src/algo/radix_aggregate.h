// Radix-partitioned grouping: the paper's clustering idea (§3.3) applied to
// the aggregation problem of §3.2. Plain hash-grouping is superior to
// sort/merge *when the group hash table fits the caches*; once the number
// of distinct groups outgrows L1/L2/TLB, it exhibits exactly the random
// access pattern the paper diagnoses for non-partitioned hash-join.
// Radix-clustering the input on the group key first makes each partition's
// group table cache-resident again — the same cure, applied to GROUP BY.
// (MonetDB adopted this generalization; here it serves as the paper's
// "future work" direction made concrete.)
#ifndef CCDB_ALGO_RADIX_AGGREGATE_H_
#define CCDB_ALGO_RADIX_AGGREGATE_H_

#include "algo/aggregate.h"
#include "algo/radix_cluster.h"

namespace ccdb {

/// Groups `keys`/`values` by key, summing values, after radix-clustering
/// on `bits` of the key hash in `passes` passes. Per-cluster grouping uses
/// one reusable open-addressing table (epoch-stamped, so it is never
/// cleared between clusters). Result keys appear in per-cluster
/// first-appearance order.
template <class Mem, class HashFn = IdentityHash>
StatusOr<GroupAggregates> RadixGroupSum(std::span<const uint32_t> keys,
                                        std::span<const uint32_t> values,
                                        int bits, int passes, Mem& mem) {
  CCDB_CHECK(keys.size() == values.size());
  if (bits > 24) {
    // ClusterBounds materializes 2^bits boundaries; beyond 24 bits that is
    // no longer a sane grouping granularity (and 2^24 already means <= a
    // handful of groups per cluster).
    return Status::InvalidArgument("RadixGroupSum supports at most 24 bits");
  }
  // Pack into BUNs: head = value payload, tail = group key (the radix key).
  std::vector<Bun> pairs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    mem.Store(&pairs[i], Bun{mem.Load(&values[i]), mem.Load(&keys[i])});
  }
  RadixClusterOptions opt{bits, passes, {}};
  CCDB_ASSIGN_OR_RETURN(
      ClusteredRelation clustered,
      (RadixCluster<Mem, HashFn>(std::span<const Bun>(pairs), opt, mem)));
  pairs.clear();
  pairs.shrink_to_fit();

  // Reusable scratch table sized for the largest cluster.
  auto bounds = ClusterBounds<HashFn>(clustered);
  uint64_t max_cluster = 0;
  for (size_t c = 0; c + 1 < bounds.size(); ++c) {
    max_cluster = std::max(max_cluster, bounds[c + 1] - bounds[c]);
  }
  size_t table_size = NextPowerOfTwo(std::max<uint64_t>(max_cluster * 2, 16));
  uint32_t table_mask = static_cast<uint32_t>(table_size - 1);
  std::vector<uint32_t> slot_epoch(table_size, 0);
  std::vector<uint32_t> slot_group(table_size, 0);
  uint32_t epoch = 0;

  GroupAggregates out;
  for (size_t c = 0; c + 1 < bounds.size(); ++c) {
    uint64_t lo = bounds[c], hi = bounds[c + 1];
    if (lo == hi) continue;
    ++epoch;
    for (uint64_t i = lo; i < hi; ++i) {
      Bun t = mem.Load(&clustered.tuples[i]);
      // Probe above the radix bits so clusters spread within the table.
      uint32_t h = (HashFn::Hash(t.tail) >> bits) & table_mask;
      for (;;) {
        if (mem.Load(&slot_epoch[h]) != epoch) {
          // Fresh slot: new group.
          mem.Store(&slot_epoch[h], epoch);
          mem.Store(&slot_group[h], static_cast<uint32_t>(out.keys.size()));
          out.keys.push_back(t.tail);
          out.sums.push_back(t.head);
          out.counts.push_back(1);
          break;
        }
        uint32_t g = mem.Load(&slot_group[h]);
        if (mem.Load(&out.keys[g]) == t.tail) {
          mem.Update(&out.sums[g], static_cast<uint64_t>(t.head));
          mem.Update(&out.counts[g], uint64_t{1});
          break;
        }
        h = (h + 1) & table_mask;
      }
    }
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_RADIX_AGGREGATE_H_
