#include "algo/select.h"

namespace ccdb {

template std::vector<oid_t> RangeSelect<DirectMemory, uint8_t>(
    std::span<const uint8_t>, uint8_t, uint8_t, DirectMemory&);
template std::vector<oid_t> RangeSelect<DirectMemory, uint32_t>(
    std::span<const uint32_t>, uint32_t, uint32_t, DirectMemory&);
template std::vector<oid_t> RangeSelect<SimulatedMemory, uint8_t>(
    std::span<const uint8_t>, uint8_t, uint8_t, SimulatedMemory&);
template std::vector<oid_t> RangeSelect<SimulatedMemory, uint32_t>(
    std::span<const uint32_t>, uint32_t, uint32_t, SimulatedMemory&);

}  // namespace ccdb
