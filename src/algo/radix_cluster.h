// Radix-cluster (§3.3.1, Fig. 6): splits a relation into H = 2^B clusters on
// the lower B bits of the hash of the join column, in P passes of Bp bits
// each (sum Bp = B), taking the *leftmost* of the B bits first. Each pass
// subdivides every existing cluster into 2^Bp new ones, so the number of
// concurrently written output regions per pass stays at 2^Bp — below the
// number of cache lines / TLB entries if Bp is chosen well. With P = 1 this
// is the straightforward clustering of [SKN94] (Fig. 5).
//
// After clustering on B bits the relation is ordered on its B radix bits, so
// cluster boundaries need no extra structure: joins rediscover them with a
// merge scan (MergeClusterPairs below), exactly as the paper describes.
#ifndef CCDB_ALGO_RADIX_CLUSTER_H_
#define CCDB_ALGO_RADIX_CLUSTER_H_

#include <span>
#include <vector>

#include "algo/join_common.h"
#include "mem/arena.h"
#include "util/bits.h"
#include "util/status.h"
#include "util/timer.h"

namespace ccdb {

/// Tuning parameters (§3.4): B (`bits`), P (`passes`), and optionally an
/// explicit Bp split (`bits_per_pass`, must sum to `bits`). When
/// `bits_per_pass` is empty the bits are distributed evenly, larger shares
/// first, which §3.4.2 found essential.
struct RadixClusterOptions {
  int bits = 0;
  int passes = 1;
  std::vector<int> bits_per_pass;

  Status Validate() const;
  /// The effective Bp vector (even split unless given explicitly).
  std::vector<int> EffectiveBits() const;
};

struct RadixClusterStats {
  std::vector<double> pass_ms;
  double total_ms = 0;
};

/// Arena-backed Bun buffer: large clustered relations and partition scratch
/// land on huge-page-eligible mappings (mem/arena.h), shrinking the TLB
/// footprint that §3.1 identifies as the fan-out limit; every buffer start
/// is cache-line aligned, so concurrent partition writers never share a
/// line.
using BunVec = ColVec<Bun>;

/// A relation radix-clustered on `bits` bits: tuples ordered ascending on
/// (Hash(tail) & LowMask32(bits)).
struct ClusteredRelation {
  BunVec tuples;
  int bits = 0;
};

namespace internal {

/// One clustering pass over [src, src+n) into dst, subdividing each region
/// given in `region_bounds` (size R+1) on `pass_bits` bits at `shift`.
/// Appends the new region bounds (size R*2^pass_bits+1) to `new_bounds`.
/// Two-phase per region: histogram, then scatter — the classic
/// implementation whose write pattern touches 2^pass_bits regions at a time.
template <class Mem, class HashFn>
void ClusterPass(const Bun* src, Bun* dst,
                 const std::vector<uint64_t>& region_bounds, int shift,
                 int pass_bits, Mem& mem, std::vector<uint64_t>* new_bounds) {
  size_t hp = size_t{1} << pass_bits;
  uint32_t mask = LowMask32(pass_bits);
  std::vector<uint32_t> hist(hp);
  std::vector<uint64_t> offset(hp);
  new_bounds->clear();
  new_bounds->push_back(region_bounds.front());
  for (size_t r = 0; r + 1 < region_bounds.size(); ++r) {
    uint64_t lo = region_bounds[r];
    uint64_t hi = region_bounds[r + 1];
    std::fill(hist.begin(), hist.end(), 0u);
    for (uint64_t i = lo; i < hi; ++i) {
      Bun t = mem.Load(&src[i]);
      uint32_t d = (HashFn::Hash(t.tail) >> shift) & mask;
      mem.Update(&hist[d], 1u);
    }
    uint64_t acc = lo;
    for (size_t d = 0; d < hp; ++d) {
      offset[d] = acc;
      acc += hist[d];
      new_bounds->push_back(acc);
    }
    for (uint64_t i = lo; i < hi; ++i) {
      Bun t = mem.Load(&src[i]);
      uint32_t d = (HashFn::Hash(t.tail) >> shift) & mask;
      uint64_t pos = offset[d]++;
      mem.Store(&dst[pos], t);
    }
  }
}

}  // namespace internal

/// Clusters `input` on `options.bits` bits in `options.passes` passes.
/// The input is left untouched; the result holds a clustered copy.
template <class Mem, class HashFn = IdentityHash>
StatusOr<ClusteredRelation> RadixCluster(std::span<const Bun> input,
                                         const RadixClusterOptions& options,
                                         Mem& mem,
                                         RadixClusterStats* stats = nullptr) {
  CCDB_RETURN_IF_ERROR(options.Validate());
  ClusteredRelation out;
  out.bits = options.bits;
  if (options.bits == 0) {
    // H = 1: clustering is the identity; still one counted copy pass so that
    // time/miss comparisons against B > 0 are like-for-like.
    out.tuples.resize(input.size());
    WallTimer t;
    for (size_t i = 0; i < input.size(); ++i) {
      mem.Store(&out.tuples[i], mem.Load(&input[i]));
    }
    if (stats != nullptr) {
      stats->pass_ms = {t.ElapsedMillis()};
      stats->total_ms = t.ElapsedMillis();
    }
    return out;
  }

  std::vector<int> per_pass = options.EffectiveBits();
  size_t n = input.size();
  BunVec a(n), b;
  if (per_pass.size() > 1) b.resize(n);

  std::vector<uint64_t> bounds = {0, n};
  std::vector<uint64_t> next_bounds;
  if (stats != nullptr) {
    stats->pass_ms.clear();
    stats->total_ms = 0;
  }

  const Bun* src = input.data();
  Bun* dst = a.data();
  bool dst_is_a = true;
  int consumed = 0;
  for (size_t p = 0; p < per_pass.size(); ++p) {
    int bp = per_pass[p];
    int shift = options.bits - consumed - bp;
    WallTimer t;
    internal::ClusterPass<Mem, HashFn>(src, dst, bounds, shift, bp, mem,
                                       &next_bounds);
    double ms = t.ElapsedMillis();
    if (stats != nullptr) {
      stats->pass_ms.push_back(ms);
      stats->total_ms += ms;
    }
    bounds.swap(next_bounds);
    consumed += bp;
    src = dst;
    if (p + 1 < per_pass.size()) {
      dst = dst_is_a ? b.data() : a.data();
      dst_is_a = !dst_is_a;
    }
  }
  out.tuples = dst_is_a ? std::move(a) : std::move(b);
  return out;
}

/// Cluster start offsets (H+1 entries, H = 2^bits) recovered by scanning the
/// radix bits, as the paper notes is always possible. O(N + H).
template <class HashFn = IdentityHash>
std::vector<uint64_t> ClusterBounds(const ClusteredRelation& rel) {
  size_t h = size_t{1} << rel.bits;
  uint32_t mask = LowMask32(rel.bits);
  std::vector<uint64_t> bounds(h + 1, 0);
  for (const Bun& t : rel.tuples) {
    ++bounds[(HashFn::Hash(t.tail) & mask) + 1];
  }
  for (size_t c = 1; c <= h; ++c) bounds[c] += bounds[c - 1];
  return bounds;
}

/// Merge step over two relations clustered on the same bits (§3.3.1): walks
/// both in radix order and invokes `fn(l_lo, l_hi, r_lo, r_hi)` for every
/// pair of non-empty clusters with equal radix value. Boundaries are
/// detected from the radix bits themselves; no bounds array is needed.
template <class Mem, class HashFn, class Fn>
void MergeClusterPairs(const ClusteredRelation& l, const ClusteredRelation& r,
                       Mem& mem, Fn&& fn) {
  CCDB_CHECK(l.bits == r.bits);
  uint32_t mask = LowMask32(l.bits);
  size_t nl = l.tuples.size(), nr = r.tuples.size();
  size_t i = 0, j = 0;
  auto radix_at_l = [&](size_t k) {
    return HashFn::Hash(mem.Load(&l.tuples[k]).tail) & mask;
  };
  auto radix_at_r = [&](size_t k) {
    return HashFn::Hash(mem.Load(&r.tuples[k]).tail) & mask;
  };
  while (i < nl && j < nr) {
    uint32_t vl = radix_at_l(i);
    uint32_t vr = radix_at_r(j);
    if (vl < vr) {
      ++i;
      continue;
    }
    if (vr < vl) {
      ++j;
      continue;
    }
    size_t i2 = i + 1;
    while (i2 < nl && radix_at_l(i2) == vl) ++i2;
    size_t j2 = j + 1;
    while (j2 < nr && radix_at_r(j2) == vr) ++j2;
    fn(i, i2, j, j2);
    i = i2;
    j = j2;
  }
}

}  // namespace ccdb

#endif  // CCDB_ALGO_RADIX_CLUSTER_H_
