// Monet-style bucket-chained hash table (§3.2/§3.3): an array of bucket
// heads plus a per-tuple `next` chain, both indexing into the build span.
// No tuples are copied. With the default average chain length of 4, the
// table costs 4 bytes/tuple on top of the 8-byte BUN — the paper's
// "12 bytes per tuple including hash table" used by the phash strategies.
#ifndef CCDB_ALGO_HASH_TABLE_H_
#define CCDB_ALGO_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algo/join_common.h"
#include "util/bits.h"

namespace ccdb {

/// Default tuples-per-bucket divisor (paper models a bucket-chain length
/// of 4 in §3.4.3).
inline constexpr size_t kDefaultChainLength = 4;

template <class Mem, class HashFn = IdentityHash>
class BucketChainedHashTable {
 public:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  /// Builds over `build`. `shift` discards hash bits already used for radix
  /// clustering (within a cluster all B low bits are equal, so buckets must
  /// be chosen from the bits above them).
  BucketChainedHashTable(std::span<const Bun> build, int shift,
                         size_t avg_chain, Mem& mem)
      : build_(build), shift_(shift) {
    size_t want = build.empty() ? 1 : (build.size() + avg_chain - 1) / avg_chain;
    size_t nbuckets = NextPowerOfTwo(want);
    mask_ = static_cast<uint32_t>(nbuckets - 1);
    heads_.assign(nbuckets, kEmpty);
    next_.resize(build.size());
    for (uint32_t i = 0; i < build.size(); ++i) {
      Bun t = mem.Load(&build_[i]);
      uint32_t b = (HashFn::Hash(t.tail) >> shift_) & mask_;
      uint32_t old = mem.Load(&heads_[b]);
      mem.Store(&next_[i], old);
      mem.Store(&heads_[b], i);
    }
  }

  /// Calls `emit(build_tuple)` for every build tuple whose tail equals
  /// `probe.tail`.
  template <class Fn>
  CCDB_ALWAYS_INLINE void Probe(Bun probe, Mem& mem, Fn&& emit) const {
    uint32_t b = (HashFn::Hash(probe.tail) >> shift_) & mask_;
    uint32_t idx = mem.Load(&heads_[b]);
    while (idx != kEmpty) {
      Bun t = mem.Load(&build_[idx]);
      if (t.tail == probe.tail) emit(t);
      idx = mem.Load(&next_[idx]);
    }
  }

  size_t bucket_count() const { return heads_.size(); }

  /// Issues a software prefetch for the bucket head that a future probe of
  /// `tail` will touch ([Mow94]-style latency hiding; see
  /// SimpleHashJoinPrefetch).
  void PrefetchBucket(uint32_t tail) const {
    uint32_t b = (HashFn::Hash(tail) >> shift_) & mask_;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&heads_[b], /*rw=*/0, /*locality=*/1);
#endif
  }

  /// Length of the chain in bucket `b` (test/diagnostic use).
  size_t ChainLength(uint32_t b) const {
    size_t len = 0;
    for (uint32_t idx = heads_[b]; idx != kEmpty; idx = next_[idx]) ++len;
    return len;
  }

 private:
  std::span<const Bun> build_;
  int shift_;
  uint32_t mask_;
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> next_;
};

}  // namespace ccdb

#endif  // CCDB_ALGO_HASH_TABLE_H_
