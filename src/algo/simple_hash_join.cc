#include "algo/simple_hash_join.h"

namespace ccdb {

template std::vector<Bun> SimpleHashJoin<DirectMemory, IdentityHash>(
    std::span<const Bun>, std::span<const Bun>, DirectMemory&, JoinStats*,
    size_t, size_t);
template std::vector<Bun> SimpleHashJoin<SimulatedMemory, IdentityHash>(
    std::span<const Bun>, std::span<const Bun>, SimulatedMemory&, JoinStats*,
    size_t, size_t);

}  // namespace ccdb
