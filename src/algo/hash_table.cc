#include "algo/hash_table.h"

// BucketChainedHashTable is a header template; common instantiations are
// anchored by the join translation units that use them.
