#include "algo/radix_sort.h"

namespace ccdb {

template void RadixSortByTail<DirectMemory>(std::span<Bun>, DirectMemory&);
template void RadixSortByTail<SimulatedMemory>(std::span<Bun>,
                                               SimulatedMemory&);
template void QuickSortByTail<DirectMemory>(std::span<Bun>, DirectMemory&);
template void QuickSortByTail<SimulatedMemory>(std::span<Bun>,
                                               SimulatedMemory&);

}  // namespace ccdb
