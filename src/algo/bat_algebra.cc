#include "algo/bat_algebra.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

#include "algo/positional_join.h"
#include "algo/radix_sort.h"
#include "algo/simple_hash_join.h"

namespace ccdb {

namespace {

Status RequireIntegralTail(const Bat& b, const char* op) {
  switch (b.tail().type()) {
    case PhysType::kVoid:
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
      return Status::Ok();
    default:
      return Status::InvalidArgument(
          std::string(op) + " requires an integral (<=32-bit) tail, got " +
          PhysTypeName(b.tail().type()));
  }
}

}  // namespace

StatusOr<Bat> BatSelect(const Bat& b, uint32_t lo, uint32_t hi) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "select"));
  std::vector<uint32_t> heads;
  std::vector<uint32_t> tails;
  for (size_t i = 0; i < b.size(); ++i) {
    uint32_t v = static_cast<uint32_t>(b.tail().GetIntegral(i));
    if (lo <= v && v <= hi) {
      heads.push_back(b.head().GetOid(i));
      tails.push_back(v);
    }
  }
  return Bat::Make(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

Bat BatReverse(const Bat& b) { return b.Reverse(); }

StatusOr<Bat> BatMirror(const Bat& b) {
  if (b.head().is_void()) {
    return Bat::Make(b.head(), b.head());
  }
  Column h = b.head();
  return Bat::Make(h, h);
}

StatusOr<Bat> BatMark(const Bat& b, oid_t base) {
  return Bat::Make(b.head(), Column::Void(base, b.size()));
}

StatusOr<Bat> BatJoin(const Bat& l, const Bat& r) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(l, "join"));
  DirectMemory mem;
  CCDB_ASSIGN_OR_RETURN(std::vector<Bun> lb, l.ToBuns());

  if (r.head().is_void()) {
    // Positional path (§3.1): l.tail values are positions base..base+n.
    CCDB_RETURN_IF_ERROR(RequireIntegralTail(r, "join"));
    std::vector<Bun> idx =
        PositionalJoin(std::span<const Bun>(lb), r.head().void_base(),
                       r.size(), mem);
    // idx = [l.head, position]; fetch r.tail at position.
    std::vector<uint32_t> heads(idx.size());
    std::vector<uint32_t> tails(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      heads[i] = idx[i].head;
      tails[i] = static_cast<uint32_t>(r.tail().GetIntegral(idx[i].tail));
    }
    return Bat::Make(Column::U32(std::move(heads)),
                     Column::U32(std::move(tails)));
  }

  // Hash path: build on r.head, probe with l.tail.
  if (r.head().type() != PhysType::kU32) {
    return Status::InvalidArgument("join requires void or u32 head on r");
  }
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(r, "join"));
  // Represent r as BUNs [position, head-value] so a tail-match finds head
  // matches; then project r.tail at the matched position.
  std::vector<Bun> rb(r.size());
  auto r_heads = r.head().Span<uint32_t>();
  for (size_t i = 0; i < r.size(); ++i) {
    rb[i] = {static_cast<oid_t>(i), r_heads[i]};
  }
  std::vector<Bun> matches =
      SimpleHashJoin(std::span<const Bun>(lb), std::span<const Bun>(rb), mem);
  // matches = [l.head, r-position].
  std::vector<uint32_t> heads(matches.size());
  std::vector<uint32_t> tails(matches.size());
  for (size_t i = 0; i < matches.size(); ++i) {
    heads[i] = matches[i].head;
    tails[i] = static_cast<uint32_t>(r.tail().GetIntegral(matches[i].tail));
  }
  return Bat::Make(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

StatusOr<Bat> BatSemijoin(const Bat& l, const Bat& r) {
  std::unordered_set<uint32_t> r_heads;
  r_heads.reserve(r.size() * 2);
  for (size_t i = 0; i < r.size(); ++i) r_heads.insert(r.head().GetOid(i));
  std::vector<uint32_t> heads;
  std::vector<uint32_t> tails;
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(l, "semijoin"));
  for (size_t i = 0; i < l.size(); ++i) {
    uint32_t h = l.head().GetOid(i);
    if (r_heads.count(h) != 0) {
      heads.push_back(h);
      tails.push_back(static_cast<uint32_t>(l.tail().GetIntegral(i)));
    }
  }
  return Bat::Make(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

StatusOr<Bat> BatUnique(const Bat& b) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "unique"));
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> heads;
  std::vector<uint32_t> tails;
  for (size_t i = 0; i < b.size(); ++i) {
    uint32_t v = static_cast<uint32_t>(b.tail().GetIntegral(i));
    if (seen.insert(v).second) {
      heads.push_back(b.head().GetOid(i));
      tails.push_back(v);
    }
  }
  return Bat::Make(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

StatusOr<uint64_t> BatSum(const Bat& b) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "sum"));
  uint64_t sum = 0;
  for (size_t i = 0; i < b.size(); ++i) sum += b.tail().GetIntegral(i);
  return sum;
}

StatusOr<Bat> BatSlice(const Bat& b, size_t first, size_t count) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "slice"));
  size_t lo = std::min(first, b.size());
  size_t hi = std::min(first + count, b.size());
  std::vector<uint32_t> heads(hi - lo), tails(hi - lo);
  for (size_t i = lo; i < hi; ++i) {
    heads[i - lo] = b.head().GetOid(i);
    tails[i - lo] = static_cast<uint32_t>(b.tail().GetIntegral(i));
  }
  return Bat::Make(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

StatusOr<Bat> BatSortByTail(const Bat& b) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Bun> buns, b.ToBuns());
  DirectMemory mem;
  RadixSortByTail(std::span<Bun>(buns), mem);
  return Bat::FromBuns(buns);
}

StatusOr<Bat> BatHistogram(const Bat& b) {
  CCDB_ASSIGN_OR_RETURN(Bat sorted, BatSortByTail(b));
  std::vector<uint32_t> values;
  std::vector<uint32_t> freqs;
  size_t i = 0;
  while (i < sorted.size()) {
    uint32_t v = static_cast<uint32_t>(sorted.tail().GetIntegral(i));
    size_t j = i;
    while (j < sorted.size() &&
           static_cast<uint32_t>(sorted.tail().GetIntegral(j)) == v) {
      ++j;
    }
    values.push_back(v);
    freqs.push_back(static_cast<uint32_t>(j - i));
    i = j;
  }
  return Bat::Make(Column::U32(std::move(values)),
                   Column::U32(std::move(freqs)));
}

StatusOr<Bat> BatAppend(const Bat& a, const Bat& b) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(a, "append"));
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "append"));
  std::vector<uint32_t> heads;
  std::vector<uint32_t> tails;
  heads.reserve(a.size() + b.size());
  tails.reserve(a.size() + b.size());
  for (const Bat* src : {&a, &b}) {
    for (size_t i = 0; i < src->size(); ++i) {
      heads.push_back(src->head().GetOid(i));
      tails.push_back(static_cast<uint32_t>(src->tail().GetIntegral(i)));
    }
  }
  return Bat::Make(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

namespace {

/// Runs `fn(pos, value)` for every candidate, with the tail access
/// devirtualized per physical type and the bounds check folded into the
/// same pass (candidate gathers are the hot loop of a pipelined plan).
template <class Fn>
Status ForEachCandidate(const Bat& b, std::span<const oid_t> cands, Fn&& fn) {
  const Column& tail = b.tail();
  const size_t n = b.size();
  auto scan = [&](auto get) -> Status {
    for (size_t i = 0; i < cands.size(); ++i) {
      oid_t o = cands[i];
      if (o >= n) return Status::OutOfRange("candidate oid beyond BAT");
      fn(i, get(o));
    }
    return Status::Ok();
  };
  switch (tail.type()) {
    case PhysType::kU8: {
      auto v = tail.Span<uint8_t>();
      return scan([v](oid_t o) { return uint32_t{v[o]}; });
    }
    case PhysType::kU16: {
      auto v = tail.Span<uint16_t>();
      return scan([v](oid_t o) { return uint32_t{v[o]}; });
    }
    case PhysType::kU32: {
      auto v = tail.Span<uint32_t>();
      return scan([v](oid_t o) { return v[o]; });
    }
    case PhysType::kVoid:
      return scan([&tail](oid_t o) {
        return static_cast<uint32_t>(tail.GetIntegral(o));
      });
    default:
      return Status::InvalidArgument(
          std::string("candidate kernel requires an integral tail, got ") +
          PhysTypeName(tail.type()));
  }
}

}  // namespace

StatusOr<std::vector<uint32_t>> BatSelectPositions(
    const Bat& b, uint32_t lo, uint32_t hi, std::span<const oid_t> cands) {
  std::vector<uint32_t> out;
  CCDB_RETURN_IF_ERROR(ForEachCandidate(b, cands, [&](size_t i, uint32_t v) {
    if (lo <= v && v <= hi) out.push_back(static_cast<uint32_t>(i));
  }));
  return out;
}

StatusOr<std::vector<uint32_t>> BatSelectPositionsDense(const Bat& b,
                                                        uint32_t lo,
                                                        uint32_t hi, oid_t base,
                                                        size_t count) {
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "select"));
  if (base + count > b.size()) {
    return Status::OutOfRange("dense candidate range beyond BAT");
  }
  std::vector<uint32_t> out;
  const Column& tail = b.tail();
  auto scan = [&](auto values) {
    for (size_t i = 0; i < count; ++i) {
      uint32_t x = values[base + i];
      if (lo <= x && x <= hi) out.push_back(static_cast<uint32_t>(i));
    }
  };
  switch (tail.type()) {
    case PhysType::kU8:
      scan(tail.Span<uint8_t>());
      break;
    case PhysType::kU16:
      scan(tail.Span<uint16_t>());
      break;
    case PhysType::kU32:
      scan(tail.Span<uint32_t>());
      break;
    default:
      for (size_t i = 0; i < count; ++i) {
        uint32_t x = static_cast<uint32_t>(tail.GetIntegral(base + i));
        if (lo <= x && x <= hi) out.push_back(static_cast<uint32_t>(i));
      }
      break;
  }
  return out;
}

StatusOr<Bat> BatProject(const Bat& b, std::span<const oid_t> cands) {
  std::vector<uint32_t> tails(cands.size());
  CCDB_RETURN_IF_ERROR(ForEachCandidate(
      b, cands, [&](size_t i, uint32_t v) { tails[i] = v; }));
  return Bat::Make(Column::Void(0, cands.size()),
                   Column::U32(std::move(tails)));
}

namespace {

/// Membership in a disjoint, ascending range set. Small sets scan linearly;
/// larger ones (IN-lists) binary-search on lo.
inline bool InRanges(std::span<const U32Range> ranges, uint32_t v) {
  if (ranges.size() <= 4) {
    for (const U32Range& r : ranges) {
      if (v < r.lo) return false;  // ascending: no later range can match
      if (v <= r.hi) return true;
    }
    return false;
  }
  // Last range with lo <= v, if any.
  size_t lo = 0, hi = ranges.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (ranges[mid].lo <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo > 0 && v <= ranges[lo - 1].hi;
}

}  // namespace

StatusOr<std::vector<uint32_t>> BatSelectPositionsUnion(
    const Bat& b, std::span<const U32Range> ranges,
    std::span<const oid_t> cands) {
  if (ranges.size() == 1) {
    return BatSelectPositions(b, ranges[0].lo, ranges[0].hi, cands);
  }
  std::vector<uint32_t> out;
  CCDB_RETURN_IF_ERROR(ForEachCandidate(b, cands, [&](size_t i, uint32_t v) {
    if (InRanges(ranges, v)) out.push_back(static_cast<uint32_t>(i));
  }));
  return out;
}

StatusOr<std::vector<uint32_t>> BatSelectPositionsUnionDense(
    const Bat& b, std::span<const U32Range> ranges, oid_t base, size_t count) {
  if (ranges.size() == 1) {
    return BatSelectPositionsDense(b, ranges[0].lo, ranges[0].hi, base, count);
  }
  CCDB_RETURN_IF_ERROR(RequireIntegralTail(b, "select"));
  if (base + count > b.size()) {
    return Status::OutOfRange("dense candidate range beyond BAT");
  }
  std::vector<uint32_t> out;
  const Column& tail = b.tail();
  auto scan = [&](auto values) {
    for (size_t i = 0; i < count; ++i) {
      if (InRanges(ranges, values[base + i])) {
        out.push_back(static_cast<uint32_t>(i));
      }
    }
  };
  switch (tail.type()) {
    case PhysType::kU8:
      scan(tail.Span<uint8_t>());
      break;
    case PhysType::kU16:
      scan(tail.Span<uint16_t>());
      break;
    case PhysType::kU32:
      scan(tail.Span<uint32_t>());
      break;
    default:
      for (size_t i = 0; i < count; ++i) {
        uint32_t x = static_cast<uint32_t>(tail.GetIntegral(base + i));
        if (InRanges(ranges, x)) out.push_back(static_cast<uint32_t>(i));
      }
      break;
  }
  return out;
}

std::vector<U32Range> ComplementRanges(std::span<const U32Range> ranges) {
  std::vector<U32Range> out;
  uint32_t cur = 0;
  bool open = true;  // [cur, ...] still uncovered
  for (const U32Range& r : ranges) {
    if (r.lo > cur) out.push_back({cur, r.lo - 1});
    if (r.hi == UINT32_MAX) {
      open = false;
      break;
    }
    cur = r.hi + 1;
  }
  if (open) out.push_back({cur, UINT32_MAX});
  return out;
}

std::vector<uint32_t> UnionSortedPositions(
    std::vector<std::vector<uint32_t>> lists) {
  // Fold pairwise set_union: each input is ascending and duplicate-free, so
  // the union is too, and a position shared by branches survives once.
  std::vector<uint32_t> acc;
  bool first = true;
  std::vector<uint32_t> merged;
  for (std::vector<uint32_t>& l : lists) {
    if (first) {
      acc = std::move(l);
      first = false;
      continue;
    }
    if (l.empty()) continue;
    merged.clear();
    merged.reserve(acc.size() + l.size());
    std::set_union(acc.begin(), acc.end(), l.begin(), l.end(),
                   std::back_inserter(merged));
    acc.swap(merged);
  }
  return acc;
}

}  // namespace ccdb
