#include "algo/nested_loop_join.h"

namespace ccdb {

template std::vector<Bun> NestedLoopJoin<DirectMemory>(std::span<const Bun>,
                                                       std::span<const Bun>,
                                                       DirectMemory&);
template std::vector<Bun> NestedLoopJoin<SimulatedMemory>(std::span<const Bun>,
                                                          std::span<const Bun>,
                                                          SimulatedMemory&);

}  // namespace ccdb
