// Grouping and aggregation (§3.2): hash-grouping keeps a hash table of
// groups that usually fits the caches, beating sort/merge grouping whose
// sort randomly accesses the entire relation. Both are provided so the
// claim can be measured.
#ifndef CCDB_ALGO_AGGREGATE_H_
#define CCDB_ALGO_AGGREGATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algo/join_common.h"
#include "algo/radix_sort.h"
#include "util/bits.h"
#include "util/status.h"

namespace ccdb {

/// Aggregates per distinct key: keys[] in first-appearance order for
/// hash-grouping, ascending for sort-grouping.
struct GroupAggregates {
  std::vector<uint32_t> keys;
  std::vector<uint64_t> sums;
  std::vector<uint64_t> counts;

  size_t size() const { return keys.size(); }
};

/// Hash-grouping: one scan; bucket-chained hash table over the groups.
template <class Mem, class HashFn = IdentityHash>
GroupAggregates HashGroupSum(std::span<const uint32_t> keys,
                             std::span<const uint32_t> values, Mem& mem,
                             size_t expected_groups = 1024) {
  CCDB_CHECK(keys.size() == values.size());
  GroupAggregates out;
  size_t nbuckets = NextPowerOfTwo(std::max<size_t>(expected_groups, 16));
  uint32_t mask = static_cast<uint32_t>(nbuckets - 1);
  constexpr uint32_t kEmpty = UINT32_MAX;
  std::vector<uint32_t> heads(nbuckets, kEmpty);
  std::vector<uint32_t> next;
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t k = mem.Load(&keys[i]);
    uint32_t v = mem.Load(&values[i]);
    uint32_t b = HashFn::Hash(k) & mask;
    uint32_t g = mem.Load(&heads[b]);
    while (g != kEmpty && mem.Load(&out.keys[g]) != k) {
      g = mem.Load(&next[g]);
    }
    if (g == kEmpty) {
      g = static_cast<uint32_t>(out.keys.size());
      out.keys.push_back(k);
      out.sums.push_back(0);
      out.counts.push_back(0);
      next.push_back(mem.Load(&heads[b]));
      mem.Store(&heads[b], g);
    }
    mem.Update(&out.sums[g], static_cast<uint64_t>(v));
    mem.Update(&out.counts[g], uint64_t{1});
  }
  return out;
}

/// Per-(group, value-column) accumulator carrying everything any aggregate
/// function needs: SUM and AVG read `sum` (plus the group's row count kept
/// by the table), MIN/MAX the extremes. Partials merge exactly: sums add,
/// extremes fold — so shard-parallel aggregation loses nothing.
struct GroupAggState {
  uint64_t sum = 0;
  uint32_t min = UINT32_MAX;
  uint32_t max = 0;
};

/// Narrows an unsigned running aggregate to the signed i64 output column,
/// surfacing overflow past INT64_MAX as OutOfRange instead of silently
/// emitting a negative value.
inline StatusOr<int64_t> CheckedI64(uint64_t v) {
  if (v > static_cast<uint64_t>(INT64_MAX)) {
    return Status::OutOfRange("aggregate exceeds INT64_MAX");
  }
  return static_cast<int64_t>(v);
}

/// Bucket-chained hash table over multi-column group keys with a
/// GroupAggState per value column — the per-shard partial table of the
/// generalized group-by operator (§3.2: the group table usually stays
/// cache-resident while chunks stream through). Keys are stored flat with
/// stride key_width; groups keep first-appearance order, so a single table
/// fed in stream order reproduces a serial reference exactly, and MergeFrom
/// appends unseen groups in the other table's order (deterministic
/// shard-order merging).
class GroupAggTable {
 public:
  /// `key_width` group-key words per row, `num_values` aggregated columns
  /// (0 is valid: a pure COUNT keeps only per-group row counts).
  /// `expected_groups` pre-sizes the bucket array and group storage so the
  /// grow path stays rehash-free whenever the hint covers the final group
  /// count — the planner passes its grouped-cardinality estimate here. 0
  /// keeps the historical default (1024 buckets).
  GroupAggTable(size_t key_width, size_t num_values,
                size_t expected_groups = 0);

  /// Folds one input row: key[0..key_width), values[0..num_values).
  void Add(const uint32_t* key, const uint32_t* values);

  /// Folds one pre-aggregated group — `rows` input rows whose per-value
  /// accumulators are states[0..num_values). This is the per-group step of
  /// MergeFrom; public so overflow handling in downstream i64 narrowing can
  /// be regression-tested without accumulating 2^31 actual rows.
  void AccumulateGroup(const uint32_t* key, uint64_t rows,
                       const GroupAggState* states);

  /// Merges another shard's partial table into this one.
  void MergeFrom(const GroupAggTable& other);

  size_t num_groups() const { return rows_.size(); }
  size_t key_width() const { return key_width_; }
  size_t num_values() const { return num_values_; }

  /// Times the bucket array was rebuilt because the group count outgrew the
  /// (hinted) capacity. 0 whenever the constructor hint was >= the final
  /// group count — the planner-presizing contract, regression-tested.
  size_t rehash_count() const { return rehashes_; }

  /// Key word `k` of group `g`.
  uint32_t key(size_t g, size_t k) const { return keys_[g * key_width_ + k]; }
  /// Input rows folded into group `g` (the COUNT aggregate).
  uint64_t group_rows(size_t g) const { return rows_[g]; }
  /// Accumulator of value column `v` for group `g`.
  const GroupAggState& state(size_t g, size_t v) const {
    return states_[g * num_values_ + v];
  }

 private:
  /// Group index for `key`, inserting a zeroed group when unseen.
  uint32_t FindOrInsert(const uint32_t* key);

  static constexpr uint32_t kEmpty = UINT32_MAX;
  size_t key_width_, num_values_;
  std::vector<uint32_t> keys_;          // flat, stride key_width_
  std::vector<uint64_t> rows_;          // per group
  std::vector<GroupAggState> states_;   // flat, stride num_values_
  std::vector<uint32_t> heads_, next_;  // bucket chains over groups
  uint32_t mask_;
  size_t rehashes_ = 0;
};

/// Sort/merge grouping: sorts [key,value] pairs, then aggregates runs.
template <class Mem>
GroupAggregates SortGroupSum(std::span<const uint32_t> keys,
                             std::span<const uint32_t> values, Mem& mem) {
  CCDB_CHECK(keys.size() == values.size());
  std::vector<Bun> pairs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    // head = value payload, tail = group key (tail is the sort key).
    mem.Store(&pairs[i], Bun{mem.Load(&values[i]), mem.Load(&keys[i])});
  }
  QuickSortByTail(std::span<Bun>(pairs), mem);
  GroupAggregates out;
  size_t i = 0;
  while (i < pairs.size()) {
    uint32_t k = mem.Load(&pairs[i]).tail;
    uint64_t sum = 0, count = 0;
    while (i < pairs.size()) {
      Bun p = mem.Load(&pairs[i]);
      if (p.tail != k) break;
      sum += p.head;
      ++count;
      ++i;
    }
    out.keys.push_back(k);
    out.sums.push_back(sum);
    out.counts.push_back(count);
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_AGGREGATE_H_
