// Grouping and aggregation (§3.2): hash-grouping keeps a hash table of
// groups that usually fits the caches, beating sort/merge grouping whose
// sort randomly accesses the entire relation. Both are provided so the
// claim can be measured.
#ifndef CCDB_ALGO_AGGREGATE_H_
#define CCDB_ALGO_AGGREGATE_H_

#include <span>
#include <vector>

#include "algo/join_common.h"
#include "algo/radix_sort.h"
#include "util/bits.h"

namespace ccdb {

/// Aggregates per distinct key: keys[] in first-appearance order for
/// hash-grouping, ascending for sort-grouping.
struct GroupAggregates {
  std::vector<uint32_t> keys;
  std::vector<uint64_t> sums;
  std::vector<uint64_t> counts;

  size_t size() const { return keys.size(); }
};

/// Hash-grouping: one scan; bucket-chained hash table over the groups.
template <class Mem, class HashFn = IdentityHash>
GroupAggregates HashGroupSum(std::span<const uint32_t> keys,
                             std::span<const uint32_t> values, Mem& mem,
                             size_t expected_groups = 1024) {
  CCDB_CHECK(keys.size() == values.size());
  GroupAggregates out;
  size_t nbuckets = NextPowerOfTwo(std::max<size_t>(expected_groups, 16));
  uint32_t mask = static_cast<uint32_t>(nbuckets - 1);
  constexpr uint32_t kEmpty = UINT32_MAX;
  std::vector<uint32_t> heads(nbuckets, kEmpty);
  std::vector<uint32_t> next;
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t k = mem.Load(&keys[i]);
    uint32_t v = mem.Load(&values[i]);
    uint32_t b = HashFn::Hash(k) & mask;
    uint32_t g = mem.Load(&heads[b]);
    while (g != kEmpty && mem.Load(&out.keys[g]) != k) {
      g = mem.Load(&next[g]);
    }
    if (g == kEmpty) {
      g = static_cast<uint32_t>(out.keys.size());
      out.keys.push_back(k);
      out.sums.push_back(0);
      out.counts.push_back(0);
      next.push_back(mem.Load(&heads[b]));
      mem.Store(&heads[b], g);
    }
    mem.Update(&out.sums[g], static_cast<uint64_t>(v));
    mem.Update(&out.counts[g], uint64_t{1});
  }
  return out;
}

/// Sort/merge grouping: sorts [key,value] pairs, then aggregates runs.
template <class Mem>
GroupAggregates SortGroupSum(std::span<const uint32_t> keys,
                             std::span<const uint32_t> values, Mem& mem) {
  CCDB_CHECK(keys.size() == values.size());
  std::vector<Bun> pairs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    // head = value payload, tail = group key (tail is the sort key).
    mem.Store(&pairs[i], Bun{mem.Load(&values[i]), mem.Load(&keys[i])});
  }
  QuickSortByTail(std::span<Bun>(pairs), mem);
  GroupAggregates out;
  size_t i = 0;
  while (i < pairs.size()) {
    uint32_t k = mem.Load(&pairs[i]).tail;
    uint64_t sum = 0, count = 0;
    while (i < pairs.size()) {
      Bun p = mem.Load(&pairs[i]);
      if (p.tail != k) break;
      sum += p.head;
      ++count;
      ++i;
    }
    out.keys.push_back(k);
    out.sums.push_back(sum);
    out.counts.push_back(count);
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_AGGREGATE_H_
