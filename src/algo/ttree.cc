#include "algo/ttree.h"

#include <algorithm>

namespace ccdb {

Status TTreeOptions::Validate() const {
  if (node_capacity < 1 || node_capacity > 4096)
    return Status::InvalidArgument("node_capacity must be in [1, 4096]");
  return Status::Ok();
}

StatusOr<TTree> TTree::Build(std::span<const Bun> data,
                             const TTreeOptions& options) {
  CCDB_RETURN_IF_ERROR(options.Validate());
  TTree t;
  t.options_ = options;
  std::vector<Bun> sorted(data.begin(), data.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Bun& a, const Bun& b) { return a.tail < b.tail; });
  t.keys_.resize(sorted.size());
  t.oids_.resize(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    t.keys_[i] = sorted[i].tail;
    t.oids_[i] = sorted[i].head;
  }
  if (t.keys_.empty()) return t;
  size_t runs = (t.keys_.size() + options.node_capacity - 1) /
                options.node_capacity;
  t.nodes_.reserve(runs);
  t.root_ = t.BuildRange(0, runs - 1, runs);
  return t;
}

int32_t TTree::BuildRange(size_t first_run, size_t last_run,
                          size_t runs_total) {
  if (first_run > last_run || first_run >= runs_total) return -1;
  size_t mid = first_run + (last_run - first_run) / 2;
  size_t cap = options_.node_capacity;
  size_t start = mid * cap;
  size_t count = std::min(cap, keys_.size() - start);

  int32_t me = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  // Children first-touch after push so the vector index stays stable.
  int32_t left = mid > first_run ? BuildRange(first_run, mid - 1, runs_total)
                                 : -1;
  int32_t right = mid < last_run ? BuildRange(mid + 1, last_run, runs_total)
                                 : -1;
  Node& n = nodes_[static_cast<size_t>(me)];
  n.start = static_cast<uint32_t>(start);
  n.count = static_cast<uint32_t>(count);
  n.min_key = keys_[start];
  n.max_key = keys_[start + count - 1];
  n.left = left;
  n.right = right;
  return me;
}

size_t TTree::HeightOf(int32_t node) const {
  if (node < 0) return 0;
  const Node& n = nodes_[static_cast<size_t>(node)];
  return 1 + std::max(HeightOf(n.left), HeightOf(n.right));
}

size_t TTree::height() const { return HeightOf(root_); }

}  // namespace ccdb
