#include "algo/radix_cluster.h"

#include <numeric>

namespace ccdb {

Status RadixClusterOptions::Validate() const {
  if (bits < 0 || bits > 30)
    return Status::InvalidArgument("radix bits must be in [0, 30], got " +
                                   std::to_string(bits));
  if (passes < 1)
    return Status::InvalidArgument("passes must be >= 1, got " +
                                   std::to_string(passes));
  if (bits == 0 && passes != 1)
    return Status::InvalidArgument("0 bits requires exactly 1 pass");
  if (bits > 0 && passes > bits)
    return Status::InvalidArgument(
        "more passes than bits: every pass needs at least one bit");
  if (!bits_per_pass.empty()) {
    if (static_cast<int>(bits_per_pass.size()) != passes)
      return Status::InvalidArgument("bits_per_pass size must equal passes");
    int sum = 0;
    for (int bp : bits_per_pass) {
      if (bp < 1 || bp > 30)
        return Status::InvalidArgument("each pass needs 1..30 bits");
      sum += bp;
    }
    if (sum != bits)
      return Status::InvalidArgument("bits_per_pass must sum to bits");
  }
  return Status::Ok();
}

std::vector<int> RadixClusterOptions::EffectiveBits() const {
  if (!bits_per_pass.empty()) return bits_per_pass;
  std::vector<int> out(static_cast<size_t>(passes));
  SplitBitsEvenly(bits, passes, out.data());
  return out;
}

}  // namespace ccdb
