#include "algo/radix_join.h"

// RadixJoin is a header template (two access policies, two hash functors);
// this translation unit pre-instantiates the common combinations so client
// code links fast.
namespace ccdb {

template std::vector<Bun> RadixJoinClustered<DirectMemory, IdentityHash>(
    const ClusteredRelation&, const ClusteredRelation&, DirectMemory&, size_t);
template std::vector<Bun> RadixJoinClustered<SimulatedMemory, IdentityHash>(
    const ClusteredRelation&, const ClusteredRelation&, SimulatedMemory&,
    size_t);

}  // namespace ccdb
