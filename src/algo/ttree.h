// T-tree [LC86]: the classic main-memory index the paper's §3.2 compares
// against — a balanced binary tree whose nodes each hold a small sorted run
// of keys. Locating a key chases node pointers scattered through memory;
// that random access pattern is exactly why the paper (after [Ron98])
// prefers a B-tree with cache-line-sized nodes once cache misses dominate.
//
// Bulk-loaded and read-only, like CacheConsciousBTree, so the two can be
// compared on equal terms (bench/ablation_index_selects).
#ifndef CCDB_ALGO_TTREE_H_
#define CCDB_ALGO_TTREE_H_

#include <span>
#include <vector>

#include "algo/join_common.h"
#include "util/status.h"

namespace ccdb {

struct TTreeOptions {
  /// Keys per node (the run length); classic T-trees use tens of entries.
  size_t node_capacity = 8;

  Status Validate() const;
};

class TTree {
 public:
  static StatusOr<TTree> Build(std::span<const Bun> data,
                               const TTreeOptions& options = {});

  /// Appends the OIDs of all tuples with key == `key` to `out`.
  template <class Mem>
  void FindEq(uint32_t key, Mem& mem, std::vector<oid_t>* out) const {
    int32_t node = root_;
    while (node >= 0) {
      const Node& n = nodes_[node];
      uint32_t mn = mem.Load(&n.min_key);
      if (key < mn) {
        node = mem.Load(&n.left);
        continue;
      }
      uint32_t mx = mem.Load(&n.max_key);
      if (key > mx) {
        node = mem.Load(&n.right);
        continue;
      }
      // Bounding node found: duplicates occupy a contiguous range of the
      // global sorted array. When key == this run's min they may spill into
      // predecessor runs, so first walk back, then scan forward.
      size_t first = mem.Load(&n.start);
      while (first > 0 && mem.Load(&keys_[first - 1]) == key) --first;
      for (size_t i = first; i < keys_.size(); ++i) {
        uint32_t k = mem.Load(&keys_[i]);
        if (k > key) return;
        if (k == key) out->push_back(mem.Load(&oids_[i]));
      }
      return;
    }
  }

  /// Appends the OIDs of all tuples with lo <= key <= hi. The locate phase
  /// chases the tree; the scan phase walks the backing array.
  template <class Mem>
  void FindRange(uint32_t lo, uint32_t hi, Mem& mem,
                 std::vector<oid_t>* out) const {
    if (lo > hi || keys_.empty()) return;
    // Locate the first run whose max >= lo.
    int32_t node = root_;
    size_t pos = keys_.size();
    while (node >= 0) {
      const Node& n = nodes_[node];
      if (lo < mem.Load(&n.min_key)) {
        pos = mem.Load(&n.start);  // best candidate so far
        node = mem.Load(&n.left);
      } else if (lo > mem.Load(&n.max_key)) {
        node = mem.Load(&n.right);
      } else {
        pos = mem.Load(&n.start);
        // Keys equal to lo may spill into predecessor runs.
        while (pos > 0 && mem.Load(&keys_[pos - 1]) >= lo) --pos;
        break;
      }
    }
    for (size_t i = pos; i < keys_.size(); ++i) {
      uint32_t k = mem.Load(&keys_[i]);
      if (k > hi) return;
      if (k >= lo) out->push_back(mem.Load(&oids_[i]));
    }
  }

  size_t size() const { return keys_.size(); }
  size_t node_count() const { return nodes_.size(); }
  /// Tree height (longest root-to-leaf node chain), 0 when empty.
  size_t height() const;
  size_t MemoryBytes() const {
    return (keys_.size() + oids_.size()) * sizeof(uint32_t) +
           nodes_.size() * sizeof(Node);
  }

 private:
  struct Node {
    uint32_t min_key = 0;
    uint32_t max_key = 0;
    uint32_t start = 0;  ///< offset of this node's run in keys_/oids_
    uint32_t count = 0;
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t BuildRange(size_t first_run, size_t last_run, size_t runs_total);
  size_t HeightOf(int32_t node) const;

  TTreeOptions options_;
  std::vector<uint32_t> keys_;   // sorted backing array
  std::vector<uint32_t> oids_;
  std::vector<Node> nodes_;      // allocation order = recursion order
  int32_t root_ = -1;
};

}  // namespace ccdb

#endif  // CCDB_ALGO_TTREE_H_
