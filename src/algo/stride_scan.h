// The paper's §2 "reality check": iteratively read one byte with a varying
// stride — mimicking a read-only scan of a one-byte column in a table with
// record-width = stride. Figure 3 plots the elapsed time of 200,000
// iterations against the stride.
#ifndef CCDB_ALGO_STRIDE_SCAN_H_
#define CCDB_ALGO_STRIDE_SCAN_H_

#include <cstdint>
#include <cstddef>

#include "mem/access.h"
#include "util/logging.h"

namespace ccdb {

/// Reads `iterations` bytes at offsets 0, stride, 2*stride, ... and returns
/// their sum (forcing the reads). Pre: iterations * stride <= buffer_bytes,
/// so no byte is revisited and caches cannot help beyond spatial locality —
/// matching the paper's setup ("in memory, but not in any of the caches").
template <class Mem>
uint64_t StrideScanSum(const uint8_t* buffer, size_t buffer_bytes,
                       size_t stride, size_t iterations, Mem& mem) {
  CCDB_CHECK(stride >= 1);
  CCDB_CHECK(iterations * stride <= buffer_bytes);
  uint64_t sum = 0;
  const uint8_t* p = buffer;
  for (size_t i = 0; i < iterations; ++i) {
    sum += mem.Load(p);
    p += stride;
  }
  return sum;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_STRIDE_SCAN_H_
