// Radix-join (§3.3.1, Figs. 7/8): radix-cluster both relations on B bits,
// then nested-loop join each pair of matching clusters. Meant for very fine
// clusterings — H is tuned to C divided by a small constant (the paper finds
// ~8 tuples per cluster optimal); at 1 tuple/cluster it degenerates into
// sort/merge-join with radix-sort as the sort.
#ifndef CCDB_ALGO_RADIX_JOIN_H_
#define CCDB_ALGO_RADIX_JOIN_H_

#include "algo/radix_cluster.h"

namespace ccdb {

/// Join phase only (paper Fig. 10 measures exactly this): both inputs must
/// be clustered on the same number of bits.
template <class Mem, class HashFn = IdentityHash>
std::vector<Bun> RadixJoinClustered(const ClusteredRelation& l,
                                    const ClusteredRelation& r, Mem& mem,
                                    size_t result_hint = 0) {
  std::vector<Bun> out;
  out.reserve(result_hint != 0 ? result_hint
                               : std::min(l.tuples.size(), r.tuples.size()));
  MergeClusterPairs<Mem, HashFn>(
      l, r, mem,
      [&](size_t l_lo, size_t l_hi, size_t r_lo, size_t r_hi) {
        for (size_t i = l_lo; i < l_hi; ++i) {
          Bun lt = mem.Load(&l.tuples[i]);
          for (size_t j = r_lo; j < r_hi; ++j) {
            Bun rt = mem.Load(&r.tuples[j]);
            if (lt.tail == rt.tail) {
              EmitResult(out, Bun{lt.head, rt.head}, mem);
            }
          }
        }
      });
  return out;
}

/// Full radix-join: cluster both inputs on `bits` over `passes`, then join.
/// Fills `stats` (cluster/join split) when non-null.
template <class Mem, class HashFn = IdentityHash>
StatusOr<std::vector<Bun>> RadixJoin(std::span<const Bun> l,
                                     std::span<const Bun> r, int bits,
                                     int passes, Mem& mem,
                                     JoinStats* stats = nullptr) {
  RadixClusterOptions opt{.bits = bits, .passes = passes, .bits_per_pass = {}};
  RadixClusterStats cs;
  CCDB_ASSIGN_OR_RETURN(ClusteredRelation cl,
                        (RadixCluster<Mem, HashFn>(l, opt, mem, &cs)));
  double l_ms = cs.total_ms;
  CCDB_ASSIGN_OR_RETURN(ClusteredRelation cr,
                        (RadixCluster<Mem, HashFn>(r, opt, mem, &cs)));
  double r_ms = cs.total_ms;
  WallTimer t;
  std::vector<Bun> out = RadixJoinClustered<Mem, HashFn>(cl, cr, mem);
  if (stats != nullptr) {
    stats->cluster_left_ms = l_ms;
    stats->cluster_right_ms = r_ms;
    stats->join_ms = t.ElapsedMillis();
    stats->result_count = out.size();
    stats->bits = bits;
    stats->passes = passes;
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_RADIX_JOIN_H_
