// LSB radix sort [Knu68] on the 32-bit tail of BUNs: four stable counting
// passes of 8 bits. The paper points out that radix-join at cluster size 1
// degenerates into sort/merge-join with radix-sort — this is that sort.
#ifndef CCDB_ALGO_RADIX_SORT_H_
#define CCDB_ALGO_RADIX_SORT_H_

#include <span>
#include <vector>

#include "algo/join_common.h"

namespace ccdb {

/// Sorts `data` ascending by tail, stable. O(N) extra space.
template <class Mem>
void RadixSortByTail(std::span<Bun> data, Mem& mem) {
  constexpr int kPassBits = 8;
  constexpr size_t kBuckets = 1u << kPassBits;
  std::vector<Bun> scratch(data.size());
  Bun* src = data.data();
  Bun* dst = scratch.data();
  std::vector<uint32_t> hist(kBuckets);
  std::vector<uint64_t> offset(kBuckets);
  for (int pass = 0; pass < 4; ++pass) {
    int shift = pass * kPassBits;
    std::fill(hist.begin(), hist.end(), 0u);
    for (size_t i = 0; i < data.size(); ++i) {
      Bun t = mem.Load(&src[i]);
      mem.Update(&hist[(t.tail >> shift) & 0xff], 1u);
    }
    uint64_t acc = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      offset[b] = acc;
      acc += hist[b];
    }
    for (size_t i = 0; i < data.size(); ++i) {
      Bun t = mem.Load(&src[i]);
      mem.Store(&dst[offset[(t.tail >> shift) & 0xff]++], t);
    }
    std::swap(src, dst);
  }
  // Four passes: data ends up back in the original buffer.
}

/// In-place quicksort by tail (median-of-three, insertion sort below 16,
/// recursion on the smaller side). The random partition exchanges are the
/// cache-hostile access pattern the paper attributes to sort-merge-join.
template <class Mem>
void QuickSortByTail(std::span<Bun> data, Mem& mem) {
  struct Range {
    size_t lo, hi;
  };
  if (data.size() < 2) return;
  std::vector<Range> stack;
  stack.push_back({0, data.size()});
  auto load = [&](size_t i) { return mem.Load(&data[i]); };
  auto store = [&](size_t i, Bun v) { mem.Store(&data[i], v); };
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    while (hi - lo > 16) {
      size_t mid = lo + (hi - lo) / 2;
      uint32_t a = load(lo).tail, b = load(mid).tail, c = load(hi - 1).tail;
      uint32_t pivot = std::max(std::min(a, b), std::min(std::max(a, b), c));
      size_t i = lo, j = hi - 1;
      while (i <= j) {
        while (load(i).tail < pivot) ++i;
        while (load(j).tail > pivot) --j;
        if (i <= j) {
          Bun ti = load(i), tj = load(j);
          store(i, tj);
          store(j, ti);
          ++i;
          if (j == 0) break;
          --j;
        }
      }
      // Recurse into the smaller side; loop on the larger.
      size_t left = (j + 1) - lo, right = hi - i;
      if (left < right) {
        if (left > 1) stack.push_back({lo, j + 1});
        lo = i;
      } else {
        if (right > 1) stack.push_back({i, hi});
        hi = j + 1;
      }
    }
    // Insertion sort the remainder.
    for (size_t i = lo + 1; i < hi; ++i) {
      Bun key = load(i);
      size_t j = i;
      while (j > lo && load(j - 1).tail > key.tail) {
        store(j, load(j - 1));
        --j;
      }
      store(j, key);
    }
  }
}

}  // namespace ccdb

#endif  // CCDB_ALGO_RADIX_SORT_H_
