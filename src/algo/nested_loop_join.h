// Nested-loop join: O(|L|*|R|) reference implementation. Used as the oracle
// in the property tests (every other join algorithm must produce the same
// multiset of [OID,OID] pairs) and as the per-cluster kernel of radix-join.
#ifndef CCDB_ALGO_NESTED_LOOP_JOIN_H_
#define CCDB_ALGO_NESTED_LOOP_JOIN_H_

#include "algo/join_common.h"

namespace ccdb {

template <class Mem>
std::vector<Bun> NestedLoopJoin(std::span<const Bun> l, std::span<const Bun> r,
                                Mem& mem) {
  std::vector<Bun> out;
  for (size_t i = 0; i < l.size(); ++i) {
    Bun lt = mem.Load(&l[i]);
    for (size_t j = 0; j < r.size(); ++j) {
      Bun rt = mem.Load(&r[j]);
      if (lt.tail == rt.tail) EmitResult(out, Bun{lt.head, rt.head}, mem);
    }
  }
  return out;
}

}  // namespace ccdb

#endif  // CCDB_ALGO_NESTED_LOOP_JOIN_H_
