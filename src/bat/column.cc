#include "bat/column.h"

#include <numeric>

namespace ccdb {

const char* PhysTypeName(PhysType t) {
  switch (t) {
    case PhysType::kVoid: return "void";
    case PhysType::kU8: return "u8";
    case PhysType::kU16: return "u16";
    case PhysType::kU32: return "u32";
    case PhysType::kI32: return "i32";
    case PhysType::kI64: return "i64";
    case PhysType::kF64: return "f64";
    case PhysType::kStr: return "str";
  }
  return "?";
}

Column Column::Void(oid_t base, size_t count) {
  return Column(VoidRep{base, count});
}
Column Column::U8(ColVec<uint8_t> v) { return Column(Rep(std::move(v))); }
Column Column::U16(ColVec<uint16_t> v) { return Column(Rep(std::move(v))); }
Column Column::U32(ColVec<uint32_t> v) { return Column(Rep(std::move(v))); }
Column Column::I32(ColVec<int32_t> v) { return Column(Rep(std::move(v))); }
Column Column::I64(ColVec<int64_t> v) { return Column(Rep(std::move(v))); }
Column Column::F64(ColVec<double> v) { return Column(Rep(std::move(v))); }

namespace {
// Copy a plain vector (or an initializer list) into an arena-backed one.
template <typename T, typename Src>
ColVec<T> ToArena(const Src& v) {
  return ColVec<T>(v.begin(), v.end());
}
}  // namespace

Column Column::U8(const std::vector<uint8_t>& v) { return U8(ToArena<uint8_t>(v)); }
Column Column::U16(const std::vector<uint16_t>& v) { return U16(ToArena<uint16_t>(v)); }
Column Column::U32(const std::vector<uint32_t>& v) { return U32(ToArena<uint32_t>(v)); }
Column Column::I32(const std::vector<int32_t>& v) { return I32(ToArena<int32_t>(v)); }
Column Column::I64(const std::vector<int64_t>& v) { return I64(ToArena<int64_t>(v)); }
Column Column::F64(const std::vector<double>& v) { return F64(ToArena<double>(v)); }
Column Column::U8(std::initializer_list<uint8_t> v) { return U8(ToArena<uint8_t>(v)); }
Column Column::U16(std::initializer_list<uint16_t> v) { return U16(ToArena<uint16_t>(v)); }
Column Column::U32(std::initializer_list<uint32_t> v) { return U32(ToArena<uint32_t>(v)); }
Column Column::I32(std::initializer_list<int32_t> v) { return I32(ToArena<int32_t>(v)); }
Column Column::I64(std::initializer_list<int64_t> v) { return I64(ToArena<int64_t>(v)); }
Column Column::F64(std::initializer_list<double> v) { return F64(ToArena<double>(v)); }

Column Column::Str(const std::vector<std::string>& v) {
  StrRep rep;
  rep.offsets.reserve(v.size() + 1);
  size_t total = 0;
  for (const auto& s : v) total += s.size();
  rep.arena.reserve(total);
  rep.offsets.push_back(0);
  for (const auto& s : v) {
    rep.arena += s;
    rep.offsets.push_back(static_cast<uint32_t>(rep.arena.size()));
  }
  return Column(Rep(std::move(rep)));
}

PhysType Column::type() const {
  return std::visit(
      [](const auto& v) -> PhysType {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, VoidRep>) return PhysType::kVoid;
        else if constexpr (std::is_same_v<T, ColVec<uint8_t>>) return PhysType::kU8;
        else if constexpr (std::is_same_v<T, ColVec<uint16_t>>) return PhysType::kU16;
        else if constexpr (std::is_same_v<T, ColVec<uint32_t>>) return PhysType::kU32;
        else if constexpr (std::is_same_v<T, ColVec<int32_t>>) return PhysType::kI32;
        else if constexpr (std::is_same_v<T, ColVec<int64_t>>) return PhysType::kI64;
        else if constexpr (std::is_same_v<T, ColVec<double>>) return PhysType::kF64;
        else return PhysType::kStr;
      },
      rep_);
}

size_t Column::size() const {
  return std::visit(
      [](const auto& v) -> size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, VoidRep>) {
          return v.count;
        } else if constexpr (std::is_same_v<T, StrRep>) {
          return v.offsets.empty() ? 0 : v.offsets.size() - 1;
        } else {
          return v.size();
        }
      },
      rep_);
}

uint64_t Column::GetIntegral(size_t i) const {
  switch (type()) {
    case PhysType::kVoid: return void_base() + i;
    case PhysType::kU8: return Span<uint8_t>()[i];
    case PhysType::kU16: return Span<uint16_t>()[i];
    case PhysType::kU32: return Span<uint32_t>()[i];
    case PhysType::kI32:
      return static_cast<uint32_t>(Span<int32_t>()[i]);
    case PhysType::kI64:
      return static_cast<uint64_t>(Span<int64_t>()[i]);
    default:
      CCDB_CHECK(false && "GetIntegral on non-integral column");
  }
  return 0;
}

Column Column::Materialize() const {
  if (const VoidRep* v = std::get_if<VoidRep>(&rep_)) {
    ColVec<uint32_t> oids(v->count);
    std::iota(oids.begin(), oids.end(), v->base);
    return U32(std::move(oids));
  }
  return *this;
}

size_t Column::MemoryBytes() const {
  return std::visit(
      [](const auto& v) -> size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, VoidRep>) {
          return 0;
        } else if constexpr (std::is_same_v<T, StrRep>) {
          return v.offsets.size() * sizeof(uint32_t) + v.arena.size();
        } else {
          return v.size() * sizeof(typename T::value_type);
        }
      },
      rep_);
}

}  // namespace ccdb
