#include "bat/encoding.h"

#include <unordered_map>

namespace ccdb {

uint32_t StrDictionary::Intern(std::string_view v) {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == v) return static_cast<uint32_t>(i);
  }
  values_.emplace_back(v);
  return static_cast<uint32_t>(values_.size() - 1);
}

StatusOr<uint32_t> StrDictionary::Lookup(std::string_view v) const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == v) return static_cast<uint32_t>(i);
  }
  return Status::NotFound("value not in dictionary: " + std::string(v));
}

std::string_view StrDictionary::Get(uint32_t code) const {
  CCDB_CHECK(code < values_.size());
  return values_[code];
}

StatusOr<EncodedStrColumn> DictEncode(const Column& str_column) {
  if (str_column.type() != PhysType::kStr) {
    return Status::InvalidArgument(
        std::string("DictEncode requires a str column, got ") +
        PhysTypeName(str_column.type()));
  }
  size_t n = str_column.size();
  EncodedStrColumn out;
  // Two passes: first build the dictionary with a hash map for speed, then
  // emit codes at the final width. Intern() itself is linear-scan (dicts are
  // small by definition), so bulk encoding uses the map. The map owns its
  // keys: views into the dictionary dangle when its string vector grows
  // (SSO buffers move on reallocation); heterogeneous lookup keeps probes
  // allocation-free.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, uint32_t, SvHash, std::equal_to<>> index;
  std::vector<uint32_t> wide_codes(n);
  for (size_t i = 0; i < n; ++i) {
    std::string_view v = str_column.GetStr(i);
    auto it = index.find(v);
    if (it == index.end()) {
      uint32_t code = out.dict.Intern(v);
      index.emplace(std::string(v), code);
      wide_codes[i] = code;
    } else {
      wide_codes[i] = it->second;
    }
    if (out.dict.size() > 65536) {
      return Status::ResourceExhausted(
          "domain cardinality exceeds 65536; column not byte-encodable");
    }
  }
  if (out.dict.size() <= 256) {
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) codes[i] = static_cast<uint8_t>(wide_codes[i]);
    out.codes = Column::U8(std::move(codes));
  } else {
    std::vector<uint16_t> codes(n);
    for (size_t i = 0; i < n; ++i)
      codes[i] = static_cast<uint16_t>(wide_codes[i]);
    out.codes = Column::U16(std::move(codes));
  }
  return out;
}

StatusOr<Column> DictDecode(const EncodedStrColumn& enc) {
  size_t n = enc.codes.size();
  std::vector<std::string> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t code = enc.codes.GetIntegral(i);
    values.emplace_back(enc.dict.Get(static_cast<uint32_t>(code)));
  }
  return Column::Str(values);
}

StatusOr<EncodedIntColumn> DictEncodeInts(const Column& int_column) {
  switch (int_column.type()) {
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
    case PhysType::kI32:
    case PhysType::kVoid:
      break;
    default:
      return Status::InvalidArgument(
          std::string("DictEncodeInts requires a 32-bit integral column, got ") +
          PhysTypeName(int_column.type()));
  }
  size_t n = int_column.size();
  EncodedIntColumn out;
  std::unordered_map<uint32_t, uint32_t> index;
  std::vector<uint32_t> wide_codes(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = static_cast<uint32_t>(int_column.GetIntegral(i));
    auto [it, inserted] =
        index.emplace(v, static_cast<uint32_t>(out.dict.size()));
    if (inserted) out.dict.push_back(v);
    wide_codes[i] = it->second;
    if (out.dict.size() > 65536) {
      return Status::ResourceExhausted(
          "domain cardinality exceeds 65536; column not byte-encodable");
    }
  }
  if (out.dict.size() <= 256) {
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) codes[i] = static_cast<uint8_t>(wide_codes[i]);
    out.codes = Column::U8(std::move(codes));
  } else {
    std::vector<uint16_t> codes(n);
    for (size_t i = 0; i < n; ++i)
      codes[i] = static_cast<uint16_t>(wide_codes[i]);
    out.codes = Column::U16(std::move(codes));
  }
  return out;
}

StatusOr<Column> DictDecodeInts(const EncodedIntColumn& enc) {
  size_t n = enc.codes.size();
  std::vector<uint32_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t code = enc.codes.GetIntegral(i);
    CCDB_CHECK(code < enc.dict.size());
    values[i] = enc.dict[code];
  }
  return Column::U32(std::move(values));
}

}  // namespace ccdb
