// Bat: Binary Association Table — the two-column table that is Monet's only
// physical table structure (§3.1). A relational table of k attributes is
// stored as k BATs [OID, value]; the OID head is normally a void (virtual
// OID) column so each BAT costs just the width of its value column.
#ifndef CCDB_BAT_BAT_H_
#define CCDB_BAT_BAT_H_

#include <vector>

#include "bat/column.h"
#include "bat/types.h"
#include "util/status.h"

namespace ccdb {

/// Two aligned columns of equal length. Head is conventionally the OID
/// column (void or u32); tail carries the attribute values.
class Bat {
 public:
  Bat() = default;

  /// Fails with kInvalidArgument when head and tail lengths differ.
  static StatusOr<Bat> Make(Column head, Column tail);

  /// [void(0..n), tail] — the standard decomposition BAT.
  static Bat DenseTail(Column tail);

  /// Materialized [oid, u32-value] BAT from raw BUNs (the §3.4 experiment
  /// representation).
  static Bat FromBuns(std::span<const Bun> buns);

  size_t size() const { return head_.size(); }
  const Column& head() const { return head_; }
  const Column& tail() const { return tail_; }
  Column& mutable_head() { return head_; }
  Column& mutable_tail() { return tail_; }

  /// Copies out 8-byte [OID, u32] BUNs. Requires head void/u32 and an
  /// integral tail of at most 32 bits (u8/u16/u32/void widen losslessly).
  StatusOr<std::vector<Bun>> ToBuns() const;

  /// Swaps head and tail ("reverse" in Monet's algebra).
  Bat Reverse() const;

  /// Total heap bytes of both columns; shows the §3.1 space optimizations
  /// (void head: 0 bytes; byte-encoded tail: 1 byte per BUN).
  size_t MemoryBytes() const {
    return head_.MemoryBytes() + tail_.MemoryBytes();
  }

 private:
  Bat(Column head, Column tail)
      : head_(std::move(head)), tail_(std::move(tail)) {}

  Column head_;
  Column tail_;
};

}  // namespace ccdb

#endif  // CCDB_BAT_BAT_H_
