#include "bat/nsm.h"

#include "util/logging.h"

namespace ccdb {

size_t FieldTypeWidth(FieldType t) {
  switch (t) {
    case FieldType::kU8: return 1;
    case FieldType::kU16: return 2;
    case FieldType::kU32: return 4;
    case FieldType::kI64: return 8;
    case FieldType::kF64: return 8;
    case FieldType::kChar1: return 1;
    case FieldType::kChar10: return 10;
    case FieldType::kChar27: return 27;
  }
  return 0;
}

StatusOr<RowStore> RowStore::Make(std::vector<FieldDef> fields,
                                  size_t capacity_rows) {
  if (fields.empty())
    return Status::InvalidArgument("RowStore needs at least one field");
  RowStore rs;
  rs.fields_ = std::move(fields);
  rs.offsets_.reserve(rs.fields_.size());
  size_t off = 0;
  for (const auto& f : rs.fields_) {
    rs.offsets_.push_back(off);
    off += FieldTypeWidth(f.type);
  }
  rs.record_width_ = off;
  rs.capacity_ = capacity_rows;
  rs.buf_.Allocate(rs.record_width_ * capacity_rows);
  return rs;
}

StatusOr<size_t> RowStore::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named " + name);
}

StatusOr<size_t> RowStore::AppendRow() {
  if (rows_ >= capacity_)
    return Status::ResourceExhausted("RowStore capacity exceeded");
  return rows_++;
}

void RowStore::SetBytes(size_t row, size_t f, const void* data, size_t len) {
  size_t width = FieldTypeWidth(fields_[f].type);
  CCDB_CHECK(len <= width);
  uint8_t* dst = RowPtr(row) + offsets_[f];
  std::memcpy(dst, data, len);
  std::memset(dst + len, 0, width - len);
}

}  // namespace ccdb
