// RowStore: the N-ary storage model the paper contrasts against (§2, §3.1) —
// "the default physical tuple representation is a consecutive byte
// sequence". Records are fixed-width packed byte arrays; scanning one
// attribute therefore strides through memory at the record width, which is
// exactly the X-axis of the paper's Figure 3 experiment.
#ifndef CCDB_BAT_NSM_H_
#define CCDB_BAT_NSM_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/status.h"

namespace ccdb {

/// Fixed-width field types for NSM records.
enum class FieldType : uint8_t {
  kU8,
  kU16,
  kU32,
  kI64,
  kF64,
  kChar1,    ///< char(1), e.g. the Item table's "status" / "flag"
  kChar10,   ///< short fixed string, e.g. "shipmode"
  kChar27,   ///< char(27), e.g. the Item table's "comment"
};

size_t FieldTypeWidth(FieldType t);

struct FieldDef {
  std::string name;
  FieldType type;
};

/// Packed fixed-width row store over an aligned buffer.
class RowStore {
 public:
  /// Fails if `fields` is empty.
  static StatusOr<RowStore> Make(std::vector<FieldDef> fields,
                                 size_t capacity_rows);

  size_t record_width() const { return record_width_; }
  size_t size() const { return rows_; }
  size_t capacity() const { return capacity_; }
  const std::vector<FieldDef>& fields() const { return fields_; }
  /// Byte offset of field `f` within a record.
  size_t field_offset(size_t f) const { return offsets_[f]; }
  /// Index of the field named `name`, or kNotFound.
  StatusOr<size_t> FieldIndex(const std::string& name) const;

  /// Appends a zeroed row, returning its index. Fails when full (the store
  /// is fixed-capacity so the buffer never moves — scans hold raw pointers).
  StatusOr<size_t> AppendRow();

  uint8_t* RowPtr(size_t row) { return buf_.data() + row * record_width_; }
  const uint8_t* RowPtr(size_t row) const {
    return buf_.data() + row * record_width_;
  }

  // Typed field accessors (unchecked widths in release; callers go through
  // the schema they built).
  void SetU32(size_t row, size_t f, uint32_t v) {
    std::memcpy(RowPtr(row) + offsets_[f], &v, sizeof(v));
  }
  uint32_t GetU32(size_t row, size_t f) const {
    uint32_t v;
    std::memcpy(&v, RowPtr(row) + offsets_[f], sizeof(v));
    return v;
  }
  void SetU8(size_t row, size_t f, uint8_t v) { RowPtr(row)[offsets_[f]] = v; }
  uint8_t GetU8(size_t row, size_t f) const { return RowPtr(row)[offsets_[f]]; }
  void SetI64(size_t row, size_t f, int64_t v) {
    std::memcpy(RowPtr(row) + offsets_[f], &v, sizeof(v));
  }
  int64_t GetI64(size_t row, size_t f) const {
    int64_t v;
    std::memcpy(&v, RowPtr(row) + offsets_[f], sizeof(v));
    return v;
  }
  void SetF64(size_t row, size_t f, double v) {
    std::memcpy(RowPtr(row) + offsets_[f], &v, sizeof(v));
  }
  double GetF64(size_t row, size_t f) const {
    double v;
    std::memcpy(&v, RowPtr(row) + offsets_[f], sizeof(v));
    return v;
  }
  void SetBytes(size_t row, size_t f, const void* data, size_t len);
  const uint8_t* GetBytes(size_t row, size_t f) const {
    return RowPtr(row) + offsets_[f];
  }

  const uint8_t* data() const { return buf_.data(); }

 private:
  RowStore() = default;

  std::vector<FieldDef> fields_;
  std::vector<size_t> offsets_;
  size_t record_width_ = 0;
  size_t rows_ = 0;
  size_t capacity_ = 0;
  AlignedBuffer buf_;
};

}  // namespace ccdb

#endif  // CCDB_BAT_NSM_H_
