// Column: typed physical storage for one side (head or tail) of a BAT.
// Supports the paper's two space optimizations (§3.1):
//  * void columns ("virtual OIDs"): a dense ascending OID sequence is not
//    materialized at all — values are computed positionally on the fly;
//  * byte encodings: low-cardinality columns stored as 1- or 2-byte codes
//    (see bat/encoding.h for the dictionary machinery).
#ifndef CCDB_BAT_COLUMN_H_
#define CCDB_BAT_COLUMN_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "bat/types.h"
#include "mem/arena.h"
#include "util/logging.h"
#include "util/status.h"

namespace ccdb {

/// Value-semantic typed column. Construction is via the static factories;
/// typed access via Span<T>() (checked), GetOid()/GetStr() convenience
/// accessors, or the visitor.
class Column {
 public:
  /// Dense ascending OID sequence [base, base+count) that occupies no memory.
  static Column Void(oid_t base, size_t count);

  // Canonical factories: adopt an arena-backed vector without copying. Large
  // columns land on huge-page-eligible mappings (see mem/arena.h); small
  // ones stay on the default heap path. The std::vector overloads copy into
  // the arena (compatibility for cold callers/tests); the initializer_list
  // overloads keep `Column::U32({1, 2, 3})` unambiguous.
  static Column U8(ColVec<uint8_t> v);
  static Column U16(ColVec<uint16_t> v);
  static Column U32(ColVec<uint32_t> v);
  static Column I32(ColVec<int32_t> v);
  static Column I64(ColVec<int64_t> v);
  static Column F64(ColVec<double> v);
  static Column U8(const std::vector<uint8_t>& v);
  static Column U16(const std::vector<uint16_t>& v);
  static Column U32(const std::vector<uint32_t>& v);
  static Column I32(const std::vector<int32_t>& v);
  static Column I64(const std::vector<int64_t>& v);
  static Column F64(const std::vector<double>& v);
  static Column U8(std::initializer_list<uint8_t> v);
  static Column U16(std::initializer_list<uint16_t> v);
  static Column U32(std::initializer_list<uint32_t> v);
  static Column I32(std::initializer_list<int32_t> v);
  static Column I64(std::initializer_list<int64_t> v);
  static Column F64(std::initializer_list<double> v);
  /// Builds a string column (offset array + byte arena) from `v`.
  /// (String storage keeps std::string for the byte arena; only the fixed
  /// width representations are arena-backed.)
  static Column Str(const std::vector<std::string>& v);

  Column() : rep_(VoidRep{0, 0}) {}

  PhysType type() const;
  size_t size() const;

  /// Checked typed view. Dies (CCDB_CHECK) on a type mismatch — callers are
  /// expected to have validated types at plan time; use `type()` to branch.
  template <typename T>
  std::span<const T> Span() const {
    const ColVec<T>* v = std::get_if<ColVec<T>>(&rep_);
    CCDB_CHECK(v != nullptr);
    return {v->data(), v->size()};
  }
  template <typename T>
  std::span<T> MutableSpan() {
    ColVec<T>* v = std::get_if<ColVec<T>>(&rep_);
    CCDB_CHECK(v != nullptr);
    return {v->data(), v->size()};
  }

  bool is_void() const { return std::holds_alternative<VoidRep>(rep_); }
  /// Pre: is_void().
  oid_t void_base() const { return std::get<VoidRep>(rep_).base; }

  /// OID at position `i` for void or kU32 columns (the two OID carriers).
  oid_t GetOid(size_t i) const {
    if (const VoidRep* v = std::get_if<VoidRep>(&rep_)) {
      CCDB_DCHECK(i < v->count);
      return static_cast<oid_t>(v->base + i);
    }
    return Span<uint32_t>()[i];
  }

  /// String at position `i`. Pre: type() == kStr.
  std::string_view GetStr(size_t i) const {
    const StrRep* s = std::get_if<StrRep>(&rep_);
    CCDB_CHECK(s != nullptr);
    CCDB_DCHECK(i + 1 < s->offsets.size() + 1 && i < s->offsets.size() - 1);
    return std::string_view(s->arena).substr(
        s->offsets[i], s->offsets[i + 1] - s->offsets[i]);
  }

  /// Widens position `i` to uint64 for any integral representation
  /// (void, u8, u16, u32, i32 — i32 is reinterpreted as its bit pattern).
  /// Pre: integral type. Used by generic operators and tests.
  uint64_t GetIntegral(size_t i) const;

  /// Materializes a void column as explicit u32 OIDs; identity otherwise.
  Column Materialize() const;

  /// Bytes of heap memory this column occupies (0 for void — the point of
  /// virtual OIDs).
  size_t MemoryBytes() const;

 private:
  struct VoidRep {
    oid_t base;
    size_t count;
  };
  struct StrRep {
    std::vector<uint32_t> offsets;  // size N+1
    std::string arena;
  };

  using Rep = std::variant<VoidRep, ColVec<uint8_t>, ColVec<uint16_t>,
                           ColVec<uint32_t>, ColVec<int32_t>, ColVec<int64_t>,
                           ColVec<double>, StrRep>;

  explicit Column(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace ccdb

#endif  // CCDB_BAT_COLUMN_H_
