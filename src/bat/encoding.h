// Byte-encodings (§3.1): columns with low domain cardinality are stored as
// 1- or 2-byte integer codes into a dictionary. The paper deliberately
// chooses fixed-size codes over bit-compression: predicates are *remapped*
// onto codes (a selection on "MAIL" becomes a selection on byte 3), so no
// per-tuple decoding work is added to the scan.
#ifndef CCDB_BAT_ENCODING_H_
#define CCDB_BAT_ENCODING_H_

#include <string>
#include <string_view>
#include <vector>

#include "bat/column.h"
#include "util/status.h"

namespace ccdb {

/// Ordered value dictionary for string domains. Codes are dense 0..n-1 in
/// first-appearance order.
class StrDictionary {
 public:
  StrDictionary() = default;

  /// Adds `v` if absent; returns its code.
  uint32_t Intern(std::string_view v);

  /// Code of `v`, or kNotFound.
  StatusOr<uint32_t> Lookup(std::string_view v) const;

  std::string_view Get(uint32_t code) const;
  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
};

/// A dictionary-encoded column: `codes` is kU8 or kU16 (chosen by domain
/// cardinality), `dict` maps codes back to values.
struct EncodedStrColumn {
  Column codes;
  StrDictionary dict;

  /// Width of one encoded value in bytes (1 or 2).
  size_t code_width() const { return PhysTypeWidth(codes.type()); }
};

/// Encodes a kStr column. Fails with kResourceExhausted when the domain
/// cardinality exceeds 65536 (the paper's encodings stop at 2 bytes; larger
/// domains stay unencoded).
StatusOr<EncodedStrColumn> DictEncode(const Column& str_column);

/// Reconstructs the original kStr column (used by projections that must
/// emit strings; selections never need this — they remap the predicate).
StatusOr<Column> DictDecode(const EncodedStrColumn& enc);

/// Integer variant: encodes any integral column whose distinct-value count
/// is <= 65536 into u8/u16 codes plus a u32 value dictionary.
struct EncodedIntColumn {
  Column codes;
  std::vector<uint32_t> dict;
  size_t code_width() const { return PhysTypeWidth(codes.type()); }
};

StatusOr<EncodedIntColumn> DictEncodeInts(const Column& int_column);
StatusOr<Column> DictDecodeInts(const EncodedIntColumn& enc);

}  // namespace ccdb

#endif  // CCDB_BAT_ENCODING_H_
