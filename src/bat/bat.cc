#include "bat/bat.h"

namespace ccdb {

StatusOr<Bat> Bat::Make(Column head, Column tail) {
  if (head.size() != tail.size()) {
    return Status::InvalidArgument("BAT head/tail length mismatch: " +
                                   std::to_string(head.size()) + " vs " +
                                   std::to_string(tail.size()));
  }
  return Bat(std::move(head), std::move(tail));
}

Bat Bat::DenseTail(Column tail) {
  size_t n = tail.size();
  return Bat(Column::Void(0, n), std::move(tail));
}

Bat Bat::FromBuns(std::span<const Bun> buns) {
  std::vector<uint32_t> heads(buns.size());
  std::vector<uint32_t> tails(buns.size());
  for (size_t i = 0; i < buns.size(); ++i) {
    heads[i] = buns[i].head;
    tails[i] = buns[i].tail;
  }
  return Bat(Column::U32(std::move(heads)), Column::U32(std::move(tails)));
}

StatusOr<std::vector<Bun>> Bat::ToBuns() const {
  PhysType ht = head_.type();
  if (ht != PhysType::kVoid && ht != PhysType::kU32) {
    return Status::InvalidArgument(
        std::string("BUN view requires void/u32 head, got ") +
        PhysTypeName(ht));
  }
  PhysType tt = tail_.type();
  switch (tt) {
    case PhysType::kVoid:
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
      break;
    default:
      return Status::InvalidArgument(
          std::string("BUN view requires a <=32-bit integral tail, got ") +
          PhysTypeName(tt));
  }
  std::vector<Bun> out(size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].head = head_.GetOid(i);
    out[i].tail = static_cast<uint32_t>(tail_.GetIntegral(i));
  }
  return out;
}

Bat Bat::Reverse() const {
  Bat b = *this;
  std::swap(b.head_, b.tail_);
  return b;
}

}  // namespace ccdb
