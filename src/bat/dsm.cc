#include "bat/dsm.h"

#include <cstring>

namespace ccdb {

namespace {

Column DecomposeField(const RowStore& rows, size_t f) {
  size_t n = rows.size();
  switch (rows.fields()[f].type) {
    case FieldType::kU8: {
      ColVec<uint8_t> v(n);
      for (size_t r = 0; r < n; ++r) v[r] = rows.GetU8(r, f);
      return Column::U8(std::move(v));
    }
    case FieldType::kU16: {
      ColVec<uint16_t> v(n);
      for (size_t r = 0; r < n; ++r) {
        uint16_t x;
        std::memcpy(&x, rows.GetBytes(r, f), sizeof(x));
        v[r] = x;
      }
      return Column::U16(std::move(v));
    }
    case FieldType::kU32: {
      ColVec<uint32_t> v(n);
      for (size_t r = 0; r < n; ++r) v[r] = rows.GetU32(r, f);
      return Column::U32(std::move(v));
    }
    case FieldType::kI64: {
      ColVec<int64_t> v(n);
      for (size_t r = 0; r < n; ++r) {
        int64_t x;
        std::memcpy(&x, rows.GetBytes(r, f), sizeof(x));
        v[r] = x;
      }
      return Column::I64(std::move(v));
    }
    case FieldType::kF64: {
      ColVec<double> v(n);
      for (size_t r = 0; r < n; ++r) v[r] = rows.GetF64(r, f);
      return Column::F64(std::move(v));
    }
    case FieldType::kChar1:
    case FieldType::kChar10:
    case FieldType::kChar27: {
      size_t width = FieldTypeWidth(rows.fields()[f].type);
      std::vector<std::string> v(n);
      for (size_t r = 0; r < n; ++r) {
        const char* p = reinterpret_cast<const char*>(rows.GetBytes(r, f));
        v[r].assign(p, strnlen(p, width));
      }
      return Column::Str(v);
    }
  }
  CCDB_CHECK(false && "unreachable");
  return Column();
}

}  // namespace

StatusOr<DecomposedTable> DecomposedTable::Decompose(const RowStore& rows) {
  DecomposedTable t;
  size_t n = rows.size();
  for (size_t f = 0; f < rows.fields().size(); ++f) {
    Column tail = DecomposeField(rows, f);
    CCDB_ASSIGN_OR_RETURN(Bat bat, Bat::Make(Column::Void(0, n), std::move(tail)));
    t.names_.push_back(rows.fields()[f].name);
    t.fields_.push_back(rows.fields()[f]);
    t.bats_.push_back(std::move(bat));
  }
  return t;
}

StatusOr<size_t> DecomposedTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

Status DecomposedTable::ReconstructRow(oid_t oid, RowStore* out,
                                       size_t row) const {
  if (out->fields().size() != bats_.size())
    return Status::InvalidArgument("schema mismatch in ReconstructRow");
  if (oid >= num_rows())
    return Status::OutOfRange("oid beyond table size");
  for (size_t f = 0; f < bats_.size(); ++f) {
    const Column& tail = bats_[f].tail();
    // Positional lookup: void head means tuple `oid` is at position `oid`.
    switch (fields_[f].type) {
      case FieldType::kU8:
        out->SetU8(row, f, static_cast<uint8_t>(tail.GetIntegral(oid)));
        break;
      case FieldType::kU16: {
        uint16_t v = static_cast<uint16_t>(tail.GetIntegral(oid));
        out->SetBytes(row, f, &v, sizeof(v));
        break;
      }
      case FieldType::kU32:
        out->SetU32(row, f, static_cast<uint32_t>(tail.GetIntegral(oid)));
        break;
      case FieldType::kI64: {
        int64_t v = tail.Span<int64_t>()[oid];
        out->SetBytes(row, f, &v, sizeof(v));
        break;
      }
      case FieldType::kF64:
        out->SetF64(row, f, tail.Span<double>()[oid]);
        break;
      case FieldType::kChar1:
      case FieldType::kChar10:
      case FieldType::kChar27: {
        std::string_view s = tail.GetStr(oid);
        out->SetBytes(row, f, s.data(), s.size());
        break;
      }
    }
  }
  return Status::Ok();
}

StatusOr<RowStore> DecomposedTable::Reconstruct() const {
  CCDB_ASSIGN_OR_RETURN(RowStore out, RowStore::Make(fields_, num_rows()));
  for (size_t r = 0; r < num_rows(); ++r) {
    CCDB_ASSIGN_OR_RETURN(size_t row, out.AppendRow());
    CCDB_RETURN_IF_ERROR(ReconstructRow(static_cast<oid_t>(r), &out, row));
  }
  return out;
}

size_t DecomposedTable::MemoryBytes() const {
  size_t total = 0;
  for (const auto& b : bats_) total += b.MemoryBytes();
  return total;
}

}  // namespace ccdb
