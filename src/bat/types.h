// Fundamental storage types of the BAT layer.
//
// Monet stores every column of a relational table as a Binary Association
// Table (BAT): an array of fixed-size two-field records [OID, value] called
// BUNs (Binary UNits), typically 8 bytes wide (§3.1, Fig. 4). The join
// experiments of §3.4 operate on exactly this representation.
#ifndef CCDB_BAT_TYPES_H_
#define CCDB_BAT_TYPES_H_

#include <cstdint>

namespace ccdb {

/// Object identifier: identifies a tuple of the original relation across all
/// of its decomposition BATs.
using oid_t = uint32_t;

/// One 8-byte BUN as used in the paper's experiments: [OID, 4-byte value].
/// Join results reuse the same struct as [left OID, right OID] join-index
/// entries [Val87].
struct Bun {
  oid_t head;
  uint32_t tail;

  friend bool operator==(const Bun&, const Bun&) = default;
};

static_assert(sizeof(Bun) == 8, "BUNs must be 8 bytes (paper §3.4.1)");

/// Physical column representations supported by the BAT layer.
enum class PhysType : uint8_t {
  kVoid,  ///< virtual OID: dense ascending sequence, not materialized (§3.1)
  kU8,    ///< 1-byte code (byte-encoding, §3.1)
  kU16,   ///< 2-byte code (byte-encoding, §3.1)
  kU32,   ///< 4-byte unsigned (OIDs, encoded values)
  kI32,
  kI64,
  kF64,
  kStr,   ///< variable-length string (offset array + arena)
};

/// Width in bytes of one value of `t`; 0 for kVoid (not materialized) and
/// kStr (variable).
inline size_t PhysTypeWidth(PhysType t) {
  switch (t) {
    case PhysType::kVoid: return 0;
    case PhysType::kU8: return 1;
    case PhysType::kU16: return 2;
    case PhysType::kU32: return 4;
    case PhysType::kI32: return 4;
    case PhysType::kI64: return 8;
    case PhysType::kF64: return 8;
    case PhysType::kStr: return 0;
  }
  return 0;
}

/// Human-readable type name.
const char* PhysTypeName(PhysType t);

}  // namespace ccdb

#endif  // CCDB_BAT_TYPES_H_
