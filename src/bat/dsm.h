// Decomposed Storage Model [CK85]: a k-attribute relational table becomes k
// BATs with a shared (virtual) OID head (§3.1, Fig. 4). Decompose() turns a
// RowStore into its vertical fragments; Reconstruct* invert the mapping via
// positional lookup — the "tuple-reconstruction joins" that Monet gets for
// free on void OID columns.
#ifndef CCDB_BAT_DSM_H_
#define CCDB_BAT_DSM_H_

#include <string>
#include <vector>

#include "bat/bat.h"
#include "bat/nsm.h"
#include "util/status.h"

namespace ccdb {

/// A vertically decomposed table: one BAT per attribute, all with void heads
/// over the same OID range.
class DecomposedTable {
 public:
  /// Vertical decomposition of `rows`: column j of the result holds
  /// [void OID, value of field j].
  static StatusOr<DecomposedTable> Decompose(const RowStore& rows);

  size_t num_columns() const { return bats_.size(); }
  size_t num_rows() const {
    return bats_.empty() ? 0 : bats_.front().size();
  }
  const Bat& column(size_t i) const { return bats_[i]; }
  const std::string& column_name(size_t i) const { return names_[i]; }
  const FieldDef& field(size_t i) const { return fields_[i]; }
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// Writes tuple `oid` back into row `row` of `out` (which must have the
  /// same schema). This is the projection/tuple-reconstruction path: one
  /// positional (void) lookup per attribute, no join needed.
  Status ReconstructRow(oid_t oid, RowStore* out, size_t row) const;

  /// Rebuilds a full RowStore; round-trips with Decompose().
  StatusOr<RowStore> Reconstruct() const;

  /// Sum of column memory; compare against RowStore footprint to see the
  /// §3.1 stride reduction.
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> names_;
  std::vector<FieldDef> fields_;
  std::vector<Bat> bats_;
};

}  // namespace ccdb

#endif  // CCDB_BAT_DSM_H_
