#include "mem/hierarchy.h"

namespace ccdb {

MemoryHierarchy::MemoryHierarchy(const MachineProfile& profile,
                                 bool randomize_pages)
    : profile_(profile),
      l1_(profile.l1),
      l2_(profile.l2),
      tlb_(profile.tlb),
      l1_line_shift_(Log2Floor(profile.l1.line_bytes)),
      page_shift_(Log2Floor(profile.tlb.page_bytes)),
      page_mask_(profile.tlb.page_bytes - 1),
      randomize_pages_(randomize_pages) {
  CCDB_CHECK(profile.Validate().ok());
}

void MemoryHierarchy::FlushAll() {
  l1_.Flush();
  l2_.Flush();
  tlb_.Flush();
}

void MemoryHierarchy::ResetCounters() {
  l1_.ResetCounters();
  l2_.ResetCounters();
  tlb_.ResetCounters();
}

}  // namespace ccdb
