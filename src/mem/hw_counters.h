// Real hardware performance counters via Linux perf_event_open, standing in
// for the MIPS R10000 event counters the paper used [Sil97]. Containers and
// locked-down kernels often forbid perf; in that case Open() returns
// kUnavailable and callers fall back to the software simulator (mem/access.h)
// — the figure benches report whichever source is available.
#ifndef CCDB_MEM_HW_COUNTERS_H_
#define CCDB_MEM_HW_COUNTERS_H_

#include <cstdint>

#include "mem/hierarchy.h"
#include "util/status.h"

namespace ccdb {

/// RAII group of perf counters: cycles, L1D read misses, LLC misses,
/// dTLB read misses. All-or-nothing: if any event cannot be opened the whole
/// group is unavailable.
class HwCounters {
 public:
  HwCounters() = default;
  ~HwCounters();

  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;
  HwCounters(HwCounters&& o) noexcept;
  HwCounters& operator=(HwCounters&& o) noexcept;

  /// Opens the counter group for the calling thread.
  /// Returns kUnavailable when the kernel/paranoia level forbids it.
  Status Open();

  bool is_open() const { return cycles_fd_ >= 0; }

  /// Zeroes and starts all counters.
  Status Start();
  /// Stops counters and returns the events observed since Start().
  /// `cycles_out` receives CPU cycles if non-null.
  StatusOr<MemEvents> Stop(uint64_t* cycles_out = nullptr);

  void Close();

 private:
  int cycles_fd_ = -1;
  int l1_miss_fd_ = -1;
  int llc_miss_fd_ = -1;
  int tlb_miss_fd_ = -1;
};

}  // namespace ccdb

#endif  // CCDB_MEM_HW_COUNTERS_H_
