#include "mem/cache_sim.h"

namespace ccdb {

CacheSim::CacheSim(const CacheGeometry& geometry)
    : geometry_(geometry),
      line_shift_(Log2Floor(geometry.line_bytes)),
      set_mask_(geometry.sets() - 1),
      assoc_(geometry.associativity == 0 ? geometry.lines()
                                         : geometry.associativity) {
  CCDB_CHECK(IsPowerOfTwo(geometry.line_bytes));
  CCDB_CHECK(IsPowerOfTwo(geometry.sets()));
  ways_.resize(geometry.sets() * assoc_);
}

bool CacheSim::Contains(uint64_t addr) const {
  uint64_t line = addr >> line_shift_;
  uint64_t set = line & set_mask_;
  const Way* ways = &ways_[set * assoc_];
  for (size_t w = 0; w < assoc_; ++w) {
    if (ways[w].valid && ways[w].tag == line) return true;
  }
  return false;
}

void CacheSim::Flush() {
  for (auto& w : ways_) w.valid = false;
}

}  // namespace ccdb
