#include "mem/tlb_sim.h"

namespace ccdb {

TlbSim::TlbSim(const TlbGeometry& geometry)
    : geometry_(geometry),
      page_shift_(Log2Floor(geometry.page_bytes)),
      ways_(geometry.associativity == 0 ? geometry.entries
                                        : geometry.associativity) {
  CCDB_CHECK(IsPowerOfTwo(geometry.page_bytes));
  size_t sets = geometry.entries / ways_;
  CCDB_CHECK(sets * ways_ == geometry.entries);
  CCDB_CHECK(IsPowerOfTwo(sets));
  set_mask_ = sets - 1;
  entries_.resize(geometry.entries);
}

bool TlbSim::Contains(uint64_t addr) const {
  uint64_t page = addr >> page_shift_;
  uint64_t set = page & set_mask_;
  const Entry* set_entries = &entries_[set * ways_];
  for (size_t w = 0; w < ways_; ++w) {
    if (set_entries[w].valid && set_entries[w].page == page) return true;
  }
  return false;
}

void TlbSim::Flush() {
  for (auto& e : entries_) e.valid = false;
  mru_page_ = UINT64_MAX;
}

}  // namespace ccdb
