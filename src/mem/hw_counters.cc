#include "mem/hw_counters.h"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ccdb {

#if defined(__linux__)

namespace {

int OpenEvent(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  if (group_fd < 0) attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

uint64_t CacheConfig(uint64_t cache, uint64_t op, uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

Status ReadOne(int fd, uint64_t* out) {
  if (fd < 0) return Status::Unavailable("counter not open");
  uint64_t v = 0;
  if (read(fd, &v, sizeof(v)) != sizeof(v))
    return Status::Internal("perf counter read failed");
  *out = v;
  return Status::Ok();
}

}  // namespace

HwCounters::~HwCounters() { Close(); }

HwCounters::HwCounters(HwCounters&& o) noexcept {
  *this = std::move(o);
}

HwCounters& HwCounters::operator=(HwCounters&& o) noexcept {
  if (this != &o) {
    Close();
    cycles_fd_ = o.cycles_fd_;
    l1_miss_fd_ = o.l1_miss_fd_;
    llc_miss_fd_ = o.llc_miss_fd_;
    tlb_miss_fd_ = o.tlb_miss_fd_;
    o.cycles_fd_ = o.l1_miss_fd_ = o.llc_miss_fd_ = o.tlb_miss_fd_ = -1;
  }
  return *this;
}

Status HwCounters::Open() {
  Close();
  cycles_fd_ = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (cycles_fd_ < 0)
    return Status::Unavailable(
        "perf_event_open failed (kernel.perf_event_paranoid or container "
        "policy); falling back to the software simulator");
  l1_miss_fd_ = OpenEvent(
      PERF_TYPE_HW_CACHE,
      CacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS),
      cycles_fd_);
  llc_miss_fd_ = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                           cycles_fd_);
  tlb_miss_fd_ = OpenEvent(
      PERF_TYPE_HW_CACHE,
      CacheConfig(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS),
      cycles_fd_);
  if (l1_miss_fd_ < 0 || llc_miss_fd_ < 0 || tlb_miss_fd_ < 0) {
    Close();
    return Status::Unavailable("perf cache/TLB events unavailable");
  }
  return Status::Ok();
}

Status HwCounters::Start() {
  if (!is_open()) return Status::FailedPrecondition("counters not open");
  ioctl(cycles_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(cycles_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return Status::Ok();
}

StatusOr<MemEvents> HwCounters::Stop(uint64_t* cycles_out) {
  if (!is_open()) return Status::FailedPrecondition("counters not open");
  ioctl(cycles_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  MemEvents ev;
  uint64_t cycles = 0;
  CCDB_RETURN_IF_ERROR(ReadOne(cycles_fd_, &cycles));
  CCDB_RETURN_IF_ERROR(ReadOne(l1_miss_fd_, &ev.l1_misses));
  CCDB_RETURN_IF_ERROR(ReadOne(llc_miss_fd_, &ev.l2_misses));
  CCDB_RETURN_IF_ERROR(ReadOne(tlb_miss_fd_, &ev.tlb_misses));
  if (cycles_out != nullptr) *cycles_out = cycles;
  return ev;
}

void HwCounters::Close() {
  for (int* fd : {&cycles_fd_, &l1_miss_fd_, &llc_miss_fd_, &tlb_miss_fd_}) {
    if (*fd >= 0) close(*fd);
    *fd = -1;
  }
}

#else  // !__linux__

HwCounters::~HwCounters() = default;
HwCounters::HwCounters(HwCounters&&) noexcept = default;
HwCounters& HwCounters::operator=(HwCounters&&) noexcept = default;
Status HwCounters::Open() {
  return Status::Unavailable("perf counters require Linux");
}
Status HwCounters::Start() {
  return Status::FailedPrecondition("counters not open");
}
StatusOr<MemEvents> HwCounters::Stop(uint64_t*) {
  return Status::FailedPrecondition("counters not open");
}
void HwCounters::Close() {}

#endif

}  // namespace ccdb
