// Software TLB model: `entries` page translations, LRU replacement,
// fully associative by default (matching the R10000's 64-entry TLB the
// paper reasons about in §3.3-3.4).
#ifndef CCDB_MEM_TLB_SIM_H_
#define CCDB_MEM_TLB_SIM_H_

#include <cstdint>
#include <vector>

#include "mem/machine.h"
#include "util/bits.h"
#include "util/logging.h"

namespace ccdb {

/// TLB simulator. An Access() per memory reference; a miss models the OS
/// trap that installs the translation (the paper notes this can cost more
/// than a memory access: lTLB=228ns vs lMem=412ns on the Origin2000,
/// but 228ns on top of every touch).
class TlbSim {
 public:
  explicit TlbSim(const TlbGeometry& geometry);

  /// Touches the page containing `addr`. Returns true on TLB hit.
  bool Access(uint64_t addr) {
    uint64_t page = addr >> page_shift_;
    // Fast path: repeated hits on the most recently used page (the common
    // case for sequential scans) skip the associative lookup. The stamp is
    // already maximal, so skipping the update preserves LRU order.
    if (page == mru_page_) {
      ++accesses_;
      return true;
    }
    uint64_t set = page & set_mask_;
    Entry* set_entries = &entries_[set * ways_];
    ++accesses_;
    for (size_t w = 0; w < ways_; ++w) {
      if (set_entries[w].valid && set_entries[w].page == page) {
        set_entries[w].stamp = ++tick_;
        mru_page_ = page;
        return true;
      }
    }
    ++misses_;
    size_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (size_t w = 0; w < ways_; ++w) {
      if (!set_entries[w].valid) {
        victim = w;
        break;
      }
      if (set_entries[w].stamp < oldest) {
        oldest = set_entries[w].stamp;
        victim = w;
      }
    }
    set_entries[victim] = {page, ++tick_, true};
    mru_page_ = page;
    return false;
  }

  bool Contains(uint64_t addr) const;
  void Flush();
  void ResetCounters() {
    accesses_ = 0;
    misses_ = 0;
  }

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }
  const TlbGeometry& geometry() const { return geometry_; }

 private:
  struct Entry {
    uint64_t page = 0;
    uint64_t stamp = 0;
    bool valid = false;
  };

  TlbGeometry geometry_;
  int page_shift_;
  size_t ways_;
  uint64_t set_mask_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
  /// Most recently touched page; UINT64_MAX when invalid (see Access()).
  uint64_t mru_page_ = UINT64_MAX;
};

}  // namespace ccdb

#endif  // CCDB_MEM_TLB_SIM_H_
