// Page-aware arena: the engine's allocation layer for large, scan- and
// partition-hot buffers (BAT columns, radix-cluster scratch, join outputs).
//
// The paper's whole argument (§1, §3.1) is that memory access dominates query
// cost, and its radix-cluster fan-out is capped by *TLB reach* — the number
// of pages the TLB can map at once. On 4 KB pages a 64-entry TLB reaches
// 256 KB; backing the same buffers with 2 MB transparent huge pages multiplies
// reach by 512 and removes most page walks from scans and partition writes.
//
// Design:
//  * Allocations >= LargeThresholdBytes() (default 2 MB) are served from
//    2 MB-aligned anonymous mmap regions advised MADV_HUGEPAGE, so the kernel
//    can back them with transparent huge pages. If THP is unavailable or the
//    advice fails, the mapping transparently stays on base pages — same
//    pointer, same bytes, just more translations (graceful 4 KB fallback).
//  * Smaller allocations go to the default path (aligned operator new), but
//    always with >= 64-byte (cache-line) aligned starts, so concurrent
//    writers of adjacent arena buffers never share a line.
//  * ArenaStats reports what was *requested* vs what the kernel actually
//    *granted* (huge-backed bytes are read back from /proc/self/smaps), so
//    benchmarks and BENCH_ci.json can record the truth, not the wish.
//
// ArenaAllocator<T> is the STL hook: ColVec<T> = std::vector<T,
// ArenaAllocator<T>> is a drop-in vector whose backing store routes through
// the arena. Results are byte-identical to plain vectors by construction —
// only the placement of the bytes changes.
#ifndef CCDB_MEM_ARENA_H_
#define CCDB_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace ccdb {
namespace arena {

/// Every arena allocation (large or small) starts on a cache-line boundary.
inline constexpr size_t kCacheLineBytes = 64;

/// Allocations at or above this size take the mmap/huge-page path by
/// default; below it, the default heap path (with cache-line alignment).
/// 2 MB: one huge page — smaller blocks could not be huge-backed anyway.
inline constexpr size_t kDefaultLargeThresholdBytes = size_t{2} << 20;

/// Per-block page policy. kRequest advises MADV_HUGEPAGE (the default);
/// kDisable advises MADV_NOHUGEPAGE — used by the tlb_pages bench A/B and by
/// the calibrator's TLB probe, which must measure *base-page* walk behaviour
/// and would be silently defeated by THP=always hosts otherwise.
enum class HugePolicy { kRequest, kDisable };

/// Counters since process start (or ResetStats). All monotonic except via
/// ResetStats; huge-backed bytes are *not* tracked here because backing is
/// decided at fault time — query HugeBackedBytes(p) for ground truth.
struct ArenaStats {
  uint64_t large_allocs = 0;      ///< blocks served by the mmap path
  uint64_t large_bytes = 0;       ///< requested bytes of those blocks
  uint64_t large_mapped_bytes = 0;///< bytes actually mapped (2 MB-rounded)
  uint64_t huge_advised_bytes = 0;///< bytes successfully advised MADV_HUGEPAGE
  uint64_t fallback_allocs = 0;   ///< large requests that fell back to the
                                  ///< heap (mmap failed / non-Linux)
  uint64_t small_allocs = 0;      ///< allocations below the threshold
  uint64_t small_bytes = 0;
};

ArenaStats Stats();
void ResetStats();

/// True when transparent huge pages can be granted via madvise on this host
/// (/sys/.../transparent_hugepage/enabled is "always" or "madvise").
bool ThpAvailable();

/// The kernel's huge-page size (from /proc/meminfo), 2 MB when unknown.
size_t HugePageBytes();

/// Base page size (sysconf), 4096 when unknown.
size_t BasePageBytes();

/// Bytes of `p`'s block currently backed by anonymous huge pages, read from
/// /proc/self/smaps. 0 if `p` is not a live large block, the block is on
/// base pages, or smaps is unavailable. Touch (fault in) the block before
/// asking: THP backing is decided at fault time.
size_t HugeBackedBytes(const void* p);

/// Process-wide default policy for the large path (bench A/B hook).
/// Returns the previous value.
HugePolicy SetDefaultHugePolicy(HugePolicy policy);
HugePolicy DefaultHugePolicy();

/// Test/bench hook: route smaller (or only larger) allocations to the large
/// path. Returns the previous value. Blocks are freed by the path that
/// allocated them regardless of later threshold changes (registry-routed).
size_t SetLargeThresholdBytes(size_t bytes);
size_t LargeThresholdBytes();

/// Explicit block API (the calibrator and benches use it directly).
/// AllocateBlock never returns nullptr (dies on total exhaustion, like the
/// rest of the engine's CCDB_CHECK discipline); the block is zero-filled
/// lazily by the kernel (anonymous mappings) or eagerly on the heap
/// fallback. FreeBlock accepts only AllocateBlock results.
void* AllocateBlock(size_t bytes, HugePolicy policy);
void FreeBlock(void* p);

/// True if `p` is a live block owned by the large path (mmap or heap
/// fallback). Used by Deallocate routing and tests.
bool IsLargeBlock(const void* p);

/// Allocator entry points used by ArenaAllocator: route by the current
/// threshold; Deallocate routes by registry membership, so a threshold
/// change between allocate and free is safe.
void* Allocate(size_t bytes);
void Deallocate(void* p, size_t bytes);

}  // namespace arena

/// Stateless STL allocator over the arena. All instances are equal, so
/// containers move/swap across instances freely.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(size_t n) {
    // std::allocator throws length_error on a wrapped n * sizeof(T); here a
    // wrap would quietly hand back a tiny block for a huge request.
    CCDB_CHECK(n <= SIZE_MAX / sizeof(T));
    return static_cast<T*>(arena::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { arena::Deallocate(p, n * sizeof(T)); }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
};

/// Arena-backed vector: the column/scratch representation. Drop-in for
/// std::vector<T> everywhere spans/data()/size() are used.
template <typename T>
using ColVec = std::vector<T, ArenaAllocator<T>>;

}  // namespace ccdb

#endif  // CCDB_MEM_ARENA_H_
