// MachineProfile: the single description of a memory hierarchy consumed by
// the cache/TLB simulator (src/mem), the analytical cost models (src/model)
// and the join strategy planner. The default profile is the paper's
// Origin2000 (§3.4.1), so that model curves reproduce the paper exactly.
#ifndef CCDB_MEM_MACHINE_H_
#define CCDB_MEM_MACHINE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace ccdb {

/// Geometry of one cache level.
struct CacheGeometry {
  size_t capacity_bytes = 0;
  size_t line_bytes = 0;
  /// Ways per set; 0 means fully associative.
  size_t associativity = 0;

  size_t lines() const { return capacity_bytes / line_bytes; }
  size_t sets() const {
    size_t ways = associativity == 0 ? lines() : associativity;
    return lines() / ways;
  }
};

/// Geometry of the TLB: `entries` page translations over `page_bytes` pages.
struct TlbGeometry {
  size_t entries = 0;
  size_t page_bytes = 0;
  /// Ways; 0 means fully associative (typical for small TLBs, and what the
  /// paper assumes for the R10000's 64-entry TLB).
  size_t associativity = 0;

  /// Memory range covered by all TLB entries, ||TLB|| in the paper.
  size_t span_bytes() const { return entries * page_bytes; }
};

/// Access latencies in nanoseconds, named as in the paper:
/// l2_ns  = lL2  : penalty of an L1 miss that hits L2,
/// mem_ns = lMem : penalty of an L2 miss (main-memory access),
/// tlb_ns = lTLB : penalty of a TLB miss.
struct Latencies {
  double l2_ns = 0;
  double mem_ns = 0;
  double tlb_ns = 0;
  /// Effective cost of a *sequential* L2-line miss (streaming sweeps the
  /// hardware prefetcher overlaps), measured from copy bandwidth. 0 means
  /// "same as mem_ns" — the paper's in-order machines had no overlap, so
  /// the static profiles leave it unset and reproduce the printed curves;
  /// MeasuredHostProfile fills it so wall-clock predictions stop pricing
  /// prefetched sweeps at the full dependent-load latency.
  double mem_seq_ns = 0;

  /// The latency charged per sequential L2 miss under this profile.
  double effective_mem_seq_ns() const {
    return mem_seq_ns > 0 ? mem_seq_ns : mem_ns;
  }
};

/// Cost-model calibration constants (§3.4, footnotes): pure CPU work per
/// tuple for each algorithm, in nanoseconds.
struct CostConstants {
  double wc_ns = 0;    ///< radix-cluster work per tuple per pass (wc)
  double wr_ns = 0;    ///< radix-join predicate check cost (wr)
  double wrp_ns = 0;   ///< radix-join result-tuple creation cost (w'r)
  double wh_ns = 0;    ///< phash per-tuple cost: build+lookup+result (wh)
  double whp_ns = 0;   ///< phash per-cluster hash-table setup cost (w'h)
  double wscan_ns = 0; ///< pure CPU cost per scan iteration (§2: 4 cycles on
                       ///< the Origin2000 = 16 ns)
};

/// A machine as the paper sees one: two cache levels, a TLB, latencies and
/// per-algorithm CPU constants.
struct MachineProfile {
  std::string name;
  double clock_mhz = 0;
  CacheGeometry l1;
  CacheGeometry l2;
  TlbGeometry tlb;
  Latencies lat;
  CostConstants cost;

  /// Nanoseconds per CPU cycle.
  double cycle_ns() const { return 1000.0 / clock_mhz; }

  /// Validates that all geometries are non-degenerate powers of two where
  /// the simulator requires them to be.
  Status Validate() const;

  /// The paper's experimentation platform (§3.4.1): MIPS R10000 @ 250 MHz,
  /// 32 KB L1 (1024 x 32 B lines), 4 MB L2 (32768 x 128 B lines), 64-entry
  /// TLB with 16 KB pages; lTLB=228ns, lL2=24ns, lMem=412ns; wc=50ns,
  /// wr=24ns, w'r=240ns, wh=680ns, w'h=3600ns.
  static MachineProfile Origin2000();

  /// A generic modern x86 laptop/server profile: 32 KB / 64 B L1,
  /// 1 MB / 64 B L2-equivalent (last-level slice), 64-entry 4 KB-page TLB.
  /// Latencies are typical DDR4-era values; use Calibrator to refine.
  static MachineProfile GenericX86();

  /// Three of the paper's four Figure-3 machines, for the scan model.
  static MachineProfile SunLX();
  static MachineProfile UltraSparc1();
  static MachineProfile Sun450();
};

}  // namespace ccdb

#endif  // CCDB_MEM_MACHINE_H_
