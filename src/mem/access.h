// Memory access policies. Every core algorithm in src/algo is written once,
// templated on one of these:
//
//   DirectMemory     — plain loads/stores; compiles to the raw algorithm
//                      (used for wall-clock benchmarks and production use).
//   SimulatedMemory  — routes every load/store through a MemoryHierarchy,
//                      producing the exact L1/L2/TLB miss counts that the
//                      paper obtained from R10000 hardware counters.
//
// This is the substitution that makes the paper's counter-based evaluation
// reproducible on any host (see DESIGN.md §1).
#ifndef CCDB_MEM_ACCESS_H_
#define CCDB_MEM_ACCESS_H_

#include "mem/hierarchy.h"
#include "util/logging.h"

namespace ccdb {

/// Zero-overhead pass-through policy.
struct DirectMemory {
  template <typename T>
  CCDB_ALWAYS_INLINE T Load(const T* p) const {
    return *p;
  }
  template <typename T>
  CCDB_ALWAYS_INLINE void Store(T* p, const T& v) const {
    *p = v;
  }
  /// Read-modify-write convenience (e.g. histogram increments): one access.
  template <typename T>
  CCDB_ALWAYS_INLINE void Update(T* p, const T& delta) const {
    *p += delta;
  }
};

/// Counting policy: every Load/Store/Update is one simulated access of
/// sizeof(T) bytes.
class SimulatedMemory {
 public:
  explicit SimulatedMemory(MemoryHierarchy* hierarchy)
      : hierarchy_(hierarchy) {
    CCDB_CHECK(hierarchy != nullptr);
  }

  template <typename T>
  T Load(const T* p) const {
    hierarchy_->Access(p, sizeof(T), /*write=*/false);
    return *p;
  }
  template <typename T>
  void Store(T* p, const T& v) const {
    hierarchy_->Access(p, sizeof(T), /*write=*/true);
    *p = v;
  }
  template <typename T>
  void Update(T* p, const T& delta) const {
    // Counted once: the store hits the line the load just brought in, so a
    // line-granularity counter sees a single event.
    hierarchy_->Access(p, sizeof(T), /*write=*/true);
    *p += delta;
  }

  MemoryHierarchy* hierarchy() const { return hierarchy_; }

 private:
  MemoryHierarchy* hierarchy_;
};

}  // namespace ccdb

#endif  // CCDB_MEM_ACCESS_H_
