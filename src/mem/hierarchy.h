// MemoryHierarchy ties L1 + L2 + TLB simulators together and exposes the
// event counts the paper reads from R10000 hardware counters: accesses,
// L1 misses, L2 misses, TLB misses — plus a predicted time based on the
// profile's latencies (the right-hand side of the paper's cost formulas).
#ifndef CCDB_MEM_HIERARCHY_H_
#define CCDB_MEM_HIERARCHY_H_

#include <cstdint>

#include "mem/cache_sim.h"
#include "mem/machine.h"
#include "mem/tlb_sim.h"

namespace ccdb {

/// Counter snapshot; also used by the analytical models so that measured,
/// simulated and modeled events are directly comparable.
struct MemEvents {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t tlb_misses = 0;

  MemEvents& operator+=(const MemEvents& o) {
    accesses += o.accesses;
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    tlb_misses += o.tlb_misses;
    return *this;
  }
  MemEvents operator-(const MemEvents& o) const {
    return {accesses - o.accesses, l1_misses - o.l1_misses,
            l2_misses - o.l2_misses, tlb_misses - o.tlb_misses};
  }

  /// Memory-stall time implied by these events under the paper's linear
  /// model: l1_misses*lL2 + l2_misses*lMem + tlb_misses*lTLB.
  double StallNanos(const Latencies& lat) const {
    return static_cast<double>(l1_misses) * lat.l2_ns +
           static_cast<double>(l2_misses) * lat.mem_ns +
           static_cast<double>(tlb_misses) * lat.tlb_ns;
  }
};

/// Two cache levels + TLB, walked in the usual inclusive order:
/// every access touches the TLB and L1; an L1 miss probes L2; an L2 miss
/// goes to memory. Multi-byte accesses that straddle a line boundary touch
/// every line they cover (ditto pages).
///
/// Address translation: the TLB is indexed by *virtual* page; the caches by
/// *physical* address. With `randomize_pages` (the default) each virtual
/// page is assigned a pseudo-random physical frame, modeling the OS page
/// allocator. This matters: without it, algorithm buffers spaced at exact
/// powers of two (e.g. radix-cluster output regions) would alias into the
/// same cache sets — a pathology real systems don't exhibit because
/// physically-indexed caches see scattered frames. Pass `false` for
/// identity mapping when tests need exactly predictable set placement.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const MachineProfile& profile,
                           bool randomize_pages = true);

  /// Simulates a `bytes`-wide access at `p`. `write` is accepted for API
  /// clarity; the model is write-allocate so reads and writes behave alike.
  void Access(const void* p, size_t bytes, bool write) {
    (void)write;
    uint64_t addr = reinterpret_cast<uint64_t>(p);
    uint64_t first_line = addr >> l1_line_shift_;
    uint64_t last_line = (addr + bytes - 1) >> l1_line_shift_;
    for (uint64_t line = first_line; line <= last_line; ++line) {
      AccessLine(line << l1_line_shift_);
    }
  }

  /// Single-address convenience used by the access policies.
  void AccessLine(uint64_t addr) {
    tlb_.Access(addr);
    uint64_t paddr = Translate(addr);
    if (!l1_.Access(paddr)) {
      l2_.Access(paddr);
    }
  }

  /// Drops all cached state (lines + translations), keeping counters.
  void FlushAll();
  void ResetCounters();

  MemEvents events() const {
    return {l1_.accesses(), l1_.misses(), l2_.misses(), tlb_.misses()};
  }

  const MachineProfile& profile() const { return profile_; }
  CacheSim& l1() { return l1_; }
  CacheSim& l2() { return l2_; }
  TlbSim& tlb() { return tlb_; }

 private:
  /// Virtual -> pseudo-physical. Identity when randomization is off.
  /// Deterministic (pure hash of the page number), so runs are repeatable.
  uint64_t Translate(uint64_t addr) {
    if (!randomize_pages_) return addr;
    uint64_t vpage = addr >> page_shift_;
    if (vpage != last_vpage_) {
      last_vpage_ = vpage;
      // splitmix64 finalizer as the frame allocator; 44-bit frame numbers
      // leave headroom in 64-bit tags and make frame collisions negligible.
      uint64_t z = vpage + 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      last_frame_base_ = (z & ((uint64_t{1} << 44) - 1)) << page_shift_;
    }
    return last_frame_base_ | (addr & page_mask_);
  }

  MachineProfile profile_;
  CacheSim l1_;
  CacheSim l2_;
  TlbSim tlb_;
  int l1_line_shift_;
  int page_shift_;
  uint64_t page_mask_;
  bool randomize_pages_;
  uint64_t last_vpage_ = UINT64_MAX;
  uint64_t last_frame_base_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_MEM_HIERARCHY_H_
