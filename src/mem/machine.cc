#include "mem/machine.h"

#include "util/bits.h"

namespace ccdb {

Status MachineProfile::Validate() const {
  auto check_cache = [](const CacheGeometry& g, const char* which) -> Status {
    if (g.capacity_bytes == 0 || g.line_bytes == 0)
      return Status::InvalidArgument(std::string(which) + ": zero size");
    if (!IsPowerOfTwo(g.line_bytes))
      return Status::InvalidArgument(std::string(which) +
                                     ": line size must be a power of two");
    if (g.capacity_bytes % g.line_bytes != 0)
      return Status::InvalidArgument(std::string(which) +
                                     ": capacity not a multiple of line size");
    size_t ways = g.associativity == 0 ? g.lines() : g.associativity;
    if (ways == 0 || g.lines() % ways != 0)
      return Status::InvalidArgument(std::string(which) +
                                     ": lines not divisible by associativity");
    if (!IsPowerOfTwo(g.sets()))
      return Status::InvalidArgument(std::string(which) +
                                     ": set count must be a power of two");
    return Status::Ok();
  };
  CCDB_RETURN_IF_ERROR(check_cache(l1, "L1"));
  CCDB_RETURN_IF_ERROR(check_cache(l2, "L2"));
  if (tlb.entries == 0 || tlb.page_bytes == 0)
    return Status::InvalidArgument("TLB: zero size");
  if (!IsPowerOfTwo(tlb.page_bytes))
    return Status::InvalidArgument("TLB: page size must be a power of two");
  if (tlb.associativity != 0) {
    if (tlb.entries % tlb.associativity != 0)
      return Status::InvalidArgument("TLB: entries not divisible by ways");
    if (!IsPowerOfTwo(tlb.entries / tlb.associativity))
      return Status::InvalidArgument("TLB: set count must be a power of two");
  }
  if (clock_mhz <= 0) return Status::InvalidArgument("clock_mhz must be > 0");
  return Status::Ok();
}

MachineProfile MachineProfile::Origin2000() {
  MachineProfile m;
  m.name = "origin2000";
  m.clock_mhz = 250;
  m.l1 = {/*capacity_bytes=*/32 * 1024, /*line_bytes=*/32,
          /*associativity=*/2};
  m.l2 = {/*capacity_bytes=*/4 * 1024 * 1024, /*line_bytes=*/128,
          /*associativity=*/2};
  m.tlb = {/*entries=*/64, /*page_bytes=*/16 * 1024, /*associativity=*/0};
  m.lat = {/*l2_ns=*/24, /*mem_ns=*/412, /*tlb_ns=*/228};
  m.cost = {/*wc_ns=*/50, /*wr_ns=*/24, /*wrp_ns=*/240, /*wh_ns=*/680,
            /*whp_ns=*/3600, /*wscan_ns=*/16};
  return m;
}

MachineProfile MachineProfile::GenericX86() {
  MachineProfile m;
  m.name = "generic-x86";
  m.clock_mhz = 3000;
  m.l1 = {32 * 1024, 64, 8};
  m.l2 = {1024 * 1024, 64, 16};
  m.tlb = {64, 4 * 1024, 0};
  m.lat = {/*l2_ns=*/4, /*mem_ns=*/80, /*tlb_ns=*/30};
  // CPU-work constants scale roughly with clock speed relative to the
  // R10000; these defaults are refined by the Calibrator at runtime.
  m.cost = {/*wc_ns=*/4, /*wr_ns=*/2, /*wrp_ns=*/20, /*wh_ns=*/56,
            /*whp_ns=*/300, /*wscan_ns=*/1.2};
  return m;
}

MachineProfile MachineProfile::SunLX() {
  MachineProfile m;
  m.name = "sunLX";
  m.clock_mhz = 50;
  // The LX has a single unified 64 KB external cache with 16 B lines; we
  // model it as an L2 with a pass-through 1-line "L1" so the two-level scan
  // model applies (ML1 == ML2 for every stride).
  m.l1 = {16, 16, 0};
  m.l2 = {64 * 1024, 16, 1};
  m.tlb = {64, 4 * 1024, 0};
  m.lat = {/*l2_ns=*/0, /*mem_ns=*/220, /*tlb_ns=*/300};
  m.cost = {250, 120, 1200, 3400, 18000, 100};
  return m;
}

MachineProfile MachineProfile::UltraSparc1() {
  MachineProfile m;
  m.name = "ultra";
  m.clock_mhz = 143;
  m.l1 = {16 * 1024, 16, 1};
  m.l2 = {512 * 1024, 64, 1};
  m.tlb = {64, 8 * 1024, 0};
  m.lat = {/*l2_ns=*/42, /*mem_ns=*/266, /*tlb_ns=*/280};
  m.cost = {90, 42, 420, 1200, 6400, 35};
  return m;
}

MachineProfile MachineProfile::Sun450() {
  MachineProfile m;
  m.name = "sun450";
  m.clock_mhz = 296;
  m.l1 = {16 * 1024, 16, 1};
  m.l2 = {1024 * 1024, 64, 1};
  m.tlb = {64, 8 * 1024, 0};
  m.lat = {/*l2_ns=*/34, /*mem_ns=*/250, /*tlb_ns=*/240};
  m.cost = {42, 20, 200, 570, 3000, 14};
  return m;
}

}  // namespace ccdb
