#include "mem/arena.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <new>
#include <string>
#include <unordered_map>

#include "util/logging.h"
#include "util/thread_annotations.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace ccdb {
namespace arena {
namespace {

// ---------------------------------------------------------------------------
// Global state. Counters are atomics (hot path increments, no lock); the
// block registry is the only locked structure and is touched once per *large*
// allocation — never per element, never per small allocation.
// ---------------------------------------------------------------------------

std::atomic<uint64_t> g_large_allocs{0};
std::atomic<uint64_t> g_large_bytes{0};
std::atomic<uint64_t> g_large_mapped_bytes{0};
std::atomic<uint64_t> g_huge_advised_bytes{0};
std::atomic<uint64_t> g_fallback_allocs{0};
std::atomic<uint64_t> g_small_allocs{0};
std::atomic<uint64_t> g_small_bytes{0};

std::atomic<size_t> g_large_threshold{kDefaultLargeThresholdBytes};
std::atomic<HugePolicy> g_default_policy{HugePolicy::kRequest};

enum class BlockKind : uint8_t {
  kMapped,    // mmap region of mapped_len bytes; free via munmap
  kHeapFall,  // heap fallback; free via aligned operator delete
};

struct BlockInfo {
  size_t mapped_len = 0;
  size_t head_offset = 0;  // user pointer minus mapping base (coloring)
  BlockKind kind = BlockKind::kMapped;
};

// Cache-index coloring: buffers whose starts are all congruent modulo the
// cache's set span alias onto the same sets and conflict-miss in lockstep
// walks (the classic penalty of power-of-two-aligned allocators, made worse
// by huge pages, where the low 21 virtual bits ARE the physical bits).
// Staggering consecutive buffer starts by one cache line each decorrelates
// them while preserving line alignment.
std::atomic<uint32_t> g_color{0};
constexpr size_t kColorSlots = 32;
constexpr size_t kColorMinBytes = size_t{16} << 10;

size_t NextColorBytes(size_t bytes) {
  if (bytes < kColorMinBytes) return 0;
  return (g_color.fetch_add(1, std::memory_order_relaxed) % kColorSlots) *
         kCacheLineBytes;
}

// Live large blocks. Deallocate() consults this to route frees, which makes
// a threshold change between allocate and free safe (the block remembers
// which path owns it).
struct Registry {
  Mutex mu;
  std::unordered_map<const void*, BlockInfo> blocks CCDB_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static vectors
  return *r;
}

size_t RoundUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

// lint: allow(raw-buffer: mem/arena IS the owning allocation layer — every
// mmap/munmap below is paired through the registry, and ownership never
// escapes except through ArenaAllocator/FreeBlock)

#if defined(__linux__)
// Maps `len` bytes at a HugePageBytes()-aligned address (over-map + trim),
// so the region is *eligible* for THP backing. Returns nullptr on failure.
void* MapAligned(size_t len, size_t align) {
  size_t over = len + align;
  void* raw = ::mmap(nullptr, over, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) return nullptr;
  uintptr_t base = reinterpret_cast<uintptr_t>(raw);
  uintptr_t aligned = RoundUp(base, align);
  size_t head = aligned - base;
  size_t tail = over - head - len;
  if (head != 0) CCDB_CHECK(::munmap(raw, head) == 0);
  if (tail != 0) {
    CCDB_CHECK(::munmap(reinterpret_cast<void*>(aligned + len), tail) == 0);
  }
  return reinterpret_cast<void*>(aligned);
}

// Reads one size_t value ("AnonHugePages:  N kB" style) for the smaps
// region(s) overlapping [p, p+len). Returns bytes.
size_t SmapsAnonHugeBytes(uintptr_t lo, uintptr_t hi) {
  std::FILE* f = std::fopen("/proc/self/smaps", "re");
  if (f == nullptr) return 0;
  char line[512];
  bool in_region = false;
  size_t total_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    uintptr_t start = 0;
    uintptr_t end = 0;
    if (std::sscanf(line, "%lx-%lx ", &start, &end) == 2) {
      in_region = start < hi && end > lo;
      continue;
    }
    if (!in_region) continue;
    unsigned long kb = 0;
    if (std::sscanf(line, "AnonHugePages: %lu kB", &kb) == 1) total_kb += kb;
  }
  std::fclose(f);
  return total_kb * 1024;
}
#endif  // __linux__

void* HeapFallback(size_t bytes) {
  void* p = ::operator new(RoundUp(bytes, kCacheLineBytes),
                           std::align_val_t{kCacheLineBytes});
  std::memset(p, 0, RoundUp(bytes, kCacheLineBytes));
  return p;
}

// Single release path for registry-owned blocks (FreeBlock and Deallocate).
// `p` is the *user* pointer; cache-index coloring shifted it head_offset
// bytes past the mapping base, so munmap must subtract that back — unmapping
// at `p` would both fail EINVAL on non-page-aligned colors and reach past the
// mapping end. The CHECK makes any such alignment bug abort loudly instead of
// silently leaking the mapping.
void ReleaseBlock(void* p, const BlockInfo& info) {
  if (info.kind == BlockKind::kHeapFall) {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
    return;
  }
#if defined(__linux__)
  CCDB_CHECK(::munmap(static_cast<char*>(p) - info.head_offset,
                      info.mapped_len) == 0);
#else
  (void)p;
  (void)info;
#endif
}

}  // namespace

ArenaStats Stats() {
  ArenaStats s;
  s.large_allocs = g_large_allocs.load(std::memory_order_relaxed);
  s.large_bytes = g_large_bytes.load(std::memory_order_relaxed);
  s.large_mapped_bytes = g_large_mapped_bytes.load(std::memory_order_relaxed);
  s.huge_advised_bytes = g_huge_advised_bytes.load(std::memory_order_relaxed);
  s.fallback_allocs = g_fallback_allocs.load(std::memory_order_relaxed);
  s.small_allocs = g_small_allocs.load(std::memory_order_relaxed);
  s.small_bytes = g_small_bytes.load(std::memory_order_relaxed);
  return s;
}

void ResetStats() {
  g_large_allocs = 0;
  g_large_bytes = 0;
  g_large_mapped_bytes = 0;
  g_huge_advised_bytes = 0;
  g_fallback_allocs = 0;
  g_small_allocs = 0;
  g_small_bytes = 0;
}

bool ThpAvailable() {
#if defined(__linux__)
  static const bool kAvailable = [] {
    std::FILE* f =
        std::fopen("/sys/kernel/mm/transparent_hugepage/enabled", "re");
    if (f == nullptr) return false;
    char buf[256] = {0};
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    // The bracketed token is the active mode; madvise-based THP works under
    // both "[always]" and "[madvise]".
    return std::strstr(buf, "[always]") != nullptr ||
           std::strstr(buf, "[madvise]") != nullptr;
  }();
  return kAvailable;
#else
  return false;
#endif
}

size_t HugePageBytes() {
#if defined(__linux__)
  static const size_t kBytes = [] {
    std::FILE* f = std::fopen("/proc/meminfo", "re");
    if (f == nullptr) return size_t{2} << 20;
    char line[256];
    unsigned long kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "Hugepagesize: %lu kB", &kb) == 1) break;
    }
    std::fclose(f);
    return kb != 0 ? size_t{kb} * 1024 : size_t{2} << 20;
  }();
  return kBytes;
#else
  return size_t{2} << 20;
#endif
}

size_t BasePageBytes() {
#if defined(__linux__)
  static const size_t kBytes = [] {
    long v = ::sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<size_t>(v) : size_t{4096};
  }();
  return kBytes;
#else
  return 4096;
#endif
}

size_t HugeBackedBytes(const void* p) {
#if defined(__linux__)
  // Hold the registry lock across the smaps read: if the block were freed
  // concurrently, the address range could be remapped and we would attribute
  // some other mapping's AnonHugePages to `p`. This serialises large
  // alloc/free against a /proc read, which is fine — this is a stats/test
  // path, never the execution hot path.
  Registry& r = registry();
  MutexLock lock(&r.mu);
  auto it = r.blocks.find(p);
  if (it == r.blocks.end() || it->second.kind != BlockKind::kMapped) {
    return 0;
  }
  uintptr_t lo = reinterpret_cast<uintptr_t>(p) - it->second.head_offset;
  return SmapsAnonHugeBytes(lo, lo + it->second.mapped_len);
#else
  (void)p;
  return 0;
#endif
}

HugePolicy SetDefaultHugePolicy(HugePolicy policy) {
  return g_default_policy.exchange(policy);
}
HugePolicy DefaultHugePolicy() { return g_default_policy.load(); }

size_t SetLargeThresholdBytes(size_t bytes) {
  return g_large_threshold.exchange(bytes);
}
size_t LargeThresholdBytes() { return g_large_threshold.load(); }

void* AllocateBlock(size_t bytes, HugePolicy policy) {
  CCDB_CHECK(bytes > 0);
  g_large_allocs.fetch_add(1, std::memory_order_relaxed);
  g_large_bytes.fetch_add(bytes, std::memory_order_relaxed);
#if defined(__linux__)
  size_t align = HugePageBytes();
  size_t color = NextColorBytes(bytes);
  size_t len = RoundUp(bytes + color, align);
  void* base = MapAligned(len, align);
  if (base != nullptr) {
    if (policy == HugePolicy::kRequest && ThpAvailable()) {
      if (::madvise(base, len, MADV_HUGEPAGE) == 0) {
        g_huge_advised_bytes.fetch_add(len, std::memory_order_relaxed);
      }
    } else {
      // Keep this block on base pages even under THP=always — the TLB
      // calibrator and the bench's base-page arm depend on it.
      (void)::madvise(base, len, MADV_NOHUGEPAGE);
    }
    g_large_mapped_bytes.fetch_add(len, std::memory_order_relaxed);
    void* p = static_cast<char*>(base) + color;
    Registry& r = registry();
    MutexLock lock(&r.mu);
    r.blocks.emplace(p, BlockInfo{len, color, BlockKind::kMapped});
    return p;
  }
#else
  (void)policy;
#endif
  g_fallback_allocs.fetch_add(1, std::memory_order_relaxed);
  void* fp = HeapFallback(bytes);
  Registry& r = registry();
  MutexLock lock(&r.mu);
  r.blocks.emplace(fp, BlockInfo{bytes, 0, BlockKind::kHeapFall});
  return fp;
}

void FreeBlock(void* p) {
  if (p == nullptr) return;
  BlockInfo info;
  {
    Registry& r = registry();
    MutexLock lock(&r.mu);
    auto it = r.blocks.find(p);
    CCDB_CHECK(it != r.blocks.end() && "FreeBlock of unknown pointer");
    info = it->second;
    r.blocks.erase(it);
  }
  ReleaseBlock(p, info);
}

bool IsLargeBlock(const void* p) {
  Registry& r = registry();
  MutexLock lock(&r.mu);
  return r.blocks.find(p) != r.blocks.end();
}

void* Allocate(size_t bytes) {
  if (bytes >= g_large_threshold.load(std::memory_order_relaxed)) {
    return AllocateBlock(bytes, g_default_policy.load());
  }
  g_small_allocs.fetch_add(1, std::memory_order_relaxed);
  g_small_bytes.fetch_add(bytes, std::memory_order_relaxed);
  // One leading cache line carries the base pointer (so Deallocate can undo
  // the coloring offset); the returned start is cache-line aligned, so
  // adjacent small buffers written by different threads (per-task partition
  // outputs) never share a line.
  size_t color = NextColorBytes(bytes);
  char* raw = static_cast<char*>(::operator new(
      bytes + kCacheLineBytes + color, std::align_val_t{kCacheLineBytes}));
  char* p = raw + kCacheLineBytes + color;
  reinterpret_cast<void**>(p)[-1] = raw;
  return p;
}

void Deallocate(void* p, size_t bytes) {
  if (p == nullptr) return;
  // Route by ownership, not by the current threshold: the threshold is a
  // test/bench knob and may have changed since this block was allocated.
  {
    Registry& r = registry();
    MutexLock lock(&r.mu);
    auto it = r.blocks.find(p);
    if (it != r.blocks.end()) {
      BlockInfo info = it->second;
      r.blocks.erase(it);
      ReleaseBlock(p, info);
      return;
    }
  }
  (void)bytes;
  void* raw = reinterpret_cast<void**>(p)[-1];
  ::operator delete(raw, std::align_val_t{kCacheLineBytes});
}

}  // namespace arena
}  // namespace ccdb
