// Software model of one set-associative cache level with LRU replacement.
// This substitutes for the paper's MIPS R10000 hardware event counters
// (§3.4.1): the counters only report line-granularity miss counts, which the
// model computes exactly for the same access stream.
#ifndef CCDB_MEM_CACHE_SIM_H_
#define CCDB_MEM_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "mem/machine.h"
#include "util/bits.h"
#include "util/logging.h"

namespace ccdb {

/// One cache level. Physically indexed by address; tag = line address.
/// Replacement is true LRU within a set (the R10000 L1/L2 are 2-way LRU).
class CacheSim {
 public:
  explicit CacheSim(const CacheGeometry& geometry);

  /// Touches the line containing byte address `addr`. Returns true on hit.
  /// Loads the line on miss (allocate-on-write, like the R10000's
  /// write-allocate caches — so reads and writes count misses identically).
  bool Access(uint64_t addr) {
    uint64_t line = addr >> line_shift_;
    uint64_t set = line & set_mask_;
    Way* ways = &ways_[set * assoc_];
    ++accesses_;
    for (size_t w = 0; w < assoc_; ++w) {
      if (ways[w].valid && ways[w].tag == line) {
        ways[w].stamp = ++tick_;
        return true;
      }
    }
    ++misses_;
    // Evict LRU (or fill an invalid way).
    size_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (size_t w = 0; w < assoc_; ++w) {
      if (!ways[w].valid) {
        victim = w;
        break;
      }
      if (ways[w].stamp < oldest) {
        oldest = ways[w].stamp;
        victim = w;
      }
    }
    ways[victim] = {line, ++tick_, true};
    return false;
  }

  /// True iff the line holding `addr` is currently resident (no side effects).
  bool Contains(uint64_t addr) const;

  /// Invalidates all lines and zeroes counters? No: counters are kept;
  /// use ResetCounters() for those.
  void Flush();

  void ResetCounters() {
    accesses_ = 0;
    misses_ = 0;
  }

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }
  uint64_t hits() const { return accesses_ - misses_; }
  const CacheGeometry& geometry() const { return geometry_; }
  int line_shift() const { return line_shift_; }

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t stamp = 0;
    bool valid = false;
  };

  CacheGeometry geometry_;
  int line_shift_;
  uint64_t set_mask_;
  size_t assoc_;
  std::vector<Way> ways_;
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_MEM_CACHE_SIM_H_
