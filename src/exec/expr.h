// Typed, composable filter expressions — the predicate surface of the
// query API. An Expr is a tree of leaf comparisons (column vs typed
// literal: Eq/Ne/Lt/Le/Gt/Ge, Between, InU32/InStr) combined with
// And/Or/Not, built via fluent helpers:
//
//   Filter(Col("qty") >= 2u && (Col("shipmode") == "MAIL" ||
//                               !Between(Col("price"), 10.0, 20.0)))
//
// Expressions validate against the plan schema at Build() time and lower
// to fused candidate-list passes (exec/operator.cc): conjunctions narrow
// one surviving position list predicate by predicate, disjunctions union
// the sorted position lists of their branches — no intermediate BAT is
// ever materialized, which is the paper's §3.1 memory-access discipline.
//
// Semantics notes:
//  * NormalizeExpr() rewrites to negation normal form: Not distributes
//    over And/Or (De Morgan) and lands in the leaves, flipping comparison
//    operators (Eq<->Ne, Lt<->Ge, Le<->Gt) or toggling the leaf's
//    `negated` flag (Between, In).
//  * f64 comparisons follow IEEE: NaN fails every ordering comparison and
//    every [lo, hi] range — including "not in [lo, hi]", which evaluates
//    as v < lo || v > hi — while `!=` is true for NaN.
#ifndef CCDB_EXEC_EXPR_H_
#define CCDB_EXEC_EXPR_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace ccdb {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Rendering name: "=", "!=", "<", "<=", ">", ">=".
const char* CmpOpName(CmpOp op);

/// The complement operator: Eq<->Ne, Lt<->Ge, Le<->Gt. NormalizeExpr uses
/// this to push a Not into a comparison leaf.
CmpOp ComplementCmpOp(CmpOp op);

/// A typed scalar literal. Which member is valid follows `type`.
struct Literal {
  enum class Type { kU32, kI64, kF64, kStr };
  Type type = Type::kU32;
  uint32_t u32 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  std::string str;

  static Literal U32(uint32_t v) {
    Literal l;
    l.type = Type::kU32;
    l.u32 = v;
    return l;
  }
  /// Wide integer literal — the only way to compare an i64 aggregate output
  /// (sum/count) against a constant above 2^32: Having(Col("sum") >
  /// 5'000'000'000LL). Valid on u32 columns too (evaluated widened).
  static Literal I64(int64_t v) {
    Literal l;
    l.type = Type::kI64;
    l.i64 = v;
    return l;
  }
  static Literal F64(double v) {
    Literal l;
    l.type = Type::kF64;
    l.f64 = v;
    return l;
  }
  static Literal Str(std::string v) {
    Literal l;
    l.type = Type::kStr;
    l.str = std::move(v);
    return l;
  }

  std::string ToString() const;
};

/// One node of a filter expression tree. Value-semantic (copyable), so
/// expressions compose and reuse like the scalars they describe.
struct Expr {
  enum class Kind {
    kCmp,      // column <op> literal
    kBetween,  // column in [lo, hi] (inclusive; negated = outside)
    kIn,       // column in {v1, v2, ...} (negated = not in)
    kAnd,      // all children hold (>= 1 child; 0 children is invalid)
    kOr,       // any child holds
    kNot,      // exactly one child; removed by NormalizeExpr
  };

  Kind kind = Kind::kAnd;  // default-constructed Expr is invalid (empty And)

  // Leaf payload (kCmp / kBetween / kIn).
  std::string column;
  bool negated = false;  // kBetween / kIn: match the complement set
  CmpOp cmp = CmpOp::kEq;
  Literal value;                     // kCmp
  Literal lo, hi;                    // kBetween (same literal type)
  std::vector<uint32_t> in_u32;      // kIn: exactly one of in_u32 /
  std::vector<std::string> in_str;   //      in_str is populated

  std::vector<Expr> children;  // kAnd / kOr / kNot

  bool leaf() const {
    return kind == Kind::kCmp || kind == Kind::kBetween || kind == Kind::kIn;
  }

  /// Renders the expression, AND binding tighter than OR:
  /// `qty in [2, 4] AND (shipmode = "MAIL" OR supp != 7)`.
  std::string ToString() const;
};

// --- fluent construction -----------------------------------------------------

/// Column reference for the fluent helpers: Col("qty") >= 2u.
struct Col {
  std::string name;
  explicit Col(std::string n) : name(std::move(n)) {}
};

namespace expr_internal {

inline Expr MakeCmp(Col c, CmpOp op, Literal v) {
  Expr e;
  e.kind = Expr::Kind::kCmp;
  e.column = std::move(c.name);
  e.cmp = op;
  e.value = std::move(v);
  return e;
}

inline uint32_t NonNegative(int v) {
  CCDB_CHECK(v >= 0);  // negative literals are inexpressible on u32 columns
  return static_cast<uint32_t>(v);
}

/// Any integral type that is not one of the exact-match overloads below —
/// int64_t/long/uint64_t/size_t variables and the like, which would
/// otherwise be ambiguous among the uint32_t / int / long long / double
/// candidates.
template <typename T>
inline constexpr bool kOtherIntegral =
    std::is_integral_v<T> && !std::is_same_v<T, bool> &&
    !std::is_same_v<T, uint32_t> && !std::is_same_v<T, int> &&
    !std::is_same_v<T, long long>;

/// Maps any integral to the literal domain: values inside [0, UINT32_MAX]
/// become u32 literals (eligible for the ranged select kernels — a
/// `Col("v") < int64_t{100}` must run exactly like `Col("v") < 100`),
/// anything wider an i64 literal (compared widened). Unsigned values past
/// INT64_MAX saturate to INT64_MAX — exact for every comparison unless the
/// column actually holds INT64_MAX (aggregates reject sums beyond it
/// anyway).
template <typename T>
inline Literal IntegralLiteral(T v) {
  if constexpr (std::is_unsigned_v<T>) {
    if (static_cast<uint64_t>(v) > static_cast<uint64_t>(INT64_MAX)) {
      return Literal::I64(INT64_MAX);
    }
  }
  int64_t w = static_cast<int64_t>(v);
  if (w >= 0 && w <= static_cast<int64_t>(UINT32_MAX)) {
    return Literal::U32(static_cast<uint32_t>(w));
  }
  return Literal::I64(w);
}

}  // namespace expr_internal

// Col <op> literal for u32, int (convenience; must be non-negative), i64
// (long long — constants above 2^32, e.g. for Having on an i64 sum), f64
// and string literals. String columns support = and != only (enforced at
// Build() time).
#define CCDB_EXPR_DEFINE_CMP(op, cmpop)                                       \
  inline Expr operator op(Col c, uint32_t v) {                                \
    return expr_internal::MakeCmp(std::move(c), cmpop, Literal::U32(v));      \
  }                                                                           \
  inline Expr operator op(Col c, int v) {                                     \
    return expr_internal::MakeCmp(std::move(c), cmpop,                        \
                                  Literal::U32(expr_internal::NonNegative(v))); \
  }                                                                           \
  inline Expr operator op(Col c, long long v) {                               \
    return expr_internal::MakeCmp(std::move(c), cmpop,                        \
                                  expr_internal::IntegralLiteral(v));         \
  }                                                                           \
  template <typename T,                                                       \
            typename = std::enable_if_t<expr_internal::kOtherIntegral<T>>>    \
  inline Expr operator op(Col c, T v) {                                       \
    return expr_internal::MakeCmp(std::move(c), cmpop,                        \
                                  expr_internal::IntegralLiteral(v));         \
  }                                                                           \
  inline Expr operator op(Col c, double v) {                                  \
    return expr_internal::MakeCmp(std::move(c), cmpop, Literal::F64(v));      \
  }                                                                           \
  inline Expr operator op(Col c, std::string v) {                             \
    return expr_internal::MakeCmp(std::move(c), cmpop,                        \
                                  Literal::Str(std::move(v)));                \
  }                                                                           \
  inline Expr operator op(Col c, const char* v) {                             \
    return expr_internal::MakeCmp(std::move(c), cmpop, Literal::Str(v));      \
  }

CCDB_EXPR_DEFINE_CMP(==, CmpOp::kEq)
CCDB_EXPR_DEFINE_CMP(!=, CmpOp::kNe)
CCDB_EXPR_DEFINE_CMP(<, CmpOp::kLt)
CCDB_EXPR_DEFINE_CMP(<=, CmpOp::kLe)
CCDB_EXPR_DEFINE_CMP(>, CmpOp::kGt)
CCDB_EXPR_DEFINE_CMP(>=, CmpOp::kGe)

#undef CCDB_EXPR_DEFINE_CMP

/// column in [lo, hi], inclusive on both ends. Build() rejects lo > hi.
Expr Between(Col c, uint32_t lo, uint32_t hi);
inline Expr Between(Col c, int lo, int hi) {
  return Between(std::move(c), expr_internal::NonNegative(lo),
                 expr_internal::NonNegative(hi));
}
Expr Between(Col c, long long lo, long long hi);
Expr Between(Col c, double lo, double hi);

/// Any other integral bound combination (int64_t variables, mixed
/// int/long long, size_t, ...): bounds within the u32 domain build the
/// kernel-eligible u32 range, anything wider the i64 range.
template <typename A, typename B,
          typename = std::enable_if_t<
              std::is_integral_v<A> && std::is_integral_v<B> &&
              !std::is_same_v<A, bool> && !std::is_same_v<B, bool>>>
inline Expr Between(Col c, A lo, B hi) {
  int64_t l = expr_internal::IntegralLiteral(lo).i64;
  int64_t h = expr_internal::IntegralLiteral(hi).i64;
  if (l >= 0 && h >= 0 && l <= int64_t{UINT32_MAX} &&
      h <= int64_t{UINT32_MAX}) {
    return Between(std::move(c), static_cast<uint32_t>(l),
                   static_cast<uint32_t>(h));
  }
  return Between(std::move(c), static_cast<long long>(l),
                 static_cast<long long>(h));
}

/// column in {values}. Build() rejects an empty list.
Expr InU32(Col c, std::vector<uint32_t> values);
Expr InStr(Col c, std::vector<std::string> values);

/// Boolean composition. && and || flatten nested conjunctions /
/// disjunctions; ! collapses double negation at construction.
Expr operator&&(Expr a, Expr b);
Expr operator||(Expr a, Expr b);
Expr operator!(Expr e);

// --- normalization and lowering helpers --------------------------------------

/// Negation normal form: every Not is pushed into the leaves (flipping
/// comparison operators / toggling `negated`), nested And/And and Or/Or
/// are flattened, and In-lists are sorted and deduplicated. Execution
/// (exec/operator.cc) requires normalized expressions; SelectOp normalizes
/// on construction, so callers only need this for inspection. Idempotent.
Expr NormalizeExpr(Expr e);

/// Estimated-selectivity rank used to order the conjuncts of an And before
/// lowering: cheaper, more selective shapes run first so later conjuncts
/// narrow a shorter candidate list. 0 = numeric equality, 1 = numeric
/// range (Between / ordering comparisons / In), 2 = string equality,
/// 3 = composite (a nested Or). Ties keep their written order.
int ConjunctRank(const Expr& e);

/// Rank name for EXPLAIN output: "eq", "range", "str-eq", "composite".
const char* ConjunctRankName(int rank);

/// Stable-sorts every And's children by ConjunctRank, recursively. The
/// match set is order-independent (conjuncts intersect), so this changes
/// evaluation cost, never results.
Expr OrderConjunctsBySelectivity(Expr e);

/// Does `a` imply `b` — is every row satisfying `a` guaranteed to satisfy
/// `b`? Conservative: a `true` answer is a proof, a `false` answer means
/// "could not prove it" (never "disproved"). Callers use this to share
/// work between filters: when ExprSubsumes(a, b), the rows matching `a`
/// can be computed by *narrowing* `b`'s position list with `a` instead of
/// re-scanning the column, with byte-identical results.
///
/// Both arguments must be normalized (NormalizeExpr output): any kNot node
/// returns false. Leaves are compared per column as value sets — integral
/// comparisons/Between/In become i64 interval lists (exact containment),
/// f64 leaves become open/closed interval lists with NaN tracked
/// separately (NaN fails every ordering and range, matches only !=), and
/// string leaves become positive or negated sorted sets. And/Or recurse
/// structurally, plus a per-column leaf-intersection refinement so e.g.
/// `x > 5 && x < 10` provably implies `Between(x, 6, 9)`. Columns are
/// matched by name; cross-type (numeric vs string) never subsumes.
bool ExprSubsumes(const Expr& a, const Expr& b);

}  // namespace ccdb

#endif  // CCDB_EXEC_EXPR_H_
