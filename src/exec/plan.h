// Logical query plans and the fluent QueryBuilder — the MIL-flavoured
// composition layer of the paper's architecture (§3.1): a whole query is a
// tree of BAT-algebra operators (Scan, Select, Join, Project, GroupByAgg,
// OrderBy, Limit) that the Planner (model/planner.h) lowers to physical
// operators per node, consulting the memory-access cost model for every
// join instead of only at call sites.
//
//   auto plan = QueryBuilder(items)
//                   .Filter(Col("shipmode") == "MAIL" &&
//                           (Between(Col("qty"), 2u, 4u) ||
//                            !(Col("supp") == 7u)))
//                   .Join(orders, "order", "order_id", JoinType::kLeftOuter)
//                   .GroupByAgg({"supp", "prio"},
//                               {Agg::Sum("qty"), Agg::Min("qty"),
//                                Agg::Avg("qty")})
//                   .Having(Col("sum") >= 100u)
//                   .OrderBy("sum", /*descending=*/true)
//                   .Limit(5)
//                   .Build();
//
// Build() validates the whole tree against the table schemas (unknown or
// ambiguous columns, type mismatches, duplicate aggregate names) and
// computes the output schema; execution is Execute(plan) in
// model/planner.h.
#ifndef CCDB_EXEC_PLAN_H_
#define CCDB_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/table.h"
#include "model/strategy.h"
#include "util/status.h"

namespace ccdb {

/// A single-column predicate — the legacy filter surface, kept as a thin
/// compatibility wrapper that constructs the equivalent typed Expr
/// (exec/expr.h): RangeU32/RangeF64 become Between, EqStr becomes an
/// equality comparison (remapped onto encoded columns' 1-2 byte codes,
/// §3.1). New code should build Exprs with Filter(Col("qty") >= 2u && ...).
struct Predicate {
  enum class Kind { kRangeU32, kRangeF64, kEqStr };

  std::string column;
  Kind kind = Kind::kRangeU32;
  uint32_t lo_u32 = 0, hi_u32 = 0;
  double lo_f64 = 0, hi_f64 = 0;
  std::string str_value;

  static Predicate RangeU32(std::string col, uint32_t lo, uint32_t hi) {
    Predicate p;
    p.column = std::move(col);
    p.kind = Kind::kRangeU32;
    p.lo_u32 = lo;
    p.hi_u32 = hi;
    return p;
  }
  static Predicate RangeF64(std::string col, double lo, double hi) {
    Predicate p;
    p.column = std::move(col);
    p.kind = Kind::kRangeF64;
    p.lo_f64 = lo;
    p.hi_f64 = hi;
    return p;
  }
  static Predicate EqStr(std::string col, std::string value) {
    Predicate p;
    p.column = std::move(col);
    p.kind = Kind::kEqStr;
    p.str_value = std::move(value);
    return p;
  }

  /// The equivalent expression-tree leaf.
  Expr ToExpr() const;
};

/// An aggregate function over one u32 value column (kCount takes none).
enum class AggFunc { kSum, kMin, kMax, kAvg, kCount };

const char* AggFuncName(AggFunc f);

/// One aggregate of a GroupByAgg node: the function, its input column, and
/// the output column name (defaults to the function name; use As() when a
/// node computes e.g. two sums). Output types: sum/count -> i64, min/max ->
/// u32, avg -> f64.
struct AggSpec {
  AggFunc func = AggFunc::kSum;
  std::string value_col;    // empty for kCount
  std::string output_name;  // result column name

  static AggSpec Sum(std::string col) {
    return {AggFunc::kSum, std::move(col), "sum"};
  }
  static AggSpec Min(std::string col) {
    return {AggFunc::kMin, std::move(col), "min"};
  }
  static AggSpec Max(std::string col) {
    return {AggFunc::kMax, std::move(col), "max"};
  }
  static AggSpec Avg(std::string col) {
    return {AggFunc::kAvg, std::move(col), "avg"};
  }
  static AggSpec Count() { return {AggFunc::kCount, "", "count"}; }

  /// Renames the output column: Agg::Sum("qty").As("total_qty").
  AggSpec As(std::string name) const {
    AggSpec s = *this;
    s.output_name = std::move(name);
    return s;
  }
};

/// Shorthand so call sites read like the algebra: Agg::Sum("qty").
using Agg = AggSpec;

/// Join flavour. Inner emits matching pairs; left-outer additionally emits
/// unmatched probe rows with null right-side values; semi/anti emit only
/// left columns, for probe rows with (semi) or without (anti) a match.
enum class JoinType { kInner, kLeftOuter, kSemi, kAnti };

const char* JoinTypeName(JoinType t);

enum class LogicalOp {
  kScan,
  kSelect,
  kJoin,
  kProject,
  kGroupByAgg,
  kHaving,
  kOrderBy,
  kLimit,
};

const char* LogicalOpName(LogicalOp op);

/// One node of the logical tree. Unary operators have one child; kJoin has
/// two (children[0] = outer/probe side, children[1] = inner/build side).
struct LogicalNode {
  LogicalOp op = LogicalOp::kScan;
  std::vector<std::unique_ptr<LogicalNode>> children;

  const Table* table = nullptr;     // kScan
  Expr filter;                      // kSelect / kHaving
  std::string left_key, right_key;  // kJoin
  JoinType join_type = JoinType::kInner;             // kJoin
  JoinStrategy join_strategy = JoinStrategy::kBest;  // kJoin hint
  std::vector<std::string> columns;                  // kProject
  std::vector<std::string> group_cols;               // kGroupByAgg
  std::vector<AggSpec> aggs;                         // kGroupByAgg
  std::string order_col;                             // kOrderBy
  bool descending = false;                           // kOrderBy
  size_t limit = 0, offset = 0;                      // kLimit
};

/// What the plan knows about one visible column between operators.
struct PlanColumn {
  std::string name;
  PhysType type = PhysType::kU32;  // logical value type (kU32/kI64/kF64/kStr)
  bool encoded = false;   // kStr stored as 1-2 byte codes + dictionary
  bool ambiguous = false; // same name on both sides of a join
  bool nullable = false;  // right side of a left-outer join; nulls surface
                          // as type defaults (0 / 0.0 / "") when gathered
};

/// Re-derives (and re-validates) the visible schema of a logical subtree —
/// what Build() computes for the root. The planner uses this to prove a
/// join-chain reorder keeps every join key resolvable and unambiguous
/// before committing to the new order.
StatusOr<std::vector<PlanColumn>> ComputeNodeSchema(const LogicalNode& n);

/// A validated logical plan: the node tree plus the output schema that
/// Build() derived for it.
class LogicalPlan {
 public:
  const LogicalNode& root() const { return *root_; }
  const std::vector<PlanColumn>& output_schema() const { return schema_; }

  /// The tables this plan scans, in tree order with duplicates kept (a
  /// self-join lists its table twice). Callers that need set semantics
  /// dedup themselves; callers that need per-scan facts (cardinality
  /// bands, shared-scan registration) want every occurrence.
  std::vector<const Table*> Tables() const;

  /// Indented tree rendering, one operator per line (EXPLAIN-style).
  std::string ToString() const;

 private:
  friend class QueryBuilder;
  LogicalPlan(std::unique_ptr<LogicalNode> root, std::vector<PlanColumn> schema)
      : root_(std::move(root)), schema_(std::move(schema)) {}

  std::unique_ptr<LogicalNode> root_;
  std::vector<PlanColumn> schema_;
};

/// Fluent builder over a base table. Methods append logical nodes without
/// validating; Build() validates the whole tree and reports the first error.
/// The builder is move-only (a Join(QueryBuilder) consumes the subplan).
class QueryBuilder {
 public:
  /// Starts a plan with Scan(table). The table must outlive execution.
  explicit QueryBuilder(const Table& table);

  QueryBuilder(QueryBuilder&&) = default;
  QueryBuilder& operator=(QueryBuilder&&) = default;

  /// Filters by a typed expression tree (exec/expr.h): arbitrary And/Or/Not
  /// over comparisons, Between and In-lists. Build() type-checks the
  /// expression against the input schema; execution lowers it to fused
  /// candidate-list passes (conjunctions narrow one surviving position
  /// list; disjunctions union sorted position lists) — no intermediate BAT.
  QueryBuilder& Filter(Expr expr);

  /// Legacy single-predicate select: wrapper over Filter(pred.ToExpr()).
  QueryBuilder& Select(Predicate pred);

  /// Conjunctive select: all predicates must hold (one logical node,
  /// evaluated in a single fused candidate pass — each predicate narrows
  /// the surviving candidate list without re-scanning the chunk). Wrapper
  /// over Filter(And(preds...)).
  QueryBuilder& Select(std::vector<Predicate> conjunction);

  /// Equi-join against `right` (u32 keys): this.left_key == right.right_key.
  /// `strategy` is a hint; the default lets the Planner pick per-node via
  /// the cost model. `right` becomes the inner (build) relation.
  QueryBuilder& Join(const Table& right, std::string left_key,
                     std::string right_key,
                     JoinStrategy strategy = JoinStrategy::kBest);

  /// Joins against a subplan (e.g. a pre-filtered table).
  QueryBuilder& Join(QueryBuilder right, std::string left_key,
                     std::string right_key,
                     JoinStrategy strategy = JoinStrategy::kBest);

  /// Typed join variants: left-outer keeps unmatched probe rows (right
  /// columns become nullable), semi/anti keep only left columns.
  QueryBuilder& Join(const Table& right, std::string left_key,
                     std::string right_key, JoinType type,
                     JoinStrategy strategy = JoinStrategy::kBest);
  QueryBuilder& Join(QueryBuilder right, std::string left_key,
                     std::string right_key, JoinType type,
                     JoinStrategy strategy = JoinStrategy::kBest);

  QueryBuilder& Project(std::vector<std::string> columns);

  /// Group by one or more columns (integral or encoded string), computing
  /// the given aggregates over u32 value columns. Output columns: the group
  /// columns (decoded), then one column per AggSpec in order.
  QueryBuilder& GroupByAgg(std::vector<std::string> group_cols,
                           std::vector<AggSpec> aggs);

  /// Group by `group_col` (integral or encoded string), summing u32
  /// `value_col`. Output columns: `group_col` (decoded), "sum", "count".
  /// Wrapper over GroupByAgg({group_col}, {Agg::Sum, Agg::Count}).
  QueryBuilder& GroupBySum(std::string group_col, std::string value_col);

  /// Filters aggregate output (the HAVING shorthand): must directly follow
  /// GroupByAgg/GroupBySum (or another Having). The expression is evaluated
  /// over the aggregate's owned output columns in place — typed against the
  /// aggregate schema (u32 literals compare against i64 sums/counts) and
  /// compacted with a single positional take, never re-gathering the owned
  /// columns per conjunct.
  QueryBuilder& Having(Expr expr);

  QueryBuilder& OrderBy(std::string column, bool descending = false);

  QueryBuilder& Limit(size_t n, size_t offset = 0);

  /// Validates the tree (column existence, ambiguity, types) and returns
  /// the plan. Consumes the builder; any later Build() or fluent call on it
  /// yields InvalidArgument instead of undefined behaviour.
  StatusOr<LogicalPlan> Build();

 private:
  std::unique_ptr<LogicalNode> root_;
};

}  // namespace ccdb

#endif  // CCDB_EXEC_PLAN_H_
