#include "exec/expr.h"

#include <algorithm>

namespace ccdb {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

CmpOp ComplementCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kGe: return CmpOp::kLt;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
  }
  return op;
}

std::string Literal::ToString() const {
  switch (type) {
    case Type::kU32: return std::to_string(u32);
    case Type::kI64: return std::to_string(i64);
    case Type::kF64: return std::to_string(f64);
    case Type::kStr: return "\"" + str + "\"";
  }
  return "?";
}

namespace {

/// Parenthesize `child` when rendered under `parent`? AND binds tighter
/// than OR; NOT children always get parens for clarity.
bool NeedsParens(const Expr& parent, const Expr& child) {
  if (child.leaf()) return false;
  if (parent.kind == Expr::Kind::kNot) return true;
  if (child.kind == Expr::Kind::kNot) return false;  // renders as NOT (...)
  return parent.kind != child.kind;  // Or under And, And under Or
}

void Render(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kCmp:
      out->append(e.column).append(" ").append(CmpOpName(e.cmp)).append(" ")
          .append(e.value.ToString());
      return;
    case Expr::Kind::kBetween:
      out->append(e.column).append(e.negated ? " not in [" : " in [")
          .append(e.lo.ToString()).append(", ").append(e.hi.ToString())
          .append("]");
      return;
    case Expr::Kind::kIn: {
      out->append(e.column).append(e.negated ? " not in {" : " in {");
      if (!e.in_u32.empty()) {
        for (size_t i = 0; i < e.in_u32.size(); ++i) {
          if (i) out->append(", ");
          out->append(std::to_string(e.in_u32[i]));
        }
      } else {
        for (size_t i = 0; i < e.in_str.size(); ++i) {
          if (i) out->append(", ");
          out->append("\"").append(e.in_str[i]).append("\"");
        }
      }
      out->append("}");
      return;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const char* sep = e.kind == Expr::Kind::kAnd ? " AND " : " OR ";
      if (e.children.empty()) {
        out->append(e.kind == Expr::Kind::kAnd ? "<empty AND>" : "<empty OR>");
        return;
      }
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out->append(sep);
        bool parens = NeedsParens(e, e.children[i]);
        if (parens) out->append("(");
        Render(e.children[i], out);
        if (parens) out->append(")");
      }
      return;
    }
    case Expr::Kind::kNot:
      out->append("NOT (");
      if (!e.children.empty()) Render(e.children[0], out);
      out->append(")");
      return;
  }
}

}  // namespace

std::string Expr::ToString() const {
  std::string out;
  Render(*this, &out);
  return out;
}

Expr Between(Col c, uint32_t lo, uint32_t hi) {
  Expr e;
  e.kind = Expr::Kind::kBetween;
  e.column = std::move(c.name);
  e.lo = Literal::U32(lo);
  e.hi = Literal::U32(hi);
  return e;
}

Expr Between(Col c, long long lo, long long hi) {
  // Bounds inside the u32 domain build the kernel-eligible u32 range —
  // Between(c, 0LL, 50LL) must execute exactly like Between(c, 0u, 50u).
  if (lo >= 0 && hi >= 0 && lo <= (long long)UINT32_MAX &&
      hi <= (long long)UINT32_MAX) {
    return Between(std::move(c), static_cast<uint32_t>(lo),
                   static_cast<uint32_t>(hi));
  }
  Expr e;
  e.kind = Expr::Kind::kBetween;
  e.column = std::move(c.name);
  e.lo = Literal::I64(static_cast<int64_t>(lo));
  e.hi = Literal::I64(static_cast<int64_t>(hi));
  return e;
}

Expr Between(Col c, double lo, double hi) {
  Expr e;
  e.kind = Expr::Kind::kBetween;
  e.column = std::move(c.name);
  e.lo = Literal::F64(lo);
  e.hi = Literal::F64(hi);
  return e;
}

Expr InU32(Col c, std::vector<uint32_t> values) {
  Expr e;
  e.kind = Expr::Kind::kIn;
  e.column = std::move(c.name);
  e.in_u32 = std::move(values);
  return e;
}

Expr InStr(Col c, std::vector<std::string> values) {
  Expr e;
  e.kind = Expr::Kind::kIn;
  e.column = std::move(c.name);
  e.in_str = std::move(values);
  return e;
}

namespace {

Expr Combine(Expr::Kind kind, Expr a, Expr b) {
  Expr e;
  e.kind = kind;
  // Flatten same-kind children so (a && b) && c reads a AND b AND c.
  if (a.kind == kind) {
    e.children = std::move(a.children);
  } else {
    e.children.push_back(std::move(a));
  }
  if (b.kind == kind) {
    for (Expr& c : b.children) e.children.push_back(std::move(c));
  } else {
    e.children.push_back(std::move(b));
  }
  return e;
}

}  // namespace

Expr operator&&(Expr a, Expr b) {
  return Combine(Expr::Kind::kAnd, std::move(a), std::move(b));
}

Expr operator||(Expr a, Expr b) {
  return Combine(Expr::Kind::kOr, std::move(a), std::move(b));
}

Expr operator!(Expr e) {
  if (e.kind == Expr::Kind::kNot && e.children.size() == 1) {
    return std::move(e.children[0]);  // double negation
  }
  Expr n;
  n.kind = Expr::Kind::kNot;
  n.children.push_back(std::move(e));
  return n;
}

namespace {

Expr Normalize(Expr e, bool negate) {
  switch (e.kind) {
    case Expr::Kind::kNot: {
      if (e.children.size() != 1) return e;  // invalid; Build() reports it
      return Normalize(std::move(e.children[0]), !negate);
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      Expr out;
      // De Morgan: a negated And becomes an Or of negated children.
      bool is_and = (e.kind == Expr::Kind::kAnd) != negate;
      out.kind = is_and ? Expr::Kind::kAnd : Expr::Kind::kOr;
      for (Expr& c : e.children) {
        Expr n = Normalize(std::move(c), negate);
        if (n.kind == out.kind) {
          for (Expr& gc : n.children) out.children.push_back(std::move(gc));
        } else {
          out.children.push_back(std::move(n));
        }
      }
      if (out.children.size() == 1) return std::move(out.children[0]);
      return out;
    }
    case Expr::Kind::kCmp:
      if (negate) e.cmp = ComplementCmpOp(e.cmp);
      return e;
    case Expr::Kind::kBetween:
      if (negate) e.negated = !e.negated;
      return e;
    case Expr::Kind::kIn:
      if (negate) e.negated = !e.negated;
      std::sort(e.in_u32.begin(), e.in_u32.end());
      e.in_u32.erase(std::unique(e.in_u32.begin(), e.in_u32.end()),
                     e.in_u32.end());
      std::sort(e.in_str.begin(), e.in_str.end());
      e.in_str.erase(std::unique(e.in_str.begin(), e.in_str.end()),
                     e.in_str.end());
      return e;
  }
  return e;
}

}  // namespace

Expr NormalizeExpr(Expr e) { return Normalize(std::move(e), false); }

int ConjunctRank(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kCmp:
      if (e.value.type == Literal::Type::kStr) return 2;
      return e.cmp == CmpOp::kEq ? 0 : 1;
    case Expr::Kind::kBetween:
      return 1;
    case Expr::Kind::kIn:
      return e.in_str.empty() ? 1 : 2;
    default:
      return 3;
  }
}

const char* ConjunctRankName(int rank) {
  switch (rank) {
    case 0: return "eq";
    case 1: return "range";
    case 2: return "str-eq";
    default: return "composite";
  }
}

Expr OrderConjunctsBySelectivity(Expr e) {
  for (Expr& c : e.children) c = OrderConjunctsBySelectivity(std::move(c));
  if (e.kind == Expr::Kind::kAnd) {
    std::stable_sort(e.children.begin(), e.children.end(),
                     [](const Expr& a, const Expr& b) {
                       return ConjunctRank(a) < ConjunctRank(b);
                     });
  }
  return e;
}

}  // namespace ccdb
