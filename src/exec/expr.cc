#include "exec/expr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

namespace ccdb {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

CmpOp ComplementCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kGe: return CmpOp::kLt;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
  }
  return op;
}

std::string Literal::ToString() const {
  switch (type) {
    case Type::kU32: return std::to_string(u32);
    case Type::kI64: return std::to_string(i64);
    case Type::kF64: return std::to_string(f64);
    case Type::kStr: return "\"" + str + "\"";
  }
  return "?";
}

namespace {

/// Parenthesize `child` when rendered under `parent`? AND binds tighter
/// than OR; NOT children always get parens for clarity.
bool NeedsParens(const Expr& parent, const Expr& child) {
  if (child.leaf()) return false;
  if (parent.kind == Expr::Kind::kNot) return true;
  if (child.kind == Expr::Kind::kNot) return false;  // renders as NOT (...)
  return parent.kind != child.kind;  // Or under And, And under Or
}

void Render(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kCmp:
      out->append(e.column).append(" ").append(CmpOpName(e.cmp)).append(" ")
          .append(e.value.ToString());
      return;
    case Expr::Kind::kBetween:
      out->append(e.column).append(e.negated ? " not in [" : " in [")
          .append(e.lo.ToString()).append(", ").append(e.hi.ToString())
          .append("]");
      return;
    case Expr::Kind::kIn: {
      out->append(e.column).append(e.negated ? " not in {" : " in {");
      if (!e.in_u32.empty()) {
        for (size_t i = 0; i < e.in_u32.size(); ++i) {
          if (i) out->append(", ");
          out->append(std::to_string(e.in_u32[i]));
        }
      } else {
        for (size_t i = 0; i < e.in_str.size(); ++i) {
          if (i) out->append(", ");
          out->append("\"").append(e.in_str[i]).append("\"");
        }
      }
      out->append("}");
      return;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const char* sep = e.kind == Expr::Kind::kAnd ? " AND " : " OR ";
      if (e.children.empty()) {
        out->append(e.kind == Expr::Kind::kAnd ? "<empty AND>" : "<empty OR>");
        return;
      }
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out->append(sep);
        bool parens = NeedsParens(e, e.children[i]);
        if (parens) out->append("(");
        Render(e.children[i], out);
        if (parens) out->append(")");
      }
      return;
    }
    case Expr::Kind::kNot:
      out->append("NOT (");
      if (!e.children.empty()) Render(e.children[0], out);
      out->append(")");
      return;
  }
}

}  // namespace

std::string Expr::ToString() const {
  std::string out;
  Render(*this, &out);
  return out;
}

Expr Between(Col c, uint32_t lo, uint32_t hi) {
  Expr e;
  e.kind = Expr::Kind::kBetween;
  e.column = std::move(c.name);
  e.lo = Literal::U32(lo);
  e.hi = Literal::U32(hi);
  return e;
}

Expr Between(Col c, long long lo, long long hi) {
  // Bounds inside the u32 domain build the kernel-eligible u32 range —
  // Between(c, 0LL, 50LL) must execute exactly like Between(c, 0u, 50u).
  if (lo >= 0 && hi >= 0 && lo <= (long long)UINT32_MAX &&
      hi <= (long long)UINT32_MAX) {
    return Between(std::move(c), static_cast<uint32_t>(lo),
                   static_cast<uint32_t>(hi));
  }
  Expr e;
  e.kind = Expr::Kind::kBetween;
  e.column = std::move(c.name);
  e.lo = Literal::I64(static_cast<int64_t>(lo));
  e.hi = Literal::I64(static_cast<int64_t>(hi));
  return e;
}

Expr Between(Col c, double lo, double hi) {
  Expr e;
  e.kind = Expr::Kind::kBetween;
  e.column = std::move(c.name);
  e.lo = Literal::F64(lo);
  e.hi = Literal::F64(hi);
  return e;
}

Expr InU32(Col c, std::vector<uint32_t> values) {
  Expr e;
  e.kind = Expr::Kind::kIn;
  e.column = std::move(c.name);
  e.in_u32 = std::move(values);
  return e;
}

Expr InStr(Col c, std::vector<std::string> values) {
  Expr e;
  e.kind = Expr::Kind::kIn;
  e.column = std::move(c.name);
  e.in_str = std::move(values);
  return e;
}

namespace {

Expr Combine(Expr::Kind kind, Expr a, Expr b) {
  Expr e;
  e.kind = kind;
  // Flatten same-kind children so (a && b) && c reads a AND b AND c.
  if (a.kind == kind) {
    e.children = std::move(a.children);
  } else {
    e.children.push_back(std::move(a));
  }
  if (b.kind == kind) {
    for (Expr& c : b.children) e.children.push_back(std::move(c));
  } else {
    e.children.push_back(std::move(b));
  }
  return e;
}

}  // namespace

Expr operator&&(Expr a, Expr b) {
  return Combine(Expr::Kind::kAnd, std::move(a), std::move(b));
}

Expr operator||(Expr a, Expr b) {
  return Combine(Expr::Kind::kOr, std::move(a), std::move(b));
}

Expr operator!(Expr e) {
  if (e.kind == Expr::Kind::kNot && e.children.size() == 1) {
    return std::move(e.children[0]);  // double negation
  }
  Expr n;
  n.kind = Expr::Kind::kNot;
  n.children.push_back(std::move(e));
  return n;
}

namespace {

Expr Normalize(Expr e, bool negate) {
  switch (e.kind) {
    case Expr::Kind::kNot: {
      if (e.children.size() != 1) return e;  // invalid; Build() reports it
      return Normalize(std::move(e.children[0]), !negate);
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      Expr out;
      // De Morgan: a negated And becomes an Or of negated children.
      bool is_and = (e.kind == Expr::Kind::kAnd) != negate;
      out.kind = is_and ? Expr::Kind::kAnd : Expr::Kind::kOr;
      for (Expr& c : e.children) {
        Expr n = Normalize(std::move(c), negate);
        if (n.kind == out.kind) {
          for (Expr& gc : n.children) out.children.push_back(std::move(gc));
        } else {
          out.children.push_back(std::move(n));
        }
      }
      if (out.children.size() == 1) return std::move(out.children[0]);
      return out;
    }
    case Expr::Kind::kCmp:
      if (negate) e.cmp = ComplementCmpOp(e.cmp);
      return e;
    case Expr::Kind::kBetween:
      if (negate) e.negated = !e.negated;
      return e;
    case Expr::Kind::kIn:
      if (negate) e.negated = !e.negated;
      std::sort(e.in_u32.begin(), e.in_u32.end());
      e.in_u32.erase(std::unique(e.in_u32.begin(), e.in_u32.end()),
                     e.in_u32.end());
      std::sort(e.in_str.begin(), e.in_str.end());
      e.in_str.erase(std::unique(e.in_str.begin(), e.in_str.end()),
                     e.in_str.end());
      return e;
  }
  return e;
}

}  // namespace

Expr NormalizeExpr(Expr e) { return Normalize(std::move(e), false); }

int ConjunctRank(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kCmp:
      if (e.value.type == Literal::Type::kStr) return 2;
      return e.cmp == CmpOp::kEq ? 0 : 1;
    case Expr::Kind::kBetween:
      return 1;
    case Expr::Kind::kIn:
      return e.in_str.empty() ? 1 : 2;
    default:
      return 3;
  }
}

const char* ConjunctRankName(int rank) {
  switch (rank) {
    case 0: return "eq";
    case 1: return "range";
    case 2: return "str-eq";
    default: return "composite";
  }
}

Expr OrderConjunctsBySelectivity(Expr e) {
  for (Expr& c : e.children) c = OrderConjunctsBySelectivity(std::move(c));
  if (e.kind == Expr::Kind::kAnd) {
    std::stable_sort(e.children.begin(), e.children.end(),
                     [](const Expr& a, const Expr& b) {
                       return ConjunctRank(a) < ConjunctRank(b);
                     });
  }
  return e;
}

// --- subsumption -------------------------------------------------------------
//
// A leaf constrains one column to a *value set*; implication between leaves
// on the same column is set containment. Three domains, matching what
// Build() admits (integer literals never apply to f64 columns and vice
// versa, so integer tightening like `x > 5 ⊆ x >= 6` is exact):
//
//  * kInt — sorted, disjoint, non-adjacent closed i64 intervals. Exact:
//    containment of canonical interval lists decides implication.
//  * kF64 — sorted, disjoint interval lists with open/closed endpoints
//    (±inf for half-lines) plus a does-NaN-match bit: NaN column values
//    fail every ordering and range and match only `!=`, so they are
//    tracked outside the real line. NaN *literals* make a leaf
//    unconvertible (no proof) rather than risking a wrong model.
//  * kStr — a positive or complemented sorted set (equality and In-lists
//    are the only string predicates).

namespace {

constexpr int64_t kIntMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kIntMax = std::numeric_limits<int64_t>::max();

struct IntInterval {
  int64_t lo, hi;  // closed [lo, hi]
};

struct F64Interval {
  double lo, hi;
  bool lo_open, hi_open;
};

struct LeafSet {
  enum class Domain { kInt, kF64, kStr };
  Domain domain = Domain::kInt;
  std::vector<IntInterval> ints;
  std::vector<F64Interval> f64s;
  bool nan = false;  // f64: do NaN column values match?
  bool str_negated = false;
  std::vector<std::string> strs;  // sorted, unique
};

void CanonicalizeInts(std::vector<IntInterval>* iv) {
  iv->erase(std::remove_if(iv->begin(), iv->end(),
                           [](const IntInterval& i) { return i.lo > i.hi; }),
            iv->end());
  std::sort(iv->begin(), iv->end(), [](const IntInterval& x,
                                       const IntInterval& y) {
    return x.lo < y.lo;
  });
  std::vector<IntInterval> out;
  for (const IntInterval& s : *iv) {
    if (!out.empty() &&
        (s.lo <= out.back().hi ||
         (out.back().hi < kIntMax && s.lo == out.back().hi + 1))) {
      out.back().hi = std::max(out.back().hi, s.hi);
    } else {
      out.push_back(s);
    }
  }
  *iv = std::move(out);
}

bool F64Empty(const F64Interval& i) {
  return i.lo > i.hi || (i.lo == i.hi && (i.lo_open || i.hi_open));
}

void CanonicalizeF64s(std::vector<F64Interval>* iv) {
  iv->erase(std::remove_if(iv->begin(), iv->end(), F64Empty), iv->end());
  std::sort(iv->begin(), iv->end(),
            [](const F64Interval& x, const F64Interval& y) {
              if (x.lo != y.lo) return x.lo < y.lo;
              return !x.lo_open && y.lo_open;  // closed start first
            });
  std::vector<F64Interval> out;
  for (const F64Interval& s : *iv) {
    if (!out.empty()) {
      F64Interval& b = out.back();
      // Overlapping, or touching with at least one closed end ([1,2)∪[2,3]
      // merges, (1,2)∪(2,3) does not — the point 2 is missing).
      if (s.lo < b.hi || (s.lo == b.hi && (!s.lo_open || !b.hi_open))) {
        if (s.hi > b.hi || (s.hi == b.hi && b.hi_open && !s.hi_open)) {
          b.hi = s.hi;
          b.hi_open = s.hi_open;
        }
        continue;
      }
    }
    out.push_back(s);
  }
  *iv = std::move(out);
}

int64_t IntValue(const Literal& l) {
  return l.type == Literal::Type::kU32 ? static_cast<int64_t>(l.u32) : l.i64;
}

bool IntLeafSet(const Expr& e, std::vector<IntInterval>* out) {
  switch (e.kind) {
    case Expr::Kind::kCmp: {
      int64_t v = IntValue(e.value);
      switch (e.cmp) {
        case CmpOp::kEq:
          out->push_back({v, v});
          break;
        case CmpOp::kNe:
          if (v > kIntMin) out->push_back({kIntMin, v - 1});
          if (v < kIntMax) out->push_back({v + 1, kIntMax});
          break;
        case CmpOp::kLt:
          if (v > kIntMin) out->push_back({kIntMin, v - 1});
          break;
        case CmpOp::kLe:
          out->push_back({kIntMin, v});
          break;
        case CmpOp::kGt:
          if (v < kIntMax) out->push_back({v + 1, kIntMax});
          break;
        case CmpOp::kGe:
          out->push_back({v, kIntMax});
          break;
      }
      return true;
    }
    case Expr::Kind::kBetween: {
      int64_t lo = IntValue(e.lo), hi = IntValue(e.hi);
      if (!e.negated) {
        out->push_back({lo, hi});
      } else {
        if (lo > kIntMin) out->push_back({kIntMin, lo - 1});
        if (hi < kIntMax) out->push_back({hi + 1, kIntMax});
      }
      return true;
    }
    case Expr::Kind::kIn: {
      std::vector<uint32_t> vs(e.in_u32);
      std::sort(vs.begin(), vs.end());
      vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
      if (!e.negated) {
        for (uint32_t v : vs) {
          int64_t x = static_cast<int64_t>(v);
          out->push_back({x, x});
        }
      } else {
        int64_t lo = kIntMin;
        for (uint32_t v : vs) {
          int64_t x = static_cast<int64_t>(v);
          if (x > lo) out->push_back({lo, x - 1});
          lo = x + 1;  // v <= UINT32_MAX, no overflow
        }
        out->push_back({lo, kIntMax});
      }
      return true;
    }
    default:
      return false;
  }
}

bool F64LeafSet(const Expr& e, std::vector<F64Interval>* out, bool* nan) {
  const double inf = std::numeric_limits<double>::infinity();
  *nan = false;
  switch (e.kind) {
    case Expr::Kind::kCmp: {
      double v = e.value.f64;
      if (std::isnan(v)) return false;  // no proof over NaN literals
      switch (e.cmp) {
        case CmpOp::kEq:
          out->push_back({v, v, false, false});
          break;
        case CmpOp::kNe:
          out->push_back({-inf, v, false, true});
          out->push_back({v, inf, true, false});
          *nan = true;  // NaN != v is true
          break;
        case CmpOp::kLt:
          out->push_back({-inf, v, false, true});
          break;
        case CmpOp::kLe:
          out->push_back({-inf, v, false, false});
          break;
        case CmpOp::kGt:
          out->push_back({v, inf, true, false});
          break;
        case CmpOp::kGe:
          out->push_back({v, inf, false, false});
          break;
      }
      return true;
    }
    case Expr::Kind::kBetween: {
      double lo = e.lo.f64, hi = e.hi.f64;
      if (std::isnan(lo) || std::isnan(hi)) return false;
      if (!e.negated) {
        out->push_back({lo, hi, false, false});
      } else {
        out->push_back({-inf, lo, false, true});
        out->push_back({hi, inf, true, false});
      }
      return true;
    }
    default:
      return false;  // no f64 In-lists exist
  }
}

bool StrLeafSet(const Expr& e, bool* negated, std::vector<std::string>* out) {
  switch (e.kind) {
    case Expr::Kind::kCmp:
      if (e.cmp == CmpOp::kEq) {
        *negated = false;
      } else if (e.cmp == CmpOp::kNe) {
        *negated = true;
      } else {
        return false;  // string ordering comparisons are not admitted
      }
      out->push_back(e.value.str);
      return true;
    case Expr::Kind::kIn: {
      *negated = e.negated;
      *out = e.in_str;
      std::sort(out->begin(), out->end());
      out->erase(std::unique(out->begin(), out->end()), out->end());
      return true;
    }
    default:
      return false;
  }
}

std::optional<LeafSet> MakeLeafSet(const Expr& e) {
  LeafSet s;
  Literal::Type lt;
  switch (e.kind) {
    case Expr::Kind::kCmp:
      lt = e.value.type;
      break;
    case Expr::Kind::kBetween:
      lt = e.lo.type;
      break;
    case Expr::Kind::kIn:
      lt = e.in_str.empty() ? Literal::Type::kU32 : Literal::Type::kStr;
      break;
    default:
      return std::nullopt;
  }
  switch (lt) {
    case Literal::Type::kU32:
    case Literal::Type::kI64:
      s.domain = LeafSet::Domain::kInt;
      if (!IntLeafSet(e, &s.ints)) return std::nullopt;
      CanonicalizeInts(&s.ints);
      return s;
    case Literal::Type::kF64:
      s.domain = LeafSet::Domain::kF64;
      if (!F64LeafSet(e, &s.f64s, &s.nan)) return std::nullopt;
      CanonicalizeF64s(&s.f64s);
      return s;
    case Literal::Type::kStr:
      s.domain = LeafSet::Domain::kStr;
      if (!StrLeafSet(e, &s.str_negated, &s.strs)) return std::nullopt;
      return s;
  }
  return std::nullopt;
}

bool IntContains(const std::vector<IntInterval>& big,
                 const std::vector<IntInterval>& small) {
  size_t j = 0;
  for (const IntInterval& s : small) {
    while (j < big.size() && big[j].hi < s.hi) ++j;
    if (j == big.size() || big[j].lo > s.lo || big[j].hi < s.hi) return false;
  }
  return true;
}

/// Does big's lo bound admit everything small's does?
bool F64LoCovers(const F64Interval& b, const F64Interval& s) {
  return b.lo < s.lo || (b.lo == s.lo && (!b.lo_open || s.lo_open));
}

bool F64HiCovers(const F64Interval& b, const F64Interval& s) {
  return b.hi > s.hi || (b.hi == s.hi && (!b.hi_open || s.hi_open));
}

bool F64Contains(const std::vector<F64Interval>& big,
                 const std::vector<F64Interval>& small) {
  size_t j = 0;
  for (const F64Interval& s : small) {
    while (j < big.size() && !F64HiCovers(big[j], s)) ++j;
    if (j == big.size() || !F64LoCovers(big[j], s)) return false;
  }
  return true;
}

bool Contains(const LeafSet& big, const LeafSet& small) {
  if (big.domain != small.domain) return false;
  switch (small.domain) {
    case LeafSet::Domain::kInt:
      return IntContains(big.ints, small.ints);
    case LeafSet::Domain::kF64:
      if (small.nan && !big.nan) return false;
      return F64Contains(big.f64s, small.f64s);
    case LeafSet::Domain::kStr: {
      const std::vector<std::string>& a = small.strs;
      const std::vector<std::string>& b = big.strs;
      if (!small.str_negated && !big.str_negated) {
        return std::includes(b.begin(), b.end(), a.begin(), a.end());
      }
      if (!small.str_negated && big.str_negated) {
        // {a...} ⊆ Σ∖{b...} iff the explicit sets are disjoint.
        std::vector<std::string> both;
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(both));
        return both.empty();
      }
      if (small.str_negated && big.str_negated) {
        // Σ∖A ⊆ Σ∖B iff B ⊆ A.
        return std::includes(a.begin(), a.end(), b.begin(), b.end());
      }
      return false;  // a complement never fits a finite set
    }
  }
  return false;
}

std::optional<LeafSet> IntersectSets(const LeafSet& a, const LeafSet& b) {
  if (a.domain != b.domain) return std::nullopt;
  LeafSet out;
  out.domain = a.domain;
  switch (a.domain) {
    case LeafSet::Domain::kInt: {
      size_t i = 0, j = 0;
      while (i < a.ints.size() && j < b.ints.size()) {
        int64_t lo = std::max(a.ints[i].lo, b.ints[j].lo);
        int64_t hi = std::min(a.ints[i].hi, b.ints[j].hi);
        if (lo <= hi) out.ints.push_back({lo, hi});
        if (a.ints[i].hi < b.ints[j].hi) {
          ++i;
        } else {
          ++j;
        }
      }
      return out;
    }
    case LeafSet::Domain::kF64: {
      out.nan = a.nan && b.nan;
      size_t i = 0, j = 0;
      while (i < a.f64s.size() && j < b.f64s.size()) {
        const F64Interval& x = a.f64s[i];
        const F64Interval& y = b.f64s[j];
        F64Interval r;
        if (x.lo > y.lo || (x.lo == y.lo && x.lo_open)) {
          r.lo = x.lo;
          r.lo_open = x.lo_open;
        } else {
          r.lo = y.lo;
          r.lo_open = y.lo_open;
        }
        if (x.hi < y.hi || (x.hi == y.hi && x.hi_open)) {
          r.hi = x.hi;
          r.hi_open = x.hi_open;
        } else {
          r.hi = y.hi;
          r.hi_open = y.hi_open;
        }
        if (!F64Empty(r)) out.f64s.push_back(r);
        if (x.hi < y.hi || (x.hi == y.hi && x.hi_open && !y.hi_open)) {
          ++i;
        } else {
          ++j;
        }
      }
      return out;
    }
    case LeafSet::Domain::kStr: {
      const std::vector<std::string>& sa = a.strs;
      const std::vector<std::string>& sb = b.strs;
      if (!a.str_negated && !b.str_negated) {
        std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                              std::back_inserter(out.strs));
      } else if (!a.str_negated && b.str_negated) {
        std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                            std::back_inserter(out.strs));
      } else if (a.str_negated && !b.str_negated) {
        std::set_difference(sb.begin(), sb.end(), sa.begin(), sa.end(),
                            std::back_inserter(out.strs));
      } else {
        out.str_negated = true;
        std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                       std::back_inserter(out.strs));
      }
      return out;
    }
  }
  return std::nullopt;
}

std::optional<LeafSet> UnionSets(const LeafSet& a, const LeafSet& b) {
  if (a.domain != b.domain) return std::nullopt;
  LeafSet out;
  out.domain = a.domain;
  switch (a.domain) {
    case LeafSet::Domain::kInt:
      out.ints = a.ints;
      out.ints.insert(out.ints.end(), b.ints.begin(), b.ints.end());
      CanonicalizeInts(&out.ints);
      return out;
    case LeafSet::Domain::kF64:
      out.nan = a.nan || b.nan;
      out.f64s = a.f64s;
      out.f64s.insert(out.f64s.end(), b.f64s.begin(), b.f64s.end());
      CanonicalizeF64s(&out.f64s);
      return out;
    case LeafSet::Domain::kStr: {
      const std::vector<std::string>& sa = a.strs;
      const std::vector<std::string>& sb = b.strs;
      if (!a.str_negated && !b.str_negated) {
        std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                       std::back_inserter(out.strs));
      } else if (a.str_negated && b.str_negated) {
        out.str_negated = true;
        std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                              std::back_inserter(out.strs));
      } else {
        // pos P ∪ neg N = Σ ∖ (N ∖ P).
        const std::vector<std::string>& pos = a.str_negated ? sb : sa;
        const std::vector<std::string>& neg = a.str_negated ? sa : sb;
        out.str_negated = true;
        std::set_difference(neg.begin(), neg.end(), pos.begin(), pos.end(),
                            std::back_inserter(out.strs));
      }
      return out;
    }
  }
  return std::nullopt;
}

bool SubsumesImpl(const Expr& a, const Expr& b) {
  if (a.kind == Expr::Kind::kNot || b.kind == Expr::Kind::kNot) return false;
  if (b.kind == Expr::Kind::kAnd) {
    // a ⇒ (b1 ∧ b2 ∧ ...) iff a implies every conjunct. Empty And is the
    // always-true filter; anything implies it.
    for (const Expr& c : b.children) {
      if (!SubsumesImpl(a, c)) return false;
    }
    return true;
  }
  if (a.kind == Expr::Kind::kOr) {
    // (a1 ∨ a2 ∨ ...) ⇒ b iff every disjunct implies b. An empty Or matches
    // nothing and implies everything.
    for (const Expr& c : a.children) {
      if (!SubsumesImpl(c, b)) return false;
    }
    return true;
  }
  if (a.kind == Expr::Kind::kAnd) {
    // Any single conjunct implying b is enough (the rest only narrow a).
    for (const Expr& c : a.children) {
      if (SubsumesImpl(c, b)) return true;
    }
    if (b.leaf()) {
      // Refinement: intersect the value sets of a's conjuncts on b's
      // column. That intersection is a superset of a's true projection
      // (other conjuncts only narrow), so containment in b still proves
      // the implication — this is what shows x > 5 && x < 10 ⇒ x in [6,9].
      std::optional<LeafSet> bs = MakeLeafSet(b);
      if (!bs.has_value()) return false;
      std::optional<LeafSet> acc;
      for (const Expr& c : a.children) {
        if (!c.leaf() || c.column != b.column) continue;
        std::optional<LeafSet> cs = MakeLeafSet(c);
        if (!cs.has_value() || cs->domain != bs->domain) continue;
        acc = acc.has_value() ? IntersectSets(*acc, *cs) : cs;
        if (!acc.has_value()) return false;
      }
      return acc.has_value() && Contains(*bs, *acc);
    }
    // b is an Or: a implying any disjunct is enough.
    for (const Expr& d : b.children) {
      if (SubsumesImpl(a, d)) return true;
    }
    return false;
  }
  if (b.kind == Expr::Kind::kOr) {
    // a is a leaf here. Any single disjunct covering a is enough...
    for (const Expr& d : b.children) {
      if (SubsumesImpl(a, d)) return true;
    }
    // ...otherwise union b's same-column disjuncts: that union is a subset
    // of b's true match set (a partial cover), so containing a is a proof —
    // this is what shows x = 3 ⇒ x < 2 || x > 2.
    std::optional<LeafSet> as = MakeLeafSet(a);
    if (!as.has_value()) return false;
    std::optional<LeafSet> acc;
    for (const Expr& d : b.children) {
      if (!d.leaf() || d.column != a.column) continue;
      std::optional<LeafSet> ds = MakeLeafSet(d);
      if (!ds.has_value() || ds->domain != as->domain) continue;
      acc = acc.has_value() ? UnionSets(*acc, *ds) : ds;
      if (!acc.has_value()) return false;
    }
    return acc.has_value() && Contains(*acc, *as);
  }
  // Leaf vs leaf: same column, value-set containment.
  if (a.column != b.column) return false;
  std::optional<LeafSet> as = MakeLeafSet(a);
  std::optional<LeafSet> bs = MakeLeafSet(b);
  if (!as.has_value() || !bs.has_value()) return false;
  return Contains(*bs, *as);
}

}  // namespace

bool ExprSubsumes(const Expr& a, const Expr& b) { return SubsumesImpl(a, b); }

}  // namespace ccdb
