// Relational schema for the exec layer: field names + fixed-width physical
// types (shared with the NSM row store). The exec layer is a deliberately
// small slice of Monet's query machinery — enough to run the paper's
// motivating workloads (Item-table selections, projections, group-bys and
// equi-joins) over decomposed storage.
#ifndef CCDB_EXEC_SCHEMA_H_
#define CCDB_EXEC_SCHEMA_H_

#include <string>
#include <vector>

#include "bat/nsm.h"
#include "util/status.h"

namespace ccdb {

class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::vector<FieldDef> fields)
      : fields_(std::move(fields)) {}

  /// Checks non-empty and unique field names.
  Status Validate() const;

  size_t num_fields() const { return fields_.size(); }
  const FieldDef& field(size_t i) const { return fields_[i]; }
  const std::vector<FieldDef>& fields() const { return fields_; }
  StatusOr<size_t> FieldIndex(const std::string& name) const;

  /// Width of one NSM record under this schema — the scan stride the paper's
  /// Figure 3 puts on the X axis.
  size_t record_width() const;

 private:
  std::vector<FieldDef> fields_;
};

}  // namespace ccdb

#endif  // CCDB_EXEC_SCHEMA_H_
