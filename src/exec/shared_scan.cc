#include "exec/shared_scan.h"

#include <utility>

namespace ccdb {

SharedScanOp::SharedScanOp(const Table* table, std::optional<Expr> filter,
                           size_t chunk_rows, SharedScanProvider* provider,
                           const ExecContext* ctx)
    : table_(table),
      chunk_rows_(chunk_rows == 0 ? SIZE_MAX : chunk_rows),
      provider_(provider),
      ctx_(ctx) {
  if (filter.has_value()) {
    // Same lowering as SelectOp: NNF + selectivity-ordered conjuncts, with
    // the empty conjunction (always true) degenerating to "no filter".
    Expr lowered =
        OrderConjunctsBySelectivity(NormalizeExpr(std::move(*filter)));
    if (lowered.kind != Expr::Kind::kAnd || !lowered.children.empty()) {
      expr_ = std::move(lowered);
    }
  }
}

Status SharedScanOp::Open() {
  part_.reset();  // re-Open attaches afresh (cached plans re-execute)
  CCDB_ASSIGN_OR_RETURN(
      part_, provider_->Attach(table_,
                               expr_.has_value() ? &*expr_ : nullptr,
                               chunk_rows_, ctx_));
  return Status::Ok();
}

StatusOr<bool> SharedScanOp::Next(Chunk* out) {
  if (part_ == nullptr) return false;
  return part_->NextChunk(out);
}

void SharedScanOp::Close() { part_.reset(); }

Chunk MakeTableScanChunk(const Table& table, oid_t start, size_t rows) {
  Chunk out;
  out.rows = rows;
  out.cands = {Candidates::Dense(start, rows)};
  for (size_t i = 0; i < table.num_columns(); ++i) {
    ChunkColumn c;
    c.name = table.schema().field(i).name;
    c.base = &table;
    c.base_col = i;
    c.cand_slot = 0;
    out.cols.push_back(std::move(c));
  }
  return out;
}

}  // namespace ccdb
