// Materialized query output: decoded, caller-facing column vectors. This is
// the only layer where tuples are reconstructed into "wide" form — inside a
// plan everything stays BATs + candidate lists (§3.1).
#ifndef CCDB_EXEC_RESULT_H_
#define CCDB_EXEC_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bat/types.h"
#include "util/status.h"

namespace ccdb {

/// One output column of a query (string values are decoded).
struct MaterializedColumn {
  std::string name;
  std::vector<std::string> str_values;   // filled for string columns
  std::vector<double> f64_values;        // filled for f64 columns
  std::vector<uint32_t> u32_values;      // filled for integral columns
  std::vector<int64_t> i64_values;       // filled for i64 columns (aggregates)
  PhysType type = PhysType::kU32;

  size_t size() const {
    switch (type) {
      case PhysType::kStr: return str_values.size();
      case PhysType::kF64: return f64_values.size();
      case PhysType::kI64: return i64_values.size();
      default: return u32_values.size();
    }
  }
};

/// The full result table of an executed plan.
struct QueryResult {
  std::vector<MaterializedColumn> columns;

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t num_columns() const { return columns.size(); }

  StatusOr<size_t> ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return i;
    }
    return Status::NotFound("no result column named " + name);
  }
};

}  // namespace ccdb

#endif  // CCDB_EXEC_RESULT_H_
