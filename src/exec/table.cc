#include "exec/table.h"

#include <cstring>

#include "algo/select.h"

namespace ccdb {

StatusOr<Table> Table::FromRowStore(const RowStore& rows, bool auto_encode) {
  Table t;
  t.schema_ = TableSchema(rows.fields());
  CCDB_RETURN_IF_ERROR(t.schema_.Validate());
  t.rows_ = rows.size();
  CCDB_ASSIGN_OR_RETURN(DecomposedTable dsm, DecomposedTable::Decompose(rows));
  for (size_t i = 0; i < dsm.num_columns(); ++i) {
    const Bat& bat = dsm.column(i);
    if (auto_encode && bat.tail().type() == PhysType::kStr) {
      auto enc = DictEncode(bat.tail());
      if (enc.ok()) {
        CCDB_ASSIGN_OR_RETURN(
            Bat code_bat,
            Bat::Make(Column::Void(0, t.rows_), std::move(enc->codes)));
        t.bats_.push_back(std::move(code_bat));
        t.dicts_.emplace_back(std::move(enc->dict));
        continue;
      }
      // kResourceExhausted (domain too large): fall through, store raw.
      if (enc.status().code() != StatusCode::kResourceExhausted) {
        return enc.status();
      }
    }
    t.bats_.push_back(bat);
    t.dicts_.emplace_back(std::nullopt);
  }
  return t;
}

size_t Table::column_value_bytes(size_t i) const {
  const Column& tail = bats_[i].tail();
  if (tail.type() == PhysType::kStr) {
    // Offset entry per tuple; arena amortized out of the scan stride.
    return sizeof(uint32_t);
  }
  return PhysTypeWidth(tail.type());
}

size_t Table::MemoryBytes() const {
  size_t total = 0;
  for (const auto& b : bats_) total += b.MemoryBytes();
  return total;
}

StatusOr<ColumnStats> Table::StatsLocked(size_t i) const {
  if (i >= num_columns()) {
    return Status::InvalidArgument("stats: column index out of range");
  }
  if (stats_->cols.size() != num_columns()) {
    stats_->cols.assign(num_columns(), std::nullopt);
  }
  if (!stats_->cols[i].has_value()) {
    CCDB_ASSIGN_OR_RETURN(ColumnStats s, ComputeColumnStats(*this, i));
    stats_->cols[i] = s;
  }
  return *stats_->cols[i];
}

// Everything — the schema lookup, the bounds check, the fill — happens
// under the cache mutex, which AppendRows holds across its whole
// rebuild-and-swap. A stats call therefore always reads a consistent
// (pre- or post-append) table, never a half-replaced one.
StatusOr<ColumnStats> Table::stats(size_t i) const {
  MutexLock lock(&stats_->mu);
  return StatsLocked(i);
}

StatusOr<ColumnStats> Table::stats(const std::string& col) const {
  MutexLock lock(&stats_->mu);
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  return StatsLocked(i);
}

Status Table::AppendRows(const RowStore& extra) {
  // Hold the stats mutex for the whole read-rebuild-swap: concurrent lazy
  // stats fills (which scan the old BATs under the same mutex) serialize
  // against the rebuild instead of racing it, and the cache object itself
  // is kept — cleared in place, not replaced (see the field-wise swap
  // below, which deliberately leaves stats_ alone) — so a blocked stats()
  // call resumes against the invalidated cache, never a dangling one.
  MutexLock lock(&stats_->mu);
  if (extra.fields().size() != schema_.num_fields()) {
    return Status::InvalidArgument("AppendRows: field count mismatch");
  }
  for (size_t f = 0; f < extra.fields().size(); ++f) {
    if (extra.fields()[f].name != schema_.field(f).name ||
        extra.fields()[f].type != schema_.field(f).type) {
      return Status::InvalidArgument("AppendRows: schema mismatch on field '" +
                                     extra.fields()[f].name + "'");
    }
  }
  // Materialize old + new rows and re-decompose: string domains may need
  // re-encoding (a new value can overflow a u8 code column), so rebuilding
  // through the one ingest path keeps every encoding invariant.
  CCDB_ASSIGN_OR_RETURN(RowStore combined,
                        RowStore::Make(schema_.fields(),
                                       rows_ + extra.size()));
  for (size_t r = 0; r < rows_; ++r) {
    CCDB_ASSIGN_OR_RETURN(size_t row, combined.AppendRow());
    for (size_t f = 0; f < schema_.num_fields(); ++f) {
      const Column& tail = bats_[f].tail();
      switch (schema_.field(f).type) {
        case FieldType::kU8:
          combined.SetU8(row, f, static_cast<uint8_t>(tail.GetIntegral(r)));
          break;
        case FieldType::kU16: {
          uint32_t v = static_cast<uint32_t>(tail.GetIntegral(r));
          combined.SetBytes(row, f, &v, 2);
          break;
        }
        case FieldType::kU32:
          combined.SetU32(row, f, static_cast<uint32_t>(tail.GetIntegral(r)));
          break;
        case FieldType::kI64:
          combined.SetI64(row, f, static_cast<int64_t>(tail.GetIntegral(r)));
          break;
        case FieldType::kF64:
          combined.SetF64(row, f, tail.Span<double>()[r]);
          break;
        case FieldType::kChar1:
        case FieldType::kChar10:
        case FieldType::kChar27: {
          std::string_view s = is_encoded(f)
                                   ? dicts_[f]->Get(static_cast<uint32_t>(
                                         tail.GetIntegral(r)))
                                   : tail.GetStr(r);
          combined.SetBytes(row, f, s.data(), s.size());
          break;
        }
      }
    }
  }
  for (size_t r = 0; r < extra.size(); ++r) {
    CCDB_ASSIGN_OR_RETURN(size_t row, combined.AppendRow());
    std::memcpy(combined.RowPtr(row), extra.RowPtr(r),
                extra.record_width());
  }
  CCDB_ASSIGN_OR_RETURN(Table rebuilt, FromRowStore(combined));
  // Field-wise swap instead of *this = move(rebuilt): that would replace
  // stats_ and drop the mutex we are holding. Clearing `cols` in place is
  // the invalidation; the version bump is the external signal (plan cache).
  schema_ = std::move(rebuilt.schema_);
  rows_ = rebuilt.rows_;
  bats_ = std::move(rebuilt.bats_);
  dicts_ = std::move(rebuilt.dicts_);
  stats_->cols.assign(schema_.num_fields(), std::nullopt);
  stats_->data_version.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

StatusOr<std::vector<oid_t>> Table::SelectEqStr(const std::string& col,
                                                std::string_view value) const {
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  DirectMemory mem;
  if (is_encoded(i)) {
    // Predicate remap (§3.1): selection on "MAIL" becomes selection on its
    // 1-2 byte code; tuples are never decoded.
    auto code = dicts_[i]->Lookup(value);
    if (!code.ok()) return std::vector<oid_t>{};
    const Column& codes = bats_[i].tail();
    if (codes.type() == PhysType::kU8) {
      return EqSelect(codes.Span<uint8_t>(), static_cast<uint8_t>(*code), mem);
    }
    return EqSelect(codes.Span<uint16_t>(), static_cast<uint16_t>(*code), mem);
  }
  const Column& tail = bats_[i].tail();
  if (tail.type() != PhysType::kStr)
    return Status::InvalidArgument(col + " is not a string column");
  std::vector<oid_t> out;
  for (size_t r = 0; r < tail.size(); ++r) {
    if (tail.GetStr(r) == value) out.push_back(static_cast<oid_t>(r));
  }
  return out;
}

StatusOr<std::vector<oid_t>> Table::SelectRangeU32(const std::string& col,
                                                   uint32_t lo,
                                                   uint32_t hi) const {
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  const Column& tail = bats_[i].tail();
  if (tail.type() != PhysType::kU32)
    return Status::InvalidArgument(col + " is not a u32 column");
  DirectMemory mem;
  return RangeSelect(tail.Span<uint32_t>(), lo, hi, mem);
}

StatusOr<std::vector<oid_t>> Table::SelectRangeF64(const std::string& col,
                                                   double lo,
                                                   double hi) const {
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  const Column& tail = bats_[i].tail();
  if (tail.type() != PhysType::kF64)
    return Status::InvalidArgument(col + " is not a f64 column");
  std::vector<oid_t> out;
  std::span<const double> v = tail.Span<double>();
  for (size_t r = 0; r < v.size(); ++r) {
    if (lo <= v[r] && v[r] <= hi) out.push_back(static_cast<oid_t>(r));
  }
  return out;
}

StatusOr<GroupAggregates> Table::GroupSumU32(const std::string& group_col,
                                             const std::string& value_col) const {
  CCDB_ASSIGN_OR_RETURN(size_t g, Col(group_col));
  CCDB_ASSIGN_OR_RETURN(size_t v, Col(value_col));
  const Column& vals = bats_[v].tail();
  if (vals.type() != PhysType::kU32)
    return Status::InvalidArgument(value_col + " is not a u32 column");
  const Column& keys = bats_[g].tail();
  std::vector<uint32_t> key_buf(keys.size());
  switch (keys.type()) {
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
      for (size_t r = 0; r < keys.size(); ++r)
        key_buf[r] = static_cast<uint32_t>(keys.GetIntegral(r));
      break;
    default:
      return Status::InvalidArgument(
          group_col + " is not an integral or encoded column");
  }
  DirectMemory mem;
  return HashGroupSum<DirectMemory, MurmurHash>(
      std::span<const uint32_t>(key_buf), vals.Span<uint32_t>(), mem);
}

StatusOr<std::string> Table::DecodeGroupKey(const std::string& group_col,
                                            uint32_t key) const {
  CCDB_ASSIGN_OR_RETURN(size_t g, Col(group_col));
  if (!is_encoded(g))
    return Status::FailedPrecondition(group_col + " is not encoded");
  if (key >= dicts_[g]->size())
    return Status::OutOfRange("code beyond dictionary");
  return std::string(dicts_[g]->Get(key));
}

StatusOr<std::vector<std::string>> Table::GatherStr(
    const std::string& col, std::span<const oid_t> oids) const {
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  std::vector<std::string> out;
  out.reserve(oids.size());
  if (is_encoded(i)) {
    const Column& codes = bats_[i].tail();
    for (oid_t o : oids) {
      if (o >= rows_) return Status::OutOfRange("oid beyond table");
      out.emplace_back(
          dicts_[i]->Get(static_cast<uint32_t>(codes.GetIntegral(o))));
    }
    return out;
  }
  const Column& tail = bats_[i].tail();
  if (tail.type() != PhysType::kStr)
    return Status::InvalidArgument(col + " is not a string column");
  for (oid_t o : oids) {
    if (o >= rows_) return Status::OutOfRange("oid beyond table");
    out.emplace_back(tail.GetStr(o));
  }
  return out;
}

StatusOr<std::vector<double>> Table::GatherF64(
    const std::string& col, std::span<const oid_t> oids) const {
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  const Column& tail = bats_[i].tail();
  if (tail.type() != PhysType::kF64)
    return Status::InvalidArgument(col + " is not a f64 column");
  std::span<const double> v = tail.Span<double>();
  std::vector<double> out;
  out.reserve(oids.size());
  for (oid_t o : oids) {
    if (o >= rows_) return Status::OutOfRange("oid beyond table");
    out.push_back(v[o]);
  }
  return out;
}

StatusOr<std::vector<uint32_t>> Table::GatherU32(
    const std::string& col, std::span<const oid_t> oids) const {
  CCDB_ASSIGN_OR_RETURN(size_t i, Col(col));
  const Column& tail = bats_[i].tail();
  switch (tail.type()) {
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
      break;
    default:
      return Status::InvalidArgument(col + " is not an integral column");
  }
  std::vector<uint32_t> out;
  out.reserve(oids.size());
  for (oid_t o : oids) {
    if (o >= rows_) return Status::OutOfRange("oid beyond table");
    out.push_back(static_cast<uint32_t>(tail.GetIntegral(o)));
  }
  return out;
}

}  // namespace ccdb
