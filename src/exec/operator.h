// Physical operators: Open/Next/Close over BAT chunks (Volcano-shaped, but
// column-at-a-time inside each chunk, as §3.1 prescribes). The payload
// flowing between operators is a Chunk — a set of aligned columns that are
// usually *not* materialized: each lazy column is a pointer into a base
// table plus a shared candidate list (selection vector of OIDs), so a
// Select pipelines into a Join or an aggregate by narrowing the candidate
// list, and tuple reconstruction stays the free positional lookup the paper
// describes (footnote 2). Only pipeline breakers (group-by, order-by) and
// the final result materialize values.
#ifndef CCDB_EXEC_OPERATOR_H_
#define CCDB_EXEC_OPERATOR_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algo/aggregate.h"
#include "algo/hash_table.h"
#include "algo/radix_cluster.h"
#include "exec/exec_context.h"
#include "exec/plan.h"
#include "exec/result.h"
#include "exec/table.h"
#include "model/strategy.h"

namespace ccdb {

/// A candidate list: the OIDs (into one base table) that survive upstream
/// operators. `oids == nullptr` means the dense virtual sequence
/// [base, base+count) — a void candidate column costing no memory.
struct Candidates {
  std::shared_ptr<const std::vector<oid_t>> oids;
  oid_t base = 0;
  size_t count = 0;

  static Candidates Dense(oid_t base, size_t count) {
    Candidates c;
    c.base = base;
    c.count = count;
    return c;
  }
  static Candidates FromOids(std::vector<oid_t> v) {
    Candidates c;
    c.count = v.size();
    c.oids = std::make_shared<const std::vector<oid_t>>(std::move(v));
    return c;
  }

  bool dense() const { return oids == nullptr; }
  oid_t Get(size_t i) const {
    return dense() ? static_cast<oid_t>(base + i) : (*oids)[i];
  }
};

/// One column visible in a chunk: either a lazy reference to a base-table
/// BAT, resolved through the chunk's candidate list number `cand_slot`, or
/// a Column materialized by an upstream pipeline breaker.
struct ChunkColumn {
  std::string name;
  const Table* base = nullptr;  // lazy: base table ...
  size_t base_col = 0;          //   ... column index ...
  size_t cand_slot = 0;         //   ... resolved through chunk.cands[slot]
  std::shared_ptr<const Column> owned;  // materialized (null when lazy)

  bool lazy() const { return owned == nullptr; }
};

/// A batch of rows flowing between operators. All columns are positionally
/// aligned; lazy columns from the same base-table side share one entry of
/// `cands` (so a join result carries exactly two candidate lists no matter
/// how many columns are later touched).
struct Chunk {
  size_t rows = 0;
  std::vector<ChunkColumn> cols;
  std::vector<Candidates> cands;

  StatusOr<size_t> Find(const std::string& name) const;

  /// Logical value type of column `c` (kU32 / kI64 / kF64 / kStr).
  PhysType TypeOf(size_t c) const;

  // Gathers (tuple reconstruction): materialize column `c` through its
  // candidate list. Encoded string columns decode via the dictionary.
  StatusOr<std::vector<uint32_t>> GatherU32(size_t c) const;
  StatusOr<std::vector<int64_t>> GatherI64(size_t c) const;
  StatusOr<std::vector<double>> GatherF64(size_t c) const;
  StatusOr<std::vector<std::string>> GatherStr(size_t c) const;

  /// Rows at `positions` (indices into this chunk, duplicates allowed —
  /// a join's take). Candidate lists are remapped, owned columns compacted.
  StatusOr<Chunk> Take(std::span<const uint32_t> positions) const;

  /// Appends column `c`'s values for all rows onto `out` (decoding strings,
  /// widening integrals) — the final materialization step.
  Status AppendTo(size_t c, MaterializedColumn* out) const;
};

/// Concatenates chunks with identical layout (same names, same lazy/owned
/// shape) into one; used by pipeline breakers.
StatusOr<Chunk> ConcatChunks(std::vector<Chunk> chunks);

/// Dispatches a resolved JoinPlan to the concrete join kernel. Shared by
/// JoinOp and the legacy ExecuteJoin wrapper in exec/ops.h.
StatusOr<std::vector<Bun>> ExecuteJoinPlan(std::span<const Bun> l,
                                           std::span<const Bun> r,
                                           const JoinPlan& plan,
                                           JoinStats* stats = nullptr);

/// The physical operator interface. Lifecycle: Open() once, Next() until it
/// returns false, Close() once. Next() fills `out` with the next chunk.
/// Every operator emits at least one (possibly zero-row) chunk, so
/// downstream operators always learn their input layout.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual StatusOr<bool> Next(Chunk* out) = 0;
  virtual void Close() = 0;
};

/// Per-join diagnostics a physical plan records at Open() time: the actual
/// inner cardinality and the JoinPlan the cost model chose for it.
struct JoinNodeInfo {
  std::string left_key, right_key;
  JoinType join_type = JoinType::kInner;
  uint64_t inner_cardinality = 0;
  JoinPlan plan;
  JoinStats stats;  // accumulated over probe chunks

  /// The planner's pre-execution estimates for this node (model/estimator.h)
  /// — what the join order and the sizing hints were decided from. The
  /// actuals above verify them after the fact.
  uint64_t estimated_inner_cardinality = 0;
  uint64_t estimated_probe_cardinality = 0;
  uint64_t estimated_result_rows = 0;
  /// True when join-chain reordering moved this join away from the position
  /// the query was written in.
  bool reordered = false;

  /// Times the inner (build) side was reorganized — clustered, sorted, or
  /// hash-table-built. Always 1 after Open(): the inner is prepared once
  /// and reused across every probe chunk.
  int inner_cluster_runs = 0;
  /// Radix-partition probe tasks dispatched across all probe chunks — the
  /// independent parallel units of the partitioned join.
  uint64_t partition_tasks = 0;
  /// Worker budget the join ran with (ExecContext::parallelism).
  size_t parallelism = 1;
};

// --- concrete operators ------------------------------------------------------

/// Leaf: emits the base table as lazy columns over dense candidate lists,
/// `chunk_rows` rows at a time (SIZE_MAX = whole-BAT-at-a-time, the paper's
/// full-materialization model).
class ScanOp : public Operator {
 public:
  ScanOp(const Table* table, size_t chunk_rows);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override {}

 private:
  const Table* table_;
  size_t chunk_rows_;
  size_t pos_ = 0;
  bool emitted_ = false;
};

/// Filter: evaluates a typed expression tree (exec/expr.h) through the
/// candidate list (predicate remap for encoded columns) and narrows the
/// chunk — no values are materialized and no intermediate BAT exists at any
/// point. Conjunctions run as one fused candidate pass: the first conjunct
/// scans the chunk's candidate range, every subsequent conjunct narrows the
/// surviving position list without re-scanning the chunk. Disjunctions
/// evaluate every branch over the same input candidates and merge-union the
/// sorted position lists (UnionSortedPositions), so a position matching
/// several branches survives exactly once. Leaves lower to disjoint u32
/// range sets on the value (or dictionary-code) domain where possible —
/// `x != 7` is two ranges, a negated Between or an IN-list a few more —
/// evaluated by the candidate-list union kernels; owned columns (aggregate
/// output) evaluate on their spans in place, and other shapes fall back to
/// a candidate-bounded gather. With a parallel ExecContext each leaf pass
/// splits into cache-sized morsels evaluated on the pool; morsel results
/// concatenate in morsel order, so output is byte-identical at any
/// parallelism.
///
/// The expression is normalized (NNF) and its conjuncts
/// selectivity-ordered on construction; SelectOp also serves Having nodes,
/// whose owned aggregate columns take the in-place span path.
class SelectOp : public Operator {
 public:
  SelectOp(std::unique_ptr<Operator> child, Expr expr,
           const ExecContext* ctx = nullptr);
  /// Legacy wrappers: a conjunction of Predicates filters exactly like the
  /// equivalent And expression. An empty conjunction passes chunks through.
  SelectOp(std::unique_ptr<Operator> child, std::vector<Predicate> preds,
           const ExecContext* ctx = nullptr);
  SelectOp(std::unique_ptr<Operator> child, Predicate pred,
           const ExecContext* ctx = nullptr);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

  /// The normalized, selectivity-ordered expression this operator actually
  /// executes (nullopt: pass-through). The planner's ExplainFilters()
  /// report is derived from this, so the diagnostics cannot diverge from
  /// execution.
  const std::optional<Expr>& expr() const { return expr_; }

 private:
  std::unique_ptr<Operator> child_;
  std::optional<Expr> expr_;  // nullopt: pass-through (empty conjunction)
  const ExecContext* ctx_;
};

/// Equi-join. Open() drains the inner (right) child, asks the cost model
/// for a JoinPlan at the *actual* inner cardinality (recorded into `info`),
/// and prepares the inner side exactly once for that plan: radix-clustered
/// (plus per-partition hash tables for the phash family), sorted, or
/// hash-table-built — never redone per probe chunk. Next() probes with one
/// outer chunk at a time; each radix partition is an independent task run
/// on the ExecContext's pool, and partition results concatenate in radix
/// order so join output is byte-identical at any parallelism.
///
/// All four JoinTypes probe the same prepared-once inner structures; they
/// differ only in how the per-chunk match list becomes an output chunk:
///  - kInner: matching pairs in radix order; both sides stay lazy — the
///    join only produces two candidate lists.
///  - kSemi / kAnti: probe rows with / without a match, in probe order;
///    only left columns (and candidate lists) survive.
///  - kLeftOuter: matches sorted to probe order with unmatched probe rows
///    interleaved; right-side columns are materialized (decoded), with
///    type defaults (0 / 0.0 / "") standing in for nulls.
class JoinOp : public Operator {
 public:
  /// `est_result_rows` is the planner's estimated join output (0 = no
  /// estimate): per-chunk match buffers are pre-sized from it instead of
  /// the inner-cardinality default.
  JoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
         std::string left_key, std::string right_key, JoinType join_type,
         JoinStrategy strategy, const MachineProfile& profile,
         JoinNodeInfo* info, const ExecContext* ctx = nullptr,
         uint64_t est_result_rows = 0, uint64_t est_probe_rows = 0);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

 private:
  using InnerHashTable = BucketChainedHashTable<DirectMemory, IdentityHash>;

  /// Joins one clustered probe chunk against the prepared inner: one task
  /// per matching radix-partition pair, concatenated in radix order.
  /// `tasks` accumulates the number of partition tasks dispatched.
  StatusOr<std::vector<Bun>> JoinClusteredChunk(const ClusteredRelation& cl,
                                                uint64_t* tasks);
  /// Probes the single Open()-built table with one chunk, morsel-parallel.
  StatusOr<std::vector<Bun>> ProbeSimpleHash(std::span<const Bun> probe) const;

  /// Right-side columns for a left-outer output chunk: inner row `rpos[i]`
  /// when `valid[i]`, the type's null surrogate otherwise. Always owned
  /// columns, so chunk layout is identical whether or not rows matched.
  StatusOr<std::vector<ChunkColumn>> TakeInnerWithNulls(
      std::span<const uint32_t> rpos, std::span<const uint8_t> valid) const;

  std::unique_ptr<Operator> left_, right_;
  std::string left_key_, right_key_;
  JoinType join_type_;
  JoinStrategy strategy_;
  MachineProfile profile_;
  JoinNodeInfo* info_;  // owned by the PhysicalPlan; may be null
  const ExecContext* ctx_;
  uint64_t est_result_rows_ = 0, est_probe_rows_ = 0;  // planner sizing hints
  JoinPlan plan_;
  Chunk inner_;
  // Inner-side scratch is arena-backed (BunVec): large builds land on
  // huge-page-eligible mappings with cache-line-aligned starts.
  BunVec inner_buns_;
  // Inner side prepared once at Open() (exactly one is populated):
  ClusteredRelation inner_clustered_;       // radix/phash: clustered copy
  std::vector<uint64_t> inner_bounds_;      //   + per-partition bounds
  std::vector<std::unique_ptr<InnerHashTable>> inner_tables_;  // phash only
  BunVec inner_sorted_;                     // sort-merge: sorted copy
  std::optional<InnerHashTable> inner_table_;  // simple hash: one table
};

/// Narrows and reorders the visible columns; unused candidate slots are
/// dropped.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<std::string> columns);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<std::string> columns_;
};

/// Pipeline breaker: hash-grouped aggregation over one or more group-key
/// columns, accumulated chunk by chunk (§3.2: the group table usually fits
/// the caches). Each per-shard partial table (GroupAggTable) carries (sum,
/// count, min, max) per value column, so any subset of
/// SUM/MIN/MAX/AVG/COUNT is answered from one pass and partials merge
/// exactly. With a parallel ExecContext each worker shard keeps its own
/// table across chunks and the partials merge in shard order when the input
/// is exhausted; at parallelism 1 the single table is fed in stream order,
/// reproducing a serial reference byte for byte. Emits one chunk of owned
/// columns [group cols..., one column per AggSpec]; encoded group keys are
/// decoded. Sums and counts past INT64_MAX surface as OutOfRange rather
/// than negative values.
class GroupByAggOp : public Operator {
 public:
  /// `expected_groups` (0 = unknown) pre-sizes every worker shard's
  /// GroupAggTable from the planner's grouped-cardinality estimate, making
  /// table growth rehash-free when the estimate covers the actual count.
  GroupByAggOp(std::unique_ptr<Operator> child,
               std::vector<std::string> group_cols, std::vector<AggSpec> aggs,
               const ExecContext* ctx = nullptr, size_t expected_groups = 0);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  const ExecContext* ctx_;
  size_t expected_groups_;
  bool done_ = false;
};

/// Pipeline breaker: drains the child, stable-sorts row positions by the
/// key column, re-emits the permuted chunk (columns stay lazy!). Parallel
/// mode sorts contiguous shards on the pool and merges them left to right;
/// the merge prefers the left run on ties, which is exactly stable_sort's
/// tie-break, so output is byte-identical at any parallelism.
class OrderByOp : public Operator {
 public:
  OrderByOp(std::unique_ptr<Operator> child, std::string column,
            bool descending, const ExecContext* ctx = nullptr);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::string column_;
  bool descending_;
  const ExecContext* ctx_;
  bool done_ = false;
};

/// Streams through the child, skipping `offset` rows and truncating after
/// `limit` (Monet's slice). Once the limit is reached — including limit 0 —
/// it stops pulling from the child after the first (layout-bearing) chunk
/// instead of draining it.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, size_t limit, size_t offset);
  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_, offset_;
  size_t skipped_ = 0, emitted_ = 0;
  bool emitted_chunk_ = false;  // a layout-bearing chunk went downstream
};

}  // namespace ccdb

#endif  // CCDB_EXEC_OPERATOR_H_
