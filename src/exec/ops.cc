#include "exec/ops.h"

#include "exec/operator.h"

namespace ccdb {

StatusOr<std::vector<Bun>> ExecuteJoin(std::span<const Bun> l,
                                       std::span<const Bun> r,
                                       const JoinPlan& plan,
                                       JoinStats* stats) {
  return ExecuteJoinPlan(l, r, plan, stats);
}

StatusOr<std::vector<Bun>> ColumnBuns(const Table& table,
                                      const std::string& col) {
  CCDB_ASSIGN_OR_RETURN(size_t i, table.schema().FieldIndex(col));
  return table.column_bat(i).ToBuns();
}

StatusOr<std::vector<Bun>> JoinTables(const Table& left,
                                      const std::string& left_col,
                                      const Table& right,
                                      const std::string& right_col,
                                      JoinStrategy strategy,
                                      const MachineProfile& profile,
                                      JoinStats* stats) {
  // A two-leaf operator pipeline: Scan(left) |> Join(Scan(right)). The join
  // result's two candidate lists *are* the [left OID, right OID] index.
  CCDB_RETURN_IF_ERROR(left.schema().FieldIndex(left_col).status());
  CCDB_RETURN_IF_ERROR(right.schema().FieldIndex(right_col).status());
  JoinNodeInfo info;
  JoinOp join(std::make_unique<ScanOp>(&left, SIZE_MAX),
              std::make_unique<ScanOp>(&right, SIZE_MAX), left_col, right_col,
              JoinType::kInner, strategy, profile, &info);
  CCDB_RETURN_IF_ERROR(join.Open());
  std::vector<Bun> index;
  for (;;) {
    Chunk chunk;
    auto more = join.Next(&chunk);
    if (!more.ok()) {
      join.Close();
      return more.status();
    }
    if (!*more) break;
    // Slot 0 = left side, slot 1 = right side (scan leaves have one each).
    for (size_t i = 0; i < chunk.rows; ++i) {
      index.push_back({chunk.cands[0].Get(i), chunk.cands[1].Get(i)});
    }
  }
  join.Close();
  if (stats != nullptr) *stats = info.stats;
  return index;
}

StatusOr<std::vector<MaterializedColumn>> MaterializeJoin(
    const Table& left, const std::vector<std::string>& left_cols,
    const Table& right, const std::vector<std::string>& right_cols,
    std::span<const Bun> join_index) {
  // Build the join-result chunk directly: two candidate lists from the
  // index, every requested column lazy — materialization happens in
  // AppendTo, the same path a plan's output takes.
  std::vector<oid_t> left_oids(join_index.size());
  std::vector<oid_t> right_oids(join_index.size());
  for (size_t i = 0; i < join_index.size(); ++i) {
    left_oids[i] = join_index[i].head;
    right_oids[i] = join_index[i].tail;
  }
  Chunk chunk;
  chunk.rows = join_index.size();
  chunk.cands.push_back(Candidates::FromOids(std::move(left_oids)));
  chunk.cands.push_back(Candidates::FromOids(std::move(right_oids)));
  struct Side {
    const Table* table;
    const std::vector<std::string>* cols;
    size_t slot;
  };
  for (const Side& side : {Side{&left, &left_cols, 0},
                           Side{&right, &right_cols, 1}}) {
    for (const std::string& name : *side.cols) {
      CCDB_ASSIGN_OR_RETURN(size_t ci, side.table->schema().FieldIndex(name));
      ChunkColumn col;
      col.name = name;
      col.base = side.table;
      col.base_col = ci;
      col.cand_slot = side.slot;
      chunk.cols.push_back(std::move(col));
    }
  }
  std::vector<MaterializedColumn> out(chunk.cols.size());
  for (size_t i = 0; i < chunk.cols.size(); ++i) {
    out[i].name = chunk.cols[i].name;
    out[i].type = chunk.TypeOf(i);
    CCDB_RETURN_IF_ERROR(chunk.AppendTo(i, &out[i]));
  }
  return out;
}

}  // namespace ccdb
