#include "exec/ops.h"

#include "algo/partitioned_hash_join.h"
#include "algo/radix_join.h"
#include "algo/simple_hash_join.h"
#include "algo/sort_merge_join.h"

namespace ccdb {

StatusOr<std::vector<Bun>> ExecuteJoin(std::span<const Bun> l,
                                       std::span<const Bun> r,
                                       const JoinPlan& plan,
                                       JoinStats* stats) {
  DirectMemory mem;
  switch (plan.strategy) {
    case JoinStrategy::kSortMerge:
      return SortMergeJoin(l, r, mem, stats);
    case JoinStrategy::kSimpleHash:
      return SimpleHashJoin(l, r, mem, stats);
    default:
      break;
  }
  if (plan.use_radix_join) {
    return RadixJoin(l, r, plan.bits, plan.passes, mem, stats);
  }
  return PartitionedHashJoin(l, r, plan.bits, plan.passes, mem, stats);
}

StatusOr<std::vector<Bun>> ColumnBuns(const Table& table,
                                      const std::string& col) {
  CCDB_ASSIGN_OR_RETURN(size_t i, table.schema().FieldIndex(col));
  return table.column_bat(i).ToBuns();
}

namespace {

StatusOr<MaterializedColumn> GatherColumn(const Table& table,
                                          const std::string& col,
                                          const std::vector<oid_t>& oids) {
  MaterializedColumn out;
  out.name = col;
  CCDB_ASSIGN_OR_RETURN(size_t i, table.schema().FieldIndex(col));
  const Column& tail = table.column_bat(i).tail();
  if (table.is_encoded(i) || tail.type() == PhysType::kStr) {
    out.type = PhysType::kStr;
    CCDB_ASSIGN_OR_RETURN(out.str_values, table.GatherStr(col, oids));
    return out;
  }
  if (tail.type() == PhysType::kF64) {
    out.type = PhysType::kF64;
    CCDB_ASSIGN_OR_RETURN(out.f64_values, table.GatherF64(col, oids));
    return out;
  }
  out.type = PhysType::kU32;
  CCDB_ASSIGN_OR_RETURN(out.u32_values, table.GatherU32(col, oids));
  return out;
}

}  // namespace

StatusOr<std::vector<MaterializedColumn>> MaterializeJoin(
    const Table& left, const std::vector<std::string>& left_cols,
    const Table& right, const std::vector<std::string>& right_cols,
    std::span<const Bun> join_index) {
  std::vector<oid_t> left_oids(join_index.size());
  std::vector<oid_t> right_oids(join_index.size());
  for (size_t i = 0; i < join_index.size(); ++i) {
    left_oids[i] = join_index[i].head;
    right_oids[i] = join_index[i].tail;
  }
  std::vector<MaterializedColumn> out;
  out.reserve(left_cols.size() + right_cols.size());
  for (const auto& col : left_cols) {
    CCDB_ASSIGN_OR_RETURN(MaterializedColumn mc,
                          GatherColumn(left, col, left_oids));
    out.push_back(std::move(mc));
  }
  for (const auto& col : right_cols) {
    CCDB_ASSIGN_OR_RETURN(MaterializedColumn mc,
                          GatherColumn(right, col, right_oids));
    out.push_back(std::move(mc));
  }
  return out;
}

StatusOr<std::vector<Bun>> JoinTables(const Table& left,
                                      const std::string& left_col,
                                      const Table& right,
                                      const std::string& right_col,
                                      JoinStrategy strategy,
                                      const MachineProfile& profile,
                                      JoinStats* stats) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Bun> l, ColumnBuns(left, left_col));
  CCDB_ASSIGN_OR_RETURN(std::vector<Bun> r, ColumnBuns(right, right_col));
  JoinPlan plan = PlanJoin(strategy, r.size(), profile);
  return ExecuteJoin(l, r, plan, stats);
}

}  // namespace ccdb
