#include "exec/plan.h"

#include <algorithm>

namespace ccdb {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "sum";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kCount: return "count";
  }
  return "?";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "inner";
    case JoinType::kLeftOuter: return "left_outer";
    case JoinType::kSemi: return "semi";
    case JoinType::kAnti: return "anti";
  }
  return "?";
}

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kScan: return "Scan";
    case LogicalOp::kSelect: return "Select";
    case LogicalOp::kJoin: return "Join";
    case LogicalOp::kProject: return "Project";
    case LogicalOp::kGroupByAgg: return "GroupByAgg";
    case LogicalOp::kOrderBy: return "OrderBy";
    case LogicalOp::kLimit: return "Limit";
  }
  return "?";
}

namespace {

using Schema = std::vector<PlanColumn>;

StatusOr<const PlanColumn*> FindColumn(const Schema& schema,
                                       const std::string& name,
                                       const char* op) {
  const PlanColumn* found = nullptr;
  for (const PlanColumn& c : schema) {
    if (c.name != name) continue;
    if (c.ambiguous) {
      return Status::InvalidArgument(std::string(op) + ": column '" + name +
                                     "' is ambiguous (appears on both sides "
                                     "of a join); Project it away first");
    }
    found = &c;
    break;
  }
  if (found == nullptr) {
    return Status::NotFound(std::string(op) + ": no column named '" + name +
                            "'");
  }
  return found;
}

/// Logical value type of a stored table column: encoded and raw string
/// columns read as kStr; u8/u16/u32 as kU32.
PlanColumn ScanColumn(const Table& t, size_t i) {
  PlanColumn c;
  c.name = t.schema().field(i).name;
  if (t.is_encoded(i)) {
    c.type = PhysType::kStr;
    c.encoded = true;
    return c;
  }
  switch (t.column_bat(i).tail().type()) {
    case PhysType::kStr:
      c.type = PhysType::kStr;
      break;
    case PhysType::kF64:
      c.type = PhysType::kF64;
      break;
    case PhysType::kI64:
      c.type = PhysType::kI64;
      break;
    default:
      c.type = PhysType::kU32;
      break;
  }
  return c;
}

/// Child `i` of `n`, or the error a consumed builder leaves behind (its
/// moved-from root becomes a null child of the next appended node).
StatusOr<const LogicalNode*> ChildOf(const LogicalNode& n, size_t i) {
  if (n.children.size() <= i || n.children[i] == nullptr) {
    return Status::InvalidArgument(
        "QueryBuilder already consumed by Build()");
  }
  return n.children[i].get();
}

Status ValidatePredicate(const Schema& in, const Predicate& pred) {
  CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                        FindColumn(in, pred.column, "Select"));
  switch (pred.kind) {
    case Predicate::Kind::kRangeU32:
      if (c->type != PhysType::kU32) {
        return Status::InvalidArgument("Select: RangeU32 predicate on "
                                       "non-integral column '" +
                                       c->name + "'");
      }
      break;
    case Predicate::Kind::kRangeF64:
      if (c->type != PhysType::kF64) {
        return Status::InvalidArgument(
            "Select: RangeF64 predicate on non-f64 column '" + c->name + "'");
      }
      break;
    case Predicate::Kind::kEqStr:
      if (c->type != PhysType::kStr) {
        return Status::InvalidArgument(
            "Select: EqStr predicate on non-string column '" + c->name + "'");
      }
      break;
  }
  return Status::Ok();
}

StatusOr<Schema> ValidateNode(const LogicalNode& n) {
  switch (n.op) {
    case LogicalOp::kScan: {
      if (n.table == nullptr) {
        return Status::InvalidArgument("Scan: null table");
      }
      Schema out;
      for (size_t i = 0; i < n.table->num_columns(); ++i) {
        out.push_back(ScanColumn(*n.table, i));
      }
      return out;
    }
    case LogicalOp::kSelect: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      if (n.preds.empty()) {
        return Status::InvalidArgument("Select: empty predicate conjunction");
      }
      for (const Predicate& pred : n.preds) {
        CCDB_RETURN_IF_ERROR(ValidatePredicate(in, pred));
      }
      return in;
    }
    case LogicalOp::kJoin: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* lchild, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* rchild, ChildOf(n, 1));
      CCDB_ASSIGN_OR_RETURN(Schema l, ValidateNode(*lchild));
      CCDB_ASSIGN_OR_RETURN(Schema r, ValidateNode(*rchild));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* lk,
                            FindColumn(l, n.left_key, "Join"));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* rk,
                            FindColumn(r, n.right_key, "Join"));
      if (lk->type != PhysType::kU32 || rk->type != PhysType::kU32) {
        return Status::InvalidArgument(
            "Join: keys must be u32 columns (got '" + n.left_key + "', '" +
            n.right_key + "')");
      }
      // Semi/anti joins are filters on the probe side: only left columns
      // survive, so right-side names cannot collide or become nullable.
      if (n.join_type == JoinType::kSemi || n.join_type == JoinType::kAnti) {
        return l;
      }
      Schema out = l;
      for (PlanColumn c : r) {
        for (PlanColumn& existing : out) {
          if (existing.name == c.name) {
            existing.ambiguous = true;
            c.ambiguous = true;
          }
        }
        if (n.join_type == JoinType::kLeftOuter) {
          // Unmatched probe rows carry nulls on the right side; the
          // executor materializes (and decodes) those columns, surfacing
          // nulls as type defaults.
          c.nullable = true;
          c.encoded = false;
        }
        out.push_back(std::move(c));
      }
      return out;
    }
    case LogicalOp::kProject: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      if (n.columns.empty()) {
        return Status::InvalidArgument("Project: empty column list");
      }
      Schema out;
      for (const std::string& name : n.columns) {
        CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                              FindColumn(in, name, "Project"));
        out.push_back(*c);
      }
      return out;
    }
    case LogicalOp::kGroupByAgg: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      if (n.group_cols.empty()) {
        return Status::InvalidArgument("GroupByAgg: empty group-column list");
      }
      if (n.aggs.empty()) {
        return Status::InvalidArgument("GroupByAgg: empty aggregate list");
      }
      Schema out;
      for (const std::string& name : n.group_cols) {
        CCDB_ASSIGN_OR_RETURN(const PlanColumn* g,
                              FindColumn(in, name, "GroupByAgg"));
        if (g->type != PhysType::kU32 &&
            !(g->type == PhysType::kStr && g->encoded)) {
          return Status::InvalidArgument(
              "GroupByAgg: group column '" + g->name +
              "' must be integral or an encoded string column");
        }
        for (const PlanColumn& seen : out) {
          if (seen.name == name) {
            return Status::InvalidArgument(
                "GroupByAgg: duplicate group column '" + name + "'");
          }
        }
        PlanColumn group = *g;
        group.encoded = false;  // aggregation output decodes group keys
        group.ambiguous = false;
        group.nullable = false;  // null surrogates group as concrete values
        out.push_back(std::move(group));
      }
      for (const AggSpec& agg : n.aggs) {
        if (agg.func != AggFunc::kCount) {
          CCDB_ASSIGN_OR_RETURN(const PlanColumn* v,
                                FindColumn(in, agg.value_col, "GroupByAgg"));
          if (v->type != PhysType::kU32) {
            return Status::InvalidArgument("GroupByAgg: value column '" +
                                           v->name + "' must be u32");
          }
        }
        if (agg.output_name.empty()) {
          return Status::InvalidArgument(
              "GroupByAgg: empty aggregate output name");
        }
        for (const PlanColumn& seen : out) {
          if (seen.name == agg.output_name) {
            return Status::InvalidArgument(
                "GroupByAgg: duplicate output column '" + agg.output_name +
                "' (rename with Agg::...().As())");
          }
        }
        PhysType t = PhysType::kI64;  // sum, count
        if (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) {
          t = PhysType::kU32;
        } else if (agg.func == AggFunc::kAvg) {
          t = PhysType::kF64;
        }
        out.push_back({agg.output_name, t, false, false, false});
      }
      return out;
    }
    case LogicalOp::kOrderBy: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                            FindColumn(in, n.order_col, "OrderBy"));
      (void)c;  // every logical type is orderable
      return in;
    }
    case LogicalOp::kLimit: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      return ValidateNode(*child);
    }
  }
  return Status::Internal("unreachable logical op");
}

/// One predicate, EXPLAIN-style: `qty in [2, 4]`, `shipmode = "MAIL"`.
std::string RenderPredicate(const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kRangeU32:
      return p.column + " in [" + std::to_string(p.lo_u32) + ", " +
             std::to_string(p.hi_u32) + "]";
    case Predicate::Kind::kRangeF64:
      return p.column + " in [" + std::to_string(p.lo_f64) + ", " +
             std::to_string(p.hi_f64) + "]";
    case Predicate::Kind::kEqStr:
      return p.column + " = \"" + p.str_value + "\"";
  }
  return "?";
}

/// One aggregate: `sum(qty)`, `min(qty) as lo`, `count()`.
std::string RenderAgg(const AggSpec& a) {
  std::string s;
  s.append(AggFuncName(a.func));
  s.append("(").append(a.value_col).append(")");
  if (a.output_name != AggFuncName(a.func)) {
    s.append(" as ").append(a.output_name);
  }
  return s;
}

void RenderNode(const LogicalNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(LogicalOpName(n.op));
  switch (n.op) {
    case LogicalOp::kScan:
      out->append("(").append(std::to_string(n.table->num_rows()))
          .append(" rows)");
      break;
    case LogicalOp::kSelect: {
      out->append("(");
      for (size_t i = 0; i < n.preds.size(); ++i) {
        if (i) out->append(" AND ");
        out->append(RenderPredicate(n.preds[i]));
      }
      out->append(")");
      break;
    }
    case LogicalOp::kJoin:
      out->append("(" + n.left_key + " = " + n.right_key + ", " +
                  JoinTypeName(n.join_type) + ", " +
                  JoinStrategyName(n.join_strategy) + ")");
      break;
    case LogicalOp::kProject: {
      out->append("(");
      for (size_t i = 0; i < n.columns.size(); ++i) {
        if (i) out->append(", ");
        out->append(n.columns[i]);
      }
      out->append(")");
      break;
    }
    case LogicalOp::kGroupByAgg: {
      out->append("(");
      for (size_t i = 0; i < n.group_cols.size(); ++i) {
        if (i) out->append(", ");
        out->append(n.group_cols[i]);
      }
      out->append("; ");
      for (size_t i = 0; i < n.aggs.size(); ++i) {
        if (i) out->append(", ");
        out->append(RenderAgg(n.aggs[i]));
      }
      out->append(")");
      break;
    }
    case LogicalOp::kOrderBy:
      out->append("(" + n.order_col + (n.descending ? " desc)" : " asc)"));
      break;
    case LogicalOp::kLimit:
      out->append("(").append(std::to_string(n.limit)).append(", offset ")
          .append(std::to_string(n.offset)).append(")");
      break;
  }
  out->push_back('\n');
  for (const auto& c : n.children) RenderNode(*c, depth + 1, out);
}

}  // namespace

std::string LogicalPlan::ToString() const {
  std::string out;
  RenderNode(*root_, 0, &out);
  return out;
}

QueryBuilder::QueryBuilder(const Table& table)
    : root_(std::make_unique<LogicalNode>()) {
  root_->op = LogicalOp::kScan;
  root_->table = &table;
}

namespace {

std::unique_ptr<LogicalNode> Wrap(std::unique_ptr<LogicalNode> child,
                                  LogicalOp op) {
  auto n = std::make_unique<LogicalNode>();
  n->op = op;
  n->children.push_back(std::move(child));
  return n;
}

}  // namespace

// Every fluent method no-ops on a consumed builder (root_ == nullptr after
// Build() moved it out, or after the builder was joined into another plan):
// root_ stays null and the next Build() reports InvalidArgument instead of
// dereferencing it.

QueryBuilder& QueryBuilder::Select(Predicate pred) {
  std::vector<Predicate> preds;
  preds.push_back(std::move(pred));
  return Select(std::move(preds));
}

QueryBuilder& QueryBuilder::Select(std::vector<Predicate> conjunction) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kSelect);
  root_->preds = std::move(conjunction);
  return *this;
}

QueryBuilder& QueryBuilder::Join(const Table& right, std::string left_key,
                                 std::string right_key, JoinStrategy strategy) {
  return Join(QueryBuilder(right), std::move(left_key), std::move(right_key),
              JoinType::kInner, strategy);
}

QueryBuilder& QueryBuilder::Join(QueryBuilder right, std::string left_key,
                                 std::string right_key, JoinStrategy strategy) {
  return Join(std::move(right), std::move(left_key), std::move(right_key),
              JoinType::kInner, strategy);
}

QueryBuilder& QueryBuilder::Join(const Table& right, std::string left_key,
                                 std::string right_key, JoinType type,
                                 JoinStrategy strategy) {
  return Join(QueryBuilder(right), std::move(left_key), std::move(right_key),
              type, strategy);
}

QueryBuilder& QueryBuilder::Join(QueryBuilder right, std::string left_key,
                                 std::string right_key, JoinType type,
                                 JoinStrategy strategy) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kJoin);
  root_->children.push_back(std::move(right.root_));
  root_->left_key = std::move(left_key);
  root_->right_key = std::move(right_key);
  root_->join_type = type;
  root_->join_strategy = strategy;
  return *this;
}

QueryBuilder& QueryBuilder::Project(std::vector<std::string> columns) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kProject);
  root_->columns = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::GroupByAgg(std::vector<std::string> group_cols,
                                       std::vector<AggSpec> aggs) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kGroupByAgg);
  root_->group_cols = std::move(group_cols);
  root_->aggs = std::move(aggs);
  return *this;
}

QueryBuilder& QueryBuilder::GroupBySum(std::string group_col,
                                       std::string value_col) {
  return GroupByAgg({std::move(group_col)},
                    {Agg::Sum(std::move(value_col)), Agg::Count()});
}

QueryBuilder& QueryBuilder::OrderBy(std::string column, bool descending) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kOrderBy);
  root_->order_col = std::move(column);
  root_->descending = descending;
  return *this;
}

QueryBuilder& QueryBuilder::Limit(size_t n, size_t offset) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kLimit);
  root_->limit = n;
  root_->offset = offset;
  return *this;
}

StatusOr<LogicalPlan> QueryBuilder::Build() {
  if (root_ == nullptr) {
    return Status::InvalidArgument(
        "QueryBuilder already consumed by Build()");
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<PlanColumn> schema, ValidateNode(*root_));
  return LogicalPlan(std::move(root_), std::move(schema));
}

}  // namespace ccdb
