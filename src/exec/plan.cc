#include "exec/plan.h"

#include <algorithm>

namespace ccdb {

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kScan: return "Scan";
    case LogicalOp::kSelect: return "Select";
    case LogicalOp::kJoin: return "Join";
    case LogicalOp::kProject: return "Project";
    case LogicalOp::kGroupByAgg: return "GroupByAgg";
    case LogicalOp::kOrderBy: return "OrderBy";
    case LogicalOp::kLimit: return "Limit";
  }
  return "?";
}

namespace {

using Schema = std::vector<PlanColumn>;

StatusOr<const PlanColumn*> FindColumn(const Schema& schema,
                                       const std::string& name,
                                       const char* op) {
  const PlanColumn* found = nullptr;
  for (const PlanColumn& c : schema) {
    if (c.name != name) continue;
    if (c.ambiguous) {
      return Status::InvalidArgument(std::string(op) + ": column '" + name +
                                     "' is ambiguous (appears on both sides "
                                     "of a join); Project it away first");
    }
    found = &c;
    break;
  }
  if (found == nullptr) {
    return Status::NotFound(std::string(op) + ": no column named '" + name +
                            "'");
  }
  return found;
}

/// Logical value type of a stored table column: encoded and raw string
/// columns read as kStr; u8/u16/u32 as kU32.
PlanColumn ScanColumn(const Table& t, size_t i) {
  PlanColumn c;
  c.name = t.schema().field(i).name;
  if (t.is_encoded(i)) {
    c.type = PhysType::kStr;
    c.encoded = true;
    return c;
  }
  switch (t.column_bat(i).tail().type()) {
    case PhysType::kStr:
      c.type = PhysType::kStr;
      break;
    case PhysType::kF64:
      c.type = PhysType::kF64;
      break;
    case PhysType::kI64:
      c.type = PhysType::kI64;
      break;
    default:
      c.type = PhysType::kU32;
      break;
  }
  return c;
}

/// Child `i` of `n`, or the error a consumed builder leaves behind (its
/// moved-from root becomes a null child of the next appended node).
StatusOr<const LogicalNode*> ChildOf(const LogicalNode& n, size_t i) {
  if (n.children.size() <= i || n.children[i] == nullptr) {
    return Status::FailedPrecondition(
        "QueryBuilder already consumed by Build()");
  }
  return n.children[i].get();
}

StatusOr<Schema> ValidateNode(const LogicalNode& n) {
  switch (n.op) {
    case LogicalOp::kScan: {
      if (n.table == nullptr) {
        return Status::InvalidArgument("Scan: null table");
      }
      Schema out;
      for (size_t i = 0; i < n.table->num_columns(); ++i) {
        out.push_back(ScanColumn(*n.table, i));
      }
      return out;
    }
    case LogicalOp::kSelect: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                            FindColumn(in, n.pred.column, "Select"));
      switch (n.pred.kind) {
        case Predicate::Kind::kRangeU32:
          if (c->type != PhysType::kU32) {
            return Status::InvalidArgument("Select: RangeU32 predicate on "
                                           "non-integral column '" +
                                           c->name + "'");
          }
          break;
        case Predicate::Kind::kRangeF64:
          if (c->type != PhysType::kF64) {
            return Status::InvalidArgument(
                "Select: RangeF64 predicate on non-f64 column '" + c->name +
                "'");
          }
          break;
        case Predicate::Kind::kEqStr:
          if (c->type != PhysType::kStr) {
            return Status::InvalidArgument(
                "Select: EqStr predicate on non-string column '" + c->name +
                "'");
          }
          break;
      }
      return in;
    }
    case LogicalOp::kJoin: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* lchild, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* rchild, ChildOf(n, 1));
      CCDB_ASSIGN_OR_RETURN(Schema l, ValidateNode(*lchild));
      CCDB_ASSIGN_OR_RETURN(Schema r, ValidateNode(*rchild));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* lk,
                            FindColumn(l, n.left_key, "Join"));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* rk,
                            FindColumn(r, n.right_key, "Join"));
      if (lk->type != PhysType::kU32 || rk->type != PhysType::kU32) {
        return Status::InvalidArgument(
            "Join: keys must be u32 columns (got '" + n.left_key + "', '" +
            n.right_key + "')");
      }
      Schema out = l;
      for (PlanColumn c : r) {
        for (PlanColumn& existing : out) {
          if (existing.name == c.name) {
            existing.ambiguous = true;
            c.ambiguous = true;
          }
        }
        out.push_back(std::move(c));
      }
      return out;
    }
    case LogicalOp::kProject: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      if (n.columns.empty()) {
        return Status::InvalidArgument("Project: empty column list");
      }
      Schema out;
      for (const std::string& name : n.columns) {
        CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                              FindColumn(in, name, "Project"));
        out.push_back(*c);
      }
      return out;
    }
    case LogicalOp::kGroupByAgg: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* g,
                            FindColumn(in, n.group_col, "GroupByAgg"));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* v,
                            FindColumn(in, n.value_col, "GroupByAgg"));
      if (g->type != PhysType::kU32 && !(g->type == PhysType::kStr && g->encoded)) {
        return Status::InvalidArgument(
            "GroupByAgg: group column '" + g->name +
            "' must be integral or an encoded string column");
      }
      if (v->type != PhysType::kU32) {
        return Status::InvalidArgument("GroupByAgg: value column '" + v->name +
                                       "' must be u32");
      }
      Schema out;
      PlanColumn group = *g;
      group.encoded = false;  // aggregation output decodes group keys
      group.ambiguous = false;
      out.push_back(std::move(group));
      out.push_back({"sum", PhysType::kI64, false, false});
      out.push_back({"count", PhysType::kI64, false, false});
      return out;
    }
    case LogicalOp::kOrderBy: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                            FindColumn(in, n.order_col, "OrderBy"));
      (void)c;  // every logical type is orderable
      return in;
    }
    case LogicalOp::kLimit: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      return ValidateNode(*child);
    }
  }
  return Status::Internal("unreachable logical op");
}

void RenderNode(const LogicalNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(LogicalOpName(n.op));
  switch (n.op) {
    case LogicalOp::kScan:
      out->append("(" + std::to_string(n.table->num_rows()) + " rows)");
      break;
    case LogicalOp::kSelect:
      out->append("(" + n.pred.column + ")");
      break;
    case LogicalOp::kJoin:
      out->append("(" + n.left_key + " = " + n.right_key + ", " +
                  JoinStrategyName(n.join_strategy) + ")");
      break;
    case LogicalOp::kProject: {
      out->append("(");
      for (size_t i = 0; i < n.columns.size(); ++i) {
        if (i) out->append(", ");
        out->append(n.columns[i]);
      }
      out->append(")");
      break;
    }
    case LogicalOp::kGroupByAgg:
      out->append("(" + n.group_col + ", sum(" + n.value_col + "))");
      break;
    case LogicalOp::kOrderBy:
      out->append("(" + n.order_col + (n.descending ? " desc)" : " asc)"));
      break;
    case LogicalOp::kLimit:
      out->append("(" + std::to_string(n.limit) + ", offset " +
                  std::to_string(n.offset) + ")");
      break;
  }
  out->push_back('\n');
  for (const auto& c : n.children) RenderNode(*c, depth + 1, out);
}

}  // namespace

std::string LogicalPlan::ToString() const {
  std::string out;
  RenderNode(*root_, 0, &out);
  return out;
}

QueryBuilder::QueryBuilder(const Table& table)
    : root_(std::make_unique<LogicalNode>()) {
  root_->op = LogicalOp::kScan;
  root_->table = &table;
}

namespace {

std::unique_ptr<LogicalNode> Wrap(std::unique_ptr<LogicalNode> child,
                                  LogicalOp op) {
  auto n = std::make_unique<LogicalNode>();
  n->op = op;
  n->children.push_back(std::move(child));
  return n;
}

}  // namespace

QueryBuilder& QueryBuilder::Select(Predicate pred) {
  root_ = Wrap(std::move(root_), LogicalOp::kSelect);
  root_->pred = std::move(pred);
  return *this;
}

QueryBuilder& QueryBuilder::Join(const Table& right, std::string left_key,
                                 std::string right_key, JoinStrategy strategy) {
  return Join(QueryBuilder(right), std::move(left_key), std::move(right_key),
              strategy);
}

QueryBuilder& QueryBuilder::Join(QueryBuilder right, std::string left_key,
                                 std::string right_key, JoinStrategy strategy) {
  root_ = Wrap(std::move(root_), LogicalOp::kJoin);
  root_->children.push_back(std::move(right.root_));
  root_->left_key = std::move(left_key);
  root_->right_key = std::move(right_key);
  root_->join_strategy = strategy;
  return *this;
}

QueryBuilder& QueryBuilder::Project(std::vector<std::string> columns) {
  root_ = Wrap(std::move(root_), LogicalOp::kProject);
  root_->columns = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::GroupBySum(std::string group_col,
                                       std::string value_col) {
  root_ = Wrap(std::move(root_), LogicalOp::kGroupByAgg);
  root_->group_col = std::move(group_col);
  root_->value_col = std::move(value_col);
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(std::string column, bool descending) {
  root_ = Wrap(std::move(root_), LogicalOp::kOrderBy);
  root_->order_col = std::move(column);
  root_->descending = descending;
  return *this;
}

QueryBuilder& QueryBuilder::Limit(size_t n, size_t offset) {
  root_ = Wrap(std::move(root_), LogicalOp::kLimit);
  root_->limit = n;
  root_->offset = offset;
  return *this;
}

StatusOr<LogicalPlan> QueryBuilder::Build() {
  if (root_ == nullptr) {
    return Status::FailedPrecondition(
        "QueryBuilder already consumed by Build()");
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<PlanColumn> schema, ValidateNode(*root_));
  return LogicalPlan(std::move(root_), std::move(schema));
}

}  // namespace ccdb
