#include "exec/plan.h"

#include <algorithm>

namespace ccdb {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "sum";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kCount: return "count";
  }
  return "?";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "inner";
    case JoinType::kLeftOuter: return "left_outer";
    case JoinType::kSemi: return "semi";
    case JoinType::kAnti: return "anti";
  }
  return "?";
}

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kScan: return "Scan";
    case LogicalOp::kSelect: return "Select";
    case LogicalOp::kJoin: return "Join";
    case LogicalOp::kProject: return "Project";
    case LogicalOp::kGroupByAgg: return "GroupByAgg";
    case LogicalOp::kHaving: return "Having";
    case LogicalOp::kOrderBy: return "OrderBy";
    case LogicalOp::kLimit: return "Limit";
  }
  return "?";
}

Expr Predicate::ToExpr() const {
  switch (kind) {
    case Kind::kRangeU32:
      return Between(Col(column), lo_u32, hi_u32);
    case Kind::kRangeF64:
      return Between(Col(column), lo_f64, hi_f64);
    case Kind::kEqStr:
      return Col(column) == str_value;
  }
  return Expr{};
}

namespace {

using Schema = std::vector<PlanColumn>;

StatusOr<const PlanColumn*> FindColumn(const Schema& schema,
                                       const std::string& name,
                                       const char* op) {
  const PlanColumn* found = nullptr;
  for (const PlanColumn& c : schema) {
    if (c.name != name) continue;
    if (c.ambiguous) {
      return Status::InvalidArgument(std::string(op) + ": column '" + name +
                                     "' is ambiguous (appears on both sides "
                                     "of a join); Project it away first");
    }
    found = &c;
    break;
  }
  if (found == nullptr) {
    return Status::NotFound(std::string(op) + ": no column named '" + name +
                            "'");
  }
  return found;
}

/// Logical value type of a stored table column: encoded and raw string
/// columns read as kStr; u8/u16/u32 as kU32.
PlanColumn ScanColumn(const Table& t, size_t i) {
  PlanColumn c;
  c.name = t.schema().field(i).name;
  if (t.is_encoded(i)) {
    c.type = PhysType::kStr;
    c.encoded = true;
    return c;
  }
  switch (t.column_bat(i).tail().type()) {
    case PhysType::kStr:
      c.type = PhysType::kStr;
      break;
    case PhysType::kF64:
      c.type = PhysType::kF64;
      break;
    case PhysType::kI64:
      c.type = PhysType::kI64;
      break;
    default:
      c.type = PhysType::kU32;
      break;
  }
  return c;
}

/// Child `i` of `n`, or the error a consumed builder leaves behind (its
/// moved-from root becomes a null child of the next appended node).
StatusOr<const LogicalNode*> ChildOf(const LogicalNode& n, size_t i) {
  if (n.children.size() <= i || n.children[i] == nullptr) {
    return Status::InvalidArgument(
        "QueryBuilder already consumed by Build()");
  }
  return n.children[i].get();
}

/// Type-checks one expression leaf against the visible column it names.
/// u32 literals compare against integral columns — including the i64
/// sums/counts of an aggregate, which is what lets Having reuse the same
/// machinery; f64 literals require an f64 column; string literals require a
/// string column and support equality only.
Status ValidateLeaf(const Schema& in, const Expr& e, const char* op) {
  CCDB_ASSIGN_OR_RETURN(const PlanColumn* c, FindColumn(in, e.column, op));
  Literal::Type lt = Literal::Type::kU32;
  switch (e.kind) {
    case Expr::Kind::kCmp:
      lt = e.value.type;
      break;
    case Expr::Kind::kBetween:
      if (e.lo.type != e.hi.type) {
        return Status::InvalidArgument(std::string(op) +
                                       ": Between bounds of mixed types on '" +
                                       e.column + "'");
      }
      lt = e.lo.type;
      break;
    case Expr::Kind::kIn:
      if (e.in_u32.empty() && e.in_str.empty()) {
        return Status::InvalidArgument(std::string(op) +
                                       ": empty In-list on '" + e.column +
                                       "'");
      }
      lt = e.in_str.empty() ? Literal::Type::kU32 : Literal::Type::kStr;
      break;
    default:
      return Status::Internal("ValidateLeaf on a non-leaf expression");
  }
  switch (lt) {
    case Literal::Type::kU32:
    case Literal::Type::kI64:
      if (c->type != PhysType::kU32 && c->type != PhysType::kI64) {
        return Status::InvalidArgument(
            std::string(op) + ": integer comparison on non-integral column '" +
            c->name + "'");
      }
      break;
    case Literal::Type::kF64:
      if (c->type != PhysType::kF64) {
        return Status::InvalidArgument(std::string(op) +
                                       ": float comparison on non-f64 "
                                       "column '" +
                                       c->name + "'");
      }
      break;
    case Literal::Type::kStr:
      if (c->type != PhysType::kStr) {
        return Status::InvalidArgument(std::string(op) +
                                       ": string comparison on non-string "
                                       "column '" +
                                       c->name + "'");
      }
      if (e.kind == Expr::Kind::kCmp && e.cmp != CmpOp::kEq &&
          e.cmp != CmpOp::kNe) {
        return Status::InvalidArgument(
            std::string(op) + ": string columns support = and != only ('" +
            c->name + "')");
      }
      break;
  }
  // Inverted ranges select nothing and are always a caller bug; reject them
  // here instead of silently returning the empty set. (NaN bounds are not
  // `lo > hi` and keep their never-match semantics.)
  if (e.kind == Expr::Kind::kBetween) {
    if (lt == Literal::Type::kU32 && e.lo.u32 > e.hi.u32) {
      return Status::InvalidArgument(
          std::string(op) + ": range with lo > hi on '" + e.column + "' [" +
          std::to_string(e.lo.u32) + ", " + std::to_string(e.hi.u32) + "]");
    }
    if (lt == Literal::Type::kI64 && e.lo.i64 > e.hi.i64) {
      return Status::InvalidArgument(
          std::string(op) + ": range with lo > hi on '" + e.column + "' [" +
          std::to_string(e.lo.i64) + ", " + std::to_string(e.hi.i64) + "]");
    }
    if (lt == Literal::Type::kF64 && e.lo.f64 > e.hi.f64) {
      return Status::InvalidArgument(
          std::string(op) + ": range with lo > hi on '" + e.column + "'");
    }
  }
  return Status::Ok();
}

Status ValidateExpr(const Schema& in, const Expr& e, const char* op) {
  switch (e.kind) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      if (e.children.empty()) {
        return Status::InvalidArgument(std::string(op) +
                                       ": empty predicate conjunction");
      }
      for (const Expr& c : e.children) {
        CCDB_RETURN_IF_ERROR(ValidateExpr(in, c, op));
      }
      return Status::Ok();
    case Expr::Kind::kNot:
      if (e.children.size() != 1) {
        return Status::InvalidArgument(std::string(op) +
                                       ": NOT takes exactly one operand");
      }
      return ValidateExpr(in, e.children[0], op);
    default:
      return ValidateLeaf(in, e, op);
  }
}

StatusOr<Schema> ValidateNode(const LogicalNode& n) {
  switch (n.op) {
    case LogicalOp::kScan: {
      if (n.table == nullptr) {
        return Status::InvalidArgument("Scan: null table");
      }
      Schema out;
      for (size_t i = 0; i < n.table->num_columns(); ++i) {
        out.push_back(ScanColumn(*n.table, i));
      }
      return out;
    }
    case LogicalOp::kSelect: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_RETURN_IF_ERROR(ValidateExpr(in, n.filter, "Select"));
      return in;
    }
    case LogicalOp::kHaving: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      if (child->op != LogicalOp::kGroupByAgg &&
          child->op != LogicalOp::kHaving) {
        return Status::InvalidArgument(
            std::string("Having: requires a GroupByAgg input, got ") +
            LogicalOpName(child->op));
      }
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_RETURN_IF_ERROR(ValidateExpr(in, n.filter, "Having"));
      return in;
    }
    case LogicalOp::kJoin: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* lchild, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* rchild, ChildOf(n, 1));
      CCDB_ASSIGN_OR_RETURN(Schema l, ValidateNode(*lchild));
      CCDB_ASSIGN_OR_RETURN(Schema r, ValidateNode(*rchild));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* lk,
                            FindColumn(l, n.left_key, "Join"));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* rk,
                            FindColumn(r, n.right_key, "Join"));
      if (lk->type != PhysType::kU32 || rk->type != PhysType::kU32) {
        return Status::InvalidArgument(
            "Join: keys must be u32 columns (got '" + n.left_key + "', '" +
            n.right_key + "')");
      }
      // Semi/anti joins are filters on the probe side: only left columns
      // survive, so right-side names cannot collide or become nullable.
      if (n.join_type == JoinType::kSemi || n.join_type == JoinType::kAnti) {
        return l;
      }
      Schema out = l;
      for (PlanColumn c : r) {
        for (PlanColumn& existing : out) {
          if (existing.name == c.name) {
            existing.ambiguous = true;
            c.ambiguous = true;
          }
        }
        if (n.join_type == JoinType::kLeftOuter) {
          // Unmatched probe rows carry nulls on the right side; the
          // executor materializes (and decodes) those columns, surfacing
          // nulls as type defaults.
          c.nullable = true;
          c.encoded = false;
        }
        out.push_back(std::move(c));
      }
      return out;
    }
    case LogicalOp::kProject: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      if (n.columns.empty()) {
        return Status::InvalidArgument("Project: empty column list");
      }
      Schema out;
      for (const std::string& name : n.columns) {
        CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                              FindColumn(in, name, "Project"));
        out.push_back(*c);
      }
      return out;
    }
    case LogicalOp::kGroupByAgg: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      if (n.group_cols.empty()) {
        return Status::InvalidArgument("GroupByAgg: empty group-column list");
      }
      if (n.aggs.empty()) {
        return Status::InvalidArgument("GroupByAgg: empty aggregate list");
      }
      Schema out;
      for (const std::string& name : n.group_cols) {
        CCDB_ASSIGN_OR_RETURN(const PlanColumn* g,
                              FindColumn(in, name, "GroupByAgg"));
        if (g->type != PhysType::kU32 &&
            !(g->type == PhysType::kStr && g->encoded)) {
          return Status::InvalidArgument(
              "GroupByAgg: group column '" + g->name +
              "' must be integral or an encoded string column");
        }
        for (const PlanColumn& seen : out) {
          if (seen.name == name) {
            return Status::InvalidArgument(
                "GroupByAgg: duplicate group column '" + name + "'");
          }
        }
        PlanColumn group = *g;
        group.encoded = false;  // aggregation output decodes group keys
        group.ambiguous = false;
        group.nullable = false;  // null surrogates group as concrete values
        out.push_back(std::move(group));
      }
      for (const AggSpec& agg : n.aggs) {
        if (agg.func != AggFunc::kCount) {
          CCDB_ASSIGN_OR_RETURN(const PlanColumn* v,
                                FindColumn(in, agg.value_col, "GroupByAgg"));
          if (v->type != PhysType::kU32) {
            return Status::InvalidArgument("GroupByAgg: value column '" +
                                           v->name + "' must be u32");
          }
        }
        if (agg.output_name.empty()) {
          return Status::InvalidArgument(
              "GroupByAgg: empty aggregate output name");
        }
        for (const PlanColumn& seen : out) {
          if (seen.name == agg.output_name) {
            return Status::InvalidArgument(
                "GroupByAgg: duplicate output column '" + agg.output_name +
                "' (rename with Agg::...().As())");
          }
        }
        PhysType t = PhysType::kI64;  // sum, count
        if (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) {
          t = PhysType::kU32;
        } else if (agg.func == AggFunc::kAvg) {
          t = PhysType::kF64;
        }
        out.push_back({agg.output_name, t, false, false, false});
      }
      return out;
    }
    case LogicalOp::kOrderBy: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      CCDB_ASSIGN_OR_RETURN(Schema in, ValidateNode(*child));
      CCDB_ASSIGN_OR_RETURN(const PlanColumn* c,
                            FindColumn(in, n.order_col, "OrderBy"));
      (void)c;  // every logical type is orderable
      return in;
    }
    case LogicalOp::kLimit: {
      CCDB_ASSIGN_OR_RETURN(const LogicalNode* child, ChildOf(n, 0));
      return ValidateNode(*child);
    }
  }
  return Status::Internal("unreachable logical op");
}

/// One aggregate: `sum(qty)`, `min(qty) as lo`, `count()`.
std::string RenderAgg(const AggSpec& a) {
  std::string s;
  s.append(AggFuncName(a.func));
  s.append("(").append(a.value_col).append(")");
  if (a.output_name != AggFuncName(a.func)) {
    s.append(" as ").append(a.output_name);
  }
  return s;
}

void RenderNode(const LogicalNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(LogicalOpName(n.op));
  switch (n.op) {
    case LogicalOp::kScan:
      out->append("(").append(std::to_string(n.table->num_rows()))
          .append(" rows)");
      break;
    case LogicalOp::kSelect:
    case LogicalOp::kHaving:
      out->append("(").append(n.filter.ToString()).append(")");
      break;
    case LogicalOp::kJoin:
      out->append("(" + n.left_key + " = " + n.right_key + ", " +
                  JoinTypeName(n.join_type) + ", " +
                  JoinStrategyName(n.join_strategy) + ")");
      break;
    case LogicalOp::kProject: {
      out->append("(");
      for (size_t i = 0; i < n.columns.size(); ++i) {
        if (i) out->append(", ");
        out->append(n.columns[i]);
      }
      out->append(")");
      break;
    }
    case LogicalOp::kGroupByAgg: {
      out->append("(");
      for (size_t i = 0; i < n.group_cols.size(); ++i) {
        if (i) out->append(", ");
        out->append(n.group_cols[i]);
      }
      out->append("; ");
      for (size_t i = 0; i < n.aggs.size(); ++i) {
        if (i) out->append(", ");
        out->append(RenderAgg(n.aggs[i]));
      }
      out->append(")");
      break;
    }
    case LogicalOp::kOrderBy:
      out->append("(" + n.order_col + (n.descending ? " desc)" : " asc)"));
      break;
    case LogicalOp::kLimit:
      out->append("(").append(std::to_string(n.limit)).append(", offset ")
          .append(std::to_string(n.offset)).append(")");
      break;
  }
  out->push_back('\n');
  for (const auto& c : n.children) RenderNode(*c, depth + 1, out);
}

}  // namespace

StatusOr<std::vector<PlanColumn>> ComputeNodeSchema(const LogicalNode& n) {
  return ValidateNode(n);
}

namespace {

void CollectTables(const LogicalNode& n, std::vector<const Table*>* out) {
  if (n.table != nullptr) out->push_back(n.table);
  for (const auto& c : n.children) CollectTables(*c, out);
}

}  // namespace

std::vector<const Table*> LogicalPlan::Tables() const {
  std::vector<const Table*> out;
  CollectTables(*root_, &out);
  return out;
}

std::string LogicalPlan::ToString() const {
  std::string out;
  RenderNode(*root_, 0, &out);
  return out;
}

QueryBuilder::QueryBuilder(const Table& table)
    : root_(std::make_unique<LogicalNode>()) {
  root_->op = LogicalOp::kScan;
  root_->table = &table;
}

namespace {

std::unique_ptr<LogicalNode> Wrap(std::unique_ptr<LogicalNode> child,
                                  LogicalOp op) {
  auto n = std::make_unique<LogicalNode>();
  n->op = op;
  n->children.push_back(std::move(child));
  return n;
}

}  // namespace

// Every fluent method no-ops on a consumed builder (root_ == nullptr after
// Build() moved it out, or after the builder was joined into another plan):
// root_ stays null and the next Build() reports InvalidArgument instead of
// dereferencing it.

QueryBuilder& QueryBuilder::Filter(Expr expr) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kSelect);
  root_->filter = std::move(expr);
  return *this;
}

QueryBuilder& QueryBuilder::Select(Predicate pred) {
  return Filter(pred.ToExpr());
}

QueryBuilder& QueryBuilder::Select(std::vector<Predicate> conjunction) {
  // An empty conjunction stays an empty And, which Build() rejects with the
  // historical "empty predicate conjunction" error.
  Expr e;
  e.kind = Expr::Kind::kAnd;
  for (const Predicate& p : conjunction) e.children.push_back(p.ToExpr());
  if (e.children.size() == 1) {
    Expr only = std::move(e.children[0]);
    return Filter(std::move(only));
  }
  return Filter(std::move(e));
}

QueryBuilder& QueryBuilder::Having(Expr expr) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kHaving);
  root_->filter = std::move(expr);
  return *this;
}

QueryBuilder& QueryBuilder::Join(const Table& right, std::string left_key,
                                 std::string right_key, JoinStrategy strategy) {
  return Join(QueryBuilder(right), std::move(left_key), std::move(right_key),
              JoinType::kInner, strategy);
}

QueryBuilder& QueryBuilder::Join(QueryBuilder right, std::string left_key,
                                 std::string right_key, JoinStrategy strategy) {
  return Join(std::move(right), std::move(left_key), std::move(right_key),
              JoinType::kInner, strategy);
}

QueryBuilder& QueryBuilder::Join(const Table& right, std::string left_key,
                                 std::string right_key, JoinType type,
                                 JoinStrategy strategy) {
  return Join(QueryBuilder(right), std::move(left_key), std::move(right_key),
              type, strategy);
}

QueryBuilder& QueryBuilder::Join(QueryBuilder right, std::string left_key,
                                 std::string right_key, JoinType type,
                                 JoinStrategy strategy) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kJoin);
  root_->children.push_back(std::move(right.root_));
  root_->left_key = std::move(left_key);
  root_->right_key = std::move(right_key);
  root_->join_type = type;
  root_->join_strategy = strategy;
  return *this;
}

QueryBuilder& QueryBuilder::Project(std::vector<std::string> columns) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kProject);
  root_->columns = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::GroupByAgg(std::vector<std::string> group_cols,
                                       std::vector<AggSpec> aggs) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kGroupByAgg);
  root_->group_cols = std::move(group_cols);
  root_->aggs = std::move(aggs);
  return *this;
}

QueryBuilder& QueryBuilder::GroupBySum(std::string group_col,
                                       std::string value_col) {
  return GroupByAgg({std::move(group_col)},
                    {Agg::Sum(std::move(value_col)), Agg::Count()});
}

QueryBuilder& QueryBuilder::OrderBy(std::string column, bool descending) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kOrderBy);
  root_->order_col = std::move(column);
  root_->descending = descending;
  return *this;
}

QueryBuilder& QueryBuilder::Limit(size_t n, size_t offset) {
  if (root_ == nullptr) return *this;
  root_ = Wrap(std::move(root_), LogicalOp::kLimit);
  root_->limit = n;
  root_->offset = offset;
  return *this;
}

StatusOr<LogicalPlan> QueryBuilder::Build() {
  if (root_ == nullptr) {
    return Status::InvalidArgument(
        "QueryBuilder already consumed by Build()");
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<PlanColumn> schema, ValidateNode(*root_));
  return LogicalPlan(std::move(root_), std::move(schema));
}

}  // namespace ccdb
