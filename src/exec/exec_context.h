// ExecOptions is the user-facing execution knob set (chunking +
// parallelism) that rides PlannerOptions from QueryBuilder-built plans into
// the Planner; ExecContext is its resolved, operator-facing form owned by
// the PhysicalPlan. Operators hold a borrowed pointer and draw workers from
// ctx->pool via ParallelFor — every operator in a plan (and every plan that
// doesn't pass its own pool) shares one process-wide pool, so concurrent
// queries cannot oversubscribe the machine.
#ifndef CCDB_EXEC_EXEC_CONTEXT_H_
#define CCDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace ccdb {

class ThreadPool;
class SharedScanProvider;  // exec/shared_scan.h

/// Per-query scheduling state the serving layer threads through the
/// executor. Lives in exec/ (not serve/) because operators consult it at
/// every morsel boundary; serve/ owns instances, exec/ only reads them.
/// All members are safe to poll from any worker thread.
struct ScheduleContext {
  /// Absolute deadline; time_point::max() (default) means none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Set (by Server::Cancel or a client ticket) to stop the query at the
  /// next morsel boundary with StatusCode::kCancelled.
  std::atomic<bool> cancelled{false};

  /// Morsels a worker drive runs before yielding its pool worker to the
  /// back of the FIFO queue (weighted round-robin at morsel granularity:
  /// a query's weight is its quantum). 0 disables yielding — the plan
  /// holds its workers until done, the pre-serving behavior.
  uint32_t morsel_quantum = 0;

  /// Number of queries currently executing on the shared pool (owned by the
  /// Server). Yielding is pointless — pure queue churn — when this reads 1,
  /// so the hook only fires with it > 1. Null means "unknown, always yield
  /// when a quantum is set".
  const std::atomic<size_t>* active_queries = nullptr;

  /// Morsels completed under this context (fairness accounting + quantum).
  std::atomic<uint64_t> morsels{0};

  /// Cancellation / deadline poll, cheap enough for every morsel: one
  /// relaxed load, plus a clock read only when a deadline is set.
  Status Check() const {
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }

  /// True when the worker that just finished a morsel should yield its pool
  /// slot: a quantum is set, this query has run a full quantum since the
  /// last yield, and other queries are actually waiting for workers.
  bool YieldAfterMorsel() {
    uint64_t done = morsels.fetch_add(1, std::memory_order_relaxed) + 1;
    if (morsel_quantum == 0) return false;
    if (active_queries != nullptr &&
        active_queries->load(std::memory_order_relaxed) <= 1) {
      return false;
    }
    return done % morsel_quantum == 0;
  }
};

/// How the planner may use exchange operators (src/dist/) when
/// `ExecOptions::partitions > 1`. Lives here (not in dist/) because the
/// knob rides ExecOptions through PlannerOptions; dist/ depends on exec/,
/// never the reverse.
enum class ExchangePolicy : uint8_t {
  kOff,    ///< never insert exchanges; plans are byte-identical to the
           ///< single-context engine regardless of `partitions`
  kAuto,   ///< cost-based: exchange only where the transfer term plus the
           ///< per-partition §3.4 cost beats the colocated plan (default)
  kForce,  ///< always exchange partitionable joins/aggregations; strategy
           ///< choice (repartition vs broadcast) stays transfer-cost-based
};

/// Data-movement strategy of one exchange node. kNone in ExecOptions means
/// "let the transfer model choose"; in ExchangeNodeInfo it never appears.
enum class ExchangeStrategy : uint8_t {
  kNone,         ///< no forced strategy (options) / no exchange (planner)
  kRepartition,  ///< hash-partition both inputs on the key
  kBroadcast,    ///< replicate the small side, forward the large side
};

/// Execution knobs, orthogonal to plan shape: the same LogicalPlan runs at
/// any parallelism with identical results (modulo row order of unordered
/// group-by output at parallelism > 1).
struct ExecOptions {
  /// Rows per scan chunk. 0 (default) picks a cache-sized chunk from the
  /// machine profile (see DefaultScanChunkRows); SIZE_MAX executes
  /// whole-BAT-at-a-time, the paper's full-materialization model.
  size_t scan_chunk_rows = 0;

  /// Worker threads operators may use (morsels, radix partitions, group-by
  /// partials). 1 = serial execution, byte-identical to the pre-parallel
  /// engine; 0 = all hardware threads.
  size_t parallelism = 1;

  /// Pool to draw workers from; null uses ThreadPool::Shared() when
  /// parallelism > 1. The pool must outlive plan execution.
  ThreadPool* pool = nullptr;

  /// Optional scheduling state (deadline / cancellation / fair-share
  /// quantum), owned by the caller (typically serve::Server) and outliving
  /// plan execution. Null runs unscheduled.
  ScheduleContext* sched = nullptr;

  /// Optional shared-scan provider (exec/shared_scan.h). When bound, the
  /// planner lowers table scans to SharedScanOps that attach to the
  /// provider's cooperative per-table cursors, letting concurrent plans
  /// share one pass over a hot table. Null (default) lowers independent
  /// ScanOps — byte-identical to the provider-free engine. Owned by the
  /// caller (typically serve::Server), must outlive plan execution.
  SharedScanProvider* shared_scans = nullptr;

  /// Shared-nothing worker partitions for exchange-lowered plans
  /// (src/dist/exchange.h). 1 (default) inserts no exchange operators and
  /// is byte-identical to the single-context engine; N > 1 lets the
  /// planner split partitionable joins/aggregations across N worker
  /// contexts, pricing the data movement with the CostModel transfer term.
  size_t partitions = 1;

  /// When and how the planner may exchange (see ExchangePolicy). Ignored
  /// while `partitions <= 1`.
  ExchangePolicy exchange = ExchangePolicy::kAuto;

  /// Force a specific exchange strategy (bench A/B + tests). kNone
  /// (default) picks the cheaper estimated transfer per node.
  ExchangeStrategy exchange_strategy = ExchangeStrategy::kNone;

  /// Route exchange chunks through the length-prefixed wire format
  /// (dist/wire.h, SerializedChunkTransport) instead of moving them as
  /// in-process objects. Same results, pays the serialization cost — the
  /// rehearsal mode for cross-process workers.
  bool serialize_exchange = false;
};

/// Resolved ExecOptions (owned by PhysicalPlan, borrowed by operators).
struct ExecContext {
  ThreadPool* pool = nullptr;
  size_t parallelism = 1;
  ScheduleContext* sched = nullptr;
  SharedScanProvider* shared_scans = nullptr;
  /// Resolved partition count (>= 1); exchange operators were inserted by
  /// the planner iff some ExchangeNodeInfo exists, so operators only read
  /// this for sizing decisions.
  size_t partitions = 1;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }

  /// Morsel count for an n-row input: enough to busy `parallelism` workers,
  /// but never morsels smaller than `min_rows`.
  size_t ShardsFor(size_t n, size_t min_rows) const {
    if (!parallel() || n < 2 * min_rows) return 1;
    size_t by_rows = n / min_rows;
    return by_rows < parallelism ? by_rows : parallelism;
  }
};

}  // namespace ccdb

#endif  // CCDB_EXEC_EXEC_CONTEXT_H_
