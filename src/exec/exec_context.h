// ExecOptions is the user-facing execution knob set (chunking +
// parallelism) that rides PlannerOptions from QueryBuilder-built plans into
// the Planner; ExecContext is its resolved, operator-facing form owned by
// the PhysicalPlan. Operators hold a borrowed pointer and draw workers from
// ctx->pool via ParallelFor — every operator in a plan (and every plan that
// doesn't pass its own pool) shares one process-wide pool, so concurrent
// queries cannot oversubscribe the machine.
#ifndef CCDB_EXEC_EXEC_CONTEXT_H_
#define CCDB_EXEC_EXEC_CONTEXT_H_

#include <cstddef>
#include <cstdint>

namespace ccdb {

class ThreadPool;

/// Execution knobs, orthogonal to plan shape: the same LogicalPlan runs at
/// any parallelism with identical results (modulo row order of unordered
/// group-by output at parallelism > 1).
struct ExecOptions {
  /// Rows per scan chunk. 0 (default) picks a cache-sized chunk from the
  /// machine profile (see DefaultScanChunkRows); SIZE_MAX executes
  /// whole-BAT-at-a-time, the paper's full-materialization model.
  size_t scan_chunk_rows = 0;

  /// Worker threads operators may use (morsels, radix partitions, group-by
  /// partials). 1 = serial execution, byte-identical to the pre-parallel
  /// engine; 0 = all hardware threads.
  size_t parallelism = 1;

  /// Pool to draw workers from; null uses ThreadPool::Shared() when
  /// parallelism > 1. The pool must outlive plan execution.
  ThreadPool* pool = nullptr;
};

/// Resolved ExecOptions (owned by PhysicalPlan, borrowed by operators).
struct ExecContext {
  ThreadPool* pool = nullptr;
  size_t parallelism = 1;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }

  /// Morsel count for an n-row input: enough to busy `parallelism` workers,
  /// but never morsels smaller than `min_rows`.
  size_t ShardsFor(size_t n, size_t min_rows) const {
    if (!parallel() || n < 2 * min_rows) return 1;
    size_t by_rows = n / min_rows;
    return by_rows < parallelism ? by_rows : parallelism;
  }
};

}  // namespace ccdb

#endif  // CCDB_EXEC_EXEC_CONTEXT_H_
