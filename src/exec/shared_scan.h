// Shared scans: one cooperative cursor per hot table, fanned out to every
// concurrently-executing plan that reads it — the serving-layer answer to
// the paper's memory-bottleneck thesis. With N in-flight analytic queries
// over the same BATs, independent ScanOps multiply exactly the memory
// traffic the paper says to avoid; a shared scan drives each table
// chunk-by-chunk once and hands every chunk to all attached plans'
// filters.
//
// This header is the exec-side seam. It defines:
//
//  * SharedScanProvider / SharedScanParticipant — the abstract protocol a
//    registry implements (the concrete cooperative-cursor registry lives in
//    serve/shared_scan.h; exec/ stays free of serving dependencies). A
//    plan's scan operator Attach()es per execution and pulls chunks from
//    the participant; detach is the participant's destruction, so cancel /
//    deadline / operator teardown all detach the same way.
//
//  * SharedScanOp — the physical operator the planner lowers `kScan` (and
//    fused `kSelect(kScan)`) nodes to when ExecContext::shared_scans is
//    bound. Emits exactly what ScanOp (+ SelectOp) would: same chunk
//    layout, same candidate lists, byte-identical results. The filter, if
//    any, travels to the provider so subsuming filters of co-attached
//    plans can share candidate lists.
//
//  * MakeTableScanChunk / EvalFilterPositions / NarrowFilterPositions —
//    the chunk-building and filter-evaluation primitives (implemented in
//    operator.cc next to ScanOp/SelectOp, whose behavior they must mirror
//    exactly) that a provider uses to drive a scan itself.
#ifndef CCDB_EXEC_SHARED_SCAN_H_
#define CCDB_EXEC_SHARED_SCAN_H_

#include <memory>
#include <optional>

#include "exec/expr.h"
#include "exec/operator.h"

namespace ccdb {

/// One plan's attachment to a shared table cursor, owned by the consuming
/// operator. NextChunk() produces the same sequence of chunks the plan's
/// private ScanOp(+SelectOp) would — every table chunk in order, filtered
/// by the filter given at Attach() — regardless of how many other
/// participants share the cursor. Destruction detaches: a participant may
/// be dropped at any point (cancel, deadline, Limit satisfied) without
/// affecting other participants' results.
class SharedScanParticipant {
 public:
  virtual ~SharedScanParticipant() = default;

  /// Fills `out` with the next (possibly zero-row) chunk; false when the
  /// table is exhausted. Blocks only while another participant drives the
  /// chunk this one needs next, and honors this plan's own
  /// ScheduleContext (cancel / deadline surface as the usual statuses).
  virtual StatusOr<bool> NextChunk(Chunk* out) = 0;
};

/// A per-table cursor registry. Attach() registers interest in scanning
/// `table`; the provider coordinates all attached participants so the
/// table is read once per "pass" and each chunk is fanned out, evaluating
/// each distinct filter once per chunk (and subsumed filters by narrowing
/// a donor's candidate list instead of re-reading the column).
class SharedScanProvider {
 public:
  virtual ~SharedScanProvider() = default;

  /// Attaches a scan of `table` with an optional *normalized* filter
  /// (NormalizeExpr + OrderConjunctsBySelectivity form, as SelectOp
  /// lowers; null = unfiltered). The provider copies the filter. `ctx`
  /// supplies the participant's scheduling state and parallel-eval budget
  /// and must outlive the participant; `chunk_rows` is the scan chunk
  /// size the plan was lowered with.
  virtual StatusOr<std::unique_ptr<SharedScanParticipant>> Attach(
      const Table* table, const Expr* normalized_filter, size_t chunk_rows,
      const ExecContext* ctx) = 0;
};

/// Leaf operator: a table scan (with an optional fused filter) that pulls
/// its chunks from a SharedScanProvider instead of reading the table
/// itself. Open() attaches, Close() (and destruction) detaches. Output is
/// byte-identical to ScanOp followed by SelectOp with the same expression.
class SharedScanOp : public Operator {
 public:
  /// `filter`: nullopt scans unfiltered. The expression is normalized and
  /// selectivity-ordered here (same lowering as SelectOp), so the provider
  /// always sees canonical trees — subsumption checks rely on NNF.
  SharedScanOp(const Table* table, std::optional<Expr> filter,
               size_t chunk_rows, SharedScanProvider* provider,
               const ExecContext* ctx);

  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

  /// The normalized filter this scan applies (nullopt: none) — the
  /// planner's ExplainFilters() report reads this, like SelectOp::expr().
  const std::optional<Expr>& expr() const { return expr_; }

 private:
  const Table* table_;
  std::optional<Expr> expr_;
  size_t chunk_rows_;
  SharedScanProvider* provider_;
  const ExecContext* ctx_;
  std::unique_ptr<SharedScanParticipant> part_;
};

/// Builds the chunk ScanOp would emit for rows [start, start+rows) of
/// `table`: every table column lazy over one dense candidate list.
/// Providers drive scans with this so shared and private chunks are
/// structurally identical.
Chunk MakeTableScanChunk(const Table& table, oid_t start, size_t rows);

/// Evaluates a normalized filter over a whole chunk, returning ascending,
/// duplicate-free chunk positions — exactly SelectOp's evaluation (same
/// kernels, same morsel-parallel splitting under `ctx`, same NaN and
/// encoded-string semantics). Implemented in operator.cc.
StatusOr<std::vector<uint32_t>> EvalFilterPositions(const Chunk& chunk,
                                                    const Expr& normalized,
                                                    const ExecContext* ctx);

/// Narrows an ascending position list by a normalized filter: returns the
/// positions that also satisfy it, preserving order. When ExprSubsumes(a,
/// b) holds, NarrowFilterPositions(chunk, a, EvalFilterPositions(chunk, b))
/// equals EvalFilterPositions(chunk, a) — the identity candidate-list
/// sharing is built on. Implemented in operator.cc.
StatusOr<std::vector<uint32_t>> NarrowFilterPositions(
    const Chunk& chunk, const Expr& normalized,
    std::vector<uint32_t> positions, const ExecContext* ctx);

}  // namespace ccdb

#endif  // CCDB_EXEC_SHARED_SCAN_H_
