// Physical join execution: dispatches a JoinPlan (model/strategy.h) to the
// concrete algorithm and exposes table-level equi-join on u32 columns.
#ifndef CCDB_EXEC_OPS_H_
#define CCDB_EXEC_OPS_H_

#include <span>
#include <vector>

#include "algo/join_common.h"
#include "exec/table.h"
#include "model/strategy.h"

namespace ccdb {

/// Runs the join described by `plan` on raw BUN spans. `stats` (optional)
/// receives phase timings.
StatusOr<std::vector<Bun>> ExecuteJoin(std::span<const Bun> l,
                                       std::span<const Bun> r,
                                       const JoinPlan& plan,
                                       JoinStats* stats = nullptr);

/// Equi-join `left.left_col == right.right_col` (both u32 columns).
/// Returns the [left OID, right OID] join index. Strategy defaults to the
/// model-driven best plan for the inner cardinality.
StatusOr<std::vector<Bun>> JoinTables(
    const Table& left, const std::string& left_col, const Table& right,
    const std::string& right_col,
    JoinStrategy strategy = JoinStrategy::kBest,
    const MachineProfile& profile = MachineProfile::GenericX86(),
    JoinStats* stats = nullptr);

/// Extracts the [OID, u32-value] BUNs of a table column (the join input
/// representation of §3.4.1).
StatusOr<std::vector<Bun>> ColumnBuns(const Table& table,
                                      const std::string& col);

/// One output column of a materialized join (string values are decoded).
struct MaterializedColumn {
  std::string name;
  std::vector<std::string> str_values;   // filled for string columns
  std::vector<double> f64_values;        // filled for f64 columns
  std::vector<uint32_t> u32_values;      // filled for integral columns
  PhysType type = PhysType::kU32;
};

/// Materializes the projection of a join result: for each [left OID,
/// right OID] pair of `join_index`, fetches `left_cols` from `left` and
/// `right_cols` from `right` via positional lookup — the
/// tuple-reconstruction phase that §3.1 (footnote 2) describes as
/// "additional tuple-reconstruction joins", free on void-headed BATs.
StatusOr<std::vector<MaterializedColumn>> MaterializeJoin(
    const Table& left, const std::vector<std::string>& left_cols,
    const Table& right, const std::vector<std::string>& right_cols,
    std::span<const Bun> join_index);

}  // namespace ccdb

#endif  // CCDB_EXEC_OPS_H_
