// Legacy free-function exec API, kept as thin compatibility wrappers over
// the composable query-plan layer (exec/plan.h + exec/operator.h +
// model/planner.h). New code should build a QueryBuilder plan; these
// entry points remain for callers that want one join or one projection
// without a plan.
#ifndef CCDB_EXEC_OPS_H_
#define CCDB_EXEC_OPS_H_

#include <span>
#include <vector>

#include "algo/join_common.h"
#include "exec/result.h"
#include "exec/table.h"
#include "model/strategy.h"

namespace ccdb {

/// Runs the join described by `plan` on raw BUN spans. `stats` (optional)
/// receives phase timings. Wrapper over ExecuteJoinPlan (exec/operator.h).
StatusOr<std::vector<Bun>> ExecuteJoin(std::span<const Bun> l,
                                       std::span<const Bun> r,
                                       const JoinPlan& plan,
                                       JoinStats* stats = nullptr);

/// Equi-join `left.left_col == right.right_col` (both u32 columns).
/// Returns the [left OID, right OID] join index. Strategy defaults to the
/// model-driven best plan for the inner cardinality. Wrapper over a
/// Scan-Join operator pipeline.
StatusOr<std::vector<Bun>> JoinTables(
    const Table& left, const std::string& left_col, const Table& right,
    const std::string& right_col,
    JoinStrategy strategy = JoinStrategy::kBest,
    const MachineProfile& profile = MachineProfile::GenericX86(),
    JoinStats* stats = nullptr);

/// Extracts the [OID, u32-value] BUNs of a table column (the join input
/// representation of §3.4.1).
StatusOr<std::vector<Bun>> ColumnBuns(const Table& table,
                                      const std::string& col);

/// Materializes the projection of a join result: for each [left OID,
/// right OID] pair of `join_index`, fetches `left_cols` from `left` and
/// `right_cols` from `right` via positional lookup — the
/// tuple-reconstruction phase that §3.1 (footnote 2) describes as
/// "additional tuple-reconstruction joins", free on void-headed BATs.
/// Wrapper over Chunk candidate-list materialization.
StatusOr<std::vector<MaterializedColumn>> MaterializeJoin(
    const Table& left, const std::vector<std::string>& left_cols,
    const Table& right, const std::vector<std::string>& right_cols,
    std::span<const Bun> join_index);

}  // namespace ccdb

#endif  // CCDB_EXEC_OPS_H_
