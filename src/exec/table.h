// Table: a vertically decomposed relational table with automatic
// byte-encoding of low-cardinality string columns — the storage design of
// §3.1 / Fig. 4. Every column is a BAT with a void (virtual OID) head;
// string columns whose domain fits 1-2 bytes are stored as their code
// column plus a dictionary, and selections on them are *remapped to codes*
// rather than decoding tuples.
#ifndef CCDB_EXEC_TABLE_H_
#define CCDB_EXEC_TABLE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/aggregate.h"
#include "bat/bat.h"
#include "bat/dsm.h"
#include "bat/encoding.h"
#include "exec/schema.h"
#include "model/stats.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ccdb {

class Table {
 public:
  /// Decomposes `rows` into BATs; when `auto_encode` is set, string columns
  /// with domain cardinality <= 65536 are byte-encoded.
  static StatusOr<Table> FromRowStore(const RowStore& rows,
                                      bool auto_encode = true);

  const TableSchema& schema() const { return schema_; }
  size_t num_rows() const { return rows_; }
  size_t num_columns() const { return schema_.num_fields(); }

  /// The stored BAT of column `i`: for encoded string columns this is the
  /// code column (kU8/kU16), otherwise the raw value column.
  const Bat& column_bat(size_t i) const { return bats_[i]; }
  bool is_encoded(size_t i) const { return dicts_[i].has_value(); }
  const StrDictionary& dict(size_t i) const { return *dicts_[i]; }

  /// Bytes stored per tuple of column `i` (the scan stride for that column).
  size_t column_value_bytes(size_t i) const;

  /// Total heap bytes across all columns; contrast with
  /// schema().record_width() * num_rows() for the NSM footprint.
  size_t MemoryBytes() const;

  // --- statistics (model/stats.h) ------------------------------------------

  /// Per-column statistics, computed lazily on first use (one scan of the
  /// column) and cached; AppendRows invalidates the cache. Thread-safe:
  /// concurrent planners may ask for stats on a shared table.
  StatusOr<ColumnStats> stats(size_t i) const;
  StatusOr<ColumnStats> stats(const std::string& col) const;

  /// Appends `extra` rows (same schema, by name and type) and invalidates
  /// the cached statistics. This is the correctness-oriented ingest hook the
  /// stats cache invalidation contract is written against: it rebuilds the
  /// decomposed columns (re-encoding string domains), so plans holding lazy
  /// references into the old BATs must not be executing concurrently.
  Status AppendRows(const RowStore& extra);

  /// Monotonic ingest counter, bumped by every AppendRows. It lives in the
  /// (address-stable) stats cache, so a reader holding the table pointer
  /// observes the bump even across the rebuild — this is the invalidation
  /// signal the serving layer's plan cache keys on. Copies restart at 0
  /// (they also get a fresh stats cache).
  uint64_t data_version() const {
    return stats_->data_version.load(std::memory_order_acquire);
  }

  /// A token that expires when this table is destroyed (it aliases the
  /// address-stable stats cache). Holders of raw `const Table*` — the plan
  /// cache, the shared-scan registry — use it to *assert* the documented
  /// lifetime contract (tables outlive the Server) in debug builds instead
  /// of silently dereferencing a dangling pointer. Best-effort: moving a
  /// table transfers the cache, so a moved-from table's token expires only
  /// when the destination dies.
  std::weak_ptr<const void> liveness() const { return stats_; }

  // --- operators (positional OIDs, void-head convention) -------------------

  /// OIDs where string column `col` == `value`. For an encoded column this
  /// remaps the predicate to a code and scans 1-2 bytes per tuple (§3.1);
  /// an unknown value yields an empty result, not an error.
  StatusOr<std::vector<oid_t>> SelectEqStr(const std::string& col,
                                           std::string_view value) const;

  /// OIDs where u32 column `col` is in [lo, hi].
  StatusOr<std::vector<oid_t>> SelectRangeU32(const std::string& col,
                                              uint32_t lo, uint32_t hi) const;

  /// OIDs where f64 column `col` is in [lo, hi].
  StatusOr<std::vector<oid_t>> SelectRangeF64(const std::string& col,
                                              double lo, double hi) const;

  /// Group by an integral (or encoded string) column, summing a u32 column.
  /// For encoded group columns the result keys are codes; use
  /// DecodeGroupKey to map back.
  StatusOr<GroupAggregates> GroupSumU32(const std::string& group_col,
                                        const std::string& value_col) const;
  StatusOr<std::string> DecodeGroupKey(const std::string& group_col,
                                       uint32_t key) const;

  /// Materializes string values of column `col` for the given OIDs
  /// (decoding via the dictionary when encoded) — the projection path.
  StatusOr<std::vector<std::string>> GatherStr(
      const std::string& col, std::span<const oid_t> oids) const;
  StatusOr<std::vector<double>> GatherF64(const std::string& col,
                                          std::span<const oid_t> oids) const;
  StatusOr<std::vector<uint32_t>> GatherU32(
      const std::string& col, std::span<const oid_t> oids) const;

  // Copies get a fresh (empty) stats cache — a copied-then-appended table
  // must never publish its stats through the original's cache. Moves
  // transfer the cache.
  Table() = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table& o)
      : schema_(o.schema_),
        rows_(o.rows_),
        bats_(o.bats_),
        dicts_(o.dicts_) {}
  Table& operator=(const Table& o) {
    if (this != &o) {
      schema_ = o.schema_;
      rows_ = o.rows_;
      bats_ = o.bats_;
      dicts_ = o.dicts_;
      stats_ = std::make_shared<StatsCache>();
    }
    return *this;
  }

 private:
  /// Lazily filled per-column stats, shared_ptr so the table stays movable;
  /// all access goes through the mutex. The object is address-stable for
  /// the table's lifetime: AppendRows clears `cols` in place (holding `mu`
  /// for its whole rebuild, which also serializes it against concurrent
  /// lazy fills reading the old BATs) rather than swapping in a fresh
  /// cache, so a stats() call blocked on `mu` never dereferences a
  /// destroyed cache.
  struct StatsCache {
    Mutex mu;
    std::vector<std::optional<ColumnStats>> cols CCDB_GUARDED_BY(mu);
    /// Atomic, not guarded: data_version() reads it lock-free while
    /// AppendRows may be mid-rebuild under `mu`.
    std::atomic<uint64_t> data_version{0};
  };

  TableSchema schema_;
  size_t rows_ = 0;
  std::vector<Bat> bats_;
  std::vector<std::optional<StrDictionary>> dicts_;
  std::shared_ptr<StatsCache> stats_ = std::make_shared<StatsCache>();

  StatusOr<size_t> Col(const std::string& name) const {
    return schema_.FieldIndex(name);
  }

  /// The lazy fill behind both stats() overloads.
  StatusOr<ColumnStats> StatsLocked(size_t i) const CCDB_REQUIRES(stats_->mu);
};

}  // namespace ccdb

#endif  // CCDB_EXEC_TABLE_H_
