#include "exec/operator.h"

#include <algorithm>
#include <functional>
#include <string_view>

#include "algo/bat_algebra.h"
#include "algo/partitioned_hash_join.h"
#include "algo/radix_join.h"
#include "algo/radix_sort.h"
#include "algo/simple_hash_join.h"
#include "algo/sort_merge_join.h"
#include "exec/shared_scan.h"
#include "util/thread_pool.h"

namespace ccdb {
namespace {

/// Smallest worthwhile morsel: below this, task dispatch costs more than
/// the memory traffic it parallelizes.
constexpr size_t kMorselRows = 4096;

size_t CtxShards(const ExecContext* ctx, size_t n) {
  return ctx == nullptr ? 1 : ctx->ShardsFor(n, kMorselRows);
}

ThreadPool* CtxPool(const ExecContext* ctx) {
  return ctx == nullptr ? nullptr : ctx->pool;
}

size_t CtxParallelism(const ExecContext* ctx) {
  return ctx == nullptr ? 1 : ctx->parallelism;
}

/// ParallelFor wired to the context's ScheduleContext: every morsel polls
/// cancellation/deadline before running, and worker drives yield their pool
/// slot after a full quantum so concurrently executing plans interleave on
/// the shared pool. With no sched attached this degenerates to plain
/// ParallelFor (hooks stay null — zero overhead on the single-query path).
Status ExecParallelFor(const ExecContext* ctx, size_t shards,
                       const std::function<Status(size_t)>& body) {
  ScheduleContext* sched = ctx == nullptr ? nullptr : ctx->sched;
  if (sched == nullptr) {
    return ParallelFor(CtxPool(ctx), CtxParallelism(ctx), shards, body);
  }
  ParallelForHooks hooks;
  hooks.before_morsel = [sched] { return sched->Check(); };
  hooks.yield_after_morsel = [sched] { return sched->YieldAfterMorsel(); };
  return ParallelFor(CtxPool(ctx), CtxParallelism(ctx), shards, body, &hooks);
}

/// Morsel-boundary poll for serial stretches of an operator (chunk
/// pipelining, single-shard paths) that never enter ExecParallelFor.
Status SchedCheck(const ExecContext* ctx) {
  if (ctx == nullptr || ctx->sched == nullptr) return Status::Ok();
  return ctx->sched->Check();
}

}  // namespace
}  // namespace ccdb

namespace ccdb {

StatusOr<std::vector<Bun>> ExecuteJoinPlan(std::span<const Bun> l,
                                           std::span<const Bun> r,
                                           const JoinPlan& plan,
                                           JoinStats* stats) {
  DirectMemory mem;
  switch (plan.strategy) {
    case JoinStrategy::kSortMerge:
      return SortMergeJoin(l, r, mem, stats);
    case JoinStrategy::kSimpleHash:
      return SimpleHashJoin(l, r, mem, stats);
    default:
      break;
  }
  if (plan.use_radix_join) {
    return RadixJoin(l, r, plan.bits, plan.passes, mem, stats);
  }
  return PartitionedHashJoin(l, r, plan.bits, plan.passes, mem, stats);
}

// --- Chunk -------------------------------------------------------------------

StatusOr<size_t> Chunk::Find(const std::string& name) const {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == name) return i;
  }
  return Status::NotFound("no chunk column named " + name);
}

PhysType Chunk::TypeOf(size_t c) const {
  const ChunkColumn& col = cols[c];
  PhysType t;
  if (col.lazy()) {
    if (col.base->is_encoded(col.base_col)) return PhysType::kStr;
    t = col.base->column_bat(col.base_col).tail().type();
  } else {
    t = col.owned->type();
  }
  switch (t) {
    case PhysType::kVoid:
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
    case PhysType::kI32:
      return PhysType::kU32;
    default:
      return t;
  }
}

namespace {

std::span<const oid_t> OidSpan(const Candidates& c) {
  CCDB_DCHECK(!c.dense());
  return {c.oids->data(), c.oids->size()};
}

Status RequireIntegral(const Column& tail, const char* what) {
  switch (tail.type()) {
    case PhysType::kVoid:
    case PhysType::kU8:
    case PhysType::kU16:
    case PhysType::kU32:
      return Status::Ok();
    default:
      return Status::InvalidArgument(std::string(what) +
                                     " requires an integral column, got " +
                                     PhysTypeName(tail.type()));
  }
}

}  // namespace

StatusOr<std::vector<uint32_t>> Chunk::GatherU32(size_t c) const {
  const ChunkColumn& col = cols[c];
  if (!col.lazy()) {
    CCDB_RETURN_IF_ERROR(RequireIntegral(*col.owned, "GatherU32"));
    if (col.owned->type() == PhysType::kU32) {
      auto s = col.owned->Span<uint32_t>();
      return std::vector<uint32_t>(s.begin(), s.end());
    }
    std::vector<uint32_t> out(col.owned->size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<uint32_t>(col.owned->GetIntegral(i));
    }
    return out;
  }
  const Bat& bat = col.base->column_bat(col.base_col);
  const Candidates& cd = cands[col.cand_slot];
  CCDB_RETURN_IF_ERROR(RequireIntegral(bat.tail(), "GatherU32"));
  if (!cd.dense()) {
    // Candidate projection kernel: touch only qualifying BUNs.
    CCDB_ASSIGN_OR_RETURN(Bat proj, BatProject(bat, OidSpan(cd)));
    auto s = proj.tail().Span<uint32_t>();
    return std::vector<uint32_t>(s.begin(), s.end());
  }
  if (cd.base + cd.count > bat.size()) {
    return Status::OutOfRange("dense candidates beyond BAT");
  }
  std::vector<uint32_t> out(cd.count);
  if (bat.tail().type() == PhysType::kU32) {
    auto s = bat.tail().Span<uint32_t>();
    std::copy_n(s.begin() + cd.base, cd.count, out.begin());
  } else {
    for (size_t i = 0; i < cd.count; ++i) {
      out[i] = static_cast<uint32_t>(bat.tail().GetIntegral(cd.base + i));
    }
  }
  return out;
}

StatusOr<std::vector<int64_t>> Chunk::GatherI64(size_t c) const {
  const ChunkColumn& col = cols[c];
  if (!col.lazy() && col.owned->type() == PhysType::kI64) {
    auto s = col.owned->Span<int64_t>();
    return std::vector<int64_t>(s.begin(), s.end());
  }
  if (col.lazy() &&
      col.base->column_bat(col.base_col).tail().type() == PhysType::kI64) {
    auto v = col.base->column_bat(col.base_col).tail().Span<int64_t>();
    const Candidates& cd = cands[col.cand_slot];
    std::vector<int64_t> out(cd.count);
    for (size_t i = 0; i < cd.count; ++i) {
      oid_t o = cd.Get(i);
      if (o >= v.size()) return Status::OutOfRange("candidate beyond column");
      out[i] = v[o];
    }
    return out;
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> narrow, GatherU32(c));
  return std::vector<int64_t>(narrow.begin(), narrow.end());
}

StatusOr<std::vector<double>> Chunk::GatherF64(size_t c) const {
  const ChunkColumn& col = cols[c];
  if (!col.lazy()) {
    if (col.owned->type() != PhysType::kF64) {
      return Status::InvalidArgument("GatherF64 on non-f64 column " +
                                     col.name);
    }
    auto s = col.owned->Span<double>();
    return std::vector<double>(s.begin(), s.end());
  }
  const Column& tail = col.base->column_bat(col.base_col).tail();
  if (tail.type() != PhysType::kF64) {
    return Status::InvalidArgument("GatherF64 on non-f64 column " + col.name);
  }
  auto v = tail.Span<double>();
  const Candidates& cd = cands[col.cand_slot];
  std::vector<double> out(cd.count);
  for (size_t i = 0; i < cd.count; ++i) {
    oid_t o = cd.Get(i);
    if (o >= v.size()) return Status::OutOfRange("candidate beyond column");
    out[i] = v[o];
  }
  return out;
}

StatusOr<std::vector<std::string>> Chunk::GatherStr(size_t c) const {
  const ChunkColumn& col = cols[c];
  if (!col.lazy()) {
    if (col.owned->type() != PhysType::kStr) {
      return Status::InvalidArgument("GatherStr on non-string column " +
                                     col.name);
    }
    std::vector<std::string> out(col.owned->size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = std::string(col.owned->GetStr(i));
    }
    return out;
  }
  const Candidates& cd = cands[col.cand_slot];
  if (cd.dense()) {
    std::vector<oid_t> oids(cd.count);
    for (size_t i = 0; i < cd.count; ++i) oids[i] = cd.Get(i);
    return col.base->GatherStr(col.base->schema().field(col.base_col).name,
                               oids);
  }
  return col.base->GatherStr(col.base->schema().field(col.base_col).name,
                             OidSpan(cd));
}

namespace {

StatusOr<Column> TakeOwned(const Column& col,
                           std::span<const uint32_t> positions) {
  switch (col.type()) {
    case PhysType::kU32: {
      auto s = col.Span<uint32_t>();
      std::vector<uint32_t> out(positions.size());
      for (size_t i = 0; i < positions.size(); ++i) out[i] = s[positions[i]];
      return Column::U32(std::move(out));
    }
    case PhysType::kI64: {
      auto s = col.Span<int64_t>();
      std::vector<int64_t> out(positions.size());
      for (size_t i = 0; i < positions.size(); ++i) out[i] = s[positions[i]];
      return Column::I64(std::move(out));
    }
    case PhysType::kF64: {
      auto s = col.Span<double>();
      std::vector<double> out(positions.size());
      for (size_t i = 0; i < positions.size(); ++i) out[i] = s[positions[i]];
      return Column::F64(std::move(out));
    }
    case PhysType::kStr: {
      std::vector<std::string> out(positions.size());
      for (size_t i = 0; i < positions.size(); ++i) {
        out[i] = std::string(col.GetStr(positions[i]));
      }
      return Column::Str(out);
    }
    default:
      return Status::InvalidArgument(
          std::string("cannot take from owned column of type ") +
          PhysTypeName(col.type()));
  }
}

}  // namespace

StatusOr<Chunk> Chunk::Take(std::span<const uint32_t> positions) const {
  Chunk out;
  out.rows = positions.size();
  out.cands.reserve(cands.size());
  for (const Candidates& cd : cands) {
    std::vector<oid_t> oids(positions.size());
    for (size_t i = 0; i < positions.size(); ++i) {
      CCDB_DCHECK(positions[i] < rows);
      oids[i] = cd.Get(positions[i]);
    }
    out.cands.push_back(Candidates::FromOids(std::move(oids)));
  }
  out.cols.reserve(cols.size());
  for (const ChunkColumn& col : cols) {
    ChunkColumn c = col;
    if (!col.lazy()) {
      CCDB_ASSIGN_OR_RETURN(Column taken, TakeOwned(*col.owned, positions));
      c.owned = std::make_shared<const Column>(std::move(taken));
    }
    out.cols.push_back(std::move(c));
  }
  return out;
}

Status Chunk::AppendTo(size_t c, MaterializedColumn* out) const {
  switch (TypeOf(c)) {
    case PhysType::kU32: {
      CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> v, GatherU32(c));
      out->u32_values.insert(out->u32_values.end(), v.begin(), v.end());
      return Status::Ok();
    }
    case PhysType::kI64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<int64_t> v, GatherI64(c));
      out->i64_values.insert(out->i64_values.end(), v.begin(), v.end());
      return Status::Ok();
    }
    case PhysType::kF64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<double> v, GatherF64(c));
      out->f64_values.insert(out->f64_values.end(), v.begin(), v.end());
      return Status::Ok();
    }
    case PhysType::kStr: {
      CCDB_ASSIGN_OR_RETURN(std::vector<std::string> v, GatherStr(c));
      for (auto& s : v) out->str_values.push_back(std::move(s));
      return Status::Ok();
    }
    default:
      return Status::Internal("unexpected chunk column type");
  }
}

StatusOr<Chunk> ConcatChunks(std::vector<Chunk> chunks) {
  if (chunks.empty()) {
    return Status::InvalidArgument("ConcatChunks: no chunks");
  }
  if (chunks.size() == 1) return std::move(chunks[0]);
  Chunk out;
  const Chunk& first = chunks[0];
  for (const Chunk& c : chunks) {
    if (c.cols.size() != first.cols.size() ||
        c.cands.size() != first.cands.size()) {
      return Status::InvalidArgument("ConcatChunks: layout mismatch");
    }
    out.rows += c.rows;
  }
  // Candidate lists concatenate into one materialized list per slot.
  for (size_t s = 0; s < first.cands.size(); ++s) {
    std::vector<oid_t> oids;
    oids.reserve(out.rows);
    for (const Chunk& c : chunks) {
      for (size_t i = 0; i < c.cands[s].count; ++i) {
        oids.push_back(c.cands[s].Get(i));
      }
    }
    out.cands.push_back(Candidates::FromOids(std::move(oids)));
  }
  for (size_t ci = 0; ci < first.cols.size(); ++ci) {
    ChunkColumn col = first.cols[ci];
    if (!col.lazy()) {
      // Concatenate owned columns by type.
      switch (col.owned->type()) {
        case PhysType::kU32: {
          std::vector<uint32_t> v;
          v.reserve(out.rows);
          for (const Chunk& c : chunks) {
            auto s = c.cols[ci].owned->Span<uint32_t>();
            v.insert(v.end(), s.begin(), s.end());
          }
          col.owned = std::make_shared<const Column>(Column::U32(std::move(v)));
          break;
        }
        case PhysType::kI64: {
          std::vector<int64_t> v;
          v.reserve(out.rows);
          for (const Chunk& c : chunks) {
            auto s = c.cols[ci].owned->Span<int64_t>();
            v.insert(v.end(), s.begin(), s.end());
          }
          col.owned = std::make_shared<const Column>(Column::I64(std::move(v)));
          break;
        }
        case PhysType::kF64: {
          std::vector<double> v;
          v.reserve(out.rows);
          for (const Chunk& c : chunks) {
            auto s = c.cols[ci].owned->Span<double>();
            v.insert(v.end(), s.begin(), s.end());
          }
          col.owned = std::make_shared<const Column>(Column::F64(std::move(v)));
          break;
        }
        case PhysType::kStr: {
          std::vector<std::string> v;
          v.reserve(out.rows);
          for (const Chunk& c : chunks) {
            for (size_t i = 0; i < c.cols[ci].owned->size(); ++i) {
              v.emplace_back(c.cols[ci].owned->GetStr(i));
            }
          }
          col.owned = std::make_shared<const Column>(Column::Str(v));
          break;
        }
        default:
          return Status::InvalidArgument("ConcatChunks: unsupported owned type");
      }
    }
    out.cols.push_back(std::move(col));
  }
  return out;
}

// --- ScanOp ------------------------------------------------------------------

ScanOp::ScanOp(const Table* table, size_t chunk_rows)
    : table_(table), chunk_rows_(chunk_rows == 0 ? SIZE_MAX : chunk_rows) {}

Status ScanOp::Open() {
  pos_ = 0;
  emitted_ = false;
  return Status::Ok();
}

StatusOr<bool> ScanOp::Next(Chunk* out) {
  size_t total = table_->num_rows();
  if (pos_ >= total && emitted_) return false;
  size_t n = std::min(chunk_rows_, total - pos_);
  out->rows = n;
  out->cands = {Candidates::Dense(static_cast<oid_t>(pos_), n)};
  out->cols.clear();
  for (size_t i = 0; i < table_->num_columns(); ++i) {
    ChunkColumn c;
    c.name = table_->schema().field(i).name;
    c.base = table_;
    c.base_col = i;
    c.cand_slot = 0;
    out->cols.push_back(std::move(c));
  }
  pos_ += n;
  emitted_ = true;
  return true;
}

// --- SelectOp ----------------------------------------------------------------

SelectOp::SelectOp(std::unique_ptr<Operator> child, Expr expr,
                   const ExecContext* ctx)
    : child_(std::move(child)), ctx_(ctx) {
  // An empty conjunction (a childless And, e.g. a default-constructed
  // Expr) is logically true: leave expr_ empty so Next() passes chunks
  // through, exactly like the empty legacy Predicate conjunction (plan
  // validation rejects both, but SelectOp is also composed directly).
  Expr lowered = OrderConjunctsBySelectivity(NormalizeExpr(std::move(expr)));
  if (lowered.kind != Expr::Kind::kAnd || !lowered.children.empty()) {
    expr_ = std::move(lowered);
  }
}

SelectOp::SelectOp(std::unique_ptr<Operator> child,
                   std::vector<Predicate> preds, const ExecContext* ctx)
    : child_(std::move(child)), ctx_(ctx) {
  if (!preds.empty()) {
    Expr e;
    e.kind = Expr::Kind::kAnd;
    for (const Predicate& p : preds) e.children.push_back(p.ToExpr());
    expr_ = OrderConjunctsBySelectivity(NormalizeExpr(std::move(e)));
  }
}

SelectOp::SelectOp(std::unique_ptr<Operator> child, Predicate pred,
                   const ExecContext* ctx)
    : SelectOp(std::move(child),
               std::vector<Predicate>{std::move(pred)}, ctx) {}

Status SelectOp::Open() { return child_->Open(); }
void SelectOp::Close() { child_->Close(); }

namespace {

// --- leaf matchers (span / gather fallback paths) ---------------------------
// Direct evaluation of one normalized expression leaf against a typed
// value. f64 comparisons are IEEE: NaN fails every ordering and range test
// (including "not in [lo, hi]", which is v < lo || v > hi) while != is
// true for NaN.

bool MatchI64(const Expr& leaf, int64_t v);

bool MatchU32(const Expr& leaf, uint32_t v) {
  // Wide (i64) literals on a u32 column evaluate widened: `v < 2^40` must
  // be true for every u32 value, not wrap.
  if ((leaf.kind == Expr::Kind::kCmp &&
       leaf.value.type == Literal::Type::kI64) ||
      (leaf.kind == Expr::Kind::kBetween &&
       leaf.lo.type == Literal::Type::kI64)) {
    return MatchI64(leaf, static_cast<int64_t>(v));
  }
  switch (leaf.kind) {
    case Expr::Kind::kCmp: {
      uint32_t x = leaf.value.u32;
      switch (leaf.cmp) {
        case CmpOp::kEq: return v == x;
        case CmpOp::kNe: return v != x;
        case CmpOp::kLt: return v < x;
        case CmpOp::kLe: return v <= x;
        case CmpOp::kGt: return v > x;
        case CmpOp::kGe: return v >= x;
      }
      return false;
    }
    case Expr::Kind::kBetween:
      return (leaf.lo.u32 <= v && v <= leaf.hi.u32) != leaf.negated;
    case Expr::Kind::kIn:
      return std::binary_search(leaf.in_u32.begin(), leaf.in_u32.end(), v) !=
             leaf.negated;
    default:
      return false;
  }
}

bool MatchI64(const Expr& leaf, int64_t v) {
  switch (leaf.kind) {
    case Expr::Kind::kCmp: {
      int64_t x = leaf.value.type == Literal::Type::kI64
                      ? leaf.value.i64
                      : static_cast<int64_t>(leaf.value.u32);
      switch (leaf.cmp) {
        case CmpOp::kEq: return v == x;
        case CmpOp::kNe: return v != x;
        case CmpOp::kLt: return v < x;
        case CmpOp::kLe: return v <= x;
        case CmpOp::kGt: return v > x;
        case CmpOp::kGe: return v >= x;
      }
      return false;
    }
    case Expr::Kind::kBetween: {
      int64_t lo = leaf.lo.type == Literal::Type::kI64
                       ? leaf.lo.i64
                       : static_cast<int64_t>(leaf.lo.u32);
      int64_t hi = leaf.hi.type == Literal::Type::kI64
                       ? leaf.hi.i64
                       : static_cast<int64_t>(leaf.hi.u32);
      return (lo <= v && v <= hi) != leaf.negated;
    }
    case Expr::Kind::kIn: {
      bool found = v >= 0 && v <= static_cast<int64_t>(UINT32_MAX) &&
                   std::binary_search(leaf.in_u32.begin(), leaf.in_u32.end(),
                                      static_cast<uint32_t>(v));
      return found != leaf.negated;
    }
    default:
      return false;
  }
}

bool MatchF64(const Expr& leaf, double v) {
  switch (leaf.kind) {
    case Expr::Kind::kCmp: {
      double x = leaf.value.f64;
      switch (leaf.cmp) {
        case CmpOp::kEq: return v == x;
        case CmpOp::kNe: return v != x;
        case CmpOp::kLt: return v < x;
        case CmpOp::kLe: return v <= x;
        case CmpOp::kGt: return v > x;
        case CmpOp::kGe: return v >= x;
      }
      return false;
    }
    case Expr::Kind::kBetween:
      if (!leaf.negated) return leaf.lo.f64 <= v && v <= leaf.hi.f64;
      return v < leaf.lo.f64 || v > leaf.hi.f64;
    default:
      return false;  // f64 In-lists are rejected at Build() time
  }
}

bool MatchStr(const Expr& leaf, std::string_view v) {
  switch (leaf.kind) {
    case Expr::Kind::kCmp:
      return leaf.cmp == CmpOp::kEq ? v == leaf.value.str
                                    : v != leaf.value.str;
    case Expr::Kind::kIn:
      return std::binary_search(leaf.in_str.begin(), leaf.in_str.end(), v,
                                std::less<>{}) != leaf.negated;
    default:
      return false;
  }
}

// --- leaf lowering to u32 range sets (kernel path) --------------------------

/// Literal domain a leaf compares on: kU32 (including dictionary codes for
/// string literals on encoded columns), kF64, or kStr.
Literal::Type LeafLiteralType(const Expr& leaf) {
  switch (leaf.kind) {
    case Expr::Kind::kCmp: return leaf.value.type;
    case Expr::Kind::kBetween: return leaf.lo.type;
    case Expr::Kind::kIn:
      return leaf.in_str.empty() ? Literal::Type::kU32 : Literal::Type::kStr;
    default: return Literal::Type::kU32;
  }
}

std::vector<U32Range> RangesForCmpU32(CmpOp op, uint32_t x) {
  switch (op) {
    case CmpOp::kEq:
      return {{x, x}};
    case CmpOp::kNe:
      return ComplementRanges(std::vector<U32Range>{{x, x}});
    case CmpOp::kLt:
      if (x == 0) return {};
      return {{0, x - 1}};
    case CmpOp::kLe:
      return {{0, x}};
    case CmpOp::kGt:
      if (x == UINT32_MAX) return {};
      return {{x + 1, UINT32_MAX}};
    case CmpOp::kGe:
      return {{x, UINT32_MAX}};
  }
  return {};
}

/// Coalesces sorted, duplicate-free values into maximal contiguous ranges.
std::vector<U32Range> CoalesceSortedValues(std::span<const uint32_t> vals) {
  std::vector<U32Range> out;
  for (uint32_t v : vals) {
    if (!out.empty() && out.back().hi != UINT32_MAX &&
        v == out.back().hi + 1) {
      out.back().hi = v;
    } else {
      out.push_back({v, v});
    }
  }
  return out;
}

/// The disjoint, ascending range set `leaf` selects on the u32 value (or
/// dictionary-code) domain. String literals are remapped onto the encoded
/// column's codes (§3.1 predicate remap): an unknown string selects
/// nothing — or, negated, everything.
StatusOr<std::vector<U32Range>> LeafU32Ranges(const ChunkColumn& col,
                                              const Expr& leaf) {
  switch (leaf.kind) {
    case Expr::Kind::kCmp: {
      if (leaf.value.type == Literal::Type::kStr) {
        auto code = col.base->dict(col.base_col).Lookup(leaf.value.str);
        if (leaf.cmp == CmpOp::kEq) {
          if (!code.ok()) return std::vector<U32Range>{};
          return std::vector<U32Range>{{*code, *code}};
        }
        // kNe (validation admits = and != only on strings).
        if (!code.ok()) return std::vector<U32Range>{{0, UINT32_MAX}};
        return ComplementRanges(std::vector<U32Range>{{*code, *code}});
      }
      return RangesForCmpU32(leaf.cmp, leaf.value.u32);
    }
    case Expr::Kind::kBetween: {
      std::vector<U32Range> base{{leaf.lo.u32, leaf.hi.u32}};
      return leaf.negated ? ComplementRanges(base) : base;
    }
    case Expr::Kind::kIn: {
      std::vector<U32Range> base;
      if (!leaf.in_str.empty()) {
        std::vector<uint32_t> codes;
        for (const std::string& s : leaf.in_str) {
          auto code = col.base->dict(col.base_col).Lookup(s);
          if (code.ok()) codes.push_back(*code);
        }
        std::sort(codes.begin(), codes.end());
        codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
        base = CoalesceSortedValues(codes);
      } else {
        // NormalizeExpr sorted and deduplicated the list.
        base = CoalesceSortedValues(leaf.in_u32);
      }
      return leaf.negated ? ComplementRanges(base) : base;
    }
    default:
      return Status::Internal("LeafU32Ranges on a non-leaf expression");
  }
}

/// True when `leaf` on column `ci` can be evaluated over an arbitrary
/// candidate sub-range without first gathering the whole chunk — the lazy
/// base-column paths that morsel-parallel evaluation splits up.
bool LeafRangedEvalSupported(const Chunk& in, size_t ci, const Expr& leaf) {
  const ChunkColumn& col = in.cols[ci];
  if (!col.lazy()) return false;
  switch (LeafLiteralType(leaf)) {
    case Literal::Type::kI64:
      // Wide literals cannot lower to u32 range sets; gather fallback.
      return false;
    case Literal::Type::kU32:
      switch (col.base->column_bat(col.base_col).tail().type()) {
        case PhysType::kVoid:
        case PhysType::kU8:
        case PhysType::kU16:
        case PhysType::kU32:
          return true;
        default:
          return false;  // e.g. an i64 base column: gather fallback
      }
    case Literal::Type::kF64:
      return col.base->column_bat(col.base_col).tail().type() ==
             PhysType::kF64;
    case Literal::Type::kStr:
      return col.base->is_encoded(col.base_col);
  }
  return false;
}

/// Evaluates `leaf` over candidate rows [row_lo, row_hi) of lazy column
/// `ci`, returning qualifying chunk-relative positions (ascending). Only
/// valid when LeafRangedEvalSupported; morsel results concatenated in range
/// order equal a full-range evaluation.
StatusOr<std::vector<uint32_t>> EvalLeafLazyRange(const Chunk& in,
                                                  const Expr& leaf, size_t ci,
                                                  size_t row_lo,
                                                  size_t row_hi) {
  const ChunkColumn& col = in.cols[ci];
  const Bat& bat = col.base->column_bat(col.base_col);
  const Candidates& cd = in.cands[col.cand_slot];
  size_t n = row_hi - row_lo;
  if (LeafLiteralType(leaf) == Literal::Type::kF64) {
    auto v = bat.tail().Span<double>();
    std::vector<uint32_t> out;
    for (size_t i = row_lo; i < row_hi; ++i) {
      oid_t o = cd.Get(i);
      if (o >= v.size()) return Status::OutOfRange("candidate beyond column");
      if (MatchF64(leaf, v[o])) out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
  // Integral shapes (and string literals remapped onto codes) lower to a
  // disjoint range set evaluated by the candidate-list union kernels.
  CCDB_ASSIGN_OR_RETURN(std::vector<U32Range> ranges,
                        LeafU32Ranges(col, leaf));
  if (ranges.empty()) return std::vector<uint32_t>{};
  std::vector<uint32_t> pos;
  if (cd.dense()) {
    CCDB_ASSIGN_OR_RETURN(
        pos, BatSelectPositionsUnionDense(bat, ranges,
                                          static_cast<oid_t>(cd.base + row_lo),
                                          n));
  } else {
    CCDB_ASSIGN_OR_RETURN(
        pos,
        BatSelectPositionsUnion(bat, ranges, OidSpan(cd).subspan(row_lo, n)));
  }
  if (row_lo != 0) {
    for (uint32_t& p : pos) p += static_cast<uint32_t>(row_lo);
  }
  return pos;
}

/// Evaluates `leaf` over an owned column in place (no gather): rows
/// row_at(0..n), emitting the matching row_at values in order.
template <class RowAt>
StatusOr<std::vector<uint32_t>> EvalLeafOwnedRows(const Column& col,
                                                  const Expr& leaf, size_t n,
                                                  RowAt row_at) {
  std::vector<uint32_t> out;
  switch (col.type()) {
    case PhysType::kU32: {
      auto s = col.Span<uint32_t>();
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = row_at(i);
        if (MatchU32(leaf, s[r])) out.push_back(r);
      }
      return out;
    }
    case PhysType::kI64: {
      auto s = col.Span<int64_t>();
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = row_at(i);
        if (MatchI64(leaf, s[r])) out.push_back(r);
      }
      return out;
    }
    case PhysType::kF64: {
      auto s = col.Span<double>();
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = row_at(i);
        if (MatchF64(leaf, s[r])) out.push_back(r);
      }
      return out;
    }
    case PhysType::kStr: {
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = row_at(i);
        if (MatchStr(leaf, col.GetStr(r))) out.push_back(r);
      }
      return out;
    }
    default: {
      // Narrow integral representations: go through GetIntegral.
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = row_at(i);
        if (MatchU32(leaf, static_cast<uint32_t>(col.GetIntegral(r)))) {
          out.push_back(r);
        }
      }
      return out;
    }
  }
}

/// Directly-composed SelectOps bypass Build() validation, so the fallback
/// paths re-check that the leaf's literal domain matches the column before
/// dispatching a matcher — a mismatch must stay a loud error, never a
/// comparison against the wrong Literal member.
Status CheckLeafDomain(PhysType col_type, const Expr& leaf) {
  Literal::Type lt = LeafLiteralType(leaf);
  bool ok = false;
  switch (col_type) {
    case PhysType::kU32:
    case PhysType::kI64:
      ok = lt == Literal::Type::kU32 || lt == Literal::Type::kI64;
      break;
    case PhysType::kF64:
      ok = lt == Literal::Type::kF64;
      break;
    case PhysType::kStr:
      ok = lt == Literal::Type::kStr;
      break;
    default:
      break;
  }
  if (!ok) {
    return Status::InvalidArgument(
        "filter: literal type does not match column '" + leaf.column + "' (" +
        PhysTypeName(col_type) + ")");
  }
  return Status::Ok();
}

/// Whole-chunk fallback for shapes without a ranged kernel path: owned
/// columns (aggregate output) evaluate on their spans in place; lazy
/// columns gather once and match per row.
StatusOr<std::vector<uint32_t>> EvalLeafFallback(const Chunk& in,
                                                 const Expr& leaf, size_t ci) {
  CCDB_RETURN_IF_ERROR(CheckLeafDomain(in.TypeOf(ci), leaf));
  const ChunkColumn& col = in.cols[ci];
  if (!col.lazy()) {
    return EvalLeafOwnedRows(*col.owned, leaf, in.rows,
                             [](size_t i) { return static_cast<uint32_t>(i); });
  }
  std::vector<uint32_t> out;
  switch (in.TypeOf(ci)) {
    case PhysType::kU32: {
      CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> v, in.GatherU32(ci));
      for (size_t i = 0; i < v.size(); ++i) {
        if (MatchU32(leaf, v[i])) out.push_back(static_cast<uint32_t>(i));
      }
      return out;
    }
    case PhysType::kI64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<int64_t> v, in.GatherI64(ci));
      for (size_t i = 0; i < v.size(); ++i) {
        if (MatchI64(leaf, v[i])) out.push_back(static_cast<uint32_t>(i));
      }
      return out;
    }
    case PhysType::kF64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<double> v, in.GatherF64(ci));
      for (size_t i = 0; i < v.size(); ++i) {
        if (MatchF64(leaf, v[i])) out.push_back(static_cast<uint32_t>(i));
      }
      return out;
    }
    case PhysType::kStr: {
      CCDB_ASSIGN_OR_RETURN(std::vector<std::string> v, in.GatherStr(ci));
      for (size_t i = 0; i < v.size(); ++i) {
        if (MatchStr(leaf, v[i])) out.push_back(static_cast<uint32_t>(i));
      }
      return out;
    }
    default:
      return Status::Internal("unexpected chunk column type");
  }
}

/// First pass of a leaf: evaluates it over the whole chunk, morsel-parallel
/// when the column supports ranged evaluation.
StatusOr<std::vector<uint32_t>> EvalLeafFull(const Chunk& in, const Expr& leaf,
                                             const ExecContext* ctx) {
  CCDB_ASSIGN_OR_RETURN(size_t ci, in.Find(leaf.column));
  bool ranged = LeafRangedEvalSupported(in, ci, leaf);
  size_t shards = ranged ? CtxShards(ctx, in.rows) : 1;
  if (shards <= 1) {
    if (ranged) return EvalLeafLazyRange(in, leaf, ci, 0, in.rows);
    return EvalLeafFallback(in, leaf, ci);
  }
  // Morsel-parallel candidate evaluation: shard s fills slot s, and the
  // ordered concatenation equals the serial result exactly.
  std::vector<std::vector<uint32_t>> parts(shards);
  CCDB_RETURN_IF_ERROR(ExecParallelFor(ctx, shards, [&](size_t s) -> Status {
    size_t lo = in.rows * s / shards;
    size_t hi = in.rows * (s + 1) / shards;
    CCDB_ASSIGN_OR_RETURN(parts[s], EvalLeafLazyRange(in, leaf, ci, lo, hi));
    return Status::Ok();
  }));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> positions;
  positions.reserve(total);
  for (const auto& p : parts) {
    positions.insert(positions.end(), p.begin(), p.end());
  }
  return positions;
}

/// Evaluates `leaf` over the surviving chunk positions [lo, hi) of
/// `positions`, touching only those candidates (never the full chunk).
/// Returns the qualifying subset, in order. Requires
/// LeafRangedEvalSupported.
StatusOr<std::vector<uint32_t>> NarrowLeafSlice(
    const Chunk& in, const Expr& leaf, size_t ci,
    std::span<const uint32_t> positions, size_t lo, size_t hi) {
  const ChunkColumn& col = in.cols[ci];
  const Bat& bat = col.base->column_bat(col.base_col);
  const Candidates& cd = in.cands[col.cand_slot];
  if (LeafLiteralType(leaf) == Literal::Type::kF64) {
    auto v = bat.tail().Span<double>();
    std::vector<uint32_t> out;
    for (size_t i = lo; i < hi; ++i) {
      oid_t o = cd.Get(positions[i]);
      if (o >= v.size()) return Status::OutOfRange("candidate beyond column");
      if (MatchF64(leaf, v[o])) out.push_back(positions[i]);
    }
    return out;
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<U32Range> ranges,
                        LeafU32Ranges(col, leaf));
  if (ranges.empty()) return std::vector<uint32_t>{};
  std::vector<oid_t> oids(hi - lo);
  for (size_t i = lo; i < hi; ++i) oids[i - lo] = cd.Get(positions[i]);
  CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> idx,
                        BatSelectPositionsUnion(bat, ranges, oids));
  std::vector<uint32_t> out(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) out[i] = positions[lo + idx[i]];
  return out;
}

/// Narrows the surviving positions by `leaf` without re-scanning the chunk.
/// Lazy columns go through the candidate-list kernels; owned columns
/// evaluate in place on their spans; other shapes fall back to a
/// candidate-bounded take + gather.
StatusOr<std::vector<uint32_t>> NarrowLeaf(const Chunk& in, const Expr& leaf,
                                           std::vector<uint32_t> positions,
                                           const ExecContext* ctx) {
  CCDB_ASSIGN_OR_RETURN(size_t ci, in.Find(leaf.column));
  if (!LeafRangedEvalSupported(in, ci, leaf)) {
    const ChunkColumn& col = in.cols[ci];
    if (!col.lazy()) {
      // Aggregate output and other owned columns: match through the
      // survivor list in place — no take, no gather.
      CCDB_RETURN_IF_ERROR(CheckLeafDomain(in.TypeOf(ci), leaf));
      return EvalLeafOwnedRows(*col.owned, leaf, positions.size(),
                               [&](size_t i) { return positions[i]; });
    }
    CCDB_ASSIGN_OR_RETURN(Chunk sub, in.Take(positions));
    CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> subpos,
                          EvalLeafFallback(sub, leaf, ci));
    std::vector<uint32_t> out(subpos.size());
    for (size_t i = 0; i < subpos.size(); ++i) out[i] = positions[subpos[i]];
    return out;
  }
  size_t shards = CtxShards(ctx, positions.size());
  if (shards <= 1) {
    return NarrowLeafSlice(in, leaf, ci, positions, 0, positions.size());
  }
  std::vector<std::vector<uint32_t>> parts(shards);
  CCDB_RETURN_IF_ERROR(ExecParallelFor(ctx, shards, [&](size_t s) -> Status {
    size_t lo = positions.size() * s / shards;
    size_t hi = positions.size() * (s + 1) / shards;
    CCDB_ASSIGN_OR_RETURN(
        parts[s], NarrowLeafSlice(in, leaf, ci, positions, lo, hi));
    return Status::Ok();
  }));
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

// --- recursive expression evaluation ----------------------------------------
// Both walks produce ascending, duplicate-free chunk positions, so And can
// narrow pass by pass and Or can merge-union branch results — candidate
// lists all the way down, never an intermediate BAT.

StatusOr<std::vector<uint32_t>> EvalExprNarrow(const Chunk& in, const Expr& e,
                                               std::vector<uint32_t> positions,
                                               const ExecContext* ctx);

/// Evaluates a normalized expression over the whole chunk.
StatusOr<std::vector<uint32_t>> EvalExprFull(const Chunk& in, const Expr& e,
                                             const ExecContext* ctx) {
  switch (e.kind) {
    case Expr::Kind::kAnd: {
      // Fused conjunction pass: the first conjunct scans the chunk's
      // candidate range; each later conjunct narrows the survivors only.
      std::vector<uint32_t> positions;
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i == 0) {
          CCDB_ASSIGN_OR_RETURN(positions,
                                EvalExprFull(in, e.children[i], ctx));
        } else {
          if (positions.empty()) break;
          CCDB_ASSIGN_OR_RETURN(
              positions,
              EvalExprNarrow(in, e.children[i], std::move(positions), ctx));
        }
      }
      return positions;
    }
    case Expr::Kind::kOr: {
      std::vector<std::vector<uint32_t>> parts(e.children.size());
      for (size_t i = 0; i < e.children.size(); ++i) {
        CCDB_ASSIGN_OR_RETURN(parts[i], EvalExprFull(in, e.children[i], ctx));
      }
      return UnionSortedPositions(std::move(parts));
    }
    case Expr::Kind::kNot:
      return Status::Internal("filter expression not normalized (NOT node)");
    default:
      return EvalLeafFull(in, e, ctx);
  }
}

/// Narrows surviving positions by a normalized expression.
StatusOr<std::vector<uint32_t>> EvalExprNarrow(const Chunk& in, const Expr& e,
                                               std::vector<uint32_t> positions,
                                               const ExecContext* ctx) {
  if (positions.empty()) return positions;
  switch (e.kind) {
    case Expr::Kind::kAnd: {
      for (const Expr& c : e.children) {
        CCDB_ASSIGN_OR_RETURN(positions,
                              EvalExprNarrow(in, c, std::move(positions),
                                             ctx));
        if (positions.empty()) break;
      }
      return positions;
    }
    case Expr::Kind::kOr: {
      // Every branch narrows the same survivor list; the union keeps each
      // surviving position exactly once, in order.
      std::vector<std::vector<uint32_t>> parts(e.children.size());
      for (size_t i = 0; i < e.children.size(); ++i) {
        CCDB_ASSIGN_OR_RETURN(parts[i],
                              EvalExprNarrow(in, e.children[i], positions,
                                             ctx));
      }
      return UnionSortedPositions(std::move(parts));
    }
    case Expr::Kind::kNot:
      return Status::Internal("filter expression not normalized (NOT node)");
    default:
      return NarrowLeaf(in, e, std::move(positions), ctx);
  }
}

}  // namespace

// Public faces of the evaluation walks above (declared in
// exec/shared_scan.h): shared-scan providers filter fanned-out chunks with
// the exact kernels SelectOp runs, so sharing cannot change results.
StatusOr<std::vector<uint32_t>> EvalFilterPositions(const Chunk& chunk,
                                                    const Expr& normalized,
                                                    const ExecContext* ctx) {
  return EvalExprFull(chunk, normalized, ctx);
}

StatusOr<std::vector<uint32_t>> NarrowFilterPositions(
    const Chunk& chunk, const Expr& normalized,
    std::vector<uint32_t> positions, const ExecContext* ctx) {
  return EvalExprNarrow(chunk, normalized, std::move(positions), ctx);
}

StatusOr<bool> SelectOp::Next(Chunk* out) {
  Chunk in;
  CCDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  if (!expr_.has_value()) {
    *out = std::move(in);
    return true;
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> positions,
                        EvalExprFull(in, *expr_, ctx_));
  CCDB_ASSIGN_OR_RETURN(*out, in.Take(positions));
  return true;
}

// --- JoinOp ------------------------------------------------------------------

JoinOp::JoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
               std::string left_key, std::string right_key, JoinType join_type,
               JoinStrategy strategy, const MachineProfile& profile,
               JoinNodeInfo* info, const ExecContext* ctx,
               uint64_t est_result_rows, uint64_t est_probe_rows)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      join_type_(join_type),
      strategy_(strategy),
      profile_(profile),
      info_(info),
      ctx_(ctx),
      est_result_rows_(est_result_rows),
      est_probe_rows_(est_probe_rows) {}

Status JoinOp::Open() {
  CCDB_RETURN_IF_ERROR(left_->Open());
  CCDB_RETURN_IF_ERROR(right_->Open());
  // Drain the inner (build) side, then plan the join for its *actual*
  // cardinality: the per-node cost-model consultation.
  std::vector<Chunk> inner_chunks;
  for (;;) {
    CCDB_RETURN_IF_ERROR(SchedCheck(ctx_));
    Chunk c;
    CCDB_ASSIGN_OR_RETURN(bool more, right_->Next(&c));
    if (!more) break;
    inner_chunks.push_back(std::move(c));
  }
  CCDB_ASSIGN_OR_RETURN(inner_, ConcatChunks(std::move(inner_chunks)));
  CCDB_ASSIGN_OR_RETURN(size_t rk, inner_.Find(right_key_));
  CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> keys, inner_.GatherU32(rk));
  inner_buns_.resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    inner_buns_[i] = {static_cast<oid_t>(i), keys[i]};
  }
  // An empty inner needs no clustering; the model's argmin is undefined at
  // C = 0.
  plan_ = inner_buns_.empty()
              ? PlanJoin(JoinStrategy::kSimpleHash, 0, profile_)
              : PlanJoin(strategy_, inner_buns_.size(), profile_);

  // Prepare the inner side exactly once for the chosen plan; probe chunks
  // reuse it. (This fixes the ROADMAP chunking defect: the full join kernel
  // used to re-cluster the inner for every probe chunk.) The build cost is
  // reported as the cluster_right phase, including the per-partition hash
  // tables that used to be rebuilt inside every chunk's join phase.
  DirectMemory mem;
  double prepare_ms = 0;
  switch (plan_.strategy) {
    case JoinStrategy::kSortMerge: {
      WallTimer t;
      inner_sorted_ = inner_buns_;
      QuickSortByTail(std::span<Bun>(inner_sorted_), mem);
      prepare_ms = t.ElapsedMillis();
      break;
    }
    case JoinStrategy::kSimpleHash: {
      WallTimer t;
      inner_table_.emplace(std::span<const Bun>(inner_buns_), /*shift=*/0,
                           kDefaultChainLength, mem);
      prepare_ms = t.ElapsedMillis();
      break;
    }
    default: {
      RadixClusterOptions opt{
          .bits = plan_.bits, .passes = plan_.passes, .bits_per_pass = {}};
      RadixClusterStats cs;
      CCDB_ASSIGN_OR_RETURN(
          inner_clustered_,
          (RadixCluster<DirectMemory, IdentityHash>(inner_buns_, opt, mem,
                                                    &cs)));
      inner_bounds_ = ClusterBounds<IdentityHash>(inner_clustered_);
      prepare_ms = cs.total_ms;
      if (!plan_.use_radix_join) {
        WallTimer t;
        size_t h = size_t{1} << plan_.bits;
        inner_tables_.resize(h);
        for (size_t c = 0; c < h; ++c) {
          size_t lo = inner_bounds_[c], hi = inner_bounds_[c + 1];
          if (hi == lo) continue;
          inner_tables_[c] = std::make_unique<InnerHashTable>(
              std::span<const Bun>(inner_clustered_.tuples.data() + lo,
                                   hi - lo),
              /*shift=*/plan_.bits, kDefaultChainLength, mem);
        }
        prepare_ms += t.ElapsedMillis();
      }
      break;
    }
  }

  if (info_ != nullptr) {
    info_->left_key = left_key_;
    info_->right_key = right_key_;
    info_->join_type = join_type_;
    info_->inner_cardinality = inner_buns_.size();
    info_->plan = plan_;
    info_->stats = JoinStats{};
    info_->stats.bits = plan_.bits;
    info_->stats.passes = plan_.passes;
    info_->stats.cluster_right_ms = prepare_ms;
    info_->inner_cluster_runs = 1;
    info_->partition_tasks = 0;
    info_->parallelism = CtxParallelism(ctx_);
  }
  return Status::Ok();
}

void JoinOp::Close() {
  left_->Close();
  right_->Close();
  // Non-owning views (inner_table_, inner_tables_) go before their backing
  // stores.
  inner_table_.reset();
  inner_tables_.clear();
  inner_bounds_.clear();
  inner_clustered_ = ClusteredRelation{};
  inner_sorted_.clear();
  inner_ = Chunk{};
  inner_buns_.clear();
}

namespace {

/// Concatenates per-task result vectors in task order (deterministic join
/// output regardless of which worker ran which task). The per-task parts
/// are arena-backed: every start is cache-line aligned, so no two tasks'
/// output buffers ever share a line.
std::vector<Bun> ConcatBuns(std::vector<BunVec> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<Bun> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace

namespace {

/// Per-chunk match reserve: scale the planner's whole-join output estimate
/// down to this chunk's share of the probe side (clamped to 4x the chunk so
/// a bad overestimate cannot balloon the allocation); without an estimate,
/// the historical min(probe, inner) default.
size_t MatchReserveRows(size_t probe_rows, size_t inner_rows,
                        uint64_t est_result, uint64_t est_probe) {
  if (est_result > 0 && est_probe > 0) {
    double share = static_cast<double>(probe_rows) /
                   static_cast<double>(est_probe);
    double est = static_cast<double>(est_result) * share;
    double cap = static_cast<double>(probe_rows) * 4.0;
    return static_cast<size_t>(std::min(est, cap));
  }
  return std::min(probe_rows, inner_rows);
}

}  // namespace

StatusOr<std::vector<Bun>> JoinOp::ProbeSimpleHash(
    std::span<const Bun> probe) const {
  size_t shards = CtxShards(ctx_, probe.size());
  if (shards <= 1) {
    std::vector<Bun> out;
    out.reserve(MatchReserveRows(probe.size(), inner_buns_.size(),
                                 est_result_rows_, est_probe_rows_));
    DirectMemory mem;
    for (const Bun& lt : probe) {
      inner_table_->Probe(lt, mem, [&](Bun rt) {
        out.push_back({lt.head, rt.head});
      });
    }
    return out;
  }
  std::vector<BunVec> parts(shards);
  CCDB_RETURN_IF_ERROR(ExecParallelFor(ctx_, shards, [&](size_t s) -> Status {
    size_t lo = probe.size() * s / shards;
    size_t hi = probe.size() * (s + 1) / shards;
    DirectMemory mem;
    for (size_t i = lo; i < hi; ++i) {
      Bun lt = probe[i];
      inner_table_->Probe(lt, mem, [&](Bun rt) {
        parts[s].push_back({lt.head, rt.head});
      });
    }
    return Status::Ok();
  }));
  return ConcatBuns(std::move(parts));
}

StatusOr<std::vector<Bun>> JoinOp::JoinClusteredChunk(
    const ClusteredRelation& cl, uint64_t* tasks) {
  // Partition tasks: one per non-empty probe cluster whose radix value has
  // inner tuples — the independent units the pool executes. Probe cluster
  // boundaries are rediscovered from the radix bits (as the paper notes is
  // always possible); inner boundaries come from the bounds built at
  // Open().
  struct Part {
    size_t l_lo, l_hi;
    uint64_t r_lo, r_hi;
  };
  uint32_t mask = LowMask32(plan_.bits);
  size_t n = cl.tuples.size();
  std::vector<Part> parts;
  size_t i = 0;
  while (i < n) {
    uint32_t h = IdentityHash::Hash(cl.tuples[i].tail) & mask;
    size_t j = i + 1;
    while (j < n && (IdentityHash::Hash(cl.tuples[j].tail) & mask) == h) ++j;
    uint64_t r_lo = inner_bounds_[h], r_hi = inner_bounds_[h + 1];
    if (r_hi > r_lo) parts.push_back({i, j, r_lo, r_hi});
    i = j;
  }
  if (tasks != nullptr) *tasks += parts.size();

  std::vector<BunVec> results(parts.size());
  const bool radix = plan_.use_radix_join;
  CCDB_RETURN_IF_ERROR(ExecParallelFor(
      ctx_, parts.size(), [&](size_t p) -> Status {
        const Part& pt = parts[p];
        BunVec& out = results[p];
        if (radix) {
          // Radix-join: clusters are tiny (~4-8 tuples); nested loop.
          for (size_t a = pt.l_lo; a < pt.l_hi; ++a) {
            Bun lt = cl.tuples[a];
            for (uint64_t b = pt.r_lo; b < pt.r_hi; ++b) {
              const Bun& rt = inner_clustered_.tuples[b];
              if (lt.tail == rt.tail) out.push_back({lt.head, rt.head});
            }
          }
          return Status::Ok();
        }
        // Partitioned hash-join: probe the partition's prebuilt table.
        uint32_t h = IdentityHash::Hash(cl.tuples[pt.l_lo].tail) & mask;
        const InnerHashTable* table = inner_tables_[h].get();
        if (table == nullptr) {
          return Status::Internal("missing partition hash table");
        }
        DirectMemory mem;
        for (size_t a = pt.l_lo; a < pt.l_hi; ++a) {
          Bun lt = cl.tuples[a];
          table->Probe(lt, mem, [&](Bun rt) {
            out.push_back({lt.head, rt.head});
          });
        }
        return Status::Ok();
      }));
  return ConcatBuns(std::move(results));
}

StatusOr<bool> JoinOp::Next(Chunk* out) {
  Chunk probe;
  CCDB_ASSIGN_OR_RETURN(bool more, left_->Next(&probe));
  if (!more) return false;
  CCDB_ASSIGN_OR_RETURN(size_t lk, probe.Find(left_key_));
  CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> keys, probe.GatherU32(lk));
  std::vector<Bun> probe_buns(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    probe_buns[i] = {static_cast<oid_t>(i), keys[i]};
  }
  JoinStats stats;
  std::vector<Bun> matches;
  switch (plan_.strategy) {
    case JoinStrategy::kSortMerge: {
      DirectMemory mem;
      WallTimer t_sort;
      // The bun heads carry the chunk positions, so sorting in place loses
      // nothing — probe_buns is not read again after the merge.
      QuickSortByTail(std::span<Bun>(probe_buns), mem);
      stats.cluster_left_ms = t_sort.ElapsedMillis();
      WallTimer t_join;
      matches.reserve(MatchReserveRows(probe_buns.size(), inner_sorted_.size(),
                                       est_result_rows_, est_probe_rows_));
      MergeSortedByTail<DirectMemory>(probe_buns, inner_sorted_, mem, matches);
      stats.join_ms = t_join.ElapsedMillis();
      break;
    }
    case JoinStrategy::kSimpleHash: {
      WallTimer t;
      CCDB_ASSIGN_OR_RETURN(matches, ProbeSimpleHash(probe_buns));
      stats.join_ms = t.ElapsedMillis();
      break;
    }
    default: {
      // Only the cache-sized probe chunk is clustered per Next(); the
      // inner stays clustered from Open().
      DirectMemory mem;
      RadixClusterOptions opt{
          .bits = plan_.bits, .passes = plan_.passes, .bits_per_pass = {}};
      RadixClusterStats cs;
      CCDB_ASSIGN_OR_RETURN(
          ClusteredRelation cl,
          (RadixCluster<DirectMemory, IdentityHash>(probe_buns, opt, mem,
                                                    &cs)));
      stats.cluster_left_ms = cs.total_ms;
      WallTimer t;
      uint64_t tasks = 0;
      CCDB_ASSIGN_OR_RETURN(matches, JoinClusteredChunk(cl, &tasks));
      stats.join_ms = t.ElapsedMillis();
      if (info_ != nullptr) info_->partition_tasks += tasks;
      break;
    }
  }
  // The match list [probe position, inner position] becomes an output
  // chunk according to the join type; the prepared inner and probe phases
  // above are identical for all four types.
  switch (join_type_) {
    case JoinType::kInner: {
      // Take each side through its positions, then zip the column sets.
      // Both sides stay lazy — the join produced nothing but two candidate
      // lists.
      std::vector<uint32_t> lpos(matches.size()), rpos(matches.size());
      for (size_t i = 0; i < matches.size(); ++i) {
        lpos[i] = matches[i].head;
        rpos[i] = matches[i].tail;
      }
      CCDB_ASSIGN_OR_RETURN(Chunk lpart, probe.Take(lpos));
      CCDB_ASSIGN_OR_RETURN(Chunk rpart, inner_.Take(rpos));
      out->rows = matches.size();
      out->cands = std::move(lpart.cands);
      size_t shift = out->cands.size();
      for (Candidates& cd : rpart.cands) out->cands.push_back(std::move(cd));
      out->cols = std::move(lpart.cols);
      for (ChunkColumn& c : rpart.cols) {
        if (c.lazy()) c.cand_slot += shift;
        out->cols.push_back(std::move(c));
      }
      break;
    }
    case JoinType::kSemi:
    case JoinType::kAnti: {
      // A filter on the probe side: emit probe rows with (semi) / without
      // (anti) a match, in probe order — each row at most once.
      std::vector<uint8_t> matched(probe.rows, 0);
      for (const Bun& m : matches) matched[m.head] = 1;
      const uint8_t want = join_type_ == JoinType::kSemi ? 1 : 0;
      std::vector<uint32_t> positions;
      for (size_t i = 0; i < probe.rows; ++i) {
        if (matched[i] == want) positions.push_back(static_cast<uint32_t>(i));
      }
      CCDB_ASSIGN_OR_RETURN(*out, probe.Take(positions));
      break;
    }
    case JoinType::kLeftOuter: {
      // Restore probe order (matches arrive in radix order, which is
      // deterministic, so this stable sort is too) and interleave unmatched
      // probe rows with a null right side.
      std::stable_sort(matches.begin(), matches.end(),
                       [](const Bun& a, const Bun& b) {
                         return a.head < b.head;
                       });
      std::vector<uint32_t> lpos, rpos;
      std::vector<uint8_t> valid;
      lpos.reserve(matches.size());
      size_t m = 0;
      for (size_t i = 0; i < probe.rows; ++i) {
        bool any = false;
        while (m < matches.size() && matches[m].head == i) {
          lpos.push_back(static_cast<uint32_t>(i));
          rpos.push_back(matches[m].tail);
          valid.push_back(1);
          any = true;
          ++m;
        }
        if (!any) {
          lpos.push_back(static_cast<uint32_t>(i));
          rpos.push_back(0);
          valid.push_back(0);
        }
      }
      CCDB_ASSIGN_OR_RETURN(Chunk lpart, probe.Take(lpos));
      CCDB_ASSIGN_OR_RETURN(std::vector<ChunkColumn> rcols,
                            TakeInnerWithNulls(rpos, valid));
      out->rows = lpos.size();
      out->cands = std::move(lpart.cands);
      out->cols = std::move(lpart.cols);
      for (ChunkColumn& c : rcols) out->cols.push_back(std::move(c));
      break;
    }
  }
  stats.result_count = out->rows;
  if (info_ != nullptr) {
    info_->stats.cluster_left_ms += stats.cluster_left_ms;
    info_->stats.cluster_right_ms += stats.cluster_right_ms;
    info_->stats.join_ms += stats.join_ms;
    info_->stats.result_count += stats.result_count;
  }
  return true;
}

StatusOr<std::vector<ChunkColumn>> JoinOp::TakeInnerWithNulls(
    std::span<const uint32_t> rpos, std::span<const uint8_t> valid) const {
  // Materialize the inner rows at rpos (all rows are unmatched when the
  // inner is empty, so Take is skipped), then overwrite null slots with the
  // type's surrogate. Owned columns always, so every chunk of a left-outer
  // join has the same layout.
  const size_t n = rpos.size();
  Chunk taken;
  if (inner_.rows > 0) {
    CCDB_ASSIGN_OR_RETURN(taken, inner_.Take(rpos));
  }
  std::vector<ChunkColumn> out;
  out.reserve(inner_.cols.size());
  for (size_t c = 0; c < inner_.cols.size(); ++c) {
    ChunkColumn col;
    col.name = inner_.cols[c].name;
    switch (inner_.TypeOf(c)) {
      case PhysType::kU32: {
        std::vector<uint32_t> v;
        if (inner_.rows > 0) {
          CCDB_ASSIGN_OR_RETURN(v, taken.GatherU32(c));
          for (size_t i = 0; i < n; ++i) {
            if (!valid[i]) v[i] = 0;
          }
        } else {
          v.assign(n, 0);
        }
        col.owned = std::make_shared<const Column>(Column::U32(std::move(v)));
        break;
      }
      case PhysType::kI64: {
        std::vector<int64_t> v;
        if (inner_.rows > 0) {
          CCDB_ASSIGN_OR_RETURN(v, taken.GatherI64(c));
          for (size_t i = 0; i < n; ++i) {
            if (!valid[i]) v[i] = 0;
          }
        } else {
          v.assign(n, 0);
        }
        col.owned = std::make_shared<const Column>(Column::I64(std::move(v)));
        break;
      }
      case PhysType::kF64: {
        std::vector<double> v;
        if (inner_.rows > 0) {
          CCDB_ASSIGN_OR_RETURN(v, taken.GatherF64(c));
          for (size_t i = 0; i < n; ++i) {
            if (!valid[i]) v[i] = 0.0;
          }
        } else {
          v.assign(n, 0.0);
        }
        col.owned = std::make_shared<const Column>(Column::F64(std::move(v)));
        break;
      }
      case PhysType::kStr: {
        std::vector<std::string> v;
        if (inner_.rows > 0) {
          CCDB_ASSIGN_OR_RETURN(v, taken.GatherStr(c));
          for (size_t i = 0; i < n; ++i) {
            if (!valid[i]) v[i].clear();
          }
        } else {
          v.resize(n);
        }
        col.owned = std::make_shared<const Column>(Column::Str(v));
        break;
      }
      default:
        return Status::Internal("unexpected inner column type");
    }
    out.push_back(std::move(col));
  }
  return out;
}

// --- ProjectOp ---------------------------------------------------------------

ProjectOp::ProjectOp(std::unique_ptr<Operator> child,
                     std::vector<std::string> columns)
    : child_(std::move(child)), columns_(std::move(columns)) {}

Status ProjectOp::Open() { return child_->Open(); }
void ProjectOp::Close() { child_->Close(); }

StatusOr<bool> ProjectOp::Next(Chunk* out) {
  Chunk in;
  CCDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->rows = in.rows;
  out->cols.clear();
  out->cands.clear();
  // Keep only the candidate slots the projected columns still use.
  std::vector<size_t> slot_map(in.cands.size(), SIZE_MAX);
  for (const std::string& name : columns_) {
    CCDB_ASSIGN_OR_RETURN(size_t ci, in.Find(name));
    ChunkColumn col = in.cols[ci];
    if (col.lazy()) {
      if (slot_map[col.cand_slot] == SIZE_MAX) {
        slot_map[col.cand_slot] = out->cands.size();
        out->cands.push_back(in.cands[col.cand_slot]);
      }
      col.cand_slot = slot_map[col.cand_slot];
    }
    out->cols.push_back(std::move(col));
  }
  return true;
}

// --- GroupByAggOp ------------------------------------------------------------

GroupByAggOp::GroupByAggOp(std::unique_ptr<Operator> child,
                           std::vector<std::string> group_cols,
                           std::vector<AggSpec> aggs, const ExecContext* ctx,
                           size_t expected_groups)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      ctx_(ctx),
      expected_groups_(expected_groups) {}

Status GroupByAggOp::Open() {
  done_ = false;
  return child_->Open();
}
void GroupByAggOp::Close() { child_->Close(); }

StatusOr<bool> GroupByAggOp::Next(Chunk* out) {
  if (done_) return false;
  done_ = true;

  const size_t kw = group_cols_.size();
  // Distinct value columns, in first-use order: several aggregates over the
  // same column (min+max+avg) share one accumulator slot.
  std::vector<std::string> value_cols;
  std::vector<size_t> agg_value_idx(aggs_.size(), SIZE_MAX);
  for (size_t a = 0; a < aggs_.size(); ++a) {
    if (aggs_[a].func == AggFunc::kCount) continue;
    size_t v = 0;
    while (v < value_cols.size() && value_cols[v] != aggs_[a].value_col) ++v;
    if (v == value_cols.size()) value_cols.push_back(aggs_[a].value_col);
    agg_value_idx[a] = v;
  }
  const size_t nv = value_cols.size();

  // One group table per worker shard, persistent across chunks. At
  // parallelism 1 the single table sees rows in stream order — byte
  // identical to a serial reference; shard merging (parallelism > 1) may
  // emit groups in a different (still deterministic) order.
  size_t nshards =
      (ctx_ != nullptr && ctx_->parallel()) ? ctx_->parallelism : 1;
  // Every shard may see every group, so each partial gets the full
  // planner-estimated capacity (rehash-free growth when the estimate
  // holds), bounded so a wild overestimate (the estimator's all-distinct
  // fallback on a stats-less key) cannot allocate nshards x estimate
  // upfront — past the cap, demand-grown rehashing costs one rebuild per
  // 4x anyway. Shards are emplaced individually: copying a prototype
  // through the vector fill-constructor would drop its reservations.
  constexpr size_t kMaxGroupHint = size_t{1} << 20;
  const size_t hint = std::min(expected_groups_, kMaxGroupHint);
  std::vector<GroupAggTable> partials;
  partials.reserve(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    partials.emplace_back(kw, nv, hint);
  }

  // Dictionaries for decoding encoded group columns on emission.
  std::vector<const Table*> dict_tables(kw, nullptr);
  std::vector<size_t> dict_cols(kw, 0);

  for (;;) {
    // Blocking consume loop: the plan's per-chunk deadline/cancel poll in
    // PhysicalPlan::Execute never fires while we drain the child, so poll
    // here (serial shards skip ExecParallelFor's per-morsel check too).
    CCDB_RETURN_IF_ERROR(SchedCheck(ctx_));
    Chunk in;
    CCDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    // For encoded group columns GatherU32 reads the 1-2 byte codes — the
    // aggregate groups on codes and decodes only the final group keys.
    std::vector<std::vector<uint32_t>> keys(kw), vals(nv);
    for (size_t c = 0; c < kw; ++c) {
      CCDB_ASSIGN_OR_RETURN(size_t gi, in.Find(group_cols_[c]));
      const ChunkColumn& gcol = in.cols[gi];
      if (gcol.lazy() && gcol.base->is_encoded(gcol.base_col)) {
        dict_tables[c] = gcol.base;
        dict_cols[c] = gcol.base_col;
      }
      CCDB_ASSIGN_OR_RETURN(keys[c], in.GatherU32(gi));
    }
    for (size_t v = 0; v < nv; ++v) {
      CCDB_ASSIGN_OR_RETURN(size_t vi, in.Find(value_cols[v]));
      CCDB_ASSIGN_OR_RETURN(vals[v], in.GatherU32(vi));
    }
    const size_t n = in.rows;
    auto add_range = [&](GroupAggTable& table, size_t lo, size_t hi) {
      std::vector<uint32_t> kbuf(kw), vbuf(nv);
      for (size_t i = lo; i < hi; ++i) {
        for (size_t c = 0; c < kw; ++c) kbuf[c] = keys[c][i];
        for (size_t v = 0; v < nv; ++v) vbuf[v] = vals[v][i];
        table.Add(kbuf.data(), vbuf.data());
      }
    };
    size_t shards = nshards == 1 ? 1 : CtxShards(ctx_, n);
    if (shards <= 1) {
      add_range(partials[0], 0, n);
    } else {
      CCDB_RETURN_IF_ERROR(
          ExecParallelFor(ctx_, shards, [&](size_t s) -> Status {
            add_range(partials[s], n * s / shards, n * (s + 1) / shards);
            return Status::Ok();
          }));
    }
  }

  for (size_t s = 1; s < nshards; ++s) partials[0].MergeFrom(partials[s]);
  const GroupAggTable& agg = partials[0];
  const size_t ngroups = agg.num_groups();

  out->rows = ngroups;
  out->cands.clear();
  out->cols.clear();
  for (size_t c = 0; c < kw; ++c) {
    ChunkColumn group;
    group.name = group_cols_[c];
    if (dict_tables[c] != nullptr) {
      const StrDictionary& dict = dict_tables[c]->dict(dict_cols[c]);
      std::vector<std::string> decoded(ngroups);
      for (size_t g = 0; g < ngroups; ++g) {
        uint32_t code = agg.key(g, c);
        if (code >= dict.size()) {
          return Status::Internal("group code beyond dictionary");
        }
        decoded[g] = std::string(dict.Get(code));
      }
      group.owned = std::make_shared<const Column>(Column::Str(decoded));
    } else {
      std::vector<uint32_t> raw(ngroups);
      for (size_t g = 0; g < ngroups; ++g) raw[g] = agg.key(g, c);
      group.owned = std::make_shared<const Column>(Column::U32(std::move(raw)));
    }
    out->cols.push_back(std::move(group));
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    ChunkColumn col;
    col.name = aggs_[a].output_name;
    const size_t v = agg_value_idx[a];
    switch (aggs_[a].func) {
      case AggFunc::kSum: {
        std::vector<int64_t> sums(ngroups);
        for (size_t g = 0; g < ngroups; ++g) {
          // The unchecked u64 -> i64 narrowing used to wrap into negative
          // sums here; surface overflow instead.
          CCDB_ASSIGN_OR_RETURN(sums[g], CheckedI64(agg.state(g, v).sum));
        }
        col.owned =
            std::make_shared<const Column>(Column::I64(std::move(sums)));
        break;
      }
      case AggFunc::kCount: {
        std::vector<int64_t> counts(ngroups);
        for (size_t g = 0; g < ngroups; ++g) {
          CCDB_ASSIGN_OR_RETURN(counts[g], CheckedI64(agg.group_rows(g)));
        }
        col.owned =
            std::make_shared<const Column>(Column::I64(std::move(counts)));
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        const bool is_min = aggs_[a].func == AggFunc::kMin;
        std::vector<uint32_t> ext(ngroups);
        for (size_t g = 0; g < ngroups; ++g) {
          ext[g] = is_min ? agg.state(g, v).min : agg.state(g, v).max;
        }
        col.owned =
            std::make_shared<const Column>(Column::U32(std::move(ext)));
        break;
      }
      case AggFunc::kAvg: {
        std::vector<double> avgs(ngroups);
        for (size_t g = 0; g < ngroups; ++g) {
          avgs[g] = static_cast<double>(agg.state(g, v).sum) /
                    static_cast<double>(agg.group_rows(g));
        }
        col.owned =
            std::make_shared<const Column>(Column::F64(std::move(avgs)));
        break;
      }
    }
    out->cols.push_back(std::move(col));
  }
  return true;
}

// --- OrderByOp ---------------------------------------------------------------

OrderByOp::OrderByOp(std::unique_ptr<Operator> child, std::string column,
                     bool descending, const ExecContext* ctx)
    : child_(std::move(child)),
      column_(std::move(column)),
      descending_(descending),
      ctx_(ctx) {}

Status OrderByOp::Open() {
  done_ = false;
  return child_->Open();
}
void OrderByOp::Close() { child_->Close(); }

StatusOr<bool> OrderByOp::Next(Chunk* out) {
  if (done_) return false;
  done_ = true;
  std::vector<Chunk> chunks;
  for (;;) {
    CCDB_RETURN_IF_ERROR(SchedCheck(ctx_));
    Chunk c;
    CCDB_ASSIGN_OR_RETURN(bool more, child_->Next(&c));
    if (!more) break;
    chunks.push_back(std::move(c));
  }
  CCDB_ASSIGN_OR_RETURN(Chunk all, ConcatChunks(std::move(chunks)));
  CCDB_ASSIGN_OR_RETURN(size_t ci, all.Find(column_));
  std::vector<uint32_t> positions(all.rows);
  for (size_t i = 0; i < positions.size(); ++i) {
    positions[i] = static_cast<uint32_t>(i);
  }
  auto argsort = [&](const auto& keys) -> Status {
    const bool desc = descending_;
    auto cmp = [&keys, desc](uint32_t a, uint32_t b) {
      return desc ? keys[b] < keys[a] : keys[a] < keys[b];
    };
    size_t shards = CtxShards(ctx_, positions.size());
    if (shards <= 1) {
      std::stable_sort(positions.begin(), positions.end(), cmp);
      return Status::Ok();
    }
    // Parallel merge sort: stable-sort contiguous shards on the pool, then
    // fold left to right. inplace_merge takes from the left run on ties —
    // exactly stable_sort's tie-break — so any parallelism produces the
    // byte-identical permutation.
    std::vector<std::ptrdiff_t> bounds(shards + 1);
    for (size_t s = 0; s <= shards; ++s) {
      bounds[s] = static_cast<std::ptrdiff_t>(positions.size() * s / shards);
    }
    CCDB_RETURN_IF_ERROR(
        ExecParallelFor(ctx_, shards, [&](size_t s) -> Status {
          std::stable_sort(positions.begin() + bounds[s],
                           positions.begin() + bounds[s + 1], cmp);
          return Status::Ok();
        }));
    for (size_t s = 1; s < shards; ++s) {
      std::inplace_merge(positions.begin(), positions.begin() + bounds[s],
                         positions.begin() + bounds[s + 1], cmp);
    }
    return Status::Ok();
  };
  switch (all.TypeOf(ci)) {
    case PhysType::kU32: {
      CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> keys, all.GatherU32(ci));
      CCDB_RETURN_IF_ERROR(argsort(keys));
      break;
    }
    case PhysType::kI64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<int64_t> keys, all.GatherI64(ci));
      CCDB_RETURN_IF_ERROR(argsort(keys));
      break;
    }
    case PhysType::kF64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<double> keys, all.GatherF64(ci));
      CCDB_RETURN_IF_ERROR(argsort(keys));
      break;
    }
    case PhysType::kStr: {
      CCDB_ASSIGN_OR_RETURN(std::vector<std::string> keys, all.GatherStr(ci));
      CCDB_RETURN_IF_ERROR(argsort(keys));
      break;
    }
    default:
      return Status::Internal("unexpected order-by key type");
  }
  CCDB_ASSIGN_OR_RETURN(*out, all.Take(positions));
  return true;
}

// --- LimitOp -----------------------------------------------------------------

LimitOp::LimitOp(std::unique_ptr<Operator> child, size_t limit, size_t offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {}

Status LimitOp::Open() {
  skipped_ = 0;
  emitted_ = 0;
  emitted_chunk_ = false;
  return child_->Open();
}
void LimitOp::Close() { child_->Close(); }

StatusOr<bool> LimitOp::Next(Chunk* out) {
  // Once the limit is reached, stop pulling from the child — but only
  // after at least one (possibly zero-row) chunk carried the layout
  // downstream. This must not depend on emitted_ > 0: Limit(0) reaches its
  // limit immediately and used to drain the whole child instead.
  if (emitted_chunk_ && emitted_ >= limit_) return false;
  Chunk in;
  CCDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  size_t skip = std::min(offset_ - skipped_, in.rows);
  skipped_ += skip;
  size_t take = std::min(in.rows - skip, limit_ - emitted_);
  emitted_ += take;
  std::vector<uint32_t> positions(take);
  for (size_t i = 0; i < take; ++i) {
    positions[i] = static_cast<uint32_t>(skip + i);
  }
  CCDB_ASSIGN_OR_RETURN(*out, in.Take(positions));
  emitted_chunk_ = true;
  return true;
}

}  // namespace ccdb
