#include "exec/schema.h"

#include <unordered_set>

namespace ccdb {

Status TableSchema::Validate() const {
  if (fields_.empty())
    return Status::InvalidArgument("schema needs at least one field");
  std::unordered_set<std::string> seen;
  for (const auto& f : fields_) {
    if (f.name.empty()) return Status::InvalidArgument("empty field name");
    if (!seen.insert(f.name).second)
      return Status::InvalidArgument("duplicate field name: " + f.name);
  }
  return Status::Ok();
}

StatusOr<size_t> TableSchema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named " + name);
}

size_t TableSchema::record_width() const {
  size_t w = 0;
  for (const auto& f : fields_) w += FieldTypeWidth(f.type);
  return w;
}

}  // namespace ccdb
