#include "util/table_printer.h"

#include <cstdio>

#include "util/logging.h"

namespace ccdb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CCDB_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E'))
      return false;
  }
  return true;
}
}  // namespace

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row, bool is_header) {
    for (size_t c = 0; c < row.size(); ++c) {
      bool right = !is_header && LooksNumeric(row[c]);
      if (right) {
        std::fprintf(out, "%*s", static_cast<int>(width[c]), row[c].c_str());
      } else {
        std::fprintf(out, "%-*s", static_cast<int>(width[c]), row[c].c_str());
      }
      std::fputs(c + 1 == row.size() ? "\n" : "  ", out);
    }
  };
  print_row(header_, /*is_header=*/true);
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < width[c]; ++i) std::fputc('-', out);
    std::fputs(c + 1 == header_.size() ? "\n" : "  ", out);
  }
  for (const auto& row : rows_) print_row(row, /*is_header=*/false);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::Fmt(int v) { return Fmt(static_cast<int64_t>(v)); }

}  // namespace ccdb
