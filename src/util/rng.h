// Deterministic pseudo-random generation for workloads: the paper's join
// experiments use relations of "uniformly distributed unique random numbers"
// with join hit-rate one (§3.4.1). UniqueU32 / MatchingPair produce exactly
// that, reproducibly from a seed.
#ifndef CCDB_UTIL_RNG_H_
#define CCDB_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccdb {

/// splitmix64: tiny, fast, full-period-per-seed generator. Deterministic for
/// a given seed; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform in [0, n). Pre: n > 0. Uses the unbiased multiply-shift trick.
  uint64_t NextBelow(uint64_t n) {
    // 128-bit multiply keeps the distribution unbiased enough for workloads.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// `n` distinct uniformly distributed 32-bit values in random order.
/// Values are a random permutation slice, so every value is unique.
std::vector<uint32_t> UniqueU32(size_t n, uint64_t seed);

/// Fisher-Yates shuffle of `v` with this rng.
void Shuffle(std::vector<uint32_t>& v, Rng& rng);

}  // namespace ccdb

#endif  // CCDB_UTIL_RNG_H_
