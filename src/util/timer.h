// Wall-clock timing for benchmarks. The figure benches report milliseconds
// like the paper's Y axes; WallTimer gives monotonic nanosecond resolution.
#ifndef CCDB_UTIL_TIMER_H_
#define CCDB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ccdb {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` once and returns elapsed milliseconds.
template <typename Fn>
double TimeMillis(Fn&& fn) {
  WallTimer t;
  fn();
  return t.ElapsedMillis();
}

/// Runs `fn` `reps` times and returns the minimum elapsed milliseconds —
/// the usual noise-robust estimator for short benchmarks.
template <typename Fn>
double MinTimeMillis(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double ms = TimeMillis(fn);
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace ccdb

#endif  // CCDB_UTIL_TIMER_H_
