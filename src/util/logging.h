// Assertion macros. CCDB_CHECK is always on (invariant violations abort with
// a message); CCDB_DCHECK compiles away in release builds and is meant for
// hot-path pre-condition checks.
#ifndef CCDB_UTIL_LOGGING_H_
#define CCDB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace ccdb::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CCDB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace ccdb::internal

#define CCDB_CHECK(expr)                                         \
  do {                                                           \
    if (!(expr)) ::ccdb::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#ifndef NDEBUG
#define CCDB_DCHECK(expr) CCDB_CHECK(expr)
#else
#define CCDB_DCHECK(expr) \
  do {                    \
  } while (0)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define CCDB_ALWAYS_INLINE inline __attribute__((always_inline))
#define CCDB_NOINLINE __attribute__((noinline))
#else
#define CCDB_ALWAYS_INLINE inline
#define CCDB_NOINLINE
#endif

#endif  // CCDB_UTIL_LOGGING_H_
