// Fixed-width table output for the figure benchmarks: each bench prints one
// row per parameter point, mirroring the series the paper plots.
#ifndef CCDB_UTIL_TABLE_PRINTER_H_
#define CCDB_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ccdb {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Usage:
///   TablePrinter t({"bits", "ms", "L1 miss"});
///   t.AddRow({"4", "12.3", "1048576"});
///   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders all rows. Numeric-looking cells are right-aligned.
  void Print(std::FILE* out) const;

  /// Convenience formatters.
  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);
  static std::string Fmt(int v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_TABLE_PRINTER_H_
