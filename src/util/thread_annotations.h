// Clang Thread Safety Analysis for the engine's concurrency layer — the
// compile-time half of the estimate→verify discipline applied to locking:
// TSan observes the interleavings a run happens to produce (few, on a
// 1-hardware-thread CI host); these annotations let clang *prove* the
// locking protocol over every path, at compile time, the way it is proven
// at scale in Abseil/LLVM ("C/C++ Thread Safety Analysis", Hutchins et al.).
//
// The macros expand to clang attributes under clang and to nothing under
// gcc, so annotated code builds everywhere; only clang builds (CI's
// `analyze` job, `./ci.sh --analyze`) enforce them with
// -Werror=thread-safety.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see through it. ccdb::Mutex / MutexLock / CondVar below are the
// CAPABILITY-annotated wrappers (the LevelDB port::Mutex idiom) that every
// engine mutex uses instead; tools/lint_engine.py rejects naked std::mutex
// members so the whole tree stays analyzable.
#ifndef CCDB_UTIL_THREAD_ANNOTATIONS_H_
#define CCDB_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define CCDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CCDB_THREAD_ANNOTATION_(x)  // gcc/msvc: no-op
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define CCDB_CAPABILITY(x) CCDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction (analysis follows its scope).
#define CCDB_SCOPED_CAPABILITY CCDB_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define CCDB_GUARDED_BY(x) CCDB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define CCDB_PT_GUARDED_BY(x) CCDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define CCDB_REQUIRES(...) \
  CCDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (guards
/// against self-deadlock on non-reentrant mutexes).
#define CCDB_EXCLUDES(...) CCDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define CCDB_ACQUIRE(...) \
  CCDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CCDB_RELEASE(...) \
  CCDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability, returning `b` on success.
#define CCDB_TRY_ACQUIRE(b, ...) \
  CCDB_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; the
/// analysis treats it as held afterwards.
#define CCDB_ASSERT_CAPABILITY(x) \
  CCDB_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the capability named (lets accessors
/// expose a member mutex without losing analysis).
#define CCDB_RETURN_CAPABILITY(x) CCDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for protocols the analysis cannot express (e.g. lock
/// handoff between threads). Every use carries a comment saying why.
#define CCDB_NO_THREAD_SAFETY_ANALYSIS \
  CCDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ccdb {

class CondVar;

/// std::mutex wrapped as an analysis-visible capability. Same cost (the
/// wrapper is empty), but Lock/Unlock participate in the proof.
class CCDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CCDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CCDB_RELEASE() { mu_.unlock(); }
  bool TryLock() CCDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op whose annotation tells the analysis the lock is held — for
  /// functions reached only with the lock held but through a pointer the
  /// analysis cannot trace.
  void AssertHeld() CCDB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex, with early-release/re-acquire support (the
/// absl::ReleasableMutexLock shape) so condition-variable loops and
/// "publish outside the lock" sections stay scoped and analyzable.
class CCDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CCDB_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() CCDB_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Releases before scope exit (e.g. to run a blocking emit unlocked).
  void Unlock() CCDB_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  /// Re-acquires after an early Unlock().
  void Lock() CCDB_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
  bool held_;
};

/// Condition variable over a ccdb::Mutex. Takes the mutex as an argument
/// (the Abseil shape) so CCDB_REQUIRES(mu) can bind to the caller's lock
/// expression — a member-pointer REQUIRES would not match syntactically at
/// call sites. Waits briefly adopt the underlying std::mutex and release it
/// back, so the capability state seen by the analysis (held across the
/// wait) matches reality on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, sleeps, and re-acquires before returning.
  /// Spurious wakeups happen: call in a `while (!predicate)` loop.
  void Wait(Mutex* mu) CCDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the capability stays held; don't double-unlock
  }

  /// Wait() with a timeout; returns after `timeout` even unsignalled (the
  /// caller re-checks its predicate and its own deadline/cancel state).
  template <typename Rep, typename Period>
  void WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& timeout)
      CCDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait_for(native, timeout);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_THREAD_ANNOTATIONS_H_
