// A small shared thread pool for intra-query parallelism. Deliberately
// work-stealing-free: one FIFO queue guarded by a mutex. The paper's point
// is that operators are *memory-bandwidth* bound, so a single core leaves
// most of the machine's bandwidth unused; N workers streaming independent
// morsels recover it. Scheduling sophistication buys nothing here — tasks
// are coarse (a cache-sized morsel or a radix partition each) and queue
// contention is negligible next to the memory traffic they generate.
//
// ParallelFor is the only construct the executor uses: morsel i -> result
// slot i, so output order is deterministic no matter which worker ran which
// morsel. Nested ParallelFor calls from inside a worker run inline on that
// worker (no pool re-entry), which makes arbitrary operator nesting
// deadlock-free by construction.
#ifndef CCDB_UTIL_THREAD_POOL_H_
#define CCDB_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace ccdb {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `task`. Tasks submitted from one thread start in FIFO order.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). ParallelFor uses this to run nested calls inline.
  static bool OnWorkerThread();

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

  /// The lazily created process-wide pool (HardwareThreads() workers).
  /// Queries that don't pass their own pool share this one — the "shared
  /// thread pool" every plan's operators draw workers from.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ CCDB_GUARDED_BY(mu_);
  bool stop_ CCDB_GUARDED_BY(mu_) = false;
  /// Written once by the constructor before any concurrency exists, then
  /// only joined by the destructor — no guard needed.
  std::vector<std::thread> workers_;
};

/// Scheduling hooks for ParallelFor — the seam the serving layer's fair
/// scheduler and deadline/cancellation checks plug into. Both callbacks run
/// at morsel granularity; either may be empty. The hooks object must stay
/// valid until ParallelFor returns (it is never touched by drive tasks that
/// start after that).
struct ParallelForHooks {
  /// Called before each morsel body (on whichever thread runs it). A non-ok
  /// Status aborts the loop exactly like a body error: remaining morsels
  /// are skipped and the Status is returned — this is how a cancelled or
  /// past-deadline query stops at the next morsel boundary.
  std::function<Status()> before_morsel;

  /// Called after each completed morsel on pool-worker drives only (never
  /// on the calling thread, which must keep making progress). Returning
  /// true makes the drive requeue itself at the back of the pool's FIFO
  /// queue and release its worker — the cooperative yield that lets morsels
  /// of other concurrently executing queries interleave, so one huge join
  /// cannot hold every worker until it finishes.
  std::function<bool()> yield_after_morsel;
};

/// Runs `body(i)` for every i in [0, n) on up to `parallelism` concurrent
/// workers (the caller participates, so only parallelism-1 pool tasks are
/// spawned). Returns the first non-ok Status; remaining morsels are skipped
/// once a failure is observed. Exceptions escaping `body` become
/// StatusCode::kInternal. Runs inline (still honoring error short-circuit
/// and the before_morsel hook) when `pool` is null, `parallelism` <= 1,
/// n <= 1, or the caller is itself a pool worker.
///
/// Completion of every morsel happens-before ParallelFor returns, so bodies
/// may write to disjoint, pre-sized result slots without extra locking.
Status ParallelFor(ThreadPool* pool, size_t parallelism, size_t n,
                   const std::function<Status(size_t)>& body,
                   const ParallelForHooks* hooks = nullptr);

}  // namespace ccdb

#endif  // CCDB_UTIL_THREAD_POOL_H_
