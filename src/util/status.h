// Status / StatusOr: exception-free error handling in the RocksDB / Abseil
// idiom. All fallible ccdb APIs return Status (or StatusOr<T> when they
// produce a value); hot inner loops never throw.
#ifndef CCDB_UTIL_STATUS_H_
#define CCDB_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ccdb {

/// Canonical error space, a small subset of the Abseil codes that ccdb needs.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kUnavailable = 7,
  kInternal = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
};

/// Returns the canonical lower-case name of `code` ("ok", "invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic result of a fallible operation. Cheap to copy when ok
/// (no message allocation on the success path). [[nodiscard]] at class
/// level: every function returning a Status by value makes its callers
/// check (or explicitly void-cast, with a reason) the result — enforced
/// with -Werror=unused-result, so a dropped error cannot compile.
class [[nodiscard]] Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-ok Status explaining why there is none.
/// [[nodiscard]] like Status: discarding one silently drops an error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value: the common success path.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit from error: `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Debug builds trap on misuse; release builds are UB like
  /// std::optional, so call sites must check ok() first.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` when not ok.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-ok Status to the caller.
#define CCDB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::ccdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binding `lhs`.
#define CCDB_ASSIGN_OR_RETURN(lhs, expr)      \
  auto CCDB_CONCAT_(_sor_, __LINE__) = (expr);            \
  if (!CCDB_CONCAT_(_sor_, __LINE__).ok())                \
    return CCDB_CONCAT_(_sor_, __LINE__).status();        \
  lhs = std::move(CCDB_CONCAT_(_sor_, __LINE__)).value()

#define CCDB_CONCAT_INNER_(a, b) a##b
#define CCDB_CONCAT_(a, b) CCDB_CONCAT_INNER_(a, b)

}  // namespace ccdb

#endif  // CCDB_UTIL_STATUS_H_
