#include "util/status.h"

namespace ccdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ccdb
