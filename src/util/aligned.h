// Cache-line / page aligned buffers. The scan experiment (§2) and the
// simulator tests need buffers whose base address is aligned so that miss
// counts are exactly predictable.
#ifndef CCDB_UTIL_ALIGNED_H_
#define CCDB_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "util/logging.h"

namespace ccdb {

/// Byte buffer with a caller-chosen power-of-two alignment (default: 4096,
/// one page on most systems).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  AlignedBuffer(size_t bytes, size_t alignment = 4096) { Allocate(bytes, alignment); }

  void Allocate(size_t bytes, size_t alignment = 4096) {
    CCDB_CHECK((alignment & (alignment - 1)) == 0);
    size_t rounded = (bytes + alignment - 1) / alignment * alignment;
    void* p = std::aligned_alloc(alignment, rounded);
    CCDB_CHECK(p != nullptr);
    std::memset(p, 0, rounded);
    data_.reset(static_cast<uint8_t*>(p));
    size_ = bytes;
  }

  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }
  size_t size() const { return size_; }

 private:
  struct FreeDeleter {
    // lint: allow(raw-buffer: this IS the owning layer — aligned_alloc's
    // contract requires std::free, and ownership never leaves data_)
    void operator()(uint8_t* p) const { std::free(p); }
  };
  std::unique_ptr<uint8_t, FreeDeleter> data_;
  size_t size_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_ALIGNED_H_
