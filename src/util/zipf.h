// Zipfian workload generator (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD'94). The paper's experiments
// use uniform unique values; real join columns are often skewed, and the
// skew ablation (bench/ablation_skew) uses this generator to probe how the
// radix algorithms degrade.
#ifndef CCDB_UTIL_ZIPF_H_
#define CCDB_UTIL_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "util/logging.h"
#include "util/rng.h"

namespace ccdb {

/// Draws ranks in [0, n) with P(rank k) proportional to 1/(k+1)^theta.
/// theta = 0 is uniform; theta ~ 0.99 is the classic "Zipfian" skew.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    CCDB_CHECK(n > 0);
    CCDB_CHECK(theta >= 0 && theta < 2);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Next rank; rank 0 is the most frequent value.
  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    double v = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t k = static_cast<uint64_t>(v);
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_ZIPF_H_
