// Small bit-manipulation helpers used across the radix algorithms and the
// cache simulator. All operate on unsigned 64-bit values.
#ifndef CCDB_UTIL_BITS_H_
#define CCDB_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/logging.h"

namespace ccdb {

/// True iff `v` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)). Pre: v > 0.
constexpr int Log2Floor(uint64_t v) {
  return 63 - std::countl_zero(v | 1);
}

/// ceil(log2(v)). Pre: v > 0. Log2Ceil(1) == 0.
constexpr int Log2Ceil(uint64_t v) {
  return v <= 1 ? 0 : Log2Floor(v - 1) + 1;
}

/// Smallest power of two >= v. Pre: v > 0 and result fits in 63 bits.
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  return uint64_t{1} << Log2Ceil(v);
}

/// Extracts `bits` bits of `v` starting at bit position `lo` (0 = LSB).
constexpr uint32_t ExtractBits(uint32_t v, int lo, int bits) {
  if (bits == 0) return 0;
  return (v >> lo) & ((bits >= 32) ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1));
}

/// Mask with the `bits` lowest bits set; bits in [0, 32].
constexpr uint32_t LowMask32(int bits) {
  return bits >= 32 ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1);
}

/// Divides `total_bits` as evenly as possible over `passes` buckets, larger
/// shares first: SplitBitsEvenly(7, 2) == {4, 3}. The paper (§3.4.2) found
/// that radix-cluster performance depends strongly on an even distribution.
inline void SplitBitsEvenly(int total_bits, int passes, int out[/*passes*/]) {
  CCDB_DCHECK(passes > 0);
  int base = total_bits / passes;
  int extra = total_bits % passes;
  for (int p = 0; p < passes; ++p) out[p] = base + (p < extra ? 1 : 0);
}

}  // namespace ccdb

#endif  // CCDB_UTIL_BITS_H_
