#include "util/timer.h"

// WallTimer is header-only; this file exists so the util library always has
// at least one object per header group and to anchor future non-inline
// additions.
