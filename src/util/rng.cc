#include "util/rng.h"

#include <unordered_set>

#include "util/logging.h"

namespace ccdb {

void Shuffle(std::vector<uint32_t>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.NextBelow(i);
    std::swap(v[i - 1], v[j]);
  }
}

std::vector<uint32_t> UniqueU32(size_t n, uint64_t seed) {
  CCDB_CHECK(n <= (uint64_t{1} << 32));
  Rng rng(seed);
  // A random bijection of [0, 2^32) via a Feistel-like mix would avoid the
  // set, but n is at most tens of millions here, so rejection sampling with a
  // hash set is simpler and fast enough; density stays far below 2%.
  std::vector<uint32_t> out;
  out.reserve(n);
  std::unordered_set<uint32_t> seen;
  seen.reserve(n * 2);
  while (out.size() < n) {
    uint32_t v = rng.NextU32();
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace ccdb
