#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace ccdb {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::OnWorkerThread() { return t_on_worker; }

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(HardwareThreads());
  return pool;
}

namespace {

Status RunBodyCaught(const std::function<Status(size_t)>& body, size_t i) {
  try {
    return body(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") + e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t parallelism, size_t n,
                   const std::function<Status(size_t)>& body,
                   const ParallelForHooks* hooks) {
  if (n == 0) return Status::Ok();
  const bool has_check =
      hooks != nullptr && static_cast<bool>(hooks->before_morsel);
  const bool has_yield =
      hooks != nullptr && static_cast<bool>(hooks->yield_after_morsel);
  size_t workers = parallelism < n ? parallelism : n;
  if (pool == nullptr || workers <= 1 || n == 1 ||
      ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) {
      Status st = has_check ? hooks->before_morsel() : Status::Ok();
      if (st.ok()) st = RunBodyCaught(body, i);
      if (!st.ok()) return st;
    }
    return Status::Ok();
  }

  // The caller returns as soon as every morsel is claimed AND no drive is
  // still running one — NOT when every submitted drive task has been
  // scheduled. On the shared pool a query would otherwise be gated on
  // unrelated queued work just to run its no-op stragglers. A drive task
  // that starts after the caller returned claims `i >= n` (on failure the
  // sentinel store below guarantees it), exits without touching `body` or
  // its captures, and keeps `state` alive through its shared_ptr.
  struct Shared {
    std::atomic<size_t> next{0};    // morsel claim counter
    std::atomic<size_t> active{0};  // drives between entry and exit
    Mutex mu;
    CondVar cv;
    Status first_error CCDB_GUARDED_BY(mu);
    size_t n = 0;  // set once before any drive starts
  };
  auto state = std::make_shared<Shared>();
  state->n = n;

  // One claim-loop "drive", copied by value into every pool task so a task
  // never references ParallelFor's stack. `body` and `hooks` live on that
  // stack, so the safety protocol is: increment `active` first, then claim a
  // morsel, and dereference them only when the claim yielded i < n — at that
  // point the caller cannot pass its completion wait (next >= n is required,
  // and once true it stays true) until this drive's matching decrement. A
  // drive that starts after the caller returned claims i >= n and exits
  // touching only `state` (kept alive by its shared_ptr copy).
  struct Drive {
    std::shared_ptr<Shared> state;
    const std::function<Status(size_t)>* body;
    const ParallelForHooks* hooks;
    ThreadPool* pool;
    bool has_check;
    bool has_yield;

    void Run(bool is_caller) const {
      state->active.fetch_add(1);
      bool requeue = false;
      for (;;) {
        size_t i = state->next.fetch_add(1);
        if (i >= state->n) break;
        Status st = has_check ? hooks->before_morsel() : Status::Ok();
        if (st.ok()) st = RunBodyCaught(*body, i);
        if (!st.ok()) {
          {
            MutexLock lock(&state->mu);
            if (state->first_error.ok()) state->first_error = std::move(st);
          }
          // Stop further claims; late drives see i >= n and exit untouched.
          state->next.store(state->n);
          break;
        }
        if (has_yield && !is_caller && state->next.load() < state->n &&
            hooks->yield_after_morsel()) {
          // Cooperative preemption at the morsel boundary: requeue a copy of
          // this drive at the back of the pool's FIFO (behind other queries'
          // pending tasks) and release the worker. The caller's drive never
          // yields, so the loop as a whole always makes progress no matter
          // what else is queued.
          requeue = true;
          break;
        }
      }
      if (requeue) {
        Drive copy = *this;
        pool->Submit([copy] { copy.Run(false); });
      }
      {
        // The lock orders the decrement against the caller's predicate
        // re-check, so the final notify cannot slip between its predicate
        // evaluation and its sleep.
        MutexLock lock(&state->mu);
        state->active.fetch_sub(1);
      }
      state->cv.NotifyAll();
    }
  };
  Drive drive{state, &body, hooks, pool, has_check, has_yield};

  for (size_t w = 1; w < workers; ++w) {
    pool->Submit([drive] { drive.Run(false); });
  }
  drive.Run(true);

  MutexLock lock(&state->mu);
  while (state->next.load() < state->n || state->active.load() != 0) {
    state->cv.Wait(&state->mu);
  }
  return state->first_error;
}

}  // namespace ccdb
