// Exchange operator pair: scale-out execution over shared-nothing worker
// partitions, in-process today, cross-process tomorrow (dist/wire.h).
//
// ExchangeMergeOp is the plan-visible operator. Open() splits the plan at
// this point into:
//
//            ExchangeMergeOp            (caller thread: deterministic merge)
//              |        |
//     WorkerContext 0 .. N-1            (one thread each: fragment over
//       fragment op tree                 partition-local state)
//         ExchangePartitionOp leaves    (pop from this partition's channels)
//              |  bounded ChunkChannel per (input, partition) edge
//       producer pump threads           (one per input: route chunks)
//         producer operator subtrees
//
// Each WorkerContext is shared-nothing: its own ExecContext (drawing morsel
// workers from the shared ThreadPool at parallelism/N), its own input
// channels, and partition-local output staging — no state is shared between
// fragments except the transports. Producer chunks are routed by hash of
// the key column (repartition), replicated (broadcast), or forwarded
// round-robin zero-copy (the broadcast join's probe side).
//
// Determinism: the merge emits partition-major — all of partition 0's
// chunks in production order, then partition 1's, ... — so a plan's output
// is a pure function of (plan, partitions), independent of thread timing.
// With partitions == 1 the planner inserts no exchange at all, keeping the
// engine byte-identical to the single-context executor.
//
// Cancellation: every blocking edge (channel Push/Pop, the merge wait)
// polls ScheduleContext::Check() each wait slice, so cancelled or
// past-deadline queries unwind cleanly: pumps stop, workers close their
// fragments, Close() joins every thread.
#ifndef CCDB_DIST_EXCHANGE_H_
#define CCDB_DIST_EXCHANGE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/chunk_channel.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ccdb {

/// Planner-visible record of one exchange node: the chosen strategy, the
/// transfer-term estimate, and the measured bytes folded back at Close() —
/// the same predict-then-verify contract as JoinNodeInfo, surfaced by
/// PhysicalPlan::ExplainCosts() as "xfer pred/meas".
struct ExchangeNodeInfo {
  ExchangeStrategy strategy = ExchangeStrategy::kRepartition;
  size_t partitions = 1;
  /// Estimated payload bytes the chosen strategy moves (repartition:
  /// both inputs once; broadcast: N x the replicated side, forwarded side
  /// free) and the transfer term they price to.
  double predicted_transfer_bytes = 0;
  double predicted_transfer_ns = 0;
  /// Bytes that actually crossed the counting transports.
  uint64_t measured_transfer_bytes = 0;
  /// Competing estimates the decision compared (ExplainCosts shows the
  /// margin): repartition-vs-broadcast transfer bytes.
  double repartition_bytes = 0;
  double broadcast_bytes = 0;
  /// OpCostInfo slot carrying this exchange's transfer term.
  int cost_index = -1;
};

/// How one exchange input's chunks are routed across partitions.
enum class ExchangeRouting : uint8_t {
  kHash,       ///< by hash of `key_column` — equal keys colocate
  kBroadcast,  ///< every partition receives every chunk (copied)
  kForward,    ///< whole chunks round-robin, zero-copy (priced at 0 bytes)
};

/// One producer feeding the exchange.
struct ExchangeInputSpec {
  std::unique_ptr<Operator> producer;
  ExchangeRouting routing = ExchangeRouting::kHash;
  std::string key_column;   ///< routing key for kHash
  bool count_bytes = true;  ///< false for forwarded (zero-copy) edges
};

/// Builds one partition's fragment operator tree over its input leaves
/// (`inputs[i]` pops from input i's channel for this partition). Called on
/// the Open() thread, once per partition, before any worker starts.
using FragmentFactory = std::function<StatusOr<std::unique_ptr<Operator>>(
    size_t partition, std::vector<std::unique_ptr<Operator>> inputs,
    const ExecContext* worker_ctx)>;

struct ExchangeOptions {
  size_t partitions = 2;
  /// Chunks buffered per channel edge; bounds producer run-ahead.
  size_t channel_capacity = 4;
  /// Round-trip every chunk through the wire format (SerializedChunkTransport).
  bool serialize = false;
  /// Runs once in Close() after all worker threads have joined — the hook
  /// the planner uses to fold per-worker JoinNodeInfo actuals into the
  /// plan-visible record.
  std::function<void()> on_close;
};

/// Worker-side leaf: emits the chunks routed to one partition. Lives in a
/// fragment tree, reading from a borrowed transport owned by the
/// ExchangeMergeOp that built it.
class ExchangePartitionOp : public Operator {
 public:
  explicit ExchangePartitionOp(ChunkTransport* transport)
      : transport_(transport) {}

  Status Open() override { return Status::Ok(); }
  StatusOr<bool> Next(Chunk* out) override { return transport_->Recv(out); }
  void Close() override {}

 private:
  ChunkTransport* const transport_;
};

/// One shared-nothing partition: its own ExecContext on the shared pool,
/// its own input transports, its own fragment — the in-process stand-in
/// for a remote worker process.
struct WorkerContext {
  size_t partition = 0;
  ExecContext exec;
  /// transports[i] carries input i's chunks for this partition (owned
  /// here: this is the partition-local half of each edge).
  std::vector<std::unique_ptr<ChunkTransport>> transports;
  std::unique_ptr<Operator> fragment;
  std::thread thread;
};

/// The plan-visible exchange operator (see file comment for the shape).
class ExchangeMergeOp : public Operator {
 public:
  /// `ctx` (borrowed) is the plan's context; `info` (borrowed, nullable)
  /// receives measured transfer bytes at Close().
  ExchangeMergeOp(std::vector<ExchangeInputSpec> inputs,
                  FragmentFactory fragment_factory, ExchangeOptions options,
                  const ExecContext* ctx, ExchangeNodeInfo* info);
  ~ExchangeMergeOp() override;

  Status Open() override;
  StatusOr<bool> Next(Chunk* out) override;
  void Close() override;

 private:
  /// Fan-in point for worker output. Workers append to their own partition
  /// deque; the merge drains in partition-major order. Unbounded by design:
  /// backpressure lives on the bounded input channels, and what queues here
  /// is (at most) the result the caller is about to materialize anyway —
  /// bounding it would let a stalled partition-0 worker wedge partitions
  /// 1..N-1 behind full queues.
  struct Collector {
    Mutex mu;
    CondVar cv;
    std::vector<std::deque<Chunk>> chunks CCDB_GUARDED_BY(mu);
    std::vector<bool> done CCDB_GUARDED_BY(mu);
    Status error CCDB_GUARDED_BY(mu) = Status::Ok();  // first failure wins
  };

  void PumpInput(size_t input_index);
  void WorkerMain(WorkerContext* worker);
  void AbortTransports();
  void JoinThreads();

  std::vector<ExchangeInputSpec> inputs_;
  FragmentFactory fragment_factory_;
  ExchangeOptions options_;
  const ExecContext* const ctx_;
  ExchangeNodeInfo* const info_;

  std::vector<std::unique_ptr<WorkerContext>> workers_;
  std::vector<std::thread> pumps_;
  Collector collector_;
  size_t merge_partition_ = 0;  ///< partition the merge is draining
  bool open_ = false;
  bool producers_open_ = false;
};

}  // namespace ccdb

#endif  // CCDB_DIST_EXCHANGE_H_
