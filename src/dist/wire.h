// Length-prefixed wire format for BAT chunks — the seed for cross-process
// exchange workers. SerializeChunk materializes a chunk (lazy columns are
// gathered through their candidate lists) into one self-describing frame;
// DeserializeChunk rebuilds an owned-column chunk that flows through every
// downstream operator exactly like an in-process one.
//
// Frame layout (host-endian; a cross-machine transport would pin
// little-endian at the socket boundary):
//   u32 magic 'CCXF' | u32 rows | u32 ncols
//   per column: u32 name_len | name bytes | u8 type tag | payload
//     kU32: rows x u32        kI64: rows x i64        kF64: rows x f64
//     kStr: u64 arena_len | (rows+1) x u32 offsets | arena bytes
// Column types are Chunk::TypeOf's normalized set {kU32, kI64, kF64, kStr}
// (integrals widen to u32, dictionary-encoded strings decode to kStr), so
// a round-tripped chunk materializes to identical bytes.
//
// Known limit of the decode-on-the-wire choice: GroupByAggOp and OrderByOp
// consume encoded string columns by their integer dictionary codes, which
// a deserialized chunk no longer carries — a serialized exchange therefore
// cannot sit between a scan and a group/order on an encoded string column.
// Cross-process workers need dictionary-carrying frames (ship codes + the
// dict once per column) before that shape works; see ROADMAP.md.
#ifndef CCDB_DIST_WIRE_H_
#define CCDB_DIST_WIRE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "dist/chunk_channel.h"
#include "exec/operator.h"
#include "util/status.h"

namespace ccdb {

/// Serializes `chunk` into one wire frame.
StatusOr<std::vector<uint8_t>> SerializeChunk(const Chunk& chunk);

/// Inverse of SerializeChunk: rebuilds the chunk with owned columns.
StatusOr<Chunk> DeserializeChunk(const std::vector<uint8_t>& frame);

/// Exchange transport that round-trips every chunk through the wire format
/// over a bounded frame channel: the rehearsal mode for cross-process
/// workers (ExecOptions::serialize_exchange). bytes_moved() counts true
/// frame bytes, so measured transfer reflects real serialized volume.
class SerializedChunkTransport : public ChunkTransport {
 public:
  SerializedChunkTransport(size_t capacity, const ScheduleContext* sched,
                           bool count_bytes)
      : channel_(capacity, sched), count_bytes_(count_bytes) {}

  Status Send(Chunk chunk) override;
  StatusOr<bool> Recv(Chunk* out) override;
  void CloseSend() override { channel_.CloseSender(); }
  void Abort() override { channel_.Abort(); }
  uint64_t bytes_moved() const override {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  dist_internal::BoundedChannel<std::vector<uint8_t>> channel_;
  const bool count_bytes_;
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace ccdb

#endif  // CCDB_DIST_WIRE_H_
