#include "dist/wire.h"

#include <cstring>
#include <string>
#include <utility>

#include "bat/column.h"
#include "bat/types.h"

namespace ccdb {

namespace {

constexpr uint32_t kFrameMagic = 0x43435846;  // 'CCXF'

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

template <typename T>
void PutRaw(std::vector<uint8_t>* out, const T& v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
void PutSpan(std::vector<uint8_t>* out, const std::vector<T>& v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

/// Bounds-checked frame reader.
class FrameReader {
 public:
  explicit FrameReader(const std::vector<uint8_t>& frame) : frame_(frame) {}

  template <typename T>
  Status Read(T* out) {
    if (frame_.size() - pos_ < sizeof(T)) {
      return Status::InvalidArgument("wire frame truncated");
    }
    std::memcpy(out, frame_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  template <typename T>
  Status ReadVec(size_t count, std::vector<T>* out) {
    if (count > (frame_.size() - pos_) / sizeof(T)) {
      return Status::InvalidArgument("wire frame truncated");
    }
    out->resize(count);
    std::memcpy(out->data(), frame_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return Status::Ok();
  }

  Status ReadString(size_t len, std::string* out) {
    if (len > frame_.size() - pos_) {
      return Status::InvalidArgument("wire frame truncated");
    }
    out->assign(reinterpret_cast<const char*>(frame_.data() + pos_), len);
    pos_ += len;
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == frame_.size(); }

 private:
  const std::vector<uint8_t>& frame_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::vector<uint8_t>> SerializeChunk(const Chunk& chunk) {
  std::vector<uint8_t> out;
  PutRaw(&out, kFrameMagic);
  PutRaw(&out, static_cast<uint32_t>(chunk.rows));
  PutRaw(&out, static_cast<uint32_t>(chunk.cols.size()));
  for (size_t c = 0; c < chunk.cols.size(); ++c) {
    const std::string& name = chunk.cols[c].name;
    PutRaw(&out, static_cast<uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    PhysType t = chunk.TypeOf(c);
    PutU8(&out, static_cast<uint8_t>(t));
    switch (t) {
      case PhysType::kU32: {
        CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> v, chunk.GatherU32(c));
        PutSpan(&out, v);
        break;
      }
      case PhysType::kI64: {
        CCDB_ASSIGN_OR_RETURN(std::vector<int64_t> v, chunk.GatherI64(c));
        PutSpan(&out, v);
        break;
      }
      case PhysType::kF64: {
        CCDB_ASSIGN_OR_RETURN(std::vector<double> v, chunk.GatherF64(c));
        PutSpan(&out, v);
        break;
      }
      case PhysType::kStr: {
        CCDB_ASSIGN_OR_RETURN(std::vector<std::string> v, chunk.GatherStr(c));
        std::vector<uint32_t> offsets;
        offsets.reserve(v.size() + 1);
        uint64_t arena_len = 0;
        offsets.push_back(0);
        for (const std::string& s : v) {
          arena_len += s.size();
          offsets.push_back(static_cast<uint32_t>(arena_len));
        }
        PutRaw(&out, arena_len);
        PutSpan(&out, offsets);
        for (const std::string& s : v) {
          out.insert(out.end(), s.begin(), s.end());
        }
        break;
      }
      default:
        return Status::Internal("unexpected chunk column type on the wire");
    }
  }
  return out;
}

StatusOr<Chunk> DeserializeChunk(const std::vector<uint8_t>& frame) {
  FrameReader r(frame);
  uint32_t magic = 0;
  CCDB_RETURN_IF_ERROR(r.Read(&magic));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad wire frame magic");
  }
  uint32_t rows = 0, ncols = 0;
  CCDB_RETURN_IF_ERROR(r.Read(&rows));
  CCDB_RETURN_IF_ERROR(r.Read(&ncols));
  Chunk chunk;
  chunk.rows = rows;
  chunk.cols.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    uint32_t name_len = 0;
    CCDB_RETURN_IF_ERROR(r.Read(&name_len));
    ChunkColumn col;
    CCDB_RETURN_IF_ERROR(r.ReadString(name_len, &col.name));
    uint8_t tag = 0;
    CCDB_RETURN_IF_ERROR(r.Read(&tag));
    switch (static_cast<PhysType>(tag)) {
      case PhysType::kU32: {
        std::vector<uint32_t> v;
        CCDB_RETURN_IF_ERROR(r.ReadVec(rows, &v));
        col.owned = std::make_shared<const Column>(Column::U32(std::move(v)));
        break;
      }
      case PhysType::kI64: {
        std::vector<int64_t> v;
        CCDB_RETURN_IF_ERROR(r.ReadVec(rows, &v));
        col.owned = std::make_shared<const Column>(Column::I64(std::move(v)));
        break;
      }
      case PhysType::kF64: {
        std::vector<double> v;
        CCDB_RETURN_IF_ERROR(r.ReadVec(rows, &v));
        col.owned = std::make_shared<const Column>(Column::F64(std::move(v)));
        break;
      }
      case PhysType::kStr: {
        uint64_t arena_len = 0;
        CCDB_RETURN_IF_ERROR(r.Read(&arena_len));
        std::vector<uint32_t> offsets;
        CCDB_RETURN_IF_ERROR(r.ReadVec(static_cast<size_t>(rows) + 1,
                                       &offsets));
        std::string arena;
        CCDB_RETURN_IF_ERROR(r.ReadString(arena_len, &arena));
        std::vector<std::string> v(rows);
        for (uint32_t i = 0; i < rows; ++i) {
          if (offsets[i] > offsets[i + 1] || offsets[i + 1] > arena.size()) {
            return Status::InvalidArgument("wire frame string offsets");
          }
          v[i] = arena.substr(offsets[i], offsets[i + 1] - offsets[i]);
        }
        col.owned = std::make_shared<const Column>(Column::Str(v));
        break;
      }
      default:
        return Status::InvalidArgument("unknown wire column type tag");
    }
    chunk.cols.push_back(std::move(col));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in wire frame");
  }
  return chunk;
}

Status SerializedChunkTransport::Send(Chunk chunk) {
  CCDB_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, SerializeChunk(chunk));
  if (count_bytes_) {
    bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  return channel_.Push(std::move(frame));
}

StatusOr<bool> SerializedChunkTransport::Recv(Chunk* out) {
  std::vector<uint8_t> frame;
  CCDB_ASSIGN_OR_RETURN(bool more, channel_.Pop(&frame));
  if (!more) return false;
  CCDB_ASSIGN_OR_RETURN(*out, DeserializeChunk(frame));
  return true;
}

}  // namespace ccdb
