// The exchange transport seam: a bounded in-process SPSC channel of BAT
// chunks, behind a ChunkTransport interface so the same exchange operators
// can later run over a cross-process (serialized) transport — the network
// as one more level of the memory hierarchy.
//
// Flow control and shutdown:
//  - Push() blocks while the channel is at capacity (bounded producer
//    run-ahead); Pop() blocks while it is empty. Both poll the query's
//    ScheduleContext every wait slice, so a cancelled or past-deadline
//    query never leaves a producer stuck on a full channel (or a consumer
//    on an empty one).
//  - CloseSender() is the clean end-of-stream: consumers drain what is
//    queued, then Pop() returns false.
//  - Abort() is the teardown path (operator Close, error propagation): it
//    wakes every waiter and fails all further Push/Pop calls, regardless
//    of queued chunks.
#ifndef CCDB_DIST_CHUNK_CHANNEL_H_
#define CCDB_DIST_CHUNK_CHANNEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "exec/exec_context.h"
#include "exec/operator.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ccdb {

namespace dist_internal {

/// Bounded single-producer/single-consumer blocking queue. `T` must be
/// movable. One mutex + one condvar: exchange channels carry chunk-sized
/// payloads (thousands of rows each), so queue transitions are far off the
/// per-row hot path and lock cost is noise.
template <typename T>
class BoundedChannel {
 public:
  /// `sched` (nullable, borrowed) is polled by every blocking wait.
  BoundedChannel(size_t capacity, const ScheduleContext* sched)
      : capacity_(capacity == 0 ? 1 : capacity), sched_(sched) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks while full. Fails with the ScheduleContext's status on
  /// cancellation/deadline, or Cancelled after Abort().
  Status Push(T item) CCDB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (true) {
      if (aborted_) return Status::Cancelled("exchange channel aborted");
      if (sched_ != nullptr) CCDB_RETURN_IF_ERROR(sched_->Check());
      if (closed_) {
        return Status::FailedPrecondition("push after CloseSender");
      }
      if (queue_.size() < capacity_) {
        queue_.push_back(std::move(item));
        cv_.NotifyAll();
        return Status::Ok();
      }
      cv_.WaitFor(&mu_, kWaitSlice);
    }
  }

  /// Blocks while empty. Returns false on clean end-of-stream, true with
  /// `*out` filled otherwise; errors mirror Push().
  StatusOr<bool> Pop(T* out) CCDB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (true) {
      if (aborted_) return Status::Cancelled("exchange channel aborted");
      if (sched_ != nullptr) CCDB_RETURN_IF_ERROR(sched_->Check());
      if (!queue_.empty()) {
        *out = std::move(queue_.front());
        queue_.pop_front();
        cv_.NotifyAll();
        return true;
      }
      if (closed_) return false;
      cv_.WaitFor(&mu_, kWaitSlice);
    }
  }

  /// Clean end-of-stream: queued chunks stay poppable, then Pop() -> false.
  void CloseSender() CCDB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

  /// Teardown: wakes all waiters, fails all further calls, drops queued
  /// items (nobody will consume them). Idempotent.
  void Abort() CCDB_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    aborted_ = true;
    queue_.clear();
    cv_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Wait slice between ScheduleContext polls while blocked — same cadence
  /// as the shared-scan drive wait.
  static constexpr std::chrono::milliseconds kWaitSlice{2};

  const size_t capacity_;
  const ScheduleContext* const sched_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> queue_ CCDB_GUARDED_BY(mu_);
  bool closed_ CCDB_GUARDED_BY(mu_) = false;
  bool aborted_ CCDB_GUARDED_BY(mu_) = false;
};

}  // namespace dist_internal

/// The bounded in-process SPSC chunk queue: one per (exchange input,
/// partition) edge; the producer pump pushes routed sub-chunks, the
/// partition's worker pops them.
using ChunkChannel = dist_internal::BoundedChannel<Chunk>;

/// Nominal payload bytes of a chunk: rows x physical column widths, the
/// same per-column strides the planner's transfer estimate uses (strings
/// are priced at their 4-byte offset stride — the wire transport counts
/// their true bytes). Keeping measure and model on one scale makes the
/// ExplainCosts predicted-vs-measured transfer columns comparable.
size_t ChunkPayloadBytes(const Chunk& chunk);

/// One exchange edge (producer -> one partition's worker). Send() blocks on
/// backpressure; Recv() blocks until a chunk, end-of-stream (false), or
/// abort. bytes_moved() is what actually crossed the edge, folded into
/// ExchangeNodeInfo::measured_transfer_bytes at Close().
class ChunkTransport {
 public:
  virtual ~ChunkTransport() = default;
  virtual Status Send(Chunk chunk) = 0;
  virtual StatusOr<bool> Recv(Chunk* out) = 0;
  virtual void CloseSend() = 0;
  virtual void Abort() = 0;
  virtual uint64_t bytes_moved() const = 0;
};

/// Shared-memory transport: moves chunk objects through a ChunkChannel.
/// `count_bytes=false` marks forwarded (zero-copy) edges — the broadcast
/// join's probe side — which the cost model also prices at zero.
class InProcessChunkTransport : public ChunkTransport {
 public:
  InProcessChunkTransport(size_t capacity, const ScheduleContext* sched,
                          bool count_bytes)
      : channel_(capacity, sched), count_bytes_(count_bytes) {}

  Status Send(Chunk chunk) override {
    if (count_bytes_) {
      bytes_.fetch_add(ChunkPayloadBytes(chunk), std::memory_order_relaxed);
    }
    return channel_.Push(std::move(chunk));
  }
  StatusOr<bool> Recv(Chunk* out) override { return channel_.Pop(out); }
  void CloseSend() override { channel_.CloseSender(); }
  void Abort() override { channel_.Abort(); }
  uint64_t bytes_moved() const override {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  ChunkChannel channel_;
  const bool count_bytes_;
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace ccdb

#endif  // CCDB_DIST_CHUNK_CHANNEL_H_
