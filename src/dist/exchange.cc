#include "dist/exchange.h"

#include <chrono>
#include <cstring>
#include <optional>
#include <span>
#include <string>

#include "dist/wire.h"

namespace ccdb {

namespace {

/// Wait slice between ScheduleContext polls in the merge loop — same
/// cadence as the channel waits.
constexpr std::chrono::milliseconds kMergeWait{2};

uint64_t MixU64(uint64_t h) {
  // splitmix64 finalizer: full avalanche so consecutive keys spread across
  // partitions instead of striping.
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

uint64_t HashStr(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Per-row partition ids for hash routing; handles every wire-visible key
/// type so group-by exchanges can route on string keys too.
StatusOr<std::vector<uint32_t>> RowPartitions(const Chunk& chunk,
                                              size_t key_idx, size_t n) {
  std::vector<uint32_t> out(chunk.rows);
  switch (chunk.TypeOf(key_idx)) {
    case PhysType::kU32: {
      CCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> keys,
                            chunk.GatherU32(key_idx));
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] = static_cast<uint32_t>(MixU64(keys[i]) % n);
      }
      return out;
    }
    case PhysType::kI64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<int64_t> keys,
                            chunk.GatherI64(key_idx));
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] =
            static_cast<uint32_t>(MixU64(static_cast<uint64_t>(keys[i])) % n);
      }
      return out;
    }
    case PhysType::kF64: {
      CCDB_ASSIGN_OR_RETURN(std::vector<double> keys,
                            chunk.GatherF64(key_idx));
      for (size_t i = 0; i < keys.size(); ++i) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(keys[i]));
        std::memcpy(&bits, &keys[i], sizeof(bits));
        out[i] = static_cast<uint32_t>(MixU64(bits) % n);
      }
      return out;
    }
    case PhysType::kStr: {
      CCDB_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                            chunk.GatherStr(key_idx));
      for (size_t i = 0; i < keys.size(); ++i) {
        out[i] = static_cast<uint32_t>(HashStr(keys[i]) % n);
      }
      return out;
    }
    default:
      return Status::Internal("unroutable exchange key type");
  }
}

}  // namespace

ExchangeMergeOp::ExchangeMergeOp(std::vector<ExchangeInputSpec> inputs,
                                 FragmentFactory fragment_factory,
                                 ExchangeOptions options,
                                 const ExecContext* ctx,
                                 ExchangeNodeInfo* info)
    : inputs_(std::move(inputs)),
      fragment_factory_(std::move(fragment_factory)),
      options_(std::move(options)),
      ctx_(ctx),
      info_(info) {
  if (options_.partitions == 0) options_.partitions = 1;
}

ExchangeMergeOp::~ExchangeMergeOp() {
  if (open_ || !pumps_.empty()) Close();
}

Status ExchangeMergeOp::Open() {
  if (open_) return Status::FailedPrecondition("exchange already open");
  const size_t n = options_.partitions;

  // Producers open on the caller thread so failures surface synchronously,
  // before any thread exists.
  for (size_t i = 0; i < inputs_.size(); ++i) {
    Status st = inputs_[i].producer->Open();
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) inputs_[j].producer->Close();
      return st;
    }
  }
  producers_open_ = true;

  workers_.clear();
  workers_.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    auto w = std::make_unique<WorkerContext>();
    w->partition = p;
    w->exec.pool = ctx_->pool;
    w->exec.parallelism =
        ctx_->parallelism > n ? ctx_->parallelism / n : size_t{1};
    w->exec.sched = ctx_->sched;
    w->exec.shared_scans = nullptr;
    w->exec.partitions = 1;
    std::vector<std::unique_ptr<Operator>> leaves;
    leaves.reserve(inputs_.size());
    for (const ExchangeInputSpec& in : inputs_) {
      std::unique_ptr<ChunkTransport> t;
      if (options_.serialize) {
        t = std::make_unique<SerializedChunkTransport>(
            options_.channel_capacity, ctx_->sched, in.count_bytes);
      } else {
        t = std::make_unique<InProcessChunkTransport>(
            options_.channel_capacity, ctx_->sched, in.count_bytes);
      }
      leaves.push_back(std::make_unique<ExchangePartitionOp>(t.get()));
      w->transports.push_back(std::move(t));
    }
    auto fragment = fragment_factory_(p, std::move(leaves), &w->exec);
    if (!fragment.ok()) {
      Close();
      return fragment.status();
    }
    w->fragment = *std::move(fragment);
    workers_.push_back(std::move(w));
  }

  {
    MutexLock lock(&collector_.mu);
    collector_.chunks.assign(n, {});
    collector_.done.assign(n, false);
    collector_.error = Status::Ok();
  }
  merge_partition_ = 0;
  open_ = true;

  pumps_.reserve(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    pumps_.emplace_back([this, i] { PumpInput(i); });
  }
  for (auto& w : workers_) {
    WorkerContext* wp = w.get();
    w->thread = std::thread([this, wp] { WorkerMain(wp); });
  }
  return Status::Ok();
}

void ExchangeMergeOp::PumpInput(size_t input_index) {
  ExchangeInputSpec& spec = inputs_[input_index];
  const size_t n = workers_.size();
  auto transport = [&](size_t p) -> ChunkTransport* {
    return workers_[p]->transports[input_index].get();
  };

  Status st = Status::Ok();
  bool sent_layout = false;
  size_t round_robin = 0;
  std::optional<size_t> key_idx;
  Chunk chunk;
  while (st.ok()) {
    if (ctx_->sched != nullptr) {
      st = ctx_->sched->Check();
      if (!st.ok()) break;
    }
    StatusOr<bool> more = spec.producer->Next(&chunk);
    if (!more.ok()) {
      st = more.status();
      break;
    }
    if (!*more) break;

    if (n == 1) {
      st = transport(0)->Send(std::move(chunk));
      continue;
    }
    // Every partition's fragment must see at least one layout-bearing
    // chunk (the operator contract) even when no rows route to it: seed
    // each edge with a zero-row projection of the first chunk.
    if (!sent_layout && spec.routing != ExchangeRouting::kBroadcast) {
      StatusOr<Chunk> layout = chunk.Take(std::span<const uint32_t>{});
      if (!layout.ok()) {
        st = layout.status();
        break;
      }
      for (size_t p = 0; p < n && st.ok(); ++p) {
        Chunk copy = *layout;
        st = transport(p)->Send(std::move(copy));
      }
      sent_layout = true;
      if (!st.ok()) break;
    }

    switch (spec.routing) {
      case ExchangeRouting::kHash: {
        if (!key_idx.has_value()) {
          StatusOr<size_t> idx = chunk.Find(spec.key_column);
          if (!idx.ok()) {
            st = idx.status();
            break;
          }
          key_idx = *idx;
        }
        if (chunk.rows == 0) break;
        StatusOr<std::vector<uint32_t>> pids =
            RowPartitions(chunk, *key_idx, n);
        if (!pids.ok()) {
          st = pids.status();
          break;
        }
        std::vector<std::vector<uint32_t>> positions(n);
        for (size_t r = 0; r < pids->size(); ++r) {
          positions[(*pids)[r]].push_back(static_cast<uint32_t>(r));
        }
        for (size_t p = 0; p < n && st.ok(); ++p) {
          if (positions[p].empty()) continue;
          StatusOr<Chunk> part = chunk.Take(positions[p]);
          if (!part.ok()) {
            st = part.status();
            break;
          }
          st = transport(p)->Send(*std::move(part));
        }
        break;
      }
      case ExchangeRouting::kBroadcast: {
        for (size_t p = 0; p + 1 < n && st.ok(); ++p) {
          Chunk copy = chunk;
          st = transport(p)->Send(std::move(copy));
        }
        if (st.ok()) st = transport(n - 1)->Send(std::move(chunk));
        break;
      }
      case ExchangeRouting::kForward: {
        st = transport(round_robin % n)->Send(std::move(chunk));
        ++round_robin;
        break;
      }
    }
  }

  if (st.ok()) {
    for (size_t p = 0; p < n; ++p) transport(p)->CloseSend();
  } else {
    {
      MutexLock lock(&collector_.mu);
      if (collector_.error.ok()) collector_.error = st;
      collector_.cv.NotifyAll();
    }
    AbortTransports();
  }
}

void ExchangeMergeOp::WorkerMain(WorkerContext* worker) {
  Status st = worker->fragment->Open();
  if (st.ok()) {
    Chunk chunk;
    while (true) {
      if (ctx_->sched != nullptr) {
        st = ctx_->sched->Check();
        if (!st.ok()) break;
      }
      StatusOr<bool> more = worker->fragment->Next(&chunk);
      if (!more.ok()) {
        st = more.status();
        break;
      }
      if (!*more) break;
      MutexLock lock(&collector_.mu);
      collector_.chunks[worker->partition].push_back(std::move(chunk));
      collector_.cv.NotifyAll();
    }
  }
  worker->fragment->Close();
  {
    MutexLock lock(&collector_.mu);
    if (!st.ok() && collector_.error.ok()) collector_.error = st;
    collector_.done[worker->partition] = true;
    collector_.cv.NotifyAll();
  }
  // A failed fragment stops consuming: unblock the pumps (and, through
  // them, sibling fragments) instead of leaving a producer stuck on this
  // partition's full channel.
  if (!st.ok()) AbortTransports();
}

StatusOr<bool> ExchangeMergeOp::Next(Chunk* out) {
  if (!open_) return Status::FailedPrecondition("exchange not open");
  MutexLock lock(&collector_.mu);
  while (true) {
    if (!collector_.error.ok()) return collector_.error;
    if (merge_partition_ >= workers_.size()) return false;
    std::deque<Chunk>& q = collector_.chunks[merge_partition_];
    if (!q.empty()) {
      *out = std::move(q.front());
      q.pop_front();
      return true;
    }
    if (collector_.done[merge_partition_]) {
      ++merge_partition_;
      continue;
    }
    if (ctx_->sched != nullptr) CCDB_RETURN_IF_ERROR(ctx_->sched->Check());
    collector_.cv.WaitFor(&collector_.mu, kMergeWait);
  }
}

void ExchangeMergeOp::AbortTransports() {
  for (auto& w : workers_) {
    for (auto& t : w->transports) t->Abort();
  }
}

void ExchangeMergeOp::JoinThreads() {
  for (std::thread& t : pumps_) {
    if (t.joinable()) t.join();
  }
  pumps_.clear();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ExchangeMergeOp::Close() {
  AbortTransports();
  JoinThreads();
  if (producers_open_) {
    for (ExchangeInputSpec& in : inputs_) in.producer->Close();
    producers_open_ = false;
  }
  if (info_ != nullptr) {
    uint64_t bytes = 0;
    for (const auto& w : workers_) {
      for (const auto& t : w->transports) bytes += t->bytes_moved();
    }
    info_->measured_transfer_bytes = bytes;
  }
  if (options_.on_close) {
    options_.on_close();
    options_.on_close = nullptr;  // fold once, even if Close runs twice
  }
  open_ = false;
}

}  // namespace ccdb
